// Command rpcv-coordinator runs one RPC-V middle-tier coordinator as a
// real TCP daemon.
//
// Usage:
//
//	rpcv-coordinator -id coord-a -listen :7000 \
//	    -peers coord-b=host2:7000,coord-c=host3:7000 \
//	    -disk /var/lib/rpcv/coord-a -store wal -replication 60s
//
// -store selects the durable engine backing -disk: "files" (legacy
// one-fsynced-file-per-key layout, the default) or "wal" (group-commit
// write-ahead log with snapshots and compaction — amortizes the fsync
// per job record across concurrent submissions). An engine never opens
// the other engine's directory.
//
// -wire selects the codec for outgoing connections and persisted job
// records: "binary" (default, the zero-allocation length-prefixed
// codec) or "gob" when this coordinator must send to pre-binary peers.
// Receiving and database recovery auto-detect either codec, so a
// mixed cluster interoperates and a WAL written by a gob build
// recovers under the binary default.
//
// -loops selects the number of per-core event loops (default: the
// machine's GOMAXPROCS). Sessions are hash-pinned to a loop, and the
// coordinator partitions into one instance per loop, so submit
// throughput scales with cores. -loops=1 reproduces the classic
// single-loop runtime exactly (including a byte-identical wire From).
// Ring members should run the same -loops value so session ownership
// agrees across the fleet.
//
// -admin mounts the observability HTTP server (internal/obs) on the
// given address: /metrics (Prometheus text), /statusz (JSON counters,
// shard map, suspected nodes), /healthz, /tracez (task-lifecycle span
// ring), and /debug/pprof/. Empty disables it. On shutdown the daemon
// prints a one-line metrics summary.
//
// Peers are fellow coordinators forming the passive-replication ring.
// Clients and servers reach this coordinator at the listen address; the
// daemon learns their reply addresses from the directory flags of those
// components (static directories; a production deployment would learn
// them from connections or a registry).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/sched"
	"rpcv/internal/shared"
	"rpcv/internal/store"
)

func main() {
	id := flag.String("id", "coord-00", "stable coordinator ID")
	listen := flag.String("listen", "127.0.0.1:7000", "TCP listen address")
	peers := flag.String("peers", "", "comma-separated id=addr fellow coordinators")
	clients := flag.String("nodes", "", "comma-separated id=addr known clients/servers (static directory)")
	disk := flag.String("disk", "", "stable storage directory (empty: volatile)")
	storeEngine := flag.String("store", store.Default, "durable store engine backing -disk: "+strings.Join(store.Engines(), " | "))
	replication := flag.Duration("replication", 60*time.Second, "passive replication period")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "heartbeat period")
	timeout := flag.Duration("timeout", 30*time.Second, "fault suspicion timeout")
	shardMap := flag.String("shardmap", "", "consistent-hash shard topology: rings separated by ';', members by ',' (e.g. \"coord-a,coord-b;coord-c,coord-d\"); empty: unsharded")
	shardVersion := flag.Uint64("shardversion", 1, "shard map version (bump when redeploying a changed topology)")
	shardSync := flag.Duration("shardsync", 0, "cross-shard replication period (0: same as -replication)")
	policy := flag.String("policy", "fcfs", "scheduling policy: "+strings.Join(sched.Policies(), ", "))
	speculate := flag.Float64("speculate", 0, "speculative policy's straggler threshold factor k (0: default)")
	steal := flag.Bool("steal", false, "enable cross-shard work stealing (sharded deployments)")
	legacyTransport := flag.Bool("legacy-transport", false, "use the paper's connection-per-message transport instead of pooled connections")
	wire := flag.String("wire", proto.WireBinary, "wire/storage codec: binary | gob (send gob to pre-binary peers; receiving auto-detects)")
	queueDepth := flag.Int("send-queue", 0, "pooled transport per-peer send queue depth (0: default 128)")
	idleTimeout := flag.Duration("idle-timeout", 0, "pooled transport connection idle timeout (0: default 30s)")
	maxInbound := flag.Int("max-inbound", 0, "max concurrent inbound connections before shedding (0: default 256)")
	admin := flag.String("admin", "", "observability HTTP address serving /metrics /statusz /healthz /tracez /debug/pprof/ (empty: disabled)")
	loops := flag.Int("loops", runtime.GOMAXPROCS(0), "per-core event loops; sessions are hash-pinned to a loop, so submit throughput scales with cores (1: classic single loop; ring members should share the value)")
	flag.Parse()

	if _, err := sched.New(sched.Config{Policy: *policy}); err != nil {
		log.Fatalf("rpcv-coordinator: -policy: %v", err)
	}
	wireCodec, err := proto.ParseWire(*wire)
	if err != nil {
		log.Fatalf("rpcv-coordinator: -wire: %v", err)
	}

	dir, coordIDs, err := shared.ParseDirectory(*peers)
	if err != nil {
		log.Fatalf("rpcv-coordinator: -peers: %v", err)
	}
	nodeDir, _, err := shared.ParseDirectory(*clients)
	if err != nil {
		log.Fatalf("rpcv-coordinator: -nodes: %v", err)
	}
	for k, v := range nodeDir {
		dir[k] = v
	}
	coordIDs = append(coordIDs, proto.NodeID(*id))

	smap, err := shared.ParseShardMap(*shardMap, *shardVersion, 0)
	if err != nil {
		log.Fatalf("rpcv-coordinator: -shardmap: %v", err)
	}
	if smap != nil {
		ring := smap.RingOf(proto.NodeID(*id))
		if ring < 0 {
			log.Fatalf("rpcv-coordinator: %s is not a member of -shardmap", *id)
		}
		// Every other map member must be dialable: ring-mates for
		// replication, cross-shard coordinators for guard probes and
		// ShardSync. A missing address would silently drop those sends.
		for s := 0; s < smap.Shards(); s++ {
			for _, member := range smap.Ring(s) {
				if member == proto.NodeID(*id) {
					continue
				}
				if _, ok := dir[member]; !ok {
					log.Fatalf("rpcv-coordinator: -shardmap member %s has no address in -peers", member)
				}
			}
		}
		// Sharded: the replication ring is this shard's member list, not
		// the full -peers set (which still provides the addresses of
		// cross-shard coordinators for guard probes and ShardSync).
		coordIDs = smap.Ring(ring)
	}

	var ob *obs.Observer
	if *admin != "" {
		ob = obs.New(proto.NodeID(*id))
	}

	co := coordinator.New(coordinator.Config{
		Coordinators:      coordIDs,
		ReplicationPeriod: *replication,
		HeartbeatPeriod:   *heartbeat,
		HeartbeatTimeout:  *timeout,
		DBCost:            db.RealLifeCost(),
		Shard:             smap,
		ShardSyncPeriod:   *shardSync,
		Policy:            *policy,
		SpeculateFactor:   *speculate,
		WorkStealing:      *steal,
		OnJobFinished: func(call proto.CallID, at time.Time) {
			log.Printf("finished %s at %s", call, at.Format(time.RFC3339))
		},
		Codec: proto.CodecForWire(wireCodec),
		Obs:   ob,
	})

	rtm, err := rt.Start(rt.Config{
		ID:              proto.NodeID(*id),
		ListenAddr:      *listen,
		Directory:       dir,
		DiskDir:         *disk,
		Store:           *storeEngine,
		Handler:         co,
		LegacyTransport: *legacyTransport,
		Wire:            wireCodec,
		QueueDepth:      *queueDepth,
		IdleTimeout:     *idleTimeout,
		MaxInboundConns: *maxInbound,
		Loops:           *loops,
		Obs:             ob,
	})
	if err != nil {
		log.Fatalf("rpcv-coordinator: %v", err)
	}
	defer rtm.Close()
	fmt.Printf("rpcv-coordinator %s listening on %s (ring of %d)\n", *id, rtm.Addr(), len(coordIDs))

	if *admin != "" {
		adm, err := obs.ServeAdmin(*admin, ob)
		if err != nil {
			log.Fatalf("rpcv-coordinator: %v", err)
		}
		defer adm.Close()
		// /healthz answers 503 when the event loop stops taking work:
		// liveness is proven per probe, not assumed from the socket.
		adm.Health(func() error { return rtm.Ping(500 * time.Millisecond) })
		// Status sections read event-loop state; marshal each partition's
		// snapshot onto its owning loop via rtm.DoOn so the HTTP
		// goroutine never touches handler fields directly.
		adm.Status("coordinator", func() any {
			parts := co.Partitions()
			if len(parts) == 1 {
				var st coordinator.Stats
				rtm.Do(func() { st = co.StatsNow() })
				return st
			}
			out := make([]coordinator.Stats, len(parts))
			for i, p := range parts {
				var st coordinator.Stats
				rtm.DoOn(i, func() { st = p.StatsNow() })
				out[i] = st
			}
			return out
		})
		adm.Status("loops", func() any { return rtm.LoopStats() })
		adm.Status("shard_map", func() any {
			var sm proto.ShardMapState
			rtm.Do(func() { sm = co.ShardState() })
			return sm
		})
		adm.Status("suspected", func() any {
			var servers, coords []proto.NodeID
			rtm.Do(func() {
				servers = co.SuspectedServers()
				coords = co.SuspectedCoordinators()
			})
			return map[string]any{"servers": servers, "coordinators": coords}
		})
		adm.Status("transport", func() any { return rtm.TransportStats() })
		fmt.Printf("rpcv-coordinator %s admin on http://%s\n", *id, adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("rpcv-coordinator %s: shutting down", *id)
	if ob != nil {
		log.Printf("rpcv-coordinator %s: metrics: %s", *id, ob.Registry().Summary())
	}
}
