// Command rpcv-client submits RPC calls to an RPC-V grid through the
// GridRPC-style API and waits for the results.
//
// Usage:
//
//	rpcv-client -coordinators coord-a=host1:7000 \
//	    -service upper -data "hello grid" -n 4
//
// With -disk, -store selects the durable engine backing the message
// log ("files", the legacy per-key layout and default, or "wal", the
// group-commit write-ahead log that batches concurrent submissions'
// log entries into shared fsyncs).
//
// -wire selects the codec for connections and the message log:
// "binary" (default) or "gob" when talking to pre-binary
// coordinators. Receiving and log recovery auto-detect either codec.
//
// -admin mounts the observability HTTP server (internal/obs) on the
// given address: /metrics, /statusz, /healthz, /tracez and
// /debug/pprof/. Empty disables it. On exit the client prints a
// one-line metrics summary.
//
// The client tags every submission with a (user, session, rpc) unique
// ID and logs it per the chosen strategy; re-running with the same
// -user and -session retrieves results of a previous (possibly
// interrupted) run — client disconnection is a normal event.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"rpcv/internal/gridrpc"
	"rpcv/internal/msglog"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/shared"
	"rpcv/internal/store"
)

func main() {
	user := flag.String("user", "anonymous", "user unique ID")
	session := flag.Uint64("session", 0, "session unique ID (0: new session)")
	coords := flag.String("coordinators", "", "comma-separated id=addr coordinator list (required)")
	listen := flag.String("listen", "127.0.0.1:0", "reply listen address")
	disk := flag.String("disk", "", "message log directory (empty: volatile)")
	storeEngine := flag.String("store", store.Default, "durable store engine backing -disk: "+strings.Join(store.Engines(), " | "))
	service := flag.String("service", "echo", "service name to call")
	data := flag.String("data", "", "call parameters (string payload)")
	n := flag.Int("n", 1, "number of concurrent non-blocking calls")
	logging := flag.String("logging", "non-blocking-pessimistic",
		"message logging strategy: optimistic | blocking | non-blocking")
	wait := flag.Duration("wait", 5*time.Minute, "overall deadline")
	shardMap := flag.String("shardmap", "", "consistent-hash shard topology (same syntax as rpcv-coordinator); empty: unsharded")
	shardVersion := flag.Uint64("shardversion", 1, "cached shard map version")
	legacyTransport := flag.Bool("legacy-transport", false, "use the paper's connection-per-message transport instead of pooled connections")
	wire := flag.String("wire", "binary", "wire/storage codec: binary | gob (send gob to pre-binary coordinators; receiving auto-detects)")
	admin := flag.String("admin", "", "observability HTTP address serving /metrics /statusz /healthz /tracez /debug/pprof/ (empty: disabled)")
	loops := flag.Int("loops", runtime.GOMAXPROCS(0), "per-core event loops (a client session owns one (user, session) pair, so the runtime clamps this to 1; the flag exists for fleet-wide symmetry)")
	flag.Parse()

	dirMap, _, err := shared.ParseDirectory(*coords)
	if err != nil || len(dirMap) == 0 {
		log.Fatalf("rpcv-client: -coordinators: %v (at least one id=addr required)", err)
	}
	strat, err := msglog.ParseStrategy(*logging)
	if err != nil {
		log.Fatalf("rpcv-client: %v", err)
	}

	coordAddrs := make(map[string]string, len(dirMap))
	for id, addr := range dirMap {
		coordAddrs[string(id)] = addr
	}

	smap, err := shared.ParseShardMap(*shardMap, *shardVersion, 0)
	if err != nil {
		log.Fatalf("rpcv-client: -shardmap: %v", err)
	}
	if smap != nil {
		// Every map member must be dialable, or routing to its shard
		// silently drops submissions until the deadline expires.
		for s := 0; s < smap.Shards(); s++ {
			for _, member := range smap.Ring(s) {
				if _, ok := dirMap[member]; !ok {
					log.Fatalf("rpcv-client: -shardmap member %s has no address in -coordinators", member)
				}
			}
		}
	}

	var ob *obs.Observer
	if *admin != "" {
		ob = obs.New(proto.NodeID("client-" + *user))
	}

	sess, err := gridrpc.Dial(gridrpc.Config{
		User:            *user,
		Session:         *session,
		Coordinators:    coordAddrs,
		ListenAddr:      *listen,
		DiskDir:         *disk,
		Store:           *storeEngine,
		Logging:         strat,
		Shard:           smap,
		LegacyTransport: *legacyTransport,
		Wire:            *wire,
		Loops:           *loops,
		Obs:             ob,
	})
	if err != nil {
		log.Fatalf("rpcv-client: %v", err)
	}
	defer sess.Close()
	fmt.Printf("session up (reply address %s)\n", sess.Addr())

	if *admin != "" {
		adm, err := obs.ServeAdmin(*admin, ob)
		if err != nil {
			log.Fatalf("rpcv-client: %v", err)
		}
		defer adm.Close()
		adm.Health(func() error { return sess.Ping(500 * time.Millisecond) })
		adm.Status("client", func() any { return sess.Stats() })
		fmt.Printf("admin on http://%s\n", adm.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *wait)
	defer cancel()

	start := time.Now()
	handles := make([]*gridrpc.Handle, 0, *n)
	for i := 0; i < *n; i++ {
		h, err := sess.CallAsync(*service, []byte(*data))
		if err != nil {
			log.Fatalf("rpcv-client: submit: %v", err)
		}
		handles = append(handles, h)
	}
	fmt.Printf("submitted %d call(s) to service %q\n", len(handles), *service)

	for _, h := range handles {
		out, err := h.Wait(ctx)
		if err != nil {
			log.Printf("call %d: %v", h.Seq(), err)
			continue
		}
		fmt.Printf("call %d -> %q\n", h.Seq(), out)
	}
	st := sess.Stats()
	fmt.Printf("done in %v (results %d/%d, failovers %d, syncs %d)\n",
		time.Since(start).Round(time.Millisecond), st.Results, st.Submitted, st.Failovers, st.Syncs)
	if ob != nil {
		fmt.Printf("metrics: %s\n", ob.Registry().Summary())
	}
}
