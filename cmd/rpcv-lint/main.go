// Command rpcv-lint runs rpcv's project-specific static analyzers
// (internal/lint): loopexclusive, protocomplete, atomicfield and
// diskerr. It is both a standalone multichecker and a vet tool.
//
// Standalone, over package patterns (what `make lint` runs):
//
//	go run ./cmd/rpcv-lint ./...
//	go run ./cmd/rpcv-lint -only loopexclusive,diskerr ./internal/rt
//
// As a vet tool, speaking the go command's (unpublished) vettool
// protocol — -flags, -V=full, and a JSON config per package:
//
//	go build -o /tmp/rpcv-lint ./cmd/rpcv-lint
//	go vet -vettool=/tmp/rpcv-lint ./...
//
// Standalone mode loads every requested package up front, so the
// loopexclusive call-graph walk crosses package boundaries; under go
// vet each package is checked in isolation (go vet's caching in
// exchange). Exit status is 1 (standalone) or 2 (vettool) when any
// finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rpcv/internal/lint"
	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/loader"
)

func main() {
	args := os.Args[1:]
	// The go command's vettool handshake comes before normal flag
	// parsing: `rpcv-lint -V=full` must print a version banner and
	// `rpcv-lint -flags` a JSON description of analyzer flags.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			fmt.Println("rpcv-lint version v1.0.0")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(runVetTool(args[len(args)-1]))
	}

	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rpcv-lint [-only names] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = subset(analyzers, *only)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := loader.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
		os.Exit(1)
	}
	findings, err := lint.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rpcv-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func subset(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	keep := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		keep[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if keep[a.Name] {
			out = append(out, a)
			delete(keep, a.Name)
		}
	}
	for n := range keep {
		fmt.Fprintf(os.Stderr, "rpcv-lint: unknown analyzer %q\n", n)
		os.Exit(1)
	}
	return out
}

// runVetTool executes one vettool invocation: analyze the single
// package described by the config, report findings on stderr (the go
// command relays them), and write the vetx output file the go command
// expects even though rpcv's analyzers exchange no facts.
func runVetTool(cfgPath string) int {
	cfg, err := loader.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
		return 1
	}
	// The output file must exist even for fact-free runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	prog, err := loader.LoadVetConfig(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
		return 1
	}
	findings, err := lint.Run(prog, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcv-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
