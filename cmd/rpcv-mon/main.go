// Command rpcv-mon is the cluster monitor and flight recorder: it
// scrapes every node's -admin endpoint, keeps rolling metric history,
// grades the fleet against a declarative health/SLO model, and
// captures post-mortem bundles when things break.
//
// Usage:
//
//	rpcv-mon -nodes coord-a=127.0.0.1:8080,srv-1=127.0.0.1:8081 \
//	    -listen 127.0.0.1:9090 -interval 2s -bundles rpcv-bundles \
//	    -slo-dispatch-p99 50ms -slo-queue-depth 1000
//
// -nodes lists id=admin-addr pairs — each node's observability HTTP
// address (what the daemon passed as -admin), not its RPC port.
//
// The monitor serves its own HTTP plane on -listen:
//
//	/clusterz   fleet verdict (JSON; ?format=text for the table)
//	/historyz   the retained metric rings as JSON
//	/healthz    200 while the fleet is ok/warn, 503 otherwise
//	/capture    POST: write a flight bundle now
//
// -top redraws the cluster table in the terminal after every scrape, a
// top(1)-style live view.
//
// Flight bundles land in -bundles/<timestamp>-<reason>/: the verdict,
// every node's metric history and last raw exposition, all span rings
// assembled into per-call timelines (plus a Chrome trace), /statusz
// snapshots and goroutine/heap profiles. Bundles trigger automatically
// on a node death or a fresh Critical SLO breach (rate-limited by
// -bundle-cooldown), on SIGQUIT, and on POST /capture.
//
// The -slo-* flags opt into objectives; each zero value disables its
// rule. Liveness (scrape reachability, /healthz) is always graded.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpcv/internal/obs/fleet"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated id=admin-addr list of nodes to scrape (required)")
	listen := flag.String("listen", "127.0.0.1:9090", "monitor HTTP address serving /clusterz /historyz /healthz /capture")
	interval := flag.Duration("interval", 2*time.Second, "scrape period")
	timeout := flag.Duration("timeout", 0, "per-node scrape timeout (0: interval/2)")
	history := flag.Int("history", 512, "points retained per metric ring")
	downAfter := flag.Int("down-after", 2, "consecutive scrape failures before a node is graded down")
	window := flag.Duration("window", 0, "lookback window for rates and SLO burn (0: 15*interval)")
	bundles := flag.String("bundles", "rpcv-bundles", "flight-bundle directory (empty: flight recorder off)")
	cooldown := flag.Duration("bundle-cooldown", 30*time.Second, "minimum spacing between automatic bundle captures")
	top := flag.Bool("top", false, "redraw the cluster table in the terminal after every scrape")
	sloDispatch := flag.Duration("slo-dispatch-p99", 0, "per-shard dispatch p99 target (0: rule off)")
	sloWAL := flag.Duration("slo-wal-p99", 0, "per-node durable-write p99 target (0: rule off)")
	sloQueue := flag.Float64("slo-queue-depth", 0, "per-shard max summed queue depth (0: rule off)")
	sloRequeue := flag.Float64("slo-requeue-rate", 0, "per-shard max requeues/s (0: rule off)")
	sloRedial := flag.Float64("slo-redial-rate", 0, "per-node max transport redials/s (0: rule off)")
	sloShed := flag.Float64("slo-shed-rate", 0, "per-node max transport sheds/s (0: rule off)")
	flag.Parse()

	sources, err := fleet.ParseTargets(*nodes)
	if err != nil {
		log.Fatalf("rpcv-mon: -nodes: %v (at least one id=admin-addr required)", err)
	}

	mon := fleet.New(fleet.Config{
		Sources:        sources,
		Interval:       *interval,
		Timeout:        *timeout,
		History:        *history,
		DownAfter:      *downAfter,
		Window:         *window,
		BundleDir:      *bundles,
		BundleCooldown: *cooldown,
		SLO: fleet.SLO{
			DispatchP99:    *sloDispatch,
			WALCommitP99:   *sloWAL,
			MaxQueueDepth:  *sloQueue,
			MaxRequeueRate: *sloRequeue,
			MaxRedialRate:  *sloRedial,
			MaxShedRate:    *sloShed,
		},
		Logf: log.Printf,
		OnVerdict: func(v fleet.FleetVerdict) {
			if *top {
				fmt.Print(fleet.TopView(v))
			}
		},
	})

	srv := &http.Server{Addr: *listen, Handler: mon.Handler()}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("rpcv-mon: listen %s: %v", *listen, err)
		}
	}()
	log.Printf("rpcv-mon: watching %d node(s) every %v; /clusterz on http://%s", len(sources), *interval, *listen)
	mon.Start()

	quit := make(chan os.Signal, 1)
	stop := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-quit:
			// SIGQUIT: capture a bundle on demand and keep running — the
			// operator's "save everything now" button.
			dir, err := mon.CaptureBundle("sigquit")
			if err != nil {
				log.Printf("rpcv-mon: capture: %v", err)
				continue
			}
			log.Printf("rpcv-mon: captured %s", dir)
		case <-stop:
			mon.Close()
			_ = srv.Close()
			fmt.Print(fleet.Text(mon.Verdict()))
			return
		}
	}
}
