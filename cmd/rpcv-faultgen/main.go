// Command rpcv-faultgen reimplements the paper's fault generator for
// real deployments: it supervises one RPC-V component process and,
// "upon order, or from its own initiative with respect to its
// configuration, kills abruptly the RPC-V component of the hosting
// machine" — then restarts it after a downtime, keeping the population
// constant as in the figure 7 experiment.
//
// Usage:
//
//	rpcv-faultgen -mtbf 90s -downtime 5s -- \
//	    rpcv-server -id worker-1 -coordinators coord-a=host:7000
//
// Kills are SIGKILL (abrupt: no cleanup, no disconnection notice),
// exercising the intermittent-crash path of the protocol. SIGINT on
// the fault generator itself stops the loop and the child cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	mtbf := flag.Duration("mtbf", time.Minute, "mean time between failures (exponential)")
	downtime := flag.Duration("downtime", 5*time.Second, "delay before restarting the victim")
	seed := flag.Int64("seed", 0, "randomness seed (0: time-based)")
	once := flag.Bool("once", false, "kill exactly once, then keep the child running")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rpcv-faultgen [flags] -- command [args...]")
		os.Exit(2)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(*seed))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	kills := 0
	for {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("rpcv-faultgen: start: %v", err)
		}
		log.Printf("rpcv-faultgen: child pid %d up", cmd.Process.Pid)

		wait := exponential(rng.Float64(), *mtbf)
		if *once && kills > 0 {
			wait = time.Duration(math.MaxInt64) // never again
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		select {
		case <-stop:
			log.Printf("rpcv-faultgen: stopping; terminating child")
			_ = cmd.Process.Signal(syscall.SIGTERM)
			<-exited
			return
		case err := <-exited:
			log.Printf("rpcv-faultgen: child exited on its own (%v); restarting after %v", err, *downtime)
		case <-time.After(wait):
			kills++
			log.Printf("rpcv-faultgen: KILLING child abruptly (fault #%d)", kills)
			_ = cmd.Process.Kill()
			<-exited
		}

		select {
		case <-stop:
			return
		case <-time.After(*downtime):
		}
	}
}

// exponential maps a uniform sample to an exponential wait.
func exponential(u float64, mean time.Duration) time.Duration {
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return time.Duration(-math.Log(u) * float64(mean))
}
