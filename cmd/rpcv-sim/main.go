// Command rpcv-sim runs the conformance + chaos matrix: it boots a
// real loopback cluster per configuration cell (wire codec x store
// engine x transport x scheduling policy x event-loop count), drives
// the same deterministic workload through every cell while injecting
// the fault taxonomy — asymmetric one-way partitions, slow/failing/
// torn disks mid-group-commit, stalled-not-dead coordinators, clock
// skew, stale shard maps, crash/restart — and proves every
// configuration agrees on the identical result set.
//
// Usage:
//
//	rpcv-sim                       # embedded default suite, full matrix
//	rpcv-sim -quick                # CI smoke: 2 cells x 2 fault scenarios
//	rpcv-sim -suite chaos.sim      # a custom declarative scenario file
//	rpcv-sim -list                 # print the selected cells and scenarios
//	rpcv-sim -scenario disk-fault  # one scenario across every cell
//	rpcv-sim -cell store=wal       # cells whose label contains the tokens
//	rpcv-sim -artifacts out/       # framed fault/verdict artifacts and
//	                               # flight bundles on failed verdicts
//	rpcv-sim -v                    # stream per-fault injection logs
//
// The per-cell verdict table prints on stdout; the exit status is 1
// when any cell fails (lost results, divergence, or harness error).
// See internal/conform for the scenario-file grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rpcv/internal/conform"
)

func main() {
	suiteFile := flag.String("suite", "", "scenario file to run (empty: the embedded default suite)")
	quick := flag.Bool("quick", false, "CI smoke: first 2 cells x 2 fault scenarios")
	scenario := flag.String("scenario", "", "run only this scenario (comma-separated names)")
	cell := flag.String("cell", "", "run only cells whose label contains these space-separated tokens")
	artifacts := flag.String("artifacts", "", "directory for framed fault/verdict artifacts and flight bundles")
	seed := flag.Int64("seed", 2004, "random seed")
	parallel := flag.Int("parallel", 0, "max concurrently running cells (0: auto)")
	list := flag.Bool("list", false, "print the selected matrix and exit")
	verbose := flag.Bool("v", false, "stream harness and fault-injection logs to stderr")
	flag.Parse()

	src := conform.DefaultSuite
	if *suiteFile != "" {
		raw, err := os.ReadFile(*suiteFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcv-sim: %v\n", err)
			os.Exit(2)
		}
		src = string(raw)
	}
	suite, err := conform.ParseSuite(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcv-sim: %v\n", err)
		os.Exit(2)
	}

	opts := conform.Options{
		Seed:        *seed,
		Quick:       *quick,
		ArtifactDir: *artifacts,
		Parallel:    *parallel,
	}
	if *scenario != "" {
		opts.Scenarios = splitComma(*scenario)
	}
	if *cell != "" {
		opts.Cells = []string{*cell}
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rpcv-sim: %v\n", err)
			os.Exit(2)
		}
	}

	if *list {
		fmt.Printf("suite %s: %d cells, %d scenarios\n", suite.Name, len(suite.Cells), len(suite.Scenarios))
		for _, c := range suite.Cells {
			fmt.Println("  cell", c.Label())
		}
		for _, sc := range suite.Scenarios {
			fmt.Printf("  scenario %s (%d events, %d calls)\n", sc.Name, len(sc.Events), sc.Calls)
		}
		return
	}

	rep, err := conform.Run(suite, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcv-sim: %v\n", err)
		os.Exit(2)
	}
	rep.Table.Write(os.Stdout)
	if !rep.Passed {
		for _, v := range rep.Verdicts {
			if v.Verdict != "pass" && v.Bundle != "" {
				fmt.Printf("post-mortem bundle: %s\n", v.Bundle)
			}
		}
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("PASS: every configuration agrees")
}

func splitComma(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
