// Command rpcv-server runs one RPC-V worker as a real TCP daemon.
//
// Usage:
//
//	rpcv-server -id worker-7 -listen :7100 \
//	    -coordinators coord-a=host1:7000,coord-b=host2:7000 \
//	    -disk /var/lib/rpcv/worker-7 -store wal -parallel 2
//
// -store selects the durable engine backing -disk ("files", the
// legacy per-key layout and default, or "wal", the group-commit
// write-ahead log); an engine never opens the other's directory.
//
// -wire selects the codec for outgoing connections and the result log:
// "binary" (default, the zero-allocation length-prefixed codec) or
// "gob" when this worker must send to pre-binary peers. Receiving and
// log recovery auto-detect either codec, so mixed clusters and old
// logs just work.
//
// -admin mounts the observability HTTP server (internal/obs) on the
// given address: /metrics, /statusz, /healthz, /tracez and
// /debug/pprof/. Empty disables it. On shutdown the daemon prints a
// one-line metrics summary.
//
// The worker pulls tasks from its preferred coordinator with 5-second
// heartbeats, executes the built-in demo services (echo, upper,
// reverse, sum, sleep) or synthetic timed tasks, durably logs result
// archives, and fails over between coordinators on suspicion. Kill it
// abruptly at any time: on restart it re-synchronizes from its local
// log and re-offers unacknowledged results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
	"rpcv/internal/shared"
	"rpcv/internal/store"
)

func main() {
	id := flag.String("id", "server-000", "stable worker ID")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	coords := flag.String("coordinators", "", "comma-separated id=addr coordinator list (required)")
	disk := flag.String("disk", "", "stable storage directory (empty: volatile)")
	storeEngine := flag.String("store", store.Default, "durable store engine backing -disk: "+strings.Join(store.Engines(), " | "))
	parallel := flag.Int("parallel", 1, "concurrent task capacity")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "heartbeat period")
	timeout := flag.Duration("timeout", 30*time.Second, "coordinator suspicion timeout")
	legacyTransport := flag.Bool("legacy-transport", false, "use the paper's connection-per-message transport instead of pooled connections")
	wire := flag.String("wire", proto.WireBinary, "wire/storage codec: binary | gob (send gob to pre-binary peers; receiving auto-detects)")
	queueDepth := flag.Int("send-queue", 0, "pooled transport per-peer send queue depth (0: default 128)")
	idleTimeout := flag.Duration("idle-timeout", 0, "pooled transport connection idle timeout (0: default 30s)")
	maxInbound := flag.Int("max-inbound", 0, "max concurrent inbound connections before shedding (0: default 256)")
	admin := flag.String("admin", "", "observability HTTP address serving /metrics /statusz /healthz /tracez /debug/pprof/ (empty: disabled)")
	loops := flag.Int("loops", runtime.GOMAXPROCS(0), "per-core event loops (the worker handler is not partitioned, so the runtime clamps this to 1; the flag exists for fleet-wide symmetry)")
	flag.Parse()

	wireCodec, err := proto.ParseWire(*wire)
	if err != nil {
		log.Fatalf("rpcv-server: -wire: %v", err)
	}

	dir, coordIDs, err := shared.ParseDirectory(*coords)
	if err != nil || len(coordIDs) == 0 {
		log.Fatalf("rpcv-server: -coordinators: %v (at least one id=addr required)", err)
	}

	var ob *obs.Observer
	if *admin != "" {
		ob = obs.New(proto.NodeID(*id))
	}

	sv := server.New(server.Config{
		Coordinators:     coordIDs,
		HeartbeatPeriod:  *heartbeat,
		SuspicionTimeout: *timeout,
		Parallelism:      *parallel,
		Services:         shared.BuiltinServices(),
		OnTaskDone: func(task proto.TaskID, at time.Time) {
			log.Printf("executed %s", task)
		},
		Codec: proto.CodecForWire(wireCodec),
		Obs:   ob,
	})

	rtm, err := rt.Start(rt.Config{
		ID:              proto.NodeID(*id),
		ListenAddr:      *listen,
		Directory:       dir,
		DiskDir:         *disk,
		Store:           *storeEngine,
		Handler:         sv,
		LegacyTransport: *legacyTransport,
		Wire:            wireCodec,
		QueueDepth:      *queueDepth,
		IdleTimeout:     *idleTimeout,
		MaxInboundConns: *maxInbound,
		Loops:           *loops,
		Obs:             ob,
	})
	if err != nil {
		log.Fatalf("rpcv-server: %v", err)
	}
	defer rtm.Close()
	fmt.Printf("rpcv-server %s listening on %s, %d coordinator(s), parallelism %d\n",
		*id, rtm.Addr(), len(coordIDs), *parallel)

	if *admin != "" {
		adm, err := obs.ServeAdmin(*admin, ob)
		if err != nil {
			log.Fatalf("rpcv-server: %v", err)
		}
		defer adm.Close()
		adm.Health(func() error { return rtm.Ping(500 * time.Millisecond) })
		adm.Status("server", func() any {
			var st server.Stats
			rtm.Do(func() { st = sv.StatsNow() })
			return st
		})
		adm.Status("transport", func() any { return rtm.TransportStats() })
		fmt.Printf("rpcv-server %s admin on http://%s\n", *id, adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("rpcv-server %s: shutting down", *id)
	if ob != nil {
		log.Printf("rpcv-server %s: metrics: %s", *id, ob.Registry().Summary())
	}
}
