// Command rpcv-bench regenerates the paper's evaluation figures on the
// simulated testbed and prints each as a text table.
//
// Usage:
//
//	rpcv-bench -fig all            # every figure, paper-faithful scale
//	rpcv-bench -fig 7 -quick       # one figure, reduced sweep
//	rpcv-bench -fig 9 -seed 42     # different randomness
//	rpcv-bench -fig transport-compare -json   # + BENCH_<name>.json
//
// -json additionally writes each experiment's tables and series to
// BENCH_<experiment>.json in the current directory, for dashboards and
// regression tooling that should not scrape text tables.
//
// -loops caps the cores dimension of the transport-compare experiment
// (default: this machine's GOMAXPROCS); sweep points above the cap are
// skipped so small boxes do not oversubscribe themselves.
//
// Absolute numbers come from the calibrated simulator, not the 2004
// testbed; the experiments package's tests assert the shape
// comparisons with the paper's figures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rpcv/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,10,11, ablation-*, shard-scale, sched-compare, transport-compare, log-store-compare, sim, or all")
	quick := flag.Bool("quick", false, "reduced sweeps and populations")
	seed := flag.Int64("seed", 2004, "random seed")
	bundles := flag.String("bundles", "", "flight-bundle directory for the wall-clock compare experiments' fleet watcher (empty: no bundles)")
	jsonOut := flag.Bool("json", false, "also write each experiment to BENCH_<experiment>.json")
	loops := flag.Int("loops", runtime.GOMAXPROCS(0), "cap on the per-core event-loop sweep of transport-compare's cores dimension")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Quick: *quick, BundleDir: *bundles, Loops: *loops}
	runners := map[string]func(experiments.Options) experiments.Result{
		"4": experiments.Fig4, "5": experiments.Fig5, "6": experiments.Fig6,
		"7": experiments.Fig7, "8": experiments.Fig8, "9": experiments.Fig9,
		"10": experiments.Fig10, "11": experiments.Fig11,
		"ablation-heartbeat":   experiments.AblationHeartbeat,
		"ablation-replication": experiments.AblationReplicationPeriod,
		"ablation-recovery":    experiments.AblationRecovery,
		"shard-scale":          experiments.ShardScale,
		"sched-compare":        experiments.SchedCompare,
		"transport-compare":    experiments.TransportCompare,
		"log-store-compare":    experiments.LogStoreCompare,
		"sim":                  experiments.Sim,
	}
	order := []string{"4", "5", "6", "7", "8", "9", "10", "11",
		"ablation-heartbeat", "ablation-replication", "ablation-recovery",
		"shard-scale", "sched-compare", "transport-compare", "log-store-compare", "sim"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "rpcv-bench: unknown figure %q (want 4..11, ablation-*, shard-scale, sched-compare, transport-compare, log-store-compare, sim, or all)\n", f)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		start := time.Now()
		res := runners[f](opts)
		for _, tb := range res.Tables {
			tb.Write(os.Stdout)
			fmt.Println()
		}
		if *jsonOut {
			if err := writeJSON(res); err != nil {
				fmt.Fprintf(os.Stderr, "rpcv-bench: -json: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "rpcv-bench: %s done in %v (wall clock)\n", res.Name, time.Since(start).Round(time.Millisecond))
	}
}

// writeJSON dumps one experiment result to BENCH_<name>.json. Table
// cells keep their display formatting (metrics.Table.MarshalJSON);
// series points are raw offsets and values.
func writeJSON(res experiments.Result) error {
	name := "BENCH_" + sanitize(res.Name) + ".json"
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rpcv-bench: wrote %s\n", name)
	return nil
}

// sanitize maps an experiment name to a filename-safe token.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}
