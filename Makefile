# RPC-V reproduction — build, test and benchmark entry points.
#
#   make            vet + lint + build + test (the tier-1 gate)
#   make lint       project-specific analyzers (cmd/rpcv-lint): event-
#                   loop discipline, proto codec completeness, atomic
#                   hygiene, disk-error hygiene — standalone (cross-
#                   package call-graph walk) and as go vet -vettool
#                   (covers _test.go files)
#   make bench      full benchmark run (regenerates every figure)
#   make smoke      1-iteration benchmark smoke (fast CI signal)
#   make shard      print the shard-scaling table (quick sweep)
#   make sched      print the scheduling-policy + work-stealing tables
#   make transport  print the pooled-vs-legacy transport table
#   make store      print the durable-store (wal vs files) table
#   make wire       run the codec micro-benchmark (binary vs gob)
#   make sim        conformance + chaos smoke: 2 config cells x 2 fault
#                   scenarios on real loopback clusters (rpcv-sim -quick)
#   make sim-full   the full conformance matrix: every wire codec, store
#                   engine, transport, scheduling policy and a multi-
#                   loop coordinator, each under the full fault taxonomy
#   make race       race-detect the whole tree
#   make loops      race-detect the runtime + store lanes at 1 and 4
#                   event loops (RPCV_LOOPS drives internal/rt's
#                   multi-loop tests; 1 pins the pre-loops baseline)
#   make obs        race-detect the observability plane (registry,
#                   tracer, admin endpoints, live-grid acceptance)
#   make mon        race-detect the fleet monitor + flight recorder
#                   (parser golden tests, SLO grading, kill-and-bundle
#                   grid acceptance)

GO ?= go

.PHONY: all vet lint build test bench smoke shard sched transport store wire sim sim-full race loops obs mon ci

all: vet lint build test

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/rpcv-lint ./...
	$(GO) build -o $(or $(TMPDIR),/tmp)/rpcv-lint ./cmd/rpcv-lint
	$(GO) vet -vettool=$(or $(TMPDIR),/tmp)/rpcv-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

loops:
	RPCV_LOOPS=1 $(GO) test -race -count=1 ./internal/rt/... ./internal/store/...
	RPCV_LOOPS=4 $(GO) test -race -count=1 ./internal/rt/... ./internal/store/...

obs:
	$(GO) test -race ./internal/obs/...

mon:
	$(GO) test -race ./internal/obs/fleet/... ./internal/cluster/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

smoke:
	$(GO) test -short -run '^$$' -bench 'BenchmarkFig4MessageLogging|BenchmarkShardScale|BenchmarkTransportCompare|BenchmarkLogStoreCompare|BenchmarkCodec' -benchtime 1x .

shard:
	$(GO) run ./cmd/rpcv-bench -fig shard-scale -quick

sched:
	$(GO) run ./cmd/rpcv-bench -fig sched-compare -quick

transport:
	$(GO) run ./cmd/rpcv-bench -fig transport-compare -quick

store:
	$(GO) run ./cmd/rpcv-bench -fig log-store-compare -quick

wire:
	$(GO) test -run '^$$' -bench BenchmarkCodec -benchmem .

sim:
	$(GO) run ./cmd/rpcv-sim -quick

sim-full:
	$(GO) run ./cmd/rpcv-sim

ci: vet lint build test race smoke sim
