# RPC-V reproduction — build, test and benchmark entry points.
#
#   make            vet + build + test (the tier-1 gate)
#   make bench      full benchmark run (regenerates every figure)
#   make smoke      1-iteration benchmark smoke (fast CI signal)
#   make shard      print the shard-scaling table (quick sweep)
#   make sched      print the scheduling-policy + work-stealing tables

GO ?= go

.PHONY: all vet build test bench smoke shard sched ci

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

smoke:
	$(GO) test -short -run '^$$' -bench 'BenchmarkFig4MessageLogging|BenchmarkShardScale' -benchtime 1x .

shard:
	$(GO) run ./cmd/rpcv-bench -fig shard-scale -quick

sched:
	$(GO) run ./cmd/rpcv-bench -fig sched-compare -quick

ci: vet build test smoke
