module rpcv

go 1.24
