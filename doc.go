// Package rpcv is a from-scratch Go reproduction of "RPC-V: Toward
// Fault-Tolerant RPC for Internet Connected Desktop Grids with Volatile
// Nodes" (Djilali, Hérault, Lodygensky, Morlier, Fedak, Cappello —
// SC2004).
//
// The library implements the full RPC-V protocol — three-tier
// architecture, sender-based message logging, unreliable fault
// detectors (heartbeat suspicion) on every component, and passive
// coordinator replication on a virtual ring — together with every
// substrate the paper's evaluation depends on: a deterministic
// discrete-event simulator with calibrated network/disk/database
// models, a real-time TCP runtime, a GridRPC-style API, a fault
// generator, and the synthetic + Alcatel-like workloads.
//
// Beyond the paper, internal/shard adds a sharded coordination layer:
// consistent-hash routing of client sessions across multiple
// independent coordinator rings, with cross-shard replication and
// whole-ring failover.
//
// See README.md for the package tour and the shard subsystem overview.
// The benchmarks in bench_test.go regenerate each figure;
// cmd/rpcv-bench prints them as tables.
package rpcv
