// Package rpcv is a from-scratch Go reproduction of "RPC-V: Toward
// Fault-Tolerant RPC for Internet Connected Desktop Grids with Volatile
// Nodes" (Djilali, Hérault, Lodygensky, Morlier, Fedak, Cappello —
// SC2004).
//
// The library implements the full RPC-V protocol — three-tier
// architecture, sender-based message logging, unreliable fault
// detectors (heartbeat suspicion) on every component, and passive
// coordinator replication on a virtual ring — together with every
// substrate the paper's evaluation depends on: a deterministic
// discrete-event simulator with calibrated network/disk/database
// models, a real-time TCP runtime, a GridRPC-style API, a fault
// generator, and the synthetic + Alcatel-like workloads.
//
// Beyond the paper, internal/shard adds a sharded coordination layer:
// consistent-hash routing of client sessions across multiple
// independent coordinator rings, with cross-shard replication and
// whole-ring failover.
//
// internal/sched adds a pluggable scheduling subsystem the coordinator
// delegates to. Four policies ship: "fcfs" (the paper's behaviour,
// default), "fastest-first" (matchmaking on per-server EWMA speed
// estimates: slow machines are refused work the fast pool would finish
// sooner), "deadline" (earliest-deadline-first over soft per-call
// deadlines carried in Submit), and "speculative" (straggling in-flight
// tasks are raced against a redundant instance on a different server;
// first result wins, the loser is cancelled idempotently and
// deduplicated by CallID across replication, shard sync and failover).
// Sharded deployments can additionally enable cross-shard work
// stealing: an idle shard drains its successor shard's pending queue
// and routes the results home over the existing ShardSync path. Wired
// through cmd/rpcv-coordinator's -policy, -speculate and -steal flags;
// measured by the sched-compare experiment.
//
// internal/store makes stable storage a pluggable durable-store layer
// behind node.Disk, mapping engines to the paper's three logging
// strategies (figure 4): "files" keeps the legacy one-fsynced-file-
// per-key layout whose per-entry disk access is the measured ~30%
// blocking-pessimistic overhead; "wal" — a segmented group-commit
// write-ahead log with CRC-framed records, snapshots, compaction and
// torn-tail-tolerant recovery — batches concurrent log entries into
// shared fsyncs, making blocking-pessimistic logging nearly as cheap
// as optimistic while keeping durability-before-send; "memory" is the
// volatile stand-in. internal/msglog routes every strategy's
// durability wait through the store's batch commit (node.BatchDisk),
// and msglog.Config.Batched models the same amortization on the
// simulator's virtual clock (node.BatchResource). Selected with
// -store on every daemon; measured by the log-store-compare
// experiment; crash recovery proven by the kill-and-restart
// coordinator test in internal/rt.
//
// internal/rt's transport pools connections beyond the paper's
// connection-per-message model: one long-lived connection per peer
// owned by a sender goroutine, a bounded send queue with drop-oldest
// overflow, coalesced flushes, jittered redial backoff, an idle
// timeout that returns quiet peers to connection-less behaviour, and
// accept-side shedding (MaxInboundConns) against fd exhaustion. The
// paper's fault semantics are untouched — sends never block or fail
// loudly, and connection breaks are never fault signals; heartbeat
// timeouts remain the only suspicion source. The -legacy-transport
// flag (rt.Config.LegacyTransport) restores one-message-per-connection
// wire behaviour. Measured by the transport-compare experiment under a
// Poisson server kill/restart load.
//
// The runtime also scales past the paper's one-loop-per-node model:
// rt.Config.Loops (-loops on every daemon, default GOMAXPROCS) runs M
// per-core event loops with sessions hash-pinned to a loop by
// shard.LoopMap, preserving per-session ordering while partitioned
// handlers (node.PartitionedHandler — the coordinator) split their
// state, epoch and store lane per loop; non-partitioned handlers are
// clamped to one loop. Cross-loop and WAL-committer traffic rides a
// lock-free MPSC handoff ring per loop; store lanes stage into the
// shared WAL group commit so one fsync covers all loops; -loops=1 is
// byte-identical on the wire to the pre-loops runtime. Loop-targeted
// API: DoOn, DoAsyncOn, PingLoop, LoopFor, LoopStats. Measured by the
// cores dimension of transport-compare.
//
// internal/proto owns the wire format itself: a hand-written binary
// codec (the default) with explicit encodings for all 24 message
// kinds plus JobRecord — length-prefixed frames behind a magic
// version preface, pooled encode buffers sized by the WireSize hints,
// a reusable in-place frame decoder with string interning, ≤1
// allocation per encode or decode (BenchmarkCodec; make wire). The
// -wire flag (rt.Config.Wire, gridrpc.Config.Wire) selects what a
// node sends ("binary" or "gob" for pre-binary peers); receivers
// auto-detect per connection, and storage decoding auto-detects per
// blob, so mixed clusters interoperate and gob-era WALs and logs
// recover under the binary build.
//
// internal/obs is the live observability plane: a concurrency-safe
// labeled metrics registry (atomic counters/gauges and a lock-cheap
// log-bucketed histogram, all nil-safe so instrumentation costs
// nothing when disabled), task-lifecycle tracing — every call leaves
// CallID-correlated span events (submit, enqueue, dispatch, exec,
// result, durable, ack, plus requeue/steal/speculate/redirect hops) in
// a fixed-size per-node ring, and an assembler joins per-node dumps
// into end-to-end timelines and Chrome trace_event JSON — and an admin
// HTTP endpoint every daemon exposes with -admin: /metrics (Prometheus
// 0.0.4 text), /statusz (JSON snapshot of the event-loop state),
// /healthz, /tracez (span-ring dump) and /debug/pprof/. The
// transport, store, scheduler, coordinator, server and client all
// register into it, and the comparison experiments read their numbers
// from the registry instead of ad-hoc counters.
//
// internal/obs/fleet closes the loop with a cluster monitor and flight
// recorder, run as the fourth daemon cmd/rpcv-mon: it scrapes every
// node's admin endpoint (/metrics + /healthz) on an interval, keeps
// fixed-capacity rolling time series per metric with counter-reset-
// tolerant rate derivation, and grades the fleet against a declarative
// health/SLO model — per-node event-loop liveness, redial/shed rates
// and WAL commit p99; per-shard queue depth, requeue rate and dispatch
// p99 burn. Verdicts serve at /clusterz (JSON or a human text table)
// and a live terminal top view. On a node death, a new critical
// breach, or SIGQUIT, the flight recorder captures a post-mortem
// bundle: assembled cross-node timelines (via /tracez + Assemble),
// Chrome trace JSON, every node's metric history rings, raw
// expositions, statusz snapshots and pprof profiles, all in one
// timestamped directory. The simulated cluster harness and the
// wall-clock comparison experiments wire into the same monitor, so
// chaos runs get fleet grading and post-mortems for free.
//
// internal/lint turns the codebase's hand-policed invariants into
// machine-checked ones: a suite of project-specific static analyzers
// run by cmd/rpcv-lint (standalone multichecker or go vet -vettool).
// loopexclusive walks the static call graph from //rpcv:loop-only
// annotations and reports blocking primitives reachable on the event
// loop, plus off-loop touches of //rpcv:loop-owned handler state;
// protocomplete cross-checks that every proto message kind is wired
// into the kind constants, kindOf, the binary encoder and decoder and
// the gob registry simultaneously; atomicfield reports mixed
// atomic/plain access to the same field; diskerr reports discarded
// errors from node.Disk/store calls. `make lint` runs all four and is
// part of the default verify path and CI.
//
// internal/conform is the conformance + chaos matrix harness behind
// cmd/rpcv-sim: it boots a real loopback cluster per cell of the
// configuration matrix (wire codec x store engine x transport x
// scheduling policy x event-loop count), drives one deterministic
// workload through every cell, and injects the fault taxonomy from a
// declarative scenario timeline — asymmetric one-way partitions (a
// per-directed-link TCP proxy over netmodel.Rules), slow, failing and
// torn disks mid-group-commit (store.FaultPlan wrapping any engine),
// stalled-not-dead coordinators (frozen event loops behind a live TCP
// listener), clock skew (rt.SetClockOffset behind node.Env.Now),
// stale shard maps and crash/restart. Because the workload output is
// a pure function of call identity, the expected result set is
// computed analytically and every cell must land on the identical
// (CallID -> result) digest — zero lost completed results under every
// fault, on every configuration. Failed verdicts capture fleet flight
// bundles and framed SimFault/SimVerdict artifacts. `make sim` is the
// CI smoke (2 cells x 2 fault scenarios, race-enabled); `make
// sim-full` runs the full matrix; the frozen regression scenarios
// live in internal/conform's tests.
//
// See README.md for the package tour and the shard/sched subsystem
// overviews. The benchmarks in bench_test.go regenerate each figure;
// cmd/rpcv-bench prints them as tables.
package rpcv
