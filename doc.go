// Package rpcv is a from-scratch Go reproduction of "RPC-V: Toward
// Fault-Tolerant RPC for Internet Connected Desktop Grids with Volatile
// Nodes" (Djilali, Hérault, Lodygensky, Morlier, Fedak, Cappello —
// SC2004).
//
// The library implements the full RPC-V protocol — three-tier
// architecture, sender-based message logging, unreliable fault
// detectors (heartbeat suspicion) on every component, and passive
// coordinator replication on a virtual ring — together with every
// substrate the paper's evaluation depends on: a deterministic
// discrete-event simulator with calibrated network/disk/database
// models, a real-time TCP runtime, a GridRPC-style API, a fault
// generator, and the synthetic + Alcatel-like workloads.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the paper-vs-measured
// comparison of every figure. The benchmarks in bench_test.go
// regenerate each figure; cmd/rpcv-bench prints them as tables.
package rpcv
