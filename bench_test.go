// Benchmarks regenerating every figure of the paper's evaluation
// (figures 4-11) plus the ablation studies, the shard-scaling
// experiment and the scheduling-policy comparison (see README.md). Each
// benchmark runs the corresponding experiment driver in quick mode and
// reports the headline measurement as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The experiments run on the virtual
// clock: b.N iterations re-run the full deterministic scenario; the
// reported metrics are virtual-time quantities (identical across
// iterations by construction), while ns/op reflects the real cost of
// simulating the scenario.
package rpcv

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"rpcv/internal/experiments"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
)

const benchSeed = 2004

func opts() experiments.Options {
	return experiments.Options{Seed: benchSeed, Quick: true}
}

// cellDur parses a duration cell out of a metrics table.
func cellDur(b *testing.B, t *metrics.Table, row, col int) float64 {
	b.Helper()
	s := t.Cell(row, col)
	if s == "0" {
		return 0
	}
	d, err := time.ParseDuration(strings.ReplaceAll(s, "us", "µs"))
	if err != nil {
		b.Fatalf("bad duration cell %q: %v", s, err)
	}
	return float64(d) / float64(time.Millisecond)
}

// BenchmarkFig4MessageLogging regenerates figure 4: RPC submission time
// for the three logging strategies. Reported metrics: mean submission
// time (ms) per strategy for 16 small calls.
func BenchmarkFig4MessageLogging(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(opts())
	}
	left := res.Tables[0]
	b.ReportMetric(cellDur(b, left, 0, 1), "ms-optimistic")
	b.ReportMetric(cellDur(b, left, 0, 2), "ms-nonblocking")
	b.ReportMetric(cellDur(b, left, 0, 3), "ms-blocking")
}

// BenchmarkFig5Replication regenerates figure 5: coordinator
// replication time, confined vs Internet, size and count sweeps.
func BenchmarkFig5Replication(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5(opts())
	}
	left := res.Tables[0]
	last := left.Rows() - 1
	b.ReportMetric(cellDur(b, left, last, 1), "ms-confined-big")
	b.ReportMetric(cellDur(b, left, last, 2), "ms-internet-big")
}

// BenchmarkFig6Synchronization regenerates figure 6: client/coordinator
// synchronization time by log location.
func BenchmarkFig6Synchronization(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig6(opts())
	}
	right := res.Tables[1]
	b.ReportMetric(cellDur(b, right, 0, 1), "ms-client-logs")
	b.ReportMetric(cellDur(b, right, 0, 2), "ms-coordinator-logs")
}

// BenchmarkFig7FaultSweep regenerates figure 7: benchmark execution
// time vs fault frequency, faulty servers vs faulty coordinators.
func BenchmarkFig7FaultSweep(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig7(opts())
	}
	t := res.Tables[0]
	last := t.Rows() - 1
	b.ReportMetric(cellDur(b, t, 0, 1)/1000, "s-nofault")
	b.ReportMetric(cellDur(b, t, last, 1)/1000, "s-servers-10pm")
	b.ReportMetric(cellDur(b, t, last, 2)/1000, "s-coords-10pm")
}

// BenchmarkFig8Workload regenerates figure 8: the Alcatel task-duration
// distribution (pure workload generation; no simulation).
func BenchmarkFig8Workload(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8(opts())
	}
	_ = res
}

// BenchmarkFig9ReferenceExecution regenerates figure 9: the Alcatel
// run without faults; reports the final counts at primary and replica.
func BenchmarkFig9ReferenceExecution(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig9(opts())
	}
	b.ReportMetric(res.Series[0].Last(), "tasks-lille")
	b.ReportMetric(res.Series[1].Last(), "tasks-lri")
}

// BenchmarkFig10CoordinatorFaults regenerates figure 10: two
// consecutive coordinator faults; reports the client's completed count
// (the run must finish despite both faults).
func BenchmarkFig10CoordinatorFaults(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10(opts())
	}
	b.ReportMetric(res.Series[2].Last(), "tasks-client")
}

// BenchmarkFig11Partition regenerates figure 11: progress under
// inconsistent views (servers on LRI, client pinned to Lille).
func BenchmarkFig11Partition(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig11(opts())
	}
	b.ReportMetric(res.Series[2].Last(), "tasks-client")
}

// BenchmarkAblationHeartbeat sweeps the heartbeat period (suspicion at
// 6x) under server faults: reactivity vs traffic.
func BenchmarkAblationHeartbeat(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.AblationHeartbeat(opts())
	}
	t := res.Tables[0]
	b.ReportMetric(cellDur(b, t, 0, 2)/1000, "s-fastest-beat")
	b.ReportMetric(cellDur(b, t, t.Rows()-1, 2)/1000, "s-slowest-beat")
}

// BenchmarkAblationReplPeriod sweeps the passive-replication period and
// reports replica staleness.
func BenchmarkAblationReplPeriod(b *testing.B) {
	if testing.Short() {
		b.Skip("three full real-life runs")
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.AblationReplicationPeriod(opts())
	}
	_ = res
}

// BenchmarkAblationRecovery compares double-crash recovery across the
// logging strategies (the paper's closing argument for non-blocking
// pessimistic logging).
func BenchmarkAblationRecovery(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.AblationRecovery(opts())
	}
	t := res.Tables[0]
	// Rows: optimistic, non-blocking, blocking; col 3 = silently lost
	// (completed pre-crash yet unrecoverable) — the decisive metric.
	var lost [3]float64
	for r := 0; r < 3; r++ {
		var n int
		if _, err := parseIntCell(t.Cell(r, 3), &n); err != nil {
			b.Fatalf("bad cell %q", t.Cell(r, 3))
		}
		lost[r] = float64(n)
	}
	b.ReportMetric(lost[0], "lost-optimistic")
	b.ReportMetric(lost[1], "lost-nonblocking")
	b.ReportMetric(lost[2], "lost-blocking")
}

func parseIntCell(s string, out *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadCell
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return n, nil
}

var errBadCell = errorString("bad int cell")

type errorString string

func (e errorString) Error() string { return string(e) }

// BenchmarkShardScale runs the shard-scaling experiment: aggregate
// submission throughput vs shard count under the fig-7 fault load.
// Reported metrics: submissions per virtual second at 1, 4 and 16
// shards (the sharded coordination layer's headline numbers).
func BenchmarkShardScale(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.ShardScale(opts())
	}
	t := res.Tables[0]
	for row := 0; row < t.Rows(); row++ {
		var tp float64
		cell := strings.ReplaceAll(t.Cell(row, 2), "e+", "e")
		if _, err := fmt.Sscanf(cell, "%g", &tp); err != nil {
			b.Fatalf("bad throughput cell %q: %v", t.Cell(row, 2), err)
		}
		b.ReportMetric(tp, "submits/s-"+t.Cell(row, 0)+"shard")
	}
}

// BenchmarkSchedCompare runs the scheduling-policy experiment:
// makespan per policy on heterogeneous-speed servers under the fault
// load, plus the work-stealing comparison. Reported metrics: seconds
// of makespan for fcfs vs the straggler-aware policies, and with work
// stealing off vs on.
func BenchmarkSchedCompare(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.SchedCompare(opts())
	}
	t := res.Tables[0]
	for row := 0; row < t.Rows(); row++ {
		b.ReportMetric(cellDur(b, t, row, 1)/1000, "s-"+t.Cell(row, 0))
	}
	steal := res.Tables[1]
	b.ReportMetric(cellDur(b, steal, 0, 1)/1000, "s-steal-off")
	b.ReportMetric(cellDur(b, steal, 1, 1)/1000, "s-steal-on")
}

// BenchmarkTransportCompare runs the transport experiment on real
// loopback TCP: the pooled persistent-connection transport vs the
// paper's connection-per-message transport, both under a Poisson
// server kill/restart load. Reported metrics: sustained submit
// throughput (acks/s) and p99 submit latency (ms) per transport — the
// pooled numbers must dominate.
func BenchmarkTransportCompare(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.TransportCompare(opts())
	}
	t := res.Tables[0]
	for row := 0; row < t.Rows(); row++ {
		name := t.Cell(row, 0) + "-" + t.Cell(row, 1)
		tp, err := strconv.ParseFloat(t.Cell(row, 2), 64)
		if err != nil {
			b.Fatalf("bad throughput cell %q: %v", t.Cell(row, 2), err)
		}
		b.ReportMetric(tp, "submits/s-"+name)
		b.ReportMetric(cellDur(b, t, row, 4), "ms-p99-"+name)
	}
}

// BenchmarkLogStoreCompare regenerates the durable-store comparison:
// blocking-pessimistic submission throughput per store engine and
// storage codec on a real loopback grid with real disks under the
// fig-7 fault load. The wal engine's group commit must show up as a
// multiple of the files engine's per-key-fsync throughput.
func BenchmarkLogStoreCompare(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.LogStoreCompare(opts())
	}
	t := res.Tables[0]
	for row := 0; row < t.Rows(); row++ {
		name := t.Cell(row, 0) + "-" + t.Cell(row, 1)
		tp, err := strconv.ParseFloat(t.Cell(row, 2), 64)
		if err != nil {
			b.Fatalf("bad throughput cell %q: %v", t.Cell(row, 2), err)
		}
		b.ReportMetric(tp, "submits/s-"+name)
		b.ReportMetric(cellDur(b, t, row, 4), "ms-p99-"+name)
	}
}

// BenchmarkCodec measures the serialization hot path itself: encode
// and decode of a small Submit — the message the figures 4-7 axes all
// stand on — under the legacy gob codec (one encoder allocation and a
// reflective walk per record, exactly what the retired hot paths paid)
// and the hand-written binary codec. The binary rows must show ≤1
// allocation per operation (the returned blob on encode, the decoded
// message on decode) and a multiple of gob's speed.
func BenchmarkCodec(b *testing.B) {
	sub := &proto.Submit{
		Call:    proto.CallID{User: "u0", Session: 1, Seq: 42},
		Service: "noop",
	}
	b.Run("encode/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = proto.CodecGob.EncodeMessage(sub)
		}
	})
	b.Run("encode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = proto.CodecBinary.EncodeMessage(sub)
		}
	})
	rawGob := proto.CodecGob.EncodeMessage(sub)
	rawBin := proto.CodecBinary.EncodeMessage(sub)
	b.Run("decode/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := proto.DecodeMessage(rawGob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/binary", func(b *testing.B) {
		b.ReportAllocs()
		var dec proto.Decoder // reused: strings intern across records
		for i := 0; i < b.N; i++ {
			if _, err := dec.DecodeMessage(rawBin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-job/gob", func(b *testing.B) {
		b.ReportAllocs()
		rec := &proto.JobRecord{Call: sub.Call, Service: "noop", State: proto.TaskPending}
		for i := 0; i < b.N; i++ {
			_ = proto.CodecGob.EncodeJob(rec)
		}
	})
	b.Run("encode-job/binary", func(b *testing.B) {
		b.ReportAllocs()
		rec := &proto.JobRecord{Call: sub.Call, Service: "noop", State: proto.TaskPending}
		for i := 0; i < b.N; i++ {
			_ = proto.CodecBinary.EncodeJob(rec)
		}
	})
}

// BenchmarkSubmissionThroughput is a micro-benchmark of the simulated
// client/coordinator submission path itself (how many virtual RPC
// submissions per real second the framework sustains).
func BenchmarkSubmissionThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4SubmissionProbe(benchSeed, msglog.Optimistic, 64, 300)
	}
}
