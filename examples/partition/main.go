// Partition: the paper's figure 11 scenario — inconsistent system
// views. Every server is prevented from seeing the "Lille" coordinator
// (and so suspects it and attaches to "LRI"); the client is forced to
// submit to Lille only; the two coordinators still see each other.
//
// Tasks and results flow
//
//	client -> Lille -> (ring replication) -> LRI -> servers
//	       <- Lille <- (ring replication) <- LRI <-
//
// proving the progress condition: the application progresses as long as
// a path exists between a client and a server, even when every
// component holds a different (partly wrong) view of who is alive.
//
// Run with:
//
//	go run ./examples/partition [-tasks 200] [-servers 40]
package main

import (
	"flag"
	"fmt"
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/db"
	"rpcv/internal/netmodel"
	"rpcv/internal/workload"
)

func main() {
	tasks := flag.Int("tasks", 200, "number of tasks")
	servers := flag.Int("servers", 40, "desktop workers")
	seed := flag.Int64("seed", 2004, "randomness seed")
	flag.Parse()

	net := netmodel.Internet(*seed)
	lille, lri := cluster.CoordinatorID(0), cluster.CoordinatorID(1)
	net.SetClass(lille, netmodel.CoordinatorClass())
	net.SetClass(lri, netmodel.CoordinatorClass())

	cl := cluster.New(cluster.Config{
		Seed:              *seed,
		Coordinators:      2,
		Servers:           *servers,
		Clients:           1,
		Net:               net,
		DBCost:            db.RealLifeCost(),
		ReplicationPeriod: 60 * time.Second,
		PollPeriod:        5 * time.Second,
		MaxTasksPerAck:    2,
	})

	// Forge the inconsistent views.
	for _, sv := range cl.ServerIDs {
		cl.Net.BlockBoth(sv, lille) // servers cannot see Lille
	}
	cli := cl.Client(0)
	cl.World.Schedule(0, func() { cli.ForcePreferred(lille) }) // client uses Lille only
	cl.Net.BlockBoth(cluster.ClientID(0), lri)                 // and cannot reach LRI

	calls := workload.Alcatel(workload.AlcatelConfig{Tasks: *tasks, Seed: *seed})
	cl.World.Schedule(0, func() {
		for _, c := range calls {
			cli.Submit(c.Service, make([]byte, c.ParamSize), c.ExecTime, c.ResultSize)
		}
	})

	fmt.Printf("partitioned views: %d servers attached to LRI, client pinned to Lille\n", *servers)
	fmt.Println("minute  lille(finished)  lri(finished)  client(results)")
	minute := 0
	for cli.ResultCount() < *tasks && cl.World.Elapsed() < 12*time.Hour {
		cl.World.RunUntil(func() bool { return cli.ResultCount() >= *tasks },
			cl.World.Now().Add(time.Minute))
		minute++
		fmt.Printf("%-7d %-16d %-14d %d\n", minute,
			cl.Coordinator(0).FinishedCount(), cl.Coordinator(1).FinishedCount(),
			cli.ResultCount())
	}
	if cli.ResultCount() >= *tasks {
		fmt.Printf("all %d tasks completed in %v despite the partitioned views\n",
			*tasks, cl.World.Elapsed().Round(time.Second))
	} else {
		fmt.Printf("incomplete: %d/%d\n", cli.ResultCount(), *tasks)
	}
}
