// Volatile: a high-churn desktop grid stress demo. A large population
// of workers joins and leaves continuously (Poisson faults with short
// MTBF, the paper's "intermittent crashes... without prior
// notification"), the coordinators themselves crash and restart, and a
// client keeps a workload flowing. The run prints churn statistics and
// proves that every call still completes exactly as submitted —
// at-least-once semantics with coordinator-side deduplication.
//
// Run with:
//
//	go run ./examples/volatile [-servers 32] [-calls 200] [-mtbf 2m]
package main

import (
	"flag"
	"fmt"
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/faultgen"
)

func main() {
	servers := flag.Int("servers", 32, "worker population")
	calls := flag.Int("calls", 200, "RPC calls to push through the grid")
	mtbf := flag.Duration("mtbf", 2*time.Minute, "per-worker mean time between failures")
	seed := flag.Int64("seed", 2004, "randomness seed")
	flag.Parse()

	cl := cluster.New(cluster.Config{
		Seed:              *seed,
		Coordinators:      3,
		Servers:           *servers,
		Clients:           1,
		ReplicationPeriod: 15 * time.Second,
	})

	gen := faultgen.New(cl.World)
	gen.Poisson(cl.ServerIDs, *mtbf, 10*time.Second)
	// The infrastructure is volatile too: coordinators fail and recover.
	gen.Poisson(cl.CoordinatorIDs, 10*(*mtbf), 20*time.Second)

	cl.SubmitBatch(0, *calls, "synthetic", 512, 8*time.Second, 128)

	cli := cl.Client(0)
	fmt.Printf("churning: %d workers (MTBF %v), 3 coordinators (MTBF %v)\n",
		*servers, *mtbf, 10*(*mtbf))
	start := cl.World.Now()
	lastReport := 0
	for cli.ResultCount() < *calls && cl.World.Elapsed() < 12*time.Hour {
		cl.World.RunUntil(func() bool { return cli.ResultCount() >= *calls },
			cl.World.Now().Add(30*time.Second))
		if got := cli.ResultCount(); got != lastReport {
			fmt.Printf("t=%-8v results=%d/%d kills=%d restarts=%d failovers=%d\n",
				cl.World.Now().Sub(start).Round(time.Second), got, *calls,
				gen.Kills(), gen.Restarts(), cli.StatsNow().Failovers)
			lastReport = got
		}
	}
	gen.Stop()

	duplicates := 0
	for i := 0; i < 3; i++ {
		duplicates += cl.Coordinator(i).StatsNow().DupResults
	}
	fmt.Printf("\n%d/%d calls completed under %d faults (%d duplicate executions deduplicated)\n",
		cli.ResultCount(), *calls, gen.Kills(), duplicates)
	if cli.ResultCount() == *calls {
		fmt.Println("the grid survived; no result was lost and none was delivered twice")
	}
}
