// Alcatel: the paper's real-life experiment as a library consumer.
// A commutation-network validation campaign of 1000 parallel tasks runs
// on a simulated Internet desktop grid with two replicated coordinators
// ("Lille" primary, "LRI" backup, 60 s passive replication). The
// program prints the per-minute completed-task counters of both
// coordinators — the data behind the paper's figure 9.
//
// Run with:
//
//	go run ./examples/alcatel [-tasks 1000] [-servers 120] [-seed 2004]
package main

import (
	"flag"
	"fmt"
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/db"
	"rpcv/internal/netmodel"
	"rpcv/internal/workload"
)

func main() {
	tasks := flag.Int("tasks", 1000, "number of parallel validation tasks")
	servers := flag.Int("servers", 120, "desktop workers in the grid")
	seed := flag.Int64("seed", 2004, "randomness seed")
	flag.Parse()

	net := netmodel.Internet(*seed)
	net.SetClass(cluster.CoordinatorID(0), netmodel.CoordinatorClass())
	net.SetClass(cluster.CoordinatorID(1), netmodel.CoordinatorClass())

	cl := cluster.New(cluster.Config{
		Seed:              *seed,
		Coordinators:      2,
		Servers:           *servers,
		Clients:           1,
		Net:               net,
		DBCost:            db.RealLifeCost(),
		ReplicationPeriod: 60 * time.Second,
		PollPeriod:        5 * time.Second,
		MaxTasksPerAck:    2,
	})

	calls := workload.Alcatel(workload.AlcatelConfig{Tasks: *tasks, Seed: *seed})
	st := workload.Summarize(calls)
	fmt.Printf("workload: %d tasks, median %v, mean %v, max %v (total CPU %v)\n",
		st.Count, st.Median.Round(time.Second), st.Mean.Round(time.Second),
		st.Max.Round(time.Second), st.Total.Round(time.Minute))

	cli := cl.Client(0)
	cl.World.Schedule(0, func() {
		for _, c := range calls {
			cli.Submit(c.Service, make([]byte, c.ParamSize), c.ExecTime, c.ResultSize)
		}
	})

	fmt.Println("minute  lille  lri  client")
	lille, lri := cl.Coordinator(0), cl.Coordinator(1)
	minute := 0
	for cli.ResultCount() < *tasks {
		if !cl.World.RunUntil(func() bool { return cli.ResultCount() >= *tasks },
			cl.World.Now().Add(time.Minute)) && cl.World.Elapsed() > 12*time.Hour {
			fmt.Println("giving up after 12 virtual hours")
			break
		}
		minute++
		fmt.Printf("%-7d %-6d %-4d %d\n", minute, lille.FinishedCount(), lri.FinishedCount(),
			cli.ResultCount())
	}
	fmt.Printf("campaign finished in %v of virtual time; LRI trailed Lille by the replication period throughout\n",
		cl.World.Elapsed().Round(time.Second))
}
