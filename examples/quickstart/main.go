// Quickstart: a complete RPC-V grid in one process, on real TCP
// sockets — one coordinator, three volatile workers, and a GridRPC
// client session. One worker is killed abruptly mid-run to show the
// fault tolerance working; every call still completes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/gridrpc"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
	"rpcv/internal/shared"
)

func main() {
	// Millisecond timescales so the demo runs in seconds; a real
	// deployment uses the paper's 5 s heartbeat / 30 s suspicion.
	const (
		beat    = 50 * time.Millisecond
		suspect = 500 * time.Millisecond
	)
	quiet := func(string, ...any) {}
	tmp, err := os.MkdirTemp("", "rpcv-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// --- Middle tier: the coordinator ---------------------------------
	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"coord"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.RealLifeCost(),
	})
	rco, err := rt.Start(rt.Config{
		ID: "coord", ListenAddr: "127.0.0.1:0", Handler: co,
		DiskDir: filepath.Join(tmp, "coord"), Logf: quiet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rco.Close()
	fmt.Printf("coordinator up at %s\n", rco.Addr())

	// --- Third tier: three workers ------------------------------------
	dir := rt.Directory{"coord": rco.Addr()}
	services := shared.BuiltinServices()
	// A file service: count lines per input file (the paper's
	// file-transport mode: directories travel as compressed archives).
	services["linecount"] = gridrpc.FileService(func(in gridrpc.Files) (gridrpc.Files, error) {
		out := make(gridrpc.Files)
		for name, payload := range in {
			n := 0
			for _, b := range payload {
				if b == '\n' {
					n++
				}
			}
			out[name+".lines"] = []byte(fmt.Sprintf("%d", n))
		}
		return out, nil
	})
	var workers []*rt.Runtime
	for i := 0; i < 3; i++ {
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"coord"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
		})
		id := proto.NodeID(fmt.Sprintf("worker-%d", i))
		rsv, err := rt.Start(rt.Config{
			ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
			Directory: dir, DiskDir: filepath.Join(tmp, string(id)), Logf: quiet,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rsv.Close()
		rco.SetPeer(id, rsv.Addr())
		workers = append(workers, rsv)
	}
	fmt.Println("3 workers pulling tasks")

	// --- First tier: a GridRPC session --------------------------------
	sess, err := gridrpc.Dial(gridrpc.Config{
		User:             "demo",
		Session:          1,
		Coordinators:     map[string]string{"coord": rco.Addr()},
		DiskDir:          filepath.Join(tmp, "client"),
		Logging:          msglog.NonBlockingPessimistic,
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	// Loopback has no address learning: tell the coordinator where the
	// client listens.
	rco.SetPeer("client-demo-1", sess.Addr())

	// Blocking call.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	out, err := sess.Call(ctx, "upper", []byte("remote procedure call for volatile nodes"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upper -> %q\n", out)

	// A burst of non-blocking calls, with a worker dying mid-flight.
	var handles []*gridrpc.Handle
	for i := 0; i < 12; i++ {
		h, err := sess.CallAsync("sleep", []byte("100ms"))
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	fmt.Println("submitted 12 sleep(100ms) calls; killing worker-0 abruptly...")
	workers[0].Close() // crash-stop: no goodbye message

	if err := sess.WaitAll(ctx, handles); err != nil {
		log.Fatal(err)
	}

	// File-transport mode: ship a directory-as-archive, get files back.
	files, err := sess.CallFiles(ctx, "linecount", gridrpc.Files{
		"report.txt": []byte("line one\nline two\nline three\n"),
		"notes.txt":  []byte("a single line\n"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linecount -> report.txt:%s notes.txt:%s\n",
		files["report.txt.lines"], files["notes.txt.lines"])

	st := sess.Stats()
	fmt.Printf("all %d calls completed despite the crash (failovers=%d)\n",
		st.Results, st.Failovers)
}
