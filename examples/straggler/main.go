// Straggler: speculative execution vs FCFS on a cluster with one
// 10x-slow server — the volatile-node regime RPC-V's evaluation is
// about, where a silently degraded machine holds a whole batch
// hostage. The demo runs the same deterministic workload twice, once
// under the paper's FCFS scheduling and once under the "speculative"
// policy of internal/sched, and prints how the duplicate-and-race
// strategy rescues the stragglers' tasks: the batch finishes in a
// fraction of the FCFS time, every duplicate's loser is cancelled or
// deduplicated, and the client still receives exactly one result per
// call.
//
// Run with:
//
//	go run ./examples/straggler [-servers 8] [-calls 64] [-slowdown 10]
package main

import (
	"flag"
	"fmt"
	"time"

	"rpcv/internal/cluster"
)

func main() {
	servers := flag.Int("servers", 8, "worker population (the first is slow)")
	calls := flag.Int("calls", 64, "RPC calls in the batch")
	slowdown := flag.Float64("slowdown", 10, "slow server's execution time multiplier")
	seed := flag.Int64("seed", 2004, "randomness seed")
	flag.Parse()

	taskTime := 10 * time.Second
	run := func(policy string) (time.Duration, cluster.Cluster) {
		cl := cluster.New(cluster.Config{
			Seed:         *seed,
			Coordinators: 2,
			Servers:      *servers,
			Clients:      1,
			Policy:       policy,
			Parallelism:  2,
			ServerSpeed: func(i int) float64 {
				if i == 0 {
					return *slowdown
				}
				return 1
			},
			ReplicationPeriod: 10 * time.Second,
		})
		start := cl.World.Now()
		cl.SubmitBatch(0, *calls, "synthetic", 512, taskTime, 128)
		if !cl.RunUntilResults(0, *calls, 4*time.Hour) {
			fmt.Printf("%s: batch did not complete!\n", policy)
		}
		return cl.World.Now().Sub(start), *cl
	}

	fmt.Printf("batch: %d x %v calls on %d servers, server-000 is %gx slow\n\n",
		*calls, taskTime, *servers, *slowdown)

	fcfsTime, _ := run("fcfs")
	fmt.Printf("fcfs:        makespan %v (the slow server's grabs gate the batch)\n",
		fcfsTime.Round(time.Second))

	specTime, cl := run("speculative")
	speculated, specWins := 0, 0
	for _, co := range cl.Coordinators {
		st := co.StatsNow()
		speculated += st.Speculated
		specWins += st.SpecWins
	}
	discarded := 0
	for _, sv := range cl.Servers {
		discarded += sv.StatsNow().Discarded
	}
	fmt.Printf("speculative: makespan %v (%d duplicates issued, %d won the race, %d loser executions discarded)\n",
		specTime.Round(time.Second), speculated, specWins, discarded)
	fmt.Printf("client results: %d/%d, exactly one per call\n\n", cl.Client(0).ResultCount(), *calls)

	if specTime < fcfsTime {
		fmt.Printf("speculative execution cut the makespan by %.0f%%\n",
			100*(1-float64(specTime)/float64(fcfsTime)))
	}
}
