package gridrpc

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rpcv/internal/server"
)

// wordcount is a file service: counts words per input file and emits a
// "<name>.count" output per input, plus a "total" file.
func wordcount(in Files) (Files, error) {
	out := make(Files)
	total := 0
	for name, payload := range in {
		n := len(strings.Fields(string(payload)))
		total += n
		out[name+".count"] = []byte(intToString(n))
	}
	out["total"] = []byte(intToString(total))
	return out, nil
}

func intToString(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCallFilesRoundTrip(t *testing.T) {
	coords, register := gridWithRegistrar(t, 2, map[string]server.Service{
		"wordcount": FileService(wordcount),
	})
	s := dialTest(t, coords, Config{User: "files", Session: 1})
	register(s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	out, err := s.CallFiles(ctx, "wordcount", Files{
		"a.txt": []byte("one two three"),
		"b.txt": []byte("four five"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out["a.txt.count"]) != "3" || string(out["b.txt.count"]) != "2" {
		t.Fatalf("counts = %q %q", out["a.txt.count"], out["b.txt.count"])
	}
	if string(out["total"]) != "5" {
		t.Fatalf("total = %q", out["total"])
	}
}

func TestCallFilesLargePayload(t *testing.T) {
	coords, register := gridWithRegistrar(t, 1, map[string]server.Service{
		"identity": FileService(func(in Files) (Files, error) { return in, nil }),
	})
	s := dialTest(t, coords, Config{User: "big", Session: 1})
	register(s)

	blob := bytes.Repeat([]byte{0xAB, 0x00, 0xCD}, 100_000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := s.CallFiles(ctx, "identity", Files{"blob.bin": blob})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out["blob.bin"], blob) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestFileServiceRejectsGarbageParams(t *testing.T) {
	svc := FileService(func(in Files) (Files, error) { return in, nil })
	if _, err := svc([]byte("not an archive")); err == nil {
		t.Fatal("file service accepted garbage parameters")
	}
}

func TestFileServiceErrorPropagates(t *testing.T) {
	coords, register := gridWithRegistrar(t, 1, map[string]server.Service{
		"angry": FileService(func(Files) (Files, error) {
			return nil, errors.New("bad input files")
		}),
	})
	s := dialTest(t, coords, Config{User: "err", Session: 1})
	register(s)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_, err := s.CallFiles(ctx, "angry", Files{"x": nil})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}
