package gridrpc

import (
	"context"
	"fmt"

	"rpcv/internal/archive"
	"rpcv/internal/server"
)

// This file implements the paper's second data communication mode:
// "file transport where a file or a directory is compressed into an
// archive file" (§2.1). CallFiles ships a set of named files as the
// call parameters; the service receives them unpacked and returns a set
// of output files (the archive of new or modified files of §4.2),
// which Wait returns decoded.

// Files is a named file set moved through an RPC call.
type Files map[string][]byte

// CallFilesAsync submits a non-blocking call whose parameters are a
// compressed file archive.
func (s *Session) CallFilesAsync(service string, files Files) (*FileHandle, error) {
	a := archive.New()
	for name, payload := range files {
		a.Add(name, payload)
	}
	enc, err := a.Encode()
	if err != nil {
		return nil, fmt.Errorf("gridrpc: pack: %w", err)
	}
	h, err := s.CallAsync(service, enc)
	if err != nil {
		return nil, err
	}
	return &FileHandle{Handle: h}, nil
}

// CallFiles is the blocking variant of CallFilesAsync.
func (s *Session) CallFiles(ctx context.Context, service string, files Files) (Files, error) {
	h, err := s.CallFilesAsync(service, files)
	if err != nil {
		return nil, err
	}
	return h.WaitFiles(ctx)
}

// FileHandle tracks one asynchronous file-transport call.
type FileHandle struct {
	*Handle
}

// WaitFiles waits for the call and decodes the result archive.
func (h *FileHandle) WaitFiles(ctx context.Context) (Files, error) {
	raw, err := h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	a, err := archive.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("gridrpc: unpack result: %w", err)
	}
	out := make(Files, a.Len())
	for _, name := range a.Names() {
		payload, _ := a.Get(name)
		out[name] = payload
	}
	return out, nil
}

// FileService adapts a function over file sets into a server.Service:
// the worker-side half of the file transport mode. The adapted service
// stays stateless — re-executing it on the same archive is harmless,
// per RPC-V's at-least-once semantics.
func FileService(fn func(in Files) (Files, error)) server.Service {
	return func(params []byte) ([]byte, error) {
		a, err := archive.Decode(params)
		if err != nil {
			return nil, fmt.Errorf("file service: unpack params: %w", err)
		}
		in := make(Files, a.Len())
		for _, name := range a.Names() {
			payload, _ := a.Get(name)
			in[name] = payload
		}
		out, err := fn(in)
		if err != nil {
			return nil, err
		}
		res := archive.New()
		for name, payload := range out {
			res.Add(name, payload)
		}
		return res.Encode()
	}
}
