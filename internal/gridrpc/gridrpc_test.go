package gridrpc

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
)

func quiet(string, ...any) {}

// dialTest dials a session and registers its address with the
// coordinator runtime (loopback has no NAT learning).
func dialTest(t *testing.T, coords map[string]string, cfg Config) *Session {
	t.Helper()
	cfg.Coordinators = coords
	cfg.PollPeriod = 50 * time.Millisecond
	cfg.SuspicionTimeout = 500 * time.Millisecond
	s, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestCallBlocking(t *testing.T) {
	coords, register := gridWithRegistrar(t, 2, map[string]server.Service{
		"rev": func(p []byte) ([]byte, error) {
			out := make([]byte, len(p))
			for i := range p {
				out[i] = p[len(p)-1-i]
			}
			return out, nil
		},
	})
	s := dialTest(t, coords, Config{User: "alice", Session: 1})
	register(s)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out, err := s.Call(ctx, "rev", []byte("abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "fedcba" {
		t.Fatalf("out = %q", out)
	}
}

func TestCallAsyncProbeWait(t *testing.T) {
	coords, register := gridWithRegistrar(t, 2, map[string]server.Service{
		"id": func(p []byte) ([]byte, error) { return p, nil },
	})
	s := dialTest(t, coords, Config{User: "bob", Session: 1})
	register(s)

	var handles []*Handle
	for i := 0; i < 5; i++ {
		h, err := s.CallAsync("id", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Handles carry distinct sequence IDs.
	seen := map[uint64]bool{}
	for _, h := range handles {
		if seen[h.Seq()] {
			t.Fatal("duplicate handle seq")
		}
		seen[h.Seq()] = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.WaitAll(ctx, handles); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if !h.Probe() {
			t.Fatalf("handle %d not complete after WaitAll", i)
		}
		out, err := h.Wait(ctx)
		if err != nil || len(out) != 1 || out[0] != byte(i) {
			t.Fatalf("handle %d result = %v,%v", i, out, err)
		}
	}
}

func TestRemoteErrorSurfaced(t *testing.T) {
	coords, register := gridWithRegistrar(t, 1, map[string]server.Service{
		"fail": func([]byte) ([]byte, error) { return nil, errors.New("service exploded") },
	})
	s := dialTest(t, coords, Config{User: "carol", Session: 1})
	register(s)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_, err := s.Call(ctx, "fail", nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestWaitHonoursContext(t *testing.T) {
	coords, register := gridWithRegistrar(t, 0, nil) // no servers: never completes
	s := dialTest(t, coords, Config{User: "dave", Session: 1})
	register(s)
	h, err := s.CallAsync("noone", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestClosedSessionRejectsCalls(t *testing.T) {
	coords, register := gridWithRegistrar(t, 0, nil)
	s := dialTest(t, coords, Config{User: "erin", Session: 1})
	register(s)
	s.Close()
	if _, err := s.CallAsync("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Fatal("Dial accepted empty coordinator list")
	}
}

// gridWithRegistrar is grid() plus a callback registering a session's
// listen address with the coordinator runtime.
func gridWithRegistrar(t *testing.T, n int, services map[string]server.Service) (map[string]string, func(*Session)) {
	t.Helper()
	const beat = 50 * time.Millisecond
	const suspect = 500 * time.Millisecond

	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatTimeout: suspect,
		HeartbeatPeriod:  beat,
		DBCost:           db.CostModel{PerOp: 50 * time.Microsecond},
	})
	rco, err := rt.Start(rt.Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: co,
		DiskDir: filepath.Join(t.TempDir(), "co"), Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rco.Close)

	dir := rt.Directory{"co": rco.Addr()}
	for i := 0; i < n; i++ {
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
		})
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		rsv, err := rt.Start(rt.Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
			Directory: dir, DiskDir: filepath.Join(t.TempDir(), string(id)), Logf: quiet})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rsv.Close)
		rco.SetPeer(id, rsv.Addr())
	}
	register := func(s *Session) {
		rco.SetPeer(proto.NodeID(fmt.Sprintf("client-%s-%d", s.cfg.User, s.cfg.Session)), s.Addr())
	}
	return map[string]string{"co": rco.Addr()}, register
}

// TestSessionIDCollisionRegression guards the session unique ID
// source. It used to be time.Now().UnixNano() verbatim, so two
// sessions dialled in the same instant — trivial with concurrent
// clients, guaranteed on coarse-clock platforms — collided and
// interleaved their (user, session, rpc) CallIDs. With entropy mixed
// in, a large concurrent batch must contain no duplicates.
func TestSessionIDCollisionRegression(t *testing.T) {
	const goroutines, per = 8, 2000
	ids := make(chan uint64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- newSessionID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool, goroutines*per)
	for id := range ids {
		if id == 0 {
			t.Fatal("session ID 0 is reserved for 'derive one'")
		}
		if seen[id] {
			t.Fatalf("session ID collision: %d", id)
		}
		seen[id] = true
	}
}
