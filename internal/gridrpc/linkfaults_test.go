package gridrpc

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rpcv/internal/netmodel"
	"rpcv/internal/rt"
)

// sink is a TCP server that accumulates every byte it receives.
type sink struct {
	ln net.Listener
	mu sync.Mutex
	b  []byte
}

func newSink(t *testing.T) *sink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						s.mu.Lock()
						s.b = append(s.b, buf[:n]...)
						s.mu.Unlock()
					}
					if err != nil {
						_ = c.Close()
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *sink) got() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLinkFaultsForwardBlockHeal(t *testing.T) {
	target := newSink(t)
	rules := netmodel.NewRules()
	f := NewLinkFaults(rules, t.Logf)
	defer f.Close()
	f.SetTarget("b", target.ln.Addr().String())
	addr, err := f.Addr("a", "b")
	if err != nil {
		t.Fatal(err)
	}

	// Open link: bytes flow through.
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "forwarded bytes", func() bool { return target.got() == "one" })

	// Block: the live connection is severed...
	rules.BlockLink("a", "b")
	waitFor(t, "severed conn", func() bool {
		_ = c1.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		_, werr := c1.Write([]byte("x"))
		return werr != nil
	})
	_ = c1.Close()

	// ...and a redial handshakes (the peer looks reachable: asymmetric
	// partition, not a dead host) but nothing is forwarded.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial during block must succeed (black-hole): %v", err)
	}
	if _, err := c2.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := target.got(); got != "one" {
		t.Fatalf("bytes leaked through a blocked link: %q", got)
	}

	// Heal: the black-holed conn is dropped (sender must redial) and a
	// fresh connection forwards from its first byte.
	rules.HealLink("a", "b")
	waitFor(t, "black-holed conn closed", func() bool {
		_ = c2.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		_, werr := c2.Write([]byte("x"))
		return werr != nil
	})
	_ = c2.Close()
	c3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c3.Close() }()
	if _, err := c3.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-heal bytes", func() bool { return target.got() == "onetwo" })
}

// One-way semantics at the directory level: blocking a->b must leave
// b->a flowing, because each direction rides its own proxy.
func TestLinkFaultsOneWayAcrossDirectory(t *testing.T) {
	sa, sb := newSink(t), newSink(t)
	rules := netmodel.NewRules()
	f := NewLinkFaults(rules, t.Logf)
	defer f.Close()

	real := rt.Directory{"a": sa.ln.Addr().String(), "b": sb.ln.Addr().String()}
	dirA, err := f.Directory("a", real) // what node a dials
	if err != nil {
		t.Fatal(err)
	}
	dirB, err := f.Directory("b", real) // what node b dials
	if err != nil {
		t.Fatal(err)
	}

	rules.BlockLink("a", "b")

	ca, err := net.Dial("tcp", dirA["b"]) // a -> b: blocked
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ca.Close() }()
	cb, err := net.Dial("tcp", dirB["a"]) // b -> a: open
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cb.Close() }()

	if _, err := ca.Write([]byte("to-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Write([]byte("to-a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reverse direction", func() bool { return sa.got() == "to-a" })
	if got := sb.got(); got != "" {
		t.Fatalf("blocked direction delivered %q", got)
	}
}

// Retargeting after a "restart": the proxy address stays stable while
// the backing target moves; new connections land on the new target.
func TestLinkFaultsRetarget(t *testing.T) {
	old, fresh := newSink(t), newSink(t)
	f := NewLinkFaults(nil, t.Logf)
	defer f.Close()

	f.SetTarget("b", old.ln.Addr().String())
	addr, err := f.Addr("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "old target bytes", func() bool { return old.got() == "before" })

	f.SetTarget("b", fresh.ln.Addr().String())
	waitFor(t, "stale conn severed", func() bool {
		_ = c1.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		_, werr := c1.Write([]byte("x"))
		return werr != nil
	})
	_ = c1.Close()

	c2, err := net.Dial("tcp", addr) // same proxy address
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	if _, err := c2.Write([]byte("after")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new target bytes", func() bool { return fresh.got() == "after" })
	// The probe "x" writes may have raced through before the sever; the
	// post-retarget payload must not have.
	if got := old.got(); strings.Contains(got, "after") {
		t.Fatalf("old target got %q after retarget", got)
	}
}
