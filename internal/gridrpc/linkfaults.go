package gridrpc

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rpcv/internal/netmodel"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
)

// LinkFaults imposes a netmodel.Rules fault schedule — directed link
// blocks and group partitions — onto a real-TCP loopback grid, so the
// same rule set that drives the discrete-event simulator drives live
// clusters. One tiny TCP proxy per *directed* link: node "from"
// reaches node "to" through the (from, to) proxy, so blocking from->to
// silences that direction while to->from (its own proxy) keeps
// flowing. This matches the runtime's transport shape, where pooled
// connections are unidirectional (the sender dials and writes, the
// receiver only reads).
//
// Block semantics are chosen to keep framing intact across heals: a
// connection is only ever forwarded from its first byte. While a link
// is blocked, established connections are severed and new inbound
// connections are black-holed — accepted (TCP handshake succeeds,
// the peer looks reachable) but no byte is ever forwarded, which is
// the asymmetric-partition signature: you can connect, you cannot be
// heard. On heal the black-holed connections are closed so the sender
// redials and the fresh connection forwards cleanly.
//
// Targets are registered by node, not baked into the proxy: after a
// crash-restart changes a node's port, SetTarget repoints every proxy
// for that node while the proxy addresses handed to peers stay stable.
type LinkFaults struct {
	rules *netmodel.Rules
	logf  func(format string, args ...any)

	mu      sync.Mutex
	targets map[proto.NodeID]string
	links   map[linkKey]*linkProxy
	closed  bool
}

type linkKey struct{ from, to proto.NodeID }

// NewLinkFaults builds a fault plane over rules. A nil rules gets a
// fresh (permissive) rule set; nil logf silences tracing.
func NewLinkFaults(rules *netmodel.Rules, logf func(string, ...any)) *LinkFaults {
	if rules == nil {
		rules = netmodel.NewRules()
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &LinkFaults{
		rules:   rules,
		logf:    logf,
		targets: make(map[proto.NodeID]string),
		links:   make(map[linkKey]*linkProxy),
	}
}

// Rules returns the shared rule set (block/heal through it).
func (f *LinkFaults) Rules() *netmodel.Rules { return f.rules }

// SetTarget registers (or repoints, after a restart) node id's real
// listen address. Existing proxied connections to a stale address die
// on their next write and the sender's redial lands on the new one.
func (f *LinkFaults) SetTarget(id proto.NodeID, addr string) {
	f.mu.Lock()
	f.targets[id] = addr
	f.mu.Unlock()
}

// Addr returns the stable proxy address node from should dial to reach
// node to, creating the per-link proxy on first use. The target may be
// registered before or after (dials before SetTarget fail and are
// retried by the transport, as any down peer is).
func (f *LinkFaults) Addr(from, to proto.NodeID) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return "", fmt.Errorf("gridrpc: link faults closed")
	}
	k := linkKey{from, to}
	if p, ok := f.links[k]; ok {
		return p.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("gridrpc: link proxy %s->%s: %w", from, to, err)
	}
	p := &linkProxy{f: f, from: from, to: to, ln: ln, conns: make(map[net.Conn]struct{})}
	f.links[k] = p
	go p.accept()
	return ln.Addr().String(), nil
}

// Directory rewrites a real directory into the one node from should
// use: every entry routed through this fault plane's (from, to) proxy,
// with the real addresses registered as targets.
func (f *LinkFaults) Directory(from proto.NodeID, real rt.Directory) (rt.Directory, error) {
	out := make(rt.Directory, len(real))
	for to, addr := range real {
		f.SetTarget(to, addr)
		pa, err := f.Addr(from, to)
		if err != nil {
			return nil, err
		}
		out[to] = pa
	}
	return out, nil
}

// Close tears down every proxy and connection.
func (f *LinkFaults) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	links := make([]*linkProxy, 0, len(f.links))
	for _, p := range f.links {
		links = append(links, p)
	}
	f.mu.Unlock()
	for _, p := range links {
		p.close()
	}
}

func (f *LinkFaults) target(id proto.NodeID) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.targets[id]
	return a, ok
}

// rulePollPeriod bounds how long after a Block/Heal a live connection
// keeps its old behavior: each pump iteration re-checks the rules at
// least this often.
const rulePollPeriod = 25 * time.Millisecond

type linkProxy struct {
	f    *LinkFaults
	from proto.NodeID
	to   proto.NodeID
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (p *linkProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			_ = conn.Close() // deliberate: proxy shutting down
			return
		}
		go p.pump(conn)
	}
}

func (p *linkProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *linkProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *linkProxy) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	_ = p.ln.Close() // deliberate: shutdown; accept loop exits on error
	for _, c := range conns {
		_ = c.Close() // deliberate: shutdown
	}
}

// pump serves one inbound connection from the sender side of the link.
// Blocked at accept time: black-hole (read and discard until heal,
// then close so the sender redials). Open: forward byte-for-byte to
// the target, severing the moment the link blocks or the target
// changes underneath us.
func (p *linkProxy) pump(up net.Conn) {
	defer p.untrack(up)
	defer func() { _ = up.Close() }() // deliberate: pump teardown

	if p.f.rules.Blocked(p.from, p.to) {
		p.f.logf("linkfaults: %s->%s blocked at connect; black-holing", p.from, p.to)
		p.blackhole(up)
		return
	}

	addr, ok := p.f.target(p.to)
	if !ok {
		p.f.logf("linkfaults: %s->%s: no target registered", p.from, p.to)
		return
	}
	down, err := net.Dial("tcp", addr)
	if err != nil {
		p.f.logf("linkfaults: %s->%s dial %s: %v", p.from, p.to, addr, err)
		return
	}
	if !p.track(down) {
		_ = down.Close() // deliberate: proxy shutting down
		return
	}
	defer p.untrack(down)
	defer func() { _ = down.Close() }() // deliberate: pump teardown

	// Reverse direction (the runtime's pooled connections are
	// unidirectional, but the legacy transport and TCP itself may move
	// bytes back): plain copy, ending when either side closes.
	go func() {
		_, _ = io.Copy(up, down) // deliberate: reverse-path close is the signal
		_ = up.Close()           // deliberate: unblock the forward read
	}()

	buf := make([]byte, 32*1024)
	for {
		if p.f.rules.Blocked(p.from, p.to) {
			// Sever: the sender sees a dead connection and redials;
			// the redial is black-holed until heal.
			p.f.logf("linkfaults: %s->%s blocked; severing", p.from, p.to)
			return
		}
		if cur, _ := p.f.target(p.to); cur != addr {
			p.f.logf("linkfaults: %s->%s retargeted; severing", p.from, p.to)
			return
		}
		_ = up.SetReadDeadline(time.Now().Add(rulePollPeriod)) // deliberate: poll tick
		n, err := up.Read(buf)
		if n > 0 {
			// Re-check after the (possibly long) read: bytes that
			// arrived after the block was set must not leak through.
			if p.f.rules.Blocked(p.from, p.to) {
				p.f.logf("linkfaults: %s->%s blocked; severing", p.from, p.to)
				return
			}
			if _, werr := down.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // poll tick: re-check rules
			}
			return
		}
	}
}

// blackhole consumes and discards the connection until the link heals
// (then closes it, prompting a clean redial) or the proxy closes.
func (p *linkProxy) blackhole(up net.Conn) {
	buf := make([]byte, 32*1024)
	for {
		if !p.f.rules.Blocked(p.from, p.to) {
			p.f.logf("linkfaults: %s->%s healed; dropping black-holed conn", p.from, p.to)
			return
		}
		_ = up.SetReadDeadline(time.Now().Add(rulePollPeriod)) // deliberate: poll tick
		if _, err := up.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}
