// Package gridrpc is RPC-V's public programming interface: a Go
// rendition of the GridRPC API (Seymour et al., GRID 2002) as the paper
// adopts it.
//
// Per the paper (§4.2), the RPC-V API is GridRPC-compliant *except* the
// Remote Function Handle Management functions, which are deliberately
// absent: the coordinator's virtualization and forwarding make function
// handles unnecessary — the client never connects to a server directly,
// it only names the service. Any client application written against
// the GridRPC call/wait/probe subset runs on RPC-V.
//
// The mapping from the C API:
//
//	grpc_initialize  -> Dial
//	grpc_call        -> Session.Call (blocking)
//	grpc_call_async  -> Session.CallAsync (returns a *Handle)
//	grpc_probe       -> Handle.Probe
//	grpc_wait        -> Handle.Wait
//	grpc_wait_all    -> Session.WaitAll
//	grpc_finalize    -> Session.Close
//
// A Session hosts an RPC-V client node on the real-time runtime
// (internal/rt); everything underneath — message logging, fault
// suspicion, coordinator failover, synchronization — is automatic and
// transparent, which is the paper's headline property.
package gridrpc

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/msglog"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/shard"
)

// Config parameterizes a Session.
type Config struct {
	// User identifies the grid user (certificate subject in a full
	// deployment). Default "anonymous".
	User string
	// Session is the session unique ID; 0 derives a fresh one from
	// crypto/rand entropy (collision-free even for sessions created in
	// the same clock instant). A relaunched client instance passes the
	// previous value to retrieve results by (user, session, rpc) IDs.
	Session uint64
	// Coordinators maps coordinator IDs to TCP addresses — the finite
	// list of known coordinators.
	Coordinators map[string]string
	// ListenAddr is this client's address for coordinator replies.
	// Default "127.0.0.1:0".
	ListenAddr string
	// DiskDir backs the client's message log; empty means volatile.
	DiskDir string
	// Store selects the durable-store engine backing DiskDir ("files",
	// the default, or "wal"; see internal/store). With "wal",
	// concurrent CallAsync submissions' log entries share group-commit
	// fsyncs, cutting pessimistic-logging overhead.
	Store string
	// Logging selects the message-logging strategy. The paper
	// recommends non-blocking pessimistic: submission time close to
	// optimistic, shorter re-submission after a double crash.
	Logging msglog.Strategy
	// PollPeriod is the result-pull period (default 1 s).
	PollPeriod time.Duration
	// SuspicionTimeout is the coordinator fault-suspicion timeout
	// (default 30 s, the paper's setting).
	SuspicionTimeout time.Duration
	// Logf receives trace output; nil silences it.
	Logf func(format string, args ...any)
	// LegacyTransport reverts the session's runtime to the paper's
	// connection-per-message transport (see rt.Config.LegacyTransport)
	// — the escape hatch when talking to pre-pooling binaries.
	LegacyTransport bool
	// Wire selects the codec the session's connections and message log
	// use: "binary" (default) or "gob" (interop with pre-binary
	// coordinators; see rt.Config.Wire). Receiving and log recovery
	// auto-detect either codec regardless.
	Wire string
	// Shard is the cached consistent-hash shard map of a sharded
	// deployment (nil: unsharded). The session routes to its owner ring
	// and follows redirects carrying newer maps automatically.
	Shard *shard.Map
	// Obs, when non-nil, wires the session's client and runtime into an
	// observability plane (metrics registry + lifecycle tracer; see
	// internal/obs). Nil disables instrumentation.
	Obs *obs.Observer
	// Loops is the number of per-core event loops for the session's
	// runtime (see rt.Config.Loops). A client handler serves a single
	// (user, session) pair, so it is not partitioned and the runtime
	// clamps multi-loop requests to 1; the knob exists so deployments
	// can pass one fleet-wide value through every component.
	Loops int
}

// ErrCancelled is returned by Wait when the context ends first.
var ErrCancelled = errors.New("gridrpc: wait cancelled")

// ErrClosed is returned by calls on a closed session.
var ErrClosed = errors.New("gridrpc: session closed")

// RemoteError wraps a failure reported by the remote service itself
// (the RPC executed, at least once, and returned an error).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "gridrpc: remote: " + e.Msg }

// Session is a connected RPC-V client.
type Session struct {
	cfg Config
	rtm *rt.Runtime
	cli *client.Client

	mu      sync.Mutex
	waiters map[proto.RPCSeq][]chan proto.Result
	done    map[proto.RPCSeq]proto.Result
	closed  bool
}

// sessionFallback disambiguates clock-derived session IDs when the
// entropy source is unavailable.
var sessionFallback atomic.Uint64

// newSessionID derives a fresh session unique ID. The clock alone is
// not enough: two sessions created in the same instant — easy with
// concurrent Dials, guaranteed on platforms with coarse clocks — would
// share a session ID and interleave their (user, session, rpc)
// CallIDs, corrupting both clients' result retrieval. Entropy from
// crypto/rand makes uniqueness independent of clock resolution.
func newSessionID() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	// Entropy unavailable (or the astronomically unlikely zero draw):
	// fall back to the clock mixed with a process-unique counter.
	id := uint64(time.Now().UnixNano()) + sessionFallback.Add(1)
	if id == 0 {
		id = 1 // zero means "derive one" in Config
	}
	return id
}

// Dial connects a new session to the grid (grpc_initialize).
func Dial(cfg Config) (*Session, error) {
	if len(cfg.Coordinators) == 0 {
		return nil, fmt.Errorf("gridrpc: no coordinators configured")
	}
	if cfg.User == "" {
		cfg.User = "anonymous"
	}
	if cfg.Session == 0 {
		cfg.Session = newSessionID()
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	s := &Session{
		cfg:     cfg,
		waiters: make(map[proto.RPCSeq][]chan proto.Result),
		done:    make(map[proto.RPCSeq]proto.Result),
	}

	var coordIDs []proto.NodeID
	dir := rt.Directory{}
	for id, addr := range cfg.Coordinators {
		coordIDs = append(coordIDs, proto.NodeID(id))
		dir[proto.NodeID(id)] = addr
	}

	wire, err := proto.ParseWire(cfg.Wire)
	if err != nil {
		return nil, fmt.Errorf("gridrpc: %w", err)
	}

	s.cli = client.New(client.Config{
		User:             proto.UserID(cfg.User),
		Session:          proto.SessionID(cfg.Session),
		Coordinators:     coordIDs,
		PollPeriod:       cfg.PollPeriod,
		SuspicionTimeout: cfg.SuspicionTimeout,
		Logging:          cfg.Logging,
		Shard:            cfg.Shard,
		OnResult:         s.onResult,
		Codec:            proto.CodecForWire(wire),
		Obs:              cfg.Obs,
	})

	id := proto.NodeID(fmt.Sprintf("client-%s-%d", cfg.User, cfg.Session))
	rtm, err := rt.Start(rt.Config{
		ID:              id,
		ListenAddr:      cfg.ListenAddr,
		Directory:       dir,
		DiskDir:         cfg.DiskDir,
		Store:           cfg.Store,
		Handler:         s.cli,
		Logf:            logf,
		LegacyTransport: cfg.LegacyTransport,
		Wire:            wire,
		Loops:           cfg.Loops,
		Obs:             cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	s.rtm = rtm
	return s, nil
}

// Addr returns the session's listen address (coordinators reply here;
// in a NATed deployment the coordinator learns it from the connection).
func (s *Session) Addr() string { return s.rtm.Addr() }

func (s *Session) onResult(res proto.Result, _ time.Time) {
	s.mu.Lock()
	s.done[res.Call.Seq] = res
	waiters := s.waiters[res.Call.Seq]
	delete(s.waiters, res.Call.Seq)
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- res
	}
}

// Handle tracks one asynchronous call (grpc_sessionid_t).
type Handle struct {
	s   *Session
	seq proto.RPCSeq
}

// Seq returns the RPC unique ID of this call within the session.
func (h *Handle) Seq() uint64 { return uint64(h.seq) }

// CallAsync submits a non-blocking call (grpc_call_async). Consecutive
// CallAsync invocations lead to concurrent executions server-side.
func (s *Session) CallAsync(service string, params []byte) (*Handle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()
	var seq proto.RPCSeq
	s.rtm.Do(func() { seq = s.cli.Submit(service, params, 0, 0) })
	return &Handle{s: s, seq: seq}, nil
}

// Call submits a blocking call (grpc_call): it returns when the result
// is available, the service failed, or ctx ends.
func (s *Session) Call(ctx context.Context, service string, params []byte) ([]byte, error) {
	h, err := s.CallAsync(service, params)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// Probe reports whether the call has completed (grpc_probe).
func (h *Handle) Probe() bool {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	_, ok := h.s.done[h.seq]
	return ok
}

// Wait blocks until the call completes (grpc_wait) or ctx ends. The
// result arrives even across coordinator crashes and client failovers,
// as long as the progress condition holds.
func (h *Handle) Wait(ctx context.Context) ([]byte, error) {
	h.s.mu.Lock()
	if res, ok := h.s.done[h.seq]; ok {
		h.s.mu.Unlock()
		return unpack(res)
	}
	if h.s.closed {
		h.s.mu.Unlock()
		return nil, ErrClosed
	}
	ch := make(chan proto.Result, 1)
	h.s.waiters[h.seq] = append(h.s.waiters[h.seq], ch)
	h.s.mu.Unlock()

	select {
	case res := <-ch:
		return unpack(res)
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrCancelled, ctx.Err())
	}
}

func unpack(res proto.Result) ([]byte, error) {
	if res.Err != "" {
		return nil, &RemoteError{Msg: res.Err}
	}
	return res.Output, nil
}

// WaitAll waits for every listed handle (grpc_wait_all).
func (s *Session) WaitAll(ctx context.Context, handles []*Handle) error {
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			var remote *RemoteError
			if errors.As(err, &remote) {
				continue // the call completed; its error is per-call
			}
			return err
		}
	}
	return nil
}

// Stats exposes the underlying client counters (submitted, results,
// failovers...), mainly for tooling.
func (s *Session) Stats() client.Stats {
	var st client.Stats
	s.rtm.Do(func() { st = s.cli.StatsNow() })
	return st
}

// Ping proves the session's event loop is live within d — the
// liveness probe behind rpcv-client's /healthz.
func (s *Session) Ping(d time.Duration) error { return s.rtm.Ping(d) }

// Close ends the session (grpc_finalize). Ongoing executions continue
// server-side — client disconnection is a normal event; a later session
// with the same (user, session) IDs can retrieve the results.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	waiters := s.waiters
	s.waiters = make(map[proto.RPCSeq][]chan proto.Result)
	s.mu.Unlock()
	_ = waiters // pending waiters unblock via ctx; results stop flowing
	s.rtm.Close()
}
