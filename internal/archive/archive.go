// Package archive implements the file-archive format RPC-V uses for RPC
// parameter and result transport: "a file or a directory is compressed
// into an archive file" (paper §2.1). Servers build an archive of new
// or modified files (including application outputs) after execution and
// send it to the coordinator; that archive also serves as the server's
// log entry.
//
// The format is deliberately simple and self-contained (stdlib only):
// a magic header, then a flate-compressed stream of length-prefixed
// (name, payload) entries, with a CRC-32 trailer over the uncompressed
// stream for corruption detection.
package archive

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// magic identifies the archive format ("RPCV" + version 1).
var magic = [5]byte{'R', 'P', 'C', 'V', 1}

// maxEntrySize caps a single file payload (1 GiB) to bound decoder
// allocations against corrupt or hostile input.
const maxEntrySize = 1 << 30

// maxNameLen caps entry names.
const maxNameLen = 4096

// Archive is an in-memory set of named files.
type Archive struct {
	files map[string][]byte
}

// New returns an empty archive.
func New() *Archive { return &Archive{files: make(map[string][]byte)} }

// Add stores payload under name, replacing any previous entry.
func (a *Archive) Add(name string, payload []byte) {
	a.files[name] = append([]byte(nil), payload...)
}

// Get returns the payload stored under name.
func (a *Archive) Get(name string) ([]byte, bool) {
	p, ok := a.files[name]
	return p, ok
}

// Names returns the entry names, sorted.
func (a *Archive) Names() []string {
	names := make([]string, 0, len(a.files))
	for n := range a.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of entries.
func (a *Archive) Len() int { return len(a.files) }

// Encode serializes and compresses the archive.
func (a *Archive) Encode() ([]byte, error) {
	var raw bytes.Buffer
	names := a.Names()
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(names)))
	raw.Write(scratch[:4])
	for _, name := range names {
		payload := a.files[name]
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("archive: name too long (%d bytes)", len(name))
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(name)))
		raw.Write(scratch[:4])
		raw.WriteString(name)
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(payload)))
		raw.Write(scratch[:])
		raw.Write(payload)
	}
	sum := crc32.ChecksumIEEE(raw.Bytes())

	var out bytes.Buffer
	out.Write(magic[:])
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, fmt.Errorf("archive: compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("archive: compress: %w", err)
	}
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	out.Write(scratch[:4])
	return out.Bytes(), nil
}

// ErrCorrupt is returned when an archive fails structural or checksum
// validation.
var ErrCorrupt = errors.New("archive: corrupt data")

// Decode parses an encoded archive.
func Decode(data []byte) (*Archive, error) {
	if len(data) < len(magic)+4 {
		return nil, ErrCorrupt
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body := data[len(magic) : len(data)-4]
	wantSum := binary.LittleEndian.Uint32(data[len(data)-4:])

	fr := flate.NewReader(bytes.NewReader(body))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(raw) != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	a := New()
	r := bytes.NewReader(raw)
	var scratch [8]byte
	if _, err := io.ReadFull(r, scratch[:4]); err != nil {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint32(scratch[:4])
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, ErrCorrupt
		}
		nameLen := binary.LittleEndian.Uint32(scratch[:4])
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: name length %d", ErrCorrupt, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, ErrCorrupt
		}
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, ErrCorrupt
		}
		size := binary.LittleEndian.Uint64(scratch[:])
		if size > maxEntrySize {
			return nil, fmt.Errorf("%w: entry size %d", ErrCorrupt, size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, ErrCorrupt
		}
		a.files[string(name)] = payload
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing data", ErrCorrupt)
	}
	return a, nil
}
