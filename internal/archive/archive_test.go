package archive

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripEmpty(t *testing.T) {
	enc, err := New().Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 0 {
		t.Fatalf("decoded %d entries, want 0", dec.Len())
	}
}

func TestRoundTripFiles(t *testing.T) {
	a := New()
	a.Add("out/result.dat", []byte{1, 2, 3, 255, 0, 9})
	a.Add("stdout.txt", []byte("signal lost: 0.02 dB\n"))
	a.Add("empty", nil)

	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Names(), []string{"empty", "out/result.dat", "stdout.txt"}; len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for _, name := range a.Names() {
		wantPayload, _ := a.Get(name)
		gotPayload, ok := dec.Get(name)
		if !ok {
			t.Fatalf("entry %q missing after round trip", name)
		}
		if !bytes.Equal(gotPayload, wantPayload) {
			t.Errorf("entry %q payload mismatch", name)
		}
	}
}

func TestAddReplaces(t *testing.T) {
	a := New()
	a.Add("f", []byte("v1"))
	a.Add("f", []byte("v2"))
	if a.Len() != 1 {
		t.Fatalf("len = %d, want 1", a.Len())
	}
	p, _ := a.Get("f")
	if string(p) != "v2" {
		t.Fatalf("payload = %q, want v2", p)
	}
}

func TestAddCopiesPayload(t *testing.T) {
	buf := []byte("mutable")
	a := New()
	a.Add("f", buf)
	buf[0] = 'X'
	p, _ := a.Get("f")
	if string(p) != "mutable" {
		t.Fatalf("archive aliased caller's buffer: %q", p)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := New()
	a.Add("f", bytes.Repeat([]byte("data"), 100))
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:4],
		"bad magic": append([]byte("XXXXX"), enc[5:]...),
	}
	// Flip one byte in the compressed body.
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bit flip"] = flipped
	// Corrupt the checksum.
	sum := append([]byte(nil), enc...)
	sum[len(sum)-1] ^= 0xFF
	cases["bad checksum"] = sum

	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	// Extra uncompressed payload after the declared entries must fail.
	a := New()
	a.Add("f", []byte("x"))
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(enc, 0, 0, 0, 0)); err == nil {
		// Trailing bytes after the CRC make the CRC check read the
		// wrong trailer, so this must error one way or another.
		t.Error("Decode accepted trailing garbage")
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: Decode(Encode(a)) == a for arbitrary payload sets.
	f := func(names []string, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New()
		want := make(map[string][]byte)
		for i, n := range names {
			if len(n) > maxNameLen {
				n = n[:maxNameLen]
			}
			if n == "" {
				continue
			}
			payload := make([]byte, rng.Intn(4096))
			rng.Read(payload)
			a.Add(n, payload)
			want[n] = payload
			_ = i
		}
		enc, err := a.Encode()
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if dec.Len() != len(want) {
			return false
		}
		for n, p := range want {
			got, ok := dec.Get(n)
			if !ok || !bytes.Equal(got, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompression(t *testing.T) {
	// Highly redundant payloads must shrink.
	a := New()
	a.Add("zeros", make([]byte, 1<<16))
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= 1<<15 {
		t.Errorf("64 KiB of zeros encoded to %d bytes; compression ineffective", len(enc))
	}
}
