package faultgen

import (
	"testing"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

type noop struct{}

func (noop) Start(node.Env)                      {}
func (noop) Receive(proto.NodeID, proto.Message) {}
func (noop) Stop()                               {}

func world(n int) (*sim.World, []proto.NodeID) {
	w := sim.NewWorld(sim.Config{Seed: 77})
	var ids []proto.NodeID
	for i := 0; i < n; i++ {
		id := proto.NodeID(rune('a' + i))
		w.AddNode(id, noop{})
		w.Start(id)
		ids = append(ids, id)
	}
	return w, ids
}

func TestKillAndRestart(t *testing.T) {
	w, ids := world(1)
	g := New(w)
	g.Kill(ids[0])
	if w.IsUp(ids[0]) {
		t.Fatal("victim still up")
	}
	g.Restart(ids[0])
	if !w.IsUp(ids[0]) {
		t.Fatal("victim not restarted")
	}
	if g.Kills() != 1 || g.Restarts() != 1 {
		t.Fatalf("counters = %d/%d", g.Kills(), g.Restarts())
	}
}

func TestPoissonRateRoughlyMatches(t *testing.T) {
	w, ids := world(4)
	g := New(w)
	// 4 nodes, MTBF 1 min each => ~4 faults/min aggregate.
	g.Poisson(ids, time.Minute, time.Second)
	w.RunFor(30 * time.Minute)
	g.Stop()
	want := 120 // 4/min * 30 min
	if g.Kills() < want/2 || g.Kills() > want*2 {
		t.Fatalf("kills = %d over 30 min, want ~%d", g.Kills(), want)
	}
	// Population restored: victims restart after downtime.
	w.RunFor(time.Minute)
	for _, id := range ids {
		if !w.IsUp(id) {
			t.Fatalf("node %s left dead", id)
		}
	}
}

func TestPoissonStop(t *testing.T) {
	w, ids := world(2)
	g := New(w)
	g.Poisson(ids, 10*time.Second, time.Second)
	w.RunFor(5 * time.Minute)
	g.Stop()
	n := g.Kills()
	w.RunFor(30 * time.Minute)
	if g.Kills() != n {
		t.Fatalf("kills after Stop: %d -> %d", n, g.Kills())
	}
}

func TestPeriodic(t *testing.T) {
	w, ids := world(1)
	g := New(w)
	g.Periodic(ids[0], time.Minute, 5*time.Second)
	w.RunFor(10*time.Minute + time.Second)
	g.Stop()
	if g.Kills() != 10 {
		t.Fatalf("kills = %d in 10 min, want 10", g.Kills())
	}
}

func TestScriptTimedActions(t *testing.T) {
	w, ids := world(2)
	g := New(w)
	var order []string
	g.Script([]Action{
		{After: 2 * time.Minute, Kill: ids[1], Then: func() { order = append(order, "kill-b") }},
		{After: time.Minute, Kill: ids[0], Then: func() { order = append(order, "kill-a") }},
		{After: 3 * time.Minute, Start: ids[0], Then: func() { order = append(order, "start-a") }},
	})
	w.RunFor(5 * time.Minute)
	if len(order) != 3 || order[0] != "kill-a" || order[1] != "kill-b" || order[2] != "start-a" {
		t.Fatalf("order = %v", order)
	}
	if !w.IsUp(ids[0]) || w.IsUp(ids[1]) {
		t.Fatal("final liveness wrong")
	}
}

func TestScriptPredicateDefersAction(t *testing.T) {
	w, ids := world(1)
	g := New(w)
	ready := false
	w.Schedule(90*time.Second, func() { ready = true })
	g.Script([]Action{{
		When: func() bool { return ready },
		Poll: time.Second,
		Kill: ids[0],
	}})
	w.RunFor(80 * time.Second)
	if !w.IsUp(ids[0]) {
		t.Fatal("predicate action fired early")
	}
	w.RunFor(20 * time.Second)
	if w.IsUp(ids[0]) {
		t.Fatal("predicate action never fired")
	}
}

func TestExponentialMean(t *testing.T) {
	// Average of many exponential samples approaches the mean.
	w, _ := world(1)
	var total time.Duration
	const n = 10_000
	for i := 0; i < n; i++ {
		total += exponential(w.Rand().Float64(), time.Minute)
	}
	mean := total / n
	if mean < 50*time.Second || mean > 70*time.Second {
		t.Fatalf("sample mean %v, want ~1m", mean)
	}
}
