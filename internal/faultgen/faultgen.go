// Package faultgen reimplements the paper's fault generator: "a
// remotely controllable daemon [which], upon order, or from its own
// initiative with respect to its configuration, kills abruptly the
// RPC-V component of the hosting machine" (§5.1).
//
// Three schedules are provided:
//
//   - Poisson: faults occur independently with a given mean rate
//     (exponential inter-fault times), matching the figure 7 sweep
//     where the number of faults grows with the number of nodes subject
//     to failure;
//   - Periodic: fixed-interval kills (deterministic stress tests);
//   - Script: an explicit (time, action) list, used to reproduce the
//     labelled event sequence of figure 10.
//
// The generator can either leave victims dead, or restart them after a
// configurable downtime — the paper's figure 7 experiment keeps the
// population constant, so each kill is followed by a restart.
package faultgen

import (
	"math"
	"time"

	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// Generator injects faults into a simulated world.
type Generator struct {
	world   *sim.World
	stopped bool

	kills    int
	restarts int
}

// New creates a generator bound to a world.
func New(w *sim.World) *Generator { return &Generator{world: w} }

// Stop disables all future scheduled actions.
func (g *Generator) Stop() { g.stopped = true }

// Kills returns the number of kills performed.
func (g *Generator) Kills() int { return g.kills }

// Restarts returns the number of restarts performed.
func (g *Generator) Restarts() int { return g.restarts }

// Kill crashes the target now.
func (g *Generator) Kill(id proto.NodeID) {
	g.kills++
	g.world.Crash(id)
}

// Restart boots the target now.
func (g *Generator) Restart(id proto.NodeID) {
	g.restarts++
	g.world.Start(id)
}

// Poisson schedules independent kills of the targets with the given
// mean time between failures per node. After each kill the victim
// restarts after downtime (zero means immediately at the next event).
// The process runs until Stop or the world stops executing events.
func (g *Generator) Poisson(targets []proto.NodeID, mtbf, downtime time.Duration) {
	for _, id := range targets {
		g.scheduleNext(id, mtbf, downtime)
	}
}

func (g *Generator) scheduleNext(id proto.NodeID, mtbf, downtime time.Duration) {
	wait := exponential(g.world.Rand().Float64(), mtbf)
	g.world.Schedule(wait, func() {
		if g.stopped {
			return
		}
		if g.world.IsUp(id) {
			g.kills++
			g.world.Crash(id)
			g.world.Schedule(downtime, func() {
				if g.stopped {
					return
				}
				g.restarts++
				g.world.Start(id)
			})
		}
		g.scheduleNext(id, mtbf, downtime)
	})
}

// exponential maps a uniform sample u in [0,1) to an exponential wait
// with the given mean.
func exponential(u float64, mean time.Duration) time.Duration {
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// Periodic kills the target every period, restarting it after downtime.
func (g *Generator) Periodic(id proto.NodeID, period, downtime time.Duration) {
	g.world.Schedule(period, func() {
		if g.stopped {
			return
		}
		if g.world.IsUp(id) {
			g.kills++
			g.world.Crash(id)
			g.world.Schedule(downtime, func() {
				if g.stopped {
					return
				}
				g.restarts++
				g.world.Start(id)
			})
		}
		g.Periodic(id, period, downtime)
	})
}

// Action is one scripted fault event.
type Action struct {
	// After is the delay from script installation.
	After time.Duration
	// Kill or Start names the victim ("" to skip). Kill wins if both set.
	Kill  proto.NodeID
	Start proto.NodeID
	// When, if non-nil, defers the action until the predicate holds,
	// checked every Poll (default 1 s). This is how figure 10's
	// "stop Lille when about 400 tasks are completed" is expressed.
	When func() bool
	Poll time.Duration
	// Then, if non-nil, runs after the action (chaining hook).
	Then func()
}

// Script installs a list of actions.
func (g *Generator) Script(actions []Action) {
	for i := range actions {
		a := actions[i]
		g.world.Schedule(a.After, func() { g.runAction(a) })
	}
}

func (g *Generator) runAction(a Action) {
	if g.stopped {
		return
	}
	if a.When != nil && !a.When() {
		poll := a.Poll
		if poll <= 0 {
			poll = time.Second
		}
		g.world.Schedule(poll, func() { g.runAction(a) })
		return
	}
	switch {
	case a.Kill != "":
		g.kills++
		g.world.Crash(a.Kill)
	case a.Start != "":
		g.restarts++
		g.world.Start(a.Start)
	}
	if a.Then != nil {
		a.Then()
	}
}
