package coordinator

import (
	"testing"
	"time"

	"rpcv/internal/db"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// rig2 builds a world with one coordinator and two scripted server
// stand-ins, for scheduling tests that need distinct workers.
func rig2(t *testing.T, cfg Config) (*sim.World, *Coordinator, *peer, *peer) {
	t.Helper()
	if cfg.DBCost == (db.CostModel{}) {
		cfg.DBCost = db.CostModel{PerOp: time.Microsecond}
	}
	cfg.Coordinators = []proto.NodeID{"co"}
	w := sim.NewWorld(sim.Config{Seed: 7})
	co := New(cfg)
	a, b := &peer{}, &peer{}
	w.AddNode("co", co)
	w.AddNode("sva", a)
	w.AddNode("svb", b)
	w.Start("co")
	w.Start("sva")
	w.Start("svb")
	return w, co, a, b
}

func submitDeadline(seq int, deadline time.Duration) *proto.Submit {
	return &proto.Submit{Call: call(seq), Service: "synthetic", Params: []byte("p"),
		ExecTime: time.Second, ResultSize: 4, Deadline: deadline}
}

func beat(p *peer, capacity int) {
	p.env.Send("co", &proto.Heartbeat{From: p.env.Self(), Role: proto.RoleServer,
		Capacity: capacity, WantWork: true})
}

func lastAck(t *testing.T, p *peer) *proto.HeartbeatAck {
	t.Helper()
	ack, ok := p.last().(*proto.HeartbeatAck)
	if !ok {
		t.Fatalf("last = %T, want HeartbeatAck", p.last())
	}
	return ack
}

func TestDeadlinePolicyAssignsEDF(t *testing.T) {
	w, _, a, _ := rig2(t, Config{Policy: "deadline", MaxTasksPerAck: 10})
	a.env.Send("co", submitDeadline(1, time.Minute))
	a.env.Send("co", submitDeadline(2, 10*time.Second))
	a.env.Send("co", submitDeadline(3, 0)) // no deadline: behind all
	a.env.Send("co", submitDeadline(4, 30*time.Second))
	w.RunFor(time.Second)
	beat(a, 10)
	w.RunFor(time.Second)
	ack := lastAck(t, a)
	want := []proto.RPCSeq{2, 4, 1, 3}
	if len(ack.Tasks) != len(want) {
		t.Fatalf("assigned %d tasks, want %d", len(ack.Tasks), len(want))
	}
	for i, task := range ack.Tasks {
		if task.Task.Call.Seq != want[i] {
			t.Fatalf("EDF order = %v, want %v", ack.Tasks, want)
		}
	}
}

func TestUnknownPolicyFallsBackToFCFS(t *testing.T) {
	_, co, _, _ := rig2(t, Config{Policy: "no-such-policy"})
	if got := co.PolicyName(); got != "fcfs" {
		t.Fatalf("policy = %q, want fcfs fallback", got)
	}
}

// TestSpeculativeDuplicateAndCancel walks the full speculative story at
// the coordinator: a straggling assignment is duplicated onto a second
// server, the duplicate's result wins, the straggler is cancelled, and
// its late result deduplicates against the stored one.
func TestSpeculativeDuplicateAndCancel(t *testing.T) {
	w, co, slow, fast := rig2(t, Config{Policy: "speculative", MaxTasksPerAck: 4})
	slow.env.Send("co", &proto.Submit{Call: call(1), Service: "synthetic",
		Params: []byte("p"), ExecTime: 10 * time.Second, ResultSize: 4})
	w.RunFor(time.Second)
	beat(slow, 1)
	w.RunFor(time.Second)
	first := lastAck(t, slow)
	if len(first.Tasks) != 1 || first.Tasks[0].Task.Instance != 1 {
		t.Fatalf("first assignment = %+v", first.Tasks)
	}

	// Before the straggler threshold (2 x 10 s) no duplicate exists.
	w.RunFor(15 * time.Second)
	beat(fast, 1)
	w.RunFor(time.Second)
	if ack := lastAck(t, fast); len(ack.Tasks) != 0 {
		t.Fatalf("duplicate issued before threshold: %+v", ack.Tasks)
	}

	// Past the threshold the sweep queues a duplicate — for a server
	// other than the one running the original.
	w.RunFor(10 * time.Second)
	beat(slow, 1)
	w.RunFor(time.Second)
	if ack := lastAck(t, slow); len(ack.Tasks) != 0 {
		t.Fatalf("duplicate offered to the original server: %+v", ack.Tasks)
	}
	beat(fast, 1)
	w.RunFor(time.Second)
	dup := lastAck(t, fast)
	if len(dup.Tasks) != 1 || dup.Tasks[0].Task.Instance != 2 {
		t.Fatalf("duplicate assignment = %+v", dup.Tasks)
	}
	if co.StatsNow().Speculated != 1 {
		t.Fatalf("speculated = %d, want 1", co.StatsNow().Speculated)
	}

	// The duplicate finishes first: stored, and the straggler receives
	// a cancel for its instance.
	fast.env.Send("co", &proto.TaskResult{From: "svb", Task: dup.Tasks[0].Task, Output: []byte("win")})
	w.RunFor(time.Second)
	st := co.StatsNow()
	if st.Finished != 1 || st.SpecWins != 1 {
		t.Fatalf("after duplicate win: %+v", st)
	}
	var cancelled *proto.TaskCancel
	for _, m := range slow.inbox {
		if c, ok := m.(*proto.TaskCancel); ok {
			cancelled = c
		}
	}
	if cancelled == nil || cancelled.Task != first.Tasks[0].Task {
		t.Fatalf("straggler not cancelled (got %+v)", cancelled)
	}

	// The straggler's late result deduplicates against the stored one.
	slow.env.Send("co", &proto.TaskResult{From: "sva", Task: first.Tasks[0].Task, Output: []byte("late")})
	w.RunFor(time.Second)
	st = co.StatsNow()
	if st.Finished != 1 || st.DupResults != 1 {
		t.Fatalf("late result not deduplicated: %+v", st)
	}
	rec, _ := co.DB().Peek(call(1))
	if string(rec.Output) != "win" {
		t.Fatalf("stored output = %q, want the winning duplicate's", rec.Output)
	}
}

// TestSpeculativePromotedOnPrimaryLoss: when the server running the
// original instance is suspected while a duplicate is in flight, the
// duplicate becomes the primary instead of a third instance being
// queued.
func TestSpeculativePromotedOnPrimaryLoss(t *testing.T) {
	w, co, slow, fast := rig2(t, Config{Policy: "speculative", HeartbeatTimeout: 20 * time.Second})
	slow.env.Send("co", &proto.Submit{Call: call(1), Service: "synthetic",
		Params: []byte("p"), ExecTime: 5 * time.Second, ResultSize: 4})
	w.RunFor(time.Second)
	beat(slow, 1)
	// Past 2 x 5 s plus a sweep period: the duplicate is queued.
	w.RunFor(17 * time.Second)
	beat(fast, 1)
	w.RunFor(time.Second)
	if ack := lastAck(t, fast); len(ack.Tasks) != 1 {
		t.Fatalf("no duplicate issued: %+v", ack.Tasks)
	}
	// The straggling server goes silent; the fast one keeps beating.
	for i := 0; i < 8; i++ {
		beat(fast, 0)
		w.RunFor(5 * time.Second)
	}
	st := co.StatsNow()
	if st.Ongoing != 1 || st.Pending != 0 {
		t.Fatalf("after primary loss: %+v", st)
	}
	if st.Rescheduled != 0 {
		t.Fatalf("promotion counted as reschedule: %+v", st)
	}
	// The promoted duplicate's result completes the call.
	task := proto.TaskID{Call: call(1), Instance: 2}
	fast.env.Send("co", &proto.TaskResult{From: "svb", Task: task, Output: []byte("r")})
	w.RunFor(time.Second)
	if co.StatsNow().Finished != 1 {
		t.Fatal("promoted duplicate's result not stored")
	}
}
