// Package coordinator implements the RPC-V middle tier.
//
// The Coordinator virtualizes servers for clients: clients never
// contact servers directly. One coordinator process
//
//   - registers client RPC submissions as job records in its task
//     database and acknowledges them;
//   - schedules pending jobs onto servers that pull work with their
//     heartbeats, delegating queue order, admission and straggler
//     speculation to a pluggable scheduling engine (internal/sched;
//     the default "fcfs" policy is the paper's behaviour);
//   - suspects silent servers (heartbeat timeout) and re-schedules new
//     instances of all RPC calls forwarded to the suspect ("on
//     suspicion" replication);
//   - stores task results, deduplicating at-least-once re-executions by
//     CallID, and serves them to polling clients;
//   - passively replicates its state to its successor on a virtual ring
//     of coordinators, recomputing the ring on suspicion;
//   - synchronizes state with reconnecting clients (timestamp
//     comparison) and servers (peer-wise log comparison).
//
// All methods run on the node's event loop (see internal/node); the
// type has no internal locking and must not be shared across loops.
package coordinator

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"rpcv/internal/db"
	"rpcv/internal/detector"
	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/sched"
	"rpcv/internal/shard"
	"rpcv/internal/statesync"
)

// Config parameterizes a coordinator.
type Config struct {
	// Coordinators is the initial finite list of known coordinators
	// (including self), as downloaded from a known repository at system
	// initialization. It evolves with fault suspicions and merges.
	Coordinators []proto.NodeID

	// ReplicationPeriod is the delay between passive-replication rounds
	// to the ring successor. The paper's real-life experiments use 60 s.
	// Zero disables periodic replication (unit tests drive it manually).
	ReplicationPeriod time.Duration

	// HeartbeatTimeout is the silence duration after which servers and
	// the ring successor are suspected. Default detector.DefaultTimeout.
	HeartbeatTimeout time.Duration

	// HeartbeatPeriod is the period of the ring heartbeats this
	// coordinator sends to its fellow coordinators (the paper's "heart
	// beat" signal, which the state-abstract propagation rides on).
	// Default detector.DefaultPeriod.
	HeartbeatPeriod time.Duration

	// DBCost models task-database operation latency; zero value means
	// db.ConfinedCost().
	DBCost db.CostModel

	// MaxTasksPerAck caps how many task assignments ride on a single
	// heartbeat reply. Default 4.
	MaxTasksPerAck int

	// ReplicateParamsLimit is the largest Params payload replicated
	// with a job description. Larger payloads are file archives, which
	// the paper does not replicate; a replica promoting such a job asks
	// the client to resend on synchronization. Default 64 KiB.
	ReplicateParamsLimit int

	// OnJobFinished, when non-nil, is invoked each time a job first
	// reaches the finished state on this coordinator (experiment hook:
	// figures 9-11 plot exactly this counter over time).
	OnJobFinished func(call proto.CallID, at time.Time)

	// Codec selects the encoding of persisted job records. The zero
	// value is the binary codec; loadStore auto-detects, so a database
	// written under either codec (or by a pre-binary build) recovers
	// under either.
	Codec proto.Codec

	// Shard, when non-nil and describing more than one ring, places
	// this coordinator in the sharded coordination layer: sessions
	// hashing to a foreign shard are redirected (ShardRedirect) instead
	// of served, dirty records are cross-replicated to the successor
	// shard, and the shards this coordinator's ring succeeds on the hash
	// circle are guarded — their sessions are adopted when their whole
	// ring goes silent. Coordinators is then this ring's member list
	// only; the paper's protocol runs unchanged inside the ring.
	Shard *shard.Map

	// ShardSyncPeriod is the period of cross-shard state propagation to
	// the successor shard. Zero means ReplicationPeriod.
	ShardSyncPeriod time.Duration

	// Policy names the scheduling policy (internal/sched): "fcfs"
	// (default, the paper's behaviour), "fastest-first", "deadline" or
	// "speculative". An unknown name logs and falls back to FCFS.
	Policy string

	// SpeculateFactor is the speculative policy's straggler threshold
	// k: an in-flight task is duplicated onto a different server once
	// its age exceeds k x the completion estimate. Zero means the
	// sched default (2).
	SpeculateFactor float64

	// WorkStealing, on a sharded coordinator, lets an idle shard
	// execute pending tasks of its successor shard: when the local
	// queue is empty while servers keep asking for work, a
	// StealRequest is sent and granted jobs run here, their results
	// routed home over the existing ShardSync path.
	WorkStealing bool

	// StealBatch caps the tasks moved per steal grant. Zero means
	// MaxTasksPerAck.
	StealBatch int

	// Obs, when non-nil, receives the coordinator's live metrics
	// (counters and gauges labeled node="<self>", plus the scheduling
	// engine's queue and speed gauges) and CallID-correlated span
	// events (enqueue, dispatch, result, requeue, speculate, steal,
	// redirect) on the observer's ring. All instruments are written
	// from the event loop with plain atomic stores; nil costs nothing.
	Obs *obs.Observer
}

func (c *Config) applyDefaults() {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = detector.DefaultTimeout
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = detector.DefaultPeriod
	}
	if c.DBCost == (db.CostModel{}) {
		c.DBCost = db.ConfinedCost()
	}
	if c.MaxTasksPerAck <= 0 {
		c.MaxTasksPerAck = 4
	}
	if c.ReplicateParamsLimit <= 0 {
		c.ReplicateParamsLimit = 64 << 10
	}
	if c.StealBatch <= 0 {
		c.StealBatch = c.MaxTasksPerAck
	}
}

// Coordinator is the middle-tier node handler. Its fields are
// loop-private: every access must come from handler code or be
// marshalled through rt.Do/DoAsync.
//
//rpcv:loop-owned
type Coordinator struct {
	cfg Config
	env node.Env

	store  *db.DB
	dbEng  node.SerialResource // serializes database operation latency
	epoch  uint64              // incarnation counter, persisted, stamps replica updates
	coords []proto.NodeID

	// Multi-loop partitioning (node.PartitionedHandler): loopIdx/loopN
	// locate this instance among the per-core partitions of one
	// coordinator process; loopMap is the shared session placement.
	// loopN == 0 means the classic unpartitioned coordinator. Every
	// partition is an independent Coordinator over the same durable
	// store — disjoint session slices, disjoint job keys, per-instance
	// epoch keys — so each keeps the no-locking discipline on its own
	// loop. parts (receiver instance only) lists all partitions.
	loopIdx int
	loopN   int
	loopMap *shard.LoopMap
	parts   []*Coordinator

	// sessionMax is the indexed per-session maximum RPC timestamp
	// (an indexed column in the real MySQL schema: reads are free).
	sessionMax map[sessionKey]proto.RPCSeq

	// Scheduling state (volatile; rebuilt from the store on restart).
	// The engine owns the pending queue, policy order, admission gate
	// and per-server speed estimates (internal/sched).
	eng     *sched.Engine
	ongoing map[proto.CallID]ongoingInfo // assigned, awaiting result
	// spec tracks the redundant instance of each speculatively
	// duplicated call (at most one duplicate per call, on a server
	// other than the primary's).
	spec      map[proto.CallID]ongoingInfo
	specTimer node.Timer
	byServer  map[proto.NodeID]map[proto.CallID]bool // reverse index
	// fromPredecessor marks calls learned as "ongoing" via replication:
	// they are not scheduled until the predecessor is suspected.
	fromPredecessor map[proto.CallID]bool
	// queuedAt stamps each pending call's (re)queue time so the
	// dispatch-latency histogram — queue wait, the fleet monitor's
	// per-shard SLO signal — can be observed at assignment. Maintained
	// only when observability is on.
	queuedAt map[proto.CallID]time.Time

	servers *detector.Monitor // suspicion of servers
	ring    *detector.Monitor // suspicion of fellow coordinators

	successor   proto.NodeID
	predecessor proto.NodeID // last coordinator we received an update from
	dirty       map[proto.CallID]bool
	inFlight    []proto.CallID // calls carried by the round awaiting ack
	beater      *detector.Beater
	replTimer   node.Timer
	replPending bool      // a round is in flight (awaiting ack)
	replRound   uint64    // monotonic round counter (stamps updates)
	replStart   time.Time // measurement of the in-flight round
	lastReplDur time.Duration
	replRounds  uint64

	// Sharded coordination layer (nil/empty when unsharded).
	smap     *shard.Map
	shardIdx int   // this coordinator's shard; -1 when unsharded
	guarded  []int // shards whose hash-circle successor is this shard
	guard    *detector.Monitor
	adopted  map[int]bool
	// fromShard maps calls learned via cross-shard sync to their source
	// shard; they are held passively (never scheduled) until the source
	// shard is adopted.
	fromShard map[proto.CallID]int

	// Cross-shard replication round state, mirroring the intra-ring
	// dirty/inFlight machinery.
	xdirty    map[proto.CallID]bool
	xinFlight []proto.CallID
	xpending  bool
	xround    uint64
	xtargetIx int // rotates through successor-ring members on silence
	xtimer    node.Timer
	xrounds   uint64

	// Cross-shard work stealing state (thief and victim sides).
	stealPending bool
	stealRound   uint64
	stealIx      int       // rotates through successor-ring members
	lastStealAt  time.Time // throttles request bursts
	// stolenOut tracks pending jobs granted away to an idle
	// predecessor shard, for timeout reclaim.
	stolenOut map[proto.CallID]stolenOutInfo

	stopped bool

	// Metrics.
	finished        int
	jobsAccepted    int
	submitsReceived int
	dupResults      int
	rescheduled     int
	redirects       int
	adoptions       int
	speculated      int // redundant instances issued
	specWins        int // results won by the speculative copy
	stolenIn        int // tasks this coordinator stole and ran locally
	stolenOutTotal  int // pending tasks granted away to a thief shard
	stolenHome      int // stolen tasks whose result came home via ShardSync

	// cm mirrors the counters above into Config.Obs (every instrument
	// is a nil-safe no-op when observability is off).
	cm coordMetrics
}

// coordMetrics holds the coordinator's obs instruments.
type coordMetrics struct {
	submits, accepted, finished, dups, requeues *obs.Counter
	redirects, adoptions, speculated, specWins  *obs.Counter
	stolenIn, stolenOut, stolenHome             *obs.Counter
	sessions, inflight, specInflight, shardIdx  *obs.Gauge
	dispatchLat                                 *obs.Histogram
}

type ongoingInfo struct {
	server     proto.NodeID
	task       proto.TaskID
	assignedAt time.Time
}

// stolenOutInfo records one job granted to a thief shard.
type stolenOutInfo struct {
	shard     int
	grantedAt time.Time
}

// sessionKey identifies one (user, session) pair.
type sessionKey struct {
	user    proto.UserID
	session proto.SessionID
}

// New creates a coordinator handler. Call sim/rt Start to boot it.
func New(cfg Config) *Coordinator {
	cfg.applyDefaults()
	return &Coordinator{cfg: cfg}
}

var (
	_ node.Handler            = (*Coordinator)(nil)
	_ node.PartitionedHandler = (*Coordinator)(nil)
)

// Partition implements node.PartitionedHandler: the coordinator splits
// into n independent instances, one per event loop, each owning the
// sessions shard.LoopMap pins to its loop. The runtime routes every
// session-scoped message to the owning partition and broadcasts
// node-scoped server traffic (heartbeats, server syncs) to all of
// them, so each partition schedules against the full server pool but
// only for its own sessions. Critically this multiplies the modeled
// database: each partition has its own db.DB and SerialResource, so
// DB-bound submit throughput scales with loops — the same trick the
// shard layer plays across processes, one level down.
//
// Called once, before Start, by rt.Start.
func (c *Coordinator) Partition(n int) []node.Handler {
	if n < 1 {
		n = 1
	}
	c.loopIdx, c.loopN = 0, n
	c.loopMap = shard.NewLoopMap(n)
	c.parts = make([]*Coordinator, n)
	c.parts[0] = c
	out := make([]node.Handler, n)
	out[0] = c
	for j := 1; j < n; j++ {
		p := New(c.cfg)
		p.loopIdx, p.loopN = j, n
		p.loopMap = c.loopMap
		c.parts[j] = p
		out[j] = p
	}
	return out
}

// Partitions returns every per-loop coordinator instance hosted by the
// receiver's process: the receiver itself when unpartitioned, else the
// slice Partition built (index 0 is the receiver). Snapshot accessors
// (StatsNow & co) on instance j must be marshalled through the j-th
// loop (rt.DoOn).
func (c *Coordinator) Partitions() []*Coordinator {
	if len(c.parts) == 0 {
		return []*Coordinator{c}
	}
	return c.parts
}

// LoopIndex locates this instance among its process's partitions:
// (loop index, loop count). An unpartitioned coordinator is (0, 1).
func (c *Coordinator) LoopIndex() (int, int) {
	if c.loopN == 0 {
		return 0, 1
	}
	return c.loopIdx, c.loopN
}

// ownsLoop reports whether this partition owns a session's calls under
// the loop placement. Unpartitioned coordinators own everything.
func (c *Coordinator) ownsLoop(call proto.CallID) bool {
	return c.loopN <= 1 || c.loopMap.OwnerOf(call) == c.loopIdx
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

// Start implements node.Handler. On restart it reloads the job database
// from the local disk (the durable MySQL role) and resumes with a new
// epoch; scheduling state is conservatively rebuilt: previously ongoing
// tasks whose results were not stored become pending again (their
// servers will be re-observed or re-suspected through heartbeats).
//
//rpcv:loop-only
func (c *Coordinator) Start(env node.Env) {
	c.env = env
	c.stopped = false
	c.store = db.New(c.cfg.DBCost)
	c.initObs(env)
	eng, err := sched.New(sched.Config{
		Policy:          c.cfg.Policy,
		SpeculateFactor: c.cfg.SpeculateFactor,
		Obs:             c.cfg.Obs.Registry(),
		Node:            env.Self(),
	})
	if err != nil {
		env.Logf("coordinator: %v; falling back to fcfs", err)
		eng, _ = sched.New(sched.Config{})
	}
	c.eng = eng
	c.ongoing = make(map[proto.CallID]ongoingInfo)
	c.spec = make(map[proto.CallID]ongoingInfo)
	c.byServer = make(map[proto.NodeID]map[proto.CallID]bool)
	c.fromPredecessor = make(map[proto.CallID]bool)
	c.queuedAt = make(map[proto.CallID]time.Time)
	c.dirty = make(map[proto.CallID]bool)
	c.stolenOut = make(map[proto.CallID]stolenOutInfo)
	c.stealPending = false
	c.sessionMax = make(map[sessionKey]proto.RPCSeq)
	c.dbEng = node.SerialResource{}
	c.replPending = false
	c.successor = ""
	c.predecessor = ""

	c.coords = statesync.MergeNodeLists(c.cfg.Coordinators, []proto.NodeID{env.Self()})

	c.smap = nil
	c.shardIdx = -1
	c.guarded = nil
	c.adopted = make(map[int]bool)
	c.fromShard = make(map[proto.CallID]int)
	c.xdirty = make(map[proto.CallID]bool)
	c.xinFlight = nil
	c.xpending = false
	if m := c.cfg.Shard; m != nil && m.Shards() > 1 {
		if idx := m.RingOf(env.Self()); idx >= 0 {
			c.smap = m
			c.shardIdx = idx
			for s := 0; s < m.Shards(); s++ {
				if s != idx && m.SuccessorShard(s) == idx {
					c.guarded = append(c.guarded, s)
				}
			}
		} else {
			env.Logf("coordinator: not a member of the shard map, running unsharded")
		}
	}

	c.cm.shardIdx.SetInt(c.shardIdx)

	c.loadEpoch()
	c.loadStore()

	c.servers = detector.NewMonitor(env, detector.MonitorConfig{
		Timeout:   c.cfg.HeartbeatTimeout,
		OnSuspect: c.onServerSuspected,
	})
	c.ring = detector.NewMonitor(env, detector.MonitorConfig{
		Timeout:   c.cfg.HeartbeatTimeout,
		OnSuspect: c.onCoordinatorSuspected,
	})
	if len(c.guarded) > 0 {
		// Guard the predecessor shards from boot: a ring that is already
		// dead (or dies before ever speaking to us) must still be
		// adopted once the suspicion timeout elapses.
		c.guard = detector.NewMonitor(env, detector.MonitorConfig{
			Timeout:   c.cfg.HeartbeatTimeout,
			OnSuspect: c.onGuardSuspected,
		})
		for _, s := range c.guarded {
			for _, id := range c.smap.Ring(s) {
				c.guard.Watch(id)
			}
		}
	}

	c.scheduleReplication()
	c.scheduleShardSync()
	c.scheduleSpeculation()
	// Ring heartbeats: probe fellow coordinators every period so that
	// ring suspicion (and recovery from wrong suspicion) works on the
	// heartbeat timescale even when the replication period is longer.
	c.beater = detector.NewBeater(env, c.cfg.HeartbeatPeriod, c.ringBeat)
}

// initObs resolves the coordinator's obs instruments. A nil registry
// yields nil instruments whose methods no-op, so call sites stay
// unconditional.
func (c *Coordinator) initObs(env node.Env) {
	reg := c.cfg.Obs.Registry()
	ls := []obs.Label{obs.L("node", string(env.Self()))}
	if c.loopN > 1 {
		// Partitioned coordinators label per loop so the scrape shows
		// the per-core split; unpartitioned ones keep the historical
		// node-only series.
		ls = append(ls, obs.L("loop", strconv.Itoa(c.loopIdx)))
	}
	c.cm = coordMetrics{
		submits:      reg.Counter("rpcv_coord_submits_total", ls...),
		accepted:     reg.Counter("rpcv_coord_jobs_accepted_total", ls...),
		finished:     reg.Counter("rpcv_coord_finished_total", ls...),
		dups:         reg.Counter("rpcv_coord_dup_results_total", ls...),
		requeues:     reg.Counter("rpcv_coord_requeues_total", ls...),
		redirects:    reg.Counter("rpcv_coord_redirects_total", ls...),
		adoptions:    reg.Counter("rpcv_coord_adoptions_total", ls...),
		speculated:   reg.Counter("rpcv_coord_speculated_total", ls...),
		specWins:     reg.Counter("rpcv_coord_spec_wins_total", ls...),
		stolenIn:     reg.Counter("rpcv_coord_steals_in_total", ls...),
		stolenOut:    reg.Counter("rpcv_coord_steals_out_total", ls...),
		stolenHome:   reg.Counter("rpcv_coord_steals_home_total", ls...),
		sessions:     reg.Gauge("rpcv_coord_sessions", ls...),
		inflight:     reg.Gauge("rpcv_coord_inflight", ls...),
		specInflight: reg.Gauge("rpcv_coord_spec_inflight", ls...),
		shardIdx:     reg.Gauge("rpcv_coord_shard_index", ls...),
	}
	if reg != nil {
		c.cm.dispatchLat = reg.Histogram("rpcv_coord_dispatch_latency_ns", ls...)
	}
}

// trace stamps one span for call on this coordinator's ring (no-op
// without observability).
func (c *Coordinator) trace(call proto.CallID, stage obs.Stage, detail string) {
	if t := c.cfg.Obs.Tracer(); t != nil {
		t.EventAt(c.env.Now(), call, stage, detail)
	}
}

// noteInflight refreshes the in-flight gauges after assignment
// bookkeeping changes.
func (c *Coordinator) noteInflight() {
	c.cm.inflight.SetInt(len(c.ongoing))
	c.cm.specInflight.SetInt(len(c.spec))
}

// ringBeat sends a coordinator-role heartbeat to the raw ring successor
// (ignoring suspicion, so wrongly suspected coordinators are
// re-observed when they answer) and to the effective successor when it
// differs.
func (c *Coordinator) ringBeat() {
	hb := &proto.Heartbeat{From: c.env.Self(), Role: proto.RoleCoordinator}
	raw := statesync.Successor(c.env.Self(), c.coords, nil)
	if raw != "" {
		c.env.Send(raw, hb)
		if eff := c.Successor(); eff != "" && eff != raw {
			c.env.Send(eff, hb)
		}
	}
	// Probe the guarded shards' coordinators too: their acks feed the
	// guard monitor, so a wrongly suspected ring is re-trusted and a
	// truly dead one is adopted on the heartbeat timescale.
	for _, s := range c.guarded {
		for _, id := range c.smap.Ring(s) {
			c.env.Send(id, hb)
		}
	}
}

// Stop implements node.Handler.
//
//rpcv:loop-only
func (c *Coordinator) Stop() {
	c.stopped = true
	if c.servers != nil {
		c.servers.Close()
	}
	if c.ring != nil {
		c.ring.Close()
	}
	if c.guard != nil {
		c.guard.Close()
	}
	if c.replTimer != nil {
		c.replTimer.Stop()
	}
	if c.xtimer != nil {
		c.xtimer.Stop()
	}
	if c.specTimer != nil {
		c.specTimer.Stop()
	}
	if c.beater != nil {
		c.beater.Close()
	}
}

// epochKey is the durable key holding this instance's incarnation
// counter. Partition 0 keeps the historical key so single-loop state
// restarts unchanged under multi-loop (and vice versa); partitions
// j > 0 use a suffixed key — epochs are per-instance because each
// partition replicates and stamps updates independently.
func (c *Coordinator) epochKey() string {
	if c.loopIdx > 0 {
		return fmt.Sprintf("coord/epoch.%d", c.loopIdx)
	}
	return "coord/epoch"
}

func (c *Coordinator) loadEpoch() {
	if raw, ok := c.env.Disk().Read(c.epochKey()); ok && len(raw) == 8 {
		for i := 0; i < 8; i++ {
			c.epoch |= uint64(raw[i]) << (8 * i)
		}
	}
	c.epoch++
	raw := make([]byte, 8)
	for i := 0; i < 8; i++ {
		raw[i] = byte(c.epoch >> (8 * i))
	}
	if err := c.env.Disk().Write(c.epochKey(), raw); err != nil {
		c.env.Logf("coordinator: persist epoch: %v", err)
	}
}

func (c *Coordinator) loadStore() {
	var dec proto.Decoder // one decoder: recovery interns repeated IDs
	for _, key := range c.env.Disk().Keys("coord/job/") {
		raw, ok := c.env.Disk().Read(key)
		if !ok {
			continue
		}
		rec, err := dec.DecodeJob(raw)
		if err != nil {
			c.env.Logf("coordinator: corrupt job record %s: %v", key, err)
			continue
		}
		if !c.ownsLoop(rec.Call) {
			// Another partition's session: its owner reloads it. All
			// partitions share one durable store, so the key space is
			// split by the same placement the runtime routes with.
			continue
		}
		if rec.State == proto.TaskOngoing {
			// The assignment did not survive the crash; schedule anew.
			rec.State = proto.TaskPending
		}
		c.store.Put(rec)
		c.noteSeq(rec.Call)
		if rec.State == proto.TaskPending {
			c.enqueue(rec.Call)
		}
		// markDirty (not a bare assignment) so a restart also re-feeds
		// the cross-shard dirty set: the successor shard may have missed
		// rounds while we were down.
		c.markDirty(rec.Call)
	}
	c.jobsAccepted = c.store.Len()
}

func (c *Coordinator) persistJob(rec *proto.JobRecord) {
	key := "coord/job/" + rec.Call.String()
	if err := c.env.Disk().Write(key, c.cfg.Codec.EncodeJob(rec)); err != nil {
		c.env.Logf("coordinator: persist job %s: %v", rec.Call, err)
	}
}

// ---------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------

// Receive implements node.Handler.
//
//rpcv:loop-only
func (c *Coordinator) Receive(from proto.NodeID, msg proto.Message) {
	if c.stopped {
		return
	}
	switch m := msg.(type) {
	case *proto.Submit:
		c.handleSubmit(from, m)
	case *proto.Poll:
		c.handlePoll(from, m)
	case *proto.SyncRequest:
		c.handleSyncRequest(from, m)
	case *proto.FetchResult:
		c.handleFetchResult(from, m)
	case *proto.Heartbeat:
		c.handleHeartbeat(from, m)
	case *proto.TaskResult:
		c.handleTaskResult(from, m)
	case *proto.ServerSync:
		c.handleServerSync(from, m)
	case *proto.HeartbeatAck:
		c.handleHeartbeatAck(from, m)
	case *proto.ReplicaUpdate:
		c.handleReplicaUpdate(from, m)
	case *proto.ReplicaAck:
		c.handleReplicaAck(from, m)
	case *proto.ShardMapRequest:
		c.handleShardMapRequest(from, m)
	case *proto.ShardSync:
		c.handleShardSync(from, m)
	case *proto.ShardSyncAck:
		c.handleShardSyncAck(from, m)
	case *proto.StealRequest:
		c.handleStealRequest(from, m)
	case *proto.StealGrant:
		c.handleStealGrant(from, m)
	default:
		c.env.Logf("coordinator: unexpected %s from %s", msg.Kind(), from)
	}
}

// afterDBCost schedules fn after the virtual latency accumulated by
// database operations, so DB time is visible on the clock (this is the
// effect that makes figure 5's replication DB-bound). The database is a
// serial resource: concurrent batches queue behind one another.
func (c *Coordinator) afterDBCost(fn func()) {
	if cost := c.store.DrainCost(); cost > 0 {
		c.env.After(c.dbEng.Acquire(c.env.Now(), cost), fn)
		return
	}
	fn()
}

// noteSeq maintains the indexed per-session max timestamp.
func (c *Coordinator) noteSeq(call proto.CallID) {
	k := sessionKey{call.User, call.Session}
	if call.Seq > c.sessionMax[k] {
		c.sessionMax[k] = call.Seq
	}
	c.cm.sessions.SetInt(len(c.sessionMax))
}

// ---------------------------------------------------------------------
// Client interactions
// ---------------------------------------------------------------------

func (c *Coordinator) handleSubmit(from proto.NodeID, m *proto.Submit) {
	c.submitsReceived++
	c.cm.submits.Inc()
	if !c.ownsSession(m.Call.User, m.Call.Session) {
		c.sendRedirect(from, m.Call.User, m.Call.Session, m.Call)
		return
	}
	if _, ok := c.store.Peek(m.Call); ok {
		// Duplicate submission (client retry or resend after sync):
		// acknowledge with the current state, do not reset the job.
		// Re-reading the stored record is one charged lookup; the
		// existence check itself rides on the insert's key conflict.
		c.store.Get(m.Call)
		c.afterDBCost(func() {
			c.env.Send(from, &proto.SubmitAck{Call: m.Call, MaxSeq: c.maxSeq(m.Call.User, m.Call.Session)})
		})
		return
	}
	rec := &proto.JobRecord{
		Call:       m.Call,
		Service:    m.Service,
		Params:     m.Params,
		ExecTime:   m.ExecTime,
		ResultSize: m.ResultSize,
		State:      proto.TaskPending,
	}
	if m.Deadline > 0 {
		rec.Deadline = c.env.Now().Add(m.Deadline)
	}
	c.store.Put(rec)
	c.persistJob(rec)
	c.enqueue(m.Call)
	c.trace(m.Call, obs.StageEnqueue, string(from))
	c.markDirty(m.Call)
	c.noteSeq(m.Call)
	c.afterDBCost(func() {
		c.jobsAccepted++
		c.cm.accepted.Inc()
		c.env.Send(from, &proto.SubmitAck{Call: m.Call, MaxSeq: c.maxSeq(m.Call.User, m.Call.Session)})
	})
}

// maxSeq returns the indexed maximum timestamp known for a session.
func (c *Coordinator) maxSeq(user proto.UserID, session proto.SessionID) proto.RPCSeq {
	return c.sessionMax[sessionKey{user, session}]
}

func (c *Coordinator) handlePoll(from proto.NodeID, m *proto.Poll) {
	if !c.ownsSession(m.User, m.Session) {
		c.sendRedirect(from, m.User, m.Session, proto.CallID{})
		return
	}
	have := make(map[proto.RPCSeq]bool, len(m.Have))
	for _, s := range m.Have {
		have[s] = true
	}
	var out []proto.Result
	for _, rec := range c.store.Select(func(r *proto.JobRecord) bool {
		return r.Call.User == m.User && r.Call.Session == m.Session &&
			r.State == proto.TaskFinished && !have[r.Call.Seq]
	}) {
		out = append(out, proto.Result{
			Call:   rec.Call,
			Output: rec.Output,
			Err:    rec.ResultErr,
			Server: rec.Server,
		})
	}
	c.afterDBCost(func() {
		c.env.Send(from, &proto.Results{User: m.User, Session: m.Session, Results: out})
	})
}

// handleFetchResult serves one per-entry pull of a client rebuilding
// its state from the coordinator's logs. Each fetch is a charged
// database read: the per-entry cost (plus the round trip) is what makes
// this direction of figure 6 slower than the push direction.
func (c *Coordinator) handleFetchResult(from proto.NodeID, m *proto.FetchResult) {
	if !c.ownsSession(m.User, m.Session) {
		c.sendRedirect(from, m.User, m.Session, proto.CallID{})
		return
	}
	call := proto.CallID{User: m.User, Session: m.Session, Seq: m.Seq}
	rec, ok := c.store.Get(call)
	reply := &proto.FetchReply{Call: call, Known: ok}
	if ok && rec.State == proto.TaskFinished {
		reply.Finished = true
		reply.Result = proto.Result{
			Call:   call,
			Output: rec.Output,
			Err:    rec.ResultErr,
			Server: rec.Server,
		}
	}
	c.afterDBCost(func() { c.env.Send(from, reply) })
}

func (c *Coordinator) handleSyncRequest(from proto.NodeID, m *proto.SyncRequest) {
	if !c.ownsSession(m.User, m.Session) {
		c.sendRedirect(from, m.User, m.Session, proto.CallID{})
		return
	}
	known := c.store.Select(func(r *proto.JobRecord) bool {
		return r.Call.User == m.User && r.Call.Session == m.Session
	})
	seqs := make([]proto.RPCSeq, 0, len(known))
	for _, rec := range known {
		seqs = append(seqs, rec.Call.Seq)
	}
	// The reply always carries the exact list of known sequence
	// numbers: the client's log may have holes *below* its maximum
	// (a submission lost on the best-effort network), which a bare
	// max-timestamp comparison cannot reveal.
	reply := &proto.SyncReply{
		User:    m.User,
		Session: m.Session,
		MaxSeq:  c.maxSeq(m.User, m.Session),
		Known:   seqs,
	}
	c.afterDBCost(func() { c.env.Send(from, reply) })
}

// ---------------------------------------------------------------------
// Server interactions
// ---------------------------------------------------------------------

func (c *Coordinator) handleHeartbeat(from proto.NodeID, m *proto.Heartbeat) {
	switch m.Role {
	case proto.RoleServer:
		c.servers.Observe(from)
		// The admission gate weighs pool throughput by concurrent
		// capacity: in-flight here plus what this heartbeat offers.
		c.eng.NoteSlots(from, len(c.byServer[from])+m.Capacity)
	case proto.RoleCoordinator:
		// Only ring-mates join the intra-ring membership list; a
		// cross-shard probe is a guard sign of life, never a merge
		// (merging it would re-route the replication ring across
		// shards).
		if c.inMyRing(from) {
			c.ring.Observe(from)
			c.coords = statesync.MergeNodeLists(c.coords, []proto.NodeID{from})
		} else if c.guard != nil {
			c.guard.Observe(from)
		}
	}
	ack := &proto.HeartbeatAck{From: c.env.Self(), Coordinators: c.coords}
	if m.WantWork && m.Capacity > 0 {
		limit := m.Capacity
		if limit > c.cfg.MaxTasksPerAck {
			limit = c.cfg.MaxTasksPerAck
		}
		ack.Tasks = c.assign(from, limit)
	}
	c.afterDBCost(func() { c.env.Send(from, ack) })
}

// handleHeartbeatAck processes a fellow coordinator's answer to a ring
// heartbeat: a sign of life and a coordinator-list merge. Acks from a
// guarded shard's coordinator feed the guard monitor instead.
func (c *Coordinator) handleHeartbeatAck(from proto.NodeID, m *proto.HeartbeatAck) {
	if !c.inMyRing(from) {
		if c.guard != nil {
			c.guard.Observe(from)
		}
		return
	}
	c.ring.Observe(from)
	if len(m.Coordinators) > 0 {
		c.coords = statesync.MergeNodeLists(c.coords, c.ringOnly(m.Coordinators))
	}
}

// inMyRing reports whether a fellow coordinator shares this ring. When
// unsharded every coordinator does.
func (c *Coordinator) inMyRing(id proto.NodeID) bool {
	return c.smap == nil || c.smap.RingOf(id) == c.shardIdx
}

// ringOnly filters a merged coordinator list down to this ring's
// members (plus unknown IDs when unsharded).
func (c *Coordinator) ringOnly(ids []proto.NodeID) []proto.NodeID {
	if c.smap == nil {
		return ids
	}
	out := make([]proto.NodeID, 0, len(ids))
	for _, id := range ids {
		if c.smap.RingOf(id) == c.shardIdx {
			out = append(out, id)
		}
	}
	return out
}

// assign pops up to limit schedulable jobs from the engine (policy
// order, admission gate, speculative duplicates first) and binds them
// to server. When the queue yields nothing for an idle server, a
// sharded coordinator may instead try to steal work from its successor
// shard.
func (c *Coordinator) assign(server proto.NodeID, limit int) []proto.TaskAssignment {
	var out []proto.TaskAssignment
	now := c.env.Now()
	for limit > 0 {
		call, specDup, ok := c.eng.Pop(server, now)
		if !ok {
			break
		}
		rec, have := c.store.Peek(call)
		if specDup {
			// A redundant instance of an in-flight straggler: the
			// original must still be running on a different server and
			// no second duplicate may exist.
			if !have || rec.State != proto.TaskOngoing {
				continue
			}
			info, running := c.ongoing[call]
			if !running || info.server == server {
				continue
			}
			if _, dup := c.spec[call]; dup {
				continue
			}
			rec.Instance++
			c.store.Put(rec)
			c.persistJob(rec)
			task := proto.TaskID{Call: call, Instance: rec.Instance}
			c.spec[call] = ongoingInfo{server: server, task: task, assignedAt: now}
			c.bindToServer(server, call)
			c.markDirty(call)
			c.speculated++
			c.cm.speculated.Inc()
			c.trace(call, obs.StageSpeculate, string(server))
			out = append(out, proto.TaskAssignment{
				Task:       task,
				Service:    rec.Service,
				Params:     rec.Params,
				ExecTime:   rec.ExecTime,
				ResultSize: rec.ResultSize,
			})
			limit--
			continue
		}
		if !have || rec.State != proto.TaskPending {
			continue // finished or vanished while queued
		}
		if rec.Params == nil && rec.Service == "" {
			continue // placeholder learned via replication without data
		}
		rec.State = proto.TaskOngoing
		rec.Instance++
		rec.Server = server
		c.store.Put(rec)
		c.persistJob(rec)
		task := proto.TaskID{Call: call, Instance: rec.Instance}
		c.ongoing[call] = ongoingInfo{server: server, task: task, assignedAt: now}
		c.bindToServer(server, call)
		c.markDirty(call)
		if at, ok := c.queuedAt[call]; ok {
			c.cm.dispatchLat.ObserveDuration(now.Sub(at))
			delete(c.queuedAt, call)
		}
		c.trace(call, obs.StageDispatch, string(server))
		out = append(out, proto.TaskAssignment{
			Task:       task,
			Service:    rec.Service,
			Params:     rec.Params,
			ExecTime:   rec.ExecTime,
			ResultSize: rec.ResultSize,
		})
		limit--
	}
	if len(out) == 0 && limit > 0 && c.eng.Len() == 0 {
		c.maybeSteal()
	}
	c.noteInflight()
	return out
}

// bindToServer indexes an assignment under its server and watches the
// server for suspicion.
func (c *Coordinator) bindToServer(server proto.NodeID, call proto.CallID) {
	if c.byServer[server] == nil {
		c.byServer[server] = make(map[proto.CallID]bool)
	}
	c.byServer[server][call] = true
	c.servers.Watch(server)
}

func (c *Coordinator) handleTaskResult(from proto.NodeID, m *proto.TaskResult) {
	c.servers.Observe(from)
	rec, ok := c.store.Peek(m.Task.Call)
	if !ok {
		// Result for a job we never saw (e.g. we are a fresh replica):
		// accept it — at-least-once semantics mean results are precious.
		rec = &proto.JobRecord{Call: m.Task.Call, Instance: m.Task.Instance}
	}
	if rec.State == proto.TaskFinished {
		c.dupResults++
		c.cm.dups.Inc()
		c.env.Send(from, &proto.TaskResultAck{Task: m.Task})
		return
	}
	// Feed the speed estimator before the assignment bookkeeping is
	// cleared.
	if info, on := c.ongoing[m.Task.Call]; on && info.server == from {
		c.observeCompletion(from, rec, info, m.Exec)
	} else if info, on := c.spec[m.Task.Call]; on && info.server == from {
		c.observeCompletion(from, rec, info, m.Exec)
		c.specWins++
		c.cm.specWins.Inc()
	}
	rec.State = proto.TaskFinished
	rec.Output = m.Output
	rec.ResultErr = m.Err
	rec.Server = from
	c.store.Put(rec)
	c.persistJob(rec)
	c.noteSeq(rec.Call)
	c.clearOngoing(m.Task.Call, from)
	c.unqueue(m.Task.Call)
	c.markDirty(m.Task.Call)
	c.finished++
	c.cm.finished.Inc()
	c.trace(m.Task.Call, obs.StageResult, string(from))
	if c.cfg.OnJobFinished != nil {
		c.cfg.OnJobFinished(m.Task.Call, c.env.Now())
	}
	c.afterDBCost(func() {
		c.env.Send(from, &proto.TaskResultAck{Task: m.Task})
	})
}

// observeCompletion feeds one finished execution into the speed
// estimator: prefer the server's measured execution duration; fall
// back to the assignment-to-result clock (which crash downtimes and
// upload retries inflate) when the result does not carry one.
func (c *Coordinator) observeCompletion(server proto.NodeID, rec *proto.JobRecord, info ongoingInfo, measured time.Duration) {
	actual := measured
	if actual <= 0 {
		actual = c.env.Now().Sub(info.assignedAt)
	}
	c.eng.ObserveCompletion(server, rec.ExecTime, actual)
}

func (c *Coordinator) handleServerSync(from proto.NodeID, m *proto.ServerSync) {
	c.servers.Observe(from)
	resend, drop := statesync.TaskDiff(m.Tasks, func(call proto.CallID) bool {
		rec, ok := c.store.Peek(call)
		return !ok || rec.State != proto.TaskFinished
	})

	// Peer-wise comparison, coordinator side: any assignment we believe
	// is ongoing at this server but that the server neither holds a
	// result for nor is executing died with a previous incarnation
	// (intermittent crash) — re-schedule it now instead of waiting for
	// a suspicion that will never come.
	alive := make(map[proto.TaskID]bool, len(m.Tasks)+len(m.Running))
	for _, t := range m.Tasks {
		alive[t] = true
	}
	for _, t := range m.Running {
		alive[t] = true
	}
	grace := 3 * c.cfg.HeartbeatPeriod
	for _, call := range sortedCalls(c.spec) {
		info := c.spec[call]
		if info.server != from || alive[info.task] {
			continue
		}
		if c.env.Now().Sub(info.assignedAt) < grace {
			continue
		}
		// A speculative duplicate died with the previous incarnation;
		// the primary instance is still out, so just drop the copy (a
		// future sweep may re-duplicate).
		delete(c.spec, call)
		if set := c.byServer[from]; set != nil {
			delete(set, call)
		}
	}
	for _, call := range sortedCalls(c.ongoing) {
		info := c.ongoing[call]
		if info.server != from || alive[info.task] {
			continue
		}
		if c.env.Now().Sub(info.assignedAt) < grace {
			// The assignment may still be in flight toward the server
			// (it raced the sync); give it a few heartbeats.
			continue
		}
		delete(c.ongoing, call)
		if set := c.byServer[from]; set != nil {
			delete(set, call)
		}
		if c.promoteSpeculative(call) {
			continue
		}
		c.requeue(call)
	}

	c.afterDBCost(func() {
		c.env.Send(from, &proto.ServerSyncReply{Resend: resend, Drop: drop})
	})
}

// onServerSuspected implements the "on suspicion" replication strategy:
// schedule new instances of all RPC calls forwarded to the suspect. A
// call whose speculative duplicate survives on another server is
// promoted instead of re-queued; a duplicate lost with the suspect is
// simply dropped (the primary is still out).
func (c *Coordinator) onServerSuspected(server proto.NodeID) {
	// A suspect no longer counts as drain capacity in the admission
	// gate; it re-earns its speed estimate if it returns.
	c.eng.ForgetServer(server)
	calls := c.byServer[server]
	if len(calls) == 0 {
		return
	}
	c.env.Logf("coordinator: suspect server %s, rescheduling %d calls", server, len(calls))
	for _, call := range sortedCalls(calls) {
		if info, ok := c.spec[call]; ok && info.server == server {
			delete(c.spec, call)
			continue
		}
		info, ok := c.ongoing[call]
		if !ok || info.server != server {
			continue
		}
		delete(c.ongoing, call)
		if c.promoteSpeculative(call) {
			continue
		}
		c.requeue(call)
	}
	delete(c.byServer, server)
}

// promoteSpeculative upgrades a call's speculative duplicate to the
// primary assignment after the primary's server was lost. Reports
// whether a duplicate existed.
func (c *Coordinator) promoteSpeculative(call proto.CallID) bool {
	info, ok := c.spec[call]
	if !ok {
		return false
	}
	delete(c.spec, call)
	c.ongoing[call] = info
	c.noteInflight()
	return true
}

// clearOngoing drops every live assignment of the call once a result
// is stored. winner names the server whose result won ("" when the
// result arrived via replication or shard sync); every other holder of
// an instance is sent a best-effort TaskCancel so losing speculative
// copies stop wasting cycles — idempotently: a server that already
// executed just has its duplicate result deduplicated here later.
func (c *Coordinator) clearOngoing(call proto.CallID, winner proto.NodeID) {
	if info, ok := c.ongoing[call]; ok {
		delete(c.ongoing, call)
		if set := c.byServer[info.server]; set != nil {
			delete(set, call)
		}
		if info.server != winner {
			c.env.Send(info.server, &proto.TaskCancel{Task: info.task})
		}
	}
	if info, ok := c.spec[call]; ok {
		delete(c.spec, call)
		if set := c.byServer[info.server]; set != nil {
			delete(set, call)
		}
		if info.server != winner {
			c.env.Send(info.server, &proto.TaskCancel{Task: info.task})
		}
	}
	delete(c.fromPredecessor, call)
	delete(c.stolenOut, call)
	c.noteInflight()
}

// enqueue inserts one pending call into the scheduling engine with its
// record's metadata; the engine's membership check makes every
// insertion path duplicate-safe. It reports whether the call was newly
// queued.
func (c *Coordinator) enqueue(call proto.CallID) bool {
	var exec time.Duration
	var deadline time.Time
	if rec, ok := c.store.Peek(call); ok {
		exec, deadline = rec.ExecTime, rec.Deadline
	}
	now := c.env.Now()
	queued := c.eng.Enqueue(call, exec, deadline, now)
	if queued && c.cm.dispatchLat != nil {
		c.queuedAt[call] = now
	}
	return queued
}

func (c *Coordinator) unqueue(call proto.CallID) {
	c.eng.Unqueue(call)
	delete(c.queuedAt, call)
}

// requeue is the single re-insertion path for every reissue of a lost,
// dying or withdrawn assignment (server suspicion, peer-wise sync,
// predecessor release, shard adoption, steal reclaim): it resets the
// record to pending, re-queues it and counts the reissue in the
// rescheduled stat, so no path can bypass the duplicate check or the
// accounting. It reports whether the call is schedulable again.
func (c *Coordinator) requeue(call proto.CallID) bool {
	rec, ok := c.store.Peek(call)
	if !ok || rec.State == proto.TaskFinished {
		return false
	}
	if rec.Service == "" && rec.Params == nil {
		return false // placeholder learned via replication without data
	}
	rec.State = proto.TaskPending
	c.store.Put(rec)
	c.persistJob(rec)
	if c.enqueue(call) {
		c.rescheduled++
		c.cm.requeues.Inc()
		c.trace(call, obs.StageRequeue, "")
	}
	c.markDirty(call)
	return true
}

// ---------------------------------------------------------------------
// Passive replication (virtual ring)
// ---------------------------------------------------------------------

func (c *Coordinator) scheduleReplication() {
	if c.cfg.ReplicationPeriod <= 0 {
		return
	}
	c.replTimer = c.env.After(c.cfg.ReplicationPeriod, func() {
		c.ReplicateNow()
		c.scheduleReplication()
	})
}

// ReplicateNow starts one replication round to the current ring
// successor, if any and if no round is in flight. Exported so
// experiment drivers can measure single rounds (figure 5).
func (c *Coordinator) ReplicateNow() {
	if c.replPending || c.stopped {
		return
	}
	succ := c.Successor()
	if succ == "" {
		return
	}
	c.replRound++
	update := &proto.ReplicaUpdate{From: c.env.Self(), Epoch: c.epoch, Round: c.replRound}
	sessions := make(map[string]proto.SessionMax)
	dirtyCalls := sortedCalls(c.dirty)
	for _, call := range dirtyCalls {
		rec, ok := c.store.Peek(call)
		if !ok {
			continue
		}
		clone := rec.Clone()
		if len(clone.Params) > c.cfg.ReplicateParamsLimit {
			// File archives are not replicated.
			clone.Params = nil
		}
		update.Jobs = append(update.Jobs, *clone)
		key := fmt.Sprintf("%s/%d", call.User, call.Session)
		sm := sessions[key]
		sm.User, sm.Session = call.User, call.Session
		if call.Seq > sm.MaxSeq {
			sm.MaxSeq = call.Seq
		}
		sessions[key] = sm
	}
	sessionKeys := make([]string, 0, len(sessions))
	for k := range sessions {
		sessionKeys = append(sessionKeys, k)
	}
	sort.Strings(sessionKeys)
	for _, k := range sessionKeys {
		update.MaxSeqs = append(update.MaxSeqs, sessions[k])
	}
	if len(update.Jobs) == 0 {
		// Nothing dirty: send the (tiny) update anyway — it doubles as
		// the ring heartbeat that keeps successors from suspecting us.
		// Charge one DB scan.
	}
	c.inFlight = c.inFlight[:0]
	for call := range c.dirty {
		c.inFlight = append(c.inFlight, call)
	}
	c.replPending = true
	c.replStart = c.env.Now()
	c.successor = succ
	c.afterDBCost(func() { c.env.Send(succ, update) })

	// A round that never acks must not wedge replication forever: give
	// up after the suspicion timeout (the ring monitor will also fire).
	c.env.After(c.cfg.HeartbeatTimeout, func() {
		if c.replPending && c.successor == succ {
			c.replPending = false
		}
	})
}

func (c *Coordinator) handleReplicaUpdate(from proto.NodeID, m *proto.ReplicaUpdate) {
	c.ring.Observe(from)
	c.predecessor = from
	if c.inMyRing(from) {
		c.coords = statesync.MergeNodeLists(c.coords, []proto.NodeID{from})
	}
	applied := 0
	for i := range m.Jobs {
		incoming := &m.Jobs[i]
		local, ok := c.store.Peek(incoming.Call)
		switch {
		case ok && local.State == proto.TaskFinished:
			// Finished tasks are never regressed.
		case incoming.State == proto.TaskFinished:
			rec := incoming.Clone()
			c.store.Put(rec)
			c.persistJob(rec)
			c.noteSeq(rec.Call)
			c.clearOngoing(rec.Call, rec.Server)
			c.unqueue(rec.Call)
			c.finished++
			c.cm.finished.Inc()
			if c.cfg.OnJobFinished != nil {
				c.cfg.OnJobFinished(rec.Call, c.env.Now())
			}
			applied++
		case incoming.State == proto.TaskOngoing:
			// Not scheduled until we suspect the predecessor.
			rec := incoming.Clone()
			if ok && local.Params != nil && rec.Params == nil {
				rec.Params = local.Params
			}
			c.store.Put(rec)
			c.persistJob(rec)
			c.noteSeq(rec.Call)
			c.fromPredecessor[rec.Call] = true
			applied++
		default: // pending
			rec := incoming.Clone()
			if ok && local.Params != nil && rec.Params == nil {
				rec.Params = local.Params
			}
			c.store.Put(rec)
			c.persistJob(rec)
			c.noteSeq(rec.Call)
			if !ok || local.State != proto.TaskOngoing {
				c.enqueue(rec.Call)
			}
			applied++
		}
	}
	c.afterDBCost(func() {
		c.env.Send(from, &proto.ReplicaAck{From: c.env.Self(), Epoch: m.Epoch, Round: m.Round})
	})
}

func (c *Coordinator) handleReplicaAck(from proto.NodeID, m *proto.ReplicaAck) {
	c.ring.Observe(from)
	if !c.replPending || from != c.successor || m.Epoch != c.epoch || m.Round != c.replRound {
		return
	}
	c.replPending = false
	c.lastReplDur = c.env.Now().Sub(c.replStart)
	c.replRounds++
	// The successor now holds exactly what the round carried; records
	// dirtied since the round was sent stay dirty for the next one.
	for _, call := range c.inFlight {
		delete(c.dirty, call)
	}
	c.inFlight = c.inFlight[:0]
}

// onCoordinatorSuspected recomputes the topology to stay in the same
// connected component: drop the suspect from the ring view and, if its
// tasks were held back as "ongoing at predecessor", release them.
func (c *Coordinator) onCoordinatorSuspected(id proto.NodeID) {
	c.env.Logf("coordinator: suspect coordinator %s", id)
	if c.replPending && id == c.successor {
		c.replPending = false // the round is lost; next tick re-routes
	}
	if id == c.predecessor {
		released := 0
		for _, call := range sortedCalls(c.fromPredecessor) {
			delete(c.fromPredecessor, call)
			if c.requeue(call) {
				released++
			}
		}
		if released > 0 {
			c.env.Logf("coordinator: released %d tasks of suspected predecessor %s", released, id)
		}
	}
}

// Successor returns this coordinator's current ring successor, skipping
// suspected coordinators. Exported for tests and the topology ablation.
func (c *Coordinator) Successor() proto.NodeID {
	return statesync.Successor(c.env.Self(), c.coords, c.ring.Suspected)
}

func (c *Coordinator) markDirty(call proto.CallID) {
	c.dirty[call] = true
	// If a replication round is in flight and carried this record's
	// previous state, the coming ack must not clear the new change:
	// drop the call from the in-flight snapshot so it stays dirty and
	// rides the next round (otherwise a record finishing mid-round
	// would never replicate — a lost update).
	if c.replPending {
		for i, inflight := range c.inFlight {
			if inflight == call {
				c.inFlight[i] = c.inFlight[len(c.inFlight)-1]
				c.inFlight = c.inFlight[:len(c.inFlight)-1]
				break
			}
		}
	}
	// Cross-shard replication tracks its own dirty set with the same
	// lost-update guard.
	if c.smap != nil {
		c.xdirty[call] = true
		if c.xpending {
			for i, inflight := range c.xinFlight {
				if inflight == call {
					c.xinFlight[i] = c.xinFlight[len(c.xinFlight)-1]
					c.xinFlight = c.xinFlight[:len(c.xinFlight)-1]
					break
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Sharded coordination layer
// ---------------------------------------------------------------------

// ownsSession decides whether this coordinator serves a session: always
// when unsharded; when sharded, if the session hashes to this shard or
// to a shard this coordinator has adopted. A guarded shard whose entire
// ring is currently suspected is adopted lazily here, so a client that
// failed over faster than the guard sweep is not bounced back to a dead
// ring.
func (c *Coordinator) ownsSession(user proto.UserID, session proto.SessionID) bool {
	if c.smap == nil {
		return true
	}
	owner := c.smap.Owner(user, session)
	if owner == c.shardIdx || c.adopted[owner] {
		return true
	}
	if c.isGuarded(owner) && c.ringAllSuspected(owner) {
		c.adopt(owner)
		return true
	}
	return false
}

// sendRedirect answers a misrouted client request with the owner shard
// and the current topology, repairing a stale cached map in one round
// trip. Redirects are free of database cost: the request never reaches
// the store.
func (c *Coordinator) sendRedirect(to proto.NodeID, user proto.UserID, session proto.SessionID, call proto.CallID) {
	c.redirects++
	c.cm.redirects.Inc()
	if call != (proto.CallID{}) {
		c.trace(call, obs.StageRedirect, fmt.Sprintf("to shard %d", c.smap.Owner(user, session)))
	}
	c.env.Send(to, &proto.ShardRedirect{
		From:    c.env.Self(),
		User:    user,
		Session: session,
		Call:    call,
		Shard:   c.smap.Owner(user, session),
		Map:     c.smap.State(),
	})
}

func (c *Coordinator) handleShardMapRequest(from proto.NodeID, _ *proto.ShardMapRequest) {
	reply := &proto.ShardMapReply{}
	if c.smap != nil {
		reply.Map = c.smap.State()
	}
	c.env.Send(from, reply)
}

func (c *Coordinator) isGuarded(s int) bool {
	for _, g := range c.guarded {
		if g == s {
			return true
		}
	}
	return false
}

// ringAllSuspected reports whether every coordinator of shard s is
// currently suspected by the guard monitor.
func (c *Coordinator) ringAllSuspected(s int) bool {
	if c.guard == nil {
		return false
	}
	for _, id := range c.smap.Ring(s) {
		if !c.guard.Suspected(id) {
			return false
		}
	}
	return true
}

// onGuardSuspected fires on each new suspicion of a guarded shard's
// coordinator; when a whole guarded ring is silent, its sessions are
// adopted.
func (c *Coordinator) onGuardSuspected(proto.NodeID) {
	for _, s := range c.guarded {
		if !c.adopted[s] && c.ringAllSuspected(s) {
			c.adopt(s)
		}
	}
}

// adopt takes over a lost shard: the records previously learned through
// cross-shard sync are released into the scheduling queue (finished
// ones are already served from the store), and the session ownership
// check starts accepting the shard's clients — which land here anyway,
// since the client failover order follows the same successor relation.
// Adoption is sticky for this incarnation: if the lost ring later
// revives, both shards serve the sessions (duplicate execution is
// at-least-once semantics, and results deduplicate by CallID).
func (c *Coordinator) adopt(s int) {
	if c.adopted[s] {
		return
	}
	c.adopted[s] = true
	c.adoptions++
	c.cm.adoptions.Inc()
	released := 0
	for _, call := range sortedCalls(c.fromShard) {
		if c.fromShard[call] != s {
			continue
		}
		delete(c.fromShard, call)
		if c.requeue(call) {
			released++
		}
	}
	c.env.Logf("coordinator: adopted shard %d (%d held tasks released)", s, released)
}

func (c *Coordinator) scheduleShardSync() {
	if c.smap == nil {
		return
	}
	period := c.cfg.ShardSyncPeriod
	if period <= 0 {
		period = c.cfg.ReplicationPeriod
	}
	if period <= 0 {
		return
	}
	c.xtimer = c.env.After(period, func() {
		c.ShardSyncNow()
		c.scheduleShardSync()
	})
}

// ShardSyncNow starts one cross-shard replication round: dirty records
// plus the full per-session sequence sets of owned sessions go to one
// member of the successor shard's ring. Exported for tests and manual
// drivers (like ReplicateNow).
func (c *Coordinator) ShardSyncNow() {
	if c.smap == nil || c.xpending || c.stopped {
		return
	}
	succ := c.smap.SuccessorShard(c.shardIdx)
	if succ == c.shardIdx {
		return
	}
	ring := c.smap.Ring(succ)
	if len(ring) == 0 {
		return
	}
	target := ring[c.xtargetIx%len(ring)]
	c.xround++
	round := c.xround
	msg := &proto.ShardSync{
		From:  c.env.Self(),
		Shard: c.shardIdx,
		Epoch: c.epoch,
		Round: round,
	}
	for _, call := range sortedCalls(c.xdirty) {
		rec, ok := c.store.Peek(call)
		if !ok {
			continue
		}
		clone := rec.Clone()
		if len(clone.Params) > c.cfg.ReplicateParamsLimit {
			clone.Params = nil // file archives are never replicated
		}
		msg.Jobs = append(msg.Jobs, *clone)
	}
	msg.Sessions = c.dirtySessionSeqs(msg.Jobs)
	c.xinFlight = c.xinFlight[:0]
	for call := range c.xdirty {
		c.xinFlight = append(c.xinFlight, call)
	}
	c.xpending = true
	c.env.Send(target, msg)
	// A silent target must not wedge cross-shard sync: after the
	// suspicion timeout, give up on this round and rotate to another
	// successor-ring member.
	c.env.After(c.cfg.HeartbeatTimeout, func() {
		if c.xpending && c.xround == round {
			c.xpending = false
			c.xtargetIx++
		}
	})
}

// dirtySessionSeqs advertises the exact sequence sets this coordinator
// stores for the owned sessions carried by the current round — the
// input of the receiver's set-difference (statesync.SeqSetDiff), which
// detects records an earlier lost round never delivered. Advertising
// only the round's active sessions (rather than every session ever
// stored) keeps idle rounds O(1) and message size proportional to
// recent activity; a coordinator restart re-dirties its whole store,
// so full coverage recurs exactly when histories may have diverged.
func (c *Coordinator) dirtySessionSeqs(jobs []proto.JobRecord) []proto.SessionSeqs {
	if len(jobs) == 0 {
		return nil
	}
	active := make(map[sessionKey]bool, len(jobs))
	for i := range jobs {
		call := jobs[i].Call
		if c.smap.Owner(call.User, call.Session) == c.shardIdx {
			active[sessionKey{call.User, call.Session}] = true
		}
	}
	if len(active) == 0 {
		return nil
	}
	bySession := make(map[sessionKey][]proto.RPCSeq, len(active))
	for _, rec := range c.store.PeekAll() {
		k := sessionKey{rec.Call.User, rec.Call.Session}
		if active[k] {
			bySession[k] = append(bySession[k], rec.Call.Seq)
		}
	}
	keys := make([]sessionKey, 0, len(bySession))
	for k := range bySession {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].user != keys[j].user {
			return keys[i].user < keys[j].user
		}
		return keys[i].session < keys[j].session
	})
	out := make([]proto.SessionSeqs, 0, len(keys))
	for _, k := range keys {
		out = append(out, proto.SessionSeqs{User: k.user, Session: k.session, Seqs: bySession[k]})
	}
	return out
}

// handleShardSync applies a predecessor shard's cross-replication:
// finished records are stored (and propagated intra-ring), unfinished
// ones are held passively until adoption. The ack reports, via set
// difference, the calls this coordinator is missing entirely.
func (c *Coordinator) handleShardSync(from proto.NodeID, m *proto.ShardSync) {
	if c.guard != nil {
		c.guard.Observe(from)
	}
	for i := range m.Jobs {
		incoming := &m.Jobs[i]
		local, ok := c.store.Peek(incoming.Call)
		switch {
		case ok && local.State == proto.TaskFinished:
			// Finished tasks are never regressed.
		case incoming.State == proto.TaskFinished:
			if _, stolen := c.stolenOut[incoming.Call]; stolen {
				// A job we granted to an idle thief shard came home.
				c.stolenHome++
				c.cm.stolenHome.Inc()
			}
			rec := incoming.Clone()
			c.store.Put(rec)
			c.persistJob(rec)
			c.noteSeq(rec.Call)
			c.clearOngoing(rec.Call, rec.Server)
			c.unqueue(rec.Call)
			delete(c.fromShard, rec.Call)
			c.finished++
			c.cm.finished.Inc()
			if c.cfg.OnJobFinished != nil {
				c.cfg.OnJobFinished(rec.Call, c.env.Now())
			}
			// Propagate within this ring (and onward around the shard
			// circle) so the copy survives our own faults too.
			c.markDirty(rec.Call)
		default:
			if c.locallyClaimed(incoming.Call) {
				// We are scheduling or executing this call ourselves —
				// typically work stolen from the sync's sender, whose
				// ongoing-marked copy echoes back here. The passive
				// copy must not clobber the live claim.
				continue
			}
			rec := incoming.Clone()
			if ok && local.Params != nil && rec.Params == nil {
				rec.Params = local.Params
			}
			c.store.Put(rec)
			c.persistJob(rec)
			c.noteSeq(rec.Call)
			if c.adopted[m.Shard] {
				// Already adopted the source shard: schedule right away.
				rec.State = proto.TaskPending
				c.store.Put(rec)
				c.enqueue(rec.Call)
				c.markDirty(rec.Call)
			} else {
				// Held passively: NOT dirty (ring-mates would schedule
				// it) and not queued until the source shard is adopted.
				c.fromShard[rec.Call] = m.Shard
			}
		}
	}
	ack := &proto.ShardSyncAck{From: c.env.Self(), Shard: c.shardIdx, Epoch: m.Epoch, Round: m.Round}
	for _, ss := range m.Sessions {
		mine := make([]proto.RPCSeq, 0, 8)
		for _, rec := range c.store.Select(func(r *proto.JobRecord) bool {
			return r.Call.User == ss.User && r.Call.Session == ss.Session
		}) {
			mine = append(mine, rec.Call.Seq)
		}
		for _, seq := range statesync.SeqSetDiff(ss.Seqs, mine) {
			ack.Want = append(ack.Want, proto.CallID{User: ss.User, Session: ss.Session, Seq: seq})
		}
	}
	c.afterDBCost(func() { c.env.Send(from, ack) })
}

// handleShardSyncAck completes a cross-shard round: records carried by
// the round are clean, records the receiver asked for are re-marked
// dirty and shipped in an immediate follow-up round.
func (c *Coordinator) handleShardSyncAck(from proto.NodeID, m *proto.ShardSyncAck) {
	if !c.xpending || m.Epoch != c.epoch || m.Round != c.xround {
		return
	}
	c.xpending = false
	c.xrounds++
	for _, call := range c.xinFlight {
		delete(c.xdirty, call)
	}
	c.xinFlight = c.xinFlight[:0]
	wanted := 0
	for _, call := range m.Want {
		if _, ok := c.store.Peek(call); ok {
			c.xdirty[call] = true
			wanted++
		}
	}
	if wanted > 0 {
		c.env.After(0, c.ShardSyncNow)
	}
}

// ringPrimary reports whether this coordinator is the member of its
// ring that clients and servers currently prefer (the first
// non-suspected coordinator in the common sorted order they all use).
func (c *Coordinator) ringPrimary() bool {
	for _, id := range c.coords {
		if id == c.env.Self() {
			return true
		}
		if !c.ring.Suspected(id) {
			return false
		}
	}
	return true
}

// locallyClaimed reports whether this coordinator is actively
// scheduling or executing the call (pending in the engine, assigned,
// or speculatively duplicated) — e.g. work stolen from another shard.
func (c *Coordinator) locallyClaimed(call proto.CallID) bool {
	if c.eng.Queued(call) {
		return true
	}
	if _, ok := c.ongoing[call]; ok {
		return true
	}
	if _, ok := c.spec[call]; ok {
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Scheduling sweep: lateness observation + speculative duplication
// ---------------------------------------------------------------------

func (c *Coordinator) scheduleSpeculation() {
	if !c.eng.NeedsSweep() {
		// fcfs/deadline never read the estimator: don't pay an
		// O(ongoing) walk per heartbeat period on the default path.
		return
	}
	c.specTimer = c.env.After(c.cfg.HeartbeatPeriod, func() {
		c.schedSweep()
		c.scheduleSpeculation()
	})
}

// schedSweep walks the in-flight assignments once per heartbeat
// period. Every policy gets the lateness feed (a task running past its
// expected duration classifies its server as slow without waiting for
// a completion that may never come). Under the speculative policy the
// sweep additionally issues redundant instances of stragglers: when an
// assignment's age exceeds the engine's threshold, a duplicate is
// queued for any fast server but the one running the original. The
// first stored result wins; the loser is cancelled by clearOngoing
// and, should its result arrive anyway, deduplicated by CallID — the
// same mechanism that already makes re-execution safe across
// replication, shard sync and coordinator failover.
func (c *Coordinator) schedSweep() {
	now := c.env.Now()
	speculate := c.eng.Speculative()
	// Per server, only the oldest assignment feeds the lateness
	// estimate: that is the one actually executing; younger ones may
	// merely be waiting in the server's backlog, and counting their
	// queue wait as slowness would brand a busy fast machine slow.
	// An order-independent reduction: no sort needed for determinism.
	oldest := make(map[proto.NodeID]time.Time, len(c.byServer))
	for _, info := range c.ongoing {
		if at, ok := oldest[info.server]; !ok || info.assignedAt.Before(at) {
			oldest[info.server] = info.assignedAt
		}
	}
	for _, call := range sortedCalls(c.ongoing) {
		info := c.ongoing[call]
		rec, ok := c.store.Peek(call)
		if !ok || rec.State != proto.TaskOngoing {
			continue
		}
		age := now.Sub(info.assignedAt)
		// Only a server that is demonstrably alive gets branded slow by
		// lateness: a crashed one's assignment also ages, but that is
		// the suspicion machinery's business, not the estimator's.
		if info.assignedAt.Equal(oldest[info.server]) &&
			c.servers.ObservedWithin(info.server, 3*c.cfg.HeartbeatPeriod) {
			c.eng.ObserveLateness(info.server, rec.ExecTime, age)
		}
		if !speculate {
			continue
		}
		if _, dup := c.spec[call]; dup {
			continue // already duplicated once
		}
		if age < c.eng.SpeculateThreshold(rec.ExecTime) {
			continue
		}
		c.eng.EnqueueSpec(call, info.server)
	}
}

// ---------------------------------------------------------------------
// Cross-shard work stealing
// ---------------------------------------------------------------------

// maybeSteal (thief side) asks the successor shard for work when the
// local queue is empty while a server is idle. The successor direction
// is deliberate: this coordinator's ShardSync already flows to that
// shard, so the stolen tasks' results are routed home by the existing
// cross-replication path. At most one request is outstanding and
// requests are throttled to the heartbeat period.
func (c *Coordinator) maybeSteal() {
	if !c.cfg.WorkStealing || c.smap == nil || c.stealPending || c.stopped {
		return
	}
	now := c.env.Now()
	if !c.lastStealAt.IsZero() && now.Sub(c.lastStealAt) < c.cfg.HeartbeatPeriod {
		return
	}
	succ := c.smap.SuccessorShard(c.shardIdx)
	if succ == c.shardIdx || c.adopted[succ] {
		return
	}
	ring := c.smap.Ring(succ)
	if len(ring) == 0 {
		return
	}
	target := ring[c.stealIx%len(ring)]
	c.stealRound++
	round := c.stealRound
	c.stealPending = true
	c.lastStealAt = now
	c.env.Send(target, &proto.StealRequest{
		From:     c.env.Self(),
		Shard:    c.shardIdx,
		Epoch:    c.epoch,
		Round:    round,
		Capacity: c.cfg.StealBatch,
	})
	// A silent victim must not wedge stealing: give up on this round
	// after the suspicion timeout and rotate to another ring member.
	c.env.After(c.cfg.HeartbeatTimeout, func() {
		if c.stealPending && c.stealRound == round {
			c.stealPending = false
			c.stealIx++
		}
	})
}

// handleStealRequest (victim side) grants up to Capacity pending jobs
// to an idle predecessor shard. Granted jobs are marked ongoing (so
// local servers do not also execute them), tracked for timeout reclaim
// and — unlike replication — shipped with their full parameter
// payloads, which the thief needs to execute.
func (c *Coordinator) handleStealRequest(from proto.NodeID, m *proto.StealRequest) {
	if !c.cfg.WorkStealing || c.smap == nil {
		return
	}
	if c.smap.SuccessorShard(m.Shard) != c.shardIdx {
		// Only a shard we cross-replicate from may steal here: any
		// other thief could not route results home over ShardSync.
		return
	}
	if !c.ringPrimary() {
		// A replica's queue mirrors pending records learned via
		// ReplicaUpdate; granting from the mirror would double-execute
		// work the ring's serving member still schedules locally.
		return
	}
	grant := &proto.StealGrant{From: c.env.Self(), Shard: c.shardIdx, Epoch: m.Epoch, Round: m.Round}
	limit := m.Capacity
	if limit > c.cfg.StealBatch {
		limit = c.cfg.StealBatch
	}
	now := c.env.Now()
	for limit > 0 {
		call, ok := c.eng.PopSteal()
		if !ok {
			break
		}
		rec, have := c.store.Peek(call)
		if !have || rec.State != proto.TaskPending {
			continue
		}
		if rec.Service == "" && rec.Params == nil {
			continue // placeholder without data
		}
		rec.State = proto.TaskOngoing
		rec.Instance++
		c.store.Put(rec)
		c.persistJob(rec)
		c.stolenOut[call] = stolenOutInfo{shard: m.Shard, grantedAt: now}
		c.stolenOutTotal++
		c.cm.stolenOut.Inc()
		c.trace(call, obs.StageSteal, fmt.Sprintf("granted to shard %d", m.Shard))
		c.markDirty(call)
		grant.Jobs = append(grant.Jobs, *rec.Clone())
		limit--
	}
	if len(grant.Jobs) > 0 {
		c.env.After(c.stealReclaimAfter(), c.reclaimStolen)
	}
	c.afterDBCost(func() { c.env.Send(from, grant) })
}

// stealReclaimAfter bounds how long a granted job may stay out before
// the victim re-queues it: long enough for the thief to execute and
// for a ShardSync round to bring the result home, short enough that a
// dying thief does not stall the batch. A late duplicate execution is
// ordinary at-least-once behaviour.
func (c *Coordinator) stealReclaimAfter() time.Duration {
	d := 2 * c.cfg.HeartbeatTimeout
	if p := c.cfg.ShardSyncPeriod; p > 0 && 2*p > d {
		d = 2 * p
	}
	return d
}

// reclaimStolen re-queues granted jobs whose results never came home.
func (c *Coordinator) reclaimStolen() {
	now := c.env.Now()
	deadline := c.stealReclaimAfter()
	for _, call := range sortedCalls(c.stolenOut) {
		if now.Sub(c.stolenOut[call].grantedAt) < deadline {
			continue
		}
		delete(c.stolenOut, call)
		c.requeue(call)
	}
}

// handleStealGrant (thief side) queues the granted foreign jobs
// locally. Results will flow home through the regular ShardSync round
// because handleTaskResult marks every finished record cross-shard
// dirty; the CallID-keyed store keeps a racing home-side re-execution
// harmless.
func (c *Coordinator) handleStealGrant(from proto.NodeID, m *proto.StealGrant) {
	if m.Epoch != c.epoch || m.Round != c.stealRound {
		return // stale grant from a previous round or incarnation
	}
	c.stealPending = false
	if len(m.Jobs) == 0 {
		// Nothing to take from this member; rotate so the next request
		// reaches another victim-ring coordinator (work submitted to a
		// ring-mate only mirrors here after a replication round).
		c.stealIx++
		return
	}
	for i := range m.Jobs {
		incoming := &m.Jobs[i]
		if local, ok := c.store.Peek(incoming.Call); ok && local.State == proto.TaskFinished {
			continue // result already here; ShardSync will carry it home
		}
		if c.locallyClaimed(incoming.Call) {
			continue // a re-grant raced the victim's reclaim
		}
		rec := incoming.Clone()
		rec.State = proto.TaskPending
		c.store.Put(rec)
		c.persistJob(rec)
		c.noteSeq(rec.Call)
		delete(c.fromShard, rec.Call) // now actively ours, not passive
		c.enqueue(rec.Call)
		c.stolenIn++
		c.cm.stolenIn.Inc()
		c.trace(rec.Call, obs.StageSteal, "stolen from "+string(from))
	}
}

// sortedCalls returns the map's keys ordered by CallID, so protocol
// actions never depend on Go's randomized map iteration (determinism).
func sortedCalls[V any](m map[proto.CallID]V) []proto.CallID {
	out := make([]proto.CallID, 0, len(m))
	for call := range m {
		out = append(out, call)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ---------------------------------------------------------------------
// Introspection (experiment and test hooks; event-loop only)
// ---------------------------------------------------------------------

// Stats is a snapshot of coordinator counters.
type Stats struct {
	JobsAccepted    int
	SubmitsReceived int
	Finished        int
	Pending         int
	Ongoing         int
	DupResults      int
	Rescheduled     int
	ReplRounds      uint64
	LastReplication time.Duration
	Coordinators    int
	KnownServers    int
	Redirects       int
	Adoptions       int
	ShardSyncRounds uint64
	Policy          string
	Speculated      int // redundant task instances issued
	SpecWins        int // results won by the speculative copy
	StolenIn        int // tasks stolen from the successor shard and run here
	StolenOut       int // pending tasks granted away to an idle thief shard
	StolenHome      int // granted tasks whose result came home via ShardSync
}

// StatsNow returns the current counters. Event-loop only.
func (c *Coordinator) StatsNow() Stats {
	pending, ongoing := 0, 0
	for _, rec := range c.store.PeekAll() {
		switch rec.State {
		case proto.TaskPending:
			pending++
		case proto.TaskOngoing:
			ongoing++
		}
	}
	return Stats{
		JobsAccepted:    c.jobsAccepted,
		SubmitsReceived: c.submitsReceived,
		Finished:        c.finished,
		Pending:         pending,
		Ongoing:         ongoing,
		DupResults:      c.dupResults,
		Rescheduled:     c.rescheduled,
		ReplRounds:      c.replRounds,
		LastReplication: c.lastReplDur,
		Coordinators:    len(c.coords),
		KnownServers:    c.servers.Tracked(),
		Redirects:       c.redirects,
		Adoptions:       c.adoptions,
		ShardSyncRounds: c.xrounds,
		Policy:          c.eng.PolicyName(),
		Speculated:      c.speculated,
		SpecWins:        c.specWins,
		StolenIn:        c.stolenIn,
		StolenOut:       c.stolenOutTotal,
		StolenHome:      c.stolenHome,
	}
}

// PolicyName returns the active scheduling policy. Event-loop only.
func (c *Coordinator) PolicyName() string { return c.eng.PolicyName() }

// SuspectedServers returns the servers currently under heartbeat
// suspicion. Event-loop only (statusz sections fetch it via rt.Do).
func (c *Coordinator) SuspectedServers() []proto.NodeID { return c.servers.Suspects() }

// SuspectedCoordinators returns the ring members currently under
// suspicion. Event-loop only.
func (c *Coordinator) SuspectedCoordinators() []proto.NodeID { return c.ring.Suspects() }

// ShardState returns the shard map's wire state (zero value when
// unsharded). Event-loop only.
func (c *Coordinator) ShardState() proto.ShardMapState {
	if c.smap == nil {
		return proto.ShardMapState{}
	}
	return c.smap.State()
}

// ShardIndex returns this coordinator's shard, or -1 when unsharded.
func (c *Coordinator) ShardIndex() int { return c.shardIdx }

// AdoptedShards returns the shards adopted so far, sorted (tests).
func (c *Coordinator) AdoptedShards() []int {
	out := make([]int, 0, len(c.adopted))
	for s := range c.adopted {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// FinishedCount returns the number of jobs first seen finished here.
func (c *Coordinator) FinishedCount() int { return c.finished }

// LastReplicationDuration returns the duration of the last completed
// replication round (figure 5's measured quantity).
func (c *Coordinator) LastReplicationDuration() time.Duration { return c.lastReplDur }

// ReplicationInFlight reports whether a round is awaiting its ack.
func (c *Coordinator) ReplicationInFlight() bool { return c.replPending }

// DB exposes the task database (tests only).
func (c *Coordinator) DB() *db.DB { return c.store }

// KnownCoordinators returns the current merged coordinator list.
func (c *Coordinator) KnownCoordinators() []proto.NodeID {
	return append([]proto.NodeID(nil), c.coords...)
}
