package coordinator

import (
	"testing"
	"time"

	"rpcv/internal/db"
	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// peer is a scripted counterpart node (client or server stand-in).
type peer struct {
	env   node.Env
	inbox []proto.Message
}

func (p *peer) Start(env node.Env)                      { p.env = env }
func (p *peer) Receive(_ proto.NodeID, m proto.Message) { p.inbox = append(p.inbox, m) }
func (p *peer) Stop()                                   {}

func (p *peer) last() proto.Message {
	if len(p.inbox) == 0 {
		return nil
	}
	return p.inbox[len(p.inbox)-1]
}

// rig builds a world with one coordinator under test plus a scripted
// peer. Instant DB keeps timing out of functional assertions.
func rig(t *testing.T, cfg Config) (*sim.World, *Coordinator, *peer) {
	t.Helper()
	if cfg.DBCost == (db.CostModel{}) {
		cfg.DBCost = db.CostModel{PerOp: time.Microsecond}
	}
	if len(cfg.Coordinators) == 0 {
		cfg.Coordinators = []proto.NodeID{"co"}
	}
	w := sim.NewWorld(sim.Config{Seed: 3})
	co := New(cfg)
	p := &peer{}
	w.AddNode("co", co)
	w.AddNode("peer", p)
	w.Start("co")
	w.Start("peer")
	return w, co, p
}

func call(seq int) proto.CallID {
	return proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(seq)}
}

func submit(seq int) *proto.Submit {
	return &proto.Submit{Call: call(seq), Service: "synthetic", Params: []byte("p"),
		ExecTime: time.Second, ResultSize: 4}
}

func TestSubmitRegistersAndAcks(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	ack, ok := p.last().(*proto.SubmitAck)
	if !ok {
		t.Fatalf("last message = %T, want SubmitAck", p.last())
	}
	if ack.Call != call(1) || ack.MaxSeq != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if co.StatsNow().JobsAccepted != 1 {
		t.Fatal("job not accepted")
	}
}

func TestDuplicateSubmitIdempotent(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	if n := co.StatsNow().JobsAccepted; n != 1 {
		t.Fatalf("accepted %d jobs from duplicate submit, want 1", n)
	}
}

func TestFCFSAssignmentOrder(t *testing.T) {
	w, co, p := rig(t, Config{MaxTasksPerAck: 10})
	for i := 1; i <= 3; i++ {
		p.env.Send("co", submit(i))
	}
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 10, WantWork: true})
	w.RunFor(time.Second)
	ack, ok := p.last().(*proto.HeartbeatAck)
	if !ok {
		t.Fatalf("last = %T", p.last())
	}
	if len(ack.Tasks) != 3 {
		t.Fatalf("assigned %d tasks, want 3", len(ack.Tasks))
	}
	for i, task := range ack.Tasks {
		if task.Task.Call.Seq != proto.RPCSeq(i+1) {
			t.Fatalf("assignment order %v not FCFS", ack.Tasks)
		}
	}
	if st := co.StatsNow(); st.Ongoing != 3 || st.Pending != 0 {
		t.Fatalf("states after assign: %+v", st)
	}
	_ = co
}

func TestMaxTasksPerAckCap(t *testing.T) {
	w, _, p := rig(t, Config{MaxTasksPerAck: 2})
	for i := 1; i <= 5; i++ {
		p.env.Send("co", submit(i))
	}
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 10, WantWork: true})
	w.RunFor(time.Second)
	ack := p.last().(*proto.HeartbeatAck)
	if len(ack.Tasks) != 2 {
		t.Fatalf("assigned %d, want cap 2", len(ack.Tasks))
	}
}

func TestResultStoredAndServed(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	ack := p.last().(*proto.HeartbeatAck)
	task := ack.Tasks[0].Task

	p.env.Send("co", &proto.TaskResult{From: "peer", Task: task, Output: []byte("result")})
	w.RunFor(time.Second)
	if co.FinishedCount() != 1 {
		t.Fatal("result not recorded")
	}
	// Poll returns it.
	p.env.Send("co", &proto.Poll{User: "u", Session: 1})
	w.RunFor(time.Second)
	res, ok := p.last().(*proto.Results)
	if !ok || len(res.Results) != 1 || string(res.Results[0].Output) != "result" {
		t.Fatalf("poll reply = %+v", p.last())
	}
	// Poll with Have filters it out.
	p.env.Send("co", &proto.Poll{User: "u", Session: 1, Have: []proto.RPCSeq{1}})
	w.RunFor(time.Second)
	res2 := p.last().(*proto.Results)
	if len(res2.Results) != 0 {
		t.Fatal("poll returned already-held result")
	}
}

func TestDuplicateResultDeduplicated(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	task := proto.TaskID{Call: call(1), Instance: 1}
	p.env.Send("co", &proto.TaskResult{From: "peer", Task: task, Output: []byte("a")})
	p.env.Send("co", &proto.TaskResult{From: "peer", Task: task, Output: []byte("b")})
	w.RunFor(time.Second)
	st := co.StatsNow()
	if st.Finished != 1 || st.DupResults != 1 {
		t.Fatalf("finished=%d dup=%d, want 1,1", st.Finished, st.DupResults)
	}
	rec, _ := co.DB().Peek(call(1))
	if string(rec.Output) != "a" {
		t.Fatal("duplicate overwrote first result")
	}
}

func TestServerSuspicionReschedules(t *testing.T) {
	w, co, p := rig(t, Config{HeartbeatTimeout: 10 * time.Second})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	if co.StatsNow().Ongoing != 1 {
		t.Fatal("task not assigned")
	}
	// Silence: the server never comes back.
	w.RunFor(time.Minute)
	st := co.StatsNow()
	if st.Rescheduled != 1 || st.Pending != 1 || st.Ongoing != 0 {
		t.Fatalf("after suspicion: %+v", st)
	}
	// The next instance gets a higher instance number.
	p.env.Send("co", &proto.Heartbeat{From: "peer2", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	// peer2 does not exist as a node; inspect the DB instead.
	rec, _ := co.DB().Peek(call(1))
	if rec.Instance != 2 {
		t.Fatalf("instance = %d, want 2", rec.Instance)
	}
}

func TestServerSyncReschedulesLostAssignments(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	// A sync arriving within the in-flight grace (the assignment may
	// still be racing toward the server) must NOT reschedule.
	p.env.Send("co", &proto.ServerSync{From: "peer"})
	w.RunFor(time.Second)
	if st := co.StatsNow(); st.Rescheduled != 0 {
		t.Fatalf("graced assignment rescheduled prematurely: %+v", st)
	}
	// Past the grace, the same sync reveals the assignment died with a
	// previous incarnation: reschedule.
	w.RunFor(time.Minute)
	p.env.Send("co", &proto.ServerSync{From: "peer"})
	w.RunFor(time.Second)
	st := co.StatsNow()
	if st.Pending != 1 || st.Rescheduled != 1 {
		t.Fatalf("lost assignment not rescheduled: %+v", st)
	}
}

func TestServerSyncKeepsAliveAssignments(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	task := proto.TaskID{Call: call(1), Instance: 1}
	// Failover-style sync: the task is still running on the server.
	p.env.Send("co", &proto.ServerSync{From: "peer", Running: []proto.TaskID{task}})
	w.RunFor(time.Second)
	if st := co.StatsNow(); st.Ongoing != 1 || st.Rescheduled != 0 {
		t.Fatalf("live assignment disturbed: %+v", st)
	}
}

func TestServerSyncReplyClassifiesResults(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	p.env.Send("co", submit(2))
	w.RunFor(time.Second)
	// Call 2 already finished via another path.
	p.env.Send("co", &proto.TaskResult{From: "other", Task: proto.TaskID{Call: call(2), Instance: 1}})
	w.RunFor(time.Second)
	p.env.Send("co", &proto.ServerSync{From: "peer", Tasks: []proto.TaskID{
		{Call: call(1), Instance: 1},
		{Call: call(2), Instance: 1},
	}})
	w.RunFor(time.Second)
	reply, ok := p.last().(*proto.ServerSyncReply)
	if !ok {
		t.Fatalf("last = %T", p.last())
	}
	if len(reply.Resend) != 1 || reply.Resend[0].Call != call(1) {
		t.Fatalf("resend = %v", reply.Resend)
	}
	if len(reply.Drop) != 1 || reply.Drop[0].Call != call(2) {
		t.Fatalf("drop = %v", reply.Drop)
	}
	_ = co
}

func TestSyncRequestReplies(t *testing.T) {
	w, _, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	p.env.Send("co", submit(3))
	w.RunFor(time.Second)
	// The reply always carries the exact known list, so the client can
	// detect holes below its maximum timestamp (lost submissions).
	p.env.Send("co", &proto.SyncRequest{User: "u", Session: 1, MaxSeq: 3, HaveLog: true})
	w.RunFor(time.Second)
	rep := p.last().(*proto.SyncReply)
	if rep.MaxSeq != 3 || len(rep.Known) != 2 {
		t.Fatalf("have-log reply = %+v", rep)
	}
	if rep.Known[0] != 1 || rep.Known[1] != 3 {
		t.Fatalf("known = %v, want [1 3]", rep.Known)
	}
	// Without a log: same list, which the client adopts.
	p.env.Send("co", &proto.SyncRequest{User: "u", Session: 1, HaveLog: false})
	w.RunFor(time.Second)
	rep = p.last().(*proto.SyncReply)
	if len(rep.Known) != 2 {
		t.Fatalf("lost-log reply known = %v", rep.Known)
	}
}

func TestFetchResult(t *testing.T) {
	w, _, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.TaskResult{From: "x", Task: proto.TaskID{Call: call(1), Instance: 1},
		Output: []byte("out")})
	w.RunFor(time.Second)
	p.env.Send("co", &proto.FetchResult{User: "u", Session: 1, Seq: 1})
	w.RunFor(time.Second)
	rep, ok := p.last().(*proto.FetchReply)
	if !ok || !rep.Known || !rep.Finished || string(rep.Result.Output) != "out" {
		t.Fatalf("fetch reply = %+v", p.last())
	}
	// Unknown call.
	p.env.Send("co", &proto.FetchResult{User: "u", Session: 1, Seq: 99})
	w.RunFor(time.Second)
	rep = p.last().(*proto.FetchReply)
	if rep.Known || rep.Finished {
		t.Fatalf("unknown fetch reply = %+v", rep)
	}
}

func TestRestartReloadsJobsFromDisk(t *testing.T) {
	w, co, p := rig(t, Config{})
	p.env.Send("co", submit(1))
	p.env.Send("co", submit(2))
	w.RunFor(time.Second)
	p.env.Send("co", &proto.TaskResult{From: "x", Task: proto.TaskID{Call: call(1), Instance: 1},
		Output: []byte("done")})
	w.RunFor(time.Second)

	w.Restart("co")
	w.RunFor(time.Second)
	st := co.StatsNow()
	if st.JobsAccepted != 2 {
		t.Fatalf("restart lost jobs: %+v", st)
	}
	rec, ok := co.DB().Peek(call(1))
	if !ok || rec.State != proto.TaskFinished || string(rec.Output) != "done" {
		t.Fatal("finished result lost across restart")
	}
	rec2, _ := co.DB().Peek(call(2))
	if rec2.State != proto.TaskPending {
		t.Fatalf("unfinished job state = %v, want pending after restart", rec2.State)
	}
}

func TestReplicationRoundTrip(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 5})
	cfg := Config{
		Coordinators: []proto.NodeID{"c1", "c2"},
		DBCost:       db.CostModel{PerOp: time.Microsecond},
	}
	c1, c2 := New(cfg), New(cfg)
	p := &peer{}
	w.AddNode("c1", c1)
	w.AddNode("c2", c2)
	w.AddNode("peer", p)
	w.Start("c1")
	w.Start("c2")
	w.Start("peer")

	p.env.Send("c1", submit(1))
	w.RunFor(time.Second)
	p.env.Send("c1", &proto.TaskResult{From: "peer", Task: proto.TaskID{Call: call(1), Instance: 1},
		Output: []byte("r")})
	w.RunFor(time.Second)

	w.Schedule(0, c1.ReplicateNow)
	w.RunFor(time.Second)

	if c2.FinishedCount() != 1 {
		t.Fatalf("replica finished = %d, want 1", c2.FinishedCount())
	}
	if c1.LastReplicationDuration() <= 0 {
		t.Fatal("replication duration not measured")
	}
	// The replica can now serve the result to a polling client.
	p.env.Send("c2", &proto.Poll{User: "u", Session: 1})
	w.RunFor(time.Second)
	res, ok := p.last().(*proto.Results)
	if !ok || len(res.Results) != 1 {
		t.Fatalf("replica poll = %+v", p.last())
	}
}

func TestReplicaHoldsPredecessorOngoingUntilSuspicion(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 6})
	cfg := Config{
		Coordinators:     []proto.NodeID{"c1", "c2"},
		DBCost:           db.CostModel{PerOp: time.Microsecond},
		HeartbeatTimeout: 15 * time.Second,
		HeartbeatPeriod:  5 * time.Second,
	}
	c1, c2 := New(cfg), New(cfg)
	p := &peer{}
	w.AddNode("c1", c1)
	w.AddNode("c2", c2)
	w.AddNode("peer", p)
	w.Start("c1")
	w.Start("c2")
	w.Start("peer")

	p.env.Send("c1", submit(1))
	w.RunFor(time.Second)
	p.env.Send("c1", &proto.Heartbeat{From: "peer", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second) // now ongoing at c1
	w.Schedule(0, c1.ReplicateNow)
	w.RunFor(time.Second)

	// c2 knows the job as ongoing-at-predecessor: it must not offer it.
	p.env.Send("c2", &proto.Heartbeat{From: "peer2", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	if ack, ok := p.last().(*proto.HeartbeatAck); ok && len(ack.Tasks) != 0 {
		t.Fatalf("replica scheduled predecessor's ongoing task: %v", ack.Tasks)
	}

	// Kill c1; after suspicion, c2 releases the task.
	w.Crash("c1")
	w.RunFor(time.Minute)
	p.env.Send("c2", &proto.Heartbeat{From: "peer2", Role: proto.RoleServer, Capacity: 1, WantWork: true})
	w.RunFor(time.Second)
	ack, ok := p.last().(*proto.HeartbeatAck)
	if !ok || len(ack.Tasks) != 1 {
		t.Fatalf("released task not scheduled after predecessor suspicion: %+v", p.last())
	}
}

func TestRingHeartbeatsKeepTrust(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 7})
	cfg := Config{
		Coordinators:      []proto.NodeID{"c1", "c2"},
		DBCost:            db.CostModel{PerOp: time.Microsecond},
		HeartbeatTimeout:  30 * time.Second,
		HeartbeatPeriod:   5 * time.Second,
		ReplicationPeriod: 2 * time.Minute, // longer than the timeout
	}
	c1, c2 := New(cfg), New(cfg)
	w.AddNode("c1", c1)
	w.AddNode("c2", c2)
	w.Start("c1")
	w.Start("c2")
	w.RunFor(10 * time.Minute)
	// With ring heartbeats, neither suspects the other despite the long
	// replication period, so the ring successor stays stable.
	if c1.Successor() != "c2" || c2.Successor() != "c1" {
		t.Fatalf("ring broken: succ(c1)=%s succ(c2)=%s", c1.Successor(), c2.Successor())
	}
	if c1.StatsNow().ReplRounds < 4 {
		t.Fatalf("replication rounds = %d, want >= 4", c1.StatsNow().ReplRounds)
	}
}

func TestStaleEpochAckIgnored(t *testing.T) {
	w, co, p := rig(t, Config{Coordinators: []proto.NodeID{"co", "peer"}})
	p.env.Send("co", submit(1))
	w.RunFor(time.Second)
	w.Schedule(0, co.ReplicateNow)
	w.RunFor(time.Millisecond)
	if !co.ReplicationInFlight() {
		t.Fatal("no round in flight")
	}
	// A stale ack (wrong epoch) must not complete the round.
	p.env.Send("co", &proto.ReplicaAck{From: "peer", Epoch: 9999})
	w.RunFor(100 * time.Millisecond)
	if !co.ReplicationInFlight() {
		t.Fatal("stale ack completed the round")
	}
}

func TestMidRoundStateChangeStaysDirty(t *testing.T) {
	// A record finishing while its previous state is in a replication
	// round must survive the round's ack in the dirty set; otherwise
	// the finished state would never reach the backup (lost update).
	w := sim.NewWorld(sim.Config{Seed: 8})
	cfg := Config{
		Coordinators: []proto.NodeID{"c1", "c2"},
		// A slow DB stretches the round so the result arrives mid-round.
		DBCost: db.CostModel{PerOp: 200 * time.Millisecond},
	}
	c1, c2 := New(cfg), New(cfg)
	p := &peer{}
	w.AddNode("c1", c1)
	w.AddNode("c2", c2)
	w.AddNode("peer", p)
	w.Start("c1")
	w.Start("c2")
	w.Start("peer")

	p.env.Send("c1", submit(1))
	w.RunFor(time.Second)
	// Start a round carrying the record as pending, then land its
	// result while the round is still in flight (backup DB is slow).
	w.Schedule(0, c1.ReplicateNow)
	w.Schedule(50*time.Millisecond, func() {
		c1.Receive("peer", &proto.TaskResult{
			From:   "peer",
			Task:   proto.TaskID{Call: call(1), Instance: 1},
			Output: []byte("late"),
		})
	})
	w.RunFor(5 * time.Second) // round completes, ack processed
	// The next round must carry the finished state to the backup.
	w.Schedule(0, c1.ReplicateNow)
	w.RunFor(5 * time.Second)
	if c2.FinishedCount() != 1 {
		t.Fatalf("backup finished = %d; the mid-round finish was lost", c2.FinishedCount())
	}
}
