package server

import (
	"errors"
	"testing"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// fakeCoord is a scripted coordinator stand-in that records traffic and
// can grant tasks on heartbeats.
type fakeCoord struct {
	env     node.Env
	grant   []proto.TaskAssignment // handed out on the next WantWork beat
	results []*proto.TaskResult
	syncs   []*proto.ServerSync
	ackAll  bool
	coords  []proto.NodeID
	silent  bool // stop answering (simulated silence without crash)
}

func (f *fakeCoord) Start(env node.Env) { f.env = env }
func (f *fakeCoord) Stop()              {}
func (f *fakeCoord) Receive(from proto.NodeID, msg proto.Message) {
	if f.silent {
		return
	}
	switch m := msg.(type) {
	case *proto.Heartbeat:
		ack := &proto.HeartbeatAck{From: f.env.Self(), Coordinators: f.coords}
		if m.WantWork && len(f.grant) > 0 {
			n := m.Capacity
			if n > len(f.grant) {
				n = len(f.grant)
			}
			ack.Tasks = f.grant[:n]
			f.grant = f.grant[n:]
		}
		f.env.Send(from, ack)
	case *proto.TaskResult:
		f.results = append(f.results, m)
		if f.ackAll {
			f.env.Send(from, &proto.TaskResultAck{Task: m.Task})
		}
	case *proto.ServerSync:
		f.syncs = append(f.syncs, m)
		f.env.Send(from, &proto.ServerSyncReply{})
	}
}

func task(seq, inst int) proto.TaskAssignment {
	return proto.TaskAssignment{
		Task: proto.TaskID{
			Call:     proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(seq)},
			Instance: uint32(inst),
		},
		Service:    "synthetic",
		ExecTime:   10 * time.Second,
		ResultSize: 8,
	}
}

func rig(t *testing.T, cfg Config) (*sim.World, *Server, *fakeCoord) {
	t.Helper()
	if len(cfg.Coordinators) == 0 {
		cfg.Coordinators = []proto.NodeID{"co"}
	}
	w := sim.NewWorld(sim.Config{Seed: 11})
	sv := New(cfg)
	fc := &fakeCoord{ackAll: true}
	w.AddNode("co", fc)
	w.AddNode("sv", sv)
	w.Start("co")
	w.Start("sv")
	return w, sv, fc
}

func TestPullExecuteUpload(t *testing.T) {
	w, sv, fc := rig(t, Config{})
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(time.Minute)
	if len(fc.results) == 0 {
		t.Fatal("no result uploaded")
	}
	res := fc.results[0]
	if res.Task.Call.Seq != 1 || len(res.Output) != 8 || res.Err != "" {
		t.Fatalf("result = %+v", res)
	}
	st := sv.StatsNow()
	if st.Executed != 1 || st.Unacked != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegisteredServiceRuns(t *testing.T) {
	w, _, fc := rig(t, Config{
		Services: map[string]Service{
			"double": func(params []byte) ([]byte, error) {
				out := make([]byte, len(params))
				for i, b := range params {
					out[i] = b * 2
				}
				return out, nil
			},
		},
	})
	ta := task(1, 1)
	ta.Service = "double"
	ta.ExecTime = time.Second
	ta.Params = []byte{1, 2, 3}
	fc.grant = []proto.TaskAssignment{ta}
	w.RunFor(time.Minute)
	if len(fc.results) == 0 {
		t.Fatal("no result")
	}
	out := fc.results[0].Output
	if len(out) != 3 || out[0] != 2 || out[2] != 6 {
		t.Fatalf("service output = %v", out)
	}
}

func TestServiceErrorPropagates(t *testing.T) {
	w, _, fc := rig(t, Config{
		Services: map[string]Service{
			"boom": func([]byte) ([]byte, error) { return nil, errors.New("exploded") },
		},
	})
	ta := task(1, 1)
	ta.Service = "boom"
	ta.ExecTime = time.Second
	fc.grant = []proto.TaskAssignment{ta}
	w.RunFor(time.Minute)
	if len(fc.results) == 0 || fc.results[0].Err != "exploded" {
		t.Fatalf("error not propagated: %+v", fc.results)
	}
}

func TestUnknownServiceFails(t *testing.T) {
	w, _, fc := rig(t, Config{})
	ta := task(1, 1)
	ta.Service = "nope"
	ta.ExecTime = 0
	ta.ResultSize = 0
	fc.grant = []proto.TaskAssignment{ta}
	w.RunFor(time.Minute)
	if len(fc.results) == 0 || fc.results[0].Err == "" {
		t.Fatal("unknown service did not error")
	}
}

func TestResultRetriedUntilAcked(t *testing.T) {
	w, sv, fc := rig(t, Config{HeartbeatPeriod: 5 * time.Second})
	fc.ackAll = false
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(3 * time.Minute)
	if len(fc.results) < 2 {
		t.Fatalf("result sent %d times without ack, want retries", len(fc.results))
	}
	if sv.StatsNow().Unacked != 1 {
		t.Fatal("result not held as unacked")
	}
	// Ack arrives on the next (backed-off) retry: the log entry is
	// garbage collected. The retry cap is five minutes.
	fc.ackAll = true
	w.RunFor(6 * time.Minute)
	if sv.StatsNow().Unacked != 0 {
		t.Fatal("ack did not clear the unacked result")
	}
	if n := len(w.Disk("sv").Keys("server/result/")); n != 0 {
		t.Fatalf("result log not garbage collected: %d entries", n)
	}
}

func TestRestartRecoversUnackedResults(t *testing.T) {
	w, sv, fc := rig(t, Config{})
	fc.ackAll = false
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(time.Minute)
	if sv.StatsNow().Unacked != 1 {
		t.Fatal("setup: no unacked result")
	}
	before := len(fc.results)
	w.Restart("sv")
	fc.ackAll = true
	w.RunFor(time.Minute)
	if len(fc.results) <= before {
		t.Fatal("restarted server never re-offered its logged result")
	}
	if sv.StatsNow().Unacked != 0 {
		t.Fatal("re-offered result never acked")
	}
}

func TestSyncOnRestartReportsNothingRunning(t *testing.T) {
	w, _, fc := rig(t, Config{})
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(7 * time.Second) // task assigned, still executing
	w.Restart("sv")
	w.RunFor(time.Minute)
	if len(fc.syncs) < 2 {
		t.Fatalf("expected syncs on boot and restart, got %d", len(fc.syncs))
	}
	last := fc.syncs[len(fc.syncs)-1]
	if len(last.Running) != 0 {
		t.Fatalf("restarted server claims running tasks: %v", last.Running)
	}
}

func TestDedupSameCall(t *testing.T) {
	w, sv, fc := rig(t, Config{Parallelism: 2})
	fc.ackAll = false // keep the first result in the unacked log
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(time.Minute) // executed once, unacked
	// A new instance of the same call arrives (coordinator rescheduled
	// it after a wrong suspicion): the server must not recompute.
	fc.grant = []proto.TaskAssignment{task(1, 2)}
	w.RunFor(time.Minute)
	if sv.StatsNow().Executed != 1 {
		t.Fatalf("executed %d times, want 1 (dedup)", sv.StatsNow().Executed)
	}
	if sv.StatsNow().Dedup == 0 {
		t.Fatal("dedup not counted")
	}
}

func TestBacklogQueuesOverAssignment(t *testing.T) {
	w, sv, fc := rig(t, Config{Parallelism: 1})
	fc.grant = []proto.TaskAssignment{task(1, 1), task(2, 1), task(3, 1)}
	w.RunFor(8 * time.Second)
	st := sv.StatsNow()
	if st.Running != 1 {
		t.Fatalf("running = %d, want 1", st.Running)
	}
	// Eventually everything executes, one at a time.
	w.RunFor(2 * time.Minute)
	if sv.StatsNow().Executed != 3 {
		t.Fatalf("executed = %d, want 3", sv.StatsNow().Executed)
	}
}

func TestFailoverToSecondCoordinator(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 13})
	sv := New(Config{
		Coordinators:     []proto.NodeID{"co1", "co2"},
		SuspicionTimeout: 20 * time.Second,
	})
	c1 := &fakeCoord{ackAll: true, coords: []proto.NodeID{"co1", "co2"}}
	c2 := &fakeCoord{ackAll: true, coords: []proto.NodeID{"co1", "co2"}}
	w.AddNode("co1", c1)
	w.AddNode("co2", c2)
	w.AddNode("sv", sv)
	w.Start("co1")
	w.Start("co2")
	w.Start("sv")
	w.RunFor(10 * time.Second)
	if sv.Preferred() != "co1" {
		t.Fatalf("preferred = %s, want co1", sv.Preferred())
	}
	c1.silent = true
	w.RunFor(time.Minute)
	if sv.Preferred() != "co2" {
		t.Fatalf("preferred after silence = %s, want co2", sv.Preferred())
	}
	if sv.StatsNow().Failovers == 0 {
		t.Fatal("failover not counted")
	}
	// The sync with the new coordinator happened.
	if len(c2.syncs) == 0 {
		t.Fatal("no sync with the new coordinator")
	}
}

func TestCoordinatorListMerge(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 17})
	sv := New(Config{Coordinators: []proto.NodeID{"co1"}})
	c1 := &fakeCoord{ackAll: true, coords: []proto.NodeID{"co1", "co9"}}
	w.AddNode("co1", c1)
	w.AddNode("sv", sv)
	w.Start("co1")
	w.Start("sv")
	w.RunFor(time.Minute)
	found := false
	for _, id := range sv.Coordinators() {
		if id == "co9" {
			found = true
		}
	}
	if !found {
		t.Fatal("coordinator list merge did not propagate co9")
	}
}

// ---------------------------------------------------------------------
// Task cancellation (speculative-execution loser withdrawal)
// ---------------------------------------------------------------------

func TestCancelDiscardsRunningExecution(t *testing.T) {
	w, sv, fc := rig(t, Config{})
	fc.grant = []proto.TaskAssignment{task(1, 1)} // 10 s synthetic task
	w.RunFor(7 * time.Second)                     // assigned, mid-execution
	if sv.StatsNow().Running != 1 {
		t.Fatalf("running = %d, want 1", sv.StatsNow().Running)
	}
	w.Schedule(0, func() { sv.Receive("co", &proto.TaskCancel{Task: task(1, 1).Task}) })
	w.RunFor(time.Minute)
	st := sv.StatsNow()
	if st.Executed != 0 || st.Uploaded != 0 || len(fc.results) != 0 {
		t.Fatalf("cancelled execution still produced output: %+v", st)
	}
	if st.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1", st.Discarded)
	}
	// Idempotent: cancelling again (or for an unknown task) is a no-op.
	w.Schedule(0, func() {
		sv.Receive("co", &proto.TaskCancel{Task: task(1, 1).Task})
		sv.Receive("co", &proto.TaskCancel{Task: task(9, 1).Task})
	})
	w.RunFor(time.Second)
	if sv.StatsNow().Discarded != 1 {
		t.Fatalf("cancel not idempotent: discarded = %d", sv.StatsNow().Discarded)
	}
}

func TestCancelDropsBacklogEntry(t *testing.T) {
	w, sv, _ := rig(t, Config{Parallelism: 1})
	// Over-assign in one ack (two heartbeat replies racing would do the
	// same): the second task lands in the backlog.
	w.Schedule(0, func() {
		sv.Receive("co", &proto.HeartbeatAck{From: "co",
			Tasks: []proto.TaskAssignment{task(1, 1), task(2, 1)}})
	})
	w.RunFor(3 * time.Second) // 1 running, 1 backlogged
	if sv.StatsNow().Backlog != 1 {
		t.Fatalf("backlog = %d, want 1", sv.StatsNow().Backlog)
	}
	w.Schedule(0, func() { sv.Receive("co", &proto.TaskCancel{Task: task(2, 1).Task}) })
	w.RunFor(2 * time.Minute)
	st := sv.StatsNow()
	if st.Executed != 1 {
		t.Fatalf("executed = %d, want 1 (backlogged task cancelled)", st.Executed)
	}
	if st.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1", st.Discarded)
	}
}

func TestCancelGarbageCollectsUnackedResult(t *testing.T) {
	w, sv, fc := rig(t, Config{})
	fc.ackAll = false
	fc.grant = []proto.TaskAssignment{task(1, 1)}
	w.RunFor(time.Minute) // executed, result parked in the unacked log
	if sv.StatsNow().Unacked != 1 {
		t.Fatalf("unacked = %d, want 1", sv.StatsNow().Unacked)
	}
	w.Schedule(0, func() { sv.Receive("co", &proto.TaskCancel{Task: task(1, 1).Task}) })
	w.RunFor(time.Second)
	if sv.StatsNow().Unacked != 0 {
		t.Fatal("cancel did not drop the unacked result")
	}
	if w.Disk("sv").Len() != 0 {
		t.Fatal("cancel did not garbage-collect the result log entry")
	}
}

func TestSpeedFactorScalesExecution(t *testing.T) {
	w, sv, fc := rig(t, Config{SpeedFactor: 10})
	fc.grant = []proto.TaskAssignment{task(1, 1)} // 10 s nominal
	w.RunFor(30 * time.Second)
	if sv.StatsNow().Executed != 0 {
		t.Fatal("10x-slow server finished a 10s task within 30s")
	}
	w.RunFor(2 * time.Minute)
	if sv.StatsNow().Executed != 1 {
		t.Fatalf("executed = %d, want 1 after ~100s", sv.StatsNow().Executed)
	}
}
