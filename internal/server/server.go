// Package server implements the RPC-V third tier: the worker (called
// "server" in the paper, "worker" in XtremWeb).
//
// A server pulls work from its preferred coordinator with periodic
// heartbeats (connection-less: the server always initiates, the
// coordinator only replies), executes the corresponding service in a
// sandbox, builds an archive of the outputs, durably logs it (the
// server-side logging protocol is necessarily pessimistic: the result
// archive *is* the log), and uploads it until acknowledged. If the
// preferred coordinator goes silent, the server suspects it, selects
// another one from its merged coordinator list and runs the peer-wise
// log synchronization before resuming.
//
// Off-line computing falls out of this design: a disconnected server
// keeps executing; results accumulate in the local log and flow to a
// coordinator whenever connectivity returns.
package server

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcv/internal/detector"
	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/statesync"
)

// Service is a function executed in response to an RPC call. Params is
// the raw parameter payload; it returns the result payload or an error.
// Services must be stateless: RPC-V restricts the application scope to
// stateless services with at-least-once semantics, so a service may be
// executed more than once for the same call.
type Service func(params []byte) ([]byte, error)

// Config parameterizes a server.
type Config struct {
	// Coordinators is the initial coordinator list.
	Coordinators []proto.NodeID

	// HeartbeatPeriod is the work-pull/heartbeat period. Default
	// detector.DefaultPeriod (5 s).
	HeartbeatPeriod time.Duration

	// SuspicionTimeout is the silence duration after which the
	// preferred coordinator is suspected. Default detector.DefaultTimeout.
	SuspicionTimeout time.Duration

	// Parallelism is the number of tasks executed concurrently.
	// Default 1 (a desktop machine donating its idle CPU).
	Parallelism int

	// SpeedFactor scales the virtual execution time of timed tasks,
	// modelling heterogeneous machine speeds in the desktop-grid
	// population (2 = half speed, 10 = the straggler of the scheduling
	// experiments). Default 1; values <= 0 mean 1.
	SpeedFactor float64

	// Services maps service names to implementations. Tasks with a
	// positive ExecTime hint are synthetic: the server charges the
	// virtual execution time, then produces ResultSize bytes (or calls
	// the named service if registered).
	Services map[string]Service

	// OnTaskDone, when non-nil, is invoked when a task's execution
	// completes locally (before upload) — an experiment hook.
	OnTaskDone func(task proto.TaskID, at time.Time)

	// Codec selects the encoding of the durable result log (the
	// server-side pessimistic log). The zero value is the binary
	// codec; recovery auto-detects, so logs written under either codec
	// replay under either.
	Codec proto.Codec

	// Obs, when non-nil, receives the server's live metrics (labeled
	// node="<self>") and span events: exec when a task's service body
	// finishes, logged-durable when its result hits the durable log.
	// Nil costs nothing.
	Obs *obs.Observer
}

func (c *Config) applyDefaults() {
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = detector.DefaultPeriod
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = detector.DefaultTimeout
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.SpeedFactor <= 0 {
		c.SpeedFactor = 1
	}
}

// Server is the worker node handler. Its fields are loop-private:
// every access must come from handler code or be marshalled through
// rt.Do/DoAsync.
//
//rpcv:loop-owned
type Server struct {
	cfg Config
	env node.Env

	coords    []proto.NodeID
	preferred proto.NodeID
	monitor   *detector.Monitor
	beater    *detector.Beater

	running map[proto.TaskID]bool
	// started records when each running task began executing, so the
	// uploaded result can report the measured execution duration.
	started map[proto.TaskID]time.Time
	// timers holds each timed execution's timer so a TaskCancel can
	// abort it and free the slot immediately instead of letting the
	// doomed execution occupy capacity to completion.
	timers map[proto.TaskID]node.Timer
	// backlog queues assignments received while at capacity (e.g. two
	// heartbeat replies in flight both granted work); they run as
	// capacity frees. Backlogged tasks count as alive for the sync
	// protocol but are lost on crash like running ones.
	backlog []proto.TaskAssignment
	// unacked holds completed results awaiting a TaskResultAck, keyed
	// by disk key; it mirrors the durable result log.
	unacked map[proto.TaskID]*proto.TaskResult
	// nextRetry throttles re-uploads of unacked results with
	// exponential backoff: a large archive still crossing the network
	// must not be re-sent on every heartbeat, or the transfers compound
	// faster than the coordinator can drain them.
	nextRetry map[proto.TaskID]time.Time
	attempts  map[proto.TaskID]int

	needSync  bool // run ServerSync before asking for work again
	beatCount int  // beats since the last periodic synchronization

	stopped bool

	executed  int
	uploaded  int
	dedup     int // assignments skipped because already running/done
	discarded int // cancelled instances whose execution was thrown away
	failovers int

	// sm mirrors the counters above into Config.Obs (nil-safe no-ops
	// when observability is off).
	sm serverMetrics
}

// serverMetrics holds the server's obs instruments.
type serverMetrics struct {
	executed, uploaded, dedup, discarded, failovers *obs.Counter
	running, backlog, unacked                       *obs.Gauge
	execTime                                        *obs.Histogram
}

// New creates a server handler.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	return &Server{cfg: cfg}
}

var _ node.Handler = (*Server)(nil)

// Start implements node.Handler. On restart, completed-but-unacked
// results are recovered from the durable result log and re-offered to
// the coordinator through synchronization; tasks that were mid-
// execution are simply lost (the coordinator will re-schedule them on
// suspicion — at-least-once semantics).
//
//rpcv:loop-only
func (s *Server) Start(env node.Env) {
	s.env = env
	s.stopped = false
	s.running = make(map[proto.TaskID]bool)
	s.started = make(map[proto.TaskID]time.Time)
	s.timers = make(map[proto.TaskID]node.Timer)
	s.backlog = nil
	s.unacked = make(map[proto.TaskID]*proto.TaskResult)
	s.nextRetry = make(map[proto.TaskID]time.Time)
	s.attempts = make(map[proto.TaskID]int)
	s.coords = statesync.MergeNodeLists(s.cfg.Coordinators)
	s.preferred = ""
	s.needSync = false

	reg := s.cfg.Obs.Registry()
	nl := obs.L("node", string(env.Self()))
	s.sm = serverMetrics{
		executed:  reg.Counter("rpcv_server_executed_total", nl),
		uploaded:  reg.Counter("rpcv_server_uploaded_total", nl),
		dedup:     reg.Counter("rpcv_server_dedup_total", nl),
		discarded: reg.Counter("rpcv_server_discarded_total", nl),
		failovers: reg.Counter("rpcv_server_failovers_total", nl),
		running:   reg.Gauge("rpcv_server_running", nl),
		backlog:   reg.Gauge("rpcv_server_backlog", nl),
		unacked:   reg.Gauge("rpcv_server_unacked", nl),
		execTime:  reg.Histogram("rpcv_server_exec_ns", nl),
	}

	s.loadResultLog()
	// Every incarnation synchronizes with its coordinator before asking
	// for work: the peer-wise log comparison re-offers unacked results
	// and tells the coordinator which assignments died with the
	// previous incarnation (intermittent crash), so they can be
	// re-scheduled without waiting for a suspicion timeout.
	s.needSync = true

	s.monitor = detector.NewMonitor(env, detector.MonitorConfig{
		Timeout:   s.cfg.SuspicionTimeout,
		OnSuspect: s.onCoordinatorSuspected,
	})
	s.pickPreferred()
	s.beater = detector.NewBeater(env, s.cfg.HeartbeatPeriod, s.beat)
	s.noteLoad()
}

// Coordinators returns a snapshot of the server's merged coordinator
// list. As a Server method it runs under the loop-owned discipline:
// call it from handler code, from rt.Do, or while the node is
// quiescent (tests between sim steps).
func (s *Server) Coordinators() []proto.NodeID {
	return append([]proto.NodeID(nil), s.coords...)
}

// trace stamps one span for call on this server's ring (no-op without
// observability).
func (s *Server) trace(call proto.CallID, stage obs.Stage, detail string) {
	if t := s.cfg.Obs.Tracer(); t != nil {
		t.EventAt(s.env.Now(), call, stage, detail)
	}
}

// noteLoad refreshes the load gauges after task bookkeeping changes.
func (s *Server) noteLoad() {
	s.sm.running.SetInt(len(s.running))
	s.sm.backlog.SetInt(len(s.backlog))
	s.sm.unacked.SetInt(len(s.unacked))
}

// Stop implements node.Handler.
//
//rpcv:loop-only
func (s *Server) Stop() {
	s.stopped = true
	if s.monitor != nil {
		s.monitor.Close()
	}
	if s.beater != nil {
		s.beater.Close()
	}
}

func (s *Server) loadResultLog() {
	var dec proto.Decoder // one decoder: recovery interns repeated IDs
	for _, key := range s.env.Disk().Keys("server/result/") {
		raw, ok := s.env.Disk().Read(key)
		if !ok {
			continue
		}
		msg, err := dec.DecodeMessage(raw)
		if err != nil {
			s.env.Logf("server: corrupt result log %s: %v", key, err)
			continue
		}
		if res, ok := msg.(*proto.TaskResult); ok {
			s.unacked[res.Task] = res
		}
	}
}

func (s *Server) resultKey(t proto.TaskID) string {
	return "server/result/" + strings.ReplaceAll(t.String(), "/", "_")
}

// pickPreferred chooses a preferred coordinator among the non-suspected
// ones, deterministically from the merged list.
func (s *Server) pickPreferred() {
	for _, id := range s.coords {
		if !s.monitor.Suspected(id) {
			if s.preferred != id {
				s.preferred = id
				s.monitor.Watch(id)
				s.needSync = true
			}
			return
		}
	}
	// Everyone suspected: keep trying the first (wrong suspicions are
	// normal; the progress condition needs us to keep knocking).
	if len(s.coords) > 0 {
		s.preferred = s.coords[0]
		s.needSync = true
	}
}

func (s *Server) onCoordinatorSuspected(id proto.NodeID) {
	if id != s.preferred {
		return
	}
	s.env.Logf("server: suspect coordinator %s, failing over", id)
	s.failovers++
	s.sm.failovers.Inc()
	s.pickPreferred()
}

// ---------------------------------------------------------------------
// Heartbeat / work pull
// ---------------------------------------------------------------------

// syncEveryBeats forces a periodic peer-wise synchronization even on a
// healthy server (roughly once a minute at the default 5 s period):
// the coordinator compares its "ongoing" view against the server's
// actual state, recovering assignments lost on the best-effort network
// that no crash or suspicion would ever surface.
const syncEveryBeats = 12

func (s *Server) beat() {
	if s.preferred == "" {
		s.pickPreferred()
		if s.preferred == "" {
			return
		}
	}
	s.beatCount++
	if s.needSync || s.beatCount%syncEveryBeats == 0 {
		s.sendSync()
		return
	}
	capacity := s.cfg.Parallelism - len(s.running) - len(s.backlog)
	hb := &proto.Heartbeat{
		From:     s.env.Self(),
		Role:     proto.RoleServer,
		Capacity: capacity,
		WantWork: capacity > 0,
	}
	s.env.Send(s.preferred, hb)
	s.retryUploads()
}

func (s *Server) sendSync() {
	tasks := sortedTaskIDs(s.unacked)
	running := make([]proto.TaskID, 0, len(s.running)+len(s.backlog))
	for t := range s.running {
		running = append(running, t)
	}
	sortTaskIDs(running)
	for i := range s.backlog {
		running = append(running, s.backlog[i].Task)
	}
	s.env.Send(s.preferred, &proto.ServerSync{From: s.env.Self(), Tasks: tasks, Running: running})
}

// retryBase is the first re-upload delay; it doubles per attempt up to
// retryCap (the result stays durably logged throughout).
const (
	retryBase = 10 * time.Second
	retryCap  = 5 * time.Minute
)

func (s *Server) retryUploads() {
	now := s.env.Now()
	for _, t := range sortedTaskIDs(s.unacked) {
		if now.Before(s.nextRetry[t]) {
			continue
		}
		s.env.Send(s.preferred, s.unacked[t])
		s.bumpRetry(t, now)
	}
}

func (s *Server) bumpRetry(t proto.TaskID, now time.Time) {
	d := retryBase << s.attempts[t]
	if d > retryCap {
		d = retryCap
	} else {
		s.attempts[t]++
	}
	s.nextRetry[t] = now.Add(d)
}

// sortedTaskIDs returns the map's keys in a stable order: protocol
// actions must not depend on Go's randomized map iteration, or runs
// stop being reproducible.
func sortedTaskIDs[V any](m map[proto.TaskID]V) []proto.TaskID {
	out := make([]proto.TaskID, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sortTaskIDs(out)
	return out
}

func sortTaskIDs(ts []proto.TaskID) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Call != ts[j].Call {
			return ts[i].Call.Less(ts[j].Call)
		}
		return ts[i].Instance < ts[j].Instance
	})
}

// Receive implements node.Handler.
//
//rpcv:loop-only
func (s *Server) Receive(from proto.NodeID, msg proto.Message) {
	if s.stopped {
		return
	}
	switch m := msg.(type) {
	case *proto.HeartbeatAck:
		s.handleHeartbeatAck(from, m)
	case *proto.TaskResultAck:
		s.handleResultAck(from, m)
	case *proto.TaskCancel:
		s.handleCancel(from, m)
	case *proto.ServerSyncReply:
		s.handleSyncReply(from, m)
	default:
		s.env.Logf("server: unexpected %s from %s", msg.Kind(), from)
	}
}

func (s *Server) handleHeartbeatAck(from proto.NodeID, m *proto.HeartbeatAck) {
	s.monitor.Observe(from)
	if len(m.Coordinators) > 0 {
		s.coords = statesync.MergeNodeLists(s.coords, m.Coordinators)
	}
	for i := range m.Tasks {
		s.startTask(&m.Tasks[i])
	}
}

func (s *Server) handleResultAck(from proto.NodeID, m *proto.TaskResultAck) {
	s.monitor.Observe(from)
	if _, ok := s.unacked[m.Task]; !ok {
		return
	}
	delete(s.unacked, m.Task)
	delete(s.nextRetry, m.Task)
	delete(s.attempts, m.Task)
	s.noteLoad()
	// The coordinator holds the result durably: garbage-collect the
	// local log entry (distributed GC of message logs).
	s.dropResultLog(m.Task)
}

// dropResultLog garbage-collects one durable result entry. A failed
// delete is survivable — the entry is re-offered and re-acked after
// the next restart — but it means the log is not shrinking, so say so.
func (s *Server) dropResultLog(t proto.TaskID) {
	if err := s.env.Disk().Delete(s.resultKey(t)); err != nil {
		s.env.Logf("server: gc result log %s: %v", t, err)
	}
}

// handleCancel withdraws one task instance: the coordinator stored
// another instance's result (a lost speculative race). Cancellation is
// idempotent at every stage — a backlogged instance is dropped, a
// running one is aborted and its slot freed immediately, a completed-
// but-unacked one has its log entry garbage-collected, and an unknown
// one is ignored.
func (s *Server) handleCancel(from proto.NodeID, m *proto.TaskCancel) {
	s.monitor.Observe(from)
	for i := range s.backlog {
		if s.backlog[i].Task == m.Task {
			s.backlog = append(s.backlog[:i], s.backlog[i+1:]...)
			s.discarded++
			s.sm.discarded.Inc()
			s.noteLoad()
			return
		}
	}
	if s.running[m.Task] {
		// Abort the execution: stop its timer (the completion never
		// fires) and pull fresh work into the reclaimed slot.
		if tm := s.timers[m.Task]; tm != nil {
			tm.Stop()
		}
		delete(s.timers, m.Task)
		delete(s.running, m.Task)
		delete(s.started, m.Task)
		s.discarded++
		s.sm.discarded.Inc()
		s.noteLoad()
		s.pullMoreWork()
		return
	}
	if _, ok := s.unacked[m.Task]; ok {
		// The coordinator holds another result durably; this copy will
		// never be acked, so drop it like a TaskResultAck would.
		delete(s.unacked, m.Task)
		delete(s.nextRetry, m.Task)
		delete(s.attempts, m.Task)
		s.dropResultLog(m.Task)
		s.discarded++
		s.sm.discarded.Inc()
		s.noteLoad()
	}
}

func (s *Server) handleSyncReply(from proto.NodeID, m *proto.ServerSyncReply) {
	s.monitor.Observe(from)
	s.needSync = false
	for _, t := range m.Drop {
		delete(s.unacked, t)
		delete(s.nextRetry, t)
		delete(s.attempts, t)
		s.dropResultLog(t)
	}
	for _, t := range m.Resend {
		if res, ok := s.unacked[t]; ok {
			s.env.Send(s.preferred, res)
			s.bumpRetry(t, s.env.Now())
		}
	}
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

func (s *Server) startTask(t *proto.TaskAssignment) {
	if s.running[t.Task] {
		s.dedup++
		s.sm.dedup.Inc()
		return
	}
	if res, done := s.haveResultFor(t.Task.Call); done {
		// Already executed (another instance): resend, don't recompute.
		s.dedup++
		s.sm.dedup.Inc()
		s.env.Send(s.preferred, res)
		return
	}
	if s.runningCall(t.Task.Call) {
		// Another instance of the same call is already executing here
		// (a spurious reschedule); its result will serve both.
		s.dedup++
		s.sm.dedup.Inc()
		return
	}
	if len(s.running) >= s.cfg.Parallelism {
		// Over-assignment (two heartbeat replies in flight both granted
		// work): queue locally and run when capacity frees.
		s.backlog = append(s.backlog, *t)
		s.noteLoad()
		return
	}
	s.running[t.Task] = true
	s.started[t.Task] = s.env.Now()
	s.noteLoad()
	ta := *t // copy: the execution closure must not alias the ack buffer
	if ta.ExecTime > 0 {
		// Synthetic or timed service: charge virtual execution time,
		// scaled by this machine's speed. The timer is retained so a
		// TaskCancel can abort the execution mid-flight.
		d := time.Duration(float64(ta.ExecTime) * s.cfg.SpeedFactor)
		s.timers[t.Task] = s.env.After(d, func() { s.completeTask(&ta) })
		return
	}
	s.completeTask(&ta)
}

// runningCall reports whether any running or backlogged task executes
// the given call.
func (s *Server) runningCall(call proto.CallID) bool {
	for t := range s.running {
		if t.Call == call {
			return true
		}
	}
	for i := range s.backlog {
		if s.backlog[i].Task.Call == call {
			return true
		}
	}
	return false
}

func (s *Server) haveResultFor(call proto.CallID) (*proto.TaskResult, bool) {
	for t, res := range s.unacked {
		if t.Call == call {
			return res, true
		}
	}
	return nil, false
}

// completeTask runs the service body and durably logs then uploads the
// result. The log write precedes the upload (pessimistic logging).
func (s *Server) completeTask(t *proto.TaskAssignment) {
	if s.stopped {
		return
	}
	delete(s.running, t.Task)
	delete(s.timers, t.Task)
	output, errStr := s.execute(t)
	// Measure execution only after the service body ran: real
	// services execute synchronously right here, while timed tasks
	// already charged their virtual duration through the timer.
	var exec time.Duration
	if at, ok := s.started[t.Task]; ok {
		exec = s.env.Now().Sub(at)
		delete(s.started, t.Task)
	}
	s.executed++
	s.sm.executed.Inc()
	s.sm.execTime.ObserveDuration(exec)
	s.trace(t.Task.Call, obs.StageExec, exec.String())
	if s.cfg.OnTaskDone != nil {
		s.cfg.OnTaskDone(t.Task, s.env.Now())
	}
	res := &proto.TaskResult{From: s.env.Self(), Task: t.Task, Output: output, Err: errStr, Exec: exec}
	if err := s.env.Disk().Write(s.resultKey(t.Task), s.cfg.Codec.EncodeMessage(res)); err != nil {
		s.env.Logf("server: log result %s: %v", t.Task, err)
	} else {
		s.trace(t.Task.Call, obs.StageDurable, "result log")
	}
	s.unacked[t.Task] = res
	s.env.Send(s.preferred, res)
	s.bumpRetry(t.Task, s.env.Now())
	s.uploaded++
	s.sm.uploaded.Inc()
	s.noteLoad()
	s.pullMoreWork()
}

// pullMoreWork starts backlogged work first; otherwise it pulls the
// next task immediately instead of idling until the next periodic
// heartbeat (XtremWeb workers issue a work request right after a
// result).
func (s *Server) pullMoreWork() {
	for len(s.backlog) > 0 && len(s.running) < s.cfg.Parallelism {
		next := s.backlog[0]
		s.backlog = s.backlog[1:]
		s.startTask(&next)
	}
	if !s.needSync && len(s.running)+len(s.backlog) < s.cfg.Parallelism {
		s.env.Send(s.preferred, &proto.Heartbeat{
			From:     s.env.Self(),
			Role:     proto.RoleServer,
			Capacity: s.cfg.Parallelism - len(s.running) - len(s.backlog),
			WantWork: true,
		})
	}
}

func (s *Server) execute(t *proto.TaskAssignment) (output []byte, errStr string) {
	if svc, ok := s.cfg.Services[t.Service]; ok {
		out, err := svc(t.Params)
		if err != nil {
			return nil, err.Error()
		}
		return out, ""
	}
	if t.ExecTime > 0 || t.ResultSize > 0 {
		// Synthetic benchmark service: produce the configured payload.
		return makePayload(t.Task, t.ResultSize), ""
	}
	return nil, fmt.Sprintf("server: unknown service %q", t.Service)
}

// makePayload builds a deterministic pseudo-payload of the given size.
func makePayload(t proto.TaskID, size int) []byte {
	if size <= 0 {
		return []byte(t.String())
	}
	out := make([]byte, size)
	seed := t.String()
	for i := range out {
		out[i] = seed[i%len(seed)] ^ byte(i)
	}
	return out
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

// Stats is a snapshot of server counters.
type Stats struct {
	Executed  int
	Uploaded  int
	Unacked   int
	Running   int
	Backlog   int
	Dedup     int
	Discarded int
	Failovers int
	Preferred proto.NodeID
}

// StatsNow returns current counters. Event-loop only.
func (s *Server) StatsNow() Stats {
	return Stats{
		Executed:  s.executed,
		Uploaded:  s.uploaded,
		Unacked:   len(s.unacked),
		Running:   len(s.running),
		Backlog:   len(s.backlog),
		Dedup:     s.dedup,
		Discarded: s.discarded,
		Failovers: s.failovers,
		Preferred: s.preferred,
	}
}

// Preferred returns the current preferred coordinator (tests).
func (s *Server) Preferred() proto.NodeID { return s.preferred }
