// Package node defines the runtime abstraction that RPC-V protocol state
// machines are written against. The same client, coordinator and server
// logic runs unchanged on two environments:
//
//   - the deterministic discrete-event simulator (internal/sim), used by
//     every experiment and most tests, where time is virtual; and
//   - the real-time TCP runtime (internal/rt), used by the cmd/ daemons
//     and the quickstart example, where time is the wall clock.
//
// The abstraction deliberately mirrors the paper's communication model:
// interactions are connection-less and asymmetric (Send is fire and
// forget; replies are just messages in the other direction), there is no
// reliable delivery, and there are no connection-break fault signals —
// failure information only ever comes from heartbeat timeouts.
package node

import (
	"math/rand"
	"time"

	"rpcv/internal/proto"
)

// Timer cancels a pending timer when invoked. Cancelling an already
// fired or cancelled timer is a no-op.
type Timer interface {
	Stop()
}

// Env is the execution environment handed to a protocol state machine.
//
// All methods are called from the single goroutine (or event loop) that
// owns the node, so handlers never need locking for their own state.
type Env interface {
	// Self returns the node's stable identifier.
	Self() proto.NodeID

	// Now returns the current (virtual or wall-clock) time.
	Now() time.Time

	// After schedules fn to run on the node's event loop after d.
	// The returned Timer can cancel it.
	After(d time.Duration, fn func()) Timer

	// Send transmits msg to the named node, connection-less and
	// unreliably: it never blocks, never fails synchronously, and the
	// message may be lost, delayed arbitrarily, or arrive after the
	// destination crashed.
	Send(to proto.NodeID, msg proto.Message)

	// Disk returns the node's stable store. Its contents survive
	// crashes and restarts of the node (but writes may be delayed or
	// lost depending on the logging strategy layered above).
	Disk() Disk

	// Rand returns the node's deterministic random source.
	Rand() *rand.Rand

	// Logf records a debug/trace line attributed to the node.
	Logf(format string, args ...any)
}

// Disk models the node-local stable storage used for sender-based
// message logging and result archives. Write is durable when it
// returns: higher layers (internal/msglog) model optimistic logging by
// delaying the Write call itself.
//
// Keys are flat strings; the simulator charges a latency per operation
// proportional to the data size, the real runtime maps the store to a
// pluggable durable-store engine (internal/store).
type Disk interface {
	// Write durably stores value under key, replacing any previous value.
	Write(key string, value []byte) error
	// Read returns the stored value, or ok=false if absent.
	Read(key string) (value []byte, ok bool)
	// Delete durably removes key; deleting an absent key is a no-op.
	Delete(key string) error
	// Keys returns all stored keys with the given prefix, sorted.
	Keys(prefix string) []string
}

// BatchDisk is optionally implemented by stores that amortize
// durability across concurrent operations — a write-ahead log with
// group commit, where one fsync covers every write staged while the
// previous commit was in flight.
//
// Consumers discover it by type assertion on Env.Disk(). When absent,
// they fall back to synchronous Write calls (per-operation durability,
// the paper's literal per-entry disk access).
type BatchDisk interface {
	Disk

	// WriteAsync stages the write and returns immediately; a Read
	// issued after WriteAsync returns observes the value. done is
	// invoked exactly once, on the node's event loop, when the entry
	// is durable (err == nil) or permanently failed. Ordering between
	// distinct staged writes is preserved.
	WriteAsync(key string, value []byte, done func(err error))

	// Sync blocks until every write staged so far is durable.
	Sync() error
}

// PartitionedHandler is optionally implemented by handlers that can
// split themselves across M per-core event loops (rt.Config.Loops).
// Partition is called once, before Start, with the loop count; it
// returns exactly n handlers, one per loop, where index 0 is the
// receiver itself. Each partition then lives its whole life — Start,
// every Receive, Stop — on its own loop, so the per-loop handlers keep
// the no-locking discipline of the single-loop contract. The runtime
// routes messages so that all traffic for one (user, session) pair
// reaches the same partition (shard.LoopMap placement); node-scoped
// traffic such as server heartbeats is broadcast to every partition.
//
// Handlers that do not implement PartitionedHandler are clamped to a
// single loop regardless of the configured loop count.
type PartitionedHandler interface {
	Handler

	// Partition returns the n per-loop handlers. out[0] must be the
	// receiver. It is called exactly once, before any Start.
	Partition(n int) []Handler
}

// LoopInfo is implemented by Envs of multi-loop runtimes. Handlers
// discover their placement by type assertion — index is the loop the
// handler is pinned to, total the loop count. Single-loop environments
// may omit the interface entirely; absence means (0, 1).
type LoopInfo interface {
	Loop() (index, total int)
}

// Handler is the protocol state machine interface implemented by the
// client, coordinator and server nodes.
type Handler interface {
	// Start initializes the node. It is called once per incarnation:
	// on first boot and again after every restart, with a fresh Env
	// whose Disk retains the previous incarnation's durable writes.
	Start(env Env)

	// Receive delivers one message. from identifies the sender as
	// claimed by the transport; the protocol never trusts it for more
	// than addressing replies.
	Receive(from proto.NodeID, msg proto.Message)

	// Stop tells the node its incarnation is ending (crash or clean
	// shutdown). Handlers must not touch env afterwards; pending
	// timers are cancelled by the runtime.
	Stop()
}
