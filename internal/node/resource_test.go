package node

import (
	"testing"
	"testing/quick"
	"time"
)

var base = time.Unix(1_000_000_000, 0).UTC()

func TestSerialResourceQueues(t *testing.T) {
	var r SerialResource
	// Three simultaneous 10ms operations complete at 10, 20, 30ms.
	for i := 1; i <= 3; i++ {
		got := r.Acquire(base, 10*time.Millisecond)
		want := time.Duration(i) * 10 * time.Millisecond
		if got != want {
			t.Fatalf("op %d delay = %v, want %v", i, got, want)
		}
	}
}

func TestSerialResourceIdleGap(t *testing.T) {
	var r SerialResource
	r.Acquire(base, 10*time.Millisecond)
	// A request arriving after the resource is free pays only its own cost.
	later := base.Add(time.Second)
	if got := r.Acquire(later, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("idle acquire delay = %v, want 5ms", got)
	}
}

func TestSerialResourceBusy(t *testing.T) {
	var r SerialResource
	if r.Busy(base) {
		t.Fatal("fresh resource busy")
	}
	r.Acquire(base, 10*time.Millisecond)
	if !r.Busy(base.Add(5 * time.Millisecond)) {
		t.Fatal("not busy mid-operation")
	}
	if r.Busy(base.Add(15 * time.Millisecond)) {
		t.Fatal("busy after completion")
	}
	if got := r.FreeAt(); got != base.Add(10*time.Millisecond) {
		t.Fatalf("FreeAt = %v", got)
	}
}

func TestBatchResourceAmortizesFloor(t *testing.T) {
	// floor 10ms, stream 1ms per op: a solo op costs 11ms; everyone
	// arriving during that commit joins ONE next batch sharing a
	// single floor.
	r := BatchResource{Floor: 10 * time.Millisecond}
	cost := 11 * time.Millisecond
	if got := r.Acquire(base, cost); got != cost {
		t.Fatalf("solo op delay = %v, want %v", got, cost)
	}
	want := []time.Duration{
		22 * time.Millisecond, // 11 (commit) + 10 (shared floor) + 1
		23 * time.Millisecond, // + 1 stream only
		24 * time.Millisecond, // + 1 stream only
	}
	for i, w := range want {
		if got := r.Acquire(base, cost); got != w {
			t.Fatalf("joiner %d delay = %v, want %v", i, got, w)
		}
	}
	// Serial would have been 44ms for the same four ops.
	var s SerialResource
	var serial time.Duration
	for i := 0; i < 4; i++ {
		serial = s.Acquire(base, cost)
	}
	if last := 24 * time.Millisecond; serial <= last {
		t.Fatalf("serial %v not worse than batched %v — model broken", serial, last)
	}
}

func TestBatchResourceIdleGap(t *testing.T) {
	r := BatchResource{Floor: 10 * time.Millisecond}
	r.Acquire(base, 11*time.Millisecond)
	// After everything drains, a new op is a solo commit again.
	later := base.Add(time.Second)
	if got := r.Acquire(later, 11*time.Millisecond); got != 11*time.Millisecond {
		t.Fatalf("idle acquire delay = %v, want 11ms", got)
	}
	if r.Busy(later) != true {
		t.Fatal("not busy mid-commit")
	}
	if r.Busy(later.Add(time.Second)) {
		t.Fatal("busy after drain")
	}
}

func TestBatchResourceRollsBatches(t *testing.T) {
	// An op arriving after the first commit ended but while the second
	// batch is committing joins a THIRD batch.
	r := BatchResource{Floor: 10 * time.Millisecond}
	r.Acquire(base, 11*time.Millisecond)          // commit 1: ends 11ms
	first := r.Acquire(base, 11*time.Millisecond) // batch 2: ends 22ms
	mid := base.Add(15 * time.Millisecond)        // commit 1 done, batch 2 in flight
	got := r.Acquire(mid, 11*time.Millisecond)    // batch 3: 22 + 10 + 1 = 33ms
	if want := 33*time.Millisecond - 15*time.Millisecond; got != want {
		t.Fatalf("third-batch delay = %v, want %v (first joiner ended at %v)", got, want, first)
	}
}

func TestSerialResourceConservation(t *testing.T) {
	// Property: for any sequence of same-time acquisitions, total busy
	// time equals the sum of costs (no work lost, none invented), and
	// each delay is at least the operation's own cost.
	f := func(costsMs []uint8) bool {
		if len(costsMs) == 0 {
			return true // a fresh resource has no meaningful FreeAt
		}
		var r SerialResource
		var sum time.Duration
		for _, c := range costsMs {
			cost := time.Duration(c) * time.Millisecond
			sum += cost
			d := r.Acquire(base, cost)
			if d < cost {
				return false
			}
		}
		return r.FreeAt().Sub(base) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
