package node

import (
	"testing"
	"testing/quick"
	"time"
)

var base = time.Unix(1_000_000_000, 0).UTC()

func TestSerialResourceQueues(t *testing.T) {
	var r SerialResource
	// Three simultaneous 10ms operations complete at 10, 20, 30ms.
	for i := 1; i <= 3; i++ {
		got := r.Acquire(base, 10*time.Millisecond)
		want := time.Duration(i) * 10 * time.Millisecond
		if got != want {
			t.Fatalf("op %d delay = %v, want %v", i, got, want)
		}
	}
}

func TestSerialResourceIdleGap(t *testing.T) {
	var r SerialResource
	r.Acquire(base, 10*time.Millisecond)
	// A request arriving after the resource is free pays only its own cost.
	later := base.Add(time.Second)
	if got := r.Acquire(later, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("idle acquire delay = %v, want 5ms", got)
	}
}

func TestSerialResourceBusy(t *testing.T) {
	var r SerialResource
	if r.Busy(base) {
		t.Fatal("fresh resource busy")
	}
	r.Acquire(base, 10*time.Millisecond)
	if !r.Busy(base.Add(5 * time.Millisecond)) {
		t.Fatal("not busy mid-operation")
	}
	if r.Busy(base.Add(15 * time.Millisecond)) {
		t.Fatal("busy after completion")
	}
	if got := r.FreeAt(); got != base.Add(10*time.Millisecond) {
		t.Fatalf("FreeAt = %v", got)
	}
}

func TestSerialResourceConservation(t *testing.T) {
	// Property: for any sequence of same-time acquisitions, total busy
	// time equals the sum of costs (no work lost, none invented), and
	// each delay is at least the operation's own cost.
	f := func(costsMs []uint8) bool {
		if len(costsMs) == 0 {
			return true // a fresh resource has no meaningful FreeAt
		}
		var r SerialResource
		var sum time.Duration
		for _, c := range costsMs {
			cost := time.Duration(c) * time.Millisecond
			sum += cost
			d := r.Acquire(base, cost)
			if d < cost {
				return false
			}
		}
		return r.FreeAt().Sub(base) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
