package node

import "time"

// SerialResource models a resource that serves one operation at a time
// — a disk arm, a database engine. Concurrent requests queue: each
// acquisition starts when the previous one finishes.
//
// It is the piece that makes N simultaneous log writes cost N times one
// write on the virtual clock instead of completing in parallel, which
// is essential to the shape of the paper's figure 4 (submission time
// grows with the number of calls) and figure 5 (replication bounded by
// per-task database operations).
type SerialResource struct {
	free time.Time
}

// Acquire reserves the resource at time now for cost and returns the
// delay until this operation completes (queueing included).
func (r *SerialResource) Acquire(now time.Time, cost time.Duration) time.Duration {
	start := now
	if r.free.After(start) {
		start = r.free
	}
	r.free = start.Add(cost)
	return r.free.Sub(now)
}

// Busy reports whether the resource is occupied at time now.
func (r *SerialResource) Busy(now time.Time) bool { return r.free.After(now) }

// FreeAt returns when the resource becomes idle.
func (r *SerialResource) FreeAt() time.Time { return r.free }
