package node

import "time"

// SerialResource models a resource that serves one operation at a time
// — a disk arm, a database engine. Concurrent requests queue: each
// acquisition starts when the previous one finishes.
//
// It is the piece that makes N simultaneous log writes cost N times one
// write on the virtual clock instead of completing in parallel, which
// is essential to the shape of the paper's figure 4 (submission time
// grows with the number of calls) and figure 5 (replication bounded by
// per-task database operations).
type SerialResource struct {
	free time.Time
}

// Acquire reserves the resource at time now for cost and returns the
// delay until this operation completes (queueing included).
func (r *SerialResource) Acquire(now time.Time, cost time.Duration) time.Duration {
	start := now
	if r.free.After(start) {
		start = r.free
	}
	r.free = start.Add(cost)
	return r.free.Sub(now)
}

// Busy reports whether the resource is occupied at time now.
func (r *SerialResource) Busy(now time.Time) bool { return r.free.After(now) }

// FreeAt returns when the resource becomes idle.
func (r *SerialResource) FreeAt() time.Time { return r.free }

// BatchResource models a group-commit device — a write-ahead log whose
// committer batches every operation staged while the previous commit
// was in flight into one write+fsync. An idle device serves a lone
// operation at full cost (access floor + streaming), but operations
// arriving during a commit join the next batch and share a single
// floor, paying only their streaming part on top.
//
// It is the simulator-side model of internal/store's wal engine, so
// experiments comparing per-operation and batched durability keep the
// same shape on the virtual clock as on real hardware.
type BatchResource struct {
	// Floor is the fixed cost of one commit (seek/rotation + fsync),
	// paid once per batch regardless of how many operations it holds.
	Floor time.Duration

	commitEnd time.Time // completion of the commit currently in flight
	nextEnd   time.Time // completion of the batch currently forming
}

// Acquire reserves the device at time now for an operation whose
// standalone cost is cost (floor + streaming, as a DiskModel computes
// it) and returns the delay until the operation is durable. Operations
// overlapping an in-flight commit are charged only their streaming
// share of the following batch.
func (r *BatchResource) Acquire(now time.Time, cost time.Duration) time.Duration {
	stream := cost - r.Floor
	if stream < 0 {
		stream = 0
	}
	if !now.Before(r.nextEnd) {
		// Device idle: a solo commit at full standalone cost.
		r.commitEnd = now.Add(cost)
		r.nextEnd = r.commitEnd
		return cost
	}
	if !now.Before(r.commitEnd) {
		// The batch that was forming has since started committing.
		r.commitEnd = r.nextEnd
	}
	if r.nextEnd.Equal(r.commitEnd) {
		// First member of a fresh batch pays the shared floor.
		r.nextEnd = r.commitEnd.Add(r.Floor)
	}
	r.nextEnd = r.nextEnd.Add(stream)
	return r.nextEnd.Sub(now)
}

// Busy reports whether the device is occupied at time now.
func (r *BatchResource) Busy(now time.Time) bool { return r.nextEnd.After(now) }

// FreeAt returns when the device becomes idle.
func (r *BatchResource) FreeAt() time.Time { return r.nextEnd }
