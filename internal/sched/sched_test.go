package sched

import (
	"testing"
	"time"

	"rpcv/internal/proto"
)

var t0 = time.Unix(1_000_000_000, 0).UTC()

func call(seq int) proto.CallID {
	return proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(seq)}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestRegistryListsBuiltins(t *testing.T) {
	names := Policies()
	want := map[string]bool{"fcfs": true, "fastest-first": true, "deadline": true, "speculative": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing built-in policies: %v (have %v)", want, names)
	}
	if _, err := New(Config{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFCFSPopsInArrivalOrder(t *testing.T) {
	e := mustNew(t, Config{})
	for i := 1; i <= 5; i++ {
		if !e.Enqueue(call(i), time.Second, time.Time{}, t0) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	if e.Enqueue(call(3), time.Second, time.Time{}, t0) {
		t.Fatal("duplicate enqueue accepted")
	}
	for i := 1; i <= 5; i++ {
		got, spec, ok := e.Pop("sv", t0)
		if !ok || spec || got != call(i) {
			t.Fatalf("pop %d: got %v spec=%v ok=%v", i, got, spec, ok)
		}
	}
	if _, _, ok := e.Pop("sv", t0); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestUnqueueDropsLazily(t *testing.T) {
	e := mustNew(t, Config{})
	e.Enqueue(call(1), 0, time.Time{}, t0)
	e.Enqueue(call(2), 0, time.Time{}, t0)
	e.Unqueue(call(1))
	if e.Len() != 1 || e.Queued(call(1)) {
		t.Fatalf("unqueue did not drop: len=%d", e.Len())
	}
	got, _, ok := e.Pop("sv", t0)
	if !ok || got != call(2) {
		t.Fatalf("pop after unqueue: got %v ok=%v", got, ok)
	}
	// Re-enqueue after unqueue must produce a live entry again.
	e.Enqueue(call(1), 0, time.Time{}, t0)
	got, _, ok = e.Pop("sv", t0)
	if !ok || got != call(1) {
		t.Fatalf("pop re-enqueued: got %v ok=%v", got, ok)
	}
}

func TestDeadlinePopsEDF(t *testing.T) {
	e := mustNew(t, Config{Policy: "deadline"})
	e.Enqueue(call(1), 0, time.Time{}, t0)            // no deadline: last
	e.Enqueue(call(2), 0, t0.Add(30*time.Second), t0) // middle
	e.Enqueue(call(3), 0, t0.Add(10*time.Second), t0) // earliest
	e.Enqueue(call(4), 0, t0.Add(10*time.Minute), t0) // latest deadline
	want := []proto.CallID{call(3), call(2), call(4), call(1)}
	for i, w := range want {
		got, _, ok := e.Pop("sv", t0)
		if !ok || got != w {
			t.Fatalf("EDF pop %d: got %v want %v", i, got, w)
		}
	}
}

func TestEstimatorTracksSlowServer(t *testing.T) {
	e := mustNew(t, Config{})
	for i := 0; i < 8; i++ {
		e.ObserveCompletion("fast", 10*time.Second, 10*time.Second)
		e.ObserveCompletion("slow", 10*time.Second, 100*time.Second)
	}
	ff, ok := e.ServerFactor("fast")
	if !ok || ff > 1.5 {
		t.Fatalf("fast factor = %v ok=%v, want ~1", ff, ok)
	}
	sf, ok := e.ServerFactor("slow")
	if !ok || sf < 5 {
		t.Fatalf("slow factor = %v ok=%v, want ~10", sf, ok)
	}
	if e.KnownServers() != 2 {
		t.Fatalf("known servers = %d", e.KnownServers())
	}
	if e.MeanCompletion() <= 0 {
		t.Fatal("mean completion not tracked")
	}
}

func TestFastestFirstGatesSlowServer(t *testing.T) {
	e := mustNew(t, Config{Policy: "fastest-first"})
	for i := 0; i < 8; i++ {
		e.ObserveCompletion("fast", 10*time.Second, 10*time.Second)
		e.ObserveCompletion("slow", 10*time.Second, 100*time.Second)
	}
	// The slow machine is ~10x the single fast server: it only gets
	// work while the queue holds more than the ~10 tasks the fast
	// machine retires during one of its executions.
	for i := 1; i <= 25; i++ {
		e.Enqueue(call(i), 10*time.Second, time.Time{}, t0)
	}
	if _, _, ok := e.Pop("slow", t0); !ok {
		t.Fatal("slow server refused while the queue is long")
	}
	// Drain below the matchmaking threshold: the slow server is
	// refused, the fast one and unknown newcomers are not.
	for e.Len() > 5 {
		if _, _, ok := e.Pop("fast", t0); !ok {
			t.Fatal("fast server refused")
		}
	}
	if _, _, ok := e.Pop("slow", t0); ok {
		t.Fatal("slow server admitted at the tail")
	}
	if _, _, ok := e.Pop("newcomer", t0); !ok {
		t.Fatal("unknown server refused at the tail")
	}
	if _, _, ok := e.Pop("fast", t0); !ok {
		t.Fatal("fast server refused at the tail")
	}
}

func TestFastestFirstStarvationGuard(t *testing.T) {
	e := mustNew(t, Config{Policy: "fastest-first", StarveAfter: 30 * time.Second})
	for i := 0; i < 8; i++ {
		e.ObserveCompletion("fast", 10*time.Second, 10*time.Second)
		e.ObserveCompletion("slow", 10*time.Second, 100*time.Second)
	}
	e.Enqueue(call(1), 10*time.Second, time.Time{}, t0)
	if _, _, ok := e.Pop("slow", t0); ok {
		t.Fatal("slow server admitted at the tail before starvation")
	}
	// Once the head has waited past StarveAfter, anyone may take it:
	// a wrong estimate must not park the queue forever.
	if _, _, ok := e.Pop("slow", t0.Add(time.Minute)); !ok {
		t.Fatal("starving head still gated")
	}
}

func TestSpeculativeQueueExcludesOriginalServer(t *testing.T) {
	e := mustNew(t, Config{Policy: "speculative"})
	if !e.Speculative() {
		t.Fatal("speculative policy not flagged")
	}
	if !e.EnqueueSpec(call(1), "sv-slow") {
		t.Fatal("spec enqueue refused")
	}
	if e.EnqueueSpec(call(1), "sv-slow") {
		t.Fatal("duplicate spec enqueue accepted")
	}
	if _, spec, ok := e.Pop("sv-slow", t0); ok || spec {
		t.Fatal("duplicate offered to the server running the original")
	}
	got, spec, ok := e.Pop("sv-fast", t0)
	if !ok || !spec || got != call(1) {
		t.Fatalf("spec pop: got %v spec=%v ok=%v", got, spec, ok)
	}
	// Duplicates drain before regular pending entries.
	e.Enqueue(call(2), 0, time.Time{}, t0)
	e.EnqueueSpec(call(3), "sv-slow")
	got, spec, ok = e.Pop("sv-fast", t0)
	if !ok || !spec || got != call(3) {
		t.Fatalf("spec priority pop: got %v spec=%v ok=%v", got, spec, ok)
	}
}

func TestSpeculativeDuplicateAvoidsSlowServers(t *testing.T) {
	e := mustNew(t, Config{Policy: "speculative"})
	for i := 0; i < 8; i++ {
		e.ObserveCompletion("fast", 10*time.Second, 10*time.Second)
		e.ObserveCompletion("crawler", 10*time.Second, 100*time.Second)
	}
	e.EnqueueSpec(call(1), "straggler")
	if _, _, ok := e.Pop("crawler", t0); ok {
		t.Fatal("duplicate handed to a known-slow server")
	}
	if _, spec, ok := e.Pop("fast", t0); !ok || !spec {
		t.Fatal("duplicate withheld from a fast server")
	}
}

func TestUnqueueDropsSpeculativeEntry(t *testing.T) {
	e := mustNew(t, Config{Policy: "speculative"})
	e.EnqueueSpec(call(1), "a")
	e.Unqueue(call(1)) // result arrived before the duplicate ran
	if _, _, ok := e.Pop("b", t0); ok {
		t.Fatal("cancelled duplicate still offered")
	}
}

func TestSpeculateThreshold(t *testing.T) {
	e := mustNew(t, Config{Policy: "speculative", SpeculateFactor: 3, SpeculateMin: time.Second})
	if got, want := e.SpeculateThreshold(10*time.Second), 30*time.Second; got != want {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
	// Unknown exec time: floored at SpeculateMin until completions teach
	// the engine a mean.
	if got := e.SpeculateThreshold(0); got != 3*time.Second {
		t.Fatalf("floored threshold = %v, want 3s", got)
	}
	e.ObserveCompletion("sv", 0, 20*time.Second)
	if got := e.SpeculateThreshold(0); got != 60*time.Second {
		t.Fatalf("mean-based threshold = %v, want 60s", got)
	}
}

func TestPopStealBypassesGate(t *testing.T) {
	e := mustNew(t, Config{Policy: "fastest-first"})
	for i := 0; i < 4; i++ {
		e.ObserveCompletion("fast", 10*time.Second, 10*time.Second)
	}
	e.Enqueue(call(1), 10*time.Second, time.Time{}, t0)
	got, ok := e.PopSteal()
	if !ok || got != call(1) {
		t.Fatalf("PopSteal: got %v ok=%v", got, ok)
	}
	if e.Len() != 0 {
		t.Fatalf("len after steal = %d", e.Len())
	}
	if _, ok := e.PopSteal(); ok {
		t.Fatal("steal from empty queue succeeded")
	}
}
