// Package sched is the coordinator's pluggable scheduling subsystem.
//
// The paper's coordinator schedules strictly first-come-first-served
// and only re-issues a task after a heartbeat suspicion, so one slow or
// silently degraded volatile server stalls a whole batch — the
// straggler regime of the figure-7 fault evaluation. This package
// factors the scheduling decision out of the coordinator into an
// Engine that the coordinator delegates every queue operation to, and
// makes the decision a Policy chosen by name:
//
//   - "fcfs" reproduces the paper's behaviour exactly (default);
//   - "fastest-first" is matchmaking on per-server speed estimates: an
//     exponentially weighted moving average of observed-vs-expected
//     completion times classifies servers, and when the pending queue
//     shrinks to its tail, work is withheld from servers much slower
//     than the best one so the final tasks land on fast machines;
//   - "deadline" orders the queue earliest-deadline-first over the
//     soft per-call deadlines carried by proto.Submit (calls without a
//     deadline keep FCFS order behind all deadlined ones);
//   - "speculative" keeps FCFS order but flags stragglers: when a
//     task's in-flight time exceeds SpeculateFactor times the engine's
//     completion estimate, the coordinator queues a redundant instance
//     for a *different* server; the first result wins and the loser is
//     cancelled. Deduplication is the store's CallID keying, which
//     already survives replication, shard sync and failover.
//
// The Engine also feeds cross-shard work stealing (PopSteal): an idle
// shard drains another shard's queue without consulting the admission
// gate, since stolen work executes on a different server population.
//
// Policies register themselves by name (Register), so deployments can
// plug their own without touching the coordinator. All methods are
// event-loop only, like the coordinator that owns the engine.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/proto"
)

// Config parameterizes an Engine.
type Config struct {
	// Policy is the registered policy name. Empty means "fcfs".
	Policy string

	// SpeculateFactor is the straggler threshold k of the speculative
	// policy: a task is duplicated when its in-flight time exceeds
	// k x max(expected execution time, observed mean completion).
	// Zero means 2.
	SpeculateFactor float64

	// SpeculateMin floors the speculation threshold so sub-second tasks
	// are not duplicated on scheduling jitter. Zero means 2 s.
	SpeculateMin time.Duration

	// FastFactor classifies servers: one whose slowdown estimate is
	// within FastFactor x the best server's counts as fast and is
	// always admitted; slower ones face the matchmaking gate (and are
	// never handed speculative duplicates). Zero means 2.
	FastFactor float64

	// StarveAfter bounds how long the admission gate may park the
	// whole queue: when no task has been handed out for this long
	// while the head keeps waiting, the gate is bypassed and whoever
	// asks is served — wrong speed estimates must not stall the batch.
	// (A queue that is draining through fast servers is not starving,
	// however old its head.) Zero means 1 min.
	StarveAfter time.Duration

	// Alpha is the estimator's EWMA smoothing factor in (0, 1].
	// Zero means 0.3.
	Alpha float64

	// Obs, when non-nil, receives scheduling gauges labeled
	// node="<Node>": rpcv_sched_queue_depth, rpcv_sched_spec_queue_depth
	// and per-server rpcv_sched_server_slowdown (EWMA factor, 1 =
	// nominal). Gauge writes are atomic stores on paths the engine
	// already walks; nil costs nothing.
	Obs *obs.Registry
	// Node labels this engine's gauges — the owning coordinator's ID.
	Node proto.NodeID
}

func (c *Config) applyDefaults() {
	if c.Policy == "" {
		c.Policy = "fcfs"
	}
	if c.SpeculateFactor <= 0 {
		c.SpeculateFactor = 2
	}
	if c.SpeculateMin <= 0 {
		c.SpeculateMin = 2 * time.Second
	}
	if c.FastFactor <= 0 {
		c.FastFactor = 2
	}
	if c.StarveAfter <= 0 {
		c.StarveAfter = time.Minute
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
}

// Policy decides queue order, admission and speculation for an Engine.
// Implementations must be stateless or share-nothing per Engine.
type Policy interface {
	// Name returns the registered policy name.
	Name() string
	// Less orders the pending queue; the engine breaks ties by arrival
	// sequence, so returning always-false yields pure FCFS.
	Less(a, b *Task) bool
	// Admit reports whether server may receive the queue head now.
	Admit(e *Engine, server proto.NodeID, now time.Time) bool
	// Speculative reports whether the coordinator should duplicate
	// straggling in-flight tasks.
	Speculative() bool
	// WantsEstimates reports whether the policy consumes the speed
	// estimator; when false the coordinator skips the periodic
	// in-flight sweep that feeds lateness observations.
	WantsEstimates() bool
}

// Task is one pending entry's scheduling metadata.
type Task struct {
	Call     proto.CallID
	Exec     time.Duration // expected execution time hint (0 unknown)
	Deadline time.Time     // soft completion deadline (zero: none)
	Enqueued time.Time

	seq   uint64 // arrival order, the universal tie-break
	index int    // heap position
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

var registry = map[string]func() Policy{}

// Register installs a policy factory under its name. Registering a
// duplicate name panics: it is always a wiring bug.
func Register(name string, factory func() Policy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate policy %q", name))
	}
	registry[name] = factory
}

// Policies returns the registered policy names, sorted.
func Policies() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("fcfs", func() Policy { return fcfs{} })
	Register("fastest-first", func() Policy { return fastestFirst{} })
	Register("deadline", func() Policy { return edf{} })
	Register("speculative", func() Policy { return speculative{} })
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

// Engine is the scheduling state the coordinator delegates to: the
// pending queue (policy-ordered), the speculative-duplicate queue and
// the per-server speed estimator.
type Engine struct {
	cfg    Config
	policy Policy

	pending pendingHeap
	queued  map[proto.CallID]*Task // live pending entries by call

	// spec is the FIFO of speculative duplicates awaiting a server
	// other than the one running the original instance.
	spec   []specEntry
	inSpec map[proto.CallID]bool

	est estimator
	// slots is each server's last-advertised concurrent capacity
	// (in-flight + free), from the heartbeat stream; unseen servers
	// count as 1. The admission gate weighs pool throughput with it.
	slots map[proto.NodeID]int
	seq   uint64
	// lastPop is the last time any pending entry was handed out; the
	// starvation bypass compares against it, so a queue that keeps
	// flowing through fast servers never counts as starving.
	lastPop time.Time

	// Observability gauges (nil-safe no-ops when Config.Obs is nil).
	gQueue      *obs.Gauge
	gSpec       *obs.Gauge
	speedGauges map[proto.NodeID]*obs.Gauge
}

type specEntry struct {
	call    proto.CallID
	exclude proto.NodeID
}

// New builds an engine for the configured policy; unknown policy names
// are an error (the caller decides whether to fall back to FCFS).
func New(cfg Config) (*Engine, error) {
	cfg.applyDefaults()
	factory, ok := registry[cfg.Policy]
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (have %v)", cfg.Policy, Policies())
	}
	e := &Engine{
		cfg:    cfg,
		policy: factory(),
		queued: make(map[proto.CallID]*Task),
		inSpec: make(map[proto.CallID]bool),
		est:    newEstimator(cfg.Alpha),
		slots:  make(map[proto.NodeID]int),
	}
	e.pending.engine = e
	if cfg.Obs != nil {
		nl := obs.L("node", string(cfg.Node))
		e.gQueue = cfg.Obs.Gauge("rpcv_sched_queue_depth", nl)
		e.gSpec = cfg.Obs.Gauge("rpcv_sched_spec_queue_depth", nl)
		e.speedGauges = make(map[proto.NodeID]*obs.Gauge)
	}
	return e, nil
}

// noteDepths refreshes the queue-depth gauges after any queue change.
func (e *Engine) noteDepths() {
	e.gQueue.SetInt(len(e.queued))
	e.gSpec.SetInt(len(e.inSpec))
}

// speedGauge lazily registers the per-server slowdown gauge.
func (e *Engine) speedGauge(server proto.NodeID) *obs.Gauge {
	if e.speedGauges == nil {
		return nil
	}
	g, ok := e.speedGauges[server]
	if !ok {
		g = e.cfg.Obs.Gauge("rpcv_sched_server_slowdown",
			obs.L("node", string(e.cfg.Node)), obs.L("server", string(server)))
		e.speedGauges[server] = g
	}
	return g
}

// noteSpeed publishes the server's current slowdown estimate.
func (e *Engine) noteSpeed(server proto.NodeID) {
	if e.speedGauges == nil {
		return
	}
	f, ok := e.est.factorOf(server)
	if !ok {
		f = 0 // no estimate (forgotten or never observed)
	}
	e.speedGauge(server).Set(f)
}

// PolicyName returns the active policy's name.
func (e *Engine) PolicyName() string { return e.policy.Name() }

// Speculative reports whether the active policy duplicates stragglers.
func (e *Engine) Speculative() bool { return e.policy.Speculative() }

// Len returns the number of live pending entries (excluding duplicates).
func (e *Engine) Len() int { return len(e.queued) }

// Queued reports whether the call has a live pending or speculative
// entry.
func (e *Engine) Queued(call proto.CallID) bool {
	_, p := e.queued[call]
	return p || e.inSpec[call]
}

// Enqueue adds one pending call with its scheduling metadata. It
// returns false when the call is already queued (the single duplicate
// check every insertion path funnels through).
func (e *Engine) Enqueue(call proto.CallID, exec time.Duration, deadline time.Time, now time.Time) bool {
	if _, dup := e.queued[call]; dup {
		return false
	}
	e.seq++
	t := &Task{Call: call, Exec: exec, Deadline: deadline, Enqueued: now, seq: e.seq}
	e.queued[call] = t
	heap.Push(&e.pending, t)
	e.noteDepths()
	return true
}

// Unqueue drops any pending or speculative entry for the call. Heap
// removal is lazy: stale entries are skipped at pop time.
func (e *Engine) Unqueue(call proto.CallID) {
	delete(e.queued, call)
	delete(e.inSpec, call)
	e.noteDepths()
}

// EnqueueSpec queues a speculative duplicate of an in-flight call,
// excluding the server already executing it. Returns false when a
// duplicate is already queued (or the call is pending anyway).
func (e *Engine) EnqueueSpec(call proto.CallID, exclude proto.NodeID) bool {
	if e.inSpec[call] {
		return false
	}
	if _, p := e.queued[call]; p {
		return false
	}
	e.inSpec[call] = true
	e.spec = append(e.spec, specEntry{call: call, exclude: exclude})
	e.noteDepths()
	return true
}

// Pop selects the next task for server: speculative duplicates first
// (any server except the one running the original), then the
// policy-ordered pending queue behind the admission gate. spec reports
// which kind was returned; ok is false when nothing is eligible.
func (e *Engine) Pop(server proto.NodeID, now time.Time) (call proto.CallID, spec, ok bool) {
	for i := 0; i < len(e.spec); i++ {
		entry := e.spec[i]
		if !e.inSpec[entry.call] { // unqueued since; drop lazily
			e.spec = append(e.spec[:i], e.spec[i+1:]...)
			i--
			continue
		}
		if entry.exclude == server {
			continue
		}
		if f, ok := e.est.factorOf(server); ok && f > e.cfg.FastFactor*e.est.best() {
			// A duplicate exists to outrun a straggler; handing it to
			// another slow machine defeats the point.
			continue
		}
		e.spec = append(e.spec[:i], e.spec[i+1:]...)
		delete(e.inSpec, entry.call)
		e.noteDepths()
		return entry.call, true, true
	}
	for e.pending.Len() > 0 {
		head := e.pending.tasks[0]
		if e.queued[head.Call] != head { // unqueued or re-enqueued since
			heap.Pop(&e.pending)
			continue
		}
		if !e.policy.Admit(e, server, now) && !e.starving(head, now) {
			return proto.CallID{}, false, false
		}
		heap.Pop(&e.pending)
		delete(e.queued, head.Call)
		e.lastPop = now
		e.noteDepths()
		return head.Call, false, true
	}
	return proto.CallID{}, false, false
}

// starving reports whether the admission gate has parked the queue:
// the head has waited past StarveAfter and nothing was handed out in
// that long either. Then the gate yields to whoever asks.
func (e *Engine) starving(head *Task, now time.Time) bool {
	if now.Sub(head.Enqueued) < e.cfg.StarveAfter {
		return false
	}
	return e.lastPop.IsZero() || now.Sub(e.lastPop) >= e.cfg.StarveAfter
}

// PopSteal pops the pending head for a cross-shard steal grant,
// bypassing the admission gate (the thief's server population is not
// the one the gate reasons about). Speculative duplicates never move
// across shards.
func (e *Engine) PopSteal() (proto.CallID, bool) {
	for e.pending.Len() > 0 {
		head := heap.Pop(&e.pending).(*Task)
		if e.queued[head.Call] != head {
			continue
		}
		delete(e.queued, head.Call)
		// Steals deliberately do not touch lastPop: feeding another
		// shard must not mask local starvation.
		e.noteDepths()
		return head.Call, true
	}
	return proto.CallID{}, false
}

// ObserveCompletion feeds one finished execution into the estimator:
// expected is the task's execution-time hint (0 when unknown), actual
// the observed assignment-to-result duration on server.
func (e *Engine) ObserveCompletion(server proto.NodeID, expected, actual time.Duration) {
	e.est.observe(server, expected, actual)
	e.noteSpeed(server)
}

// NoteSlots records a server's advertised concurrent task capacity
// (its in-flight count plus the free capacity its heartbeat offered).
func (e *Engine) NoteSlots(server proto.NodeID, n int) {
	if n < 1 {
		n = 1
	}
	e.slots[server] = n
}

// ForgetServer drops a server's speed estimate and capacity: a
// suspected or departed machine must stop counting as drain capacity
// in the admission gate, or dead servers would keep gating live slow
// ones. A returning server re-earns its estimate.
func (e *Engine) ForgetServer(server proto.NodeID) {
	delete(e.est.factor, server)
	delete(e.slots, server)
	e.noteSpeed(server)
}

// NeedsSweep reports whether the coordinator should run the periodic
// in-flight sweep (lateness feed and, for speculative policies,
// straggler duplication) for the active policy.
func (e *Engine) NeedsSweep() bool {
	return e.policy.WantsEstimates() || e.policy.Speculative()
}

// ObserveLateness feeds an in-flight assignment's age into the
// estimator: a task already running past its expected duration is a
// lower bound on the server's slowdown, visible long before (or even
// without) a completion — a silently degraded volatile node may never
// complete anything, yet must still be classified.
func (e *Engine) ObserveLateness(server proto.NodeID, expected, age time.Duration) {
	e.est.observeLate(server, expected, age)
	e.noteSpeed(server)
}

// ServerFactor returns the server's estimated slowdown factor (1 =
// nominal) and whether any completion has been observed for it.
func (e *Engine) ServerFactor(server proto.NodeID) (float64, bool) {
	return e.est.factorOf(server)
}

// KnownServers returns how many servers the estimator has observed.
func (e *Engine) KnownServers() int { return len(e.est.factor) }

// MeanCompletion returns the EWMA of observed completion times across
// all servers (0 before the first completion).
func (e *Engine) MeanCompletion() time.Duration { return e.est.mean }

// SpeculateThreshold returns the in-flight duration beyond which a
// task with the given execution hint counts as a straggler.
func (e *Engine) SpeculateThreshold(exec time.Duration) time.Duration {
	base := exec
	if e.est.mean > base {
		base = e.est.mean
	}
	if base < e.cfg.SpeculateMin {
		base = e.cfg.SpeculateMin
	}
	return time.Duration(e.cfg.SpeculateFactor * float64(base))
}

// ---------------------------------------------------------------------
// Pending heap
// ---------------------------------------------------------------------

type pendingHeap struct {
	tasks  []*Task
	engine *Engine
}

func (h *pendingHeap) Len() int { return len(h.tasks) }
func (h *pendingHeap) Less(i, j int) bool {
	a, b := h.tasks[i], h.tasks[j]
	if h.engine.policy.Less(a, b) {
		return true
	}
	if h.engine.policy.Less(b, a) {
		return false
	}
	return a.seq < b.seq
}
func (h *pendingHeap) Swap(i, j int) {
	h.tasks[i], h.tasks[j] = h.tasks[j], h.tasks[i]
	h.tasks[i].index = i
	h.tasks[j].index = j
}
func (h *pendingHeap) Push(x any) {
	t := x.(*Task)
	t.index = len(h.tasks)
	h.tasks = append(h.tasks, t)
}
func (h *pendingHeap) Pop() any {
	old := h.tasks
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	h.tasks = old[:n-1]
	return t
}

// ---------------------------------------------------------------------
// Estimator
// ---------------------------------------------------------------------

// estimator keeps per-server slowdown factors (EWMA of actual/expected
// completion time) and a global completion-time mean. A factor of 1 is
// nominal speed; a machine 10x slower than its tasks' hints converges
// to ~10.
type estimator struct {
	alpha  float64
	factor map[proto.NodeID]float64
	mean   time.Duration
}

func newEstimator(alpha float64) estimator {
	return estimator{alpha: alpha, factor: make(map[proto.NodeID]float64)}
}

func (e *estimator) observe(server proto.NodeID, expected, actual time.Duration) {
	if actual <= 0 {
		return
	}
	if e.mean == 0 {
		e.mean = actual
	} else {
		e.mean = time.Duration((1-e.alpha)*float64(e.mean) + e.alpha*float64(actual))
	}
	ref := expected
	if ref <= 0 {
		ref = e.mean
	}
	if ref <= 0 {
		return
	}
	ratio := float64(actual) / float64(ref)
	if old, ok := e.factor[server]; ok {
		e.factor[server] = (1-e.alpha)*old + e.alpha*ratio
	} else {
		e.factor[server] = ratio
	}
}

// observeLate raises a server's factor to at least age/expected for a
// task still in flight: a lower bound on the true slowdown, replaced
// by the completion EWMA once results arrive.
func (e *estimator) observeLate(server proto.NodeID, expected, age time.Duration) {
	if expected <= 0 {
		expected = e.mean
	}
	if expected <= 0 {
		return
	}
	ratio := float64(age) / float64(expected)
	if ratio <= 1 {
		return
	}
	if old, ok := e.factor[server]; !ok || ratio > old {
		e.factor[server] = ratio
	}
}

func (e *estimator) factorOf(server proto.NodeID) (float64, bool) {
	f, ok := e.factor[server]
	return f, ok
}

// best returns the smallest known slowdown factor (1 when none).
func (e *estimator) best() float64 {
	best := 0.0
	for _, f := range e.factor {
		if best == 0 || f < best {
			best = f
		}
	}
	if best == 0 {
		return 1
	}
	return best
}

// ---------------------------------------------------------------------
// Built-in policies
// ---------------------------------------------------------------------

// fcfs is the paper's strict arrival-order scheduling.
type fcfs struct{}

func (fcfs) Name() string                                { return "fcfs" }
func (fcfs) Less(a, b *Task) bool                        { return false }
func (fcfs) Admit(*Engine, proto.NodeID, time.Time) bool { return true }
func (fcfs) Speculative() bool                           { return false }
func (fcfs) WantsEstimates() bool                        { return false }

// fastestFirst keeps FCFS order but matchmakes on the speed
// estimates: a slow machine is only given work while the pending
// queue is long enough that the rest of the pool could not drain it
// before that machine would finish even one task. Slow machines thus
// contribute early in a long batch but never capture the
// makespan-critical tail.
type fastestFirst struct{}

func (fastestFirst) Name() string         { return "fastest-first" }
func (fastestFirst) Less(a, b *Task) bool { return false }
func (fastestFirst) Speculative() bool    { return false }
func (fastestFirst) WantsEstimates() bool { return true }

func (fastestFirst) Admit(e *Engine, server proto.NodeID, _ time.Time) bool {
	f, ok := e.ServerFactor(server)
	if !ok {
		return true // unseen server: let it prove itself
	}
	if f <= e.cfg.FastFactor*e.est.best() {
		return true // fast enough: always admitted
	}
	// While this f-times-slow machine executes one task, server i
	// (slots_i concurrent slots, slowdown f_i) retires about
	// slots_i x f/f_i tasks. Admit the slow machine only when the
	// queue is longer than what the rest of the pool would drain in
	// that time — otherwise the task it takes would outlive the batch.
	drained := 0.0
	for id, fi := range e.est.factor {
		if id == server {
			continue
		}
		slots := e.slots[id]
		if slots < 1 {
			slots = 1
		}
		drained += f * float64(slots) / fi
	}
	return float64(e.Len()) >= drained
}

// edf orders the queue earliest-deadline-first; calls without a
// deadline queue FCFS behind every deadlined one.
type edf struct{}

func (edf) Name() string { return "deadline" }
func (edf) Less(a, b *Task) bool {
	switch {
	case a.Deadline.IsZero() && b.Deadline.IsZero():
		return false
	case a.Deadline.IsZero():
		return false
	case b.Deadline.IsZero():
		return true
	default:
		return a.Deadline.Before(b.Deadline)
	}
}
func (edf) Admit(*Engine, proto.NodeID, time.Time) bool { return true }
func (edf) Speculative() bool                           { return false }
func (edf) WantsEstimates() bool                        { return false }

// speculative keeps FCFS order and asks the coordinator to duplicate
// straggling in-flight tasks onto different servers. It borrows
// fastest-first's admission gate: now that cancellation frees a
// straggler's slot immediately, handing that known-slow machine fresh
// tail work would just create the next straggler to rescue.
type speculative struct{ fastestFirst }

func (speculative) Name() string      { return "speculative" }
func (speculative) Speculative() bool { return true }
