// Package db is the coordinator's task database: an in-memory stand-in
// for the MySQL instance XtremWeb uses to store job and task
// descriptions.
//
// The paper's figure 5 shows that coordinator replication time is
// bounded by database operation time at the backup side (tasks are
// replicated one after the other, each incurring a DB insert), and that
// the real-life coordinators — with better database performance — were
// faster than the confined ones. The substitution therefore preserves
// the behaviour that matters: each operation has a modelled cost, and
// the cost scales with record payload.
//
// The store itself is a deterministic ordered map keyed by CallID; file
// archives are NOT stored here (they go to the archive store), matching
// the paper's split between "job descriptions in a database, for fast
// management, and file archives in an optimized file system".
package db

import (
	"sort"
	"time"

	"rpcv/internal/proto"
)

// CostModel assigns a virtual latency to each database operation,
// parameterized by the record payload size.
type CostModel struct {
	// PerOp is the fixed cost of one statement (parse, index, commit).
	PerOp time.Duration
	// PerByte is the additional cost per payload byte.
	PerByte time.Duration
}

// Cost returns the latency of one operation on size bytes of payload.
func (c CostModel) Cost(size int) time.Duration {
	return c.PerOp + time.Duration(size)*c.PerByte
}

// ConfinedCost models the Athlon-XP-era MySQL on IDE disk of the
// confined platform: ~3 ms per statement. This constant is what makes
// replication of N small tasks linear in N with a visible slope
// (figure 5, right).
func ConfinedCost() CostModel {
	return CostModel{PerOp: 3 * time.Millisecond, PerByte: 20 * time.Nanosecond}
}

// RealLifeCost models the dedicated Xeon coordinators of the Internet
// testbed, whose database operations were measured faster than the
// confined platform's (paper §5.2).
func RealLifeCost() CostModel {
	return CostModel{PerOp: 1 * time.Millisecond, PerByte: 10 * time.Nanosecond}
}

// DB stores job records for one coordinator.
type DB struct {
	cost    CostModel
	records map[proto.CallID]*proto.JobRecord

	// spent accumulates the virtual time consumed by operations; the
	// coordinator drains it into timer delays so the event loop charges
	// the cost without blocking.
	spent time.Duration
	ops   uint64
}

// New creates an empty database with the given cost model.
func New(cost CostModel) *DB {
	return &DB{cost: cost, records: make(map[proto.CallID]*proto.JobRecord)}
}

// Put inserts or replaces a record, charging one operation.
func (d *DB) Put(rec *proto.JobRecord) {
	d.charge(len(rec.Params) + len(rec.Output))
	d.records[rec.Call] = rec
}

// Get returns the record for id, charging one operation.
func (d *DB) Get(id proto.CallID) (*proto.JobRecord, bool) {
	rec, ok := d.records[id]
	if ok {
		d.charge(len(rec.Params) + len(rec.Output))
	} else {
		d.charge(0)
	}
	return rec, ok
}

// Peek returns the record without charging (internal bookkeeping reads
// that would not be SQL statements).
func (d *DB) Peek(id proto.CallID) (*proto.JobRecord, bool) {
	rec, ok := d.records[id]
	return rec, ok
}

// Delete removes a record, charging one operation.
func (d *DB) Delete(id proto.CallID) {
	d.charge(0)
	delete(d.records, id)
}

// Len returns the record count (free).
func (d *DB) Len() int { return len(d.records) }

// All returns the records sorted by CallID (deterministic iteration;
// charged as one scan operation).
func (d *DB) All() []*proto.JobRecord {
	d.charge(0)
	out := make([]*proto.JobRecord, 0, len(d.records))
	for _, rec := range d.records {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call.Less(out[j].Call) })
	return out
}

// PeekAll returns all records sorted by CallID without charging any
// operation cost. It exists for introspection (stats, tests, experiment
// observers): measurement must not perturb the virtual clock.
func (d *DB) PeekAll() []*proto.JobRecord {
	out := make([]*proto.JobRecord, 0, len(d.records))
	for _, rec := range d.records {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call.Less(out[j].Call) })
	return out
}

// Select returns records matching pred, sorted by CallID.
func (d *DB) Select(pred func(*proto.JobRecord) bool) []*proto.JobRecord {
	d.charge(0)
	var out []*proto.JobRecord
	for _, rec := range d.records {
		if pred(rec) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call.Less(out[j].Call) })
	return out
}

func (d *DB) charge(size int) {
	d.spent += d.cost.Cost(size)
	d.ops++
}

// DrainCost returns and resets the accumulated virtual latency of
// operations since the last drain. The owning node schedules this
// duration before acting on results, so database time appears on the
// virtual clock.
func (d *DB) DrainCost() time.Duration {
	s := d.spent
	d.spent = 0
	return s
}

// Ops returns the total number of charged operations.
func (d *DB) Ops() uint64 { return d.ops }
