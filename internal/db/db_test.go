package db

import (
	"testing"
	"testing/quick"
	"time"

	"rpcv/internal/proto"
)

func rec(user string, seq int, state proto.TaskState) *proto.JobRecord {
	return &proto.JobRecord{
		Call:  proto.CallID{User: proto.UserID(user), Session: 1, Seq: proto.RPCSeq(seq)},
		State: state,
	}
}

func TestPutGetDelete(t *testing.T) {
	d := New(ConfinedCost())
	r := rec("u", 1, proto.TaskPending)
	d.Put(r)
	got, ok := d.Get(r.Call)
	if !ok || got != r {
		t.Fatal("Get after Put failed")
	}
	d.Delete(r.Call)
	if _, ok := d.Get(r.Call); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("u", 1, proto.TaskPending))
	d.DrainCost()
	ops := d.Ops()
	d.Peek(proto.CallID{User: "u", Session: 1, Seq: 1})
	d.PeekAll()
	if d.Ops() != ops {
		t.Fatal("Peek/PeekAll charged operations")
	}
	if d.DrainCost() != 0 {
		t.Fatal("Peek/PeekAll accumulated cost")
	}
}

func TestGetChargesWherePeekDoesNot(t *testing.T) {
	// The same lookup through the two doors: Get models a SQL
	// statement (one op, payload-scaled cost), Peek models internal
	// bookkeeping (free). The difference is what keeps measurement
	// from perturbing the virtual clock.
	cost := CostModel{PerOp: time.Millisecond, PerByte: time.Microsecond}
	d := New(cost)
	r := rec("u", 1, proto.TaskPending)
	r.Params = make([]byte, 100)
	d.Put(r)
	d.DrainCost()
	baseOps := d.Ops()

	if _, ok := d.Peek(r.Call); !ok {
		t.Fatal("Peek missed the record")
	}
	if d.Ops() != baseOps || d.DrainCost() != 0 {
		t.Fatal("Peek charged disk cost")
	}

	if _, ok := d.Get(r.Call); !ok {
		t.Fatal("Get missed the record")
	}
	if d.Ops() != baseOps+1 {
		t.Fatalf("Get charged %d ops, want exactly 1", d.Ops()-baseOps)
	}
	if want := cost.Cost(100); d.DrainCost() != want {
		t.Fatalf("Get cost drained != %v (payload-scaled)", want)
	}

	// A miss still charges the statement (the index was consulted).
	d.Get(proto.CallID{User: "ghost", Session: 1, Seq: 9})
	if d.Ops() != baseOps+2 {
		t.Fatal("missing-key Get did not charge")
	}
}

func TestLenAllConsistentAfterDelete(t *testing.T) {
	d := New(ConfinedCost())
	for i := 1; i <= 5; i++ {
		d.Put(rec("u", i, proto.TaskPending))
	}
	d.Delete(proto.CallID{User: "u", Session: 1, Seq: 2})
	d.Delete(proto.CallID{User: "u", Session: 1, Seq: 4})
	d.Delete(proto.CallID{User: "ghost", Session: 1, Seq: 1}) // absent: no-op

	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	all := d.All()
	if len(all) != d.Len() {
		t.Fatalf("All returned %d records, Len says %d", len(all), d.Len())
	}
	wantSeqs := []proto.RPCSeq{1, 3, 5}
	for i, r := range all {
		if r.Call.Seq != wantSeqs[i] {
			t.Fatalf("All[%d].Seq = %d, want %d (sorted, deleted keys gone)", i, r.Call.Seq, wantSeqs[i])
		}
	}
	// PeekAll agrees with All and stays free.
	ops := d.Ops()
	if got := d.PeekAll(); len(got) != len(all) {
		t.Fatalf("PeekAll %d records, All %d", len(got), len(all))
	}
	if d.Ops() != ops {
		t.Fatal("PeekAll charged")
	}
}

func TestCostAccumulatesAndDrains(t *testing.T) {
	cost := CostModel{PerOp: time.Millisecond, PerByte: 0}
	d := New(cost)
	for i := 0; i < 5; i++ {
		d.Put(rec("u", i+1, proto.TaskPending))
	}
	if got := d.DrainCost(); got != 5*time.Millisecond {
		t.Fatalf("drained %v, want 5ms", got)
	}
	if got := d.DrainCost(); got != 0 {
		t.Fatalf("second drain %v, want 0", got)
	}
}

func TestCostScalesWithPayload(t *testing.T) {
	cost := CostModel{PerOp: time.Millisecond, PerByte: time.Microsecond}
	d := New(cost)
	r := rec("u", 1, proto.TaskPending)
	r.Params = make([]byte, 1000)
	d.Put(r)
	if got := d.DrainCost(); got != time.Millisecond+1000*time.Microsecond {
		t.Fatalf("drained %v, want 2ms", got)
	}
}

func TestAllSortedByCallID(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("b", 2, proto.TaskPending))
	d.Put(rec("a", 9, proto.TaskPending))
	d.Put(rec("a", 1, proto.TaskPending))
	all := d.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if !all[i-1].Call.Less(all[i].Call) {
			t.Fatalf("All not sorted: %v before %v", all[i-1].Call, all[i].Call)
		}
	}
}

func TestSelect(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("u", 1, proto.TaskPending))
	d.Put(rec("u", 2, proto.TaskFinished))
	d.Put(rec("u", 3, proto.TaskFinished))
	got := d.Select(func(r *proto.JobRecord) bool { return r.State == proto.TaskFinished })
	if len(got) != 2 {
		t.Fatalf("Select returned %d, want 2", len(got))
	}
}

func TestRealLifeFasterThanConfined(t *testing.T) {
	// The paper's real-life coordinators had faster databases.
	if RealLifeCost().Cost(300) >= ConfinedCost().Cost(300) {
		t.Fatal("real-life DB not faster than confined")
	}
}

func TestPutReplaces(t *testing.T) {
	d := New(ConfinedCost())
	r1 := rec("u", 1, proto.TaskPending)
	d.Put(r1)
	r2 := rec("u", 1, proto.TaskFinished)
	d.Put(r2)
	got, _ := d.Peek(r1.Call)
	if got.State != proto.TaskFinished || d.Len() != 1 {
		t.Fatal("Put did not replace in place")
	}
}

func TestOpsCountQuick(t *testing.T) {
	// Property: Ops equals the number of charged operations performed.
	f := func(puts, gets, deletes uint8) bool {
		d := New(CostModel{PerOp: time.Microsecond})
		for i := 0; i < int(puts); i++ {
			d.Put(rec("u", i, proto.TaskPending))
		}
		for i := 0; i < int(gets); i++ {
			d.Get(proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(i)})
		}
		for i := 0; i < int(deletes); i++ {
			d.Delete(proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(i)})
		}
		return d.Ops() == uint64(puts)+uint64(gets)+uint64(deletes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
