package db

import (
	"testing"
	"testing/quick"
	"time"

	"rpcv/internal/proto"
)

func rec(user string, seq int, state proto.TaskState) *proto.JobRecord {
	return &proto.JobRecord{
		Call:  proto.CallID{User: proto.UserID(user), Session: 1, Seq: proto.RPCSeq(seq)},
		State: state,
	}
}

func TestPutGetDelete(t *testing.T) {
	d := New(ConfinedCost())
	r := rec("u", 1, proto.TaskPending)
	d.Put(r)
	got, ok := d.Get(r.Call)
	if !ok || got != r {
		t.Fatal("Get after Put failed")
	}
	d.Delete(r.Call)
	if _, ok := d.Get(r.Call); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("u", 1, proto.TaskPending))
	d.DrainCost()
	ops := d.Ops()
	d.Peek(proto.CallID{User: "u", Session: 1, Seq: 1})
	d.PeekAll()
	if d.Ops() != ops {
		t.Fatal("Peek/PeekAll charged operations")
	}
	if d.DrainCost() != 0 {
		t.Fatal("Peek/PeekAll accumulated cost")
	}
}

func TestCostAccumulatesAndDrains(t *testing.T) {
	cost := CostModel{PerOp: time.Millisecond, PerByte: 0}
	d := New(cost)
	for i := 0; i < 5; i++ {
		d.Put(rec("u", i+1, proto.TaskPending))
	}
	if got := d.DrainCost(); got != 5*time.Millisecond {
		t.Fatalf("drained %v, want 5ms", got)
	}
	if got := d.DrainCost(); got != 0 {
		t.Fatalf("second drain %v, want 0", got)
	}
}

func TestCostScalesWithPayload(t *testing.T) {
	cost := CostModel{PerOp: time.Millisecond, PerByte: time.Microsecond}
	d := New(cost)
	r := rec("u", 1, proto.TaskPending)
	r.Params = make([]byte, 1000)
	d.Put(r)
	if got := d.DrainCost(); got != time.Millisecond+1000*time.Microsecond {
		t.Fatalf("drained %v, want 2ms", got)
	}
}

func TestAllSortedByCallID(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("b", 2, proto.TaskPending))
	d.Put(rec("a", 9, proto.TaskPending))
	d.Put(rec("a", 1, proto.TaskPending))
	all := d.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if !all[i-1].Call.Less(all[i].Call) {
			t.Fatalf("All not sorted: %v before %v", all[i-1].Call, all[i].Call)
		}
	}
}

func TestSelect(t *testing.T) {
	d := New(ConfinedCost())
	d.Put(rec("u", 1, proto.TaskPending))
	d.Put(rec("u", 2, proto.TaskFinished))
	d.Put(rec("u", 3, proto.TaskFinished))
	got := d.Select(func(r *proto.JobRecord) bool { return r.State == proto.TaskFinished })
	if len(got) != 2 {
		t.Fatalf("Select returned %d, want 2", len(got))
	}
}

func TestRealLifeFasterThanConfined(t *testing.T) {
	// The paper's real-life coordinators had faster databases.
	if RealLifeCost().Cost(300) >= ConfinedCost().Cost(300) {
		t.Fatal("real-life DB not faster than confined")
	}
}

func TestPutReplaces(t *testing.T) {
	d := New(ConfinedCost())
	r1 := rec("u", 1, proto.TaskPending)
	d.Put(r1)
	r2 := rec("u", 1, proto.TaskFinished)
	d.Put(r2)
	got, _ := d.Peek(r1.Call)
	if got.State != proto.TaskFinished || d.Len() != 1 {
		t.Fatal("Put did not replace in place")
	}
}

func TestOpsCountQuick(t *testing.T) {
	// Property: Ops equals the number of charged operations performed.
	f := func(puts, gets, deletes uint8) bool {
		d := New(CostModel{PerOp: time.Microsecond})
		for i := 0; i < int(puts); i++ {
			d.Put(rec("u", i, proto.TaskPending))
		}
		for i := 0; i < int(gets); i++ {
			d.Get(proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(i)})
		}
		for i := 0; i < int(deletes); i++ {
			d.Delete(proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(i)})
		}
		return d.Ops() == uint64(puts)+uint64(gets)+uint64(deletes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
