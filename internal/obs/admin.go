package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Admin is a node's observability HTTP server. It owns a private mux
// (nothing leaks onto http.DefaultServeMux) serving:
//
//	/metrics        Prometheus text exposition of the registry
//	/statusz        JSON: node, uptime, metrics snapshot, and every
//	                registered status section
//	/healthz        a real liveness probe: "ok" only while the
//	                registered Health probe passes; 503 with the
//	                reason otherwise (no probe: "ok" while serving)
//	/tracez         JSON array of the span ring, oldest first
//	/debug/pprof/   the standard net/http/pprof handlers
type Admin struct {
	node  string
	reg   *Registry
	tr    *Tracer
	start time.Time

	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	sections map[string]func() any
	health   func() error
}

// ServeAdmin binds addr (host:port; :0 picks a free port) and serves
// o's registry and tracer until Close. The listener is up when
// ServeAdmin returns — Addr is immediately scrapeable.
func ServeAdmin(addr string, o *Observer) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &Admin{
		node:     string(o.Node()),
		reg:      o.Registry(),
		tr:       o.Tracer(),
		start:    time.Now(),
		ln:       ln,
		sections: map[string]func() any{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/statusz", a.handleStatusz)
	mux.HandleFunc("/tracez", a.handleTracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux}
	RegisterBuildInfo(a.reg, o.Node())
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound address (useful with :0).
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Status registers a named /statusz section. fn runs per request and
// must be safe to call from the HTTP goroutine — event-loop state must
// be fetched via the runtime's Do (see the cmd daemons). Its result is
// JSON-marshaled. Re-registering a name replaces the section.
func (a *Admin) Status(name string, fn func() any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sections[name] = fn
}

// Health registers the liveness probe backing /healthz. fn runs per
// request from the HTTP goroutine and must itself bound how long it
// blocks (the daemons probe the event loop via rt's Ping with a short
// timeout). A nil error means alive; an error turns /healthz into a
// 503 carrying the reason, so the fleet monitor — or any external
// prober — learns a stalled event loop is not "ok".
func (a *Admin) Health(fn func() error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.health = fn
}

// Close stops the server and releases the port.
func (a *Admin) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	probe := a.health
	a.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if probe != nil {
		if err := probe(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.WritePrometheus(w)
}

func (a *Admin) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	names := make([]string, 0, len(a.sections))
	for n := range a.sections {
		names = append(names, n)
	}
	fns := make(map[string]func() any, len(a.sections))
	for n, fn := range a.sections {
		fns[n] = fn
	}
	a.mu.Unlock()
	sort.Strings(names)

	sections := map[string]any{}
	for _, n := range names {
		sections[n] = runSection(fns[n])
	}
	writeJSON(w, map[string]any{
		"node":     a.node,
		"now":      time.Now(),
		"uptime":   time.Since(a.start).String(),
		"metrics":  a.reg.Snapshot(),
		"sections": sections,
	})
}

// runSection shields the scrape from one section's panic: the broken
// section reports itself as an "error" field and every other section
// still renders, instead of the whole /statusz dying with a 500.
func runSection(fn func() any) (out any) {
	defer func() {
		if p := recover(); p != nil {
			out = map[string]any{"error": fmt.Sprintf("panic: %v", p)}
		}
	}()
	return fn()
}

func (a *Admin) handleTracez(w http.ResponseWriter, _ *http.Request) {
	spans := a.tr.Dump()
	if spans == nil {
		spans = []Span{}
	}
	writeJSON(w, spans)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
