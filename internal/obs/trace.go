package obs

import (
	"sync"
	"time"

	"rpcv/internal/proto"
)

// Stage names one step of a call's life. The happy path is
// submit → enqueue → dispatch → exec → result → logged-durable → ack;
// fault handling and scheduling add requeue, steal, speculate, and
// redirect hops. Stages are stamped on whichever node observes them:
// submit/ack on the client, enqueue/dispatch/result and the hop stages
// on a coordinator, exec and the server-side logged-durable on a
// server.
type Stage string

const (
	StageSubmit    Stage = "submit"         // client issued the call
	StageEnqueue   Stage = "enqueue"        // coordinator accepted and queued it
	StageDispatch  Stage = "dispatch"       // coordinator assigned it to a server
	StageExec      Stage = "exec"           // server finished executing it
	StageResult    Stage = "result"         // coordinator stored the result
	StageDurable   Stage = "logged-durable" // a message-log write for it reached disk
	StageAck       Stage = "ack"            // client received the result
	StageRequeue   Stage = "requeue"        // coordinator re-issued it after a fault
	StageSteal     Stage = "steal"          // another shard stole it
	StageSpeculate Stage = "speculate"      // a duplicate instance was issued
	StageRedirect  Stage = "redirect"       // a non-owner bounced it to the owner shard
)

// stageRank orders stages that share a timestamp so assembled
// timelines read causally even at coarse clock resolution.
var stageRank = map[Stage]int{
	StageSubmit: 0, StageDurable: 1, StageRedirect: 2, StageEnqueue: 3,
	StageDispatch: 4, StageSpeculate: 5, StageSteal: 6, StageRequeue: 7,
	StageExec: 8, StageResult: 9, StageAck: 10,
}

// Span is one stage observation for one call on one node.
type Span struct {
	Call   proto.CallID `json:"call"`
	Stage  Stage        `json:"stage"`
	Node   proto.NodeID `json:"node"`
	At     time.Time    `json:"at"`
	Detail string       `json:"detail,omitempty"`
}

// Tracer records spans into a fixed-size ring: constant memory, the
// most recent spans win, and recording is one mutex-guarded slot write
// — cheap enough to leave on in production. All methods are safe for
// concurrent use and no-op on a nil receiver.
type Tracer struct {
	node proto.NodeID

	mu    sync.Mutex
	buf   []Span // grows on demand, never beyond max
	max   int
	next  int
	total uint64
}

// NewTracer creates a ring of the given capacity (DefaultSpanRing when
// size <= 0) for the named node. The ring's memory grows with the
// spans actually recorded, up to the capacity — a quiet node costs
// almost nothing.
func NewTracer(node proto.NodeID, size int) *Tracer {
	if size <= 0 {
		size = DefaultSpanRing
	}
	return &Tracer{node: node, max: size}
}

// Event records a span stamped time.Now. Use EventAt from event-loop
// code that has a node clock (virtual time under simulation).
func (t *Tracer) Event(call proto.CallID, stage Stage, detail string) {
	t.EventAt(time.Now(), call, stage, detail)
}

// EventAt records a span with an explicit timestamp.
func (t *Tracer) EventAt(at time.Time, call proto.CallID, stage Stage, detail string) {
	if t == nil {
		return
	}
	s := Span{Call: call, Stage: stage, Node: t.node, At: at, Detail: detail}
	t.mu.Lock()
	if len(t.buf) < t.max {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
	}
	t.next = (t.next + 1) % t.max
	t.total++
	t.mu.Unlock()
}

// Dump copies the retained spans, oldest first.
func (t *Tracer) Dump() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) == t.max {
		// Full ring: next points at the oldest retained span.
		out = append(out, t.buf[t.next:]...)
	}
	return append(out, t.buf[:t.next]...)
}

// Total returns how many spans were ever recorded (recorded - retained
// = overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
