// Package obs is the live observability plane (beyond the paper): a
// concurrency-safe labeled metrics registry, CallID-correlated
// task-lifecycle tracing, and an admin HTTP server every daemon can
// mount.
//
// The paper's evaluation is post-hoc — throughput and fault curves
// reconstructed after the run — and so was this repo's until now:
// internal/metrics feeds only the offline experiment harness. obs
// makes the same signals available while the grid runs:
//
//   - Registry holds labeled Counters, Gauges, Histograms, and
//     scrape-time func metrics. All mutators are safe for concurrent
//     use and nil-safe: a nil *Registry hands out nil instruments
//     whose methods no-op, so instrumentation is unconditional in the
//     protocol code and free when observability is off.
//   - Tracer is a fixed-size per-node ring buffer of Span events. A
//     call's life — submit, enqueue, dispatch, exec, result,
//     logged-durable, ack, plus requeue/steal/speculate/redirect hops
//     — is stamped on whichever node observes each stage; Assemble
//     joins per-node dumps into end-to-end timelines, and ChromeTrace
//     renders them as Chrome trace_event JSON (chrome://tracing,
//     Perfetto).
//   - ServeAdmin mounts /metrics (Prometheus text exposition),
//     /statusz (JSON snapshot plus registered status sections),
//     /healthz, /tracez, and net/http/pprof on a private mux.
//
// An Observer bundles one node's Registry and Tracer; experiment
// harnesses share a single Registry across many nodes (metrics are
// labeled node="<id>") while each node keeps its own span ring.
//
// metrics.Histogram remains the single-goroutine analysis type;
// obs.Histogram is its lock-free concurrent counterpart with the same
// log-bucket resolution.
package obs

import "rpcv/internal/proto"

// Observer bundles the observability handles one node threads through
// its config: a metrics registry (possibly shared with other nodes)
// and this node's private span ring. A nil *Observer is valid and
// turns every instrument into a no-op.
type Observer struct {
	node proto.NodeID
	reg  *Registry
	tr   *Tracer
}

// DefaultSpanRing is the per-node span ring capacity used by New.
const DefaultSpanRing = 4096

// New creates an Observer with a fresh Registry and a DefaultSpanRing-
// sized Tracer for the named node.
func New(node proto.NodeID) *Observer {
	return NewWith(node, NewRegistry())
}

// NewWith creates an Observer for node that records metrics into the
// shared registry reg (label metrics with node="<id>" to keep nodes
// apart). The span ring is still per-node.
func NewWith(node proto.NodeID, reg *Registry) *Observer {
	return &Observer{node: node, reg: reg, tr: NewTracer(node, DefaultSpanRing)}
}

// Node returns the observed node's ID ("" on a nil Observer).
func (o *Observer) Node() proto.NodeID {
	if o == nil {
		return ""
	}
	return o.node
}

// Registry returns the metrics registry (nil on a nil Observer; a nil
// Registry's instruments all no-op).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the node's span ring (nil on a nil Observer; a nil
// Tracer's Event is a no-op).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}
