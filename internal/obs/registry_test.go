package obs

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", L("node", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", L("node", "a")); again != c {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if other := r.Counter("x_total", L("node", "b")); other == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("depth")
	g.SetInt(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}

	if v, ok := r.Value("x_total", L("node", "a")); !ok || v != 5 {
		t.Fatalf("Value = %v, %v; want 5, true", v, ok)
	}
	if sum := r.Sum("x_total"); sum != 5 {
		t.Fatalf("Sum = %v, want 5", sum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("metric")
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.N != 101 {
		t.Fatalf("N = %d, want 101", s.N)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0/100", s.Min, s.Max)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
	// Log buckets give ~6% resolution above 8; the median of 1..100
	// must land near 50.
	if s.P50 < 40 || s.P50 > 60 {
		t.Fatalf("p50 = %v, want ~50", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below histSub occupy one bucket each: exact quantiles.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	if s.P50 != 3 || s.P99 != 3 {
		t.Fatalf("p50/p99 = %v/%v, want 3/3", s.P50, s.P99)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to its bucket,
	// across the whole int64 range.
	for i := 0; i < histBuckets; i++ {
		mid := histBucketMid(i)
		if mid < 0 {
			t.Fatalf("bucket %d mid overflowed: %d", i, mid)
		}
		if got := histBucket(mid); got != i {
			t.Fatalf("bucket %d: mid %d maps to bucket %d", i, mid, got)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var n uint64 = 42
	r.CounterFunc("scraped_total", func() uint64 { return n })
	r.GaugeFunc("factor", func() float64 { return 2.5 })
	if v, ok := r.Value("scraped_total"); !ok || v != 42 {
		t.Fatalf("CounterFunc read = %v, %v", v, ok)
	}
	// Re-registering replaces the func: a restarted node re-binds its
	// scrape closure to the new instance's atomics.
	r.CounterFunc("scraped_total", func() uint64 { return 7 })
	if v, _ := r.Value("scraped_total"); v != 7 {
		t.Fatalf("replaced CounterFunc read = %v, want 7", v)
	}
	if v, ok := r.Value("factor"); !ok || v != 2.5 {
		t.Fatalf("GaugeFunc read = %v, %v", v, ok)
	}
}

// expositionLine matches one valid Prometheus 0.0.4 text line: a
// comment or a sample with optional labels and a numeric value. The CI
// smoke uses the same shape to reject malformed scrapes.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eE]+([eE][-+]?[0-9]+)?)$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpcv_test_total", L("node", "a")).Add(3)
	r.Counter("rpcv_test_total", L("node", "b")).Add(4)
	r.Gauge("rpcv_test_depth", L("node", `quo"te`)).SetInt(2)
	h := r.Histogram("rpcv_test_lat_ns", L("node", "a"))
	h.Observe(100)
	h.Observe(200)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE rpcv_test_total counter",
		`rpcv_test_total{node="a"} 3`,
		`rpcv_test_total{node="b"} 4`,
		"# TYPE rpcv_test_lat_ns summary",
		`rpcv_test_lat_ns{node="a",quantile="0.5"}`,
		`rpcv_test_lat_ns_count{node="a"} 2`,
		`rpcv_test_lat_ns_sum{node="a"} 300`,
		`node="quo\"te"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per metric name, before its samples.
	if strings.Count(out, "# TYPE rpcv_test_total") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	if s := r.Summary(); !strings.Contains(s, "no metrics") {
		t.Fatalf("empty summary = %q", s)
	}
	r.Counter("a_total", L("node", "x")).Add(2)
	r.Counter("zero_total") // zero values stay out of the summary
	s := r.Summary()
	if !strings.Contains(s, "a_total{node=x}=2") {
		t.Fatalf("summary = %q", s)
	}
	if strings.Contains(s, "zero_total") {
		t.Fatalf("summary includes zero metric: %q", s)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	r.CounterFunc("cf", func() uint64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v", got)
	}

	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil || o.Node() != "" {
		t.Fatal("nil observer accessors must return zero values")
	}
	o.Tracer().Event(callID(1), StageSubmit, "")

	var h *Histogram
	h.Observe(5)
	if h.Snapshot().N != 0 {
		t.Fatal("nil histogram must stay empty")
	}
}

// TestRegistryConcurrency hammers every instrument kind while scrapes
// run — the -race suite's main target.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := L("node", fmt.Sprintf("n%d", i%2))
			c := r.Counter("conc_total", node)
			g := r.Gauge("conc_depth", node)
			h := r.Histogram("conc_lat", node)
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.SetInt(j)
				g.Add(0.5)
				h.Observe(int64(j))
			}
		}(i)
	}
	var scrapes sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				_ = r.Snapshot()
				_ = r.Sum("conc_total")
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := r.Sum("conc_total"); got != 8000 {
		t.Fatalf("Sum(conc_total) = %v, want 8000", got)
	}
}
