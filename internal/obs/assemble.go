package obs

import (
	"encoding/json"
	"sort"

	"rpcv/internal/proto"
)

// Timeline is one call's end-to-end story: every span any node
// recorded for it, time-ordered (ties broken by causal stage rank,
// then node).
type Timeline struct {
	Call  proto.CallID `json:"call"`
	Spans []Span       `json:"spans"`
}

// Stage returns the first span with the given stage.
func (tl Timeline) Stage(s Stage) (Span, bool) {
	for _, sp := range tl.Spans {
		if sp.Stage == s {
			return sp, true
		}
	}
	return Span{}, false
}

// Has reports whether any span has the given stage.
func (tl Timeline) Has(s Stage) bool {
	_, ok := tl.Stage(s)
	return ok
}

// Stages lists the timeline's stages in order (repeats preserved:
// a requeued call dispatches twice).
func (tl Timeline) Stages() []Stage {
	out := make([]Stage, len(tl.Spans))
	for i, sp := range tl.Spans {
		out[i] = sp.Stage
	}
	return out
}

// Assemble joins per-node span dumps (each node's Tracer.Dump, or a
// parsed /tracez response) into per-call timelines. Nodes on one
// machine share a clock, so cross-node ordering by timestamp is
// meaningful; equal timestamps fall back to stage causality. Timelines
// come back ordered by their first span's time, then CallID.
func Assemble(dumps ...[]Span) []Timeline {
	byCall := map[proto.CallID][]Span{}
	for _, d := range dumps {
		for _, s := range d {
			byCall[s.Call] = append(byCall[s.Call], s)
		}
	}
	out := make([]Timeline, 0, len(byCall))
	for call, spans := range byCall {
		sort.SliceStable(spans, func(i, j int) bool {
			if !spans[i].At.Equal(spans[j].At) {
				return spans[i].At.Before(spans[j].At)
			}
			if ri, rj := stageRank[spans[i].Stage], stageRank[spans[j].Stage]; ri != rj {
				return ri < rj
			}
			return spans[i].Node < spans[j].Node
		})
		out = append(out, Timeline{Call: call, Spans: spans})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Spans[0].At, out[j].Spans[0].At
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return out[i].Call.Less(out[j].Call)
	})
	return out
}

// chromeEvent is one Chrome trace_event. The format is the
// chrome://tracing / Perfetto JSON array flavor: instant events ("i")
// mark each stage on its node's track, one complete event ("X") spans
// each call from first to last stage, and metadata events ("M") name
// the tracks.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders timelines as Chrome trace_event JSON: load the
// result in chrome://tracing or https://ui.perfetto.dev. Each node is
// a process (its spans are instant events on call-numbered threads);
// pid 0 carries one complete event per call so durations are visible
// at a glance.
func ChromeTrace(timelines []Timeline) []byte {
	if len(timelines) == 0 {
		return []byte(`{"traceEvents":[]}`)
	}
	epoch := timelines[0].Spans[0].At
	us := func(s Span) int64 { return s.At.Sub(epoch).Microseconds() }

	nodePID := map[proto.NodeID]int{}
	pidOf := func(n proto.NodeID) int {
		if pid, ok := nodePID[n]; ok {
			return pid
		}
		pid := len(nodePID) + 1 // pid 0 is the per-call track
		nodePID[n] = pid
		return pid
	}

	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "calls"},
	})
	for i, tl := range timelines {
		call := tl.Call.String()
		first, last := tl.Spans[0], tl.Spans[len(tl.Spans)-1]
		dur := last.At.Sub(first.At).Microseconds()
		if dur < 1 {
			dur = 1
		}
		events = append(events, chromeEvent{
			Name: call, Phase: "X", TS: us(first), Dur: dur, PID: 0, TID: i,
			Args: map[string]any{"stages": len(tl.Spans)},
		})
		for _, sp := range tl.Spans {
			args := map[string]any{"call": call}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			events = append(events, chromeEvent{
				Name: string(sp.Stage), Phase: "i", TS: us(sp),
				PID: pidOf(sp.Node), TID: i, Scope: "t", Args: args,
			})
		}
	}
	names := make([]proto.NodeID, 0, len(nodePID))
	for n := range nodePID {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, n := range names {
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: nodePID[n],
			Args: map[string]any{"name": string(n)},
		})
	}
	out, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		// Span fields are all plain JSON-marshalable types; reaching
		// this is a bug in chromeEvent itself.
		panic("obs: chrome trace marshal: " + err.Error())
	}
	return out
}
