package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name dimension: rpcv_coord_finished_total{node="co"}.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. All methods
// are safe for concurrent use and no-op on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (float64, so it serves both
// integral depths and fractional rates or factors). All methods are
// safe for concurrent use and no-op on a nil receiver.
type Gauge struct{ v atomic.Uint64 } // float64 bits

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// SetInt stores n.
func (g *Gauge) SetInt(n int) { g.Set(float64(n)) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Histogram is the concurrent counterpart of metrics.Histogram:
// logarithmic buckets (histSub sub-buckets per power of two, ~6%
// resolution) over non-negative int64 values, maintained with atomic
// adds only — no lock on the observe path. Unlike metrics.Histogram it
// is unit-agnostic: callers choose the unit (nanoseconds, messages,
// bytes) and encode it in the metric name. All methods are safe for
// concurrent use and no-op on a nil receiver.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when n > 0
	max    atomic.Int64
}

const (
	histSub = 8
	// v<8 exact, then 8 sub-buckets per octave for exponents 3..62
	// (the largest bits.Len64-1 an int64 value can produce).
	histBuckets = histSub + (62-2)*histSub
)

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	if v < histSub {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u) - 1 // >= 3
	sub := (u >> uint(exp-3)) & (histSub - 1)
	return histSub + (exp-3)*histSub + int(sub)
}

// histBucketMid returns a representative value for bucket i.
func histBucketMid(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := 3 + (i-histSub)/histSub
	sub := (i - histSub) % histSub
	lo := int64(1)<<uint(exp) + int64(sub)<<uint(exp-3)
	return lo + int64(1)<<uint(exp-3)/2
}

// Observe records one value (negatives clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.sum.Add(v)
	if h.n.Add(1) == 1 {
		// First observation seeds min/max; racing observers fix any
		// interleaving through the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the nanoseconds elapsed since start.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	N   uint64  `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent Observes may land
// between field reads; the result is a consistent-enough scrape, not
// an atomic cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]uint64
	var n uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		n += counts[i]
	}
	if n == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		N:   n,
		Sum: float64(h.sum.Load()),
		Min: float64(h.min.Load()),
		Max: float64(h.max.Load()),
	}
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(n-1))
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > rank {
				v := float64(histBucketMid(i))
				return math.Max(s.Min, math.Min(s.Max, v))
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = quantile(0.50), quantile(0.95), quantile(0.99)
	return s
}

// kind discriminates registry entries for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "summary"
	}
}

type entry struct {
	name   string
	labels []Label
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	// cf and gf are atomic: a restarting node re-registers its
	// scrape-time funcs on an existing entry while a concurrent
	// Snapshot may be reading them.
	cf atomic.Pointer[func() uint64]
	gf atomic.Pointer[func() float64]
}

// value returns the entry's scalar reading (histograms report N).
func (e *entry) value() float64 {
	switch e.kind {
	case kindCounter:
		return float64(e.c.Value())
	case kindGauge:
		return e.g.Value()
	case kindCounterFunc:
		if fn := e.cf.Load(); fn != nil {
			return float64((*fn)())
		}
		return 0
	case kindGaugeFunc:
		if fn := e.gf.Load(); fn != nil {
			return (*fn)()
		}
		return 0
	default:
		return float64(e.h.Snapshot().N)
	}
}

// Registry owns a set of named, labeled metrics. Lookups are
// mutex-guarded (do them once, at wiring time); the instruments they
// return are atomic. A nil *Registry is valid: every lookup returns a
// nil instrument and every snapshot is empty.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*entry
	entries []*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*entry{}}
}

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the entry for (name, labels). Same name and
// labels returns the same entry; re-registering under a different kind
// panics — it is always a wiring bug.
func (r *Registry) lookup(name string, labels []Label, k kind) *entry {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := metricKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, e.kind))
		}
		return e
	}
	e := &entry{name: name, labels: sorted, kind: k}
	switch k {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter finds or creates a counter. Nil registry returns nil (whose
// methods no-op).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter).c
}

// Gauge finds or creates a gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge).g
}

// Histogram finds or creates a histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram).h
}

// CounterFunc registers a counter read at scrape time — the zero-
// overhead way to expose an existing atomic the hot path already
// maintains. fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, labels, kindCounterFunc).cf.Store(&fn)
}

// GaugeFunc registers a gauge read at scrape time. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, labels, kindGaugeFunc).gf.Store(&fn)
}

// Sample is one metric's reading in a registry snapshot.
type Sample struct {
	Name   string             `json:"name"`
	Labels map[string]string  `json:"labels,omitempty"`
	Kind   string             `json:"kind"`
	Value  float64            `json:"value"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// snapshotEntries copies the entry list under the lock; readings
// happen outside it so scrape-time funcs may themselves take locks.
func (r *Registry) snapshotEntries() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.entries...)
}

// Snapshot reads every metric, sorted by name then labels.
func (r *Registry) Snapshot() []Sample {
	entries := r.snapshotEntries()
	samples := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind.promType(), Value: e.value()}
		if len(e.labels) > 0 {
			s.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		if e.kind == kindHistogram {
			hs := e.h.Snapshot()
			s.Hist = &hs
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return fmt.Sprint(samples[i].Labels) < fmt.Sprint(samples[j].Labels)
	})
	return samples
}

// Sum adds up every label variant of the named metric — how a shared
// registry totals, say, rpcv_transport_sent_total across nodes.
func (r *Registry) Sum(name string) float64 {
	var sum float64
	for _, e := range r.snapshotEntries() {
		if e.name == name {
			sum += e.value()
		}
	}
	return sum
}

// Value reads one exact (name, labels) metric. ok is false when it was
// never registered.
func (r *Registry) Value(name string, labels ...Label) (v float64, ok bool) {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, e := range r.snapshotEntries() {
		if e.name == name && labelsEqual(e.labels, sorted) {
			return e.value(), true
		}
	}
	return 0, false
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges emit one
// sample each; histograms emit a summary (quantile series plus _sum
// and _count). No external dependency is involved — the format is a
// stable, greppable text contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshotEntries()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	lastType := ""
	for _, e := range entries {
		if e.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind.promType())
			lastType = e.name
		}
		if e.kind == kindHistogram {
			hs := e.h.Snapshot()
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", hs.P50}, {"0.95", hs.P95}, {"0.99", hs.P99}} {
				b.WriteString(e.name)
				writeLabels(&b, e.labels, L("quantile", q.q))
				fmt.Fprintf(&b, " %v\n", q.v)
			}
			b.WriteString(e.name + "_sum")
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %v\n", hs.Sum)
			b.WriteString(e.name + "_count")
			writeLabels(&b, e.labels)
			fmt.Fprintf(&b, " %d\n", hs.N)
			continue
		}
		b.WriteString(e.name)
		writeLabels(&b, e.labels)
		fmt.Fprintf(&b, " %v\n", e.value())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders the non-zero metrics as one "name{labels}=value"
// line — the daemons print it on shutdown so a ^C leaves a trace of
// what the process did.
func (r *Registry) Summary() string {
	var parts []string
	for _, s := range r.Snapshot() {
		labels := ""
		if len(s.Labels) > 0 {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			kv := make([]string, 0, len(keys))
			for _, k := range keys {
				kv = append(kv, k+"="+s.Labels[k])
			}
			labels = "{" + strings.Join(kv, ",") + "}"
		}
		if s.Hist != nil {
			if s.Hist.N == 0 {
				continue
			}
			parts = append(parts, fmt.Sprintf("%s%s=n:%d,p50:%v,p99:%v",
				s.Name, labels, s.Hist.N, s.Hist.P50, s.Hist.P99))
			continue
		}
		if s.Value == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s%s=%v", s.Name, labels, s.Value))
	}
	if len(parts) == 0 {
		return "(no metrics recorded)"
	}
	return strings.Join(parts, " ")
}
