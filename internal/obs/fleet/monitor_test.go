package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/proto"
)

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// coordSamples fabricates one coordinator's scrape: shard index, queue
// depth, requeue counter, dispatch p99 and uptime.
func coordSamples(node string, shard int, depth, requeues, p99ns, uptime float64) []Sample {
	nl := map[string]string{"node": node}
	ql := map[string]string{"node": node, "quantile": "0.99"}
	return []Sample{
		{Name: "rpcv_coord_shard_index", Labels: nl, Value: float64(shard)},
		{Name: "rpcv_sched_queue_depth", Labels: nl, Value: depth},
		{Name: "rpcv_coord_requeues_total", Labels: nl, Value: requeues},
		{Name: "rpcv_coord_dispatch_latency_ns", Labels: ql, Value: p99ns},
		{Name: "rpcv_uptime_seconds", Labels: nl, Value: uptime},
	}
}

func staticSource(id string, samples func() []Sample) *FuncSource {
	return &FuncSource{Node: proto.NodeID(id), Fetch: func() ([]Sample, error) { return samples(), nil }}
}

func TestMonitorGradesHealthyFleetOK(t *testing.T) {
	up := 0.0
	m := New(Config{
		Sources: []Source{staticSource("coord-00", func() []Sample {
			up++
			return coordSamples("coord-00", 0, 3, 0, 1e6, up)
		})},
		Interval: time.Second,
	})
	var v FleetVerdict
	for i := 0; i < 3; i++ {
		v = m.Poll(at(i))
	}
	if v.Level != LevelOK {
		t.Fatalf("level = %v, want ok: %+v", v.Level, v)
	}
	nv, ok := v.Node("coord-00")
	if !ok || nv.Role != "coordinator" || len(nv.Reasons) != 0 {
		t.Fatalf("node verdict = %+v ok=%v", nv, ok)
	}
	if len(v.Shards) != 1 || v.Shards[0].QueueDepth != 3 {
		t.Fatalf("shards = %+v", v.Shards)
	}
}

func TestMonitorDownAfterConsecutiveFailuresAndBundle(t *testing.T) {
	dir := t.TempDir()
	dead := false
	tracer := obs.NewTracer("sv0", 16)
	tracer.EventAt(at(0), proto.CallID{Seq: 1}, obs.StageExec, "")
	src := &FuncSource{
		Node: "sv0",
		Fetch: func() ([]Sample, error) {
			if dead {
				return nil, fmt.Errorf("connection refused")
			}
			return []Sample{{Name: "rpcv_server_executed_total",
				Labels: map[string]string{"node": "sv0"}, Value: 7}}, nil
		},
		Trace: func() []obs.Span { return tracer.Dump() },
	}
	m := New(Config{Sources: []Source{src}, Interval: time.Second, DownAfter: 2, BundleDir: dir})

	if v := m.Poll(at(0)); v.Level != LevelOK {
		t.Fatalf("healthy round level = %v", v.Level)
	}
	dead = true
	if v := m.Poll(at(1)); v.Level != LevelWarn {
		t.Fatalf("first failure should be warn, got %v", v.Level)
	}
	v := m.Poll(at(2))
	if v.Level != LevelDown {
		t.Fatalf("second failure should be down, got %+v", v)
	}
	nv, _ := v.Node("sv0")
	if nv.ScrapeFailures != 2 || !strings.Contains(strings.Join(nv.Reasons, " "), "unreachable") {
		t.Fatalf("node verdict = %+v", nv)
	}

	// The down transition must have fired the flight recorder.
	bundles := m.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly one", bundles)
	}
	for _, name := range []string{"verdict.json", "history.json", "timelines.json", "trace.chrome.json"} {
		if _, err := os.Stat(filepath.Join(bundles[0], name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	// History must cover the healthy rounds (the dead node's last
	// samples survive in the rings).
	var hist map[string]map[string][]Point
	b, err := os.ReadFile(filepath.Join(bundles[0], "history.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist["sv0"]) == 0 {
		t.Fatalf("history.json has no sv0 series: %v", hist)
	}
	// The bundle's timeline carries the span ring.
	var timelines []obs.Timeline
	b, err = os.ReadFile(filepath.Join(bundles[0], "timelines.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &timelines); err != nil {
		t.Fatal(err)
	}
	if len(timelines) != 1 || !timelines[0].Has(obs.StageExec) {
		t.Fatalf("timelines = %+v", timelines)
	}

	// Cooldown: an immediate second death-level round must not capture
	// another bundle.
	m.Poll(at(3))
	if got := m.Bundles(); len(got) != 1 {
		t.Fatalf("cooldown violated: %v", got)
	}
	if m.WorstSeen() != LevelDown {
		t.Fatalf("worst seen = %v", m.WorstSeen())
	}
}

func TestMonitorLivenessProbeCritical(t *testing.T) {
	stalled := false
	src := &FuncSource{
		Node:  "co",
		Fetch: func() ([]Sample, error) { return coordSamples("co", 0, 0, 0, 1e6, 1), nil },
		Health: func() error {
			if stalled {
				return fmt.Errorf("event loop did not respond within 500ms")
			}
			return nil
		},
	}
	m := New(Config{Sources: []Source{src}, Interval: time.Second})
	if v := m.Poll(at(0)); v.Level != LevelOK {
		t.Fatalf("level = %v", v.Level)
	}
	stalled = true
	v := m.Poll(at(1))
	if v.Level != LevelCritical {
		t.Fatalf("stalled node level = %v, want critical", v.Level)
	}
	nv, _ := v.Node("co")
	if !strings.Contains(strings.Join(nv.Reasons, " "), "event loop") {
		t.Fatalf("reasons = %v", nv.Reasons)
	}
}

func TestMonitorShardSLO(t *testing.T) {
	depth, p99 := 2.0, 1e6 // healthy: depth 2, dispatch p99 1ms
	requeues := 0.0
	mk := func(node string, shard int) Source {
		return staticSource(node, func() []Sample {
			return coordSamples(node, shard, depth, requeues, p99, 1)
		})
	}
	m := New(Config{
		Sources:  []Source{mk("coord-00", 0), mk("coord-01", 0), mk("coord-02", 1)},
		Interval: time.Second,
		SLO: SLO{
			DispatchP99:    10 * time.Millisecond,
			MaxQueueDepth:  10,
			MaxRequeueRate: 1,
		},
	})
	v := m.Poll(at(0))
	if v.Level != LevelOK || len(v.Shards) != 2 {
		t.Fatalf("healthy verdict = %+v", v)
	}
	if v.Shards[0].QueueDepth != 4 || v.Shards[1].QueueDepth != 2 {
		t.Fatalf("shard depths = %+v", v.Shards)
	}

	// Queue depth past the limit: warn; past double: critical.
	depth = 6 // shard 0 sums to 12 > 10
	if v = m.Poll(at(1)); v.Shards[0].Level != LevelWarn {
		t.Fatalf("depth breach = %+v", v.Shards[0])
	}
	depth = 11 // shard 0 sums to 22 > 20
	if v = m.Poll(at(2)); v.Shards[0].Level != LevelCritical {
		t.Fatalf("depth double breach = %+v", v.Shards[0])
	}
	depth = 2

	// A requeue storm: 10 requeues/s against a 1/s objective.
	requeues = 100
	m.Poll(at(3))
	requeues = 110
	v = m.Poll(at(4))
	found := false
	for _, s := range v.Shards {
		if s.Shard == 0 && strings.Contains(strings.Join(s.Reasons, " "), "requeue rate") {
			found = true
			if s.RequeueRate <= 1 {
				t.Errorf("requeue rate = %v", s.RequeueRate)
			}
		}
	}
	if !found {
		t.Fatalf("no requeue-rate breach in %+v", v.Shards)
	}

	// Dispatch p99 burn: hold the quantile above target long enough
	// that more than half the window burns → critical.
	requeues = 0
	p99 = 50e6 // 50ms against a 10ms target
	var last FleetVerdict
	for i := 5; i < 40; i++ {
		last = m.Poll(at(i))
	}
	var s0 ShardVerdict
	for _, s := range last.Shards {
		if s.Shard == 0 {
			s0 = s
		}
	}
	if s0.Level != LevelCritical || s0.Burn < 0.5 {
		t.Fatalf("burn verdict = %+v", s0)
	}
	if s0.DispatchP99 != 50*time.Millisecond {
		t.Fatalf("dispatch p99 = %v", s0.DispatchP99)
	}
}

func TestMonitorNodeSLORules(t *testing.T) {
	redials, walP99 := 0.0, 1e6
	src := staticSource("sv0", func() []Sample {
		nl := map[string]string{"node": "sv0"}
		return []Sample{
			{Name: "rpcv_server_running", Labels: nl, Value: 1},
			{Name: "rpcv_transport_redials_total", Labels: nl, Value: redials},
			{Name: "rpcv_store_write_latency_ns",
				Labels: map[string]string{"node": "sv0", "quantile": "0.99"}, Value: walP99},
		}
	})
	m := New(Config{
		Sources:  []Source{src},
		Interval: time.Second,
		SLO:      SLO{MaxRedialRate: 1, WALCommitP99: 5 * time.Millisecond},
	})
	m.Poll(at(0))
	if v := m.Poll(at(1)); v.Level != LevelOK {
		t.Fatalf("healthy = %+v", v)
	}
	redials = 20 // 10/s vs limit 1/s
	v := m.Poll(at(3))
	nv, _ := v.Node("sv0")
	if nv.Level != LevelWarn || !strings.Contains(strings.Join(nv.Reasons, " "), "redial") {
		t.Fatalf("redial verdict = %+v", nv)
	}
	// WAL p99 above target for most of the window → critical.
	walP99 = 50e6
	for i := 4; i < 40; i++ {
		v = m.Poll(at(i))
	}
	nv, _ = v.Node("sv0")
	if nv.Level != LevelCritical || !strings.Contains(strings.Join(nv.Reasons, " "), "wal commit") {
		t.Fatalf("wal burn verdict = %+v", nv)
	}
}

func TestMonitorDetectsRestart(t *testing.T) {
	up := 100.0
	m := New(Config{
		Sources: []Source{staticSource("sv0", func() []Sample {
			return []Sample{
				{Name: "rpcv_server_running", Labels: map[string]string{"node": "sv0"}, Value: 0},
				{Name: "rpcv_uptime_seconds", Labels: map[string]string{"node": "sv0"}, Value: up},
			}
		})},
		Interval: time.Second,
	})
	m.Poll(at(0))
	up = 2 // process came back young
	v := m.Poll(at(1))
	nv, _ := v.Node("sv0")
	if nv.Restarts != 1 || nv.Level != LevelWarn {
		t.Fatalf("restart verdict = %+v", nv)
	}
}

func TestHandlerServesClusterz(t *testing.T) {
	m := New(Config{
		Sources: []Source{staticSource("coord-00", func() []Sample {
			return coordSamples("coord-00", 0, 1, 0, 1e6, 1)
		})},
		Interval: time.Second,
	})
	m.Poll(at(0))
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	body := httpGetBody(t, srv.URL+"/clusterz")
	var v FleetVerdict
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/clusterz JSON: %v\n%s", err, body)
	}
	if len(v.Nodes) != 1 || v.Nodes[0].Node != "coord-00" {
		t.Fatalf("verdict = %+v", v)
	}

	text := httpGetBody(t, srv.URL+"/clusterz?format=text")
	for _, want := range []string{"fleet OK", "coord-00", "coordinator", "SHARD"} {
		if !strings.Contains(text, want) {
			t.Errorf("text view missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(httpGetBody(t, srv.URL+"/healthz"), "ok") {
		t.Error("/healthz not ok for a healthy fleet")
	}
	var hist map[string]map[string][]Point
	if err := json.Unmarshal([]byte(httpGetBody(t, srv.URL+"/historyz")), &hist); err != nil {
		t.Fatalf("/historyz: %v", err)
	}
	if len(hist["coord-00"]) == 0 {
		t.Fatal("/historyz empty")
	}
}

func TestParseTargets(t *testing.T) {
	srcs, err := ParseTargets("co=127.0.0.1:8080, sv0=http://127.0.0.1:8081")
	if err != nil || len(srcs) != 2 {
		t.Fatalf("srcs=%v err=%v", srcs, err)
	}
	h := srcs[0].(*HTTPSource)
	if h.Node != "co" || h.Base != "http://127.0.0.1:8080" {
		t.Fatalf("source = %+v", h)
	}
	for _, bad := range []string{"", "noequals", "co=", "=addr", "a=1,a=2"} {
		if _, err := ParseTargets(bad); err == nil {
			t.Errorf("ParseTargets(%q): want error", bad)
		}
	}
}
