package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rpcv/internal/proto"
)

// Level grades health; higher is worse. A fleet's level is the worst
// of its parts.
type Level int

const (
	LevelOK Level = iota
	LevelWarn
	LevelCritical
	LevelDown
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelOK:
		return "ok"
	case LevelWarn:
		return "warn"
	case LevelCritical:
		return "critical"
	case LevelDown:
		return "down"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// MarshalJSON renders the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON parses a level name, so /clusterz JSON round-trips
// into the verdict types.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, c := range []Level{LevelOK, LevelWarn, LevelCritical, LevelDown} {
		if s == c.String() {
			*l = c
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown level %q", s)
}

// SLO is the declarative service-level model the monitor evaluates
// every scrape. The zero value of any field disables that rule, so a
// deployment opts into exactly the objectives it cares about.
type SLO struct {
	// DispatchP99 is the per-shard target for the coordinator
	// queue→dispatch p99 (rpcv_coord_dispatch_latency_ns, quantile
	// 0.99). The shard goes Warn when the latest reading exceeds it and
	// Critical when at least half the window burns above it.
	DispatchP99 time.Duration `json:"dispatch_p99,omitempty"`
	// WALCommitP99 bounds each node's durable-write p99
	// (rpcv_store_write_latency_ns, quantile 0.99); same Warn/Critical
	// burn semantics as DispatchP99.
	WALCommitP99 time.Duration `json:"wal_commit_p99,omitempty"`
	// MaxQueueDepth bounds a shard's summed scheduler queue depth
	// (rpcv_sched_queue_depth). Warn above it, Critical above twice it.
	MaxQueueDepth float64 `json:"max_queue_depth,omitempty"`
	// MaxRequeueRate bounds a shard's fault-requeue rate
	// (rpcv_coord_requeues_total, per second over the window): a
	// requeue storm means servers are dying under dispatched work.
	MaxRequeueRate float64 `json:"max_requeue_rate,omitempty"`
	// MaxRedialRate bounds a node's transport redial rate
	// (rpcv_transport_redials_total per second): churn here means peers
	// keep vanishing mid-connection.
	MaxRedialRate float64 `json:"max_redial_rate,omitempty"`
	// MaxShedRate bounds a node's transport shed rate
	// (rpcv_transport_sheds_total per second): sheds mean outbound
	// queues overflowed and messages were dropped.
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
}

// Config parameterizes a Monitor.
type Config struct {
	// Sources are the nodes to watch.
	Sources []Source
	// Interval is the scrape period for Start (default 2s). Poll-driven
	// users (the sim harness) ignore it.
	Interval time.Duration
	// Timeout bounds each node's scrape (default Interval/2).
	Timeout time.Duration
	// History is the per-metric ring capacity (default 512 points).
	History int
	// DownAfter is how many consecutive scrape failures flip a node to
	// Down (default 2) — one failure is a blip, a streak is a death.
	DownAfter int
	// Window is the lookback for rates and SLO burn (default
	// 15*Interval).
	Window time.Duration
	// SLO is the objective model; the zero value checks liveness only.
	SLO SLO
	// BundleDir, when set, arms the flight recorder: node deaths and
	// fresh Critical SLO breaches capture post-mortem bundles into
	// timestamped subdirectories.
	BundleDir string
	// BundleCooldown is the minimum spacing between automatic captures
	// (default 30s) so a flapping fleet does not fill the disk.
	BundleCooldown time.Duration
	// Logf receives monitor trace output; nil silences it.
	Logf func(format string, args ...any)
	// OnVerdict, when non-nil, observes every round's verdict.
	OnVerdict func(FleetVerdict)
}

// NodeVerdict is one node's health at one evaluation.
type NodeVerdict struct {
	Node           proto.NodeID `json:"node"`
	Role           string       `json:"role,omitempty"` // coordinator | server | client
	Level          Level        `json:"level"`
	Reasons        []string     `json:"reasons,omitempty"`
	LastScrape     time.Time    `json:"last_scrape,omitempty"`
	ScrapeFailures int          `json:"scrape_failures,omitempty"`
	Restarts       int          `json:"restarts,omitempty"`
}

// ShardVerdict is one coordinator shard's health at one evaluation,
// aggregated over its member ring.
type ShardVerdict struct {
	Shard       int            `json:"shard"`
	Members     []proto.NodeID `json:"members"`
	Level       Level          `json:"level"`
	Reasons     []string       `json:"reasons,omitempty"`
	QueueDepth  float64        `json:"queue_depth"`
	RequeueRate float64        `json:"requeue_rate"`
	DispatchP99 time.Duration  `json:"dispatch_p99"`
	Burn        float64        `json:"burn"` // window fraction above DispatchP99 target
}

// FleetVerdict is one whole-fleet evaluation.
type FleetVerdict struct {
	At     time.Time      `json:"at"`
	Level  Level          `json:"level"`
	Nodes  []NodeVerdict  `json:"nodes"`
	Shards []ShardVerdict `json:"shards,omitempty"`
}

// Node returns the verdict for one node.
func (v FleetVerdict) Node(id proto.NodeID) (NodeVerdict, bool) {
	for _, n := range v.Nodes {
		if n.Node == id {
			return n, true
		}
	}
	return NodeVerdict{}, false
}

// seriesEntry is one metric's ring plus the identity it was keyed
// under, so rules can match on name and labels without re-parsing the
// key.
type seriesEntry struct {
	Name   string
	Labels map[string]string
	S      *Series
}

// nodeState is everything the monitor remembers about one node.
type nodeState struct {
	src     Source
	series  map[string]*seriesEntry // by Sample.Key()
	order   []string                // insertion order of series keys
	last    *Scrape
	lastErr error
	fails   int
	role    string
	uptime  float64 // last rpcv_uptime_seconds, for restart detection
	starts  int     // observed restarts (uptime drops)
}

func (n *nodeState) record(at time.Time, samples []Sample, history int) {
	for _, s := range samples {
		k := s.Key()
		e := n.series[k]
		if e == nil {
			e = &seriesEntry{Name: s.Name, Labels: s.Labels, S: NewSeries(history)}
			n.series[k] = e
			n.order = append(n.order, k)
		}
		e.S.Add(at, s.Value)
		switch {
		case strings.HasPrefix(s.Name, "rpcv_coord_"):
			n.role = "coordinator"
		case strings.HasPrefix(s.Name, "rpcv_server_"):
			n.role = "server"
		case n.role == "" && strings.HasPrefix(s.Name, "rpcv_client_"):
			n.role = "client"
		}
	}
}

// find returns the first series matching name and every given label.
func (n *nodeState) find(name string, labels map[string]string) *seriesEntry {
	for _, k := range n.order {
		e := n.series[k]
		if e.Name != name {
			continue
		}
		ok := true
		for lk, lv := range labels {
			if e.Labels[lk] != lv {
				ok = false
				break
			}
		}
		if ok {
			return e
		}
	}
	return nil
}

// lastValue returns the latest reading of a metric (ok=false when the
// metric was never scraped).
func (n *nodeState) lastValue(name string, labels map[string]string) (float64, bool) {
	e := n.find(name, labels)
	if e == nil {
		return 0, false
	}
	p, ok := e.S.Last()
	return p.V, ok
}

// Monitor scrapes a fleet of sources, keeps rolling metric history,
// and grades every node and coordinator shard against the health/SLO
// model each round. It is the engine under cmd/rpcv-mon and under the
// cluster harness's in-process fleet view.
type Monitor struct {
	cfg Config

	mu          sync.Mutex
	nodes       map[proto.NodeID]*nodeState
	ids         []proto.NodeID // stable display order
	last        FleetVerdict
	rounds      int
	worst       Level
	deaths      int // transitions into LevelDown
	bundles     []string
	lastCapture time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a Monitor over cfg.Sources. Call Poll for synchronous
// rounds (simulation, tests) or Start for a wall-clock scrape loop.
func New(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.History <= 0 {
		cfg.History = 512
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 15 * cfg.Interval
	}
	if cfg.BundleCooldown <= 0 {
		cfg.BundleCooldown = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Monitor{
		cfg:   cfg,
		nodes: make(map[proto.NodeID]*nodeState, len(cfg.Sources)),
		stop:  make(chan struct{}),
	}
	for _, src := range cfg.Sources {
		m.nodes[src.ID()] = &nodeState{src: src, series: map[string]*seriesEntry{}}
		m.ids = append(m.ids, src.ID())
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	return m
}

// Poll runs one synchronous round: scrape every source concurrently,
// fold the samples into history, evaluate the model, and fire the
// flight recorder on death or breach transitions. at stamps the round
// (virtual time under simulation, time.Now from the scrape loop).
func (m *Monitor) Poll(at time.Time) FleetVerdict {
	type result struct {
		id  proto.NodeID
		sc  *Scrape
		err error
	}
	m.mu.Lock()
	srcs := make([]Source, 0, len(m.ids))
	for _, id := range m.ids {
		srcs = append(srcs, m.nodes[id].src)
	}
	timeout := m.cfg.Timeout
	m.mu.Unlock()

	results := make([]result, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			sc, err := src.Scrape(timeout)
			results[i] = result{id: src.ID(), sc: sc, err: err}
		}(i, src)
	}
	wg.Wait()

	m.mu.Lock()
	prev := m.last
	for _, r := range results {
		st := m.nodes[r.id]
		if r.err != nil {
			st.fails++
			st.lastErr = r.err
			continue
		}
		st.fails, st.lastErr = 0, nil
		st.last = r.sc
		st.record(at, r.sc.Samples, m.cfg.History)
		if up, ok := st.lastValue("rpcv_uptime_seconds", nil); ok {
			if up < st.uptime {
				st.starts++
				m.cfg.Logf("fleet: node %s restarted (uptime %.1fs -> %.1fs)", r.id, st.uptime, up)
			}
			st.uptime = up
		}
	}
	verdict := m.evaluate(at)
	m.last = verdict
	m.rounds++
	if verdict.Level > m.worst {
		m.worst = verdict.Level
	}
	reason := m.captureReason(prev, verdict)
	m.mu.Unlock()

	if reason != "" && m.cfg.BundleDir != "" {
		if dir, err := m.CaptureBundle(reason); err != nil {
			m.cfg.Logf("fleet: bundle capture (%s): %v", reason, err)
		} else {
			m.cfg.Logf("fleet: captured post-mortem bundle %s (%s)", dir, reason)
		}
	}
	if m.cfg.OnVerdict != nil {
		m.cfg.OnVerdict(verdict)
	}
	return verdict
}

// evaluate grades the fleet from current history. Caller holds mu.
func (m *Monitor) evaluate(at time.Time) FleetVerdict {
	v := FleetVerdict{At: at}
	win := m.cfg.Window
	slo := m.cfg.SLO

	type shardAgg struct {
		members []proto.NodeID
		depth   float64
		requeue float64
		p99     float64
		burn    float64
	}
	shards := map[int]*shardAgg{}

	for _, id := range m.ids {
		st := m.nodes[id]
		nv := NodeVerdict{Node: id, Role: st.role, Restarts: st.starts, ScrapeFailures: st.fails}
		if st.last != nil {
			nv.LastScrape = st.last.At
		}
		flag := func(l Level, format string, args ...any) {
			if l > nv.Level {
				nv.Level = l
			}
			nv.Reasons = append(nv.Reasons, fmt.Sprintf(format, args...))
		}

		switch {
		case st.fails >= m.cfg.DownAfter:
			flag(LevelDown, "unreachable: %d consecutive scrape failures (last: %v)", st.fails, st.lastErr)
		case st.fails > 0:
			flag(LevelWarn, "scrape failing: %v", st.lastErr)
		case st.last == nil:
			flag(LevelWarn, "never scraped")
		case !st.last.Healthy:
			flag(LevelCritical, "liveness probe failing: %s", st.last.HealthDetail)
		}

		// Per-node SLO rules only make sense while the node answers.
		if nv.Level < LevelDown && st.last != nil {
			if st.starts > 0 {
				nv.Reasons = append(nv.Reasons, fmt.Sprintf("restarted %d time(s)", st.starts))
				if nv.Level < LevelWarn {
					nv.Level = LevelWarn
				}
			}
			if slo.MaxRedialRate > 0 {
				if e := st.find("rpcv_transport_redials_total", nil); e != nil {
					if r, ok := e.S.Rate(win); ok && r > slo.MaxRedialRate {
						flag(LevelWarn, "redial rate %.2f/s exceeds %.2f/s", r, slo.MaxRedialRate)
					}
				}
			}
			if slo.MaxShedRate > 0 {
				if e := st.find("rpcv_transport_sheds_total", nil); e != nil {
					if r, ok := e.S.Rate(win); ok && r > slo.MaxShedRate {
						flag(LevelWarn, "shed rate %.2f/s exceeds %.2f/s", r, slo.MaxShedRate)
					}
				}
			}
			if slo.WALCommitP99 > 0 {
				if e := st.find("rpcv_store_write_latency_ns", map[string]string{"quantile": "0.99"}); e != nil {
					target := float64(slo.WALCommitP99.Nanoseconds())
					p, _ := e.S.Last()
					burn, _ := e.S.Above(target, win)
					switch {
					case burn >= 0.5:
						flag(LevelCritical, "wal commit p99 %v above %v for %d%% of window",
							time.Duration(int64(p.V)).Round(time.Microsecond), slo.WALCommitP99, int(burn*100))
					case p.V > target:
						flag(LevelWarn, "wal commit p99 %v exceeds %v",
							time.Duration(int64(p.V)).Round(time.Microsecond), slo.WALCommitP99)
					}
				}
			}
		}

		// Fold coordinators into their shard aggregate.
		if st.role == "coordinator" && nv.Level < LevelDown {
			idx := 0
			if si, ok := st.lastValue("rpcv_coord_shard_index", nil); ok {
				idx = int(si)
			}
			agg := shards[idx]
			if agg == nil {
				agg = &shardAgg{}
				shards[idx] = agg
			}
			agg.members = append(agg.members, id)
			if d, ok := st.lastValue("rpcv_sched_queue_depth", nil); ok {
				agg.depth += d
			}
			if e := st.find("rpcv_coord_requeues_total", nil); e != nil {
				if r, ok := e.S.Rate(win); ok {
					agg.requeue += r
				}
			}
			if e := st.find("rpcv_coord_dispatch_latency_ns", map[string]string{"quantile": "0.99"}); e != nil {
				if p, ok := e.S.Last(); ok && p.V > agg.p99 {
					agg.p99 = p.V
				}
				if slo.DispatchP99 > 0 {
					if b, ok := e.S.Above(float64(slo.DispatchP99.Nanoseconds()), win); ok && b > agg.burn {
						agg.burn = b
					}
				}
			}
		}

		if v.Level < nv.Level {
			v.Level = nv.Level
		}
		v.Nodes = append(v.Nodes, nv)
	}

	idxs := make([]int, 0, len(shards))
	for i := range shards {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		agg := shards[i]
		sv := ShardVerdict{
			Shard: i, Members: agg.members,
			QueueDepth: agg.depth, RequeueRate: agg.requeue,
			DispatchP99: time.Duration(int64(agg.p99)), Burn: agg.burn,
		}
		flag := func(l Level, format string, args ...any) {
			if l > sv.Level {
				sv.Level = l
			}
			sv.Reasons = append(sv.Reasons, fmt.Sprintf(format, args...))
		}
		if slo.MaxQueueDepth > 0 {
			switch {
			case agg.depth > 2*slo.MaxQueueDepth:
				flag(LevelCritical, "queue depth %.0f more than double the %.0f limit", agg.depth, slo.MaxQueueDepth)
			case agg.depth > slo.MaxQueueDepth:
				flag(LevelWarn, "queue depth %.0f exceeds %.0f", agg.depth, slo.MaxQueueDepth)
			}
		}
		if slo.MaxRequeueRate > 0 && agg.requeue > slo.MaxRequeueRate {
			flag(LevelWarn, "requeue rate %.2f/s exceeds %.2f/s", agg.requeue, slo.MaxRequeueRate)
		}
		if slo.DispatchP99 > 0 {
			target := float64(slo.DispatchP99.Nanoseconds())
			switch {
			case agg.burn >= 0.5:
				flag(LevelCritical, "dispatch p99 above %v for %d%% of window", slo.DispatchP99, int(agg.burn*100))
			case agg.p99 > target:
				flag(LevelWarn, "dispatch p99 %v exceeds %v", sv.DispatchP99.Round(time.Microsecond), slo.DispatchP99)
			}
		}
		if v.Level < sv.Level {
			v.Level = sv.Level
		}
		v.Shards = append(v.Shards, sv)
	}
	return v
}

// captureReason decides whether this round's transition warrants an
// automatic flight bundle. Caller holds mu.
func (m *Monitor) captureReason(prev, cur FleetVerdict) string {
	if m.cfg.BundleDir == "" {
		return ""
	}
	if !m.lastCapture.IsZero() && cur.At.Sub(m.lastCapture) < m.cfg.BundleCooldown {
		return ""
	}
	for _, n := range cur.Nodes {
		p, had := prev.Node(n.Node)
		if n.Level >= LevelDown && (!had || p.Level < LevelDown) {
			m.lastCapture = cur.At
			return fmt.Sprintf("node-%s-down", n.Node)
		}
		if n.Level == LevelCritical && (!had || p.Level < LevelCritical) {
			m.lastCapture = cur.At
			return fmt.Sprintf("node-%s-critical", n.Node)
		}
	}
	for _, s := range cur.Shards {
		if s.Level < LevelCritical {
			continue
		}
		was := false
		for _, ps := range prev.Shards {
			if ps.Shard == s.Shard && ps.Level >= LevelCritical {
				was = true
			}
		}
		if !was {
			m.lastCapture = cur.At
			return fmt.Sprintf("shard-%d-critical", s.Shard)
		}
	}
	return ""
}

// Start launches the wall-clock scrape loop (one Poll per Interval,
// first round immediately). Close stops it.
func (m *Monitor) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		m.Poll(time.Now())
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Poll(time.Now())
			}
		}
	}()
}

// Close stops the scrape loop (idempotent).
func (m *Monitor) Close() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Verdict returns the latest round's verdict.
func (m *Monitor) Verdict() FleetVerdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// WorstSeen returns the worst fleet level any round produced.
func (m *Monitor) WorstSeen() Level {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.worst
}

// Rounds returns how many Poll rounds have run.
func (m *Monitor) Rounds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds
}

// Bundles lists the flight-bundle directories captured so far.
func (m *Monitor) Bundles() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.bundles...)
}

// History snapshots every node's retained metric rings:
// node → metric key → points, oldest first. This is what flight
// bundles persist as history.json.
func (m *Monitor) History() map[proto.NodeID]map[string][]Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[proto.NodeID]map[string][]Point, len(m.nodes))
	for id, st := range m.nodes {
		hm := make(map[string][]Point, len(st.series))
		for k, e := range st.series {
			hm[k] = e.S.Points()
		}
		out[id] = hm
	}
	return out
}
