// Package fleet is the cluster-level observability plane: it scrapes
// the per-node admin endpoints PR 6 gave every daemon (/metrics,
// /healthz, /statusz, /tracez), keeps fixed-capacity rolling
// time-series rings per metric with counter→rate derivation, evaluates
// a declarative health/SLO model into per-node and per-shard verdicts,
// and acts as a flight recorder: on node death, SLO breach or demand
// it captures a post-mortem bundle — every node's span ring assembled
// into end-to-end timelines, the metrics history, status snapshots and
// pprof profiles — into a timestamped directory.
//
// cmd/rpcv-mon is the daemon built on it; internal/cluster and the
// wall-clock compare experiments embed the same Monitor over their
// shared in-process registries, so chaos runs get fleet verdicts and
// bundles without HTTP.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric reading: a name, its label set and the
// value. Histogram summaries arrive as their exposition series — the
// quantile-labeled samples plus <name>_sum and <name>_count — which is
// exactly how the health rules consume them.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// Key is the sample's canonical identity: name plus sorted labels.
// Ring buffers and dedup both key on it.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseMetrics parses Prometheus text exposition (version 0.0.4, the
// format obs.Registry.WritePrometheus emits) into samples plus the
// # TYPE declarations. Unknown comment lines are skipped; a malformed
// sample line is an error — the scraper treats a half-garbled scrape
// as failed rather than ingesting nonsense.
func ParseMetrics(r io.Reader) (samples []Sample, types map[string]string, err error) {
	types = map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, perr := parseSampleLine(line)
		if perr != nil {
			return nil, nil, fmt.Errorf("fleet: metrics line %d: %w", lineNo, perr)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("fleet: metrics read: %w", err)
	}
	return samples, types, nil
}

// parseSampleLine parses `name{k="v",...} value`. Label values use the
// exposition escapes \\, \" and \n (the inverse of the registry's
// escapeLabel).
func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	// A timestamp may trail the value; WritePrometheus never emits one
	// but the parser accepts the full format.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && (c >= '0' && c <= '9')
}

// parseLabels parses `{k="v",...}` off the front of s, returning the
// label map and the remainder after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			return nil, "", fmt.Errorf("malformed label name at %q", s[start:])
		}
		key := s[start:i]
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %s: missing opening quote", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					// Unknown escape: the format says keep it literally.
					val.WriteByte('\\')
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}
