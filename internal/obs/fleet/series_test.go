package fleet

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

func TestSeriesRingWraps(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 5; i++ {
		s.Add(at(i), float64(i))
	}
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	for i, want := range []float64{2, 3, 4} {
		if pts[i].V != want {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i].V, want)
		}
	}
	if last, ok := s.Last(); !ok || last.V != 4 {
		t.Errorf("Last = %+v ok=%v, want 4", last, ok)
	}
}

func TestSeriesRate(t *testing.T) {
	s := NewSeries(16)
	// A counter climbing 10/s for 4 seconds.
	for i := 0; i <= 4; i++ {
		s.Add(at(i), float64(10*i))
	}
	if r, ok := s.Rate(0); !ok || r != 10 {
		t.Errorf("Rate(all) = %v ok=%v, want 10", r, ok)
	}
	// Windowed to the last 2s it is still 10/s.
	if r, ok := s.Rate(2 * time.Second); !ok || r != 10 {
		t.Errorf("Rate(2s) = %v ok=%v, want 10", r, ok)
	}
	// One point is not a rate.
	one := NewSeries(4)
	one.Add(at(0), 5)
	if _, ok := one.Rate(0); ok {
		t.Error("single-point rate should not be ok")
	}
}

func TestSeriesRateToleratesCounterReset(t *testing.T) {
	s := NewSeries(16)
	s.Add(at(0), 100)
	s.Add(at(1), 110) // +10
	s.Add(at(2), 3)   // restart: counter back near zero, contributes +3
	s.Add(at(3), 13)  // +10
	r, ok := s.Rate(0)
	if !ok {
		t.Fatal("rate not ok")
	}
	want := (10.0 + 3.0 + 10.0) / 3.0
	if r != want {
		t.Errorf("Rate = %v, want %v (reset must not go negative)", r, want)
	}
}

func TestSeriesAbove(t *testing.T) {
	s := NewSeries(16)
	for i, v := range []float64{1, 9, 9, 9} {
		s.Add(at(i), v)
	}
	if frac, ok := s.Above(5, 0); !ok || frac != 0.75 {
		t.Errorf("Above(all) = %v ok=%v, want 0.75", frac, ok)
	}
	// Last 2 seconds hold only the two trailing 9s.
	if frac, ok := s.Above(5, 2*time.Second); !ok || frac != 1 {
		t.Errorf("Above(2s) = %v ok=%v, want 1", frac, ok)
	}
	empty := NewSeries(4)
	if _, ok := empty.Above(5, 0); ok {
		t.Error("empty Above should not be ok")
	}
}
