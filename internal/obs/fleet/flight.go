package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/proto"
)

// profiles captured into every bundle. The debug=1 text forms need no
// tooling to read in a post-mortem.
var bundleProfiles = []string{"goroutine", "heap"}

// CaptureBundle writes a post-mortem flight bundle — the answer to
// "what was the fleet doing when it broke" — into a fresh timestamped
// subdirectory of Config.BundleDir and returns its path:
//
//	verdict.json        the fleet verdict at capture time
//	history.json        every node's metric rings (node → metric → points)
//	timelines.json      all nodes' span rings assembled into per-call
//	                    submit→…→ack timelines (obs.Assemble)
//	trace.chrome.json   the same timelines as Chrome trace_event JSON
//	                    (load in chrome://tracing or Perfetto)
//	metrics/<node>.txt  each node's last raw /metrics exposition
//	statusz/<node>.json each node's /statusz snapshot (HTTP sources)
//	pprof/<node>-<profile>.txt  goroutine and heap profiles (HTTP sources)
//
// Dead nodes naturally contribute their last successful scrape's
// history but no fresh dumps — that is the point of keeping rings in
// the monitor rather than only querying live nodes.
//
// The monitor calls this automatically on death/breach transitions
// when BundleDir is set; rpcv-mon also triggers it on SIGQUIT and via
// POST /capture.
func (m *Monitor) CaptureBundle(reason string) (string, error) {
	if m.cfg.BundleDir == "" {
		return "", fmt.Errorf("fleet: no bundle directory configured")
	}
	stamp := time.Now().Format("20060102-150405.000")
	dir := filepath.Join(m.cfg.BundleDir, stamp+"-"+sanitize(reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	m.mu.Lock()
	verdict := m.last
	ids := append([]proto.NodeID(nil), m.ids...)
	srcs := make(map[proto.NodeID]Source, len(ids))
	raws := make(map[proto.NodeID][]byte, len(ids))
	for _, id := range ids {
		st := m.nodes[id]
		srcs[id] = st.src
		if st.last != nil && len(st.last.Raw) > 0 {
			raws[id] = st.last.Raw
		}
	}
	timeout := m.cfg.Timeout
	m.mu.Unlock()

	writeJSON := func(name string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, name), append(b, '\n'), 0o644)
	}
	if err := writeJSON("verdict.json", verdict); err != nil {
		return dir, err
	}
	if err := writeJSON("history.json", m.History()); err != nil {
		return dir, err
	}

	// Span rings from every node that still answers, assembled into
	// end-to-end call timelines.
	var dumps [][]obs.Span
	for _, id := range ids {
		ts, ok := srcs[id].(TraceSource)
		if !ok {
			continue
		}
		spans, err := ts.Spans(timeout)
		if err != nil {
			m.cfg.Logf("fleet: bundle: spans from %s: %v", id, err)
			continue
		}
		if len(spans) > 0 {
			dumps = append(dumps, spans)
		}
	}
	timelines := obs.Assemble(dumps...)
	if err := writeJSON("timelines.json", timelines); err != nil {
		return dir, err
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.chrome.json"), obs.ChromeTrace(timelines), 0o644); err != nil {
		return dir, err
	}

	if len(raws) > 0 {
		mdir := filepath.Join(dir, "metrics")
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			return dir, err
		}
		for id, raw := range raws {
			if err := os.WriteFile(filepath.Join(mdir, sanitize(string(id))+".txt"), raw, 0o644); err != nil {
				return dir, err
			}
		}
	}

	for _, id := range ids {
		ds, ok := srcs[id].(DumpSource)
		if !ok {
			continue
		}
		if body, err := ds.Statusz(timeout); err == nil {
			sdir := filepath.Join(dir, "statusz")
			if err := os.MkdirAll(sdir, 0o755); err != nil {
				return dir, err
			}
			if err := os.WriteFile(filepath.Join(sdir, sanitize(string(id))+".json"), body, 0o644); err != nil {
				return dir, err
			}
		} else {
			m.cfg.Logf("fleet: bundle: statusz from %s: %v", id, err)
		}
		for _, prof := range bundleProfiles {
			body, err := ds.Profile(prof, timeout)
			if err != nil {
				m.cfg.Logf("fleet: bundle: pprof/%s from %s: %v", prof, id, err)
				continue
			}
			pdir := filepath.Join(dir, "pprof")
			if err := os.MkdirAll(pdir, 0o755); err != nil {
				return dir, err
			}
			name := fmt.Sprintf("%s-%s.txt", sanitize(string(id)), prof)
			if err := os.WriteFile(filepath.Join(pdir, name), body, 0o644); err != nil {
				return dir, err
			}
		}
	}

	m.mu.Lock()
	m.bundles = append(m.bundles, dir)
	m.mu.Unlock()
	return dir, nil
}

// sanitize makes a reason or node ID safe as a path component.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}
