package fleet

import (
	"strings"
	"testing"
	"time"

	"rpcv/internal/obs"
)

// The golden contract between the registry's exposition writer and the
// fleet parser: everything WritePrometheus emits — counters, gauges,
// histogram quantile/_sum/_count series, escaped label values — must
// round-trip through ParseMetrics losslessly.
func TestParseRoundTripsWritePrometheus(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rpcv_test_ops_total", obs.L("node", "co"), obs.L("kind", "submit")).Add(42)
	// A label value exercising every escape the format defines, plus an
	// unknown escape sequence's raw ingredients (backslash-d survives
	// escaping as \\d and must come back as \d).
	nasty := "a\"b\nc\\d"
	reg.Gauge("rpcv_test_depth", obs.L("node", nasty)).Set(17.5)
	h := reg.Histogram("rpcv_test_lat_ns", obs.L("node", "co"))
	for i := 1; i <= 100; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, types, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseMetrics on WritePrometheus output: %v\n%s", err, b.String())
	}

	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if got, ok := byKey[`rpcv_test_ops_total{kind=submit,node=co}`]; !ok || got != 42 {
		t.Errorf("counter: got %v (present=%v), want 42; keys: %v", got, ok, keysOf(byKey))
	}
	if got, ok := byKey["rpcv_test_depth{node="+nasty+"}"]; !ok || got != 17.5 {
		t.Errorf("gauge with escaped label: got %v (present=%v)", got, ok)
	}

	// The histogram must arrive as its full summary family.
	snap := h.Snapshot()
	for key, want := range map[string]float64{
		`rpcv_test_lat_ns{node=co,quantile=0.5}`:  snap.P50,
		`rpcv_test_lat_ns{node=co,quantile=0.95}`: snap.P95,
		`rpcv_test_lat_ns{node=co,quantile=0.99}`: snap.P99,
		`rpcv_test_lat_ns_sum{node=co}`:           snap.Sum,
		`rpcv_test_lat_ns_count{node=co}`:         float64(snap.N),
	} {
		if got, ok := byKey[key]; !ok || got != want {
			t.Errorf("%s: got %v (present=%v), want %v", key, got, ok, want)
		}
	}

	for name, want := range map[string]string{
		"rpcv_test_ops_total": "counter",
		"rpcv_test_depth":     "gauge",
		"rpcv_test_lat_ns":    "summary",
	} {
		if types[name] != want {
			t.Errorf("# TYPE %s = %q, want %q", name, types[name], want)
		}
	}

	// And the parsed escaped value must equal the original string, not
	// its escaped rendering.
	found := false
	for _, s := range samples {
		if s.Name == "rpcv_test_depth" {
			found = true
			if s.Label("node") != nasty {
				t.Errorf("label value round-trip: got %q, want %q", s.Label("node"), nasty)
			}
		}
	}
	if !found {
		t.Error("gauge sample missing entirely")
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestParseAcceptsTimestampsAndComments(t *testing.T) {
	in := "# HELP x whatever\n# TYPE x counter\nx{a=\"b\"} 3 1699999999000\n\nx 4\n"
	samples, types, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].Value != 3 || samples[1].Value != 4 {
		t.Fatalf("samples = %+v", samples)
	}
	if types["x"] != "counter" {
		t.Fatalf("types = %v", types)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, in := range []string{
		"x{a=\"b} 1\n",     // unterminated label value
		"x{a=b} 1\n",       // unquoted label value
		"x{a=\"b\"} abc\n", // non-numeric value
		"{a=\"b\"} 1\n",    // no metric name
		"x{a=\"b\\\n",      // dangling escape
	} {
		if _, _, err := ParseMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMetrics(%q): want error, got none", in)
		}
	}
}

func TestSampleKeyIsCanonical(t *testing.T) {
	a := Sample{Name: "m", Labels: map[string]string{"x": "1", "y": "2"}}
	b := Sample{Name: "m", Labels: map[string]string{"y": "2", "x": "1"}}
	if a.Key() != b.Key() {
		t.Fatalf("key order-dependent: %q vs %q", a.Key(), b.Key())
	}
	if c := (Sample{Name: "m"}); c.Key() != "m" {
		t.Fatalf("unlabeled key = %q", c.Key())
	}
}
