package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"
)

// Handler serves the monitor's cluster view:
//
//	/clusterz        latest fleet verdict as JSON; ?format=text renders
//	                 the human table instead
//	/historyz        the full metric history rings as JSON
//	/healthz         200 when the latest fleet level is ok or warn,
//	                 503 with the level name otherwise — so a monitor
//	                 can itself sit behind a monitor
//	/capture         POST: capture a flight bundle now ("manual"
//	                 reason, or ?reason=...)
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/clusterz", func(w http.ResponseWriter, r *http.Request) {
		v := m.Verdict()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteText(w, v)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/historyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.History())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		v := m.Verdict()
		if v.Level >= LevelCritical {
			http.Error(w, "fleet "+v.Level.String(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/capture", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "manual"
		}
		dir, err := m.CaptureBundle(reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, dir)
	})
	return mux
}

// WriteText renders a verdict as the human-readable cluster table —
// the ?format=text face of /clusterz and the body of the live top
// view.
func WriteText(w io.Writer, v FleetVerdict) {
	fmt.Fprintf(w, "fleet %s", strings.ToUpper(v.Level.String()))
	if !v.At.IsZero() {
		fmt.Fprintf(w, " at %s", v.At.Format("15:04:05.000"))
	}
	fmt.Fprintf(w, " (%d nodes", len(v.Nodes))
	if len(v.Shards) > 0 {
		fmt.Fprintf(w, ", %d shards", len(v.Shards))
	}
	fmt.Fprintln(w, ")")

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tLEVEL\tSCRAPED\tDETAIL")
	for _, n := range v.Nodes {
		age := "-"
		if !n.LastScrape.IsZero() && !v.At.IsZero() {
			age = v.At.Sub(n.LastScrape).Round(100*time.Millisecond).String() + " ago"
		}
		role := n.Role
		if role == "" {
			role = "?"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			n.Node, role, n.Level, age, strings.Join(n.Reasons, "; "))
	}
	tw.Flush()

	if len(v.Shards) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SHARD\tMEMBERS\tLEVEL\tQUEUE\tREQUEUE/S\tDISPATCH P99\tBURN\tDETAIL")
		for _, s := range v.Shards {
			members := make([]string, len(s.Members))
			for i, mID := range s.Members {
				members[i] = string(mID)
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%.2f\t%s\t%d%%\t%s\n",
				s.Shard, strings.Join(members, ","), s.Level, s.QueueDepth, s.RequeueRate,
				s.DispatchP99.Round(time.Microsecond), int(s.Burn*100), strings.Join(s.Reasons, "; "))
		}
		tw.Flush()
	}
}

// Text renders WriteText into a string.
func Text(v FleetVerdict) string {
	var b strings.Builder
	WriteText(&b, v)
	return b.String()
}

// TopView renders the verdict preceded by an ANSI clear-and-home, so
// printing successive verdicts to a terminal gives a live top-style
// display (rpcv-mon -top).
func TopView(v FleetVerdict) string {
	return "\x1b[2J\x1b[H" + Text(v)
}
