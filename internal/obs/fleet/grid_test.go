package fleet_test

// The fleet acceptance test, the PR's headline scenario: a real TCP
// loopback grid (one coordinator, two servers, one client) under
// submission load, each node serving its admin endpoint, watched by a
// Monitor over HTTP sources exactly as cmd/rpcv-mon would. Killing the
// server that holds a dispatched task must flip that node unhealthy
// within two scrape rounds, fire an automatic flight bundle, and the
// post-mortem bundle must contain the assembled submit→ack timeline —
// requeue hop included — plus metrics history covering the kill.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/obs"
	"rpcv/internal/obs/fleet"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

func TestFleetGridKillAndFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP grid test")
	}
	const (
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	quiet := func(string, ...any) {}
	bundleDir := t.TempDir()

	var sources []fleet.Source
	serve := func(id proto.NodeID, o *obs.Observer, rtm *rt.Runtime) {
		adm, err := obs.ServeAdmin("127.0.0.1:0", o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { adm.Close() })
		adm.Health(func() error { return rtm.Ping(500 * time.Millisecond) })
		sources = append(sources, fleet.NewHTTPSource(id, adm.Addr()))
	}

	coObs := obs.New("co")
	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.CostModel{PerOp: 20 * time.Microsecond},
		Obs:              coObs,
	})
	rco, err := rt.Start(rt.Config{ID: "co", ListenAddr: "127.0.0.1:0",
		Handler: co, Logf: quiet, Obs: coObs})
	if err != nil {
		t.Fatal(err)
	}
	defer rco.Close()
	serve("co", coObs, rco)
	dir := rt.Directory{"co": rco.Addr()}

	servers := map[proto.NodeID]*rt.Runtime{}
	for i := 0; i < 2; i++ {
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		svObs := obs.New(id)
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Obs:              svObs,
		})
		rsv, err := rt.Start(rt.Config{ID: id, ListenAddr: "127.0.0.1:0",
			Handler: sv, Directory: dir, Logf: quiet, Obs: svObs})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { rsv.Close() }()
		rco.SetPeer(id, rsv.Addr())
		servers[id] = rsv
		serve(id, svObs, rsv)
	}

	results := make(chan proto.RPCSeq, 64)
	cliObs := obs.New("cli")
	cli := client.New(client.Config{
		User: "u", Session: 1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		OnResult:         func(res proto.Result, _ time.Time) { results <- res.Call.Seq },
		Obs:              cliObs,
	})
	rcli, err := rt.Start(rt.Config{ID: "cli", ListenAddr: "127.0.0.1:0",
		Handler: cli, Directory: dir, Logf: quiet, Obs: cliObs})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())
	serve("cli", cliObs, rcli)

	// The monitor over HTTP sources, poll-driven for determinism: one
	// Poll is one scrape round of every node.
	mon := fleet.New(fleet.Config{
		Sources:   sources,
		Interval:  100 * time.Millisecond,
		Timeout:   2 * time.Second,
		DownAfter: 2,
		BundleDir: bundleDir,
	})
	if v := mon.Poll(time.Now()); len(v.Nodes) != 4 {
		t.Fatalf("verdict covers %d nodes, want 4", len(v.Nodes))
	}
	if v := mon.Poll(time.Now()); v.Level != fleet.LevelOK {
		t.Fatalf("healthy grid graded %v: %+v", v.Level, v)
	}

	// Load: a burst of instant calls plus one slow timed call whose
	// server we kill mid-execution to provoke a requeue.
	const fast = 10
	var slowSeq proto.RPCSeq
	rcli.Do(func() {
		for i := 0; i < fast; i++ {
			cli.Submit("noop", nil, 0, 0)
		}
		slowSeq = cli.Submit("noop", nil, time.Second, 16)
	})

	// Learn which server holds the slow call from the coordinator's
	// dispatch span, then kill it abruptly.
	var victim proto.NodeID
	deadline := time.Now().Add(10 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		for _, sp := range coObs.Tracer().Dump() {
			if sp.Call.Seq == slowSeq && sp.Stage == obs.StageDispatch {
				victim = proto.NodeID(sp.Detail)
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("slow call was never dispatched")
	}
	rvictim, ok := servers[victim]
	if !ok {
		t.Fatalf("dispatch names unknown server %q", victim)
	}
	mon.Poll(time.Now()) // one more healthy round: pre-kill history
	killedAt := time.Now()
	rvictim.Close()

	// Within two scrape rounds the victim must grade unhealthy: its
	// admin endpoint still answers, but /healthz reports the stopped
	// event loop — the liveness probe doing its one job.
	mon.Poll(time.Now())
	v := mon.Poll(time.Now())
	nv, ok := v.Node(victim)
	if !ok || nv.Level < fleet.LevelCritical {
		t.Fatalf("victim %s graded %v after two rounds, want >= critical: %+v", victim, nv.Level, v)
	}
	if v.Level < fleet.LevelCritical {
		t.Fatalf("fleet level %v, want >= critical", v.Level)
	}
	// The unhealthy transition must have auto-captured a bundle.
	if len(mon.Bundles()) == 0 {
		t.Fatal("no automatic flight bundle after the kill")
	}

	// /clusterz reflects the verdict over HTTP.
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	var served fleet.FleetVerdict
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/clusterz")), &served); err != nil {
		t.Fatal(err)
	}
	if sn, ok := served.Node(victim); !ok || sn.Level < fleet.LevelCritical {
		t.Fatalf("/clusterz victim verdict = %+v", sn)
	}

	// All calls, including the requeued one, complete on the survivor.
	got := map[proto.RPCSeq]bool{}
	deadline = time.Now().Add(30 * time.Second)
	for len(got) < fast+1 && time.Now().Before(deadline) {
		select {
		case seq := <-results:
			got[seq] = true
		case <-time.After(time.Second):
		}
	}
	if !got[slowSeq] {
		t.Fatalf("slow call %d never completed after server kill (%d/%d results)",
			slowSeq, len(got), fast+1)
	}

	// Final post-mortem: the bundle assembled after completion holds
	// the slow call's whole story. The dead server's admin still serves
	// its span ring — exactly why bundles join every node's /tracez.
	mon.Poll(time.Now())
	final, err := mon.CaptureBundle("test-final")
	if err != nil {
		t.Fatal(err)
	}
	var timelines []obs.Timeline
	b, err := os.ReadFile(filepath.Join(final, "timelines.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &timelines); err != nil {
		t.Fatal(err)
	}
	var slow *obs.Timeline
	for _, tl := range timelines {
		if tl.Call.Seq == slowSeq {
			cp := tl
			slow = &cp
			break
		}
	}
	if slow == nil {
		t.Fatalf("bundle timelines miss the slow call (have %d timelines)", len(timelines))
	}
	for _, stage := range []obs.Stage{obs.StageSubmit, obs.StageEnqueue,
		obs.StageDispatch, obs.StageRequeue, obs.StageExec,
		obs.StageResult, obs.StageAck} {
		if !slow.Has(stage) {
			t.Errorf("bundle timeline misses %s: %v", stage, slow.Stages())
		}
	}

	// Metrics history must cover the kill: the victim's rings hold
	// points from before it died.
	var hist map[string]map[string][]fleet.Point
	b, err = os.ReadFile(filepath.Join(final, "history.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatal(err)
	}
	preKill := false
	for _, pts := range hist[string(victim)] {
		for _, p := range pts {
			if p.At.Before(killedAt) {
				preKill = true
			}
		}
	}
	if !preKill {
		t.Fatal("victim's metric history holds no pre-kill points")
	}
	// And the raw exposition plus statusz/pprof dumps rode along.
	if _, err := os.Stat(filepath.Join(final, "metrics", string(victim)+".txt")); err != nil {
		t.Errorf("bundle missing victim metrics: %v", err)
	}
	if _, err := os.Stat(filepath.Join(final, "statusz", "co.json")); err != nil {
		t.Errorf("bundle missing coordinator statusz: %v", err)
	}
	if _, err := os.Stat(filepath.Join(final, "pprof", "co-goroutine.txt")); err != nil {
		t.Errorf("bundle missing coordinator goroutine profile: %v", err)
	}
}
