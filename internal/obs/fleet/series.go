package fleet

import (
	"encoding/json"
	"time"
)

// Point is one observation of one metric at one scrape.
type Point struct {
	At time.Time `json:"at"`
	V  float64   `json:"v"`
}

// Series is a fixed-capacity ring of Points: constant memory per
// metric, the most recent History scrapes win. It is the monitor's
// whole storage model — enough recorded history to reconstruct the
// last minutes before a failure, never more.
type Series struct {
	cap  int
	pts  []Point // grows to cap, then wraps
	next int
}

// NewSeries creates a ring holding at most capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 1
	}
	return &Series{cap: capacity}
}

// Add appends one observation (overwriting the oldest at capacity).
func (s *Series) Add(at time.Time, v float64) {
	p := Point{At: at, V: v}
	if len(s.pts) < s.cap {
		s.pts = append(s.pts, p)
	} else {
		s.pts[s.next] = p
	}
	s.next = (s.next + 1) % s.cap
}

// Points returns the retained observations, oldest first.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.pts))
	if len(s.pts) == s.cap {
		out = append(out, s.pts[s.next:]...)
	}
	return append(out, s.pts[:s.next]...)
}

// Last returns the most recent observation.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.pts) - 1
	}
	return s.pts[i], true
}

// Rate derives a per-second rate from a counter series over the most
// recent window (the whole ring when window <= 0). Counter resets — a
// value dropping, as after a node restart — contribute the post-reset
// value as the increase, so a restarted node's rate stays meaningful
// instead of going hugely negative. ok is false with fewer than two
// points in the window.
func (s *Series) Rate(window time.Duration) (perSec float64, ok bool) {
	pts := s.Points()
	if len(pts) < 2 {
		return 0, false
	}
	if window > 0 {
		cut := pts[len(pts)-1].At.Add(-window)
		lo := 0
		for lo < len(pts) && pts[lo].At.Before(cut) {
			lo++
		}
		pts = pts[lo:]
		if len(pts) < 2 {
			return 0, false
		}
	}
	var inc float64
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			// Reset: the counter restarted from ~0; everything it now
			// shows accumulated since the reset.
			d = pts[i].V
		}
		inc += d
	}
	dt := pts[len(pts)-1].At.Sub(pts[0].At).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return inc / dt, true
}

// Above returns the fraction of window points whose value exceeds
// limit — the SLO burn of a quantile series against its target. ok is
// false when the window holds no points.
func (s *Series) Above(limit float64, window time.Duration) (frac float64, ok bool) {
	pts := s.Points()
	if window > 0 && len(pts) > 0 {
		cut := pts[len(pts)-1].At.Add(-window)
		lo := 0
		for lo < len(pts) && pts[lo].At.Before(cut) {
			lo++
		}
		pts = pts[lo:]
	}
	if len(pts) == 0 {
		return 0, false
	}
	n := 0
	for _, p := range pts {
		if p.V > limit {
			n++
		}
	}
	return float64(n) / float64(len(pts)), true
}

// MarshalJSON renders the series as its point list (oldest first), so
// flight-bundle history files are plain arrays.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Points())
}
