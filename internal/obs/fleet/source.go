package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/proto"
)

// Scrape is one round's reading of one node.
type Scrape struct {
	At      time.Time
	Samples []Sample
	Raw     []byte // the exposition text as served (bundles keep it verbatim)
	// Healthy mirrors the node's liveness probe (/healthz, or an
	// in-process check): false means the node answered but declared
	// itself stalled. A node that does not answer at all is a scrape
	// error, not an unhealthy scrape.
	Healthy      bool
	HealthDetail string
}

// Source is one node as the monitor sees it. Scrape must complete (or
// fail) within the given timeout.
type Source interface {
	ID() proto.NodeID
	Scrape(timeout time.Duration) (*Scrape, error)
}

// TraceSource is the optional span-ring face of a Source; the flight
// recorder assembles timelines from every source that has one.
type TraceSource interface {
	Spans(timeout time.Duration) ([]obs.Span, error)
}

// DumpSource is the optional deep-dump face of a Source: raw /statusz
// and pprof profiles for flight bundles.
type DumpSource interface {
	Statusz(timeout time.Duration) ([]byte, error)
	Profile(name string, timeout time.Duration) ([]byte, error)
}

// ---------------------------------------------------------------------
// HTTP source: a node's -admin endpoint
// ---------------------------------------------------------------------

// HTTPSource scrapes one daemon's admin endpoint ("host:port" or a
// full "http://host:port" base).
type HTTPSource struct {
	Node proto.NodeID
	Base string
}

// NewHTTPSource normalizes addr into a source for node.
func NewHTTPSource(node proto.NodeID, addr string) *HTTPSource {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &HTTPSource{Node: node, Base: strings.TrimRight(addr, "/")}
}

func (h *HTTPSource) ID() proto.NodeID { return h.Node }

func (h *HTTPSource) get(path string, timeout time.Duration) (int, []byte, error) {
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Get(h.Base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// Scrape fetches /metrics and /healthz. An unreachable or malformed
// /metrics fails the scrape; a 503 /healthz succeeds but reports the
// node unhealthy with the server's reason.
func (h *HTTPSource) Scrape(timeout time.Duration) (*Scrape, error) {
	code, body, err := h.get("/metrics", timeout)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", code)
	}
	samples, _, err := ParseMetrics(strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	sc := &Scrape{At: time.Now(), Samples: samples, Raw: body, Healthy: true}
	hcode, hbody, herr := h.get("/healthz", timeout)
	switch {
	case herr != nil:
		sc.Healthy, sc.HealthDetail = false, herr.Error()
	case hcode != http.StatusOK:
		sc.Healthy, sc.HealthDetail = false, strings.TrimSpace(string(hbody))
	}
	return sc, nil
}

// Spans fetches and decodes /tracez.
func (h *HTTPSource) Spans(timeout time.Duration) ([]obs.Span, error) {
	code, body, err := h.get("/tracez", timeout)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/tracez status %d", code)
	}
	var spans []obs.Span
	if err := json.Unmarshal(body, &spans); err != nil {
		return nil, fmt.Errorf("/tracez: %w", err)
	}
	return spans, nil
}

// Statusz fetches the raw /statusz JSON.
func (h *HTTPSource) Statusz(timeout time.Duration) ([]byte, error) {
	code, body, err := h.get("/statusz", timeout)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/statusz status %d", code)
	}
	return body, nil
}

// Profile fetches one pprof profile in its debug text form.
func (h *HTTPSource) Profile(name string, timeout time.Duration) ([]byte, error) {
	code, body, err := h.get("/debug/pprof/"+name+"?debug=1", timeout)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/debug/pprof/%s status %d", name, code)
	}
	return body, nil
}

// ---------------------------------------------------------------------
// In-process sources: shared registries, simulated clusters
// ---------------------------------------------------------------------

// FuncSource adapts in-process state to the Source contract: the
// cluster harness and the wall-clock experiments monitor their nodes
// without HTTP by fetching samples straight from a shared registry and
// answering liveness from the harness's own knowledge (a crashed sim
// node, a closed runtime).
type FuncSource struct {
	Node proto.NodeID
	// Fetch returns the node's current samples (histograms expanded as
	// by SamplesFromRegistry).
	Fetch func() ([]Sample, error)
	// Health reports liveness; nil means always healthy.
	Health func() error
	// Trace returns the node's span dump for flight bundles; nil means
	// no spans.
	Trace func() []obs.Span
}

func (f *FuncSource) ID() proto.NodeID { return f.Node }

func (f *FuncSource) Scrape(time.Duration) (*Scrape, error) {
	samples, err := f.Fetch()
	if err != nil {
		return nil, err
	}
	sc := &Scrape{At: time.Now(), Samples: samples, Healthy: true}
	if f.Health != nil {
		if err := f.Health(); err != nil {
			sc.Healthy, sc.HealthDetail = false, err.Error()
		}
	}
	return sc, nil
}

func (f *FuncSource) Spans(time.Duration) ([]obs.Span, error) {
	if f.Trace == nil {
		return nil, nil
	}
	return f.Trace(), nil
}

// SamplesFromRegistry reads one node's samples out of a shared
// registry (metrics labeled node="<id>", the experiment-harness
// convention). Histograms expand into the same series the text
// exposition carries — quantile samples plus _sum and _count — so the
// health rules see identical shapes from HTTP and in-process sources.
func SamplesFromRegistry(reg *obs.Registry, node proto.NodeID) []Sample {
	var out []Sample
	for _, s := range reg.Snapshot() {
		if s.Labels["node"] != string(node) {
			continue
		}
		if s.Hist != nil {
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", s.Hist.P50}, {"0.95", s.Hist.P95}, {"0.99", s.Hist.P99}} {
				lb := cloneLabels(s.Labels)
				lb["quantile"] = q.q
				out = append(out, Sample{Name: s.Name, Labels: lb, Value: q.v})
			}
			out = append(out,
				Sample{Name: s.Name + "_sum", Labels: cloneLabels(s.Labels), Value: s.Hist.Sum},
				Sample{Name: s.Name + "_count", Labels: cloneLabels(s.Labels), Value: float64(s.Hist.N)})
			continue
		}
		out = append(out, Sample{Name: s.Name, Labels: cloneLabels(s.Labels), Value: s.Value})
	}
	return out
}

// RegistryNodes lists the distinct node labels present in a shared
// registry, sorted — the discovery step for in-process fleets.
func RegistryNodes(reg *obs.Registry) []proto.NodeID {
	seen := map[string]bool{}
	for _, s := range reg.Snapshot() {
		if n := s.Labels["node"]; n != "" && !seen[n] {
			seen[n] = true
		}
	}
	out := make([]proto.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, proto.NodeID(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cloneLabels(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ParseTargets parses the rpcv-mon -nodes syntax "id=admin-addr,..."
// into HTTP sources.
func ParseTargets(s string) ([]Source, error) {
	var out []Source
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("fleet: malformed target %q (want id=admin-addr)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("fleet: duplicate target %q", id)
		}
		seen[id] = true
		out = append(out, NewHTTPSource(proto.NodeID(id), addr))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: no targets")
	}
	return out, nil
}
