package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"rpcv/internal/proto"
)

func callID(seq uint64) proto.CallID {
	return proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(seq)}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer("n1", 4)
	base := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		tr.EventAt(base.Add(time.Duration(i)), callID(uint64(i)), StageSubmit, "")
	}
	if got := tr.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	d := tr.Dump()
	if len(d) != 4 {
		t.Fatalf("Dump len = %d, want 4 (ring capacity)", len(d))
	}
	// Oldest retained first: spans 2,3,4,5.
	for i, sp := range d {
		if want := proto.RPCSeq(i + 2); sp.Call.Seq != want {
			t.Fatalf("dump[%d].Seq = %d, want %d", i, sp.Call.Seq, want)
		}
	}

	short := NewTracer("n2", 3)
	short.EventAt(base, callID(9), StageExec, "x")
	if d := short.Dump(); len(d) != 1 || d[0].Stage != StageExec || d[0].Node != "n2" {
		t.Fatalf("not-full dump = %+v", d)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer("n", 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Event(callID(uint64(i)), StageExec, "")
				_ = tr.Dump()
			}
		}(i)
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", tr.Total())
	}
}

// TestAssemble proves per-node dumps join into one causal timeline:
// the client saw submit/durable/ack, one coordinator saw
// enqueue/dispatch/requeue (a server died), another shard's
// coordinator saw the steal, the server saw exec. The assembled
// timeline must be complete and time-ordered with both hops intact.
func TestAssemble(t *testing.T) {
	base := time.Unix(1000, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	call := callID(1)

	cli := NewTracer("client", 16)
	cli.EventAt(at(0), call, StageSubmit, "noop")
	cli.EventAt(at(1), call, StageDurable, "submit log")
	cli.EventAt(at(100), call, StageAck, "result delivered")

	co := NewTracer("coord-a", 16)
	co.EventAt(at(2), call, StageEnqueue, "from client")
	co.EventAt(at(3), call, StageDispatch, "sv0")
	co.EventAt(at(40), call, StageRequeue, "")
	co.EventAt(at(50), call, StageSteal, "granted to shard 1")

	co2 := NewTracer("coord-b", 16)
	co2.EventAt(at(51), call, StageSteal, "stolen from coord-a")
	co2.EventAt(at(52), call, StageDispatch, "sv1")
	co2.EventAt(at(90), call, StageResult, "from sv1")

	sv := NewTracer("sv1", 16)
	sv.EventAt(at(80), call, StageExec, "2ms")

	// A second, unrelated call must come out as its own timeline.
	other := callID(2)
	cli.EventAt(at(5), other, StageSubmit, "")

	tls := Assemble(cli.Dump(), co.Dump(), co2.Dump(), sv.Dump())
	if len(tls) != 2 {
		t.Fatalf("timelines = %d, want 2", len(tls))
	}
	tl := tls[0]
	if tl.Call != call {
		t.Fatalf("first timeline call = %v, want %v", tl.Call, call)
	}
	want := []Stage{StageSubmit, StageDurable, StageEnqueue, StageDispatch,
		StageRequeue, StageSteal, StageSteal, StageDispatch, StageExec,
		StageResult, StageAck}
	got := tl.Stages()
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	if !tl.Has(StageRequeue) || !tl.Has(StageSteal) {
		t.Fatal("requeue and steal hops must survive assembly")
	}
	if sp, ok := tl.Stage(StageExec); !ok || sp.Node != "sv1" {
		t.Fatalf("exec span = %+v, %v", sp, ok)
	}
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].At.Before(tl.Spans[i-1].At) {
			t.Fatalf("spans out of order at %d: %+v", i, tl.Spans)
		}
	}
}

func TestAssembleTieBreaksByStageRank(t *testing.T) {
	// Same timestamp: causal rank must order submit before ack.
	at := time.Unix(2000, 0)
	call := callID(3)
	a := []Span{{Call: call, Stage: StageAck, Node: "c", At: at}}
	b := []Span{{Call: call, Stage: StageSubmit, Node: "c", At: at}}
	tl := Assemble(a, b)[0]
	if tl.Spans[0].Stage != StageSubmit || tl.Spans[1].Stage != StageAck {
		t.Fatalf("tie-break failed: %v", tl.Stages())
	}
}

func TestChromeTrace(t *testing.T) {
	base := time.Unix(3000, 0)
	call := callID(4)
	tr := NewTracer("n1", 8)
	tr.EventAt(base, call, StageSubmit, "")
	tr.EventAt(base.Add(time.Millisecond), call, StageAck, "")
	out := ChromeTrace(Assemble(tr.Dump()))

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, out)
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	counts := map[string]int{}
	for _, p := range phases {
		counts[p]++
	}
	// 1 complete event, 2 instants, 2 process_name metadata (calls + n1).
	if counts["X"] != 1 || counts["i"] != 2 || counts["M"] != 2 {
		t.Fatalf("event phases = %v", counts)
	}

	if string(ChromeTrace(nil)) != `{"traceEvents":[]}` {
		t.Fatal("empty trace must render an empty event array")
	}
}
