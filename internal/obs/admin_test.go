package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestAdminEndpoints(t *testing.T) {
	o := New("node-1")
	o.Registry().Counter("rpcv_test_total", L("node", "node-1")).Add(9)
	o.Tracer().EventAt(time.Unix(1, 0), callID(1), StageSubmit, "svc")

	adm, err := ServeAdmin("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	adm.Status("custom", func() any { return map[string]int{"answer": 42} })
	base := "http://" + adm.Addr()

	body, ct := get(t, base+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %q", body)
	}
	_ = ct

	body, ct = get(t, base+"/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	if !strings.Contains(body, `rpcv_test_total{node="node-1"} 9`) {
		t.Fatalf("metrics body:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	body, ct = get(t, base+"/statusz")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("statusz content type = %q", ct)
	}
	var status struct {
		Node     string                     `json:"node"`
		Metrics  []Sample                   `json:"metrics"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if status.Node != "node-1" || len(status.Metrics) == 0 {
		t.Fatalf("statusz = %+v", status)
	}
	if string(status.Sections["custom"]) == "" {
		t.Fatalf("statusz missing custom section: %s", body)
	}

	body, _ = get(t, base+"/tracez")
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("tracez JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Stage != StageSubmit {
		t.Fatalf("tracez = %+v", spans)
	}

	body, _ = get(t, base+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index:\n%.200s", body)
	}
}

func TestAdminEmptyTracez(t *testing.T) {
	adm, err := ServeAdmin("127.0.0.1:0", New("n"))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	body, _ := get(t, "http://"+adm.Addr()+"/tracez")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty tracez = %q, want []", body)
	}
}
