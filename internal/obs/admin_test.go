package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestAdminEndpoints(t *testing.T) {
	o := New("node-1")
	o.Registry().Counter("rpcv_test_total", L("node", "node-1")).Add(9)
	o.Tracer().EventAt(time.Unix(1, 0), callID(1), StageSubmit, "svc")

	adm, err := ServeAdmin("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	adm.Status("custom", func() any { return map[string]int{"answer": 42} })
	base := "http://" + adm.Addr()

	body, ct := get(t, base+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %q", body)
	}
	_ = ct

	body, ct = get(t, base+"/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	if !strings.Contains(body, `rpcv_test_total{node="node-1"} 9`) {
		t.Fatalf("metrics body:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	body, ct = get(t, base+"/statusz")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("statusz content type = %q", ct)
	}
	var status struct {
		Node     string                     `json:"node"`
		Metrics  []Sample                   `json:"metrics"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if status.Node != "node-1" || len(status.Metrics) == 0 {
		t.Fatalf("statusz = %+v", status)
	}
	if string(status.Sections["custom"]) == "" {
		t.Fatalf("statusz missing custom section: %s", body)
	}

	body, _ = get(t, base+"/tracez")
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("tracez JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Stage != StageSubmit {
		t.Fatalf("tracez = %+v", spans)
	}

	body, _ = get(t, base+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index:\n%.200s", body)
	}
}

func TestAdminHealthProbe(t *testing.T) {
	adm, err := ServeAdmin("127.0.0.1:0", New("n"))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + adm.Addr()

	var stalled error
	adm.Health(func() error { return stalled })

	if body, _ := get(t, base+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy probe = %q", body)
	}

	stalled = fmt.Errorf("event loop stalled")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled probe status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "event loop stalled") {
		t.Fatalf("503 body %q lacks the probe's reason", body)
	}
}

func TestAdminStatuszSectionPanicIsolated(t *testing.T) {
	adm, err := ServeAdmin("127.0.0.1:0", New("n"))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	adm.Status("fine", func() any { return "still here" })
	adm.Status("broken", func() any { panic("section exploded") })

	body, _ := get(t, "http://"+adm.Addr()+"/statusz")
	var status struct {
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if got := string(status.Sections["fine"]); !strings.Contains(got, "still here") {
		t.Fatalf("healthy section lost to neighbor's panic: %q", got)
	}
	var broken struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(status.Sections["broken"], &broken); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(broken.Error, "section exploded") {
		t.Fatalf("broken section error = %q", broken.Error)
	}
}

func TestAdminBuildInfoMetrics(t *testing.T) {
	adm, err := ServeAdmin("127.0.0.1:0", New("bi-node"))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	body, _ := get(t, "http://"+adm.Addr()+"/metrics")
	if !strings.Contains(body, `rpcv_build_info{`) ||
		!strings.Contains(body, `node="bi-node"`) ||
		!strings.Contains(body, `go="`+runtime.Version()+`"`) {
		t.Fatalf("metrics lack build info:\n%s", body)
	}
	if !strings.Contains(body, `rpcv_uptime_seconds{node="bi-node"}`) {
		t.Fatalf("metrics lack uptime gauge:\n%s", body)
	}
}

func TestAdminEmptyTracez(t *testing.T) {
	adm, err := ServeAdmin("127.0.0.1:0", New("n"))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	body, _ := get(t, "http://"+adm.Addr()+"/tracez")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty tracez = %q, want []", body)
	}
}
