package obs_test

// The observability acceptance test: a real TCP loopback grid (one
// coordinator, two servers, one client) serves /metrics, /statusz,
// /healthz and /debug/pprof/ on every node kind while under submission
// load, and the trace assembler reconstructs a complete submit -> ack
// timeline — including a requeue hop provoked by killing the server
// that holds a dispatched task — purely from per-node /tracez dumps
// fetched over HTTP.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
)

var gridExpositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+([eE][-+]?[0-9]+)?)$`)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

func tracezSpans(t *testing.T, base string) []obs.Span {
	t.Helper()
	var spans []obs.Span
	if err := json.Unmarshal([]byte(httpGet(t, base+"/tracez")), &spans); err != nil {
		t.Fatalf("tracez %s: %v", base, err)
	}
	return spans
}

func TestGridObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP grid test")
	}
	const (
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	quiet := func(string, ...any) {}

	admins := map[proto.NodeID]*obs.Admin{}
	serve := func(id proto.NodeID, o *obs.Observer) string {
		adm, err := obs.ServeAdmin("127.0.0.1:0", o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { adm.Close() })
		admins[id] = adm
		return "http://" + adm.Addr()
	}

	coObs := obs.New("co")
	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.CostModel{PerOp: 20 * time.Microsecond},
		Obs:              coObs,
	})
	rco, err := rt.Start(rt.Config{ID: "co", ListenAddr: "127.0.0.1:0",
		Handler: co, Logf: quiet, Obs: coObs})
	if err != nil {
		t.Fatal(err)
	}
	defer rco.Close()
	coURL := serve("co", coObs)
	dir := rt.Directory{"co": rco.Addr()}

	servers := map[proto.NodeID]*rt.Runtime{}
	for i := 0; i < 2; i++ {
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		svObs := obs.New(id)
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Obs:              svObs,
		})
		rsv, err := rt.Start(rt.Config{ID: id, ListenAddr: "127.0.0.1:0",
			Handler: sv, Directory: dir, Logf: quiet, Obs: svObs})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { rsv.Close() }()
		rco.SetPeer(id, rsv.Addr())
		servers[id] = rsv
		serve(id, svObs)
	}

	results := make(chan proto.RPCSeq, 64)
	cliObs := obs.New("cli")
	cli := client.New(client.Config{
		User: "u", Session: 1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		OnResult:         func(res proto.Result, _ time.Time) { results <- res.Call.Seq },
		Obs:              cliObs,
	})
	rcli, err := rt.Start(rt.Config{ID: "cli", ListenAddr: "127.0.0.1:0",
		Handler: cli, Directory: dir, Logf: quiet, Obs: cliObs})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())
	cliURL := serve("cli", cliObs)

	// Load: a burst of instant calls plus one slow timed call whose
	// server we will kill mid-execution to provoke a requeue.
	const fast = 10
	var slowSeq proto.RPCSeq
	rcli.Do(func() {
		for i := 0; i < fast; i++ {
			cli.Submit("noop", nil, 0, 0)
		}
		slowSeq = cli.Submit("noop", nil, time.Second, 16)
	})

	// Wait for the coordinator to dispatch the slow call, learn which
	// server holds it from the dispatch span's detail, and kill that
	// server abruptly. Heartbeat silence must then drive the requeue.
	var victim proto.NodeID
	deadline := time.Now().Add(10 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		for _, sp := range tracezSpans(t, coURL) {
			if sp.Call.Seq == slowSeq && sp.Stage == obs.StageDispatch {
				victim = proto.NodeID(sp.Detail)
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("slow call was never dispatched")
	}
	rvictim, ok := servers[victim]
	if !ok {
		t.Fatalf("dispatch names unknown server %q", victim)
	}
	rvictim.Close()

	// All calls, including the requeued one, must complete.
	got := map[proto.RPCSeq]bool{}
	deadline = time.Now().Add(30 * time.Second)
	for len(got) < fast+1 && time.Now().Before(deadline) {
		select {
		case seq := <-results:
			got[seq] = true
		case <-time.After(time.Second):
		}
	}
	if !got[slowSeq] {
		t.Fatalf("slow call %d never completed after server kill (%d/%d results)",
			slowSeq, len(got), fast+1)
	}

	// Every node kind serves the full endpoint set while the grid runs.
	for id, adm := range admins {
		base := "http://" + adm.Addr()
		if body := httpGet(t, base+"/healthz"); strings.TrimSpace(body) != "ok" {
			t.Errorf("%s /healthz = %q", id, body)
		}
		metrics := httpGet(t, base+"/metrics")
		for _, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
			if line != "" && !gridExpositionLine.MatchString(line) {
				t.Errorf("%s /metrics malformed line %q", id, line)
			}
		}
		var status map[string]any
		if err := json.Unmarshal([]byte(httpGet(t, base+"/statusz")), &status); err != nil {
			t.Errorf("%s /statusz: %v", id, err)
		}
		if body := httpGet(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
			t.Errorf("%s /debug/pprof/ not serving", id)
		}
	}

	// Per-kind counters made it to the exposition.
	for url, want := range map[string]string{
		coURL:  `rpcv_coord_submits_total{node="co"}`,
		cliURL: `rpcv_client_submitted_total{node="cli"}`,
	} {
		if !strings.Contains(httpGet(t, url+"/metrics"), want) {
			t.Errorf("%s missing %s", url, want)
		}
	}
	// Assemble the end-to-end timeline from per-node /tracez dumps —
	// the dead server's admin still serves its ring.
	var dumps [][]obs.Span
	for _, adm := range admins {
		dumps = append(dumps, tracezSpans(t, "http://"+adm.Addr()))
	}
	var slow *obs.Timeline
	for _, tl := range obs.Assemble(dumps...) {
		if tl.Call.Seq == slowSeq {
			cp := tl
			slow = &cp
			break
		}
	}
	if slow == nil {
		t.Fatal("assembled timelines miss the slow call")
	}
	for _, stage := range []obs.Stage{obs.StageSubmit, obs.StageEnqueue,
		obs.StageDispatch, obs.StageRequeue, obs.StageExec,
		obs.StageResult, obs.StageAck} {
		if !slow.Has(stage) {
			t.Errorf("timeline misses %s: %v", stage, slow.Stages())
		}
	}
	// The requeue means two dispatches; the exec must be on a survivor.
	dispatches := 0
	for _, s := range slow.Stages() {
		if s == obs.StageDispatch {
			dispatches++
		}
	}
	if dispatches < 2 {
		t.Errorf("want >= 2 dispatches after requeue, got %d: %v", dispatches, slow.Stages())
	}
	if sp, ok := slow.Stage(obs.StageExec); !ok || sp.Node == victim {
		t.Errorf("exec ran on the killed server: %+v", sp)
	}

	// And the whole thing renders as loadable Chrome trace JSON.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(obs.ChromeTrace(obs.Assemble(dumps...)), &doc); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty")
	}
}
