package obs

import (
	"runtime"
	"runtime/debug"
	"time"

	"rpcv/internal/proto"
)

// processStart anchors rpcv_uptime_seconds. Package-level (not per
// Admin) so the gauge measures the process, and a monitor watching it
// can tell a restart (uptime drop) from a long-lived node regardless
// of when the admin endpoint was mounted.
var processStart = time.Now()

// RegisterBuildInfo publishes the two identity metrics every daemon's
// registry carries so a fleet monitor can tell versions and restarts
// apart:
//
//	rpcv_build_info{node,go,path,version[,revision][,modified]} 1
//	rpcv_uptime_seconds{node}
//
// Labels come from runtime/debug.ReadBuildInfo: the main module path
// and version, plus the VCS revision and dirty flag when the binary
// was built from a checkout. ServeAdmin calls this for the node it
// serves; calling it again for the same node is idempotent.
func RegisterBuildInfo(reg *Registry, node proto.NodeID) {
	if reg == nil {
		return
	}
	nl := L("node", string(node))
	labels := []Label{nl, L("go", runtime.Version())}
	if bi, ok := debug.ReadBuildInfo(); ok {
		labels = append(labels, L("path", bi.Main.Path))
		if bi.Main.Version != "" {
			labels = append(labels, L("version", bi.Main.Version))
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				labels = append(labels, L("revision", s.Value))
			case "vcs.modified":
				labels = append(labels, L("modified", s.Value))
			}
		}
	}
	reg.Gauge("rpcv_build_info", labels...).Set(1)
	reg.GaugeFunc("rpcv_uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	}, nl)
}
