package netmodel

import (
	"sync"
	"testing"
	"time"

	"rpcv/internal/proto"
)

func TestRulesOneWayPartition(t *testing.T) {
	r := NewRules()
	a, b := proto.NodeID("a"), proto.NodeID("b")

	if r.Blocked(a, b) || r.Blocked(b, a) {
		t.Fatal("fresh rules should block nothing")
	}
	r.BlockLink(a, b)
	if !r.Blocked(a, b) {
		t.Fatal("a->b should be blocked")
	}
	if r.Blocked(b, a) {
		t.Fatal("one-way block must not affect b->a")
	}
}

func TestRulesHealLink(t *testing.T) {
	r := NewRules()
	a, b := proto.NodeID("a"), proto.NodeID("b")

	r.BlockLink(a, b)
	v := r.Version()
	r.HealLink(a, b)
	if r.Blocked(a, b) {
		t.Fatal("healed link should pass traffic")
	}
	if r.Version() == v {
		t.Fatal("heal must bump the version so proxies notice")
	}
	// Healing an unblocked link is a no-op, not an error.
	r.HealLink(b, a)
	if r.Blocked(b, a) {
		t.Fatal("b->a was never blocked")
	}
}

func TestRulesBlockBothAndHealBoth(t *testing.T) {
	r := NewRules()
	a, b := proto.NodeID("a"), proto.NodeID("b")

	r.BlockBoth(a, b)
	if !r.Blocked(a, b) || !r.Blocked(b, a) {
		t.Fatal("BlockBoth must cut both directions")
	}
	r.HealBoth(a, b)
	if r.Blocked(a, b) || r.Blocked(b, a) {
		t.Fatal("HealBoth must restore both directions")
	}
}

// A directed block must survive overlapping with (and outlive) a group
// partition: blocks and partitions are independent rule layers.
func TestRulesDirectedBlockOverlapsGroupPartition(t *testing.T) {
	r := NewRules()
	a, b, c := proto.NodeID("a"), proto.NodeID("b"), proto.NodeID("c")

	r.BlockLink(a, b)
	r.Partition(map[proto.NodeID]int{a: 0, b: 1, c: 1})

	if !r.Blocked(a, b) {
		t.Fatal("a->b cut by both the block and the partition")
	}
	if !r.Blocked(a, c) {
		t.Fatal("a->c cut by the partition")
	}
	if r.Blocked(b, c) {
		t.Fatal("b and c share a group")
	}

	// Clearing the partition must not heal the directed block.
	r.Partition(nil)
	if !r.Blocked(a, b) {
		t.Fatal("directed block must survive partition clear")
	}
	if r.Blocked(a, c) {
		t.Fatal("a->c had no directed block")
	}
	r.HealLink(a, b)
	if r.Blocked(a, b) {
		t.Fatal("everything healed")
	}
}

func TestRulesPartitionCopiesMap(t *testing.T) {
	r := NewRules()
	a, b := proto.NodeID("a"), proto.NodeID("b")
	m := map[proto.NodeID]int{a: 0, b: 1}
	r.Partition(m)
	m[b] = 0 // caller mutates its map after handing it over
	if !r.Blocked(a, b) {
		t.Fatal("Partition must copy the group map")
	}
}

func TestRulesConcurrentAccess(t *testing.T) {
	r := NewRules()
	nodes := []proto.NodeID{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := nodes[i%4], nodes[(i+1)%4]
			for j := 0; j < 200; j++ {
				r.BlockLink(from, to)
				_ = r.Blocked(from, to)
				r.HealLink(from, to)
				r.Partition(map[proto.NodeID]int{from: 1})
				r.Partition(nil)
				_ = r.Version()
			}
		}(i)
	}
	wg.Wait()
	r.Clear()
	for _, f := range nodes {
		for _, to := range nodes {
			if r.Blocked(f, to) {
				t.Fatalf("Clear left %s->%s blocked", f, to)
			}
		}
	}
}

// The sim-side Net must expose the same rule set: a one-way block set
// through Net.BlockLink drops a->b transfers while b->a still delivers,
// and the shared Rules handle observes the same state.
func TestNetBlockLinkIsOneWay(t *testing.T) {
	n := Confined(1)
	a, b := proto.NodeID("a"), proto.NodeID("b")
	now := time.Unix(0, 0)

	n.BlockLink(a, b)
	if _, ok := n.Transfer(a, b, 100, now); ok {
		t.Fatal("a->b transfer should be dropped")
	}
	if _, ok := n.Transfer(b, a, 100, now); !ok {
		t.Fatal("b->a transfer should deliver")
	}
	if !n.Rules().Blocked(a, b) {
		t.Fatal("Net.Rules() must expose the same rule set")
	}
	n.Rules().HealLink(a, b)
	if _, ok := n.Transfer(a, b, 100, now); !ok {
		t.Fatal("heal through the shared Rules must reach the Net")
	}
}
