package netmodel

import (
	"sync"

	"rpcv/internal/proto"
)

// Rules is a concurrency-safe set of directed link-fault rules: ordered
// (from, to) pairs that are blocked, plus an optional group partition
// (nodes in different groups cannot talk). The simulator's Net consults
// a Rules through its single-threaded Transfer path, and the real-TCP
// grid consults the same Rules from per-connection proxy goroutines
// (gridrpc.LinkFaults) — so unlike the rest of this package, Rules is
// safe for concurrent use.
//
// A one-way block of from -> to drops (or, on the real grid,
// black-holes) traffic in that direction only; to -> from still flows.
// This is the asymmetric-partition primitive: a node that can be heard
// but cannot hear, or vice versa — the inconsistent-view regime the
// paper forces in its figure 11 experiment.
type Rules struct {
	mu      sync.Mutex
	blocked map[pair]bool
	group   map[proto.NodeID]int
	version uint64
}

// NewRules returns an empty rule set: nothing blocked, no partition.
func NewRules() *Rules {
	return &Rules{blocked: make(map[pair]bool)}
}

// BlockLink drops all traffic from -> to (one-way) until HealLink.
func (r *Rules) BlockLink(from, to proto.NodeID) {
	r.mu.Lock()
	r.blocked[pair{from, to}] = true
	r.version++
	r.mu.Unlock()
}

// HealLink re-enables the directed link from -> to.
func (r *Rules) HealLink(from, to proto.NodeID) {
	r.mu.Lock()
	delete(r.blocked, pair{from, to})
	r.version++
	r.mu.Unlock()
}

// BlockBoth blocks both directions between a and b.
func (r *Rules) BlockBoth(a, b proto.NodeID) {
	r.mu.Lock()
	r.blocked[pair{a, b}] = true
	r.blocked[pair{b, a}] = true
	r.version++
	r.mu.Unlock()
}

// HealBoth re-enables both directions between a and b.
func (r *Rules) HealBoth(a, b proto.NodeID) {
	r.mu.Lock()
	delete(r.blocked, pair{a, b})
	delete(r.blocked, pair{b, a})
	r.version++
	r.mu.Unlock()
}

// Partition assigns nodes to groups; nodes in different groups cannot
// communicate in either direction. Call with nil to clear. Nodes absent
// from the map are in group 0. The map is copied; the caller may reuse
// it. Partitions compose with directed blocks: a link is usable only if
// it is neither blocked nor cut by the partition.
func (r *Rules) Partition(group map[proto.NodeID]int) {
	var cp map[proto.NodeID]int
	if group != nil {
		cp = make(map[proto.NodeID]int, len(group))
		for id, g := range group {
			cp[id] = g
		}
	}
	r.mu.Lock()
	r.group = cp
	r.version++
	r.mu.Unlock()
}

// Blocked reports whether traffic from -> to is currently dropped,
// either by a directed block rule or by the group partition.
func (r *Rules) Blocked(from, to proto.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.blocked[pair{from, to}] {
		return true
	}
	if r.group != nil && r.group[from] != r.group[to] {
		return true
	}
	return false
}

// Version increments on every rule change. Pollers (the real-TCP link
// proxies) use it to notice heals cheaply without diffing rule sets.
func (r *Rules) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Clear removes every block rule and the partition.
func (r *Rules) Clear() {
	r.mu.Lock()
	r.blocked = make(map[pair]bool)
	r.group = nil
	r.version++
	r.mu.Unlock()
}
