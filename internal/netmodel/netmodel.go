// Package netmodel provides the network models used by the simulator:
// the paper's confined environment (a dedicated cluster on a single
// 100 Mbit/s switch) and its real-life environment (best-effort
// Internet paths between sites, with lower bandwidth, higher latency,
// jitter and loss).
//
// The model is a per-node full-duplex link into an ideal core. A
// message of S bytes sent at time t:
//
//  1. queues on the sender's uplink: occupies it for S/upBW seconds,
//     starting when the uplink is free;
//  2. propagates for the path latency (plus jitter);
//  3. queues on the receiver's downlink for S/downBW seconds.
//
// This reproduces the contention that shapes the paper's size sweeps
// (16 concurrent 100 MB submissions share the client's link) while
// staying cheap enough to simulate thousands of nodes.
//
// The model also implements partitions and one-way visibility masks,
// used by the figure 11 experiment where components hold inconsistent
// views of the system.
package netmodel

import (
	"math/rand"
	"time"

	"rpcv/internal/proto"
)

// LinkClass describes one node's attachment to the network.
type LinkClass struct {
	// UpBandwidth and DownBandwidth are in bytes per second.
	UpBandwidth   float64
	DownBandwidth float64
	// Latency is the one-way propagation delay contribution of this
	// endpoint; the path latency is the sum of both endpoints'.
	Latency time.Duration
	// Jitter is the maximum extra random delay, uniform in [0,Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1) that a message is dropped.
	Loss float64
}

// Net is a stateful network model implementing sim.Network.
type Net struct {
	defaultClass LinkClass
	classes      map[proto.NodeID]LinkClass
	links        map[proto.NodeID]*linkState
	rng          *rand.Rand

	// rules holds the directed block rules and group partition. It is
	// shared — the same Rules can drive a real-TCP gridrpc.LinkFaults
	// proxy so simulated and live grids see identical fault schedules.
	rules *Rules
}

type pair struct{ from, to proto.NodeID }

type linkState struct {
	upFree   time.Time
	downFree time.Time
}

// New creates a network where every node not given a specific class
// uses def.
func New(def LinkClass, seed int64) *Net {
	if seed == 0 {
		seed = 1
	}
	return &Net{
		defaultClass: def,
		classes:      make(map[proto.NodeID]LinkClass),
		links:        make(map[proto.NodeID]*linkState),
		rng:          rand.New(rand.NewSource(seed)),
		rules:        NewRules(),
	}
}

// Rules exposes the fault-rule set so the same directed blocks and
// partitions can be shared with a real-TCP grid (gridrpc.LinkFaults).
func (n *Net) Rules() *Rules { return n.rules }

// SetClass overrides the link class of one node (e.g. a well-provisioned
// dedicated coordinator among desktop workers).
func (n *Net) SetClass(id proto.NodeID, c LinkClass) { n.classes[id] = c }

// Class returns the link class of a node.
func (n *Net) Class(id proto.NodeID) LinkClass {
	if c, ok := n.classes[id]; ok {
		return c
	}
	return n.defaultClass
}

// Block drops all messages from -> to (one-way), until Unblock. This
// implements the paper's "hide the existence of the Lille coordinator to
// the servers" style of forced inconsistent views.
func (n *Net) Block(from, to proto.NodeID) { n.rules.BlockLink(from, to) }

// BlockLink is Block under the fault-plane's canonical name.
func (n *Net) BlockLink(from, to proto.NodeID) { n.rules.BlockLink(from, to) }

// Unblock re-enables the link.
func (n *Net) Unblock(from, to proto.NodeID) { n.rules.HealLink(from, to) }

// HealLink is Unblock under the fault-plane's canonical name.
func (n *Net) HealLink(from, to proto.NodeID) { n.rules.HealLink(from, to) }

// BlockBoth drops messages in both directions between a and b.
func (n *Net) BlockBoth(a, b proto.NodeID) { n.rules.BlockBoth(a, b) }

// UnblockBoth re-enables both directions.
func (n *Net) UnblockBoth(a, b proto.NodeID) { n.rules.HealBoth(a, b) }

// Partition assigns nodes to groups; nodes in different groups cannot
// communicate. Call with nil to clear. Nodes absent from the map are in
// group 0.
func (n *Net) Partition(group map[proto.NodeID]int) { n.rules.Partition(group) }

// Transfer implements sim.Network.
func (n *Net) Transfer(from, to proto.NodeID, size int, now time.Time) (time.Time, bool) {
	if from == to {
		return now, true // loopback: free
	}
	if n.rules.Blocked(from, to) {
		return time.Time{}, false
	}
	cf, ct := n.Class(from), n.Class(to)
	if p := cf.Loss + ct.Loss; p > 0 && n.rng.Float64() < p {
		return time.Time{}, false
	}

	lf, lt := n.link(from), n.link(to)

	// Uplink serialization at the sender.
	start := now
	if lf.upFree.After(start) {
		start = lf.upFree
	}
	upDone := start.Add(txTime(size, cf.UpBandwidth))
	lf.upFree = upDone

	// Propagation.
	prop := cf.Latency + ct.Latency
	if j := cf.Jitter + ct.Jitter; j > 0 {
		prop += time.Duration(n.rng.Int63n(int64(j)))
	}
	arrive := upDone.Add(prop)

	// Downlink serialization at the receiver.
	if lt.downFree.After(arrive) {
		arrive = lt.downFree
	}
	done := arrive.Add(txTime(size, ct.DownBandwidth))
	lt.downFree = done
	return done, true
}

func (n *Net) link(id proto.NodeID) *linkState {
	l, ok := n.links[id]
	if !ok {
		l = &linkState{}
		n.links[id] = l
	}
	return l
}

func txTime(size int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// ---------------------------------------------------------------------
// Canonical environments
// ---------------------------------------------------------------------

// Confined returns the paper's confined experimental platform: every
// node on one 48-port 100 Mbit/s Ethernet switch (12.5 MB/s full
// duplex), sub-millisecond latency, no jitter, no loss.
func Confined(seed int64) *Net {
	return New(LinkClass{
		UpBandwidth:   12.5e6,
		DownBandwidth: 12.5e6,
		Latency:       50 * time.Microsecond,
		Jitter:        0,
		Loss:          0,
	}, seed)
}

// Internet returns the real-life environment: desktop nodes behind
// ~8 Mbit/s best-effort paths, ~15 ms one-way latency per endpoint
// (≈30 ms RTT between sites, like Orsay–Lille), visible jitter and a
// small loss rate. Dedicated coordinator machines should be upgraded
// with SetClass(CoordinatorClass()).
func Internet(seed int64) *Net {
	return New(LinkClass{
		UpBandwidth:   1.0e6,
		DownBandwidth: 1.0e6,
		Latency:       15 * time.Millisecond,
		Jitter:        10 * time.Millisecond,
		Loss:          0.001,
	}, seed)
}

// CoordinatorClass is the link class of the dedicated coordinator
// machines of the real-life testbed (university servers: better
// bandwidth, same WAN latency).
func CoordinatorClass() LinkClass {
	return LinkClass{
		UpBandwidth:   5.0e6,
		DownBandwidth: 5.0e6,
		Latency:       10 * time.Millisecond,
		Jitter:        5 * time.Millisecond,
		Loss:          0.0005,
	}
}
