package netmodel

import (
	"testing"
	"time"

	"rpcv/internal/proto"
)

var t0 = time.Unix(1_000_000_000, 0).UTC()

func TestTransferChargesBandwidthAndLatency(t *testing.T) {
	n := New(LinkClass{
		UpBandwidth:   1e6, // 1 MB/s
		DownBandwidth: 1e6,
		Latency:       5 * time.Millisecond,
	}, 1)
	at, ok := n.Transfer("a", "b", 1_000_000, t0)
	if !ok {
		t.Fatal("transfer dropped")
	}
	// 1 s uplink + 10 ms propagation (both endpoints) + 1 s downlink.
	want := t0.Add(2*time.Second + 10*time.Millisecond)
	if !at.Equal(want) {
		t.Fatalf("delivery at %v, want %v", at.Sub(t0), want.Sub(t0))
	}
}

func TestUplinkSerialization(t *testing.T) {
	n := New(LinkClass{UpBandwidth: 1e6, DownBandwidth: 1e9, Latency: 0}, 1)
	// Two messages sent simultaneously from the same node share the
	// uplink: the second finishes ~1 s after the first.
	at1, _ := n.Transfer("a", "b", 1_000_000, t0)
	at2, _ := n.Transfer("a", "c", 1_000_000, t0)
	if !at2.After(at1) {
		t.Fatalf("second transfer (%v) not delayed behind first (%v)", at2.Sub(t0), at1.Sub(t0))
	}
	if gap := at2.Sub(at1); gap < 900*time.Millisecond {
		t.Fatalf("uplink gap = %v, want ~1s", gap)
	}
}

func TestDownlinkSerialization(t *testing.T) {
	n := New(LinkClass{UpBandwidth: 1e9, DownBandwidth: 1e6, Latency: 0}, 1)
	at1, _ := n.Transfer("a", "c", 1_000_000, t0)
	at2, _ := n.Transfer("b", "c", 1_000_000, t0)
	if gap := at2.Sub(at1); gap < 900*time.Millisecond {
		t.Fatalf("downlink gap = %v, want ~1s", gap)
	}
}

func TestLoopbackFree(t *testing.T) {
	n := Confined(1)
	at, ok := n.Transfer("a", "a", 1<<30, t0)
	if !ok || !at.Equal(t0) {
		t.Fatalf("loopback = %v,%v; want instant", at.Sub(t0), ok)
	}
}

func TestBlockAndUnblock(t *testing.T) {
	n := Confined(1)
	n.Block("a", "b")
	if _, ok := n.Transfer("a", "b", 10, t0); ok {
		t.Fatal("blocked link delivered")
	}
	// One-way: the reverse direction still works.
	if _, ok := n.Transfer("b", "a", 10, t0); !ok {
		t.Fatal("reverse of one-way block dropped")
	}
	n.Unblock("a", "b")
	if _, ok := n.Transfer("a", "b", 10, t0); !ok {
		t.Fatal("unblocked link still dropping")
	}
}

func TestBlockBoth(t *testing.T) {
	n := Confined(1)
	n.BlockBoth("a", "b")
	if _, ok := n.Transfer("a", "b", 10, t0); ok {
		t.Fatal("a->b delivered")
	}
	if _, ok := n.Transfer("b", "a", 10, t0); ok {
		t.Fatal("b->a delivered")
	}
	n.UnblockBoth("a", "b")
	if _, ok := n.Transfer("a", "b", 10, t0); !ok {
		t.Fatal("a->b still dropped after unblock")
	}
}

func TestPartitionGroups(t *testing.T) {
	n := Confined(1)
	n.Partition(map[proto.NodeID]int{"a": 0, "b": 1})
	if _, ok := n.Transfer("a", "b", 10, t0); ok {
		t.Fatal("cross-partition message delivered")
	}
	if _, ok := n.Transfer("a", "c", 10, t0); !ok {
		t.Fatal("same-partition (default group) message dropped")
	}
	n.Partition(nil)
	if _, ok := n.Transfer("a", "b", 10, t0); !ok {
		t.Fatal("healed partition still dropping")
	}
}

func TestLoss(t *testing.T) {
	n := New(LinkClass{UpBandwidth: 1e9, DownBandwidth: 1e9, Loss: 0.25}, 7)
	dropped := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, ok := n.Transfer("a", "b", 10, t0); !ok {
			dropped++
		}
	}
	// Loss applies per endpoint pair sum (0.5 here); expect ~1000±wide.
	if dropped < trials/4 || dropped > (3*trials)/4 {
		t.Fatalf("dropped %d/%d, far from configured loss", dropped, trials)
	}
}

func TestPerNodeClassOverride(t *testing.T) {
	n := Internet(1)
	n.SetClass("coord", CoordinatorClass())
	if got := n.Class("coord").UpBandwidth; got != CoordinatorClass().UpBandwidth {
		t.Fatalf("class override not applied: %v", got)
	}
	if got := n.Class("worker"); got != n.defaultClass {
		t.Fatalf("default class not returned for unknown node")
	}
}

func TestConfinedFasterThanInternet(t *testing.T) {
	conf := Confined(1)
	inet := Internet(1)
	// Compare a 1 MB transfer on both (loss disabled by retry loop).
	var confAt, inetAt time.Time
	for {
		at, ok := conf.Transfer("a", "b", 1_000_000, t0)
		if ok {
			confAt = at
			break
		}
	}
	for {
		at, ok := inet.Transfer("a", "b", 1_000_000, t0)
		if ok {
			inetAt = at
			break
		}
	}
	if !confAt.Before(inetAt) {
		t.Fatalf("confined (%v) not faster than internet (%v)",
			confAt.Sub(t0), inetAt.Sub(t0))
	}
}

func TestJitterVariesDelivery(t *testing.T) {
	n := New(LinkClass{
		UpBandwidth:   1e9,
		DownBandwidth: 1e9,
		Latency:       time.Millisecond,
		Jitter:        10 * time.Millisecond,
	}, 99)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		at, ok := n.Transfer("a", proto.NodeID(rune('b'+i)), 10, t0)
		if !ok {
			continue
		}
		seen[at.Sub(t0)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
}
