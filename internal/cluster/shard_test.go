package cluster

import (
	"fmt"
	"testing"
	"time"

	"rpcv/internal/proto"
)

// TestShardedClusterServesAllSessions boots a 4-shard deployment and
// checks the basic property of the sharded layer: every client's calls
// complete, sessions spread over more than one ring, and nobody needs a
// redirect when the cached map is current.
func TestShardedClusterServesAllSessions(t *testing.T) {
	cl := New(Config{
		Seed:         7,
		Shards:       4,
		Coordinators: 2,
		Servers:      8,
		Clients:      8,
	})
	if cl.ShardMap == nil || cl.ShardMap.Shards() != 4 {
		t.Fatalf("shard map not built")
	}
	const perClient = 3
	for i := 0; i < 8; i++ {
		cl.SubmitBatch(i, perClient, "synthetic", 100, time.Second, 32)
	}
	for i := 0; i < 8; i++ {
		if !cl.RunUntilResults(i, perClient, 10*time.Minute) {
			t.Fatalf("client %d: %d/%d results", i, cl.Client(i).ResultCount(), perClient)
		}
	}

	rings := make(map[int]bool)
	for i := 0; i < 8; i++ {
		st := cl.Client(i).StatsNow()
		if st.Redirects != 0 {
			t.Errorf("client %d: %d redirects with a current map", i, st.Redirects)
		}
		rings[cl.ShardMap.RingOf(st.Preferred)] = true
	}
	if len(rings) < 2 {
		t.Fatalf("all 8 sessions landed on one ring: hashing is not spreading")
	}

	// Coordinators must never have served a session they do not own.
	for _, id := range cl.CoordinatorIDs {
		ring := cl.ShardMap.RingOf(id)
		for _, rec := range cl.Coordinators[id].DB().PeekAll() {
			if owner := cl.ShardMap.Owner(rec.Call.User, rec.Call.Session); owner != ring {
				// Foreign records are fine (cross-shard copies) but only
				// as exactly that: the owner's successor holding state.
				if cl.ShardMap.SuccessorShard(owner) != ring {
					t.Errorf("%s (ring %d) stores %s owned by ring %d (not its guard)",
						id, ring, rec.Call, owner)
				}
			}
		}
	}
}

// TestShardRedirectRepairsMisroutedClient forces a client onto a wrong
// ring and checks one redirect round trip re-routes it and completes
// the bounced call.
func TestShardRedirectRepairsMisroutedClient(t *testing.T) {
	cl := New(Config{
		Seed:         11,
		Shards:       3,
		Coordinators: 2,
		Servers:      6,
		Clients:      1,
	})
	ci := cl.Client(0)
	st := ci.StatsNow()
	home := cl.ShardMap.RingOf(st.Preferred)
	wrongRing := (home + 1) % 3
	wrong := cl.ShardMap.Ring(wrongRing)[0]

	cl.World.Schedule(0, func() { ci.ForcePreferred(wrong) })
	cl.Submit(0, "synthetic", []byte("x"), time.Second, 16)
	if !cl.RunUntilResults(0, 1, 5*time.Minute) {
		t.Fatalf("misrouted call never completed")
	}
	if got := ci.StatsNow().Redirects; got == 0 {
		t.Fatalf("expected at least one redirect, got %d", got)
	}
	if ring := cl.ShardMap.RingOf(ci.Preferred()); ring != home {
		t.Fatalf("client settled on ring %d, home is %d", ring, home)
	}
}

// TestWholeRingKillRebalancesToSuccessor is the acceptance scenario:
// kill an entire coordinator ring and require (a) every result the dead
// ring had completed to survive on its successor shard, and (b) the
// in-flight and follow-up work of the lost shard's sessions to complete
// on the successor — the guard/adoption rebalance.
func TestWholeRingKillRebalancesToSuccessor(t *testing.T) {
	cl := New(Config{
		Seed:              13,
		Shards:            3,
		Coordinators:      2,
		Servers:           6,
		Clients:           6,
		ReplicationPeriod: 10 * time.Second,
		ShardSyncPeriod:   10 * time.Second,
	})

	// Phase A: complete a first batch everywhere and let cross-shard
	// sync copy the finished records to each ring's successor.
	const batchA = 2
	for i := 0; i < 6; i++ {
		cl.SubmitBatch(i, batchA, "synthetic", 100, time.Second, 32)
	}
	for i := 0; i < 6; i++ {
		if !cl.RunUntilResults(i, batchA, 10*time.Minute) {
			t.Fatalf("phase A: client %d incomplete", i)
		}
	}
	cl.World.RunFor(30 * time.Second) // two cross-shard sync periods

	// The victim is the ring owning client 0's session; at least that
	// client rides on it. Record every phase-A call of victim-owned
	// sessions: these must survive the ring's death.
	victim := cl.ShardMap.Owner("user-00", 1)
	succ := cl.ShardMap.SuccessorShard(victim)
	var victimClients []int
	for i := 0; i < 6; i++ {
		if cl.ShardMap.Owner(proto.UserID(clientUser(i)), 1) == victim {
			victimClients = append(victimClients, i)
		}
	}
	mustSurvive := make(map[proto.CallID]bool)
	for _, i := range victimClients {
		for seq := proto.RPCSeq(1); seq <= batchA; seq++ {
			mustSurvive[proto.CallID{User: proto.UserID(clientUser(i)), Session: 1, Seq: seq}] = true
		}
	}

	// Phase B: put fresh work in flight on the victim ring, give the
	// cross-shard sync one period to see it, then kill the whole ring.
	const batchB = 2
	for _, i := range victimClients {
		cl.SubmitBatch(i, batchB, "synthetic", 100, 30*time.Second, 32)
	}
	cl.World.RunFor(15 * time.Second)
	cl.CrashRing(victim)

	// Adoption: the successor ring must take over the victim's shard.
	deadline := cl.World.Now().Add(10 * time.Minute)
	adopted := cl.World.RunUntil(func() bool {
		for _, id := range cl.ShardRing(succ) {
			for _, s := range cl.Coordinators[id].AdoptedShards() {
				if s == victim {
					return true
				}
			}
		}
		return false
	}, deadline)
	if !adopted {
		t.Fatalf("successor ring %d never adopted victim ring %d", succ, victim)
	}

	// No lost completed results: every phase-A record of the victim's
	// sessions must be finished, with its payload, on the successor.
	for call := range mustSurvive {
		found := false
		for _, id := range cl.ShardRing(succ) {
			if rec, ok := cl.Coordinators[id].DB().Peek(call); ok &&
				rec.State == proto.TaskFinished && len(rec.Output) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("completed result %s lost with ring %d", call, victim)
		}
	}

	// Rebalanced progress: the victim's clients finish phase B against
	// the successor ring.
	for _, i := range victimClients {
		if !cl.RunUntilResults(i, batchA+batchB, 30*time.Minute) {
			t.Fatalf("client %d: only %d/%d results after rebalance",
				i, cl.Client(i).ResultCount(), batchA+batchB)
		}
		if ring := cl.ShardMap.RingOf(cl.Client(i).Preferred()); ring != succ {
			t.Errorf("client %d settled on ring %d, want successor %d", i, ring, succ)
		}
	}
}

// clientUser mirrors cluster.New's user naming for client i.
func clientUser(i int) string { return fmt.Sprintf("user-%02d", i) }
