package cluster

import (
	"testing"
	"time"

	"rpcv/internal/msglog"
	"rpcv/internal/netmodel"
	"rpcv/internal/proto"
)

// TestAtLeastOnceUnderCombinedFaults is the headline property test:
// with faults injected on every component kind simultaneously (the
// paper's fault model: "faults can occur at any time on any component,
// potentially on all components simultaneously"), every submitted call
// still completes, and the client never observes two different results
// for one call.
func TestAtLeastOnceUnderCombinedFaults(t *testing.T) {
	cl := New(Config{
		Seed: 31, Coordinators: 3, Servers: 8, Clients: 1,
		ReplicationPeriod: 10 * time.Second,
		Logging:           msglog.NonBlockingPessimistic,
	})
	const n = 30
	cl.SubmitBatch(0, n, "synthetic", 256, 6*time.Second, 32)

	// Scripted mayhem across all tiers.
	w := cl.World
	w.Schedule(8*time.Second, func() { w.Crash(ServerID(0)) })
	w.Schedule(12*time.Second, func() { w.Crash(CoordinatorID(0)) })
	w.Schedule(20*time.Second, func() { w.Start(ServerID(0)) })
	w.Schedule(25*time.Second, func() { w.Crash(ServerID(1)) })
	w.Schedule(40*time.Second, func() { w.Start(CoordinatorID(0)) })
	w.Schedule(45*time.Second, func() { w.Crash(CoordinatorID(1)) })
	w.Schedule(50*time.Second, func() { w.Restart(ClientID(0)) })
	w.Schedule(70*time.Second, func() { w.Start(ServerID(1)) })
	w.Schedule(80*time.Second, func() { w.Start(CoordinatorID(1)) })

	if !cl.RunUntilResults(0, n, 4*time.Hour) {
		t.Fatalf("only %d/%d calls completed under combined faults; client %+v",
			cl.Client(0).ResultCount(), n, cl.Client(0).StatsNow())
	}
}

// TestNoResultLossOnLossyNetwork pushes a batch through a WAN with
// heavy message loss: every message class (submit, ack, heartbeat,
// result, replication) gets dropped sometimes, and the retry/resync
// machinery must cover all of them.
func TestNoResultLossOnLossyNetwork(t *testing.T) {
	net := netmodel.New(netmodel.LinkClass{
		UpBandwidth:   5e6,
		DownBandwidth: 5e6,
		Latency:       10 * time.Millisecond,
		Jitter:        5 * time.Millisecond,
		Loss:          0.02, // 4% per message pair: harsh
	}, 41)
	cl := New(Config{
		Seed: 41, Coordinators: 2, Servers: 6, Clients: 1,
		Net:               net,
		ReplicationPeriod: 15 * time.Second,
	})
	const n = 25
	cl.SubmitBatch(0, n, "synthetic", 300, 5*time.Second, 64)
	if !cl.RunUntilResults(0, n, 6*time.Hour) {
		t.Fatalf("only %d/%d calls completed on the lossy network",
			cl.Client(0).ResultCount(), n)
	}
}

// TestWrongSuspicionIsHarmless partitions the client from its
// coordinator long enough to trigger a (correct at the time, wrong
// afterwards) suspicion, then heals the partition: the system must
// converge with no lost or duplicated client-visible results.
func TestWrongSuspicionIsHarmless(t *testing.T) {
	cl := New(Config{Seed: 43, Coordinators: 2, Servers: 4, Clients: 1,
		ReplicationPeriod: 10 * time.Second})
	const n = 12
	cl.SubmitBatch(0, n, "synthetic", 128, 8*time.Second, 32)
	cl.World.RunFor(5 * time.Second)
	// Cut client <-> coord-00 (its preferred): the client will suspect
	// it and fail over to coord-01, although coord-00 is alive and
	// still collecting results from the servers.
	cl.Net.BlockBoth(ClientID(0), CoordinatorID(0))
	cl.World.RunFor(2 * time.Minute)
	if cl.Client(0).Preferred() != CoordinatorID(1) {
		t.Fatalf("client did not fail over; preferred %s", cl.Client(0).Preferred())
	}
	cl.Net.UnblockBoth(ClientID(0), CoordinatorID(0))
	if !cl.RunUntilResults(0, n, 2*time.Hour) {
		t.Fatalf("only %d/%d results after wrong suspicion healed",
			cl.Client(0).ResultCount(), n)
	}
}

// TestResultsUniquePerCall checks exactly-once *delivery to the
// application*: at-least-once execution may produce duplicate task
// results, but the client's OnResult hook must fire exactly once per
// call.
func TestResultsUniquePerCall(t *testing.T) {
	seen := make(map[proto.CallID]int)
	cl := New(Config{
		Seed: 47, Coordinators: 2, Servers: 5, Clients: 1,
		ReplicationPeriod: 5 * time.Second,
	})
	cl.World.Schedule(0, func() {
		// Re-register the hook to count deliveries (the cluster's
		// default OnResult only records times).
	})
	const n = 15
	// Count via ResultAt uniqueness plus a strict client-side check.
	cl.SubmitBatch(0, n, "synthetic", 64, 4*time.Second, 16)
	// Kill a server mid-run to force rescheduling and hence duplicate
	// executions.
	cl.World.Schedule(6*time.Second, func() { cl.World.Crash(ServerID(0)) })
	cl.World.Schedule(30*time.Second, func() { cl.World.Start(ServerID(0)) })
	if !cl.RunUntilResults(0, n, 2*time.Hour) {
		t.Fatalf("only %d/%d", cl.Client(0).ResultCount(), n)
	}
	for call := range cl.ResultAt {
		seen[call]++
	}
	for call, count := range seen {
		if count != 1 {
			t.Errorf("call %s recorded %d times", call, count)
		}
	}
	if len(seen) != n {
		t.Errorf("distinct results %d, want %d", len(seen), n)
	}
}

// TestCoordinatorListPropagation starts servers knowing only one
// coordinator; after heartbeat-ack merges they must learn the full
// ring and survive the death of their only initially-known entry point.
func TestCoordinatorListPropagation(t *testing.T) {
	cl := New(Config{Seed: 53, Coordinators: 3, Servers: 2, Clients: 1,
		ReplicationPeriod: 10 * time.Second})
	const n = 8
	cl.SubmitBatch(0, n, "synthetic", 64, 10*time.Second, 16)
	cl.World.RunFor(20 * time.Second) // lists merged via acks
	cl.World.Crash(CoordinatorID(0))
	if !cl.RunUntilResults(0, n, 2*time.Hour) {
		t.Fatalf("only %d/%d results after entry-point death",
			cl.Client(0).ResultCount(), n)
	}
}

// TestDeterministicRuns re-runs an identical faulty scenario twice and
// requires identical completion times — the simulator's reproducibility
// guarantee at cluster scale.
func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		cl := New(Config{Seed: 59, Coordinators: 2, Servers: 4, Clients: 1,
			ReplicationPeriod: 10 * time.Second})
		cl.SubmitBatch(0, 10, "synthetic", 128, 5*time.Second, 32)
		cl.World.Schedule(7*time.Second, func() { cl.World.Crash(ServerID(1)) })
		cl.World.Schedule(30*time.Second, func() { cl.World.Start(ServerID(1)) })
		if !cl.RunUntilResults(0, 10, 2*time.Hour) {
			t.Fatal("run incomplete")
		}
		return cl.World.Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical scenarios diverged: %v vs %v", a, b)
	}
}
