package cluster

import (
	"strings"
	"testing"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/obs/fleet"
)

// The simulated deployment feeds the same monitor rpcv-mon runs over
// TCP: registry-backed scrapes, crash-driven liveness, shard verdicts
// from the coordinators' own metrics — chaos runs get fleet grading
// without HTTP.
func TestFleetMonitorOverSimCluster(t *testing.T) {
	reg := obs.NewRegistry()
	cl := New(Config{
		Seed:         21,
		Shards:       2,
		Coordinators: 1,
		Servers:      4,
		Clients:      1,
		Obs:          reg,
	})
	mon := cl.FleetMonitor(fleet.Config{Interval: time.Second})

	const n = 16
	cl.SubmitBatch(0, n, "synthetic", 64, time.Second, 32)
	if !cl.RunUntilResults(0, n, 30*time.Minute) {
		t.Fatalf("only %d/%d results", cl.Client(0).ResultCount(), n)
	}

	v := mon.Poll(cl.World.Now())
	if v.Level != fleet.LevelOK {
		t.Fatalf("healthy deployment graded %v: %+v", v.Level, v)
	}
	wantNodes := 2 + 4 + 1
	if len(v.Nodes) != wantNodes {
		t.Fatalf("verdict covers %d nodes, want %d", len(v.Nodes), wantNodes)
	}
	// Both coordinator rings surface as shard verdicts with their own
	// indices.
	if len(v.Shards) != 2 {
		t.Fatalf("shard verdicts = %+v, want 2", v.Shards)
	}
	// Every node kind was role-detected from its metric names.
	roles := map[string]int{}
	for _, nv := range v.Nodes {
		roles[nv.Role]++
	}
	if roles["coordinator"] != 2 || roles["server"] != 4 || roles["client"] != 1 {
		t.Fatalf("roles = %v", roles)
	}

	// Crash one server: its scrape fails like an unreachable admin
	// endpoint, and the default two-round streak grades it down.
	victim := ServerID(0)
	cl.World.Crash(victim)
	mon.Poll(cl.World.Now().Add(time.Second))
	v = mon.Poll(cl.World.Now().Add(2 * time.Second))
	nv, ok := v.Node(victim)
	if !ok || nv.Level != fleet.LevelDown {
		t.Fatalf("crashed server graded %+v (ok=%v), want down", nv, ok)
	}
	if v.Level != fleet.LevelDown {
		t.Fatalf("fleet level = %v, want down", v.Level)
	}

	// Crash a whole ring: its coordinator drops out of the shard
	// verdicts (a down node contributes no fresh aggregates), and the
	// text rendering names the casualties.
	cl.CrashRing(1)
	mon.Poll(cl.World.Now().Add(3 * time.Second))
	v = mon.Poll(cl.World.Now().Add(4 * time.Second))
	downCoords := 0
	for _, id := range cl.ShardRing(1) {
		if nv, _ := v.Node(id); nv.Level == fleet.LevelDown {
			downCoords++
		}
	}
	if downCoords != 1 {
		t.Fatalf("ring-1 down coordinators = %d, want 1", downCoords)
	}
	text := fleet.Text(v)
	if !strings.Contains(text, string(victim)) || !strings.Contains(text, "down") {
		t.Fatalf("text verdict misses casualties:\n%s", text)
	}

	// The span rings the cluster retained feed timelines: the monitor's
	// trace sources must assemble at least the completed calls.
	hist := mon.History()
	if len(hist[victim]) == 0 {
		t.Fatal("no retained history for the crashed server")
	}
}
