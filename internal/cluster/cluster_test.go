package cluster

import (
	"testing"
	"time"

	"rpcv/internal/msglog"
	"rpcv/internal/proto"
)

func TestEndToEndSingleCall(t *testing.T) {
	cl := New(Config{Seed: 7, Coordinators: 1, Servers: 2, Clients: 1})
	cl.Submit(0, "synthetic", []byte("hello"), 2*time.Second, 128)
	if !cl.RunUntilResults(0, 1, 5*time.Minute) {
		t.Fatalf("call did not complete; client stats %+v, coord stats %+v",
			cl.Client(0).StatsNow(), cl.Coordinator(0).StatsNow())
	}
	res, ok := cl.Client(0).Result(1)
	if !ok {
		t.Fatal("result missing for seq 1")
	}
	if len(res.Output) != 128 {
		t.Fatalf("result payload = %d bytes, want 128", len(res.Output))
	}
	if res.Err != "" {
		t.Fatalf("unexpected service error %q", res.Err)
	}
}

func TestEndToEndBatchAcrossServers(t *testing.T) {
	cl := New(Config{Seed: 11, Coordinators: 1, Servers: 4, Clients: 1})
	const n = 32
	cl.SubmitBatch(0, n, "synthetic", 256, time.Second, 64)
	if !cl.RunUntilResults(0, n, 30*time.Minute) {
		t.Fatalf("only %d/%d results; coord %+v", cl.Client(0).ResultCount(), n,
			cl.Coordinator(0).StatsNow())
	}
	// Work must be spread: with 4 pulling servers and 32 one-second
	// tasks, no single server can have executed everything.
	execTotal := 0
	busy := 0
	for i := 0; i < 4; i++ {
		st := cl.Server(i).StatsNow()
		execTotal += st.Executed
		if st.Executed > 0 {
			busy++
		}
	}
	if execTotal < n {
		t.Errorf("servers executed %d tasks, want >= %d", execTotal, n)
	}
	if busy < 2 {
		t.Errorf("only %d servers did work, want >= 2", busy)
	}
}

func TestMultipleClients(t *testing.T) {
	cl := New(Config{Seed: 3, Coordinators: 1, Servers: 4, Clients: 3})
	for i := 0; i < 3; i++ {
		cl.SubmitBatch(i, 8, "synthetic", 64, 500*time.Millisecond, 32)
	}
	deadline := cl.World.Now().Add(20 * time.Minute)
	ok := cl.World.RunUntil(func() bool {
		for i := 0; i < 3; i++ {
			if cl.Client(i).ResultCount() < 8 {
				return false
			}
		}
		return true
	}, deadline)
	if !ok {
		for i := 0; i < 3; i++ {
			t.Logf("client %d: %+v", i, cl.Client(i).StatsNow())
		}
		t.Fatal("not all clients completed")
	}
	// Calls are namespaced per user: coordinator must hold 24 jobs.
	st := cl.Coordinator(0).StatsNow()
	if st.JobsAccepted != 24 {
		t.Errorf("coordinator accepted %d jobs, want 24", st.JobsAccepted)
	}
}

func TestServerCrashReschedules(t *testing.T) {
	cl := New(Config{Seed: 5, Coordinators: 1, Servers: 2, Clients: 1})
	const n = 6
	cl.SubmitBatch(0, n, "synthetic", 64, 20*time.Second, 32)
	// Let assignments happen, then kill server 0 mid-execution.
	cl.World.RunFor(12 * time.Second)
	cl.World.Crash(ServerID(0))
	if !cl.RunUntilResults(0, n, 60*time.Minute) {
		t.Fatalf("only %d/%d results after server crash; coord %+v",
			cl.Client(0).ResultCount(), n, cl.Coordinator(0).StatsNow())
	}
	if resc := cl.Coordinator(0).StatsNow().Rescheduled; resc == 0 {
		t.Error("expected the coordinator to reschedule tasks of the crashed server")
	}
}

func TestServerRestartResendsResults(t *testing.T) {
	// Kill the only server right after its task completes locally but
	// (possibly) before upload acks; on restart it must sync and the
	// result must still reach the client (the result archive is the
	// server's pessimistic log).
	cl := New(Config{Seed: 9, Coordinators: 1, Servers: 1, Clients: 1})
	cl.Submit(0, "synthetic", []byte("x"), 8*time.Second, 16)
	// Run until the server has executed (locally) the task.
	deadline := cl.World.Now().Add(10 * time.Minute)
	sv := cl.Server(0)
	if !cl.World.RunUntil(func() bool { return sv.StatsNow().Executed >= 1 }, deadline) {
		t.Fatal("server never executed the task")
	}
	cl.World.Restart(ServerID(0))
	if !cl.RunUntilResults(0, 1, 30*time.Minute) {
		t.Fatalf("result lost across server restart; server %+v coord %+v",
			sv.StatsNow(), cl.Coordinator(0).StatsNow())
	}
}

func TestCoordinatorFailoverViaReplica(t *testing.T) {
	// Two coordinators with replication: kill the primary after results
	// are stored; servers and client must fail over and the client must
	// still retrieve everything (paper figure 10's mechanism).
	cl := New(Config{
		Seed: 13, Coordinators: 2, Servers: 3, Clients: 1,
		ReplicationPeriod: 10 * time.Second,
	})
	const n = 9
	cl.SubmitBatch(0, n, "synthetic", 128, 25*time.Second, 32)
	// Let some tasks finish and at least one replication round pass,
	// then kill the primary while work is still outstanding.
	cl.World.RunFor(40 * time.Second)
	if cl.Client(0).ResultCount() >= n {
		t.Fatal("test premise broken: all results arrived before the crash")
	}
	cl.World.Crash(CoordinatorID(0))
	if !cl.RunUntilResults(0, n, 2*time.Hour) {
		t.Fatalf("only %d/%d results after coordinator crash; client %+v",
			cl.Client(0).ResultCount(), n, cl.Client(0).StatsNow())
	}
	if cl.Client(0).StatsNow().Failovers == 0 {
		t.Error("client never failed over to the replica")
	}
}

func TestClientRestartRecoversFromLog(t *testing.T) {
	cl := New(Config{
		Seed: 17, Coordinators: 1, Servers: 2, Clients: 1,
		Logging: msglog.BlockingPessimistic,
	})
	const n = 5
	cl.SubmitBatch(0, n, "synthetic", 64, 10*time.Second, 32)
	cl.World.RunFor(3 * time.Second) // submissions durably logged
	cl.World.Restart(ClientID(0))
	if !cl.RunUntilResults(0, n, time.Hour) {
		t.Fatalf("only %d/%d results after client restart; stats %+v",
			cl.Client(0).ResultCount(), n, cl.Client(0).StatsNow())
	}
	// The restarted client must resume the sequence counter past the
	// logged calls, not reuse IDs.
	cli := cl.Client(0)
	var gotSeq proto.RPCSeq
	cl.World.Schedule(0, func() {
		gotSeq = cli.Submit("synthetic", nil, time.Second, 8)
	})
	cl.World.RunFor(time.Millisecond)
	if gotSeq != n+1 {
		t.Errorf("post-restart Submit got seq %d, want %d", gotSeq, n+1)
	}
}

func TestProgressUnderChurn(t *testing.T) {
	// Random server churn: as long as a path client->coordinator->some
	// server exists, the application progresses (progress condition).
	cl := New(Config{Seed: 23, Coordinators: 1, Servers: 6, Clients: 1})
	const n = 24
	cl.SubmitBatch(0, n, "synthetic", 64, 4*time.Second, 16)
	stop := false
	var churn func()
	churn = func() {
		if stop {
			return
		}
		i := cl.World.Rand().Intn(6)
		id := ServerID(i)
		if cl.World.IsUp(id) {
			cl.World.Crash(id)
		} else {
			cl.World.Start(id)
		}
		cl.World.Schedule(15*time.Second, churn)
	}
	cl.World.Schedule(10*time.Second, churn)
	ok := cl.RunUntilResults(0, n, 4*time.Hour)
	stop = true
	if !ok {
		t.Fatalf("only %d/%d results under churn", cl.Client(0).ResultCount(), n)
	}
}
