package cluster

import (
	"fmt"

	"rpcv/internal/obs"
	"rpcv/internal/obs/fleet"
	"rpcv/internal/proto"
)

// FleetSources exposes every node of the deployment as a fleet scrape
// source, no HTTP involved: samples come straight from the shared
// registry (filtered to the node's label), liveness from the
// simulator's own crash state, and span rings from the retained
// per-node observers. A crashed node fails its scrape — exactly how
// an unreachable admin endpoint looks to rpcv-mon — so the monitor's
// Down grading exercises the same path in simulation as over TCP.
//
// Requires the deployment to run with Config.Obs set.
func (c *Cluster) FleetSources() []fleet.Source {
	ids := make([]proto.NodeID, 0, len(c.CoordinatorIDs)+len(c.ServerIDs)+len(c.ClientIDs))
	ids = append(ids, c.CoordinatorIDs...)
	ids = append(ids, c.ServerIDs...)
	ids = append(ids, c.ClientIDs...)

	out := make([]fleet.Source, 0, len(ids))
	for _, id := range ids {
		id := id
		ob := c.Observers[id]
		out = append(out, &fleet.FuncSource{
			Node: id,
			Fetch: func() ([]fleet.Sample, error) {
				if !c.World.IsUp(id) {
					return nil, fmt.Errorf("node %s is down", id)
				}
				if c.Obs == nil {
					return nil, fmt.Errorf("cluster: no shared registry (Config.Obs unset)")
				}
				return fleet.SamplesFromRegistry(c.Obs, id), nil
			},
			Trace: func() []obs.Span { return ob.Tracer().Dump() },
		})
	}
	return out
}

// FleetMonitor builds a fleet monitor over the deployment. cfg.Sources
// is filled from FleetSources when empty; drive rounds with
// Poll(c.World.Now()) at the simulation points of interest (the
// monitor's own Start loop is wall-clock and useless under a virtual
// clock).
func (c *Cluster) FleetMonitor(cfg fleet.Config) *fleet.Monitor {
	if len(cfg.Sources) == 0 {
		cfg.Sources = c.FleetSources()
	}
	return fleet.New(cfg)
}
