package cluster

import (
	"testing"
	"time"

	"rpcv/internal/proto"
)

// TestSpeculativeBeatsFCFSWithStraggler pits the speculative policy
// against FCFS on a population with one 10x-slow server: duplicating
// the straggler's task onto a fast machine must cut the completion
// time of the batch.
func TestSpeculativeBeatsFCFSWithStraggler(t *testing.T) {
	slowOne := func(i int) float64 {
		if i == 0 {
			return 10
		}
		return 1
	}
	run := func(policy string) time.Duration {
		cl := New(Config{
			Seed:              41,
			Coordinators:      1,
			Servers:           4,
			Clients:           1,
			Policy:            policy,
			ServerSpeed:       slowOne,
			ReplicationPeriod: 10 * time.Second,
		})
		const calls = 24
		start := cl.World.Now()
		cl.SubmitBatch(0, calls, "synthetic", 256, 5*time.Second, 16)
		if !cl.RunUntilResults(0, calls, 30*time.Minute) {
			t.Fatalf("%s: batch never completed", policy)
		}
		return cl.World.Now().Sub(start)
	}
	fcfs := run("fcfs")
	spec := run("speculative")
	if spec >= fcfs {
		t.Fatalf("speculative (%v) not faster than fcfs (%v) with a straggler", spec, fcfs)
	}
}

// TestSpeculativeFailoverSingleStoredResult proves the issue's
// failover requirement: a call whose instances were speculatively
// duplicated across two servers still yields exactly one stored result
// after the coordinator that issued both dies and its replica takes
// over — the CallID dedupe survives replication and failover.
func TestSpeculativeFailoverSingleStoredResult(t *testing.T) {
	cl := New(Config{
		Seed:              17,
		Coordinators:      2,
		Servers:           2,
		Clients:           1,
		Policy:            "speculative",
		ReplicationPeriod: 2 * time.Second,
		ServerSpeed: func(i int) float64 {
			if i == 0 {
				return 10
			}
			return 1
		},
	})
	const calls = 2
	cl.SubmitBatch(0, calls, "synthetic", 256, 5*time.Second, 16)

	// Run until the primary coordinator has issued a speculative
	// duplicate of the straggler's task, then kill it before any
	// duplicate's result can be stored there.
	co0 := cl.Coordinator(0)
	deadline := cl.World.Now().Add(5 * time.Minute)
	if !cl.World.RunUntil(func() bool { return co0.StatsNow().Speculated >= 1 }, deadline) {
		t.Fatalf("no speculation happened: %+v", co0.StatsNow())
	}
	// Let the duplicate assignment reach its server, then kill the
	// coordinator before either instance's result can be stored.
	cl.World.RunFor(time.Second)
	cl.World.Crash(CoordinatorID(0))

	// Both servers eventually push their results to the replica; the
	// client fails over and must still see exactly one result per call.
	if !cl.RunUntilResults(0, calls, 20*time.Minute) {
		t.Fatalf("batch never completed after failover: client results=%d", cl.Client(0).ResultCount())
	}
	cl.World.RunFor(3 * time.Minute) // let the straggler's late upload land

	co1 := cl.Coordinator(1)
	finished := 0
	for _, rec := range co1.DB().PeekAll() {
		if rec.State == proto.TaskFinished {
			finished++
		}
	}
	if finished != calls {
		t.Fatalf("replica stores %d finished records, want %d", finished, calls)
	}
	if got := cl.Client(0).ResultCount(); got != calls {
		t.Fatalf("client holds %d results, want %d", got, calls)
	}
	// The duplicate instance really executed (calls + 1 executions in
	// total), yet only one result per call survived anywhere: the
	// loser's copy was discarded — either deduplicated on upload or
	// dropped by the peer-wise log sync's distributed GC.
	executed, unacked := 0, 0
	for _, sv := range cl.Servers {
		st := sv.StatsNow()
		executed += st.Executed
		unacked += st.Unacked
	}
	if executed != calls+1 {
		t.Fatalf("executed %d instances, want %d (the batch plus one duplicate)", executed, calls+1)
	}
	if unacked != 0 {
		t.Fatalf("%d results still unacked; the loser's copy was never discarded", unacked)
	}
}

// TestWorkStealingDrainsHotShard submits a batch to one shard of a
// two-shard deployment and requires the idle shard to steal and
// execute part of it — faster than the no-stealing baseline and
// without a single duplicate execution or stored result.
func TestWorkStealingDrainsHotShard(t *testing.T) {
	const calls = 40
	run := func(stealing bool) (time.Duration, *Cluster) {
		cl := New(Config{
			Seed:              23,
			Shards:            2,
			Coordinators:      1,
			Servers:           8, // 4 per shard, round-robin
			Clients:           1,
			WorkStealing:      stealing,
			ReplicationPeriod: 5 * time.Second,
			ShardSyncPeriod:   2 * time.Second,
		})
		start := cl.World.Now()
		cl.SubmitBatch(0, calls, "synthetic", 256, 5*time.Second, 16)
		if !cl.RunUntilResults(0, calls, 30*time.Minute) {
			t.Fatalf("stealing=%v: batch never completed (%d results)",
				stealing, cl.Client(0).ResultCount())
		}
		return cl.World.Now().Sub(start), cl
	}

	baseline, _ := run(false)
	stolenTime, cl := run(true)
	if stolenTime >= baseline {
		t.Fatalf("work stealing (%v) not faster than baseline (%v)", stolenTime, baseline)
	}

	// The client's session hashes to one shard; the other must have
	// stolen part of the queue, and the victim granted it.
	hot := cl.ShardMap.Owner("user-00", 1)
	thief := 1 - hot
	var hotOut, thiefIn int
	for _, id := range cl.ShardRing(hot) {
		hotOut += cl.Coordinators[id].StatsNow().StolenOut
	}
	for _, id := range cl.ShardRing(thief) {
		thiefIn += cl.Coordinators[id].StatsNow().StolenIn
	}
	if hotOut == 0 || thiefIn == 0 {
		t.Fatalf("no stealing happened: hot granted %d, thief took %d", hotOut, thiefIn)
	}

	// No duplicate work anywhere: every call executed exactly once and
	// no coordinator had to deduplicate a second result.
	executed := 0
	for _, sv := range cl.Servers {
		executed += sv.StatsNow().Executed
	}
	if executed != calls {
		t.Fatalf("executed %d task instances, want exactly %d (no duplicates)", executed, calls)
	}
	for id, co := range cl.Coordinators {
		if d := co.StatsNow().DupResults; d != 0 {
			t.Fatalf("%s deduplicated %d results; stealing must not duplicate", id, d)
		}
	}
}
