// Package cluster assembles complete RPC-V deployments inside the
// discrete-event simulator: N coordinators, M servers and K clients on
// a chosen network model, with uniform or per-node configuration. It is
// the shared harness of the integration tests, the benchmarks and every
// figure-regeneration experiment.
//
// The simulator executes every handler single-loop: multi-core event
// loops (rt.Config.Loops, node.PartitionedHandler) are a capability of
// the real-time runtime, where wall-clock parallelism exists to win.
// Under the virtual clock the sequential executor is already
// deterministic and "instant", so this harness never partitions a
// handler; the cores dimension of the transport-compare experiment
// measures the loops on the TCP runtime instead.
package cluster

import (
	"fmt"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/detector"
	"rpcv/internal/msglog"
	"rpcv/internal/netmodel"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/server"
	"rpcv/internal/shard"
	"rpcv/internal/sim"
)

// Config describes a deployment.
type Config struct {
	Seed int64
	// Coordinators is the number of coordinators per ring: the whole
	// deployment when Shards <= 1 (the paper's topology), or each
	// shard's ring size when sharded.
	Coordinators int
	Servers      int
	Clients      int

	// Shards is the number of independent coordinator rings. Zero or
	// one reproduces the paper's single-ring deployment; more builds
	// the sharded coordination layer: Shards * Coordinators
	// coordinators in total, sessions partitioned by consistent
	// hashing, servers attached round-robin to rings. Provision
	// Servers >= Shards: a ring without at least one attached server
	// accepts its sessions' submissions but never executes them.
	Shards int

	// ShardVNodes overrides the virtual nodes per shard on the hash
	// circle (default shard.DefaultVNodes).
	ShardVNodes int

	// ShardSyncPeriod is the coordinators' cross-shard replication
	// period; zero follows ReplicationPeriod.
	ShardSyncPeriod time.Duration

	// Net selects the network model; nil means netmodel.Confined(Seed).
	Net *netmodel.Net

	// Logging is the client message-logging strategy.
	Logging msglog.Strategy
	// DiskModel is the client log disk model; nil means msglog.IDEDisk().
	DiskModel msglog.DiskModel
	// DBCost is the coordinator database cost model; zero means
	// db.ConfinedCost().
	DBCost db.CostModel

	// HeartbeatPeriod and SuspicionTimeout follow the paper's 5 s/30 s
	// defaults when zero.
	HeartbeatPeriod  time.Duration
	SuspicionTimeout time.Duration

	// ReplicationPeriod for coordinators; zero disables periodic
	// replication.
	ReplicationPeriod time.Duration

	// PollPeriod is the clients' result-pull period (default 1 s).
	PollPeriod time.Duration

	// AckResyncTimeout is the clients' unacked-submission resync check;
	// zero keeps the client default, negative disables it (benchmarks
	// measuring raw submission cost).
	AckResyncTimeout time.Duration

	// MaxTasksPerAck caps assignments per heartbeat reply (default 4).
	MaxTasksPerAck int

	// Parallelism is each server's concurrent task capacity (default 1).
	Parallelism int

	// Policy is the coordinators' scheduling policy (internal/sched):
	// "fcfs" (default), "fastest-first", "deadline" or "speculative".
	Policy string

	// SpeculateFactor tunes the speculative policy's straggler
	// threshold (0: sched default).
	SpeculateFactor float64

	// WorkStealing lets idle shards execute pending tasks of their
	// successor shard (sharded deployments only).
	WorkStealing bool

	// StealBatch caps tasks per steal grant (0: MaxTasksPerAck).
	StealBatch int

	// ServerSpeed, when non-nil, returns server i's execution speed
	// factor (1 = nominal, 10 = ten times slower) — the heterogeneous
	// population of the scheduling experiments.
	ServerSpeed func(i int) float64

	// Services registered on every server.
	Services map[string]server.Service

	// ReplicateParamsLimit overrides the coordinators' archive
	// threshold (bytes); zero keeps the coordinator default (64 KiB).
	ReplicateParamsLimit int

	// OnSubmitComplete, when non-nil, receives every client submission
	// completion (figure 4's measured quantity).
	OnSubmitComplete func(clientID proto.NodeID, seq proto.RPCSeq, issued, completed time.Time)

	// OnSyncReply, when non-nil, receives every client synchronization
	// round-trip time (the shard-scaling experiment's sync latency).
	OnSyncReply func(clientID proto.NodeID, rtt time.Duration)

	// Trace receives simulator trace output when non-nil.
	Trace sim.TraceFunc

	// Obs, when non-nil, is a metrics registry shared by every node of
	// the deployment (each node records under a node="<id>" label and
	// keeps a private span ring). Experiments read grid-wide aggregates
	// from it instead of polling per-node counters.
	Obs *obs.Registry
}

// Cluster is a running deployment handle.
type Cluster struct {
	World *sim.World
	Net   *netmodel.Net

	// ShardMap is the deployment's consistent-hash topology (nil when
	// single-ring); Shards is its ring count (1 when unsharded).
	ShardMap *shard.Map
	Shards   int

	CoordinatorIDs []proto.NodeID
	ServerIDs      []proto.NodeID
	ClientIDs      []proto.NodeID

	Coordinators map[proto.NodeID]*coordinator.Coordinator
	Servers      map[proto.NodeID]*server.Server
	Clients      map[proto.NodeID]*client.Client

	// Obs is the deployment's shared metrics registry (nil when the
	// deployment runs without observability), and Observers the
	// per-node handles built on it — the cluster-side feed of the fleet
	// monitor (see FleetSources).
	Obs       *obs.Registry
	Observers map[proto.NodeID]*obs.Observer

	// FinishedAt records, per call, the virtual time its result first
	// reached any coordinator (for completed-task time series).
	FinishedAt map[proto.CallID]time.Time
	// ResultAt records when each call's result reached a client.
	ResultAt map[proto.CallID]time.Time
	// FinishedPerCoord counts first-finishes per coordinator.
	FinishedPerCoord map[proto.NodeID]int
}

// CoordinatorID returns the i-th coordinator's node ID.
func CoordinatorID(i int) proto.NodeID { return proto.NodeID(fmt.Sprintf("coord-%02d", i)) }

// ServerID returns the i-th server's node ID.
func ServerID(i int) proto.NodeID { return proto.NodeID(fmt.Sprintf("server-%03d", i)) }

// ClientID returns the i-th client's node ID.
func ClientID(i int) proto.NodeID { return proto.NodeID(fmt.Sprintf("client-%02d", i)) }

// New builds and boots a deployment. All nodes are started; the virtual
// clock is at sim.Epoch.
func New(cfg Config) *Cluster {
	if cfg.Coordinators <= 0 {
		cfg.Coordinators = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Net == nil {
		cfg.Net = netmodel.Confined(cfg.Seed)
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = detector.DefaultPeriod
	}
	if cfg.SuspicionTimeout <= 0 {
		cfg.SuspicionTimeout = detector.DefaultTimeout
	}
	if cfg.DBCost == (db.CostModel{}) {
		cfg.DBCost = db.ConfinedCost()
	}

	cl := &Cluster{
		Net:              cfg.Net,
		Obs:              cfg.Obs,
		Observers:        make(map[proto.NodeID]*obs.Observer),
		Coordinators:     make(map[proto.NodeID]*coordinator.Coordinator),
		Servers:          make(map[proto.NodeID]*server.Server),
		Clients:          make(map[proto.NodeID]*client.Client),
		FinishedAt:       make(map[proto.CallID]time.Time),
		ResultAt:         make(map[proto.CallID]time.Time),
		FinishedPerCoord: make(map[proto.NodeID]int),
	}
	cl.World = sim.NewWorld(sim.Config{Seed: cfg.Seed, Net: cfg.Net, Trace: cfg.Trace})
	cl.Shards = cfg.Shards

	total := cfg.Shards * cfg.Coordinators
	var coordIDs []proto.NodeID
	for i := 0; i < total; i++ {
		coordIDs = append(coordIDs, CoordinatorID(i))
	}
	cl.CoordinatorIDs = coordIDs

	// Ring r owns the contiguous ID block [r*perRing, (r+1)*perRing).
	rings := make([][]proto.NodeID, cfg.Shards)
	for r := 0; r < cfg.Shards; r++ {
		rings[r] = coordIDs[r*cfg.Coordinators : (r+1)*cfg.Coordinators]
	}
	if cfg.Shards > 1 {
		cl.ShardMap = shard.New(1, rings, cfg.ShardVNodes)
	}

	for i := 0; i < total; i++ {
		id := CoordinatorID(i)
		co := coordinator.New(coordinator.Config{
			Coordinators:         rings[i/cfg.Coordinators],
			ReplicationPeriod:    cfg.ReplicationPeriod,
			HeartbeatTimeout:     cfg.SuspicionTimeout,
			DBCost:               cfg.DBCost,
			MaxTasksPerAck:       cfg.MaxTasksPerAck,
			ReplicateParamsLimit: cfg.ReplicateParamsLimit,
			Shard:                cl.ShardMap,
			ShardSyncPeriod:      cfg.ShardSyncPeriod,
			Policy:               cfg.Policy,
			SpeculateFactor:      cfg.SpeculateFactor,
			WorkStealing:         cfg.WorkStealing,
			StealBatch:           cfg.StealBatch,
			OnJobFinished: func(call proto.CallID, at time.Time) {
				if _, ok := cl.FinishedAt[call]; !ok {
					cl.FinishedAt[call] = at
				}
				cl.FinishedPerCoord[id]++
			},
			Obs: cl.obsFor(id, cfg.Obs),
		})
		cl.Coordinators[id] = co
		cl.World.AddNode(id, co)
	}

	for i := 0; i < cfg.Servers; i++ {
		id := ServerID(i)
		// Sharded deployments attach servers round-robin to the rings:
		// each ring needs its own worker pool, since coordinators only
		// assign work to servers heartbeating them.
		serverCoords := coordIDs
		if cfg.Shards > 1 {
			serverCoords = rings[i%cfg.Shards]
		}
		speed := 1.0
		if cfg.ServerSpeed != nil {
			speed = cfg.ServerSpeed(i)
		}
		sv := server.New(server.Config{
			Coordinators:     serverCoords,
			HeartbeatPeriod:  cfg.HeartbeatPeriod,
			SuspicionTimeout: cfg.SuspicionTimeout,
			Parallelism:      cfg.Parallelism,
			SpeedFactor:      speed,
			Services:         cfg.Services,
			Obs:              cl.obsFor(id, cfg.Obs),
		})
		cl.ServerIDs = append(cl.ServerIDs, id)
		cl.Servers[id] = sv
		cl.World.AddNode(id, sv)
	}

	for i := 0; i < cfg.Clients; i++ {
		id := ClientID(i)
		ccfg := client.Config{
			User:             proto.UserID(fmt.Sprintf("user-%02d", i)),
			Session:          1,
			Coordinators:     coordIDs,
			PollPeriod:       cfg.PollPeriod,
			SuspicionTimeout: cfg.SuspicionTimeout,
			AckResyncTimeout: cfg.AckResyncTimeout,
			Logging:          cfg.Logging,
			Disk:             cfg.DiskModel,
			Shard:            cl.ShardMap,
			OnResult: func(res proto.Result, at time.Time) {
				if _, ok := cl.ResultAt[res.Call]; !ok {
					cl.ResultAt[res.Call] = at
				}
			},
			Obs: cl.obsFor(id, cfg.Obs),
		}
		if hook := cfg.OnSubmitComplete; hook != nil {
			cid := id
			ccfg.OnSubmitComplete = func(seq proto.RPCSeq, issued, completed time.Time) {
				hook(cid, seq, issued, completed)
			}
		}
		if hook := cfg.OnSyncReply; hook != nil {
			cid := id
			ccfg.OnSyncReply = func(rtt time.Duration) { hook(cid, rtt) }
		}
		ci := client.New(ccfg)
		cl.ClientIDs = append(cl.ClientIDs, id)
		cl.Clients[id] = ci
		cl.World.AddNode(id, ci)
	}

	// Boot order: coordinators first, then servers, then clients, so
	// initial syncs find a listening middle tier.
	for _, id := range coordIDs {
		cl.World.Start(id)
	}
	for _, id := range cl.ServerIDs {
		cl.World.Start(id)
	}
	for _, id := range cl.ClientIDs {
		cl.World.Start(id)
	}
	return cl
}

// obsFor wraps the shared registry into a per-node Observer and
// retains it on the cluster (the fleet monitor reads span rings from
// there); nil registry keeps instrumentation off.
func (c *Cluster) obsFor(id proto.NodeID, reg *obs.Registry) *obs.Observer {
	if reg == nil {
		return nil
	}
	ob := obs.NewWith(id, reg)
	c.Observers[id] = ob
	return ob
}

// Client returns the i-th client handle.
func (c *Cluster) Client(i int) *client.Client { return c.Clients[ClientID(i)] }

// Coordinator returns the i-th coordinator handle.
func (c *Cluster) Coordinator(i int) *coordinator.Coordinator {
	return c.Coordinators[CoordinatorID(i)]
}

// Server returns the i-th server handle.
func (c *Cluster) Server(i int) *server.Server { return c.Servers[ServerID(i)] }

// Submit schedules a submission on client i's event loop immediately.
func (c *Cluster) Submit(i int, service string, params []byte, execTime time.Duration, resultSize int) {
	cli := c.Client(i)
	c.World.Schedule(0, func() { cli.Submit(service, params, execTime, resultSize) })
}

// SubmitBatch schedules n identical submissions on client i.
func (c *Cluster) SubmitBatch(i, n int, service string, paramSize int, execTime time.Duration, resultSize int) {
	cli := c.Client(i)
	c.World.Schedule(0, func() {
		params := make([]byte, paramSize)
		for j := 0; j < n; j++ {
			cli.Submit(service, params, execTime, resultSize)
		}
	})
}

// RunUntilResults advances the world until client i has at least n
// results or the deadline elapses; reports success.
func (c *Cluster) RunUntilResults(i, n int, timeout time.Duration) bool {
	cli := c.Client(i)
	deadline := c.World.Now().Add(timeout)
	return c.World.RunUntil(func() bool { return cli.ResultCount() >= n }, deadline)
}

// TotalFinished returns the number of distinct calls whose results
// reached any coordinator.
func (c *Cluster) TotalFinished() int { return len(c.FinishedAt) }

// ShardRing returns ring r's coordinator IDs (the whole list when
// unsharded and r == 0).
func (c *Cluster) ShardRing(r int) []proto.NodeID {
	if c.ShardMap == nil {
		if r == 0 {
			return append([]proto.NodeID(nil), c.CoordinatorIDs...)
		}
		return nil
	}
	return append([]proto.NodeID(nil), c.ShardMap.Ring(r)...)
}

// CrashRing crashes every coordinator of ring r — the whole-ring fault
// the shard layer's guard/adoption protocol exists for.
func (c *Cluster) CrashRing(r int) {
	for _, id := range c.ShardRing(r) {
		c.World.Crash(id)
	}
}
