package sim

import (
	"testing"
	"testing/quick"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// probe is a minimal handler recording everything it sees.
type probe struct {
	env      node.Env
	started  int
	stopped  int
	received []proto.Message
	froms    []proto.NodeID
	onStart  func(env node.Env)
	onRecv   func(from proto.NodeID, msg proto.Message)
}

func (p *probe) Start(env node.Env) {
	p.env = env
	p.started++
	if p.onStart != nil {
		p.onStart(env)
	}
}
func (p *probe) Receive(from proto.NodeID, msg proto.Message) {
	p.received = append(p.received, msg)
	p.froms = append(p.froms, from)
	if p.onRecv != nil {
		p.onRecv(from, msg)
	}
}
func (p *probe) Stop() { p.stopped++ }

// ping is a trivial test message.
type ping struct{ N int }

func (*ping) Kind() string    { return "ping" }
func (p *ping) WireSize() int { return 8 }

func TestClockAdvancesWithEvents(t *testing.T) {
	w := NewWorld(Config{})
	var fired []time.Duration
	w.Schedule(5*time.Second, func() { fired = append(fired, w.Elapsed()) })
	w.Schedule(time.Second, func() { fired = append(fired, w.Elapsed()) })
	w.RunFor(10 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != time.Second || fired[1] != 5*time.Second {
		t.Fatalf("events at %v, want [1s 5s]", fired)
	}
	if w.Elapsed() != 10*time.Second {
		t.Fatalf("clock at %v, want 10s", w.Elapsed())
	}
}

func TestEventOrderFIFOAmongSimultaneous(t *testing.T) {
	w := NewWorld(Config{})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		w.Schedule(time.Second, func() { order = append(order, i) })
	}
	w.RunFor(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events ran out of order: %v", order)
		}
	}
}

func TestSendDelivery(t *testing.T) {
	w := NewWorld(Config{})
	a, b := &probe{}, &probe{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Start("a")
	w.Start("b")
	a.env.Send("b", &ping{N: 1})
	w.RunFor(time.Second)
	if len(b.received) != 1 {
		t.Fatalf("b received %d messages, want 1", len(b.received))
	}
	if b.froms[0] != "a" {
		t.Fatalf("sender = %s, want a", b.froms[0])
	}
}

func TestSendToDeadNodeDropped(t *testing.T) {
	w := NewWorld(Config{})
	a, b := &probe{}, &probe{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Start("a")
	w.Start("b")
	w.Crash("b")
	a.env.Send("b", &ping{})
	w.RunFor(time.Second)
	if len(b.received) != 0 {
		t.Fatal("dead node received a message")
	}
	_, dropped := w.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestCrashCancelsTimers(t *testing.T) {
	w := NewWorld(Config{})
	fired := false
	p := &probe{}
	p.onStart = func(env node.Env) {
		env.After(time.Second, func() { fired = true })
	}
	w.AddNode("n", p)
	w.Start("n")
	w.Crash("n")
	// Restart schedules its own timer (incarnation 2); the incarnation-1
	// timer must not fire.
	w.RunFor(5 * time.Second)
	if fired {
		t.Fatal("timer of crashed incarnation fired")
	}
	if p.stopped != 1 {
		t.Fatalf("Stop called %d times, want 1", p.stopped)
	}
}

func TestRestartKeepsDisk(t *testing.T) {
	w := NewWorld(Config{})
	p := &probe{}
	w.AddNode("n", p)
	w.Start("n")
	if err := p.env.Disk().Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	w.Restart("n")
	got, ok := p.env.Disk().Read("k")
	if !ok || string(got) != "v" {
		t.Fatalf("disk after restart = %q,%v; want v,true", got, ok)
	}
	if p.started != 2 {
		t.Fatalf("started %d times, want 2", p.started)
	}
}

func TestWipeDisk(t *testing.T) {
	w := NewWorld(Config{})
	p := &probe{}
	w.AddNode("n", p)
	w.Start("n")
	_ = p.env.Disk().Write("k", []byte("v"))
	w.Crash("n")
	w.WipeDisk("n")
	w.Start("n")
	if _, ok := p.env.Disk().Read("k"); ok {
		t.Fatal("wiped disk still holds data")
	}
}

func TestTimerStop(t *testing.T) {
	w := NewWorld(Config{})
	p := &probe{}
	fired := false
	p.onStart = func(env node.Env) {
		tm := env.After(time.Second, func() { fired = true })
		tm.Stop()
	}
	w.AddNode("n", p)
	w.Start("n")
	w.RunFor(5 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	w := NewWorld(Config{})
	count := 0
	var tick func()
	tick = func() {
		count++
		w.Schedule(time.Second, tick)
	}
	w.Schedule(time.Second, tick)
	ok := w.RunUntil(func() bool { return count >= 5 }, w.Now().Add(time.Hour))
	if !ok || count != 5 {
		t.Fatalf("RunUntil stopped at count=%d ok=%v", count, ok)
	}
	// Deadline respected when cond never holds.
	ok = w.RunUntil(func() bool { return false }, w.Now().Add(3*time.Second))
	if ok {
		t.Fatal("RunUntil reported success on unreachable condition")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		w := NewWorld(Config{Seed: 42})
		var at []time.Duration
		p := &probe{}
		p.onStart = func(env node.Env) {
			var loop func()
			loop = func() {
				at = append(at, w.Elapsed())
				jitter := time.Duration(env.Rand().Int63n(int64(time.Second)))
				env.After(jitter, loop)
			}
			env.After(0, loop)
		}
		w.AddNode("n", p)
		w.Start("n")
		w.RunFor(30 * time.Second)
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	w := NewWorld(Config{})
	w.AddNode("n", &probe{})
	w.AddNode("n", &probe{})
}

func TestMemDiskQuick(t *testing.T) {
	// Property: Read returns the last Write; Keys is sorted and
	// prefix-filtered.
	f := func(keys []string, val []byte) bool {
		d := NewMemDisk()
		for _, k := range keys {
			if err := d.Write(k, val); err != nil {
				return false
			}
		}
		for _, k := range keys {
			got, ok := d.Read(k)
			if !ok || string(got) != string(val) {
				return false
			}
		}
		all := d.Keys("")
		for i := 1; i < len(all); i++ {
			if all[i-1] >= all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemDiskIsolation(t *testing.T) {
	d := NewMemDisk()
	buf := []byte("abc")
	_ = d.Write("k", buf)
	buf[0] = 'X'
	got, _ := d.Read("k")
	if string(got) != "abc" {
		t.Fatal("disk aliased writer's buffer")
	}
	got[0] = 'Y'
	got2, _ := d.Read("k")
	if string(got2) != "abc" {
		t.Fatal("disk aliased reader's buffer")
	}
}

func TestSelfSendAfterCrashIgnored(t *testing.T) {
	// A handler crashing itself mid-event must not leak sends.
	w := NewWorld(Config{})
	a, b := &probe{}, &probe{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Start("a")
	w.Start("b")
	env := a.env
	w.Crash("a")
	env.Send("b", &ping{}) // stale env of dead incarnation
	w.RunFor(time.Second)
	if len(b.received) != 0 {
		t.Fatal("send from dead incarnation delivered")
	}
}
