// Package sim is a deterministic discrete-event simulator for RPC-V.
//
// Every experiment in the paper involves wall-clock phenomena measured
// in seconds to tens of minutes (5 s heartbeats, 30 s suspicion
// timeouts, 60 s replication periods, 10 s tasks, 1000-task Internet
// runs). Re-running them in real time would be slow and irreproducible,
// which is exactly why the authors moved to a confined cluster; we go
// one step further and make the environment fully virtual: a single
// event loop advances a virtual clock, the network model charges
// bandwidth and latency, and fault injection is exact to the
// microsecond. The same protocol handlers also run on the real TCP
// runtime (internal/rt).
//
// The simulator is single-threaded and deterministic: two runs with the
// same seed and the same scenario produce identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// Epoch is the virtual time at which every simulation starts.
var Epoch = time.Unix(1_000_000_000, 0).UTC()

// Network models message transfer between nodes. Implementations live
// in internal/netmodel; the interface is defined here so the simulator
// does not depend on any particular model.
//
// Transfer is called once per message in event order. It returns the
// virtual delivery time and whether the message is delivered at all
// (false models loss, partitions and hidden links). Implementations may
// keep per-link queue state; the simulator guarantees single-threaded,
// time-ordered calls.
type Network interface {
	Transfer(from, to proto.NodeID, size int, now time.Time) (deliverAt time.Time, ok bool)
}

// TraceFunc receives simulator trace lines when installed.
type TraceFunc func(now time.Time, nodeID proto.NodeID, line string)

// Config parameterizes a World.
type Config struct {
	// Seed drives all randomness in the simulation (node RNGs and the
	// world RNG). The zero seed is replaced by 1.
	Seed int64
	// Net is the network model. nil means instantaneous, lossless
	// delivery (useful in unit tests).
	Net Network
	// Trace, when non-nil, receives Env.Logf output and lifecycle events.
	Trace TraceFunc
}

// World is the simulation universe: virtual clock, event queue, nodes
// and network.
type World struct {
	now   time.Time
	seq   uint64
	queue eventQueue
	nodes map[proto.NodeID]*simNode
	order []proto.NodeID // registration order, for deterministic iteration
	net   Network
	trace TraceFunc
	rng   *rand.Rand

	delivered uint64 // messages delivered, for stats
	dropped   uint64 // messages lost (network or dead destination)
}

// NewWorld creates an empty world at Epoch.
func NewWorld(cfg Config) *World {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &World{
		now:   Epoch,
		nodes: make(map[proto.NodeID]*simNode),
		net:   cfg.Net,
		trace: cfg.Trace,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (w *World) Now() time.Time { return w.now }

// Elapsed returns the virtual time elapsed since Epoch.
func (w *World) Elapsed() time.Duration { return w.now.Sub(Epoch) }

// Stats returns the count of delivered and dropped messages so far.
func (w *World) Stats() (delivered, dropped uint64) { return w.delivered, w.dropped }

// simNode is the per-node bookkeeping: handler, liveness, incarnation
// counter (timers from a previous incarnation must not fire into a new
// one) and the persistent disk.
type simNode struct {
	id          proto.NodeID
	handler     node.Handler
	up          bool
	incarnation uint64
	disk        *MemDisk
	rng         *rand.Rand
	env         *simEnv
}

// AddNode registers a node with its protocol handler. The node is
// created down; call Start to boot it. Adding a duplicate ID panics:
// it is always a harness bug.
func (w *World) AddNode(id proto.NodeID, h node.Handler) {
	if _, dup := w.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %q", id))
	}
	n := &simNode{
		id:      id,
		handler: h,
		disk:    NewMemDisk(),
		rng:     rand.New(rand.NewSource(w.rng.Int63())),
	}
	w.nodes[id] = n
	w.order = append(w.order, id)
}

// Start boots a down node, invoking its handler's Start with a fresh
// environment. Starting an up node is a no-op.
func (w *World) Start(id proto.NodeID) {
	n := w.mustNode(id)
	if n.up {
		return
	}
	n.up = true
	n.incarnation++
	n.env = &simEnv{world: w, node: n, incarnation: n.incarnation}
	w.tracef(id, "start (incarnation %d)", n.incarnation)
	n.handler.Start(n.env)
}

// Crash kills a node abruptly, as the paper's fault generator does:
// pending timers die with the incarnation, in-flight messages to the
// node are dropped on delivery, volatile state is lost; the disk
// survives.
func (w *World) Crash(id proto.NodeID) {
	n := w.mustNode(id)
	if !n.up {
		return
	}
	n.up = false
	w.tracef(id, "crash")
	n.handler.Stop()
}

// Restart crashes (if needed) and immediately boots a node again. The
// handler's Start sees the disk contents of the previous incarnation,
// modelling a node restarting from its last local state.
func (w *World) Restart(id proto.NodeID) {
	n := w.mustNode(id)
	if n.up {
		w.Crash(id)
	}
	w.Start(id)
}

// IsUp reports whether the node is currently running.
func (w *World) IsUp(id proto.NodeID) bool { return w.mustNode(id).up }

// Disk exposes a node's persistent store to the test harness.
func (w *World) Disk(id proto.NodeID) *MemDisk { return w.mustNode(id).disk }

// WipeDisk erases a node's persistent store, modelling a machine whose
// local disk was lost (or a user restarting the client application on a
// different host). Wipe while the node is down, then Start it.
func (w *World) WipeDisk(id proto.NodeID) {
	n := w.mustNode(id)
	n.disk = NewMemDisk()
	if n.up {
		// A running node keeps its in-memory state; only future reads
		// see the empty disk. Callers normally wipe crashed nodes.
		n.env.node.disk = n.disk
	}
}

// Nodes returns all registered node IDs in registration order.
func (w *World) Nodes() []proto.NodeID {
	return append([]proto.NodeID(nil), w.order...)
}

func (w *World) mustNode(id proto.NodeID) *simNode {
	n, ok := w.nodes[id]
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", id))
	}
	return n
}

// Schedule runs fn on the event loop after d, independent of any node.
// It is the hook used by fault generators and experiment scripts.
func (w *World) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	w.push(w.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual time at (or now, if past).
func (w *World) ScheduleAt(at time.Time, fn func()) {
	if at.Before(w.now) {
		at = w.now
	}
	w.push(at, fn)
}

// Rand returns the world-level random source (used by scenario scripts;
// nodes get their own).
func (w *World) Rand() *rand.Rand { return w.rng }

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (w *World) Step() bool {
	if w.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&w.queue).(*event)
	if ev.at.After(w.now) {
		w.now = ev.at
	}
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the virtual clock
// passes deadline. It returns the number of events executed.
func (w *World) Run(deadline time.Time) int {
	steps := 0
	for w.queue.Len() > 0 {
		if next := w.queue.peek(); next.After(deadline) {
			w.now = deadline
			return steps
		}
		w.Step()
		steps++
	}
	if w.now.Before(deadline) {
		w.now = deadline
	}
	return steps
}

// RunFor executes events for d of virtual time.
func (w *World) RunFor(d time.Duration) int { return w.Run(w.now.Add(d)) }

// RunUntil executes events until cond returns true or the virtual clock
// passes deadline. It reports whether cond was satisfied. cond is
// checked after every event.
func (w *World) RunUntil(cond func() bool, deadline time.Time) bool {
	if cond() {
		return true
	}
	for w.queue.Len() > 0 && !w.queue.peek().After(deadline) {
		w.Step()
		if cond() {
			return true
		}
	}
	if w.now.Before(deadline) {
		w.now = deadline
	}
	return cond()
}

// Drain executes every remaining event regardless of time (useful to
// flush shutdown work in tests). Returns the number of events run.
func (w *World) Drain() int {
	steps := 0
	for w.Step() {
		steps++
	}
	return steps
}

func (w *World) push(at time.Time, fn func()) {
	w.seq++
	heap.Push(&w.queue, &event{at: at, seq: w.seq, fn: fn})
}

func (w *World) tracef(id proto.NodeID, format string, args ...any) {
	if w.trace != nil {
		w.trace(w.now, id, fmt.Sprintf(format, args...))
	}
}

// deliver routes one message to its destination node, applying the
// liveness check at delivery time: messages to a dead node vanish, as
// on a connection-less best-effort network.
func (w *World) deliver(from, to proto.NodeID, msg proto.Message) {
	n, ok := w.nodes[to]
	if !ok || !n.up {
		w.dropped++
		return
	}
	w.delivered++
	n.handler.Receive(from, msg)
}

// ---------------------------------------------------------------------
// Per-node environment
// ---------------------------------------------------------------------

type simEnv struct {
	world       *World
	node        *simNode
	incarnation uint64
}

var _ node.Env = (*simEnv)(nil)

func (e *simEnv) Self() proto.NodeID { return e.node.id }
func (e *simEnv) Now() time.Time     { return e.world.now }
func (e *simEnv) Rand() *rand.Rand   { return e.node.rng }
func (e *simEnv) Disk() node.Disk    { return e.node.disk }

func (e *simEnv) Logf(format string, args ...any) {
	e.world.tracef(e.node.id, format, args...)
}

// After schedules fn bound to this incarnation: if the node crashes or
// restarts before the timer fires, the callback is silently dropped.
func (e *simEnv) After(d time.Duration, fn func()) node.Timer {
	t := &simTimer{}
	e.world.Schedule(d, func() {
		if t.stopped || !e.live() {
			return
		}
		fn()
	})
	return t
}

func (e *simEnv) live() bool {
	return e.node.up && e.node.incarnation == e.incarnation
}

// Send hands the message to the network model and schedules delivery.
// A nil network delivers instantly (still asynchronously, through the
// event queue, so handlers never re-enter).
func (e *simEnv) Send(to proto.NodeID, msg proto.Message) {
	w := e.world
	from := e.node.id
	if !e.live() {
		// A handler may race its own crash within one event; a dead
		// sender's packets never reach the wire.
		return
	}
	at, ok := w.now, true
	if w.net != nil {
		at, ok = w.net.Transfer(from, to, msg.WireSize(), w.now)
	}
	if !ok {
		w.dropped++
		return
	}
	w.ScheduleAt(at, func() { w.deliver(from, to, msg) })
}

type simTimer struct{ stopped bool }

func (t *simTimer) Stop() { t.stopped = true }

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

type event struct {
	at  time.Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
func (q eventQueue) peek() time.Time { return q[0].at }

// ---------------------------------------------------------------------
// In-memory persistent disk
// ---------------------------------------------------------------------

// MemDisk is the simulator's node-local stable store. It survives
// crashes and restarts of its node (the simulator keeps it across
// incarnations), modelling the local disk that message logs and result
// archives are written to.
type MemDisk struct {
	data map[string][]byte
}

var _ node.Disk = (*MemDisk)(nil)

// NewMemDisk returns an empty store.
func NewMemDisk() *MemDisk { return &MemDisk{data: make(map[string][]byte)} }

// Write implements node.Disk.
func (d *MemDisk) Write(key string, value []byte) error {
	d.data[key] = append([]byte(nil), value...)
	return nil
}

// Read implements node.Disk.
func (d *MemDisk) Read(key string) ([]byte, bool) {
	v, ok := d.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete implements node.Disk.
func (d *MemDisk) Delete(key string) error {
	delete(d.data, key)
	return nil
}

// Keys implements node.Disk.
func (d *MemDisk) Keys(prefix string) []string {
	var keys []string
	for k := range d.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys (test helper).
func (d *MemDisk) Len() int { return len(d.data) }
