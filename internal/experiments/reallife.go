package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/db"
	"rpcv/internal/faultgen"
	"rpcv/internal/metrics"
	"rpcv/internal/netmodel"
	"rpcv/internal/proto"
	"rpcv/internal/workload"
)

// realLife assembles the paper's Internet testbed: two dedicated
// coordinators — "Lille" (coord-00, the primary all components prefer)
// and "LRI" (coord-01, the passive replica ~300 km away) — plus a
// population of desktop workers spread across the WAN, one client, the
// 1000-task Alcatel workload and a 60 s replication period.
type realLife struct {
	cl      *cluster.Cluster
	lille   proto.NodeID
	lri     proto.NodeID
	tasks   int
	start   time.Time
	lilleS  *metrics.Series
	lriS    *metrics.Series
	clientS *metrics.Series
}

const realLifeReplication = 60 * time.Second

// realLifeReplicationOverride, when non-zero, replaces the default
// replication period (the replication-period ablation uses it).
var realLifeReplicationOverride time.Duration

func newRealLife(opts Options) *realLife {
	tasks := 1000
	servers := 120
	if opts.Quick {
		tasks = 150
		servers = 40
	}
	net := netmodel.Internet(opts.Seed)
	net.SetClass(cluster.CoordinatorID(0), netmodel.CoordinatorClass())
	net.SetClass(cluster.CoordinatorID(1), netmodel.CoordinatorClass())

	replPeriod := realLifeReplication
	if realLifeReplicationOverride > 0 {
		replPeriod = realLifeReplicationOverride
	}

	cl := cluster.New(cluster.Config{
		Seed:              opts.Seed,
		Coordinators:      2,
		Servers:           servers,
		Clients:           1,
		Net:               net,
		DBCost:            db.RealLifeCost(),
		ReplicationPeriod: replPeriod,
		PollPeriod:        5 * time.Second,
		MaxTasksPerAck:    2,
	})
	r := &realLife{
		cl:      cl,
		lille:   cluster.CoordinatorID(0),
		lri:     cluster.CoordinatorID(1),
		tasks:   tasks,
		lilleS:  &metrics.Series{Name: "lille"},
		lriS:    &metrics.Series{Name: "lri"},
		clientS: &metrics.Series{Name: "client"},
	}
	return r
}

// submitAlcatel schedules the whole task list from the single client.
func (r *realLife) submitAlcatel(seed int64) {
	calls := workload.Alcatel(workload.AlcatelConfig{Tasks: r.tasks, Seed: seed})
	cli := r.cl.Client(0)
	r.cl.World.Schedule(0, func() {
		for _, c := range calls {
			params := make([]byte, c.ParamSize)
			cli.Submit(c.Service, params, c.ExecTime, c.ResultSize)
		}
	})
}

// sampleEveryMinute records each coordinator's completed-task counter
// (the y-axis of figures 9-11) once per virtual minute.
func (r *realLife) sampleEveryMinute() {
	r.start = r.cl.World.Now()
	var tick func()
	tick = func() {
		r.sampleNow()
		r.cl.World.Schedule(time.Minute, tick)
	}
	r.cl.World.Schedule(time.Minute, tick)
}

// sampleNow appends one sample to every series.
func (r *realLife) sampleNow() {
	at := r.cl.World.Now().Sub(r.start)
	r.lilleS.Add(at, float64(r.coordFinished(r.lille)))
	r.lriS.Add(at, float64(r.coordFinished(r.lri)))
	r.clientS.Add(at, float64(r.cl.Client(0).ResultCount()))
}

func (r *realLife) coordFinished(id proto.NodeID) int {
	if !r.cl.World.IsUp(id) {
		// A crashed coordinator reports its last known value: the plot
		// keeps the curve flat during the outage, as the paper's does.
		switch id {
		case r.lille:
			return int(r.lilleS.Last())
		default:
			return int(r.lriS.Last())
		}
	}
	return r.cl.Coordinators[id].FinishedCount()
}

// runUntilClientDone advances until the client holds every result, then
// records the final sample so the series reflect the terminal state.
func (r *realLife) runUntilClientDone(cap time.Duration) bool {
	ok := r.cl.RunUntilResults(0, r.tasks, cap)
	r.sampleNow()
	return ok
}

// seriesTable renders the per-minute series side by side.
func (r *realLife) seriesTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "minute", "lille", "lri", "client")
	for i := range r.lilleS.Points {
		minute := int(r.lilleS.Points[i].At / time.Minute)
		lri, client := 0.0, 0.0
		if i < len(r.lriS.Points) {
			lri = r.lriS.Points[i].Value
		}
		if i < len(r.clientS.Points) {
			client = r.clientS.Points[i].Value
		}
		t.AddRow(minute, int(r.lilleS.Points[i].Value), int(lri), int(client))
	}
	return t
}

// Fig9 regenerates figure 9 (Reference Execution without Fault): the
// Alcatel run with both coordinators alive. Lille receives every result
// directly; LRI trails it in 60 s plateaux — the discrete nature of
// passive replication.
func Fig9(opts Options) Result {
	opts.applyDefaults()
	r := newRealLife(opts)
	r.submitAlcatel(opts.Seed)
	r.sampleEveryMinute()
	r.runUntilClientDone(12 * time.Hour)
	return Result{
		Name:   "fig9",
		Tables: []*metrics.Table{r.seriesTable("Figure 9: reference execution without fault (completed tasks per minute)")},
		Series: []*metrics.Series{r.lilleS, r.lriS, r.clientS},
	}
}

// Fig10 regenerates figure 10 (Execution with Two Consecutive
// Coordinator Faults), reproducing the labelled sequence:
//
//	(1) both coordinators start;
//	(2) Lille is killed when ~400 tasks have completed;
//	(4) servers suspect Lille and fail over, LRI starts receiving
//	    results, (5) catches up past Lille's last count;
//	(6) Lille restarts once the population switched to LRI;
//	(7) LRI's replication brings Lille back near its state;
//	(8) LRI is killed; (9) client and servers fail back to Lille;
//	(10) the run terminates on Lille.
func Fig10(opts Options) Result {
	opts.applyDefaults()
	r := newRealLife(opts)
	r.submitAlcatel(opts.Seed)
	r.sampleEveryMinute()

	killAt := int(0.4 * float64(r.tasks))
	secondKillAt := int(0.75 * float64(r.tasks))
	gen := faultgen.New(r.cl.World)
	lilleCo := r.cl.Coordinators[r.lille]
	lriCo := r.cl.Coordinators[r.lri]
	gen.Script([]faultgen.Action{
		{
			// (2) stop Lille when ~40% of tasks are completed there.
			When: func() bool { return lilleCo.FinishedCount() >= killAt },
			Kill: r.lille,
			Then: func() {
				// (6) restart Lille after the population has switched:
				// two suspicion timeouts later.
				r.cl.World.Schedule(90*time.Second, func() { gen.Restart(r.lille) })
			},
		},
		{
			// (8) stop LRI once the run has progressed well past the
			// first fault and Lille has resynchronized via replication.
			When: func() bool {
				return r.cl.World.IsUp(r.lille) &&
					lriCo.FinishedCount() >= secondKillAt &&
					lilleCo.FinishedCount() >= secondKillAt-100
			},
			Kill: r.lri,
		},
	})

	completed := r.runUntilClientDone(24 * time.Hour)
	_ = completed
	return Result{
		Name:   "fig10",
		Tables: []*metrics.Table{r.seriesTable("Figure 10: execution with two consecutive coordinator faults")},
		Series: []*metrics.Series{r.lilleS, r.lriS, r.clientS},
	}
}

// Fig11 regenerates figure 11 (Execution Under a Suspected Partitioned
// Environment): the servers cannot see Lille (and so suspect it and
// attach to LRI), the client is forced to submit to Lille, and the two
// coordinators still see each other. Tasks and results flow client →
// Lille → (replication) → LRI → servers → LRI → (replication) → Lille →
// client: the system copes with inconsistent views as long as a path
// exists between client and servers.
func Fig11(opts Options) Result {
	opts.applyDefaults()
	r := newRealLife(opts)

	// Hide Lille from every server (both directions: their heartbeats
	// vanish and so would any reply).
	for _, sv := range r.cl.ServerIDs {
		r.cl.Net.BlockBoth(sv, r.lille)
	}
	// Force the client to Lille and hide LRI from it so it never fails
	// over (the paper forces the client's submissions to Lille).
	cli := r.cl.Client(0)
	r.cl.World.Schedule(0, func() { cli.ForcePreferred(r.lille) })
	r.cl.Net.BlockBoth(cluster.ClientID(0), r.lri)

	r.submitAlcatel(opts.Seed)
	r.sampleEveryMinute()
	r.runUntilClientDone(24 * time.Hour)
	return Result{
		Name:   "fig11",
		Tables: []*metrics.Table{r.seriesTable("Figure 11: execution under a suspected partitioned environment")},
		Series: []*metrics.Series{r.lilleS, r.lriS, r.clientS},
	}
}
