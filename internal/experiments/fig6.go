package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
)

// Fig6 regenerates figure 6 (Synchronization Time): the time for a
// client and a coordinator to resynchronize after a crash, depending on
// where the surviving logs live,
//
//   - "client logs only": the coordinator lost its state; the client
//     rebuilds it by resending its locally logged submissions (the fast
//     direction — the log list is a local disk access);
//   - "coordinator logs only": the client lost its log; it must first
//     retrieve the log list from the coordinator — the "additional
//     overhead ... before the actual logs exchange begins" — and only
//     then pull the data (the slow direction).
//
// Left: 16 calls with swept parameter sizes; right: swept call counts
// at ~300 B.
func Fig6(opts Options) Result {
	opts.applyDefaults()

	left := metrics.NewTable(
		"Figure 6 (left): synchronization time vs data size (16 calls)",
		"size", "client-logs-only", "coordinator-logs-only")
	for _, size := range sizeSweep(opts.Quick) {
		a := syncFromClientLogs(opts.Seed, 16, size)
		b := syncFromCoordinatorLogs(opts.Seed, 16, size)
		left.AddRow(metrics.FormatBytes(size), a, b)
	}

	right := metrics.NewTable(
		"Figure 6 (right): synchronization time vs number of calls (~300 B)",
		"calls", "client-logs-only", "coordinator-logs-only")
	for _, n := range countSweep(opts.Quick) {
		a := syncFromClientLogs(opts.Seed, n, 300)
		b := syncFromCoordinatorLogs(opts.Seed, n, 300)
		right.AddRow(n, a, b)
	}

	return Result{Name: "fig6", Tables: []*metrics.Table{left, right}}
}

// syncFromClientLogs measures rebuilding the coordinator's state from
// the client's logs: the coordinator loses its disk and restarts empty;
// the client resynchronizes and resends every logged submission. The
// measured interval runs from the sync trigger until the coordinator
// has re-registered all calls.
func syncFromClientLogs(seed int64, calls, size int) time.Duration {
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: 1,
		Servers:      0,
		Clients:      1,
		Logging:      msglog.BlockingPessimistic, // logs must survive
		// Isolate the synchronization protocol itself: no periodic
		// polling, no ack-verification resync, and no suspicion while a
		// multi-hundred-second bulk transfer is in flight.
		PollPeriod:       10 * time.Minute,
		AckResyncTimeout: -1,
		SuspicionTimeout: time.Hour,
	})
	cl.SubmitBatch(0, calls, "synthetic", size, time.Second, 64)
	cli := cl.Client(0)
	long := cl.World.Now().Add(12 * time.Hour)
	cl.World.RunUntil(func() bool { return cli.StatsNow().LoggedSeqs >= calls }, long)
	cl.World.RunFor(2 * time.Second)

	// The coordinator crashes and loses everything.
	cl.World.Crash(cluster.CoordinatorID(0))
	cl.World.WipeDisk(cluster.CoordinatorID(0))
	cl.World.Start(cluster.CoordinatorID(0))
	co := cl.Coordinator(0)

	base := co.StatsNow().SubmitsReceived
	start := cl.World.Now()
	cl.World.Schedule(0, cli.SyncNow)
	cl.World.RunUntil(func() bool {
		// The push direction completes when the coordinator has
		// *received* every resent log entry (sender-side completion);
		// the backup-side database inserts drain asynchronously.
		return co.StatsNow().SubmitsReceived >= base+calls
	}, cl.World.Now().Add(12*time.Hour))
	return cl.World.Now().Sub(start)
}

// syncFromCoordinatorLogs measures the reverse: the client loses its
// log (e.g. the user relaunches the application on another machine);
// its state is rebuilt from the coordinator's logs. The measured
// interval runs from the sync trigger until the client holds all result
// payloads again.
func syncFromCoordinatorLogs(seed int64, calls, size int) time.Duration {
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: 1,
		Servers:      4,
		Clients:      1,
		Logging:      msglog.BlockingPessimistic,
		// Recovery must come from the synchronization protocol alone
		// (same isolation as the client-logs direction).
		PollPeriod:       10 * time.Minute,
		AckResyncTimeout: -1,
		SuspicionTimeout: time.Hour,
	})
	// The result payloads carry the swept size so the data volume of
	// the exchange matches the client-logs direction.
	cl.SubmitBatch(0, calls, "synthetic", 300, time.Second, size)
	long := cl.World.Now().Add(12 * time.Hour)
	if !cl.RunUntilResults(0, calls, 12*time.Hour) {
		return 0
	}
	_ = long
	cl.World.RunFor(2 * time.Second)

	// The client crashes and loses its disk; the user relaunches the
	// application (possibly on another machine) and triggers session
	// recovery by the unique IDs — the explicit synchronization.
	cl.World.Crash(cluster.ClientID(0))
	cl.World.WipeDisk(cluster.ClientID(0))
	start := cl.World.Now()
	cl.World.Start(cluster.ClientID(0))
	cli := cl.Client(0)
	cl.World.Schedule(0, cli.SyncNow)
	cl.World.RunUntil(func() bool {
		return cli.ResultCount() >= calls
	}, cl.World.Now().Add(12*time.Hour))
	return cl.World.Now().Sub(start)
}
