package experiments

import (
	"fmt"

	"rpcv/internal/conform"
	"rpcv/internal/metrics"
)

// Sim runs the conformance + chaos matrix (internal/conform, the
// engine behind rpcv-sim) and reports the per-cell verdict table as
// an experiment result, so rpcv-bench -fig sim -json lands the grid's
// agreement evidence in BENCH_sim.json next to the performance
// figures. Quick trims to the CI smoke matrix; the full run is the
// embedded default suite — every wire codec, store engine, transport,
// scheduling policy and a multi-loop coordinator, each under the full
// fault taxonomy.
func Sim(opts Options) Result {
	opts.applyDefaults()
	suite, err := conform.ParseSuite(conform.DefaultSuite)
	if err != nil {
		// The embedded suite is covered by conform's tests; failing to
		// parse it is a build defect, not a runtime condition.
		panic(fmt.Sprintf("sim: embedded suite: %v", err))
	}
	rep, err := conform.Run(suite, conform.Options{
		Seed:        opts.Seed,
		Quick:       opts.Quick,
		ArtifactDir: opts.BundleDir,
	})
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	summary := metrics.NewTable("Conformance summary", "suite", "cells-run", "verdict")
	verdict := "PASS"
	if !rep.Passed {
		verdict = "FAIL"
	}
	summary.AddRow(rep.Suite, len(rep.Verdicts), verdict)
	return Result{Name: "sim", Tables: []*metrics.Table{rep.Table, summary}}
}
