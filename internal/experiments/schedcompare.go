package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/faultgen"
	"rpcv/internal/metrics"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
)

// SchedCompare measures the pluggable scheduling subsystem beyond the
// paper: batch makespan and per-call latency quantiles for each policy
// of internal/sched on a heterogeneous population (every fourth server
// 10x slow, 4 concurrent slots each) under a figure-7-style per-server
// Poisson fault load. A warmup batch runs first, unmeasured, so the
// speed estimator starts the measured batch knowing its servers — the
// steady state of a long-running grid, and the regime the
// fastest-first gate is designed for.
//
// Expected shape: "fastest-first" and "speculative" beat "fcfs" on
// both makespan and p95, because under FCFS each straggler captures a
// full slot-batch of tasks and holds them for 10x their nominal time
// (>5% of the batch — squarely inside p95), while fastest-first
// refuses stragglers work the fast pool would finish sooner and
// speculative races duplicates against them. "deadline" reorders the
// queue by the calls' soft deadlines and tracks fcfs on aggregate
// numbers here (the deadlines follow submission order).
//
// A second table shows cross-shard work stealing: the same batch
// submitted to one shard of a two-shard deployment, with the idle
// shard either watching (off) or stealing (on). Stealing must cut the
// makespan without a single duplicate execution or stored result.
func SchedCompare(opts Options) Result {
	opts.applyDefaults()

	policies := []string{"fcfs", "fastest-first", "deadline", "speculative"}
	// The batch must outlast a straggler's slot-custody several times
	// over, or the makespan is set by crash-recovery chains instead of
	// scheduling (36 tasks per server ~ 3 custody generations).
	tasks, servers := 576, 16
	if opts.Quick {
		tasks, servers = 96, 8
	}

	policyTable := metrics.NewTable(
		"Scheduling policies: makespan and latency quantiles, heterogeneous servers (every 4th 10x slow) under Poisson server faults",
		"policy", "makespan", "p50", "p95", "p99", "speculated", "rescheduled")
	for _, policy := range policies {
		r := policyRun(opts.Seed, policy, tasks, servers)
		policyTable.AddRow(policy, r.makespan, r.lat.P50(), r.lat.P95(), r.lat.P99(),
			r.speculated, r.rescheduled)
	}

	stealTable := metrics.NewTable(
		"Cross-shard work stealing: one hot shard, one idle shard (2 shards, 5s tasks, no faults)",
		"stealing", "makespan", "stolen", "executed", "dup-results")
	for _, stealing := range []bool{false, true} {
		r := stealRun(opts.Seed, stealing, tasks/2)
		mode := "off"
		if stealing {
			mode = "on"
		}
		stealTable.AddRow(mode, r.makespan, r.stolen, r.executed, r.dupResults)
	}

	return Result{Name: "sched-compare", Tables: []*metrics.Table{policyTable, stealTable}}
}

// policyRunResult carries one policy configuration's measurements.
type policyRunResult struct {
	makespan    time.Duration
	lat         metrics.Histogram
	speculated  int
	rescheduled int
}

// policyRun executes the heterogeneous-straggler workload once: an
// unmeasured warmup batch large enough that every server completes
// work (teaching the estimator the true speeds), then the measured
// batch under the fault load.
func policyRun(seed int64, policy string, tasks, servers int) policyRunResult {
	const (
		taskTime        = 10 * time.Second
		faultsPerMinute = 0.25
		downtime        = 5 * time.Second
		parallelism     = 4
	)
	slow := func(i int) float64 {
		if i%4 == 0 {
			return 10
		}
		return 1
	}
	// One registry shared across the deployment: the run's scheduling
	// aggregates are node-labeled metric sums, not per-node stat polls.
	reg := obs.NewRegistry()
	cl := cluster.New(cluster.Config{
		Seed:              seed,
		Coordinators:      2,
		Servers:           servers,
		Clients:           1,
		Policy:            policy,
		ServerSpeed:       slow,
		Parallelism:       parallelism,
		ReplicationPeriod: 10 * time.Second,
		Obs:               reg,
	})

	// Warmup: 8 tasks per server guarantees even the slow machines
	// complete a few, so their speed estimates are in place (and their
	// slot counts advertised) before measurement starts.
	warmup := 8 * servers
	cl.SubmitBatch(0, warmup, "synthetic", 256, taskTime, 64)
	cl.RunUntilResults(0, warmup, time.Hour)

	gen := faultgen.New(cl.World)
	perNodeMTBF := time.Duration(float64(time.Minute) / faultsPerMinute)
	gen.Poisson(cl.ServerIDs, perNodeMTBF, downtime)

	start := cl.World.Now()
	if policy == "deadline" {
		// Deadline runs carry per-call soft deadlines so EDF has
		// something to order by: a generous slack proportional to the
		// submission index (the natural "finish in order" contract).
		ci := cl.Client(0)
		cl.World.Schedule(0, func() {
			params := make([]byte, 256)
			for j := 0; j < tasks; j++ {
				slack := time.Minute + time.Duration(j)*taskTime
				ci.SubmitWithDeadline("synthetic", params, taskTime, 64, slack)
			}
		})
	} else {
		cl.SubmitBatch(0, tasks, "synthetic", 256, taskTime, 64)
	}

	var r policyRunResult
	const cap = 4 * time.Hour
	done := cl.RunUntilResults(0, warmup+tasks, cap)
	gen.Stop()
	if !done {
		r.makespan = cap
	} else {
		r.makespan = cl.World.Now().Sub(start)
	}
	for call, at := range cl.ResultAt {
		if call.Seq > proto.RPCSeq(warmup) {
			r.lat.Add(at.Sub(start))
		}
	}
	r.speculated = int(reg.Sum("rpcv_coord_speculated_total"))
	r.rescheduled = int(reg.Sum("rpcv_coord_requeues_total"))
	return r
}

// stealRunResult carries one work-stealing configuration's numbers.
type stealRunResult struct {
	makespan   time.Duration
	stolen     int
	executed   int
	dupResults int
}

// stealRun submits the whole batch to one shard of a two-shard
// deployment (the client's session hashes to a single owner ring) and
// measures how the idle shard's capacity is — or is not — recruited.
func stealRun(seed int64, stealing bool, tasks int) stealRunResult {
	reg := obs.NewRegistry()
	cl := cluster.New(cluster.Config{
		Seed:              seed,
		Shards:            2,
		Coordinators:      1,
		Servers:           8, // 4 per shard
		Clients:           1,
		WorkStealing:      stealing,
		ReplicationPeriod: 5 * time.Second,
		ShardSyncPeriod:   2 * time.Second,
		Obs:               reg,
	})
	start := cl.World.Now()
	cl.SubmitBatch(0, tasks, "synthetic", 256, 5*time.Second, 64)

	var r stealRunResult
	const cap = 2 * time.Hour
	if !cl.RunUntilResults(0, tasks, cap) {
		r.makespan = cap
	} else {
		r.makespan = cl.World.Now().Sub(start)
	}
	r.stolen = int(reg.Sum("rpcv_coord_steals_in_total"))
	r.dupResults = int(reg.Sum("rpcv_coord_dup_results_total"))
	r.executed = int(reg.Sum("rpcv_server_executed_total"))
	return r
}
