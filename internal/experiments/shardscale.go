package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/faultgen"
	"rpcv/internal/metrics"
	"rpcv/internal/proto"
)

// ShardScale measures the sharded coordination layer beyond the paper:
// aggregate submission throughput and client synchronization latency as
// the number of coordinator rings grows 1 -> 4 -> 16, under the
// figure-7 fault load (Poisson per-server faults with restart).
//
// The workload keeps everything constant except the shard count: 16
// clients submit a burst each, 16 servers execute, every ring has 2
// coordinators. With one ring, every submission's database insert
// queues behind one serialized coordinator database — the figure-5
// ceiling; with N rings the sessions hash across N independent
// databases, so aggregate submission throughput must grow monotonically
// with N. Sync latency shows the same contention through a different
// lens: a synchronization scans the session's records behind whatever
// else that ring's database is doing. End-to-end completion time is
// reported for honesty — it is bounded by the fixed server population,
// not by coordination, so it does not scale the same way.
func ShardScale(opts Options) Result {
	opts.applyDefaults()

	shardCounts := []int{1, 4, 16}
	callsPerClient := 32
	if opts.Quick {
		callsPerClient = 8
	}

	table := metrics.NewTable(
		"Shard scaling: submission throughput and sync latency vs shard count (16 clients, 16 servers, 2 coordinators/ring, fig-7 fault load)",
		"shards", "coordinators", "submits/s", "mean-sync", "p95-sync", "all-results")
	for _, n := range shardCounts {
		r := shardRun(opts.Seed, n, callsPerClient)
		table.AddRow(n, 2*n, r.throughput, r.syncs.Mean(), r.syncs.Quantile(0.95), r.completion)
	}
	return Result{Name: "shard-scale", Tables: []*metrics.Table{table}}
}

// shardRunResult carries one configuration's measurements.
type shardRunResult struct {
	throughput float64 // completed submissions per second of virtual time
	syncs      metrics.Sample
	completion time.Duration
}

// shardRun executes the shard-scaling workload once.
func shardRun(seed int64, shards, callsPerClient int) shardRunResult {
	const (
		clients   = 16
		servers   = 16
		perRing   = 2
		taskTime  = 2 * time.Second
		paramSize = 2 << 10
		// Figure-7 fault load: per-server Poisson faults, 2 faults/min
		// per node, 5 s downtime (population constant).
		faultsPerMinute = 2.0
		downtime        = 5 * time.Second
	)

	var res shardRunResult
	var start time.Time // set after boot, before any event runs
	var lastSubmitDone time.Duration
	submitsDone := 0

	cl := cluster.New(cluster.Config{
		Seed:              seed,
		Shards:            shards,
		Coordinators:      perRing,
		Servers:           servers,
		Clients:           clients,
		ReplicationPeriod: 10 * time.Second,
		OnSubmitComplete: func(_ proto.NodeID, _ proto.RPCSeq, _, completed time.Time) {
			submitsDone++
			if d := completed.Sub(start); d > lastSubmitDone {
				lastSubmitDone = d
			}
		},
		OnSyncReply: func(_ proto.NodeID, rtt time.Duration) {
			res.syncs.Add(rtt)
		},
	})
	start = cl.World.Now()

	gen := faultgen.New(cl.World)
	perNodeMTBF := time.Duration(float64(time.Minute) / faultsPerMinute)
	gen.Poisson(cl.ServerIDs, perNodeMTBF, downtime)

	for i := 0; i < clients; i++ {
		cl.SubmitBatch(i, callsPerClient, "synthetic", paramSize, taskTime, 64)
	}
	// Periodic explicit synchronizations sample the coordinators' sync
	// responsiveness under load (the experiment's latency axis).
	for i := 0; i < clients; i++ {
		ci := cl.Client(i)
		for tick := 1; tick <= 4; tick++ {
			cl.World.Schedule(time.Duration(tick)*20*time.Second, ci.SyncNow)
		}
	}

	total := clients * callsPerClient
	const cap = 2 * time.Hour
	deadline := start.Add(cap)
	cl.World.RunUntil(func() bool {
		if submitsDone < total {
			return false
		}
		for i := 0; i < clients; i++ {
			if cl.Client(i).ResultCount() < callsPerClient {
				return false
			}
		}
		return true
	}, deadline)
	gen.Stop()

	res.completion = cl.World.Now().Sub(start)
	if submitsDone >= total && lastSubmitDone > 0 {
		res.throughput = float64(total) / lastSubmitDone.Seconds()
	}
	return res
}
