package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// quick returns quick-mode options with a fixed seed.
func quick() Options { return Options{Seed: 2004, Quick: true} }

func dump(t *testing.T, r Result) {
	t.Helper()
	if testing.Verbose() {
		for _, tb := range r.Tables {
			tb.Write(os.Stderr)
		}
	}
}

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	if s == "0" {
		return 0
	}
	// metrics.FormatDuration emits Go-parsable unit suffixes.
	d, err := time.ParseDuration(strings.ReplaceAll(s, "us", "µs"))
	if err != nil {
		t.Fatalf("cannot parse duration %q: %v", s, err)
	}
	return d
}

// parseFloatCell parses a %.3g-formatted numeric cell.
func parseFloatCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", cell, err)
	}
	return v
}

func TestFig4Shapes(t *testing.T) {
	r := Fig4(quick())
	dump(t, r)
	left := r.Tables[0]
	if left.Rows() == 0 {
		t.Fatal("fig4 left empty")
	}
	for row := 0; row < left.Rows(); row++ {
		opt := parseDur(t, left.Cell(row, 1))
		nbp := parseDur(t, left.Cell(row, 2))
		bp := parseDur(t, left.Cell(row, 3))
		// Pessimistic blocking must cost the most; optimistic the least.
		if bp < opt {
			t.Errorf("row %d: blocking pessimistic (%v) cheaper than optimistic (%v)", row, bp, opt)
		}
		if nbp < opt {
			t.Errorf("row %d: non-blocking pessimistic (%v) cheaper than optimistic (%v)", row, nbp, opt)
		}
		if bp < nbp {
			t.Errorf("row %d: blocking (%v) cheaper than non-blocking (%v)", row, bp, nbp)
		}
	}
	// Submission time must grow with size across the sweep.
	first := parseDur(t, left.Cell(0, 3))
	lastRow := left.Rows() - 1
	last := parseDur(t, left.Cell(lastRow, 3))
	if last <= first {
		t.Errorf("blocking submission time did not grow with size: %v -> %v", first, last)
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(quick())
	dump(t, r)
	left, right := r.Tables[0], r.Tables[1]
	// Size sweep: biggest payload must take much longer than smallest,
	// and the Internet (bandwidth-bound) must be slower than the
	// confined cluster at large sizes.
	lr := left.Rows() - 1
	confSmall := parseDur(t, left.Cell(0, 1))
	confBig := parseDur(t, left.Cell(lr, 1))
	netBig := parseDur(t, left.Cell(lr, 2))
	if confBig <= confSmall {
		t.Errorf("confined replication did not grow with size: %v -> %v", confSmall, confBig)
	}
	if netBig <= confBig {
		t.Errorf("internet replication (%v) not slower than confined (%v) at large size", netBig, confBig)
	}
	// Count sweep: linear-ish growth, and real-life DBs faster at small
	// payloads (paper: replication time lower than confined).
	rr := right.Rows() - 1
	confN1 := parseDur(t, right.Cell(0, 1))
	confNBig := parseDur(t, right.Cell(rr, 1))
	if confNBig <= confN1 {
		t.Errorf("confined replication did not grow with task count: %v -> %v", confN1, confNBig)
	}
}

func TestFig6Shapes(t *testing.T) {
	r := Fig6(quick())
	dump(t, r)
	right := r.Tables[1]
	for row := 0; row < right.Rows(); row++ {
		fast := parseDur(t, right.Cell(row, 1))
		slow := parseDur(t, right.Cell(row, 2))
		if fast == 0 || slow == 0 {
			t.Fatalf("row %d: sync did not complete (fast=%v slow=%v)", row, fast, slow)
		}
		if slow <= fast {
			t.Errorf("row %d: coordinator-logs sync (%v) not slower than client-logs sync (%v)",
				row, slow, fast)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 sweep is slow")
	}
	r := Fig7(quick())
	dump(t, r)
	tb := r.Tables[0]
	base := parseDur(t, tb.Cell(0, 1))
	// Zero faults: overhead over the 60 s ideal must be modest (paper:
	// ~9-11 s) — allow up to 60 s of slack for heartbeat granularity.
	if base < 60*time.Second || base > 2*time.Minute {
		t.Errorf("no-fault execution time %v outside [60s, 120s]", base)
	}
	lastRow := tb.Rows() - 1
	srvHigh := parseDur(t, tb.Cell(lastRow, 1))
	coordHigh := parseDur(t, tb.Cell(lastRow, 2))
	if srvHigh <= base {
		t.Errorf("server faults did not slow execution: %v vs base %v", srvHigh, base)
	}
	// Paper's key claim: server faults hurt more than coordinator faults.
	if srvHigh <= coordHigh {
		t.Errorf("server-fault time (%v) not above coordinator-fault time (%v)", srvHigh, coordHigh)
	}
}

func TestFig8Shapes(t *testing.T) {
	r := Fig8(quick())
	dump(t, r)
	hist := r.Tables[0]
	total := 0
	nonzero := 0
	for row := 0; row < hist.Rows(); row++ {
		var n int
		if _, err := parseInt(hist.Cell(row, 1), &n); err != nil {
			t.Fatalf("bad count %q", hist.Cell(row, 1))
		}
		total += n
		if n > 0 {
			nonzero++
		}
	}
	if total != 200 {
		t.Errorf("histogram total %d, want 200", total)
	}
	if nonzero < 5 {
		t.Errorf("distribution too narrow: only %d non-empty buckets", nonzero)
	}
}

func parseInt(s string, out *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return n, nil
}

var errBadInt = errorString("bad int")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 run is slow")
	}
	r := Fig9(quick())
	dump(t, r)
	lille, lri := r.Series[0], r.Series[1]
	if lille.Last() == 0 {
		t.Fatal("no tasks completed at lille")
	}
	// LRI must trail Lille but eventually converge via replication.
	if lri.Last() < lille.Last()*0.9 {
		t.Errorf("lri final count %v too far below lille %v", lri.Last(), lille.Last())
	}
	// The replica curve must show plateaux (discrete 60 s replication).
	if lri.Plateaus(1) == 0 {
		t.Error("lri curve shows no plateaus; replication should be discrete")
	}
}

func TestFig10CompletesDespiteCoordinatorFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 run is slow")
	}
	r := Fig10(quick())
	dump(t, r)
	client := r.Series[2]
	if client.Last() < 150 {
		t.Fatalf("client completed %v/150 tasks despite coordinator faults", client.Last())
	}
}

func TestFig11ProgressUnderPartitionedViews(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 run is slow")
	}
	r := Fig11(quick())
	dump(t, r)
	client := r.Series[2]
	if client.Last() < 150 {
		t.Fatalf("client completed %v/150 tasks under partitioned views", client.Last())
	}
}

func TestAblationRecoveryGuarantees(t *testing.T) {
	r := AblationRecovery(quick())
	dump(t, r)
	tb := r.Tables[0]
	// Rows: optimistic, non-blocking, blocking.
	var lost [3]int
	for row := 0; row < 3; row++ {
		if _, err := parseInt(tb.Cell(row, 3), &lost[row]); err != nil {
			t.Fatalf("bad cell %q", tb.Cell(row, 3))
		}
	}
	if lost[1] != 0 || lost[2] != 0 {
		t.Errorf("pessimistic logging silently lost calls: %v", lost)
	}
	if lost[0] == 0 {
		t.Error("optimistic logging lost nothing; the crash point no longer exercises the flush lag")
	}
}

func TestAblationHeartbeatShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heartbeat sweep is slow")
	}
	r := AblationHeartbeat(quick())
	dump(t, r)
	tb := r.Tables[0]
	// Traffic must decrease as the period grows.
	first, last := tb.Cell(0, 3), tb.Cell(tb.Rows()-1, 3)
	var mFirst, mLast int
	if _, err := parseInt(first, &mFirst); err != nil {
		t.Fatalf("bad cell %q", first)
	}
	if _, err := parseInt(last, &mLast); err != nil {
		t.Fatalf("bad cell %q", last)
	}
	if mLast >= mFirst {
		t.Errorf("message count did not fall with slower heartbeats: %d -> %d", mFirst, mLast)
	}
}

// TestShardScaleMonotonicThroughput is the shard layer's acceptance
// check: under the figure-7 fault load, aggregate submission throughput
// must rise monotonically from 1 to 4 to 16 shards.
func TestShardScaleMonotonicThroughput(t *testing.T) {
	r := ShardScale(quick())
	dump(t, r)
	tb := r.Tables[0]
	if tb.Rows() != 3 {
		t.Fatalf("want rows for 1/4/16 shards, got %d", tb.Rows())
	}
	var prev float64
	for row := 0; row < tb.Rows(); row++ {
		cell := tb.Cell(row, 2)
		var tp float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(cell, "e+", "e"), "%g", &tp); err != nil {
			t.Fatalf("bad throughput cell %q: %v", cell, err)
		}
		if tp <= prev {
			t.Errorf("row %d (shards %s): throughput %.1f did not rise above %.1f",
				row, tb.Cell(row, 0), tp, prev)
		}
		prev = tp
	}
	// Sync latency must not grow with shard count (less contention per
	// ring): compare the first and last rows' means.
	first, last := tb.Cell(0, 3), tb.Cell(tb.Rows()-1, 3)
	df, err1 := time.ParseDuration(strings.ReplaceAll(first, "us", "µs"))
	dl, err2 := time.ParseDuration(strings.ReplaceAll(last, "us", "µs"))
	if err1 != nil || err2 != nil {
		t.Fatalf("bad sync cells %q %q", first, last)
	}
	if dl > df {
		t.Errorf("mean sync latency grew with shards: %v -> %v", df, dl)
	}
}

// TestSchedCompareShapes asserts the scheduling subsystem's headline
// comparisons: under the heterogeneous-straggler fault workload,
// speculative execution and fastest-first matchmaking both beat FCFS
// on makespan and p95 latency; work stealing recruits the idle shard,
// cuts the makespan and never duplicates an execution or a stored
// result.
func TestSchedCompareShapes(t *testing.T) {
	r := SchedCompare(quick())
	dump(t, r)

	policies := r.Tables[0]
	row := map[string]int{}
	for i := 0; i < policies.Rows(); i++ {
		row[policies.Cell(i, 0)] = i
	}
	makespan := func(p string) time.Duration { return parseDur(t, policies.Cell(row[p], 1)) }
	p95 := func(p string) time.Duration { return parseDur(t, policies.Cell(row[p], 3)) }

	for _, p := range []string{"fastest-first", "speculative"} {
		if makespan(p) >= makespan("fcfs") {
			t.Errorf("%s makespan %v not below fcfs %v", p, makespan(p), makespan("fcfs"))
		}
		if p95(p) >= p95("fcfs") {
			t.Errorf("%s p95 %v not below fcfs %v", p, p95(p), p95("fcfs"))
		}
	}
	var specIssued int
	fmt.Sscanf(policies.Cell(row["speculative"], 5), "%d", &specIssued)
	if specIssued == 0 {
		t.Error("speculative policy never issued a duplicate")
	}

	steal := r.Tables[1]
	offMk := parseDur(t, steal.Cell(0, 1))
	onMk := parseDur(t, steal.Cell(1, 1))
	if onMk >= offMk {
		t.Errorf("work stealing makespan %v not below no-stealing %v", onMk, offMk)
	}
	var stolen, execOff, execOn, dups int
	fmt.Sscanf(steal.Cell(1, 2), "%d", &stolen)
	fmt.Sscanf(steal.Cell(0, 3), "%d", &execOff)
	fmt.Sscanf(steal.Cell(1, 3), "%d", &execOn)
	fmt.Sscanf(steal.Cell(1, 4), "%d", &dups)
	if stolen == 0 {
		t.Error("idle shard never stole work")
	}
	if execOn != execOff {
		t.Errorf("stealing changed total executions: %d vs %d (duplicates?)", execOn, execOff)
	}
	if dups != 0 {
		t.Errorf("stealing produced %d duplicate stored results", dups)
	}
}

// TestTransportComparePooledBeatsLegacy asserts the tentpole shape of
// the transport experiment: the pooled persistent-connection transport
// must beat connection-per-message on sustained submit throughput and
// p99 submit latency, with every submission acknowledged on both
// transports (no delivery regression). This is a wall-clock, real-
// socket experiment; one retry absorbs a scheduler hiccup on a loaded
// CI machine.
func TestTransportComparePooledBeatsLegacy(t *testing.T) {
	var failure string
	for attempt := 0; attempt < 2; attempt++ {
		r := TransportCompare(Options{Seed: 2004 + int64(attempt), Quick: true})
		dump(t, r)
		tb := r.Tables[0]
		if tb.Rows() != 3 {
			t.Fatalf("rows = %d, want per-message/gob, pooled/gob and pooled/binary", tb.Rows())
		}
		legacyTp := parseFloatCell(t, tb.Cell(0, 2))
		gobTp := parseFloatCell(t, tb.Cell(1, 2))
		binTp := parseFloatCell(t, tb.Cell(2, 2))
		legacyP99 := parseDur(t, tb.Cell(0, 4))
		gobP99 := parseDur(t, tb.Cell(1, 4))
		binP99 := parseDur(t, tb.Cell(2, 4))
		legacyAcked, gobAcked, binAcked := tb.Cell(0, 5), tb.Cell(1, 5), tb.Cell(2, 5)
		// An acked mismatch on a loaded machine is the 60 s watchdog
		// truncating a run, not a protocol bug — retryable like the
		// performance shape, not fatal. Both pooled codecs must beat
		// the per-message baseline; binary-vs-gob is reported (its
		// advantage is codec CPU, which this coordination-bound
		// miniature grid does not always expose above noise).
		if legacyAcked == gobAcked && legacyAcked == binAcked && legacyAcked != "0" &&
			gobTp > legacyTp && gobP99 <= legacyP99 &&
			binTp > legacyTp && binP99 <= legacyP99 {
			return
		}
		failure = fmt.Sprintf(
			"pooled/gob %.3g submits/s p99 %v acked %s, pooled/binary %.3g submits/s p99 %v acked %s vs per-message %.3g submits/s p99 %v acked %s",
			gobTp, gobP99, gobAcked, binTp, binP99, binAcked, legacyTp, legacyP99, legacyAcked)
	}
	t.Errorf("pooled transport did not beat per-message: %s", failure)
}

// TestTransportCompareCoresScaling asserts the cores dimension of the
// transport experiment: a 4-loop coordinator must sustain materially
// higher submit throughput than the single-loop baseline, with every
// submission acknowledged at every loop count (delivery equality). The
// bottleneck the loops multiply is the modelled database's serialized
// virtual latency, so the speedup does not require 4 physical cores —
// but scheduling noise on a loaded CI machine still warrants a retry,
// and the full 2.5x acceptance bar only applies where the box has the
// cores to back it. Under the race detector the bar drops to "scales
// at all": instrumentation serializes the loops enough to compress the
// multiplier, and the race build's job is catching races, not perf —
// the plain-build run holds the perf line.
func TestTransportCompareCoresScaling(t *testing.T) {
	want := 2.0
	if runtime.NumCPU() >= 4 {
		want = 2.5
	}
	if raceEnabled {
		want = 1.2
	}
	var failure string
	for attempt := 0; attempt < 2; attempt++ {
		r := TransportCompare(Options{Seed: 2004 + int64(attempt), Quick: true})
		dump(t, r)
		if len(r.Tables) < 2 {
			t.Fatalf("tables = %d, want the transport table plus the cores table", len(r.Tables))
		}
		tb := r.Tables[1]
		if tb.Rows() != 3 {
			t.Fatalf("cores rows = %d, want loops 1, 2 and 4", tb.Rows())
		}
		equal := true
		for row := 0; row < tb.Rows(); row++ {
			if cell := tb.Cell(row, 5); !deliveredEqual(cell) {
				// Watchdog truncation on a loaded machine, not a
				// protocol bug — retryable like the throughput shape.
				failure = fmt.Sprintf("loops %s delivered %s", tb.Cell(row, 0), cell)
				equal = false
			}
		}
		oneTp := parseFloatCell(t, tb.Cell(0, 1))
		fourTp := parseFloatCell(t, tb.Cell(2, 1))
		if equal && oneTp > 0 && fourTp >= want*oneTp {
			return
		}
		if equal {
			failure = fmt.Sprintf("4-loop %.3g submits/s vs 1-loop %.3g submits/s (want >= %.1fx)",
				fourTp, oneTp, want)
		}
	}
	t.Errorf("cores dimension did not scale: %s", failure)
}

// deliveredEqual reports whether an "acked/target" cell shows every
// submission acknowledged.
func deliveredEqual(cell string) bool {
	a, b, ok := strings.Cut(cell, "/")
	return ok && a == b && a != "0"
}

// TestLogStoreCompareWALBeatsFiles asserts the durable-store
// experiment's acceptance shape: the wal engine's group commit must
// at least double blocking-pessimistic submit throughput over the
// per-key files engine, with every submission acknowledged on both
// engines (durability is amortized, never dropped). Wall-clock, real
// disks; one retry absorbs a scheduler hiccup on a loaded CI machine.
func TestLogStoreCompareWALBeatsFiles(t *testing.T) {
	var failure string
	for attempt := 0; attempt < 2; attempt++ {
		r := LogStoreCompare(Options{Seed: 2004 + int64(attempt), Quick: true})
		dump(t, r)
		tb := r.Tables[0]
		if tb.Rows() != 3 {
			t.Fatalf("rows = %d, want files/binary, wal/gob and wal/binary", tb.Rows())
		}
		filesTp := parseFloatCell(t, tb.Cell(0, 2))
		walGobTp := parseFloatCell(t, tb.Cell(1, 2))
		walTp := parseFloatCell(t, tb.Cell(2, 2))
		filesAcked, walGobAcked, walAcked := tb.Cell(0, 5), tb.Cell(1, 5), tb.Cell(2, 5)
		// An acked mismatch on a loaded machine is the watchdog
		// truncating a run, not a durability bug — retryable like the
		// performance shape, not fatal. The headline claim is the wal
		// engine on the default binary codec versus the files engine;
		// the wal/gob row isolates the codec's contribution and is
		// reported, not gated (fsync timing dominates it on fast
		// disks).
		if filesAcked == walAcked && filesAcked == walGobAcked && filesAcked != "0" &&
			walTp >= 2*filesTp {
			return
		}
		failure = fmt.Sprintf("wal/binary %.3g submits/s acked %s, wal/gob %.3g submits/s acked %s vs files %.3g submits/s acked %s (want ≥2x, equal acked)",
			walTp, walAcked, walGobTp, walGobAcked, filesTp, filesAcked)
	}
	t.Errorf("wal engine did not deliver its speedup: %s", failure)
}
