package experiments

import (
	"time"

	"rpcv/internal/metrics"
	"rpcv/internal/workload"
)

// Fig8 regenerates figure 8 (Distribution of Tasks Durations in the
// Alcatel Application): the histogram of the 1000-task duration mix
// used by the real-life experiments. The proprietary binary is
// substituted by workload.Alcatel, whose mixture reproduces the
// figure's shape: a dominant short-task mass with a long right tail
// (durations varying in a wide range).
func Fig8(opts Options) Result {
	opts.applyDefaults()

	tasks := 1000
	if opts.Quick {
		tasks = 200
	}
	calls := workload.Alcatel(workload.AlcatelConfig{Tasks: tasks, Seed: opts.Seed})

	const width = 30 * time.Second
	const buckets = 24
	bounds, counts := workload.DurationHistogram(calls, width, buckets)

	hist := metrics.NewTable(
		"Figure 8: distribution of task durations (Alcatel application)",
		"duration<=", "tasks", "bar")
	for i, b := range bounds {
		hist.AddRow(b, counts[i], bar(counts[i], maxInt(counts)))
	}

	st := workload.Summarize(calls)
	summary := metrics.NewTable("Figure 8: summary statistics",
		"tasks", "min", "median", "mean", "p90", "max", "total-cpu")
	summary.AddRow(st.Count, st.Min, st.Median, st.Mean, st.P90, st.Max, st.Total)

	return Result{Name: "fig8", Tables: []*metrics.Table{hist, summary}}
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// bar renders a proportional ASCII bar (max 40 chars).
func bar(v, max int) string {
	if max == 0 {
		return ""
	}
	n := v * 40 / max
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
