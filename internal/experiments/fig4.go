package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
)

// Fig4 regenerates figure 4 (Message Logging): client RPC submission
// time under the three logging strategies,
//
//   - left: 16 non-blocking calls, parameter size swept 100 B → 100 MB;
//   - right: small (~300 B) calls, call count swept 1 → 1000.
//
// The measured quantity is the per-strategy completion of the submit
// operation as observed by the client (see msglog.Log), averaged over
// the batch for the size sweep, and totalled for the count sweep.
func Fig4(opts Options) Result {
	opts.applyDefaults()

	strategies := []msglog.Strategy{
		msglog.Optimistic,
		msglog.NonBlockingPessimistic,
		msglog.BlockingPessimistic,
	}

	left := metrics.NewTable(
		"Figure 4 (left): RPC submission time vs parameter size (16 calls)",
		"size", "optimistic", "non-blocking-pess", "blocking-pess")
	for _, size := range sizeSweep(opts.Quick) {
		row := []any{metrics.FormatBytes(size)}
		for _, strat := range strategies {
			mean := submissionTime(opts.Seed, strat, 16, size).Mean()
			row = append(row, mean)
		}
		left.AddRow(row...)
	}

	right := metrics.NewTable(
		"Figure 4 (right): total submission time vs number of calls (~300 B)",
		"calls", "optimistic", "non-blocking-pess", "blocking-pess")
	for _, n := range countSweep(opts.Quick) {
		row := []any{n}
		for _, strat := range strategies {
			total := submissionSpan(opts.Seed, strat, n, 300)
			row = append(row, total)
		}
		right.AddRow(row...)
	}

	return Result{Name: "fig4", Tables: []*metrics.Table{left, right}}
}

// submissionTime runs one batch and returns per-call submission
// durations.
func submissionTime(seed int64, strat msglog.Strategy, calls, size int) *metrics.Sample {
	sample, _ := runSubmissionBatch(seed, strat, calls, size)
	return sample
}

// submissionSpan returns the time from first submit to the last
// submission completion of the batch.
func submissionSpan(seed int64, strat msglog.Strategy, calls, size int) time.Duration {
	_, span := runSubmissionBatch(seed, strat, calls, size)
	return span
}

// Fig4SubmissionProbe runs one submission batch and returns the mean
// submission time; exported for the framework micro-benchmark.
func Fig4SubmissionProbe(seed int64, strat msglog.Strategy, calls, size int) time.Duration {
	sample, _ := runSubmissionBatch(seed, strat, calls, size)
	return sample.Mean()
}

func runSubmissionBatch(seed int64, strat msglog.Strategy, calls, size int) (*metrics.Sample, time.Duration) {
	sample := &metrics.Sample{}
	var first, last time.Time
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: 1,
		Servers:      16,
		Clients:      1,
		Logging:      strat,
		// The figure measures the raw submission operation; the
		// lossless confined network needs no ack-verification resync,
		// which would duplicate the large in-flight transfers.
		AckResyncTimeout: -1,
		OnSubmitComplete: func(_ proto.NodeID, _ proto.RPCSeq, issued, completed time.Time) {
			sample.Add(completed.Sub(issued))
			if first.IsZero() || issued.Before(first) {
				first = issued
			}
			if completed.After(last) {
				last = completed
			}
		},
	})
	// The benchmark measures submission, not execution: give the calls
	// a short execution so the run drains quickly.
	cl.SubmitBatch(0, calls, "synthetic", size, time.Second, 64)
	deadline := cl.World.Now().Add(6 * time.Hour)
	cl.World.RunUntil(func() bool { return sample.N() >= calls }, deadline)
	if sample.N() == 0 {
		return sample, 0
	}
	return sample, last.Sub(first)
}
