package experiments

import (
	"fmt"
	"sync"
	"time"

	"rpcv/internal/obs"
	"rpcv/internal/obs/fleet"
	"rpcv/internal/proto"
)

// obsBook hands per-node Observers to a compare run's nodes and
// retains every one it created. A restarted server re-registers under
// the same ID with a fresh Observer; the book keeps the old ones too,
// so the fleet watcher's bundles still carry the dead incarnation's
// span ring — exactly the post-mortem evidence a flight recorder is
// for.
type obsBook struct {
	reg  *obs.Registry
	mu   sync.Mutex
	byID map[proto.NodeID][]*obs.Observer
}

func newObsBook(reg *obs.Registry) *obsBook {
	return &obsBook{reg: reg, byID: map[proto.NodeID][]*obs.Observer{}}
}

// observer creates (and retains) a fresh Observer for id on the shared
// registry.
func (b *obsBook) observer(id proto.NodeID) *obs.Observer {
	ob := obs.NewWith(id, b.reg)
	b.mu.Lock()
	b.byID[id] = append(b.byID[id], ob)
	b.mu.Unlock()
	return ob
}

// spans concatenates the span rings of every incarnation of id.
func (b *obsBook) spans(id proto.NodeID) []obs.Span {
	b.mu.Lock()
	obsList := append([]*obs.Observer(nil), b.byID[id]...)
	b.mu.Unlock()
	var out []obs.Span
	for _, ob := range obsList {
		out = append(out, ob.Tracer().Dump()...)
	}
	return out
}

// watchFleet overlays a live fleet monitor on a wall-clock compare
// run: every node the shared registry knows becomes an in-process
// scrape source (a node the run reports down fails its scrape, like an
// unreachable admin endpoint), and when bundleDir is set the flight
// recorder captures a post-mortem bundle at the first death. Call
// after every node has booted, Close before tearing the grid down.
func watchFleet(book *obsBook, down func(proto.NodeID) bool, bundleDir string) *fleet.Monitor {
	var sources []fleet.Source
	for _, id := range fleet.RegistryNodes(book.reg) {
		id := id
		sources = append(sources, &fleet.FuncSource{
			Node: id,
			Fetch: func() ([]fleet.Sample, error) {
				if down(id) {
					return nil, fmt.Errorf("node %s is down", id)
				}
				return fleet.SamplesFromRegistry(book.reg, id), nil
			},
			Trace: func() []obs.Span { return book.spans(id) },
		})
	}
	m := fleet.New(fleet.Config{
		Sources:        sources,
		Interval:       50 * time.Millisecond,
		DownAfter:      2,
		BundleDir:      bundleDir,
		BundleCooldown: 5 * time.Second,
	})
	m.Start()
	return m
}

// fleetCell summarizes a finished watcher for a table's trailing
// column: the worst fleet level any scrape round saw, plus how many
// flight bundles were captured.
func fleetCell(m *fleet.Monitor) string {
	worst := m.WorstSeen().String()
	if n := len(m.Bundles()); n > 0 {
		return fmt.Sprintf("%s, %d bundle(s)", worst, n)
	}
	return worst
}
