package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
	"rpcv/internal/shard"
)

// TransportCompare races the real TCP runtime's transports and wire
// codecs on loopback: the paper's connection-per-message transport
// (every send dials, writes one envelope with a fresh gob
// type-descriptor handshake, and closes) against the pooled
// persistent-connection transport (per-peer sender, coalesced flushes,
// redial with backoff), and on the pooled transport the legacy gob
// codec against the hand-written binary codec (length-prefixed frames,
// no reflection, no per-message allocation).
//
// Unlike every other experiment this one runs on the wall clock and
// real sockets — the transport is exactly what the simulator
// abstracts away. A miniature grid (1 coordinator, 4 servers, 2
// clients) sustains a fixed in-flight submission window while a
// figure-7-style fault load (Poisson kill/restart of each server,
// population constant) churns connections underneath. Axes: sustained
// submit throughput (acknowledgements per second) and submit latency
// quantiles; the acked column proves zero delivery regressions
// (heartbeat-timeout fault detection, not connection breaks, still
// drives all recovery on every transport/codec combination).
func TransportCompare(opts Options) Result {
	opts.applyDefaults()
	calls := 600
	if opts.Quick {
		calls = 240
	}
	table := metrics.NewTable(
		"Transport comparison: sustained submission under Poisson server kill/restart (1 coordinator, 4 servers, 2 clients, real TCP loopback)",
		"transport", "codec", "submits/s", "p50-submit", "p99-submit", "acked", "coalescing", "sheds", "fleet")
	for _, c := range []struct {
		name   string
		legacy bool
		wire   string
	}{
		{"per-message", true, proto.WireGob}, // the paper's literal baseline
		{"pooled", false, proto.WireGob},     // PR 3's transport, pre-binary codec
		{"pooled", false, proto.WireBinary},  // the default
	} {
		r := transportRun(opts, c.legacy, c.wire, calls)
		table.AddRow(c.name, c.wire, r.throughput, r.lat.P50(), r.lat.P99(),
			r.acked, fmt.Sprintf("%.1fx", r.coalescing), r.sheds, r.fleet)
	}

	// The cores dimension: the same sustained-submission workload on the
	// pooled/binary configuration, with the coordinator running 1, 2 and
	// 4 per-core event loops (rt.Config.Loops). The coordinator is made
	// deliberately DB-bound (each submission queues behind the modelled
	// database, a serial resource), so the multi-loop speedup isolates
	// the thing the runtime actually multiplies: one independent handler
	// partition — with its own DB serial resource — per loop. The
	// delivered column proves equality: every submission acknowledged at
	// every loop count.
	coresTable := metrics.NewTable(
		"Cores dimension: coordinator event loops vs sustained submit throughput (pooled transport, binary codec, 8 clients, DB-bound coordinator)",
		"loops", "submits/s", "scale", "p50-submit", "p99-submit", "delivered")
	var base float64
	for _, n := range coresSweep(opts.Loops) {
		r := coresRun(opts, n, calls)
		scale := "1.0x"
		if base == 0 {
			base = r.throughput
		} else if base > 0 {
			scale = fmt.Sprintf("%.1fx", r.throughput/base)
		}
		coresTable.AddRow(n, r.throughput, scale, r.lat.P50(), r.lat.P99(),
			fmt.Sprintf("%d/%d", r.acked, r.target))
	}
	return Result{Name: "transport-compare", Tables: []*metrics.Table{table, coresTable}}
}

// coresSweep returns the loop counts of the cores dimension. cap (from
// rpcv-bench -loops) drops sweep points a small box cannot host; the
// single-loop baseline always runs.
func coresSweep(cap int) []int {
	out := []int{1}
	for _, n := range []int{2, 4} {
		if cap <= 0 || n <= cap {
			out = append(out, n)
		}
	}
	return out
}

// transportRunResult carries one transport's measurements.
type transportRunResult struct {
	throughput float64 // submit acks per second over the sustained window
	lat        metrics.Histogram
	acked      int
	coalescing float64 // envelopes per connection flush, all runtimes
	sheds      uint64
	fleet      string // fleet watcher's worst-seen verdict over the run
}

// transportRun drives one full grid run on the chosen transport and
// wire codec.
func transportRun(opts Options, legacy bool, wire string, calls int) transportRunResult {
	seed := opts.Seed
	const (
		nClients = 2
		nServers = 4
		inflight = 8 // per-client sustained submission window
		beat     = 25 * time.Millisecond
		suspect  = 250 * time.Millisecond
		mtbf     = 1500 * time.Millisecond // per-server Poisson faults
		downtime = 150 * time.Millisecond
	)
	quiet := func(string, ...any) {}
	// One registry shared by every node in the run: the harness reads
	// the grid's aggregate transport behaviour from node-labeled metric
	// sums instead of walking per-runtime ad-hoc counters.
	reg := obs.NewRegistry()
	book := newObsBook(reg)
	rtCfg := func(id proto.NodeID, h node.Handler, dir rt.Directory) rt.Config {
		return rt.Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: h,
			Directory: dir, Logf: quiet, LegacyTransport: legacy, Wire: wire,
			Obs: book.observer(id)}
	}
	codec := proto.CodecForWire(wire)

	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.CostModel{PerOp: 50 * time.Microsecond},
		Codec:            codec,
		Obs:              book.observer("co"),
	})
	rco, err := rt.Start(rtCfg("co", co, nil))
	if err != nil {
		panic(fmt.Sprintf("transport-compare: coordinator: %v", err))
	}
	dir := rt.Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"noop": func([]byte) ([]byte, error) { return nil, nil },
	}
	newServer := func() node.Handler {
		return server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
			Codec:            codec,
		})
	}
	type serverSlot struct {
		mu  sync.Mutex
		rtm *rt.Runtime
	}
	servers := make([]*serverSlot, nServers)
	for i := range servers {
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		rsv, err := rt.Start(rtCfg(id, newServer(), dir))
		if err != nil {
			panic(fmt.Sprintf("transport-compare: server: %v", err))
		}
		rco.SetPeer(id, rsv.Addr())
		servers[i] = &serverSlot{rtm: rsv}
	}

	var (
		res     transportRunResult
		measMu  sync.Mutex
		acked   int
		lastAck time.Time
		done    = make(chan struct{})
		once    sync.Once
	)
	perClient := calls / nClients
	target := perClient * nClients
	start := time.Now()

	rclis := make([]*rt.Runtime, nClients)
	for i := 0; i < nClients; i++ {
		// submitted is confined to this client's event loop: the
		// kickoff Do and OnSubmitComplete both run there.
		submitted := 0
		var cli *client.Client
		cli = client.New(client.Config{
			User:             proto.UserID(fmt.Sprintf("u%d", i)),
			Session:          proto.SessionID(i + 1),
			Coordinators:     []proto.NodeID{"co"},
			PollPeriod:       beat,
			SuspicionTimeout: suspect,
			Logging:          msglog.NonBlockingPessimistic,
			Disk:             msglog.InstantDisk(),
			Codec:            codec,
			OnSubmitComplete: func(_ proto.RPCSeq, issued, completed time.Time) {
				measMu.Lock()
				res.lat.Add(completed.Sub(issued))
				acked++
				lastAck = completed
				fin := acked >= target
				measMu.Unlock()
				if fin {
					once.Do(func() { close(done) })
				}
				// Keep the submission window full until this client's
				// share is issued: sustained load, not one burst.
				if submitted < perClient {
					submitted++
					cli.Submit("noop", nil, 0, 0)
				}
			},
		})
		id := proto.NodeID(fmt.Sprintf("cli%d", i))
		rcli, err := rt.Start(rtCfg(id, cli, dir))
		if err != nil {
			panic(fmt.Sprintf("transport-compare: client: %v", err))
		}
		rco.SetPeer(id, rcli.Addr())
		rclis[i] = rcli
		rcli.Do(func() {
			for j := 0; j < inflight && submitted < perClient; j++ {
				submitted++
				cli.Submit("noop", nil, 0, 0)
			}
		})
	}

	// The fleet watcher sees this grid exactly as rpcv-mon would — a
	// killed server fails its scrape and grades Down within two
	// rounds — minus the HTTP hop.
	slotOf := make(map[proto.NodeID]*serverSlot, nServers)
	for i, sl := range servers {
		slotOf[proto.NodeID(fmt.Sprintf("sv%d", i))] = sl
	}
	mon := watchFleet(book, func(id proto.NodeID) bool {
		sl := slotOf[id]
		if sl == nil {
			return false
		}
		sl.mu.Lock()
		defer sl.mu.Unlock()
		return sl.rtm == nil
	}, opts.BundleDir)

	// The fault load: each server dies at Poisson times and restarts
	// after a fixed downtime on a fresh port (the coordinator learns
	// the new address, as it would from a reconnecting peer).
	stop := make(chan struct{})
	var faultWG sync.WaitGroup
	for i := range servers {
		faultWG.Add(1)
		go func(i int) {
			defer faultWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			id := proto.NodeID(fmt.Sprintf("sv%d", i))
			sl := servers[i]
			for {
				wait := time.Duration(-math.Log(1-rng.Float64()) * float64(mtbf))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
				sl.mu.Lock()
				sl.rtm.Close()
				sl.rtm = nil
				sl.mu.Unlock()
				select {
				case <-stop:
				case <-time.After(downtime):
				}
				rsv, err := rt.Start(rtCfg(id, newServer(), dir))
				if err != nil {
					return
				}
				rco.SetPeer(id, rsv.Addr())
				sl.mu.Lock()
				sl.rtm = rsv
				sl.mu.Unlock()
			}
		}(i)
	}

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		// Watchdog: report whatever completed instead of hanging CI.
	}
	close(stop)
	faultWG.Wait()

	measMu.Lock()
	res.acked = acked
	if acked > 0 && lastAck.After(start) {
		res.throughput = float64(acked) / lastAck.Sub(start).Seconds()
	}
	measMu.Unlock()

	// Stop the watcher before tearing the grid down: its last rounds
	// must not race runtime teardown's scrape-time funcs.
	mon.Close()
	res.fleet = fleetCell(mon)

	// The shared registry holds every node's transport counters under
	// node="<id>" labels; grid-wide aggregates are metric sums, read
	// before Close so the scrape-time funcs still see live runtimes.
	sent := reg.Sum("rpcv_transport_sent_total")
	flushes := reg.Sum("rpcv_transport_flushes_total")
	if sheds, ok := reg.Value("rpcv_transport_sheds_total", obs.L("node", "co")); ok {
		res.sheds = uint64(sheds)
	}
	for _, rcli := range rclis {
		rcli.Close()
	}
	rco.Close()
	for _, sl := range servers {
		sl.mu.Lock()
		if sl.rtm != nil {
			sl.rtm.Close()
		}
		sl.mu.Unlock()
	}
	if flushes > 0 {
		res.coalescing = sent / flushes
	}
	return res
}

// coresRunResult carries one loop count's measurements.
type coresRunResult struct {
	throughput    float64
	lat           metrics.Histogram
	acked, target int
}

// coresRun drives one sustained-submission run against a coordinator
// hosting the given number of per-core event loops. No fault load: the
// cores dimension measures clean scaling, and the transport rows above
// already prove delivery under churn.
//
// Client (user, session) pairs are chosen so sessions spread evenly
// over the coordinator's loops — the selection uses the very same
// shard.LoopMap construction the runtime pins sessions with, so the
// workload exercises every handler partition instead of accidentally
// hashing onto one.
func coresRun(opts Options, loops, calls int) coresRunResult {
	const (
		nClients = 8
		nServers = 2
		inflight = 8 // per-client sustained submission window
		beat     = 25 * time.Millisecond
		suspect  = 250 * time.Millisecond
	)
	quiet := func(string, ...any) {}
	codec := proto.CodecForWire(proto.WireBinary)

	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		// DB-bound on purpose: with sub-millisecond transport, a fat
		// per-statement cost makes the serialized database the
		// bottleneck the loop count multiplies.
		DBCost: db.CostModel{PerOp: 200 * time.Microsecond},
		Codec:  codec,
	})
	rco, err := rt.Start(rt.Config{ID: "co", ListenAddr: "127.0.0.1:0",
		Handler: co, Logf: quiet, Wire: proto.WireBinary, Loops: loops})
	if err != nil {
		panic(fmt.Sprintf("transport-compare: cores coordinator: %v", err))
	}
	dir := rt.Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"noop": func([]byte) ([]byte, error) { return nil, nil },
	}
	rsvs := make([]*rt.Runtime, nServers)
	for i := range rsvs {
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		rsv, err := rt.Start(rt.Config{ID: id, ListenAddr: "127.0.0.1:0",
			Handler: server.New(server.Config{
				Coordinators:     []proto.NodeID{"co"},
				HeartbeatPeriod:  beat,
				SuspicionTimeout: suspect,
				Services:         services,
				Codec:            codec,
			}),
			Directory: dir, Logf: quiet, Wire: proto.WireBinary})
		if err != nil {
			panic(fmt.Sprintf("transport-compare: cores server: %v", err))
		}
		rco.SetPeer(id, rsv.Addr())
		rsvs[i] = rsv
	}

	// Pick (user, session) pairs that cover every loop evenly. The
	// construction is deterministic given the loop count alone, so this
	// predicts the runtime's pinning exactly.
	lm := shard.NewLoopMap(loops)
	type cliID struct {
		user    proto.UserID
		session proto.SessionID
	}
	picked := make([]cliID, 0, nClients)
	counts := make([]int, loops)
	for i := 0; len(picked) < nClients; i++ {
		u := proto.UserID(fmt.Sprintf("u%03d", i))
		s := proto.SessionID(i + 1)
		if l := lm.Owner(u, s); counts[l] < nClients/loops {
			counts[l]++
			picked = append(picked, cliID{u, s})
		}
	}

	var (
		res     coresRunResult
		measMu  sync.Mutex
		acked   int
		lastAck time.Time
		done    = make(chan struct{})
		once    sync.Once
	)
	perClient := calls / nClients
	res.target = perClient * nClients
	start := time.Now()

	rclis := make([]*rt.Runtime, nClients)
	for i := 0; i < nClients; i++ {
		submitted := 0
		var cli *client.Client
		cli = client.New(client.Config{
			User:             picked[i].user,
			Session:          picked[i].session,
			Coordinators:     []proto.NodeID{"co"},
			PollPeriod:       beat,
			SuspicionTimeout: suspect,
			Logging:          msglog.NonBlockingPessimistic,
			Disk:             msglog.InstantDisk(),
			Codec:            codec,
			OnSubmitComplete: func(_ proto.RPCSeq, issued, completed time.Time) {
				measMu.Lock()
				res.lat.Add(completed.Sub(issued))
				acked++
				lastAck = completed
				fin := acked >= res.target
				measMu.Unlock()
				if fin {
					once.Do(func() { close(done) })
				}
				if submitted < perClient {
					submitted++
					cli.Submit("noop", nil, 0, 0)
				}
			},
		})
		id := proto.NodeID(fmt.Sprintf("cli%d", i))
		rcli, err := rt.Start(rt.Config{ID: id, ListenAddr: "127.0.0.1:0",
			Handler: cli, Directory: dir, Logf: quiet, Wire: proto.WireBinary})
		if err != nil {
			panic(fmt.Sprintf("transport-compare: cores client: %v", err))
		}
		rco.SetPeer(id, rcli.Addr())
		rclis[i] = rcli
		rcli.Do(func() {
			for j := 0; j < inflight && submitted < perClient; j++ {
				submitted++
				cli.Submit("noop", nil, 0, 0)
			}
		})
	}

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		// Watchdog: report whatever completed instead of hanging CI.
	}

	measMu.Lock()
	res.acked = acked
	if acked > 0 && lastAck.After(start) {
		res.throughput = float64(acked) / lastAck.Sub(start).Seconds()
	}
	measMu.Unlock()

	for _, rcli := range rclis {
		rcli.Close()
	}
	rco.Close()
	for _, rsv := range rsvs {
		rsv.Close()
	}
	return res
}
