package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/faultgen"
	"rpcv/internal/metrics"
)

// Fig7 regenerates figure 7 (Benchmark Execution Time According to
// Fault Frequency): 1 client submits 96 RPCs of 10 s each to 4
// coordinators (only the preferred one receives them) executed by 16
// servers — ideal time 60 s (6 rounds of 16 parallel RPCs). Every node
// of the chosen kind runs a fault generator killing it with the given
// per-node fault frequency (Poisson; the victim restarts after a short
// downtime, so the population stays constant). As in the paper, the
// per-node rate means the 16-server configuration suffers 4x the total
// faults of the 4-coordinator one.
//
// Expected shape: both curves grow with fault frequency; server faults
// hurt far more than coordinator faults (lost task executions dominate,
// and the computing population outnumbers the infrastructure one); the
// server curve approaches the no-progress asymptote as the per-node
// fault period nears the 10 s task duration.
func Fig7(opts Options) Result {
	opts.applyDefaults()

	rates := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if opts.Quick {
		rates = []float64{0, 2, 6, 10}
	}

	table := metrics.NewTable(
		"Figure 7: benchmark execution time vs fault frequency (96 x 10s RPCs, 16 servers, 4 coordinators)",
		"faults/min", "faulty-servers", "faulty-coordinators")
	for _, rate := range rates {
		serverTime := faultRun(opts.Seed, rate, true)
		coordTime := faultRun(opts.Seed, rate, false)
		table.AddRow(rate, serverTime, coordTime)
	}
	return Result{Name: "fig7", Tables: []*metrics.Table{table}}
}

// faultRun executes the figure 7 benchmark once and returns the
// completion time of all 96 calls (capped at 4 virtual hours).
func faultRun(seed int64, faultsPerMinute float64, faultServers bool) time.Duration {
	const (
		calls    = 96
		servers  = 16
		coords   = 4
		taskTime = 10 * time.Second
		downtime = 5 * time.Second
	)
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: coords,
		Servers:      servers,
		Clients:      1,
		// Replication lets surviving coordinators pick up for killed
		// ones, as in the paper's full-system fault test.
		ReplicationPeriod: 10 * time.Second,
	})
	gen := faultgen.New(cl.World)
	if faultsPerMinute > 0 {
		var targets = cl.ServerIDs
		if !faultServers {
			targets = cl.CoordinatorIDs
		}
		// Per-node fault frequency: MTBF = 1/rate minutes for every
		// node of the chosen kind, faults independent across nodes.
		perNodeMTBF := time.Duration(float64(time.Minute) / faultsPerMinute)
		gen.Poisson(targets, perNodeMTBF, downtime)
	}

	start := cl.World.Now()
	cl.SubmitBatch(0, calls, "synthetic", 300, taskTime, 64)
	const cap = 2 * time.Hour
	done := cl.RunUntilResults(0, calls, cap)
	gen.Stop()
	if !done {
		return cap // saturated: no progress within the cap
	}
	return cl.World.Now().Sub(start)
}
