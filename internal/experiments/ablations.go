package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/faultgen"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
)

// AblationHeartbeat explores the heartbeat-period / suspicion-timeout
// trade-off the paper mentions ("adjusted considering the trade-off
// between Coordinator reactivity and congestion"): the figure 7
// benchmark at a fixed server-fault rate, swept over heartbeat periods
// with suspicion fixed at 6x the period. Short periods detect faults
// fast but multiply message traffic; long ones starve the scheduler.
func AblationHeartbeat(opts Options) Result {
	opts.applyDefaults()
	periods := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second,
		15 * time.Second, 30 * time.Second}
	if opts.Quick {
		periods = []time.Duration{time.Second, 5 * time.Second, 15 * time.Second}
	}
	table := metrics.NewTable(
		"Ablation: heartbeat period vs execution time and traffic (96 x 10s RPCs, 4 faults/min on servers)",
		"period", "suspicion", "exec-time", "messages")
	for _, period := range periods {
		cl := cluster.New(cluster.Config{
			Seed:              opts.Seed,
			Coordinators:      2,
			Servers:           16,
			Clients:           1,
			HeartbeatPeriod:   period,
			SuspicionTimeout:  6 * period,
			ReplicationPeriod: 10 * time.Second,
		})
		gen := faultgen.New(cl.World)
		gen.Poisson(cl.ServerIDs, 4*time.Minute, 5*time.Second) // 16/4min = 4 faults/min total
		start := cl.World.Now()
		cl.SubmitBatch(0, 96, "synthetic", 300, 10*time.Second, 64)
		done := cl.RunUntilResults(0, 96, 2*time.Hour)
		gen.Stop()
		elapsed := cl.World.Now().Sub(start)
		if !done {
			elapsed = 2 * time.Hour
		}
		delivered, _ := cl.World.Stats()
		table.AddRow(period, 6*period, elapsed, delivered)
	}
	return Result{Name: "ablation-heartbeat", Tables: []*metrics.Table{table}}
}

// AblationReplicationPeriod sweeps the passive-replication period of
// the figure 9 scenario and reports the replica's staleness: the mean
// gap between the primary's and the backup's completed-task counters.
// Short periods keep the backup fresh at the price of more ring
// traffic; 60 s is the paper's real-life choice.
func AblationReplicationPeriod(opts Options) Result {
	opts.applyDefaults()
	periods := []time.Duration{15 * time.Second, 60 * time.Second, 240 * time.Second}
	table := metrics.NewTable(
		"Ablation: replication period vs replica staleness (Alcatel workload)",
		"period", "mean-gap(tasks)", "max-gap(tasks)", "rounds")
	for _, period := range periods {
		r := newRealLifeWithReplication(opts, period)
		r.submitAlcatel(opts.Seed)
		r.sampleEveryMinute()
		r.runUntilClientDone(12 * time.Hour)
		var sum, max float64
		n := 0
		for i := range r.lilleS.Points {
			gap := r.lilleS.Points[i].Value - r.lriS.Points[i].Value
			if gap < 0 {
				gap = 0
			}
			sum += gap
			if gap > max {
				max = gap
			}
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		rounds := r.cl.Coordinator(0).StatsNow().ReplRounds
		table.AddRow(period, mean, max, rounds)
	}
	return Result{Name: "ablation-replication", Tables: []*metrics.Table{table}}
}

// newRealLifeWithReplication is newRealLife with a custom period.
func newRealLifeWithReplication(opts Options, period time.Duration) *realLife {
	saved := realLifeReplicationOverride
	realLifeReplicationOverride = period
	defer func() { realLifeReplicationOverride = saved }()
	return newRealLife(opts)
}

// AblationRecovery compares the three logging strategies on the
// paper's double-crash scenario: client and coordinator crash together
// (§5.1, Message Logging: "When both have crashed, all logs have been
// lost in the optimistic protocol").
//
// The decisive metric is *silent loss*: calls the application saw
// complete before the crash that no component can recover afterwards.
// Pessimistic logging (either flavour) never completes a call before
// its log entry is durable, so silent loss is structurally zero; the
// optimistic protocol completes on acknowledgement while the flush
// still lags, so the unflushed suffix of completed calls vanishes.
func AblationRecovery(opts Options) Result {
	opts.applyDefaults()
	const calls = 32
	table := metrics.NewTable(
		"Ablation: double crash (client+coordinator) recovery by logging strategy (32 calls)",
		"strategy", "completed-pre-crash", "recovered", "silently-lost", "recovery-time")
	for _, strat := range []msglog.Strategy{
		msglog.Optimistic, msglog.NonBlockingPessimistic, msglog.BlockingPessimistic,
	} {
		r := doubleCrashRecovery(opts.Seed, strat, calls)
		table.AddRow(strat.String(), r.completed, r.recovered, r.lost, r.dur)
	}
	return Result{Name: "ablation-recovery", Tables: []*metrics.Table{table}}
}

type recoveryOutcome struct {
	completed int // submissions the application saw complete pre-crash
	recovered int // jobs present on the coordinator after resync
	lost      int // completed pre-crash but unrecoverable (silent loss)
	dur       time.Duration
}

func doubleCrashRecovery(seed int64, strat msglog.Strategy, calls int) recoveryOutcome {
	completedSeqs := make(map[proto.RPCSeq]bool)
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: 1,
		Servers:      0, // no execution; we time state recovery only
		Clients:      1,
		Logging:      strat,
		OnSubmitComplete: func(_ proto.NodeID, seq proto.RPCSeq, _, _ time.Time) {
			completedSeqs[seq] = true
		},
	})
	cl.SubmitBatch(0, calls, "synthetic", 300, time.Second, 32)
	// Crash both mid-stream: some submissions completed, the optimistic
	// flush trails behind the acknowledgements.
	cl.World.RunFor(60 * time.Millisecond)
	cl.World.Crash(cluster.ClientID(0))
	cl.World.Crash(cluster.CoordinatorID(0))
	cl.World.WipeDisk(cluster.CoordinatorID(0)) // total coordinator loss
	preCrashCompleted := make(map[proto.RPCSeq]bool, len(completedSeqs))
	for s := range completedSeqs {
		preCrashCompleted[s] = true
	}

	// The surviving client log bounds what synchronization can rebuild.
	survivors := len(cl.World.Disk(cluster.ClientID(0)).Keys("client/submit/"))

	start := cl.World.Now()
	cl.World.Start(cluster.CoordinatorID(0))
	cl.World.Start(cluster.ClientID(0))
	co := cl.Coordinator(0)
	cl.World.RunUntil(func() bool {
		return co.StatsNow().JobsAccepted >= survivors
	}, start.Add(10*time.Minute))

	out := recoveryOutcome{
		completed: len(preCrashCompleted),
		recovered: co.StatsNow().JobsAccepted,
		dur:       cl.World.Now().Sub(start),
	}
	for seq := range preCrashCompleted {
		if _, ok := co.DB().Peek(proto.CallID{User: "user-00", Session: 1, Seq: seq}); !ok {
			out.lost++
		}
	}
	return out
}
