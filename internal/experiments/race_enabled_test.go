//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector: perf-shape assertions relax their multipliers there (the
// instrumentation overhead is real work the model does not account
// for), while delivery-equality assertions stay exact.
const raceEnabled = true
