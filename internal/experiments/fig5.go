package experiments

import (
	"time"

	"rpcv/internal/cluster"
	"rpcv/internal/db"
	"rpcv/internal/metrics"
	"rpcv/internal/netmodel"
)

// Fig5 regenerates figure 5 (Coordinator Replication Time): the time
// for a coordinator to replicate its status to its ring backup,
//
//   - left: 16 RPCs, data size swept (confined solid vs Internet dashed);
//   - right: small (~300 B) RPCs, count swept 1 → 1000 (DB-bound).
//
// Both environments appear as separate columns, mirroring the paper's
// solid (confined) and dashed (real-life) curves. The real-life testbed
// had faster database machines, so its count sweep sits *below* the
// confined one even though its network is slower.
func Fig5(opts Options) Result {
	opts.applyDefaults()

	left := metrics.NewTable(
		"Figure 5 (left): replication time vs RPC data size (16 RPCs)",
		"size", "confined", "internet")
	for _, size := range sizeSweep(opts.Quick) {
		confined := replicationTime(opts.Seed, false, 16, size)
		internet := replicationTime(opts.Seed, true, 16, size)
		left.AddRow(metrics.FormatBytes(size), confined, internet)
	}

	right := metrics.NewTable(
		"Figure 5 (right): replication time vs number of tasks (~300 B)",
		"tasks", "confined", "internet")
	for _, n := range countSweep(opts.Quick) {
		confined := replicationTime(opts.Seed, false, n, 300)
		internet := replicationTime(opts.Seed, true, n, 300)
		right.AddRow(n, confined, internet)
	}

	return Result{Name: "fig5", Tables: []*metrics.Table{left, right}}
}

// replicationTime loads one coordinator with the given jobs, triggers a
// single replication round to its ring successor and returns its
// measured duration (ReplicaUpdate sent → ReplicaAck received,
// including the backup-side database inserts).
func replicationTime(seed int64, internet bool, tasks, size int) time.Duration {
	var net *netmodel.Net
	cost := db.ConfinedCost()
	if internet {
		net = netmodel.Internet(seed)
		// The real-life coordinators are dedicated, well-connected
		// machines with faster databases.
		net.SetClass(cluster.CoordinatorID(0), netmodel.CoordinatorClass())
		net.SetClass(cluster.CoordinatorID(1), netmodel.CoordinatorClass())
		cost = db.RealLifeCost()
	}
	cl := cluster.New(cluster.Config{
		Seed:         seed,
		Coordinators: 2,
		Servers:      0, // no execution: we measure pure replication
		Clients:      1,
		Net:          net,
		DBCost:       cost,
		// Replication of 16 x 100 MB takes minutes on these links; the
		// isolated-transfer measurement must not let the suspicion (and
		// the round's give-up backstop) trip mid-transfer.
		SuspicionTimeout: time.Hour,
		// ReplicationPeriod 0: rounds are triggered manually below.
		// Replicate full payloads regardless of size, as the figure 5
		// experiment sweeps the replicated data volume itself.
		ReplicateParamsLimit: 1 << 31,
	})
	// Load the primary with the job set (submissions from the client).
	cl.SubmitBatch(0, tasks, "synthetic", size, time.Second, 64)
	co := cl.Coordinator(0)
	deadline := cl.World.Now().Add(12 * time.Hour)
	cl.World.RunUntil(func() bool {
		return co.StatsNow().JobsAccepted >= tasks
	}, deadline)
	// Quiesce transit, then measure one round.
	cl.World.RunFor(2 * time.Second)
	cl.World.Schedule(0, co.ReplicateNow)
	cl.World.RunUntil(func() bool {
		return !co.ReplicationInFlight() && co.LastReplicationDuration() > 0
	}, cl.World.Now().Add(12*time.Hour))
	return co.LastReplicationDuration()
}
