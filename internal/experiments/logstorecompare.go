package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/metrics"
	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
)

// LogStoreCompare races the durable-store engines under the paper's
// most disk-bound configuration: blocking-pessimistic message logging,
// where every submission blocks until its log entry is on the platter
// (the ~30% fig-4 overhead "dominated by disk access"). A miniature
// real-TCP grid — every node backed by a real on-disk store — sustains
// a fixed in-flight submission window while a fig-7-style Poisson
// kill/restart load churns the servers (restarted servers reopen their
// store and recover their result logs, so the engines' recovery paths
// run under load too).
//
// The "files" engine pays the legacy price per entry: file create +
// fsync + rename + parent-directory fsync. The "wal" engine group-
// commits: concurrent entries staged on one node share a single
// append+fsync, so blocking-pessimistic submission approaches
// optimistic cost without giving up durability-before-send. The codec
// dimension compares what goes INTO those writes: gob re-runs
// reflection and allocates an encoder per record, the binary codec
// appends a smaller, exactly-sized record — shrinking WAL payloads
// raises group-commit batch density. The acked column must match the
// target on every row — identical delivery, cheaper durability.
func LogStoreCompare(opts Options) Result {
	opts.applyDefaults()
	calls := 600
	if opts.Quick {
		calls = 240
	}
	table := metrics.NewTable(
		"Durable-store comparison: blocking-pessimistic logging under Poisson server kill/restart (1 coordinator, 4 servers, 2 clients, real TCP loopback, real disks)",
		"store", "codec", "submits/s", "p50-submit", "p99-submit", "acked", "ops/commit", "fleet")
	var throughputs []float64
	for _, c := range []struct {
		engine string
		codec  proto.Codec
	}{
		{"files", proto.CodecBinary},
		{"wal", proto.CodecGob}, // PR 4's engine, pre-binary codec
		{"wal", proto.CodecBinary},
	} {
		r := logStoreRun(opts, c.engine, c.codec, calls)
		table.AddRow(c.engine, c.codec.String(), r.throughput, r.lat.P50(), r.lat.P99(), r.acked,
			fmt.Sprintf("%.1f", r.opsPerCommit), r.fleet)
		throughputs = append(throughputs, r.throughput)
	}
	ratio := metrics.NewTable("speedups (blocking-pessimistic submission)", "metric", "value")
	if throughputs[0] > 0 {
		ratio.AddRow("wal-over-files", fmt.Sprintf("%.2fx", throughputs[2]/throughputs[0]))
	}
	if throughputs[1] > 0 {
		ratio.AddRow("binary-over-gob", fmt.Sprintf("%.2fx", throughputs[2]/throughputs[1]))
	}
	return Result{Name: "log-store-compare", Tables: []*metrics.Table{table, ratio}}
}

// logStoreRunResult carries one engine's measurements.
type logStoreRunResult struct {
	throughput   float64 // submit completions per second (durability included)
	lat          metrics.Histogram
	acked        int
	opsPerCommit float64 // WAL group-commit density, all nodes (0 on "files")
	fleet        string  // fleet watcher's worst-seen verdict over the run
}

// logStoreRun drives one full grid run on the chosen store engine and
// storage codec.
func logStoreRun(opts Options, engine string, codec proto.Codec, calls int) logStoreRunResult {
	seed := opts.Seed
	const (
		nClients = 2
		nServers = 4
		inflight = 16 // per-client sustained submission window
		beat     = 25 * time.Millisecond
		suspect  = 250 * time.Millisecond
		mtbf     = 1500 * time.Millisecond // per-server Poisson faults
		downtime = 150 * time.Millisecond
	)
	root, err := os.MkdirTemp("", "rpcv-logstore-")
	if err != nil {
		panic(fmt.Sprintf("log-store-compare: tempdir: %v", err))
	}
	defer os.RemoveAll(root)

	quiet := func(string, ...any) {}
	// One registry shared by every node: the run reads the grid's WAL
	// group-commit density from node-labeled metric sums afterwards.
	reg := obs.NewRegistry()
	book := newObsBook(reg)
	rtCfg := func(id proto.NodeID, h node.Handler, dir rt.Directory) rt.Config {
		return rt.Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: h,
			Directory: dir, Logf: quiet,
			DiskDir: fmt.Sprintf("%s/%s", root, id), Store: engine,
			Obs: book.observer(id)}
	}

	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.CostModel{PerOp: 50 * time.Microsecond},
		Codec:            codec,
	})
	rco, err := rt.Start(rtCfg("co", co, nil))
	if err != nil {
		panic(fmt.Sprintf("log-store-compare: coordinator: %v", err))
	}
	dir := rt.Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"noop": func([]byte) ([]byte, error) { return nil, nil },
	}
	newServer := func() node.Handler {
		return server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
			Codec:            codec,
		})
	}
	type serverSlot struct {
		mu  sync.Mutex
		rtm *rt.Runtime
	}
	servers := make([]*serverSlot, nServers)
	for i := range servers {
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		rsv, err := rt.Start(rtCfg(id, newServer(), dir))
		if err != nil {
			panic(fmt.Sprintf("log-store-compare: server: %v", err))
		}
		rco.SetPeer(id, rsv.Addr())
		servers[i] = &serverSlot{rtm: rsv}
	}

	var (
		res     logStoreRunResult
		measMu  sync.Mutex
		acked   int
		lastAck time.Time
		done    = make(chan struct{})
		once    sync.Once
	)
	perClient := calls / nClients
	target := perClient * nClients
	start := time.Now()

	rclis := make([]*rt.Runtime, nClients)
	for i := 0; i < nClients; i++ {
		// submitted is confined to this client's event loop: the
		// kickoff Do and OnSubmitComplete both run there.
		submitted := 0
		var cli *client.Client
		cli = client.New(client.Config{
			User:             proto.UserID(fmt.Sprintf("u%d", i)),
			Session:          proto.SessionID(i + 1),
			Coordinators:     []proto.NodeID{"co"},
			PollPeriod:       beat,
			SuspicionTimeout: suspect,
			Logging:          msglog.BlockingPessimistic,
			Disk:             msglog.InstantDisk(), // real store owns the timing
			Codec:            codec,
			OnSubmitComplete: func(_ proto.RPCSeq, issued, completed time.Time) {
				measMu.Lock()
				res.lat.Add(completed.Sub(issued))
				acked++
				lastAck = completed
				fin := acked >= target
				measMu.Unlock()
				if fin {
					once.Do(func() { close(done) })
				}
				// Keep the submission window full until this client's
				// share is issued: sustained load, not one burst.
				if submitted < perClient {
					submitted++
					cli.Submit("noop", nil, 0, 0)
				}
			},
		})
		id := proto.NodeID(fmt.Sprintf("cli%d", i))
		rcli, err := rt.Start(rtCfg(id, cli, dir))
		if err != nil {
			panic(fmt.Sprintf("log-store-compare: client: %v", err))
		}
		rco.SetPeer(id, rcli.Addr())
		rclis[i] = rcli
		rcli.Do(func() {
			for j := 0; j < inflight && submitted < perClient; j++ {
				submitted++
				cli.Submit("noop", nil, 0, 0)
			}
		})
	}

	// The fleet watcher sees this grid exactly as rpcv-mon would — a
	// killed server fails its scrape and grades Down within two
	// rounds — minus the HTTP hop.
	slotOf := make(map[proto.NodeID]*serverSlot, nServers)
	for i, sl := range servers {
		slotOf[proto.NodeID(fmt.Sprintf("sv%d", i))] = sl
	}
	mon := watchFleet(book, func(id proto.NodeID) bool {
		sl := slotOf[id]
		if sl == nil {
			return false
		}
		sl.mu.Lock()
		defer sl.mu.Unlock()
		return sl.rtm == nil
	}, opts.BundleDir)

	// The fault load: each server dies at Poisson times and restarts
	// after a fixed downtime on a fresh port, reopening the same store
	// directory — recovery replays its durable result log.
	stop := make(chan struct{})
	var faultWG sync.WaitGroup
	for i := range servers {
		faultWG.Add(1)
		go func(i int) {
			defer faultWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			id := proto.NodeID(fmt.Sprintf("sv%d", i))
			sl := servers[i]
			for {
				wait := time.Duration(-math.Log(1-rng.Float64()) * float64(mtbf))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
				sl.mu.Lock()
				sl.rtm.Close()
				sl.rtm = nil
				sl.mu.Unlock()
				select {
				case <-stop:
				case <-time.After(downtime):
				}
				rsv, err := rt.Start(rtCfg(id, newServer(), dir))
				if err != nil {
					return
				}
				rco.SetPeer(id, rsv.Addr())
				sl.mu.Lock()
				sl.rtm = rsv
				sl.mu.Unlock()
			}
		}(i)
	}

	select {
	case <-done:
	case <-time.After(120 * time.Second):
		// Watchdog: report whatever completed instead of hanging CI.
	}
	close(stop)
	faultWG.Wait()

	measMu.Lock()
	res.acked = acked
	if acked > 0 && lastAck.After(start) {
		res.throughput = float64(acked) / lastAck.Sub(start).Seconds()
	}
	measMu.Unlock()

	// Stop the watcher before tearing the grid down: its last rounds
	// must not race runtime teardown's scrape-time funcs.
	mon.Close()
	res.fleet = fleetCell(mon)

	// Group-commit density across the whole grid, from the shared
	// registry (read before Close so scrape-time funcs see live stores).
	commits := reg.Sum("rpcv_store_wal_commits_total")
	ops := reg.Sum("rpcv_store_wal_committed_ops_total")
	if commits > 0 {
		res.opsPerCommit = ops / commits
	}

	for _, rcli := range rclis {
		rcli.Close()
	}
	rco.Close()
	for _, sl := range servers {
		sl.mu.Lock()
		if sl.rtm != nil {
			sl.rtm.Close()
		}
		sl.mu.Unlock()
	}
	return res
}
