// Package experiments regenerates every figure of the paper's
// evaluation section (figures 4 through 11) on the simulated testbed.
//
// Each FigN function runs the corresponding experiment and returns its
// data as metrics tables/series, which cmd/rpcv-bench prints and
// bench_test.go exercises. A Scale factor shrinks sweeps for quick CI
// runs; Scale=1 is the paper-faithful configuration.
//
// The absolute numbers differ from the paper's (our substrate is a
// calibrated simulator, not the 2004 testbed); the package's tests
// assert the shape comparisons that must hold.
package experiments

import (
	"rpcv/internal/metrics"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives all randomness; 0 means 2004.
	Seed int64
	// Quick shrinks sweeps and populations for fast runs (tests).
	Quick bool
	// BundleDir, when set, arms the wall-clock compare experiments'
	// fleet watcher: the first server death in each run captures a
	// post-mortem flight bundle there (rpcv-bench -bundles).
	BundleDir string
	// Loops caps the cores dimension of TransportCompare (rpcv-bench
	// -loops). 0 means uncapped: the full 1/2/4 sweep runs. Sweep
	// points above the cap are dropped, so a 2-core box can pass
	// -loops 2 and skip the oversubscribed 4-loop row.
	Loops int
}

func (o *Options) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 2004
	}
}

// Result is one experiment's output: tables (always) and optional
// time series for the completed-task figures.
type Result struct {
	Name   string
	Tables []*metrics.Table
	Series []*metrics.Series
}

// sizeSweep returns the data-size axis of figures 4-6: 100 B to 100 MB
// in decades, as in the paper's log x-axis.
func sizeSweep(quick bool) []int {
	if quick {
		return []int{100, 10_000, 1_000_000}
	}
	return []int{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
}

// countSweep returns the call-count axis of figures 4-6: 1 to 1000.
func countSweep(quick bool) []int {
	if quick {
		return []int{1, 16, 128}
	}
	return []int{1, 4, 16, 64, 256, 1000}
}
