package conform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Cell is one configuration of the daemon matrix: the knobs every
// deployment can turn, all of which must agree on delivered results.
type Cell struct {
	Wire      string // "binary" | "gob"
	Store     string // "wal" | "files" | "memory"
	Transport string // "pooled" | "legacy"
	Policy    string // "fcfs" | "fastest-first" | "deadline" | "speculative"
	Loops     int    // coordinator event loops
}

// DefaultCell is the cell every omitted key resolves to.
func DefaultCell() Cell {
	return Cell{Wire: "binary", Store: "wal", Transport: "pooled", Policy: "fcfs", Loops: 1}
}

// Label renders the cell canonically (fixed key order), used as its
// identity in verdicts and artifacts.
func (c Cell) Label() string {
	return fmt.Sprintf("wire=%s store=%s transport=%s policy=%s loops=%d",
		c.Wire, c.Store, c.Transport, c.Policy, c.Loops)
}

// Event is one timed fault injection in a scenario.
type Event struct {
	At   time.Duration
	Kind string // "block" | "heal" | "crash" | "restart" | "disk" | "stall" | "skew"
	Node string // logical node name: co<i>, sv<i>, cli<i>
	Peer string // far end for block/heal
	Op   string // disk sub-operation: "fail" | "stall" | "torn" | "heal"
	N    int    // countdown for disk fail/torn
	Dur  time.Duration
}

// Scenario is one deterministic workload plus a fault timeline, run
// identically against every cell of the matrix.
type Scenario struct {
	Name         string
	Clients      int           // default 2
	Servers      int           // default 3
	Coords       int           // coordinators; >= Shards, default max(1, Shards)
	Shards       int           // >1 boots one single-coordinator ring per shard
	StaleClients bool          // boot clients with an outdated shard map
	Calls        int           // total workload calls, default 40
	Gap          time.Duration // per-client pacing; 0 derives from the timeline
	Timeout      time.Duration // per-cell watchdog, default 30s
	Events       []Event
}

// Suite is a parsed scenario file: the config matrix crossed with the
// scenario list.
type Suite struct {
	Name      string
	Cells     []Cell
	Scenarios []Scenario
}

// Scenario returns the named scenario, or nil.
func (s *Suite) Scenario(name string) *Scenario {
	for i := range s.Scenarios {
		if s.Scenarios[i].Name == name {
			return &s.Scenarios[i]
		}
	}
	return nil
}

// Parser limits. Generous for real suites, tight enough that a
// malformed or adversarial file cannot demand absurd resources.
const (
	maxSuiteBytes = 1 << 20
	maxCells      = 64
	maxScenarios  = 64
	maxEvents     = 256
	maxNodes      = 16
	maxShards     = 8
	maxCalls      = 100_000
	maxLoops      = 8
	maxDur        = 10 * time.Minute
)

var (
	validWire      = map[string]bool{"binary": true, "gob": true}
	validStore     = map[string]bool{"wal": true, "files": true, "memory": true}
	validTransport = map[string]bool{"pooled": true, "legacy": true}
	validPolicy    = map[string]bool{"fcfs": true, "fastest-first": true, "deadline": true, "speculative": true}
)

// ParseSuite parses the declarative scenario-file format:
//
//	suite <name>
//	matrix wire=binary,gob store=wal,memory ...   # cross product
//	cell wire=binary store=files ...              # one explicit cell
//	scenario <name>
//	  clients 2
//	  servers 3
//	  calls 40
//	  shards 2            # >1: one single-coordinator ring per shard
//	  staleclients        # boot clients with an outdated shard map
//	  gap 25ms            # per-client submit pacing
//	  timeout 30s
//	  at 150ms block co0 -> sv0     # one-way partition
//	  at 600ms heal co0 -> sv0
//	  at 100ms disk co0 fail 3      # fail the 3rd durable op, then stay broken
//	  at 100ms disk co0 stall 40ms  # delay every commit
//	  at 100ms disk co0 torn 1      # next write persists a prefix, errors
//	  at 500ms disk co0 heal
//	  at 150ms stall co0 700ms      # freeze event loops; TCP stays up
//	  at 150ms skew co0 2s          # clock jump (negative allowed)
//	  at 550ms crash co0
//	  at 700ms restart co0
//	end
//
// Lines are independent; '#' starts a comment; blank lines are
// ignored. Unknown keys, malformed values and out-of-range sizes are
// errors — never panics (fuzzed).
func ParseSuite(src string) (*Suite, error) {
	if len(src) > maxSuiteBytes {
		return nil, fmt.Errorf("conform: suite file exceeds %d bytes", maxSuiteBytes)
	}
	s := &Suite{}
	var cur *Scenario
	seenCells := map[string]bool{}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("conform: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if cur != nil {
			if f[0] == "end" {
				if len(f) != 1 {
					return nil, fail("end takes no arguments")
				}
				if err := cur.normalize(); err != nil {
					return nil, fail("scenario %q: %v", cur.Name, err)
				}
				s.Scenarios = append(s.Scenarios, *cur)
				cur = nil
				continue
			}
			if err := parseScenarioLine(cur, f); err != nil {
				return nil, fail("%v", err)
			}
			continue
		}
		switch f[0] {
		case "suite":
			if len(f) != 2 {
				return nil, fail("suite wants exactly one name")
			}
			s.Name = f[1]
		case "matrix":
			cells, err := expandMatrix(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			for _, c := range cells {
				if !seenCells[c.Label()] {
					seenCells[c.Label()] = true
					s.Cells = append(s.Cells, c)
				}
			}
		case "cell":
			c, err := parseCell(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if !seenCells[c.Label()] {
				seenCells[c.Label()] = true
				s.Cells = append(s.Cells, c)
			}
		case "scenario":
			if len(f) != 2 {
				return nil, fail("scenario wants exactly one name")
			}
			if len(s.Scenarios) >= maxScenarios {
				return nil, fail("more than %d scenarios", maxScenarios)
			}
			for i := range s.Scenarios {
				if s.Scenarios[i].Name == f[1] {
					return nil, fail("duplicate scenario %q", f[1])
				}
			}
			cur = &Scenario{Name: f[1]}
		default:
			return nil, fail("unknown directive %q", f[0])
		}
		if len(s.Cells) > maxCells {
			return nil, fmt.Errorf("conform: more than %d cells", maxCells)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("conform: scenario %q not closed with end", cur.Name)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("conform: missing suite directive")
	}
	if len(s.Cells) == 0 {
		return nil, fmt.Errorf("conform: suite declares no cells")
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("conform: suite declares no scenarios")
	}
	return s, nil
}

// expandMatrix crosses key=v1,v2,... assignments into cells.
func expandMatrix(kvs []string) ([]Cell, error) {
	if len(kvs) == 0 {
		return nil, fmt.Errorf("matrix wants key=v1,v2 assignments")
	}
	cells := []Cell{DefaultCell()}
	for _, kv := range kvs {
		key, vals, ok := strings.Cut(kv, "=")
		if !ok || vals == "" {
			return nil, fmt.Errorf("malformed matrix assignment %q", kv)
		}
		var next []Cell
		for _, v := range strings.Split(vals, ",") {
			for _, c := range cells {
				if err := setCellKey(&c, key, v); err != nil {
					return nil, err
				}
				next = append(next, c)
			}
			if len(next) > maxCells {
				return nil, fmt.Errorf("matrix expands past %d cells", maxCells)
			}
		}
		cells = next
	}
	return cells, nil
}

// parseCell builds one cell from key=value assignments over defaults.
func parseCell(kvs []string) (Cell, error) {
	c := DefaultCell()
	for _, kv := range kvs {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" || strings.Contains(val, ",") {
			return c, fmt.Errorf("malformed cell assignment %q", kv)
		}
		if err := setCellKey(&c, key, val); err != nil {
			return c, err
		}
	}
	return c, nil
}

func setCellKey(c *Cell, key, val string) error {
	switch key {
	case "wire":
		if !validWire[val] {
			return fmt.Errorf("unknown wire %q", val)
		}
		c.Wire = val
	case "store":
		if !validStore[val] {
			return fmt.Errorf("unknown store %q", val)
		}
		c.Store = val
	case "transport":
		if !validTransport[val] {
			return fmt.Errorf("unknown transport %q", val)
		}
		c.Transport = val
	case "policy":
		if !validPolicy[val] {
			return fmt.Errorf("unknown policy %q", val)
		}
		c.Policy = val
	case "loops":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > maxLoops {
			return fmt.Errorf("loops %q out of range 1..%d", val, maxLoops)
		}
		c.Loops = n
	default:
		return fmt.Errorf("unknown cell key %q", key)
	}
	return nil
}

func parseScenarioLine(sc *Scenario, f []string) error {
	count := func(what string, max int) (int, error) {
		if len(f) != 2 {
			return 0, fmt.Errorf("%s wants one number", what)
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 || n > max {
			return 0, fmt.Errorf("%s %q out of range 1..%d", what, f[1], max)
		}
		return n, nil
	}
	dur := func(what, v string, allowNeg bool) (time.Duration, error) {
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("%s: bad duration %q", what, v)
		}
		if d > maxDur || d < -maxDur || (!allowNeg && d < 0) {
			return 0, fmt.Errorf("%s: duration %v out of range", what, d)
		}
		return d, nil
	}
	switch f[0] {
	case "clients":
		n, err := count("clients", maxNodes)
		if err != nil {
			return err
		}
		sc.Clients = n
	case "servers":
		n, err := count("servers", maxNodes)
		if err != nil {
			return err
		}
		sc.Servers = n
	case "coords":
		n, err := count("coords", maxNodes)
		if err != nil {
			return err
		}
		sc.Coords = n
	case "shards":
		n, err := count("shards", maxShards)
		if err != nil {
			return err
		}
		sc.Shards = n
	case "calls":
		n, err := count("calls", maxCalls)
		if err != nil {
			return err
		}
		sc.Calls = n
	case "staleclients":
		if len(f) != 1 {
			return fmt.Errorf("staleclients takes no arguments")
		}
		sc.StaleClients = true
	case "gap":
		if len(f) != 2 {
			return fmt.Errorf("gap wants one duration")
		}
		d, err := dur("gap", f[1], false)
		if err != nil {
			return err
		}
		sc.Gap = d
	case "timeout":
		if len(f) != 2 {
			return fmt.Errorf("timeout wants one duration")
		}
		d, err := dur("timeout", f[1], false)
		if err != nil {
			return err
		}
		sc.Timeout = d
	case "at":
		if len(sc.Events) >= maxEvents {
			return fmt.Errorf("more than %d events", maxEvents)
		}
		ev, err := parseEvent(f, dur)
		if err != nil {
			return err
		}
		sc.Events = append(sc.Events, ev)
	default:
		return fmt.Errorf("unknown scenario directive %q", f[0])
	}
	return nil
}

func parseEvent(f []string, dur func(what, v string, allowNeg bool) (time.Duration, error)) (Event, error) {
	var ev Event
	if len(f) < 3 {
		return ev, fmt.Errorf("at wants: at <offset> <fault> ...")
	}
	at, err := dur("at", f[1], false)
	if err != nil {
		return ev, err
	}
	ev.At = at
	ev.Kind = f[2]
	args := f[3:]
	node := func(v string) (string, error) {
		if !validNodeName(v) {
			return "", fmt.Errorf("bad node name %q (want co<i>, sv<i> or cli<i>)", v)
		}
		return v, nil
	}
	switch ev.Kind {
	case "block", "heal":
		if len(args) != 3 || args[1] != "->" {
			return ev, fmt.Errorf("%s wants: %s <from> -> <to>", ev.Kind, ev.Kind)
		}
		if ev.Node, err = node(args[0]); err != nil {
			return ev, err
		}
		if ev.Peer, err = node(args[2]); err != nil {
			return ev, err
		}
		if ev.Node == ev.Peer {
			return ev, fmt.Errorf("%s: from and to are the same node", ev.Kind)
		}
	case "crash", "restart":
		if len(args) != 1 {
			return ev, fmt.Errorf("%s wants one node", ev.Kind)
		}
		if ev.Node, err = node(args[0]); err != nil {
			return ev, err
		}
	case "disk":
		if len(args) < 2 {
			return ev, fmt.Errorf("disk wants: disk <node> fail|stall|torn|heal ...")
		}
		if ev.Node, err = node(args[0]); err != nil {
			return ev, err
		}
		ev.Op = args[1]
		switch ev.Op {
		case "fail", "torn":
			if len(args) != 3 {
				return ev, fmt.Errorf("disk %s wants a count", ev.Op)
			}
			n, err := strconv.Atoi(args[2])
			if err != nil || n < 1 || n > maxCalls {
				return ev, fmt.Errorf("disk %s: bad count %q", ev.Op, args[2])
			}
			ev.N = n
		case "stall":
			if len(args) != 3 {
				return ev, fmt.Errorf("disk stall wants a duration")
			}
			if ev.Dur, err = dur("disk stall", args[2], false); err != nil {
				return ev, err
			}
		case "heal":
			if len(args) != 2 {
				return ev, fmt.Errorf("disk heal takes no arguments")
			}
		default:
			return ev, fmt.Errorf("unknown disk operation %q", ev.Op)
		}
	case "stall":
		if len(args) != 2 {
			return ev, fmt.Errorf("stall wants: stall <node> <duration>")
		}
		if ev.Node, err = node(args[0]); err != nil {
			return ev, err
		}
		if ev.Dur, err = dur("stall", args[1], false); err != nil {
			return ev, err
		}
	case "skew":
		if len(args) != 2 {
			return ev, fmt.Errorf("skew wants: skew <node> <duration>")
		}
		if ev.Node, err = node(args[0]); err != nil {
			return ev, err
		}
		if ev.Dur, err = dur("skew", args[1], true); err != nil {
			return ev, err
		}
	default:
		return ev, fmt.Errorf("unknown fault %q", ev.Kind)
	}
	return ev, nil
}

// validNodeName accepts co<i>, sv<i>, cli<i> with a small index.
func validNodeName(v string) bool {
	var digits string
	switch {
	case strings.HasPrefix(v, "cli"):
		digits = v[3:]
	case strings.HasPrefix(v, "co"), strings.HasPrefix(v, "sv"):
		digits = v[2:]
	default:
		return false
	}
	if len(digits) == 0 || len(digits) > 3 {
		return false
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// normalize applies defaults and validates cross-field constraints.
func (sc *Scenario) normalize() error {
	if sc.Clients == 0 {
		sc.Clients = 2
	}
	if sc.Servers == 0 {
		sc.Servers = 3
	}
	if sc.Shards == 0 {
		sc.Shards = 1
	}
	if sc.Coords == 0 {
		sc.Coords = sc.Shards
	}
	if sc.Coords < sc.Shards {
		return fmt.Errorf("coords %d < shards %d", sc.Coords, sc.Shards)
	}
	if sc.Calls == 0 {
		sc.Calls = 40
	}
	if sc.Calls < sc.Clients {
		return fmt.Errorf("calls %d < clients %d", sc.Calls, sc.Clients)
	}
	if sc.Timeout == 0 {
		sc.Timeout = 30 * time.Second
	}
	if sc.StaleClients && sc.Shards < 2 {
		return fmt.Errorf("staleclients needs shards >= 2")
	}
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	for _, ev := range sc.Events {
		if err := sc.checkEventNode(ev.Node); err != nil {
			return err
		}
		if ev.Peer != "" {
			if err := sc.checkEventNode(ev.Peer); err != nil {
				return err
			}
		}
		if (ev.Kind == "crash" || ev.Kind == "restart" || ev.Kind == "disk") && strings.HasPrefix(ev.Node, "cli") {
			return fmt.Errorf("%s targets client %s; clients host the workload and cannot be faulted that way", ev.Kind, ev.Node)
		}
	}
	return nil
}

// checkEventNode verifies a fault's target exists in this scenario.
func (sc *Scenario) checkEventNode(name string) error {
	var idx int
	var limit int
	switch {
	case strings.HasPrefix(name, "cli"):
		idx, limit = atoiSafe(name[3:]), sc.Clients
	case strings.HasPrefix(name, "co"):
		idx, limit = atoiSafe(name[2:]), sc.Coords
	case strings.HasPrefix(name, "sv"):
		idx, limit = atoiSafe(name[2:]), sc.Servers
	default:
		return fmt.Errorf("bad node name %q", name)
	}
	if idx < 0 || idx >= limit {
		return fmt.Errorf("node %q out of range (scenario has clients=%d coords=%d servers=%d)",
			name, sc.Clients, sc.Coords, sc.Servers)
	}
	return nil
}

func atoiSafe(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// LastEventAt returns the offset of the latest fault, 0 when none.
func (sc *Scenario) LastEventAt() time.Duration {
	if len(sc.Events) == 0 {
		return 0
	}
	return sc.Events[len(sc.Events)-1].At
}

// DefaultSuite is the embedded conformance + chaos suite rpcv-sim runs
// when no file is given: ten configuration cells crossing every wire
// codec, store engine, transport, scheduling policy and a multi-loop
// coordinator, against scenarios covering the full fault taxonomy.
const DefaultSuite = `suite default

# The config matrix. Every cell must deliver the identical result set.
matrix wire=binary,gob store=wal,memory
cell store=files
cell store=wal transport=legacy
cell store=wal policy=fastest-first
cell store=wal policy=deadline
cell store=wal policy=speculative
cell store=wal loops=2

# No faults: the conformance baseline.
scenario baseline
  calls 40
end

# Asymmetric partition: the coordinator can hear sv0 but not reach it
# (assignments black-holed, heartbeats still arriving), then heals.
scenario oneway-partition
  servers 3
  calls 40
  at 150ms block co0 -> sv0
  at 700ms heal co0 -> sv0
end

# Slow-then-dead disk mid-group-commit, then crash-restart recovery.
scenario disk-fault
  calls 30
  at 100ms disk co0 stall 30ms
  at 300ms disk co0 fail 1
  at 500ms disk co0 heal
  at 550ms crash co0
  at 750ms restart co0
end

# Stalled, not dead: event loops freeze while TCP stays up, so peers
# must decide on heartbeat silence alone.
scenario stalled-coordinator
  calls 30
  at 150ms stall co0 700ms
end

# Clock skew: the coordinator's clock jumps forward (mass suspicion),
# then back to true.
scenario clock-skew
  calls 30
  at 150ms skew co0 2s
  at 800ms skew co0 0s
end

# Shard-map staleness: two rings, clients pinned to an outdated map
# with swapped ring assignment; every first submit misroutes and must
# be repaired by ShardRedirect.
scenario stale-shard-map
  shards 2
  staleclients
  calls 30
end
`
