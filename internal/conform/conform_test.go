package conform

import (
	"strings"
	"testing"
	"time"

	"rpcv/internal/proto"
)

// ---------------------------------------------------------------------
// Scenario-file parser
// ---------------------------------------------------------------------

func TestParseDefaultSuite(t *testing.T) {
	s, err := ParseSuite(DefaultSuite)
	if err != nil {
		t.Fatalf("embedded default suite must parse: %v", err)
	}
	if s.Name != "default" {
		t.Fatalf("suite name = %q", s.Name)
	}
	if len(s.Cells) != 10 {
		t.Fatalf("default suite has %d cells, want 10", len(s.Cells))
	}
	if len(s.Scenarios) != 6 {
		t.Fatalf("default suite has %d scenarios, want 6", len(s.Scenarios))
	}
	if got := s.Cells[0].Label(); got != "wire=binary store=wal transport=pooled policy=fcfs loops=1" {
		t.Fatalf("first cell label = %q", got)
	}
	// Every fault kind of the taxonomy appears somewhere in the suite.
	kinds := map[string]bool{}
	for _, sc := range s.Scenarios {
		for _, ev := range sc.Events {
			kinds[ev.Kind] = true
		}
		if sc.StaleClients {
			kinds["stale-map"] = true
		}
	}
	for _, want := range []string{"block", "heal", "disk", "crash", "restart", "stall", "skew", "stale-map"} {
		if !kinds[want] {
			t.Errorf("default suite exercises no %q fault", want)
		}
	}
	ow := s.Scenario("oneway-partition")
	if ow == nil {
		t.Fatal("oneway-partition scenario missing")
	}
	if ow.Events[0].Kind != "block" || ow.Events[0].Node != "co0" || ow.Events[0].Peer != "sv0" {
		t.Fatalf("oneway-partition first event = %+v", ow.Events[0])
	}
	if ow.Timeout != 30*time.Second || ow.Clients != 2 || ow.Servers != 3 {
		t.Fatalf("defaults not applied: %+v", ow)
	}
}

func TestParseSuiteRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no cells":           "suite x\nscenario a\nend\n",
		"no scenarios":       "suite x\ncell store=wal\n",
		"unknown directive":  "suite x\nbogus\n",
		"unknown cell key":   "suite x\ncell color=red\n",
		"unknown store":      "suite x\ncell store=floppy\n",
		"loops out of range": "suite x\ncell loops=99\n",
		"unclosed scenario":  "suite x\ncell store=wal\nscenario a\n",
		"bad event node":     "suite x\ncell store=wal\nscenario a\nat 1ms crash xx9\nend\n",
		"node out of range":  "suite x\ncell store=wal\nscenario a\ncoords 1\nat 1ms crash co5\nend\n",
		"self block":         "suite x\ncell store=wal\nscenario a\nat 1ms block co0 -> co0\nend\n",
		"bad duration":       "suite x\ncell store=wal\nscenario a\nat soon crash co0\nend\n",
		"negative at":        "suite x\ncell store=wal\nscenario a\nat -5ms crash co0\nend\n",
		"disk on client":     "suite x\ncell store=wal\nscenario a\nat 1ms disk cli0 fail 1\nend\n",
		"stale no shards":    "suite x\ncell store=wal\nscenario a\nstaleclients\nend\n",
		"dup scenario":       "suite x\ncell store=wal\nscenario a\nend\nscenario a\nend\n",
		"calls below grid":   "suite x\ncell store=wal\nscenario a\nclients 4\ncalls 2\nend\n",
		"matrix no values":   "suite x\nmatrix wire=\n",
		"giant input":        "suite x\n" + strings.Repeat("# pad\n", 200_000),
	}
	for name, src := range cases {
		if _, err := ParseSuite(src); err == nil {
			t.Errorf("%s: malformed input parsed without error", name)
		}
	}
}

func TestParseMatrixCrossProduct(t *testing.T) {
	s, err := ParseSuite("suite x\nmatrix wire=binary,gob store=wal,files,memory\nscenario a\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 6 {
		t.Fatalf("2x3 matrix expanded to %d cells", len(s.Cells))
	}
	seen := map[string]bool{}
	for _, c := range s.Cells {
		seen[c.Wire+"/"+c.Store] = true
	}
	if len(seen) != 6 {
		t.Fatalf("matrix cells not distinct: %v", seen)
	}
	// Duplicate cells collapse.
	s2, err := ParseSuite("suite x\ncell store=wal\ncell store=wal\nscenario a\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Cells) != 1 {
		t.Fatalf("duplicate cell not collapsed: %d", len(s2.Cells))
	}
}

// ---------------------------------------------------------------------
// Digest plane
// ---------------------------------------------------------------------

func TestDigestIsOrderInvariant(t *testing.T) {
	a := []string{"x|1|1|aa|", "y|2|2|bb|", "z|3|3|cc|"}
	b := []string{"z|3|3|cc|", "x|1|1|aa|", "y|2|2|bb|"}
	if digestOf(a) != digestOf(b) {
		t.Fatal("digest depends on delivery order")
	}
	if digestOf(a) == digestOf(a[:2]) {
		t.Fatal("digest ignores missing lines")
	}
}

func TestExpectedSetMatchesWorkload(t *testing.T) {
	sc := &Scenario{Clients: 3, Calls: 30}
	if err := sc.normalize(); err != nil {
		t.Fatal(err)
	}
	want := expectedSet(sc)
	if len(want) != 30 {
		t.Fatalf("expected set has %d entries, want 30", len(want))
	}
	call := proto.CallID{User: "u1", Session: 2, Seq: 5}
	line, ok := want[call]
	if !ok {
		t.Fatalf("call %v missing from expectation", call)
	}
	// The line must be exactly what a server computing the workload
	// function would cause the client to record.
	exp := resultLine(call, workOutput(workParams("u1", 2, 5)), "")
	if line != exp {
		t.Fatalf("expectation line = %q, want %q", line, exp)
	}
}

// ---------------------------------------------------------------------
// Frozen fault regressions: each pins one chaos scenario the matrix
// uncovered development bugs in, at reduced scale so the whole set
// stays test-suite friendly. A regression in partition handling, WAL
// fault recovery, stall tolerance, skew tolerance or shard-map repair
// turns exactly one of these red.
// ---------------------------------------------------------------------

// runFrozen parses an inline suite and requires every cell to pass.
func runFrozen(t *testing.T, src string) *Report {
	t.Helper()
	suite, err := ParseSuite(src)
	if err != nil {
		t.Fatalf("frozen suite must parse: %v", err)
	}
	rep, err := Run(suite, Options{Seed: 7, Parallel: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, v := range rep.Verdicts {
		if v.Verdict != "pass" {
			t.Errorf("%s / %s: %s (%s) delivered %d/%d",
				v.Scenario, v.Cell, v.Verdict, v.Detail, v.Delivered, v.Expected)
		}
	}
	if !rep.Passed {
		t.Fatal("frozen scenario regressed")
	}
	return rep
}

// TestFrozenOneWayPartition: the coordinator can hear sv0 but not
// reach it. Assignments black-hole while heartbeats keep arriving, so
// only the server-side suspicion path can requeue the stranded tasks.
func TestFrozenOneWayPartition(t *testing.T) {
	runFrozen(t, `suite frozen
cell store=wal
scenario oneway
  servers 3
  calls 24
  at 100ms block co0 -> sv0
  at 600ms heal co0 -> sv0
end
`)
}

// TestFrozenDiskTornCrashRestart: a torn write mid-group-commit, a
// sticky fsync failure, then a crash and a restart on the same WAL
// directory. Previously untested in-tree: torn-write recovery at
// cluster level, with clients resubmitting across the restart.
func TestFrozenDiskTornCrashRestart(t *testing.T) {
	runFrozen(t, `suite frozen
cell store=wal
scenario torn-disk
  calls 16
  at 80ms  disk co0 torn 1
  at 150ms disk co0 stall 20ms
  at 250ms disk co0 fail 1
  at 400ms disk co0 heal
  at 450ms crash co0
  at 600ms restart co0
end
`)
}

// TestFrozenStalledCoordinator: the coordinator freezes without dying
// — TCP accepts, loops do nothing — then resumes. Stalled-not-dead
// must look exactly like slow, never like split-brain.
func TestFrozenStalledCoordinator(t *testing.T) {
	runFrozen(t, `suite frozen
cell store=wal
scenario stalled
  calls 16
  at 100ms stall co0 500ms
end
`)
}

// TestFrozenClockSkew: the coordinator's clock jumps two seconds
// forward (every server instantly "silent" by its skewed detector),
// then back. Timeouts may churn assignments; results may not change.
func TestFrozenClockSkew(t *testing.T) {
	runFrozen(t, `suite frozen
cell store=wal
scenario skew
  calls 16
  at 100ms skew co0 2s
  at 600ms skew co0 0s
  timeout 20s
end
`)
}

// TestFrozenStaleShardMap: two shards, clients pinned to an older map
// with rotated ring assignment. Every session initially misroutes and
// must be repaired by ShardRedirect without losing a call.
func TestFrozenStaleShardMap(t *testing.T) {
	runFrozen(t, `suite frozen
cell store=wal
scenario stale-map
  shards 2
  staleclients
  calls 16
end
`)
}

// TestFrozenCrossConfigAgreement is the conformance core at smoke
// scale: two cells differing in wire codec and store engine run the
// same faulted workload and must land on one digest.
func TestFrozenCrossConfigAgreement(t *testing.T) {
	rep := runFrozen(t, `suite frozen
cell wire=binary store=wal
cell wire=gob store=memory
scenario faulted
  calls 20
  at 100ms block co0 -> sv0
  at 150ms disk co0 stall 10ms
  at 400ms heal co0 -> sv0
  at 400ms disk co0 heal
end
`)
	if len(rep.Verdicts) != 2 {
		t.Fatalf("expected 2 verdicts, got %d", len(rep.Verdicts))
	}
	if rep.Verdicts[0].Digest != rep.Verdicts[1].Digest {
		t.Fatalf("cells disagree: %s vs %s", rep.Verdicts[0].Digest, rep.Verdicts[1].Digest)
	}
}

// ---------------------------------------------------------------------
// Quick-mode selection
// ---------------------------------------------------------------------

func TestQuickSelectionPrefersFaultScenarios(t *testing.T) {
	suite, err := ParseSuite(DefaultSuite)
	if err != nil {
		t.Fatal(err)
	}
	cells, scenarios := selectMatrix(suite, Options{Quick: true})
	if len(cells) != quickCellCount {
		t.Fatalf("quick selects %d cells, want %d", len(cells), quickCellCount)
	}
	if len(scenarios) != quickScenarioCount {
		t.Fatalf("quick selects %d scenarios, want %d", len(scenarios), quickScenarioCount)
	}
	for _, sc := range scenarios {
		if len(sc.Events) == 0 && !sc.StaleClients {
			t.Errorf("quick picked faultless scenario %q", sc.Name)
		}
	}
}

func TestSelectMatrixFilters(t *testing.T) {
	suite, err := ParseSuite(DefaultSuite)
	if err != nil {
		t.Fatal(err)
	}
	cells, scenarios := selectMatrix(suite, Options{
		Cells:     []string{"store=files"},
		Scenarios: []string{"disk-fault"},
	})
	if len(cells) != 1 || cells[0].Store != "files" {
		t.Fatalf("cell filter selected %v", cells)
	}
	if len(scenarios) != 1 || scenarios[0].Name != "disk-fault" {
		t.Fatalf("scenario filter selected %d scenarios", len(scenarios))
	}
}
