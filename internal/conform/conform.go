// Package conform is the conformance + chaos matrix harness behind
// rpcv-sim: it boots real loopback clusters — one per cell of the
// configuration matrix (wire codec x store engine x transport x
// scheduling policy x event-loop count) — drives the same
// deterministic workload through each, injects the fault taxonomy
// from a declarative scenario timeline (asymmetric one-way
// partitions, slow/failing/torn disks mid-group-commit,
// stalled-not-dead coordinators, clock skew, stale shard maps,
// crash/restart), and asserts every configuration agrees: the
// identical (CallID -> result) set, zero lost completed results, one
// canonical digest.
//
// The workload is a pure function of call identity, so the expected
// result set is computed analytically — no reference run, no blessed
// config. A cell that loses a result, delivers a diverging output, or
// lands on a different digest fails its cell verdict; with an
// artifact directory set, the fleet flight recorder captures a
// post-mortem bundle and the fault/verdict timeline is persisted as
// framed protocol messages readable by proto.NewWireDecoder.
package conform

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"rpcv/internal/metrics"
)

// Options configures a conformance run.
type Options struct {
	// Seed feeds every node's deterministic RNG streams.
	Seed int64

	// Quick trims the run to CI-smoke size: the first two matrix
	// cells against two fault scenarios.
	Quick bool

	// ArtifactDir, when set, enables the observability plane: framed
	// SimFault/SimVerdict artifacts per cell, plus a fleet flight
	// bundle captured on every failed verdict.
	ArtifactDir string

	// Parallel caps concurrently running cells. Zero picks a small
	// default from the host's CPU count; 1 forces sequential runs.
	Parallel int

	// Scenarios, when non-empty, restricts the run to these scenario
	// names. Cells likewise restricts by substring of the cell label.
	Scenarios []string
	Cells     []string

	// Logf receives harness and node logs. Nil discards them.
	Logf func(string, ...any)
}

// CellVerdict grades one (cell, scenario) run.
type CellVerdict struct {
	Cell      string
	Scenario  string
	Verdict   string // "pass" | "lost-results" | "divergent" | "error"
	Digest    string
	Delivered int
	Expected  int
	Faults    int
	Elapsed   time.Duration
	Detail    string // failure explanation, empty on pass
	Bundle    string // flight-recorder bundle path, when captured
}

// Report is a full conformance run's outcome.
type Report struct {
	Suite    string
	Verdicts []CellVerdict
	Table    *metrics.Table
	Passed   bool
}

// quickScenarioCount and quickCellCount bound the -quick smoke run.
const (
	quickCellCount     = 2
	quickScenarioCount = 2
)

// Run executes the suite's full scenario x cell matrix and grades
// every run. The error return is reserved for harness misuse (empty
// selection); infrastructure failures inside a cell surface as
// "error" verdicts so one broken cell cannot mask the rest.
func Run(suite *Suite, opts Options) (*Report, error) {
	cells, scenarios := selectMatrix(suite, opts)
	if len(cells) == 0 {
		return nil, fmt.Errorf("conform: no cells selected")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("conform: no scenarios selected")
	}

	type slot struct {
		sc   *Scenario
		cell Cell
	}
	var runs []slot
	for _, sc := range scenarios {
		for _, c := range cells {
			runs = append(runs, slot{sc, c})
		}
	}
	verdicts := make([]CellVerdict, len(runs))

	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU() / 2
		if workers < 1 {
			workers = 1
		}
		if workers > 4 {
			workers = 4
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range runs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			verdicts[i] = runCell(suite.Name, runs[i].cell, runs[i].sc, opts)
		}()
	}
	wg.Wait()

	// Cross-config agreement: every cell of a scenario must land on
	// one digest. Per-cell grading already pins each digest to the
	// analytic expectation; this guards the harness against an
	// expectation bug silently blessing disagreement.
	byScenario := map[string]string{}
	for i := range verdicts {
		v := &verdicts[i]
		if v.Verdict != "pass" {
			continue
		}
		if first, ok := byScenario[v.Scenario]; !ok {
			byScenario[v.Scenario] = v.Digest
		} else if first != v.Digest {
			v.Verdict = "divergent"
			v.Detail = fmt.Sprintf("digest disagrees with sibling cells (%s vs %s)", v.Digest, first)
		}
	}

	rep := &Report{Suite: suite.Name, Verdicts: verdicts, Passed: true}
	rep.Table = metrics.NewTable(
		fmt.Sprintf("Conformance matrix: suite %q, %d cells x %d scenarios", suite.Name, len(cells), len(scenarios)),
		"scenario", "cell", "verdict", "digest", "delivered", "faults", "elapsed", "detail")
	for _, v := range verdicts {
		if v.Verdict != "pass" {
			rep.Passed = false
		}
		rep.Table.AddRow(v.Scenario, v.Cell, v.Verdict, v.Digest,
			fmt.Sprintf("%d/%d", v.Delivered, v.Expected), v.Faults,
			v.Elapsed.Round(time.Millisecond), v.Detail)
	}
	return rep, nil
}

// selectMatrix applies Quick and the name filters to the suite.
func selectMatrix(suite *Suite, opts Options) ([]Cell, []*Scenario) {
	cells := make([]Cell, len(suite.Cells))
	copy(cells, suite.Cells)
	var scenarios []*Scenario
	for i := range suite.Scenarios {
		scenarios = append(scenarios, &suite.Scenarios[i])
	}
	if len(opts.Cells) > 0 {
		var keep []Cell
		for _, c := range cells {
			for _, want := range opts.Cells {
				if containsAll(c.Label(), want) {
					keep = append(keep, c)
					break
				}
			}
		}
		cells = keep
	}
	if len(opts.Scenarios) > 0 {
		var keep []*Scenario
		for _, sc := range scenarios {
			for _, want := range opts.Scenarios {
				if sc.Name == want {
					keep = append(keep, sc)
					break
				}
			}
		}
		scenarios = keep
	}
	if opts.Quick {
		if len(cells) > quickCellCount {
			cells = cells[:quickCellCount]
		}
		// Prefer scenarios that actually inject faults: the smoke run
		// exists to prove the chaos plane, not just the happy path.
		var faulty, calm []*Scenario
		for _, sc := range scenarios {
			if len(sc.Events) > 0 || sc.StaleClients {
				faulty = append(faulty, sc)
			} else {
				calm = append(calm, sc)
			}
		}
		picked := faulty
		if len(picked) > quickScenarioCount {
			picked = picked[:quickScenarioCount]
		}
		for len(picked) < quickScenarioCount && len(calm) > 0 {
			picked = append(picked, calm[0])
			calm = calm[1:]
		}
		scenarios = picked
	}
	return cells, scenarios
}

// containsAll reports whether every space-separated token of want
// appears in label.
func containsAll(label, want string) bool {
	for _, tok := range strings.Fields(want) {
		if !strings.Contains(label, tok) {
			return false
		}
	}
	return true
}
