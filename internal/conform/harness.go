package conform

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/gridrpc"
	"rpcv/internal/msglog"
	"rpcv/internal/netmodel"
	"rpcv/internal/obs"
	"rpcv/internal/obs/fleet"
	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
	"rpcv/internal/shard"
	"rpcv/internal/store"
)

// Harness timing: aggressive detector settings so scenario timelines
// measured in hundreds of milliseconds exercise full suspicion and
// recovery cycles.
const (
	beat    = 25 * time.Millisecond
	suspect = 250 * time.Millisecond
)

// nodeSlot owns one grid node's runtime across crash/restart cycles.
type nodeSlot struct {
	mu    sync.Mutex
	rtm   *rt.Runtime
	start func() (*rt.Runtime, error)
}

func (s *nodeSlot) get() *rt.Runtime {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rtm
}

// runCell boots one real loopback cluster configured as cell, drives
// the scenario's deterministic workload through the fault timeline,
// and grades the delivered result set against the analytic
// expectation.
func runCell(suiteName string, cell Cell, sc *Scenario, opts Options) CellVerdict {
	v := CellVerdict{Cell: cell.Label(), Scenario: sc.Name, Verdict: "pass"}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()

	// Every inter-node byte crosses a per-directed-link TCP proxy so
	// the timeline can sever and black-hole each direction
	// independently. Proxy addresses are stable across node restarts.
	rules := netmodel.NewRules()
	faults := gridrpc.NewLinkFaults(rules, logf)
	defer faults.Close()

	nCoords, nServers, nClients := sc.Coords, sc.Servers, sc.Clients
	var all []proto.NodeID
	for i := 0; i < nCoords; i++ {
		all = append(all, proto.NodeID(fmt.Sprintf("co%d", i)))
	}
	for i := 0; i < nServers; i++ {
		all = append(all, proto.NodeID(fmt.Sprintf("sv%d", i)))
	}
	for i := 0; i < nClients; i++ {
		all = append(all, proto.NodeID(fmt.Sprintf("cli%d", i)))
	}
	dirFor := func(self proto.NodeID) (rt.Directory, error) {
		d := rt.Directory{}
		for _, id := range all {
			if id == self {
				continue
			}
			addr, err := faults.Addr(self, id)
			if err != nil {
				return nil, err
			}
			d[id] = addr
		}
		return d, nil
	}
	fail := func(format string, args ...any) CellVerdict {
		v.Verdict = "error"
		v.Detail = fmt.Sprintf(format, args...)
		v.Elapsed = time.Since(start)
		return v
	}

	// Shard topology: one single-coordinator ring per shard, extra
	// coordinators joining rings round-robin. Unsharded: one ring.
	rings := make([][]proto.NodeID, 1)
	if sc.Shards > 1 {
		rings = make([][]proto.NodeID, sc.Shards)
	}
	for i := 0; i < nCoords; i++ {
		r := i % len(rings)
		rings[r] = append(rings[r], proto.NodeID(fmt.Sprintf("co%d", i)))
	}
	var truth, stale *shard.Map
	if sc.Shards > 1 {
		truth = shard.New(2, rings, 0)
		// The stale map clients may be pinned to: an older version with
		// the ring assignment rotated, so session hashes point at the
		// wrong shard until a ShardRedirect repairs the cache.
		rotated := make([][]proto.NodeID, len(rings))
		for i := range rings {
			rotated[i] = rings[(i+1)%len(rings)]
		}
		stale = shard.New(1, rotated, 0)
	}
	ringOf := func(i int) []proto.NodeID { return rings[i%len(rings)] }

	// Observability plane: only assembled when a post-mortem artifact
	// directory is wanted — the flight recorder needs live scrape
	// sources and span rings to capture anything useful.
	var reg *obs.Registry
	var obsMu sync.Mutex
	observers := map[proto.NodeID][]*obs.Observer{}
	observer := func(id proto.NodeID) *obs.Observer {
		if reg == nil {
			return nil
		}
		ob := obs.NewWith(id, reg)
		obsMu.Lock()
		observers[id] = append(observers[id], ob)
		obsMu.Unlock()
		return ob
	}
	if opts.ArtifactDir != "" {
		reg = obs.NewRegistry()
	}

	codec := proto.CodecForWire(cell.Wire)
	slots := map[string]*nodeSlot{}
	plans := map[string]*store.FaultPlan{}
	var slotsMu sync.Mutex
	boot := func(name string, slot *nodeSlot) error {
		rtm, err := slot.start()
		if err != nil {
			return err
		}
		slot.mu.Lock()
		slot.rtm = rtm
		slot.mu.Unlock()
		faults.SetTarget(proto.NodeID(name), rtm.Addr())
		slotsMu.Lock()
		slots[name] = slot
		slotsMu.Unlock()
		return nil
	}
	defer func() {
		slotsMu.Lock()
		defer slotsMu.Unlock()
		for _, slot := range slots {
			if rtm := slot.get(); rtm != nil {
				rtm.Close()
			}
		}
	}()

	// Coordinators: the cell's store engine under a fault-injection
	// wrapper (interposed after the engine's own dir-refusal checks),
	// the cell's codec, transport, policy and loop count.
	diskRoot, err := os.MkdirTemp("", "rpcv-sim-*")
	if err != nil {
		return fail("mkdir: %v", err)
	}
	defer os.RemoveAll(diskRoot)
	for i := 0; i < nCoords; i++ {
		i := i
		name := fmt.Sprintf("co%d", i)
		id := proto.NodeID(name)
		plan := &store.FaultPlan{}
		plans[name] = plan
		dir, err := dirFor(id)
		if err != nil {
			return fail("directory %s: %v", name, err)
		}
		diskDir := ""
		if cell.Store != "memory" {
			diskDir = filepath.Join(diskRoot, name)
		}
		slot := &nodeSlot{}
		slot.start = func() (*rt.Runtime, error) {
			co := coordinator.New(coordinator.Config{
				Coordinators:      ringOf(i),
				HeartbeatPeriod:   beat,
				HeartbeatTimeout:  suspect,
				ReplicationPeriod: 150 * time.Millisecond,
				Codec:             codec,
				Policy:            cell.Policy,
				Shard:             truth,
				Obs:               observer(id),
			})
			return rt.Start(rt.Config{
				ID: id, ListenAddr: "127.0.0.1:0", Handler: co,
				Directory: dir, DiskDir: diskDir, Store: cell.Store,
				Loops: cell.Loops, Seed: opts.Seed + int64(i),
				LegacyTransport: cell.Transport == "legacy", Wire: cell.Wire,
				Logf:      logf,
				WrapStore: func(s store.Store) store.Store { return store.WithFaults(s, plan) },
			})
		}
		if err := boot(name, slot); err != nil {
			return fail("boot %s: %v", name, err)
		}
	}

	// Servers: in-memory state (the paper's servers are stateless
	// executors), attached round-robin to the rings.
	services := map[string]server.Service{
		"conform": func(p []byte) ([]byte, error) { return workOutput(p), nil },
	}
	for i := 0; i < nServers; i++ {
		i := i
		name := fmt.Sprintf("sv%d", i)
		id := proto.NodeID(name)
		dir, err := dirFor(id)
		if err != nil {
			return fail("directory %s: %v", name, err)
		}
		slot := &nodeSlot{}
		slot.start = func() (*rt.Runtime, error) {
			sv := server.New(server.Config{
				Coordinators:     ringOf(i),
				HeartbeatPeriod:  beat,
				SuspicionTimeout: suspect,
				Services:         services,
				Codec:            codec,
			})
			return rt.Start(rt.Config{
				ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
				Directory: dir, Seed: opts.Seed + 100 + int64(i),
				LegacyTransport: cell.Transport == "legacy", Wire: cell.Wire,
				Logf: logf, Obs: observer(id),
			})
		}
		if err := boot(name, slot); err != nil {
			return fail("boot %s: %v", name, err)
		}
	}

	// Clients: the workload drivers. Each collects every first-seen
	// result; the run is done when the union matches the expectation
	// or the scenario watchdog fires.
	want := expectedSet(sc)
	perClient := sc.Calls / sc.Clients
	target := perClient * nClients
	var (
		resMu     sync.Mutex
		delivered = map[proto.CallID]string{}
		done      = make(chan struct{})
		once      sync.Once
	)
	record := func(res proto.Result, _ time.Time) {
		resMu.Lock()
		if _, ok := delivered[res.Call]; !ok {
			delivered[res.Call] = resultLine(res.Call, res.Output, res.Err)
		}
		n := len(delivered)
		resMu.Unlock()
		if n >= target {
			once.Do(func() { close(done) })
		}
	}
	clis := make([]*client.Client, nClients)
	for i := 0; i < nClients; i++ {
		i := i
		name := fmt.Sprintf("cli%d", i)
		id := proto.NodeID(name)
		dir, err := dirFor(id)
		if err != nil {
			return fail("directory %s: %v", name, err)
		}
		cliShard := truth
		if sc.StaleClients {
			cliShard = stale
		}
		cli := client.New(client.Config{
			User:             proto.UserID(fmt.Sprintf("u%d", i)),
			Session:          proto.SessionID(i + 1),
			Coordinators:     rings[0],
			PollPeriod:       beat,
			SuspicionTimeout: suspect,
			Logging:          msglog.NonBlockingPessimistic,
			Disk:             msglog.InstantDisk(),
			Codec:            codec,
			Shard:            cliShard,
			OnResult:         record,
			Obs:              observer(id),
		})
		clis[i] = cli
		slot := &nodeSlot{}
		slot.start = func() (*rt.Runtime, error) {
			return rt.Start(rt.Config{
				ID: id, ListenAddr: "127.0.0.1:0", Handler: cli,
				Directory: dir, Seed: opts.Seed + 200 + int64(i),
				LegacyTransport: cell.Transport == "legacy", Wire: cell.Wire,
				Logf: logf,
			})
		}
		if err := boot(name, slot); err != nil {
			return fail("boot %s: %v", name, err)
		}
	}

	// Fleet watcher: the same in-process scrape sources rpcv-mon uses,
	// feeding the flight recorder that captures the post-mortem bundle
	// on a failed verdict.
	var mon *fleet.Monitor
	if reg != nil {
		var sources []fleet.Source
		for _, id := range fleet.RegistryNodes(reg) {
			id := id
			sources = append(sources, &fleet.FuncSource{
				Node: id,
				Fetch: func() ([]fleet.Sample, error) {
					slotsMu.Lock()
					slot := slots[string(id)]
					slotsMu.Unlock()
					if slot != nil && slot.get() == nil {
						return nil, fmt.Errorf("node %s is down", id)
					}
					return fleet.SamplesFromRegistry(reg, id), nil
				},
				Trace: func() []obs.Span {
					obsMu.Lock()
					list := append([]*obs.Observer(nil), observers[id]...)
					obsMu.Unlock()
					var out []obs.Span
					for _, ob := range list {
						out = append(out, ob.Tracer().Dump()...)
					}
					return out
				},
			})
		}
		mon = fleet.New(fleet.Config{
			Sources:   sources,
			Interval:  50 * time.Millisecond,
			DownAfter: 2,
			BundleDir: opts.ArtifactDir,
		})
		mon.Start()
	}

	// The fault timeline, on its own clock from workload start.
	var frames []byte
	var frameMu sync.Mutex
	noteFault := func(ev Event, detail string) {
		v.Faults++
		sf := &proto.SimFault{
			Suite: suiteName, Scenario: sc.Name, Cell: cell.Label(),
			Fault: ev.Kind, Node: proto.NodeID(ev.Node), Peer: proto.NodeID(ev.Peer),
			At: ev.At, Detail: detail,
		}
		logf("sim: %s/%s: at %v %s %s", sc.Name, cell.Label(), ev.At, ev.Kind, detail)
		frameMu.Lock()
		frames, _ = proto.AppendFrame(frames, "rpcv-sim", sf)
		frameMu.Unlock()
	}
	stopTimeline := make(chan struct{})
	var timelineWG sync.WaitGroup
	t0 := time.Now()
	timelineWG.Add(1)
	go func() {
		defer timelineWG.Done()
		for _, ev := range sc.Events {
			select {
			case <-stopTimeline:
				return
			case <-time.After(time.Until(t0.Add(ev.At))):
			}
			applyEvent(ev, rules, faults, slots, plans, noteFault)
		}
	}()

	// The workload: each client issues its share on a fixed cadence
	// chosen so submissions are still in flight when every fault
	// lands. Submissions carry a soft deadline so the deadline policy
	// cell exercises earliest-deadline-first ordering.
	gap := workGap(sc)
	var driverWG sync.WaitGroup
	stopDrivers := make(chan struct{})
	for i := 0; i < nClients; i++ {
		i := i
		cli := clis[i]
		user := proto.UserID(fmt.Sprintf("u%d", i))
		session := proto.SessionID(i + 1)
		slot := slots[fmt.Sprintf("cli%d", i)]
		driverWG.Add(1)
		go func() {
			defer driverWG.Done()
			for s := 0; s < perClient; s++ {
				select {
				case <-stopDrivers:
					return
				default:
				}
				if rtm := slot.get(); rtm != nil {
					params := workParams(user, session, proto.RPCSeq(s+1))
					rtm.Do(func() {
						cli.SubmitWithDeadline("conform", params, 0, 0, 2*time.Second)
					})
				}
				select {
				case <-stopDrivers:
					return
				case <-time.After(gap):
				}
			}
		}()
	}

	select {
	case <-done:
	case <-time.After(sc.Timeout):
	}
	close(stopDrivers)
	close(stopTimeline)
	driverWG.Wait()
	timelineWG.Wait()

	// Grade: exactly the expected (CallID -> result) set, nothing
	// lost, nothing diverged.
	resMu.Lock()
	got := make(map[proto.CallID]string, len(delivered))
	for k, l := range delivered {
		got[k] = l
	}
	resMu.Unlock()
	lines := make([]string, 0, len(got))
	for _, l := range got {
		lines = append(lines, l)
	}
	v.Delivered, v.Expected = len(got), target
	v.Digest = digestOf(lines)
	v.Elapsed = time.Since(start)
	missing := 0
	for call, wl := range want {
		gl, ok := got[call]
		if !ok {
			missing++
			continue
		}
		if gl != wl {
			v.Verdict = "divergent"
			v.Detail = fmt.Sprintf("call %s/%d/%d delivered a diverging result", call.User, call.Session, call.Seq)
		}
	}
	if v.Verdict == "pass" {
		for call := range got {
			if _, ok := want[call]; !ok {
				v.Verdict = "divergent"
				v.Detail = fmt.Sprintf("unexpected call %s/%d/%d delivered", call.User, call.Session, call.Seq)
				break
			}
		}
	}
	if v.Verdict == "pass" && missing > 0 {
		v.Verdict = "lost-results"
		v.Detail = fmt.Sprintf("%d of %d results never delivered", missing, target)
	}
	if v.Verdict == "pass" && v.Digest != expectedDigest(sc) {
		v.Verdict = "divergent"
		v.Detail = "digest mismatch against analytic expectation"
	}

	// Post-mortem: on any failed verdict with an artifact directory,
	// freeze the fleet's state the way rpcv-mon's flight recorder
	// would, and always persist the framed fault/verdict artifact.
	if mon != nil {
		mon.Close()
		if v.Verdict != "pass" {
			if path, err := mon.CaptureBundle("sim " + sc.Name + ": " + v.Verdict); err == nil {
				v.Bundle = path
			}
		}
	}
	if opts.ArtifactDir != "" {
		sv := &proto.SimVerdict{
			Suite: suiteName, Scenario: sc.Name, Cell: cell.Label(),
			Verdict: v.Verdict, Digest: v.Digest,
			Delivered: v.Delivered, Expected: v.Expected,
			Faults: v.Faults, Elapsed: v.Elapsed,
		}
		frameMu.Lock()
		frames, _ = proto.AppendFrame(frames, "rpcv-sim", sv)
		data := frames
		frameMu.Unlock()
		name := fmt.Sprintf("sim_%s_%s.frames", sc.Name, sanitizeLabel(cell.Label()))
		if err := os.WriteFile(filepath.Join(opts.ArtifactDir, name), data, 0o644); err != nil {
			logf("sim: artifact write failed: %v", err)
		}
	}
	return v
}

// applyEvent injects one timeline fault into the running grid.
func applyEvent(ev Event, rules *netmodel.Rules, faults *gridrpc.LinkFaults,
	slots map[string]*nodeSlot, plans map[string]*store.FaultPlan,
	note func(Event, string)) {
	switch ev.Kind {
	case "block":
		rules.BlockLink(proto.NodeID(ev.Node), proto.NodeID(ev.Peer))
		note(ev, fmt.Sprintf("partition %s -> %s", ev.Node, ev.Peer))
	case "heal":
		rules.HealLink(proto.NodeID(ev.Node), proto.NodeID(ev.Peer))
		note(ev, fmt.Sprintf("heal %s -> %s", ev.Node, ev.Peer))
	case "crash":
		slot := slots[ev.Node]
		slot.mu.Lock()
		if slot.rtm != nil {
			slot.rtm.Close()
			slot.rtm = nil
		}
		slot.mu.Unlock()
		note(ev, "crash "+ev.Node)
	case "restart":
		slot := slots[ev.Node]
		if plan := plans[ev.Node]; plan != nil {
			plan.Heal() // a replaced disk comes back healthy
		}
		rtm, err := slot.start()
		if err != nil {
			note(ev, fmt.Sprintf("restart %s FAILED: %v", ev.Node, err))
			return
		}
		slot.mu.Lock()
		slot.rtm = rtm
		slot.mu.Unlock()
		faults.SetTarget(proto.NodeID(ev.Node), rtm.Addr())
		note(ev, "restart "+ev.Node)
	case "disk":
		plan := plans[ev.Node]
		if plan == nil {
			note(ev, "disk fault on storeless node "+ev.Node+" ignored")
			return
		}
		switch ev.Op {
		case "fail":
			plan.FailCommits(ev.N)
			note(ev, fmt.Sprintf("disk %s: fail commit #%d then stay broken", ev.Node, ev.N))
		case "stall":
			plan.StallCommits(ev.Dur)
			note(ev, fmt.Sprintf("disk %s: stall every commit %v", ev.Node, ev.Dur))
		case "torn":
			plan.TornWrites(ev.N)
			note(ev, fmt.Sprintf("disk %s: tear write #%d", ev.Node, ev.N))
		case "heal":
			plan.Heal()
			note(ev, "disk "+ev.Node+": healed")
		}
	case "stall":
		if rtm := slots[ev.Node].get(); rtm != nil {
			rtm.StallLoops(ev.Dur)
			note(ev, fmt.Sprintf("stall %s event loops %v (TCP stays up)", ev.Node, ev.Dur))
		} else {
			note(ev, "stall "+ev.Node+" skipped: node is down")
		}
	case "skew":
		if rtm := slots[ev.Node].get(); rtm != nil {
			rtm.SetClockOffset(ev.Dur)
			note(ev, fmt.Sprintf("skew %s clock by %v", ev.Node, ev.Dur))
		} else {
			note(ev, "skew "+ev.Node+" skipped: node is down")
		}
	}
}

// sanitizeLabel turns a cell label into a filename fragment.
func sanitizeLabel(label string) string {
	return strings.NewReplacer("=", "-", " ", "_").Replace(label)
}
