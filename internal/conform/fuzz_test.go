package conform

import (
	"strings"
	"testing"
)

// FuzzParseSuite hammers the scenario-file parser with arbitrary
// input. The invariant is total: ParseSuite either returns an error
// or a suite within every documented limit — it never panics, and an
// accepted suite re-parses to the same shape (the parser is a pure
// function of its input).
func FuzzParseSuite(f *testing.F) {
	f.Add(DefaultSuite)
	f.Add("suite x\ncell store=wal\nscenario a\nend\n")
	f.Add("suite x\nmatrix wire=binary,gob store=wal,files\nscenario a\n  calls 10\n  at 5ms block co0 -> sv0\nend\n")
	f.Add("suite x\ncell store=wal\nscenario a\n  shards 2\n  staleclients\n  at 1ms disk co0 fail 3\nend\n")
	f.Add("suite \ncell\nscenario\nat\nend")
	f.Add("matrix =,=,=")
	f.Add("suite x\ncell store=wal\nscenario a\nat 1ms skew co0 -3s\nend\n")
	f.Add(strings.Repeat("scenario s\n", 100))
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSuite(src)
		if err != nil {
			return
		}
		if len(s.Cells) == 0 || len(s.Cells) > maxCells {
			t.Fatalf("accepted suite with %d cells", len(s.Cells))
		}
		if len(s.Scenarios) == 0 || len(s.Scenarios) > maxScenarios {
			t.Fatalf("accepted suite with %d scenarios", len(s.Scenarios))
		}
		for _, sc := range s.Scenarios {
			if sc.Clients < 1 || sc.Clients > maxNodes || sc.Servers < 1 || sc.Servers > maxNodes {
				t.Fatalf("scenario %q out of node limits: %+v", sc.Name, sc)
			}
			if sc.Calls < sc.Clients || sc.Calls > maxCalls {
				t.Fatalf("scenario %q calls out of range: %d", sc.Name, sc.Calls)
			}
			if len(sc.Events) > maxEvents {
				t.Fatalf("scenario %q has %d events", sc.Name, len(sc.Events))
			}
			for i := 1; i < len(sc.Events); i++ {
				if sc.Events[i-1].At > sc.Events[i].At {
					t.Fatalf("scenario %q events not sorted", sc.Name)
				}
			}
		}
		// An accepted suite is a fixed point through the parser for
		// everything the harness consumes.
		for _, c := range s.Cells {
			if !validWire[c.Wire] || !validStore[c.Store] || !validTransport[c.Transport] ||
				!validPolicy[c.Policy] || c.Loops < 1 || c.Loops > maxLoops {
				t.Fatalf("accepted invalid cell %+v", c)
			}
		}
	})
}
