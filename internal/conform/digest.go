package conform

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"rpcv/internal/proto"
)

// The conformance workload is a pure function of the call identity:
// every cell, on every scenario, must deliver exactly this output for
// every (user, session, seq) — which is what lets the harness compute
// the expected result set analytically and compare configurations by
// digest instead of by reference run.

// workParams derives the deterministic request payload for a call.
func workParams(user proto.UserID, session proto.SessionID, seq proto.RPCSeq) []byte {
	return []byte(fmt.Sprintf("conform/%s/%d/%d", user, session, seq))
}

// workOutput is what the "conform" service computes from its params.
func workOutput(params []byte) []byte {
	h := sha256.Sum256(params)
	return h[:]
}

// resultLine renders one delivered result canonically.
func resultLine(call proto.CallID, output []byte, errstr string) string {
	return fmt.Sprintf("%s|%d|%d|%x|%s", call.User, call.Session, call.Seq, output, errstr)
}

// digestOf folds a set of canonical result lines into the cell digest:
// sorted, newline-joined, sha256. Order of delivery never matters.
func digestOf(lines []string) string {
	sorted := append([]string(nil), lines...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, l := range sorted {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))[:16]
}

// expectedSet computes the full analytic expectation for a scenario:
// one line per call every client will issue.
func expectedSet(sc *Scenario) map[proto.CallID]string {
	perClient := sc.Calls / sc.Clients
	want := make(map[proto.CallID]string, perClient*sc.Clients)
	for i := 0; i < sc.Clients; i++ {
		user := proto.UserID(fmt.Sprintf("u%d", i))
		session := proto.SessionID(i + 1)
		for s := 1; s <= perClient; s++ {
			call := proto.CallID{User: user, Session: session, Seq: proto.RPCSeq(s)}
			want[call] = resultLine(call, workOutput(workParams(user, session, call.Seq)), "")
		}
	}
	return want
}

// expectedDigest is the digest every conforming cell must land on.
func expectedDigest(sc *Scenario) string {
	lines := make([]string, 0, sc.Calls)
	for _, l := range expectedSet(sc) {
		lines = append(lines, l)
	}
	return digestOf(lines)
}

// workGap picks the per-client submit pacing so the workload is still
// in flight when the last fault lands, plus recovery headroom.
func workGap(sc *Scenario) time.Duration {
	if sc.Gap > 0 {
		return sc.Gap
	}
	perClient := sc.Calls / sc.Clients
	span := sc.LastEventAt() + 400*time.Millisecond
	gap := span / time.Duration(perClient)
	if gap < 10*time.Millisecond {
		gap = 10 * time.Millisecond
	}
	return gap
}
