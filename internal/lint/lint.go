// Package lint assembles rpcv's project-specific static analyzers into
// one suite and runs them over a loaded program. The analyzers encode
// the invariants the codebase previously policed by convention:
//
//   - loopexclusive: event-loop discipline (no blocking primitives
//     reachable from rpcv:loop-only code; rpcv:loop-owned state only
//     touched on the loop).
//   - protocomplete: every proto message kind wired into the binary
//     encoder, decoder, kind table and gob registry simultaneously.
//   - atomicfield: no plain reads/writes of fields that are elsewhere
//     updated through sync/atomic.
//   - diskerr: no silently discarded errors from node.Disk / store
//     engine calls.
//
// cmd/rpcv-lint is the driver: standalone over package patterns
// (`make lint`), or as a `go vet -vettool`.
package lint

import (
	"go/token"
	"sort"

	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/atomicfield"
	"rpcv/internal/lint/diskerr"
	"rpcv/internal/lint/loopexclusive"
	"rpcv/internal/lint/protocomplete"
)

// Suite returns rpcv's analyzers in deterministic order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		diskerr.Analyzer,
		loopexclusive.Analyzer,
		protocomplete.Analyzer,
	}
}

// Finding is one diagnostic, resolved to a printable position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies each analyzer to each package of the program and returns
// all findings sorted by position.
func Run(prog *analysis.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   prog,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
