// Package rt is a miniature stand-in for rpcv/internal/rt: just enough
// surface (Runtime with Do/DoAsync/Ping/Close/After plus the
// loop-targeted DoOn/DoAsyncOn/PingLoop) for the loopexclusive
// testdata to exercise the analyzer's rt-specific rules.
// The analyzer matches the runtime by package-path tail, so "rt" here
// plays the role of "rpcv/internal/rt" in the real tree.
package rt

import "time"

type Runtime struct {
	mailbox chan func()
}

func New() *Runtime { return &Runtime{mailbox: make(chan func(), 16)} }

func (r *Runtime) Do(fn func()) {
	done := make(chan struct{})
	r.mailbox <- func() { fn(); close(done) }
	<-done
}

func (r *Runtime) DoAsync(fn func()) {
	select {
	case r.mailbox <- fn:
	default:
	}
}

func (r *Runtime) DoOn(loop int, fn func()) {
	done := make(chan struct{})
	r.mailbox <- func() { fn(); close(done) }
	<-done
}

func (r *Runtime) DoAsyncOn(loop int, fn func()) {
	select {
	case r.mailbox <- fn:
	default:
	}
}

func (r *Runtime) Ping(d time.Duration) error { return nil }

func (r *Runtime) PingLoop(loop int, d time.Duration) error { return nil }

func (r *Runtime) Close() {}

func (r *Runtime) After(d time.Duration, fn func()) {}

// SleepyHelper blocks; loop-only code in other packages must not reach
// it. The analyzer reports the cross-package chain at the caller's
// edge call site.
func SleepyHelper() {
	time.Sleep(time.Millisecond)
}
