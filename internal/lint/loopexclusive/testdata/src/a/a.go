// Package a seeds loopexclusive's analysistest suite: every banned
// primitive flagged inside rpcv:loop-only code, every sanctioned idiom
// (go statements, select with default, loop-safe escapes, Do-wrapped
// closures, constructors) proven silent.
package a

import (
	"sync"
	"time"

	"rt"
)

type handler struct {
	mu sync.Mutex
	n  int
}

//rpcv:loop-only
func (h *handler) Receive(ch chan int, done chan struct{}) {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks the event loop`
	ch <- 1                      // want `channel send blocks the event loop`
	<-done                       // want `channel receive blocks the event loop`
	for range ch {               // want `ranging over a channel blocks the event loop`
	}
	select { // want `select without a default case blocks the event loop`
	case v := <-ch:
		_ = v
	}
	h.transitive()
}

// transitive is reached from Receive's walk: violations here are
// flagged without any annotation of its own.
func (h *handler) transitive() {
	var wg sync.WaitGroup
	wg.Wait() // want `sync.WaitGroup.Wait blocks the event loop`
}

//rpcv:loop-only
func selfDeadlock(r *rt.Runtime) {
	r.Do(func() {})               // want `deadlocks`
	r.Ping(time.Second)           // want `deadlocks`
	r.Close()                     // want `deadlocks`
	r.DoAsync(func() {})          // ok: async handoff never waits
	rt.SleepyHelper()             // want `call to rt.SleepyHelper reaches blocking code: time.Sleep blocks the event loop`
	r.After(time.Second, func() { // ok: loop timer registration
	})
}

// crossLoopHandoff is a partitioned handler on one event loop handing
// work to a sister loop. The only sanctioned path is the runtime's
// MPSC handoff ring (DoAsyncOn); blocking on the sibling — DoOn,
// PingLoop, or pushing straight into its mailbox channel — stalls this
// loop behind that one.
//
//rpcv:loop-only
func crossLoopHandoff(r *rt.Runtime, siblingMailbox chan func()) {
	r.DoOn(1, func() {})           // want `stalls this loop behind a sister loop`
	_ = r.PingLoop(1, time.Second) // want `stalls this loop behind a sister loop`
	siblingMailbox <- func() {}    // want `channel send blocks the event loop`
	r.DoAsyncOn(1, func() {})      // ok: ring handoff never waits
}

//rpcv:loop-only
func sanctioned(ch chan int, done chan struct{}) {
	// Non-blocking channel work is the loop's bread and butter.
	select {
	case ch <- 1:
	default:
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
	close(done) // close never blocks
	// Mutexes are allowed: bounded critical sections, not unbounded waits.
	var h handler
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
	// New goroutines leave the loop entirely.
	go func() {
		ch <- 2
		<-done
		time.Sleep(time.Millisecond)
	}()
	// time.AfterFunc callbacks run on the timer goroutine.
	time.AfterFunc(time.Second, func() {
		<-done
	})
	audited(ch)
}

//rpcv:loop-only
func selectBodyStillBlocks(ch, other chan int) {
	select {
	case v := <-ch:
		other <- v // want `channel send blocks the event loop`
	default:
	}
}

// audited is hand-audited: the walk must stop at the annotation.
//
//rpcv:loop-safe
func audited(ch chan int) {
	ch <- 1 // ok: rpcv:loop-safe
}

// ---------------------------------------------------------------------
// Loop-owned state
// ---------------------------------------------------------------------

// State is the event loop's private state.
//
//rpcv:loop-owned
type State struct {
	count int
	rtm   *rt.Runtime
}

// NewState is a constructor: plain field initialization is
// pre-publication and allowed.
func NewState(r *rt.Runtime) *State {
	s := &State{count: 1, rtm: r}
	s.count = 2
	return s
}

// bump is a method of a loop-owned type: implicitly loop-only, so the
// access is fine but blocking primitives are not.
func (s *State) bump() {
	s.count++
}

func (s *State) smuggled() {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks the event loop`
}

func offLoopRead(s *State) int {
	return s.count // want `field count of rpcv:loop-owned State accessed off the event loop`
}

func offLoopWrite(s *State) {
	s.count = 7 // want `field count of rpcv:loop-owned State accessed off the event loop`
}

func marshalled(s *State, r *rt.Runtime) {
	r.Do(func() {
		s.count++ // ok: wrapped in rt.Do
	})
	r.DoAsync(func() {
		s.count-- // ok: wrapped in rt.DoAsync
	})
	r.DoOn(2, func() {
		s.count++ // ok: runs on loop 2's goroutine
	})
	r.DoAsyncOn(2, func() {
		s.count-- // ok: rides the cross-loop ring onto loop 2
	})
}

//rpcv:loop-only
func onLoopTouch(s *State) {
	s.count++ // ok: loop-only function
}
