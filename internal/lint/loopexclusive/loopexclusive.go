// Package loopexclusive enforces rpcv's event-loop discipline.
//
// Every node's protocol handler runs on a single event-loop goroutine
// (internal/rt's mailbox, or the simulator's sequential executor), and
// the codebase-wide contract is twofold:
//
//  1. Code that runs on the loop must never block unboundedly. A
//     handler that parks on a channel, sleeps, waits on a WaitGroup or
//     calls back into (*rt.Runtime).Do deadlocks or stalls every
//     message, timer and heartbeat behind it. (Short mutex critical
//     sections and synchronous Disk writes are deliberately allowed:
//     bounded-time by construction, and pessimistic logging's on-loop
//     disk write is the paper's design, not an accident.)
//  2. State owned by the loop must only be touched from the loop. Any
//     other goroutine must marshal access through rt.Do / rt.DoAsync /
//     Env.After (or their loop-targeted forms DoOn / DoAsyncOn).
//
// With the multi-core runtime (rt.Config.Loops > 1) "the loop" is per
// partition: each event loop owns exactly its partition's handler state
// and store lane, and the discipline applies loop-by-loop. Cross-loop
// traffic has exactly one sanctioned path — the runtime's lock-free
// MPSC handoff ring, reached via (*rt.Runtime).DoAsyncOn or the
// runtime's own routing. Handing work to a sister loop any other way is
// a violation the analyzer flags: a blocking DoOn / PingLoop from loop
// code stalls this loop behind that one (and deadlocks when the target
// is itself), and pushing straight into another loop's mailbox channel
// is an unbounded channel send like any other.
//
// Both halves are annotation-driven:
//
//   - "//rpcv:loop-only" on a function or method declares it runs on
//     the event loop. The analyzer walks its static call graph (across
//     packages when the driver loaded them) and reports any reachable
//     blocking primitive: time.Sleep, WaitGroup/Cond.Wait, channel
//     sends/receives/range, select without default, raw net dials and
//     conn I/O, os/exec waits, net/http round trips, and the
//     self-deadlocking (*rt.Runtime).Do / Ping / Close and the
//     loop-on-loop blocking DoOn / PingLoop.
//   - "//rpcv:loop-owned" on a struct type declares its fields
//     loop-private. Methods of the type are implicitly loop-only, and
//     field accesses elsewhere are only legal inside loop-only
//     functions, inside function literals handed to Do / DoAsync /
//     After, or inside the type's own constructors.
//   - "//rpcv:loop-safe" on a function asserts it was audited by hand
//     (e.g. it only performs bounded non-blocking channel work); the
//     walk stops there without descending.
//
// Function literals are walked inline — a closure built on the loop
// usually runs on the loop — except arguments of `go` statements and
// time.AfterFunc, which are new goroutines by definition.
package loopexclusive

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/astutil"
)

const (
	dirLoopOnly  = "rpcv:loop-only"
	dirLoopSafe  = "rpcv:loop-safe"
	dirLoopOwned = "rpcv:loop-owned"
)

var Analyzer = &analysis.Analyzer{
	Name: "loopexclusive",
	Doc:  "report blocking primitives reachable from rpcv:loop-only code and off-loop touches of rpcv:loop-owned state",
	Run:  run,
}

// root is one entry point known to execute on the event loop.
type root struct {
	pkg  *analysis.Package
	fn   ast.Node // *ast.FuncDecl or *ast.FuncLit
	name string   // description for diagnostics
}

type checker struct {
	pass *analysis.Pass
	// ownedTypes: "pkgpath.TypeName" of every rpcv:loop-owned struct in
	// the loaded program.
	ownedTypes map[string]bool
	// loopSafe: FullNames the walk must not descend into.
	loopSafe map[string]bool
	// loopFuncs: FullNames established to run on the event loop
	// (annotated roots, loop-owned methods and everything reached).
	loopFuncs map[string]bool
	visited   map[string]bool
	reported  map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		ownedTypes: make(map[string]bool),
		loopSafe:   make(map[string]bool),
		loopFuncs:  make(map[string]bool),
		visited:    make(map[string]bool),
		reported:   make(map[token.Pos]bool),
	}

	var roots []root
	for _, pkg := range pass.Program.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts := spec.(*ast.TypeSpec)
						if astutil.HasDirective(d.Doc, dirLoopOwned) || astutil.HasDirective(ts.Doc, dirLoopOwned) {
							c.ownedTypes[pkg.Types.Path()+"."+ts.Name.Name] = true
						}
					}
				case *ast.FuncDecl:
					obj, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					if astutil.HasDirective(d.Doc, dirLoopSafe) {
						c.loopSafe[obj.FullName()] = true
						continue
					}
					if astutil.HasDirective(d.Doc, dirLoopOnly) {
						roots = append(roots, root{pkg: pkg, fn: d, name: obj.FullName()})
					}
				}
			}
		}
	}

	// Methods of loop-owned types are implicitly loop-only.
	for _, pkg := range pass.Program.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Recv == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
				if obj == nil || c.loopSafe[obj.FullName()] || astutil.HasDirective(d.Doc, dirLoopOnly) {
					continue
				}
				if c.ownedTypes[pkg.Types.Path()+"."+astutil.ReceiverTypeName(obj)] {
					roots = append(roots, root{pkg: pkg, fn: d, name: obj.FullName()})
				}
			}
		}
	}

	// Function literals handed to Do/DoAsync/After run on the loop no
	// matter where they are built: they are roots too.
	for _, pkg := range pass.Program.Packages {
		for _, file := range pkg.Files {
			p := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok && marshalsOntoLoop(p.TypesInfo, call, lit) {
						pos := p.Fset.Position(lit.Pos())
						roots = append(roots, root{pkg: p, fn: lit,
							name: fmt.Sprintf("the loop closure at %s:%d", filepath.Base(pos.Filename), pos.Line)})
					}
				}
				return true
			})
		}
	}

	for _, r := range roots {
		c.walkRoot(r)
	}
	c.checkOwnedAccess()
	return nil
}

// edge remembers the last call site in the pass's own package on the
// current walk path, so a violation found in another package can be
// reported where this package handed control away.
type edge struct {
	pos    token.Pos
	callee string
}

// walkRoot walks one loop entry point's transitive static call graph.
func (c *checker) walkRoot(r root) {
	switch fn := r.fn.(type) {
	case *ast.FuncDecl:
		obj, _ := r.pkg.TypesInfo.Defs[fn.Name].(*types.Func)
		if obj == nil {
			return
		}
		c.walkFunc(r.pkg, obj.FullName(), fn.Body, r.name, edge{})
	case *ast.FuncLit:
		c.checkBody(r.pkg, fn.Body, r.name, edge{})
	}
}

func (c *checker) walkFunc(pkg *analysis.Package, fullName string, body *ast.BlockStmt, rootName string, e edge) {
	if c.visited[fullName] {
		return
	}
	c.visited[fullName] = true
	c.loopFuncs[fullName] = true
	if body == nil {
		return
	}
	c.checkBody(pkg, body, rootName, e)
}

// checkBody scans one on-loop body for banned operations and descends
// into static callees whose source the driver loaded.
func (c *checker) checkBody(pkg *analysis.Package, body *ast.BlockStmt, rootName string, e edge) {
	info := pkg.TypesInfo
	var walk func(n ast.Node, stack []ast.Node) bool
	walk = func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine leaves the loop.
			return false
		case *ast.FuncLit:
			if offLoopLiteral(info, n, stack) {
				return false
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				c.report(pkg, n.Pos(), "select without a default case blocks the event loop", rootName, e)
			}
		case *ast.SendStmt:
			if !inNonBlockingSelect(n, stack) {
				c.report(pkg, n.Pos(), "channel send blocks the event loop (no select default)", rootName, e)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inNonBlockingSelect(n, stack) {
				c.report(pkg, n.Pos(), "channel receive blocks the event loop (no select default)", rootName, e)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.report(pkg, n.Pos(), "ranging over a channel blocks the event loop", rootName, e)
				}
			}
		case *ast.CallExpr:
			callee := astutil.Callee(info, n)
			if callee == nil {
				return true
			}
			if why := bannedCall(callee); why != "" {
				c.report(pkg, n.Pos(), why, rootName, e)
				return true
			}
			full := callee.FullName()
			if c.loopSafe[full] || c.visited[full] {
				return true
			}
			if src := c.pass.Program.FuncSource(full); src != nil {
				next := e
				if pkg.Types == c.pass.Pkg {
					next = edge{pos: n.Pos(), callee: full}
				}
				c.walkFunc(src.Pkg, full, src.Decl.Body, rootName, next)
			}
		}
		return true
	}
	astutil.InspectStack(body, walk)
}

// offLoopLiteral reports whether the function literal is handed to a
// context that runs it on another goroutine: a `go` statement (handled
// separately) or time.AfterFunc.
func offLoopLiteral(info *types.Info, lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := astutil.Callee(info, call)
	if callee == nil {
		return false
	}
	for _, arg := range call.Args {
		if arg == lit {
			return callee.Name() == "AfterFunc" && astutil.PkgPathIs(callee.Pkg(), "time")
		}
	}
	return false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// inNonBlockingSelect reports whether n is the communication operation
// of a select case. Comm ops are governed by the select-level check
// (a select without default is reported once, at the select); only
// operations in a case's *body* are reported individually.
func inNonBlockingSelect(n ast.Node, stack []ast.Node) bool {
	child := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.CommClause:
			return anc.Comm == child
		case *ast.ExprStmt, *ast.AssignStmt, *ast.UnaryExpr:
			child = stack[i].(ast.Node)
			continue
		default:
			_ = anc
			return false
		}
	}
	return false
}

// bannedCall classifies callees that block unboundedly (or deadlock)
// when invoked on the event loop. The returned string is the
// diagnostic, or "" when the call is allowed.
func bannedCall(f *types.Func) string {
	pkg, name, recv := f.Pkg(), f.Name(), astutil.ReceiverTypeName(f)
	switch {
	case astutil.PkgPathIs(pkg, "time") && name == "Sleep":
		return "time.Sleep blocks the event loop"
	case astutil.PkgPathIs(pkg, "sync") && name == "Wait" && (recv == "WaitGroup" || recv == "Cond"):
		return "sync." + recv + ".Wait blocks the event loop"
	case astutil.PkgPathIs(pkg, "rt") && recv == "Runtime" && (name == "Do" || name == "Ping" || name == "Close"):
		return "(*rt.Runtime)." + name + " called from the event loop deadlocks (the loop would wait on itself); use DoAsync or restructure"
	case astutil.PkgPathIs(pkg, "rt") && recv == "Runtime" && (name == "DoOn" || name == "PingLoop"):
		return "(*rt.Runtime)." + name + " called from the event loop deadlocks on its own loop and stalls this loop behind a sister loop otherwise; hand off through the cross-loop ring with DoAsyncOn"
	case astutil.PkgPathIs(pkg, "net") && (strings.HasPrefix(name, "Dial") || name == "Read" || name == "Write" || name == "Accept"):
		return "net." + name + " performs raw network I/O on the event loop"
	case astutil.PkgPathIs(pkg, "os/exec") && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "os/exec." + name + " waits for a subprocess on the event loop"
	case astutil.PkgPathIs(pkg, "net/http") && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head" || name == "Do"):
		return "net/http round trip on the event loop"
	}
	return ""
}

func (c *checker) report(pkg *analysis.Package, pos token.Pos, msg, rootName string, e edge) {
	// Violations inside this package anchor at the violating
	// statement; violations the walk found in another package anchor
	// at the call site where this package handed control away.
	if pkg.Types != c.pass.Pkg {
		if !e.pos.IsValid() {
			return // entirely foreign chain: that package's pass owns it
		}
		pos = e.pos
		msg = fmt.Sprintf("call to %s reaches blocking code: %s", e.callee, msg)
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s (in code reachable from %s %s)", msg, dirLoopOnly, rootName)
}

// ---------------------------------------------------------------------
// Loop-owned state
// ---------------------------------------------------------------------

// checkOwnedAccess flags field accesses of loop-owned structs outside
// the loop: not in a loop-only function, not inside a literal passed to
// Do/DoAsync/After, and not in a constructor.
func (c *checker) checkOwnedAccess() {
	if len(c.ownedTypes) == 0 {
		return
	}
	pass := c.pass
	for _, file := range pass.Files {
		astutil.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			owner := namedOf(selection.Recv())
			if owner == nil || !c.ownedTypes[typeKey(owner)] {
				return true
			}
			if c.allowedContext(owner, stack) {
				return true
			}
			c.pass.Reportf(sel.Sel.Pos(),
				"field %s of %s %s accessed off the event loop; wrap the access in rt.Do/DoAsync or mark the function %s",
				sel.Sel.Name, dirLoopOwned, owner.Obj().Name(), dirLoopOnly)
			return true
		})
	}
}

func (c *checker) allowedContext(owner *types.Named, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.CompositeLit:
			// Constructing a value (field keys / initial values) is
			// pre-publication and safe.
			if namedOf(c.pass.TypesInfo.TypeOf(n)) == owner {
				return true
			}
		case *ast.FuncLit:
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && marshalsOntoLoop(c.pass.TypesInfo, call, n) {
					return true
				}
			}
		case *ast.FuncDecl:
			obj, _ := c.pass.TypesInfo.Defs[n.Name].(*types.Func)
			if obj == nil {
				return false
			}
			if c.loopFuncs[obj.FullName()] {
				return true
			}
			return isConstructor(obj, owner)
		}
	}
	return false
}

// marshalsOntoLoop reports whether call runs the literal argument on
// the event loop: a method named Do / DoAsync (rt.Runtime and the
// gridrpc facades) or their loop-targeted forms DoOn / DoAsyncOn (the
// closure runs on the named loop — still an event loop, so still a
// loop context), or After on an Env/Runtime (loop timers).
func marshalsOntoLoop(info *types.Info, call *ast.CallExpr, lit *ast.FuncLit) bool {
	callee := astutil.Callee(info, call)
	if callee == nil {
		return false
	}
	isArg := false
	for _, arg := range call.Args {
		if arg == lit {
			isArg = true
		}
	}
	if !isArg {
		return false
	}
	switch callee.Name() {
	case "Do", "DoAsync", "DoOn", "DoAsyncOn":
		return true
	case "After":
		recv := astutil.ReceiverTypeName(callee)
		return recv == "Env" || recv == "Runtime"
	}
	return false
}

// isConstructor reports whether f is a package-level function of the
// owner's package returning the owner type (by value or pointer).
func isConstructor(f *types.Func, owner *types.Named) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || f.Pkg() != owner.Obj().Pkg() {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if namedOf(results.At(i).Type()) == owner {
			return true
		}
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
