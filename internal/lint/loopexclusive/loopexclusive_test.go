package loopexclusive_test

import (
	"testing"

	"rpcv/internal/lint/analysistest"
	"rpcv/internal/lint/loopexclusive"
)

func TestLoopExclusive(t *testing.T) {
	analysistest.Run(t, "testdata", loopexclusive.Analyzer, "a")
}
