// Package loader turns Go packages into the typed syntax trees the
// lint analyzers consume. It has two front doors matching the two ways
// cmd/rpcv-lint is invoked:
//
//   - Load: standalone mode. Shells out to `go list -deps -export`
//     over package patterns, so the go command resolves the build
//     (module mode, build tags, compiled export data in the build
//     cache) and this process only parses and type-checks the target
//     packages themselves.
//   - LoadVetConfig: `go vet -vettool` mode. The go command hands the
//     tool a JSON config naming one package's files and an import map
//     to pre-built export data; no subprocess is needed.
//
// Either way dependencies are imported from compiler export data via
// the standard library's gc importer — never type-checked from source
// — which keeps a whole-tree lint run to well under a second of
// type-checking.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"rpcv/internal/lint/analysis"
)

// unit is one package to be type-checked from source: the common
// denominator of a `go list` record and a vet.cfg.
type unit struct {
	importPath string
	dir        string
	goFiles    []string // absolute
	// importMap maps source-level import paths to package paths
	// (identity except under vendoring, which this module never uses).
	importMap map[string]string
	// packageFile maps package paths to export-data files.
	packageFile map[string]string
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module root) and returns the type-checked
// program of every matched package.
func Load(dir string, patterns []string) (*analysis.Program, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, t := range targets {
		if t.Name == "main" && strings.HasSuffix(t.ImportPath, ".test") {
			continue // synthesized test binaries
		}
		u := &unit{
			importPath:  t.ImportPath,
			dir:         t.Dir,
			importMap:   nil, // identity
			packageFile: exports,
		}
		for _, g := range t.GoFiles {
			u.goFiles = append(u.goFiles, filepath.Join(t.Dir, g))
		}
		pkg, err := check(fset, u)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.NewProgram(pkgs), nil
}

// VetConfig mirrors the JSON the go command writes for a vet tool; see
// buildVetConfig in cmd/go/internal/work/exec.go. Fields the lint
// analyzers do not need are accepted and ignored.
type VetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a vet.cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("%s: parsing vet config: %v", path, err)
	}
	return &cfg, nil
}

// LoadVetConfig type-checks the single package a vet.cfg describes.
func LoadVetConfig(cfg *VetConfig) (*analysis.Program, error) {
	fset := token.NewFileSet()
	pkg, err := check(fset, &unit{
		importPath:  cfg.ImportPath,
		dir:         cfg.Dir,
		goFiles:     cfg.GoFiles,
		importMap:   cfg.ImportMap,
		packageFile: cfg.PackageFile,
	})
	if err != nil {
		return nil, err
	}
	return analysis.NewProgram([]*analysis.Package{pkg}), nil
}

// check parses and type-checks one unit against export data.
func check(fset *token.FileSet, u *unit) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range u.goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if u.importMap != nil {
			if mapped, ok := u.importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := u.packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(u.importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", u.importPath, err)
	}
	return &analysis.Package{
		PkgPath:   u.importPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
