// Package analysis is a self-contained reimplementation of the slice
// of golang.org/x/tools/go/analysis that rpcv's analyzers need. The
// build environment is hermetic (no module proxy), so the canonical
// framework cannot be vendored; this package keeps the same shape —
// Analyzer, Pass, Diagnostic — so the analyzers in internal/lint/...
// port to the upstream API by changing one import path.
//
// Deviations from upstream, both deliberate:
//
//   - There is no Facts mechanism. Cross-package analysis is served by
//     Pass.Program instead: the standalone driver (cmd/rpcv-lint run
//     over package patterns) loads every requested package up front and
//     exposes their typed syntax, so an analyzer can follow a call out
//     of the current package and keep walking. Under `go vet -vettool`
//     the driver runs one package at a time and Program holds only that
//     package; analyzers degrade to package-local checking there.
//   - Analyzers run independently; there is no Requires DAG and no
//     shared ResultOf. None of rpcv's analyzers need either.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// convention it is a single lowercase word.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// Program exposes every package the driver loaded (always
	// including this pass's own). Whole-program analyzers use it to
	// chase calls across package boundaries.
	Program *Program
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Program is the set of packages a driver loaded for one run. Packages
// are type-checked independently against export data, so *types.Object
// identities do not carry across members; cross-package lookups key on
// the stable types.Func.FullName string instead.
type Program struct {
	Packages []*Package

	funcIndex map[string]*FuncSource
}

// FuncSource locates one function declaration's typed syntax.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// NewProgram assembles a Program and builds its function index.
func NewProgram(pkgs []*Package) *Program {
	pr := &Program{Packages: pkgs, funcIndex: make(map[string]*FuncSource)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pr.funcIndex[obj.FullName()] = &FuncSource{Pkg: pkg, Decl: fd}
			}
		}
	}
	return pr
}

// FuncSource returns the declaration of the named function, or nil if
// it was not among the loaded packages (or has no body, e.g. assembly
// stubs). The key is types.Func.FullName(): "path/pkg.Func",
// "(path/pkg.T).Method" or "(*path/pkg.T).Method".
func (pr *Program) FuncSource(fullName string) *FuncSource {
	return pr.funcIndex[fullName]
}
