// Package astutil holds the small typed-AST helpers shared by the
// rpcv lint analyzers: directive-comment detection, static callee
// resolution and an inspector variant that exposes the ancestor stack.
package astutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// HasDirective reports whether the comment group contains the named
// rpcv directive. Both the gofmt-preserving form ("//rpcv:loop-only")
// and the spaced form ("// rpcv:loop-only") are accepted, optionally
// followed by explanatory text.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// Callee resolves the *types.Func a call statically invokes: a
// package-level function, a concrete method, or an interface method.
// It returns nil for calls through function-typed values, conversions
// and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgPathIs reports whether pkg's import path is name or ends in
// "/name". Matching by tail lets testdata packages stand in for real
// module packages ("rt" for "rpcv/internal/rt").
func PkgPathIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}

// ReceiverTypeName returns the name of the method's receiver base type
// ("" for package-level functions).
func ReceiverTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// InspectStack walks root like ast.Inspect while maintaining the
// ancestor stack (outermost first, not including n itself). Returning
// false from f prunes the subtree.
func InspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
