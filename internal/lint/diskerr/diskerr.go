// Package diskerr reports discarded errors from durable-storage calls.
//
// rpcv's correctness story leans on node.Disk's contract: Write and
// Delete are durable when they return, and their errors are the only
// signal that durability failed. PR 4 hand-fixed a round of silently
// dropped Disk.Delete errors; this analyzer makes the class
// unrepresentable. A call is flagged when its result tuple contains an
// error, the callee belongs to the storage surface, and the statement
// discards the results — a bare expression statement, or a go/defer.
//
// The storage surface is recognized structurally, not by import path:
// any method on a receiver whose method set contains the Disk quartet
// (Write, Read, Delete, Keys) — which covers node.Disk, node.BatchDisk,
// store.Store, every engine, and test fakes — plus any function
// returning such a type alongside an error (store.Open, OpenWAL, ...).
//
// An explicit blank assignment (`_ = d.Write(...)`) is the documented
// opt-out: it states the discard is deliberate, survives review, and
// should carry a comment saying why.
package diskerr

import (
	"go/ast"
	"go/types"

	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "diskerr",
	Doc:  "report discarded errors from node.Disk / store engine calls",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			callee := astutil.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			if !storageCallee(callee, sig) {
				return true
			}
			what := callee.Name()
			if recv := astutil.ReceiverTypeName(callee); recv != "" {
				what = recv + "." + what
			}
			pass.Reportf(call.Pos(),
				"error returned by %s is discarded: a failed durable operation must be handled (or explicitly ignored with `_ =` and a reason)",
				what)
			return true
		})
	}
	return nil
}

func returnsError(sig *types.Signature) bool {
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// storageCallee reports whether the call belongs to the durable-store
// surface: a method on a Disk-shaped receiver, or a function whose
// results include a Disk-shaped type (an engine constructor).
func storageCallee(f *types.Func, sig *types.Signature) bool {
	if recv := sig.Recv(); recv != nil {
		return diskShaped(recv.Type())
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if diskShaped(results.At(i).Type()) {
			return true
		}
	}
	return false
}

// diskShaped reports whether t's method set carries the node.Disk
// quartet: Write, Read, Delete and Keys. Structural matching keeps the
// analyzer independent of import paths, so testdata fakes and future
// engines are covered for free.
func diskShaped(t types.Type) bool {
	for _, name := range [...]string{"Write", "Read", "Delete", "Keys"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}
