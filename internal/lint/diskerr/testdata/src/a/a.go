// Package a seeds diskerr's analysistest suite: discarded durable-store
// errors flagged, handled and explicitly-ignored ones silent, and
// non-storage callees never matched.
package a

type fakeDisk struct{}

func (fakeDisk) Write(key string, val []byte) error { return nil }
func (fakeDisk) Read(key string) ([]byte, error)    { return nil, nil }
func (fakeDisk) Delete(key string) error            { return nil }
func (fakeDisk) Keys() ([]string, error)            { return nil, nil }

// open mimics store.Open: a constructor whose results include a
// disk-shaped type alongside an error.
func open(name string) (fakeDisk, error) { return fakeDisk{}, nil }

// notStorage returns an error but has no disk-shaped receiver or
// result: never diskerr's business.
func notStorage() error { return nil }

func dropped(d fakeDisk) {
	d.Write("k", nil)    // want `error returned by fakeDisk.Write is discarded`
	d.Delete("k")        // want `error returned by fakeDisk.Delete is discarded`
	open("wal")          // want `error returned by open is discarded`
	go d.Write("k", nil) // want `error returned by fakeDisk.Write is discarded`
	defer d.Delete("k")  // want `error returned by fakeDisk.Delete is discarded`
	notStorage()         // ok: not a storage callee
}

func handled(d fakeDisk) error {
	if err := d.Write("k", nil); err != nil {
		return err
	}
	// The documented opt-out: an explicit blank assignment.
	_ = d.Delete("k") // best-effort cleanup; the entry is already orphaned
	v, err := d.Read("k")
	_ = v
	return err
}
