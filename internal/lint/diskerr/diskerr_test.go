package diskerr_test

import (
	"testing"

	"rpcv/internal/lint/analysistest"
	"rpcv/internal/lint/diskerr"
)

func TestDiskErr(t *testing.T) {
	analysistest.Run(t, "testdata", diskerr.Analyzer, "a")
}
