// Package proto is a miniature of rpcv/internal/proto with every
// message kind fully wired: kind constant, kindOf case, append case,
// read case and gob registration. protocomplete must stay silent here.
package proto

import (
	"encoding/gob"
	"fmt"
)

type Message interface {
	Kind() string
}

const (
	kindInvalid = iota
	kindPing
	kindPong
)

type Ping struct{ Seq uint64 }

func (*Ping) Kind() string { return "ping" }

type Pong struct{ Seq uint64 }

func (*Pong) Kind() string { return "pong" }

func kindOf(m Message) byte {
	switch m.(type) {
	case *Ping:
		return kindPing
	case *Pong:
		return kindPong
	default:
		return kindInvalid
	}
}

func appendMessageBody(buf []byte, m Message) []byte {
	switch v := m.(type) {
	case *Ping:
		return append(buf, byte(v.Seq))
	case *Pong:
		return append(buf, byte(v.Seq))
	}
	return buf
}

func readMessageBody(kind byte, buf []byte) (Message, error) {
	switch kind {
	case kindPing:
		return &Ping{Seq: uint64(buf[0])}, nil
	case kindPong:
		return &Pong{Seq: uint64(buf[0])}, nil
	}
	return nil, fmt.Errorf("unknown kind %d", kind)
}

func init() {
	gob.Register(&Ping{})
	gob.Register(&Pong{})
}
