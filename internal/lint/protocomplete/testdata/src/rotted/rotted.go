// Package rotted is protocomplete's rot regression: Steal was added to
// the encoder but never grew a readMessageBody decode arm or a gob
// registration, and Orphan was declared with no wiring at all — the
// exact drift the analyzer exists to catch.
package rotted

import (
	"encoding/gob"
	"fmt"
)

type Message interface {
	Kind() string
}

const (
	kindInvalid = iota
	kindPing
	kindSteal
)

type Ping struct{ Seq uint64 }

func (*Ping) Kind() string { return "ping" }

// Steal made it into kindOf and the encoder, but whoever added it
// forgot the decode arm and the gob registry.
type Steal struct{ Victim string } // want `message Steal missing from readMessageBody` `message Steal is not gob.Register'ed`

func (*Steal) Kind() string { return "steal" }

// Orphan implements Message but was never wired anywhere.
type Orphan struct{} // want `message Orphan has no wire kind constant kindOrphan` `message Orphan missing from the kindOf type switch` `message Orphan missing from appendMessageBody` `message Orphan missing from readMessageBody` `message Orphan is not gob.Register'ed`

func (*Orphan) Kind() string { return "orphan" }

func kindOf(m Message) byte {
	switch m.(type) {
	case *Ping:
		return kindPing
	case *Steal:
		return kindSteal
	default:
		return kindInvalid
	}
}

func appendMessageBody(buf []byte, m Message) []byte {
	switch v := m.(type) {
	case *Ping:
		return append(buf, byte(v.Seq))
	case *Steal:
		return append(buf, v.Victim...)
	}
	return buf
}

func readMessageBody(kind byte, buf []byte) (Message, error) {
	switch kind {
	case kindPing:
		return &Ping{Seq: uint64(buf[0])}, nil
	}
	return nil, fmt.Errorf("unknown kind %d", kind)
}

func init() {
	gob.Register(&Ping{})
}
