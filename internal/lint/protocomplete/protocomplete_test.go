package protocomplete_test

import (
	"testing"

	"rpcv/internal/lint/analysistest"
	"rpcv/internal/lint/protocomplete"
)

// TestComplete proves a fully-wired codec produces no findings.
func TestComplete(t *testing.T) {
	analysistest.Run(t, "testdata", protocomplete.Analyzer, "proto")
}

// TestRotted is the rot regression: a message kind missing its decode
// arm (and worse) must be reported.
func TestRotted(t *testing.T) {
	analysistest.Run(t, "testdata", protocomplete.Analyzer, "rotted")
}
