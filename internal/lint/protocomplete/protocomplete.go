// Package protocomplete cross-checks the wire-message registry of a
// codec package like internal/proto. Adding a message kind to rpcv
// requires wiring it in five places simultaneously:
//
//  1. a wire kind-byte constant named kind<Type> (binary.go),
//  2. a case in the kindOf type switch (encode dispatch),
//  3. a case in the appendMessageBody type switch (the encoder),
//  4. a case in the readMessageBody kind switch (the decoder),
//  5. a gob.Register call (the legacy codec's registry).
//
// Missing any one of them compiles fine and fails at runtime — as a
// decode error on a live connection, or a silent legacy-interop hole.
// This analyzer turns each missing arm into a lint failure at the
// message type's declaration.
//
// The analyzer engages on any package that declares both an interface
// named Message (with a Kind method) and a function named kindOf; all
// other packages are ignored. Every named type in the package whose
// pointer implements Message is treated as a registered message kind.
//
// WireSize needs no arm here: it is a method of the Message interface
// itself, so the compiler already rejects a message without one, and
// proto's TestWireSizeMatchesCodec pins the hint's accuracy against
// the actual marshalled length.
package protocomplete

import (
	"go/ast"
	"go/types"

	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "protocomplete",
	Doc:  "check that every proto message kind is wired into kindOf, the binary encoder and decoder, and the gob registry",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scope := pass.Pkg.Scope()

	msgIface := messageInterface(scope)
	if msgIface == nil {
		return nil
	}
	var kindOfDecl, appendDecl, readDecl *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			switch fd.Name.Name {
			case "kindOf":
				kindOfDecl = fd
			case "appendMessageBody":
				appendDecl = fd
			case "readMessageBody":
				readDecl = fd
			}
		}
	}
	if kindOfDecl == nil {
		return nil // not a codec package
	}

	kindOfCases := typeSwitchCases(pass, kindOfDecl)
	appendCases := typeSwitchCases(pass, appendDecl)
	readCases := kindSwitchCases(pass, readDecl)
	gobRegistered := gobRegistrations(pass)

	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(types.NewPointer(named), msgIface) {
			continue
		}
		pos := tn.Pos()
		kindConst := "kind" + name
		if scope.Lookup(kindConst) == nil {
			pass.Reportf(pos, "message %s has no wire kind constant %s; add it to the kind byte list (append only, never renumber)", name, kindConst)
		}
		if !kindOfCases[tn] {
			pass.Reportf(pos, "message %s missing from the kindOf type switch: it will encode as kindInvalid and panic at send", name)
		}
		if appendDecl != nil && !appendCases[tn] {
			pass.Reportf(pos, "message %s missing from appendMessageBody: the binary encoder cannot marshal it", name)
		}
		if readDecl != nil && !readCases[kindConst] {
			pass.Reportf(pos, "message %s missing from readMessageBody: peers decoding %s will fail with a corrupt-frame error", name, kindConst)
		}
		if !gobRegistered[tn] {
			pass.Reportf(pos, "message %s is not gob.Register'ed: legacy-wire peers cannot decode it", name)
		}
	}
	return nil
}

// messageInterface finds the package's Message interface, requiring a
// Kind() method so an unrelated type named Message cannot engage the
// analyzer.
func messageInterface(scope *types.Scope) *types.Interface {
	tn, ok := scope.Lookup("Message").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Kind" {
			return iface
		}
	}
	return nil
}

// typeSwitchCases collects the named types appearing as *T cases in
// the first type switch of fn's body.
func typeSwitchCases(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.TypeName]bool {
	cases := make(map[*types.TypeName]bool)
	if fn == nil || fn.Body == nil {
		return cases
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, clause := range ts.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, expr := range cc.List {
				t := pass.TypesInfo.TypeOf(expr)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					cases[named.Obj()] = true
				}
			}
		}
		return false
	})
	return cases
}

// kindSwitchCases collects the names of kind constants appearing as
// switch cases anywhere in fn's body.
func kindSwitchCases(pass *analysis.Pass, fn *ast.FuncDecl) map[string]bool {
	cases := make(map[string]bool)
	if fn == nil || fn.Body == nil {
		return cases
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
				if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
					cases[c.Name()] = true
				}
			}
		}
		return true
	})
	return cases
}

// gobRegistrations collects the named types whose pointers are passed
// to encoding/gob.Register anywhere in the package.
func gobRegistrations(pass *analysis.Pass) map[*types.TypeName]bool {
	regs := make(map[*types.TypeName]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := astutil.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "Register" || !astutil.PkgPathIs(callee.Pkg(), "encoding/gob") {
				return true
			}
			for _, arg := range call.Args {
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					regs[named.Obj()] = true
				}
			}
			return true
		})
	}
	return regs
}
