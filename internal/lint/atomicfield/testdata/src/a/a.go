// Package a seeds atomicfield's analysistest suite: mixed atomic/plain
// access flagged, consistently-atomic and consistently-plain code
// silent.
package a

import "sync/atomic"

type counters struct {
	sent     uint64 // mixed: atomic in record, plain in leak
	recv     uint64 // consistent: atomic everywhere
	plain    int    // never atomic; free to use plainly
	typedOps atomic.Uint64
}

var dropped uint64 // package-level, atomically owned

func record(c *counters) {
	atomic.AddUint64(&c.sent, 1)
	atomic.AddUint64(&c.recv, 1)
	atomic.AddUint64(&dropped, 1)
}

func leak(c *counters) uint64 {
	c.sent++         // want `plain access to field sent`
	total := c.sent  // want `plain access to field sent`
	total += dropped // want `plain access to variable dropped`
	c.plain++        // ok: never touched atomically
	return total + atomic.LoadUint64(&c.recv)
}

func fine(c *counters) uint64 {
	c.typedOps.Add(1) // typed atomics are immune by construction
	return atomic.LoadUint64(&c.sent) + c.typedOps.Load()
}

// Composite-literal initialization is pre-publication and exempt.
func fresh() *counters {
	return &counters{sent: 0, recv: 0}
}

// An address passed to a typed wrapper's method is a stored value, not
// an atomic location: head.Store(&q.stub) does not make stub atomically
// owned (the MPSC ring's sentinel-node pattern).
type ring struct {
	head atomic.Pointer[node]
	stub node
}

type node struct{ next *node }

func (q *ring) seed() {
	q.head.Store(&q.stub)
	q.stub.next = nil // ok: stub itself is consumer-owned, not atomic
	_ = &q.stub       // ok
}
