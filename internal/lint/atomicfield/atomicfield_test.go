package atomicfield_test

import (
	"testing"

	"rpcv/internal/lint/analysistest"
	"rpcv/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
