// Package atomicfield reports mixed atomic/plain access to the same
// variable — the data-race class the race detector only catches when a
// test happens to exercise both sides concurrently.
//
// Within a package, any struct field or package-level variable whose
// address is ever passed to a sync/atomic function (atomic.AddUint64,
// atomic.LoadInt64, ...) is considered atomically owned: every other
// read or write of it must also go through sync/atomic. A plain
// `s.count++` next to an `atomic.AddUint64(&s.count, 1)` is exactly
// the blind spot on untested paths — the loads compile to the same
// instructions on amd64, the race is real on every architecture, and
// nothing fails until it does.
//
// Initialization is exempt where it is unambiguous: composite-literal
// field values and the zero value cost nothing. Everything else is
// reported; the fix is either to use the atomic accessors or, better,
// to migrate the field to the typed sync/atomic wrappers
// (atomic.Uint64 and friends), whose method-only API makes this
// analyzer's whole class unrepresentable.
//
// Analysis is package-local: an exported field accessed atomically
// here and plainly in another package is caught when that package's
// own pass sees an atomic use, which in practice the defining package
// always supplies.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rpcv/internal/lint/analysis"
	"rpcv/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "report plain reads/writes of fields and variables that are elsewhere accessed through sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Phase 1: collect atomically-owned objects and the positions of
	// their sanctioned (address-taken-for-atomic) uses.
	owned := make(map[types.Object]token.Pos) // object -> first atomic use
	sanctioned := make(map[token.Pos]bool)    // ident positions inside atomic args
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := astutil.Callee(pass.TypesInfo, call)
			if callee == nil || !astutil.PkgPathIs(callee.Pkg(), "sync/atomic") {
				return true
			}
			// Only the package-level functions take the atomic location
			// as an argument. Methods of the typed wrappers
			// (atomic.Pointer[T].Store(&x), atomic.Value.Store(&x), ...)
			// receive &x as a stored VALUE — the atomic location is the
			// receiver — so their arguments claim no ownership of x.
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				obj, identPos := addressedVar(pass.TypesInfo, unary.X)
				if obj == nil {
					continue
				}
				if _, seen := owned[obj]; !seen {
					owned[obj] = call.Pos()
				}
				sanctioned[identPos] = true
			}
			return true
		})
	}
	if len(owned) == 0 {
		return nil
	}

	// Phase 2: every other use of an owned object is a violation,
	// except composite-literal initialization.
	for _, file := range pass.Files {
		astutil.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			firstAtomic, isOwned := owned[obj]
			if !isOwned || sanctioned[id.Pos()] {
				return true
			}
			if inCompositeLitKey(id, stack) {
				return true
			}
			kind := "variable"
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				kind = "field"
			}
			pass.Reportf(id.Pos(),
				"plain access to %s %s, which is updated with sync/atomic (%s); use the atomic accessors or an atomic.%s-style typed field",
				kind, id.Name, pass.Fset.Position(firstAtomic), suggestType(obj))
			return true
		})
	}
	return nil
}

// addressedVar resolves &X's operand to a struct field or non-local
// variable and returns the identifier position of the use.
func addressedVar(info *types.Info, expr ast.Expr) (types.Object, token.Pos) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), x.Sel.Pos()
		}
		// Package-qualified global: pkg.Var.
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok {
			return obj, x.Sel.Pos()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok && !isLocal(obj) {
			return obj, x.Pos()
		}
	}
	return nil, token.NoPos
}

// isLocal reports whether v is function-local (owned by one frame;
// mixing access modes on those is still wrong but is the province of
// the race detector, not this cross-path check).
func isLocal(v *types.Var) bool {
	return !v.IsField() && v.Parent() != nil && v.Parent() != v.Pkg().Scope()
}

// inCompositeLitKey reports whether id is the key of a struct
// composite literal entry (S{count: 0}), which is initialization, not
// shared access.
func inCompositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		kv, ok := stack[i].(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		return kv.Key == id && i >= 1 && isCompositeLit(stack[i-1])
	}
	return false
}

func isCompositeLit(n ast.Node) bool {
	_, ok := n.(*ast.CompositeLit)
	return ok
}

// suggestType names the typed sync/atomic wrapper matching the
// object's type, defaulting to Uint64.
func suggestType(obj types.Object) string {
	if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
		name := basic.Name()
		if len(name) > 0 {
			return strings.ToUpper(name[:1]) + name[1:]
		}
	}
	return "Uint64"
}
