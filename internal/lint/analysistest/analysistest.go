// Package analysistest runs a lint analyzer over a testdata source
// tree and checks its diagnostics against expectations written in the
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	ch <- v // want `channel send blocks`
//
// A "// want" comment holds one or more quoted regular expressions
// (double- or back-quoted); each must be matched, in order, by a
// diagnostic reported on that line. Diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test.
//
// Layout follows the upstream convention: Run(t, dir, analyzer, "a")
// analyzes the package in dir/src/a. Imports of sibling packages
// (dir/src/rt, ...) are type-checked from source, so testdata can
// model cross-package scenarios like a loop-only handler calling a
// blocking helper in a stand-in rt package; imports of standard
// library packages are resolved from the toolchain's export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rpcv/internal/lint/analysis"
)

// Run analyzes dir/src/pkgname with a and checks // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	prog, target, err := load(dir, pkgname)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgname, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      target.Fset,
		Files:     target.Files,
		Pkg:       target.Types,
		TypesInfo: target.TypesInfo,
		Program:   prog,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, target)
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := target.Fset.Position(d.Pos)
		key := lineKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					key := lineKey{filepath.Base(pos.Filename), pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// ---------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------

// load type-checks dir/src/<pkgname> and, recursively, every sibling
// testdata package it imports.
func load(dir, pkgname string) (*analysis.Program, *analysis.Package, error) {
	ld := &tdLoader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*analysis.Package),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	target, err := ld.importPkg(pkgname)
	if err != nil {
		return nil, nil, err
	}
	var all []*analysis.Package
	for _, p := range ld.pkgs {
		all = append(all, p)
	}
	return analysis.NewProgram(all), target, nil
}

type tdLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  types.Importer
}

// Import implements types.Importer over testdata siblings + stdlib.
func (ld *tdLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, path); isDir(dir) {
		pkg, err := ld.importPkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *tdLoader) importPkg(path string) (*analysis.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	srcDir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", srcDir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &analysis.Package{
		PkgPath:   path,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
