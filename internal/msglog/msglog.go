// Package msglog implements RPC-V's sender-based message logging.
//
// Every component locally logs every sent message; on each
// communication, components synchronize their local state from these
// logs (paper §4.1, "Preventive Actions"). The log is the only recovery
// mechanism in the system — there is no reliable storage and no
// coordinated checkpointing.
//
// Three strategies are compared in the paper (figure 4):
//
//   - Optimistic: logging runs asynchronously, in parallel with the
//     communication, at low priority. Negligible overhead, but a crash
//     may occur before the logging operation completes, losing the
//     entry.
//   - Blocking pessimistic: the beginning of the communication is
//     blocked until logging completes. The entry is always durable
//     before the message is on the wire (~+30 % submission overhead on
//     the confined platform, dominated by disk access).
//   - Non-blocking pessimistic: the communication starts immediately,
//     but its *end* (the point at which the operation is considered
//     complete and the application may proceed) is blocked until the
//     logging operation completes. Small, variable overhead due to disk
//     cache management.
//
// The Log type is runtime-agnostic: it sequences disk writes and sends
// through the node.Env abstraction, so the same code drives both the
// simulator (where the disk model charges virtual latency) and the real
// runtime.
//
// Durability timing has two sources. When the node's store implements
// node.BatchDisk (the real runtime over internal/store), every
// strategy routes its durability wait through the store's group
// commit: the entry is staged with WriteAsync and the strategy's
// completion point — send start for blocking pessimistic, operation
// end for non-blocking — fires when the batch fsync covering it
// returns. Concurrent loggers thereby share fsyncs, which is what
// makes blocking-pessimistic logging nearly as cheap as optimistic
// without weakening the guarantee. Otherwise (the simulator) the
// configured DiskModel charges virtual latency, serialized through a
// disk-arm resource — or, with Config.Batched, through a group-commit
// resource that models the same amortization on the virtual clock.
package msglog

import (
	"fmt"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// Strategy selects the logging protocol.
type Strategy uint8

const (
	// Optimistic logs asynchronously; a crash can lose recent entries.
	Optimistic Strategy = iota
	// BlockingPessimistic makes the entry durable before sending.
	BlockingPessimistic
	// NonBlockingPessimistic sends immediately but withholds completion
	// until the entry is durable.
	NonBlockingPessimistic
)

// String returns the strategy name used in figures and flags.
func (s Strategy) String() string {
	switch s {
	case Optimistic:
		return "optimistic"
	case BlockingPessimistic:
		return "blocking-pessimistic"
	case NonBlockingPessimistic:
		return "non-blocking-pessimistic"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy converts a flag value to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "optimistic", "opt":
		return Optimistic, nil
	case "blocking-pessimistic", "blocking":
		return BlockingPessimistic, nil
	case "non-blocking-pessimistic", "non-blocking", "nonblocking":
		return NonBlockingPessimistic, nil
	}
	return 0, fmt.Errorf("msglog: unknown strategy %q", s)
}

// DiskModel computes the latency of a durable write of size bytes. The
// confined platform's IDE disk is modelled as a seek/rotational floor
// plus a streaming rate; tests can substitute constants.
type DiskModel func(size int) time.Duration

// IDEDisk returns the disk model calibrated to the paper's platform
// (IDE disk on an Athlon XP node): ~6 ms access floor, ~25 MB/s
// sequential writes.
func IDEDisk() DiskModel {
	return func(size int) time.Duration {
		return 6*time.Millisecond + time.Duration(float64(size)/25e6*float64(time.Second))
	}
}

// InstantDisk returns a zero-latency model (unit tests).
func InstantDisk() DiskModel { return func(int) time.Duration { return 0 } }

// Entry is one logged outgoing message.
type Entry struct {
	Key  string // unique key within the log, also the disk key suffix
	Data []byte // serialized message payload to resend on synchronization
}

// Log is a sender-based message log bound to one node environment.
//
// LogAndSend is the single operation: it applies the configured
// strategy to (durably log entry, send msg to dst) and calls done (if
// non-nil) at the moment the operation is *complete* from the
// application's point of view — which is the quantity figure 4
// measures. For Optimistic, completion is at send; for
// BlockingPessimistic, after the write, before the send starts; for
// NonBlockingPessimistic, when the write finishes (the send having
// started immediately).
type Log struct {
	env      node.Env
	prefix   string
	strategy Strategy
	disk     DiskModel

	// diskArm serializes log writes: concurrent writes queue behind
	// one another, as on a real disk. With Config.Batched, batchArm
	// replaces it, modelling a group-commit device instead.
	diskArm  node.SerialResource
	batchArm *node.BatchResource

	// pending tracks outstanding optimistic flush timers so Close can
	// cancel them.
	pending []node.Timer
}

// Config parameterizes a Log.
type Config struct {
	// Prefix namespaces this log's keys on the node disk.
	Prefix string
	// Strategy is the logging protocol; default Optimistic.
	Strategy Strategy
	// Disk is the write latency model; nil means IDEDisk().
	Disk DiskModel
	// Batched models a group-commit store on the virtual clock:
	// concurrent writes share the disk's access floor (node.
	// BatchResource) instead of queueing serially behind it. It is the
	// simulator-side counterpart of internal/store's wal engine and is
	// ignored when the node's store implements node.BatchDisk (real
	// group commit owns the timing there).
	Batched bool
}

// New creates a log on env's disk.
func New(env node.Env, cfg Config) *Log {
	if cfg.Disk == nil {
		cfg.Disk = IDEDisk()
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "msglog/"
	}
	l := &Log{env: env, prefix: cfg.Prefix, strategy: cfg.Strategy, disk: cfg.Disk}
	if cfg.Batched {
		// The access floor is the zero-byte write cost; BatchResource
		// charges it once per batch instead of once per write.
		l.batchArm = &node.BatchResource{Floor: cfg.Disk(0)}
	}
	return l
}

// Strategy returns the configured strategy.
func (l *Log) Strategy() Strategy { return l.strategy }

// LogAndSend logs entry and transmits msg to dst per the strategy.
// done, when non-nil, runs on the node's event loop when the operation
// completes (see Log's doc for what completion means per strategy).
func (l *Log) LogAndSend(dst proto.NodeID, msg proto.Message, entry Entry, done func()) {
	key := l.prefix + entry.Key
	if bd, ok := l.env.Disk().(node.BatchDisk); ok {
		l.logAndSendBatched(bd, dst, msg, key, entry.Data, done)
		return
	}
	var d time.Duration
	if l.batchArm != nil {
		d = l.batchArm.Acquire(l.env.Now(), l.disk(len(entry.Data)))
	} else {
		d = l.diskArm.Acquire(l.env.Now(), l.disk(len(entry.Data)))
	}
	switch l.strategy {
	case Optimistic:
		// Send now; flush later at low priority. A crash before the
		// flush timer fires loses the entry — that is the optimism.
		l.env.Send(dst, msg)
		l.pending = append(l.pending, l.env.After(d, func() {
			l.write(key, entry.Data)
		}))
		if done != nil {
			done()
		}
	case BlockingPessimistic:
		// Durable write first; the communication begins only after.
		l.env.After(d, func() {
			l.write(key, entry.Data)
			l.env.Send(dst, msg)
			if done != nil {
				done()
			}
		})
	case NonBlockingPessimistic:
		// Send immediately; completion waits for the write. The write
		// overlaps the communication, so the added delay is only the
		// slack between disk and network times (small and variable —
		// disk cache management, per the paper).
		l.env.Send(dst, msg)
		l.env.After(d, func() {
			l.write(key, entry.Data)
			if done != nil {
				done()
			}
		})
	}
}

// logAndSendBatched is the real-store path: durability timing comes
// from the store's group commit, not the DiskModel. The entry is
// staged immediately (read-your-writes, so synchronization sees it)
// and the strategy decides what waits for the covering batch fsync:
// nothing (optimistic), the send (blocking pessimistic) or only the
// completion callback (non-blocking pessimistic — the commit overlaps
// the communication exactly as the paper describes).
func (l *Log) logAndSendBatched(bd node.BatchDisk, dst proto.NodeID, msg proto.Message, key string, data []byte, done func()) {
	logged := func(err error) {
		if err != nil {
			l.env.Logf("msglog: write %s: %v", key, err)
		}
	}
	switch l.strategy {
	case Optimistic:
		// Send now; the group commit makes the entry durable shortly
		// after. A crash before that batch's fsync loses the entry —
		// that is the optimism.
		l.env.Send(dst, msg)
		bd.WriteAsync(key, data, logged)
		if done != nil {
			done()
		}
	case BlockingPessimistic:
		// The communication begins only after the entry's batch is on
		// the platter. Concurrent submissions stage into the same
		// batch, so the per-call cost is a shared fsync.
		bd.WriteAsync(key, data, func(err error) {
			if err != nil {
				// The entry never became durable; sending anyway would
				// silently abandon durability-before-send, the one
				// property this strategy exists for. Withhold the send
				// — the ack-resync machinery retries the operation —
				// but still complete, so the submission pipeline does
				// not wedge on a broken disk.
				logged(err)
				if done != nil {
					done()
				}
				return
			}
			l.env.Send(dst, msg)
			if done != nil {
				done()
			}
		})
	case NonBlockingPessimistic:
		// Send immediately; completion waits for the covering batch.
		l.env.Send(dst, msg)
		bd.WriteAsync(key, data, func(err error) {
			logged(err)
			if done != nil {
				done()
			}
		})
	}
}

func (l *Log) write(key string, data []byte) {
	if err := l.env.Disk().Write(key, data); err != nil {
		l.env.Logf("msglog: write %s: %v", key, err)
	}
}

// Get returns a logged entry's payload.
func (l *Log) Get(key string) ([]byte, bool) { return l.env.Disk().Read(l.prefix + key) }

// Keys returns all durably logged entry keys, sorted.
func (l *Log) Keys() []string {
	raw := l.env.Disk().Keys(l.prefix)
	keys := make([]string, len(raw))
	for i, k := range raw {
		keys[i] = k[len(l.prefix):]
	}
	return keys
}

// Len returns the number of durable entries.
func (l *Log) Len() int { return len(l.env.Disk().Keys(l.prefix)) }

// GC removes the entries selected by drop, implementing the
// distributed garbage collection: logging capacities are bounded, so
// components flush logs whose information is safely replicated
// elsewhere (e.g. acknowledged results).
func (l *Log) GC(drop func(key string) bool) int {
	removed := 0
	for _, k := range l.Keys() {
		if drop(k) {
			if err := l.env.Disk().Delete(l.prefix + k); err != nil {
				// The entry stays; the next GC pass retries. Resending
				// a logged message is always safe, so over-retention
				// costs only space.
				l.env.Logf("msglog: gc %s: %v", k, err)
				continue
			}
			removed++
		}
	}
	return removed
}

// Close cancels pending optimistic flushes (a clean shutdown; a crash
// simply never fires them).
func (l *Log) Close() {
	for _, t := range l.pending {
		t.Stop()
	}
	l.pending = nil
}
