package msglog

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// host exposes a node.Env to the test body.
type host struct {
	env   node.Env
	inbox []proto.Message
}

func (h *host) Start(env node.Env)                      { h.env = env }
func (h *host) Receive(_ proto.NodeID, m proto.Message) { h.inbox = append(h.inbox, m) }
func (h *host) Stop()                                   {}

type blob struct{ Data []byte }

func (*blob) Kind() string    { return "blob" }
func (b *blob) WireSize() int { return len(b.Data) }

// rig builds a two-node world: "src" owning the log under test and
// "dst" collecting transmissions.
func rig(t *testing.T, strategy Strategy, disk DiskModel) (*sim.World, *host, *host, *Log) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 1})
	src, dst := &host{}, &host{}
	w.AddNode("src", src)
	w.AddNode("dst", dst)
	w.Start("src")
	w.Start("dst")
	l := New(src.env, Config{Strategy: strategy, Disk: disk})
	return w, src, dst, l
}

func fixedDisk(d time.Duration) DiskModel { return func(int) time.Duration { return d } }

func TestOptimisticSendsImmediately(t *testing.T) {
	w, _, dst, l := rig(t, Optimistic, fixedDisk(10*time.Millisecond))
	doneAt := time.Time{}
	l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: "1", Data: []byte("x")},
		func() { doneAt = w.Now() })
	if !doneAt.Equal(w.Now()) {
		t.Fatal("optimistic completion not immediate")
	}
	// Entry not yet durable.
	if l.Len() != 0 {
		t.Fatal("optimistic write completed synchronously")
	}
	w.RunFor(time.Second)
	if len(dst.inbox) != 1 {
		t.Fatalf("dst received %d messages, want 1", len(dst.inbox))
	}
	if l.Len() != 1 {
		t.Fatal("optimistic flush never landed")
	}
}

func TestOptimisticCrashLosesUnflushed(t *testing.T) {
	w, src, _, l := rig(t, Optimistic, fixedDisk(10*time.Millisecond))
	l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: "1", Data: []byte("x")}, nil)
	w.Crash("src")
	w.RunFor(time.Second)
	if n := len(src.env.Disk().Keys("msglog/")); n != 0 {
		t.Fatalf("crash before flush left %d durable entries, want 0", n)
	}
}

func TestBlockingPessimisticWritesBeforeSend(t *testing.T) {
	w, _, dst, l := rig(t, BlockingPessimistic, fixedDisk(10*time.Millisecond))
	var doneAt time.Time
	l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: "1", Data: []byte("x")},
		func() { doneAt = w.Now() })
	// Nothing sent or written yet.
	if len(dst.inbox) != 0 || l.Len() != 0 {
		t.Fatal("blocking pessimistic acted before the disk delay")
	}
	w.RunFor(5 * time.Millisecond)
	if len(dst.inbox) != 0 {
		t.Fatal("message on the wire before the write completed")
	}
	w.RunFor(time.Second)
	if l.Len() != 1 || len(dst.inbox) != 1 {
		t.Fatalf("after run: %d entries, %d deliveries; want 1,1", l.Len(), len(dst.inbox))
	}
	if doneAt.Sub(sim.Epoch) < 10*time.Millisecond {
		t.Fatalf("completion at %v, want >= 10ms", doneAt.Sub(sim.Epoch))
	}
}

func TestNonBlockingPessimisticOverlaps(t *testing.T) {
	w, _, dst, l := rig(t, NonBlockingPessimistic, fixedDisk(10*time.Millisecond))
	var doneAt time.Time
	l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: "1", Data: []byte("x")},
		func() { doneAt = w.Now() })
	w.RunFor(time.Millisecond)
	// The send must already be out (instant network here).
	if len(dst.inbox) != 1 {
		t.Fatal("non-blocking send did not start immediately")
	}
	if !doneAt.IsZero() {
		t.Fatal("completion before the write finished")
	}
	w.RunFor(time.Second)
	if doneAt.Sub(sim.Epoch) != 10*time.Millisecond {
		t.Fatalf("completion at %v, want 10ms", doneAt.Sub(sim.Epoch))
	}
}

func TestDiskWritesSerialize(t *testing.T) {
	w, _, _, l := rig(t, BlockingPessimistic, fixedDisk(10*time.Millisecond))
	var completions []time.Duration
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("%d", i)
		l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: key, Data: []byte("x")},
			func() { completions = append(completions, w.Elapsed()) })
	}
	w.RunFor(time.Second)
	if len(completions) != 4 {
		t.Fatalf("%d completions, want 4", len(completions))
	}
	for i, c := range completions {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if c != want {
			t.Fatalf("completion %d at %v, want %v (disk must serialize)", i, c, want)
		}
	}
}

func TestBatchedModeAmortizesFloor(t *testing.T) {
	// The sim-side group-commit model: with Batched, N simultaneous
	// blocking-pessimistic writes complete in one solo commit plus one
	// shared-floor batch, not N serial commits.
	model := func(size int) time.Duration {
		return 10*time.Millisecond + time.Duration(size)*time.Millisecond
	}
	w := sim.NewWorld(sim.Config{Seed: 1})
	src, dst := &host{}, &host{}
	w.AddNode("src", src)
	w.AddNode("dst", dst)
	w.Start("src")
	w.Start("dst")
	l := New(src.env, Config{Strategy: BlockingPessimistic, Disk: model, Batched: true})

	var completions []time.Duration
	for i := 0; i < 4; i++ {
		l.LogAndSend("dst", &blob{Data: []byte("x")}, Entry{Key: fmt.Sprintf("%d", i), Data: []byte("x")},
			func() { completions = append(completions, w.Elapsed()) })
	}
	w.RunFor(time.Second)
	if len(completions) != 4 {
		t.Fatalf("%d completions, want 4", len(completions))
	}
	// Solo commit at 11ms; joiners share one floor: 22, 23, 24ms.
	want := []time.Duration{11, 22, 23, 24}
	for i, c := range completions {
		if c != want[i]*time.Millisecond {
			t.Fatalf("completion %d at %v, want %vms", i, c, want[i])
		}
	}
	if l.Len() != 4 {
		t.Fatalf("durable entries = %d, want 4", l.Len())
	}
}

// fakeBatchDisk implements node.BatchDisk with manual commit control:
// staged callbacks fire only when the test calls commit, modelling the
// group-commit store's fsync boundary.
type fakeBatchDisk struct {
	data   map[string][]byte
	staged []func(error)
}

func newFakeBatchDisk() *fakeBatchDisk { return &fakeBatchDisk{data: map[string][]byte{}} }

func (d *fakeBatchDisk) Write(key string, value []byte) error {
	d.data[key] = append([]byte(nil), value...)
	return nil
}
func (d *fakeBatchDisk) WriteAsync(key string, value []byte, done func(error)) {
	d.data[key] = append([]byte(nil), value...)
	d.staged = append(d.staged, done)
}
func (d *fakeBatchDisk) Read(key string) ([]byte, bool) { v, ok := d.data[key]; return v, ok }
func (d *fakeBatchDisk) Delete(key string) error        { delete(d.data, key); return nil }
func (d *fakeBatchDisk) Keys(prefix string) []string {
	var keys []string
	for k := range d.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	return keys
}
func (d *fakeBatchDisk) Sync() error { return nil }
func (d *fakeBatchDisk) commit() {
	staged := d.staged
	d.staged = nil
	for _, f := range staged {
		if f != nil {
			f(nil)
		}
	}
}

// batchEnv is a minimal node.Env over a fakeBatchDisk.
type batchEnv struct {
	disk *fakeBatchDisk
	sent []proto.Message
}

func (e *batchEnv) Self() proto.NodeID                     { return "src" }
func (e *batchEnv) Now() time.Time                         { return sim.Epoch }
func (e *batchEnv) Send(_ proto.NodeID, m proto.Message)   { e.sent = append(e.sent, m) }
func (e *batchEnv) Disk() node.Disk                        { return e.disk }
func (e *batchEnv) Rand() *rand.Rand                       { return rand.New(rand.NewSource(1)) }
func (e *batchEnv) Logf(string, ...any)                    {}
func (e *batchEnv) After(time.Duration, func()) node.Timer { return noopTimer{} }

type noopTimer struct{}

func (noopTimer) Stop() {}

// TestBatchDiskRoutesDurabilityWaits pins the real-store path: every
// strategy stages through WriteAsync and ties its completion point to
// the batch fsync, not the DiskModel.
func TestBatchDiskRoutesDurabilityWaits(t *testing.T) {
	entry := Entry{Key: "1", Data: []byte("x")}

	t.Run("blocking-pessimistic", func(t *testing.T) {
		env := &batchEnv{disk: newFakeBatchDisk()}
		l := New(env, Config{Strategy: BlockingPessimistic, Disk: InstantDisk()})
		completed := false
		l.LogAndSend("dst", &blob{}, entry, func() { completed = true })
		// Staged (read-your-writes) but the communication must not
		// have begun: the batch has not fsynced.
		if _, ok := l.Get("1"); !ok {
			t.Fatal("entry not staged")
		}
		if len(env.sent) != 0 || completed {
			t.Fatal("blocking pessimistic acted before the group commit")
		}
		env.disk.commit()
		if len(env.sent) != 1 || !completed {
			t.Fatalf("after commit: sent=%d completed=%v, want 1,true", len(env.sent), completed)
		}
	})

	t.Run("non-blocking-pessimistic", func(t *testing.T) {
		env := &batchEnv{disk: newFakeBatchDisk()}
		l := New(env, Config{Strategy: NonBlockingPessimistic, Disk: InstantDisk()})
		completed := false
		l.LogAndSend("dst", &blob{}, entry, func() { completed = true })
		// The send overlaps the commit; completion waits for it.
		if len(env.sent) != 1 {
			t.Fatal("non-blocking send did not start immediately")
		}
		if completed {
			t.Fatal("completion before the batch fsync")
		}
		env.disk.commit()
		if !completed {
			t.Fatal("completion never fired after the commit")
		}
	})

	t.Run("optimistic", func(t *testing.T) {
		env := &batchEnv{disk: newFakeBatchDisk()}
		l := New(env, Config{Strategy: Optimistic, Disk: InstantDisk()})
		completed := false
		l.LogAndSend("dst", &blob{}, entry, func() { completed = true })
		// Everything immediate; durability rides the next commit.
		if len(env.sent) != 1 || !completed {
			t.Fatal("optimistic did not complete at send")
		}
		env.disk.commit()
		if _, ok := l.Get("1"); !ok {
			t.Fatal("entry lost")
		}
	})
}

func TestKeysSortedAndGet(t *testing.T) {
	w, _, _, l := rig(t, BlockingPessimistic, fixedDisk(0))
	for _, k := range []string{"b", "a", "c"} {
		l.LogAndSend("dst", &blob{Data: []byte(k)}, Entry{Key: k, Data: []byte(k)}, nil)
	}
	w.RunFor(time.Second)
	keys := l.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	v, ok := l.Get("b")
	if !ok || string(v) != "b" {
		t.Fatalf("Get(b) = %q,%v", v, ok)
	}
}

func TestGC(t *testing.T) {
	w, _, _, l := rig(t, BlockingPessimistic, fixedDisk(0))
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("%d", i)
		l.LogAndSend("dst", &blob{}, Entry{Key: k, Data: []byte(k)}, nil)
	}
	w.RunFor(time.Second)
	removed := l.GC(func(key string) bool { return key < "3" })
	if removed != 3 || l.Len() != 3 {
		t.Fatalf("GC removed %d, left %d; want 3,3", removed, l.Len())
	}
}

func TestParseStrategy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Strategy
	}{
		{"optimistic", Optimistic},
		{"opt", Optimistic},
		{"blocking", BlockingPessimistic},
		{"blocking-pessimistic", BlockingPessimistic},
		{"non-blocking", NonBlockingPessimistic},
		{"nonblocking", NonBlockingPessimistic},
	} {
		got, err := ParseStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v,%v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus input")
	}
	// Round trip through String.
	for _, s := range []Strategy{Optimistic, BlockingPessimistic, NonBlockingPessimistic} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%v.String()) = %v,%v", s, got, err)
		}
	}
}

func TestIDEDiskScalesWithSize(t *testing.T) {
	m := IDEDisk()
	small, big := m(100), m(100<<20)
	if small < 6*time.Millisecond {
		t.Fatalf("small write %v below access floor", small)
	}
	if big < 4*time.Second || big > 5*time.Second {
		t.Fatalf("100MB write = %v, want ~4s at 25MB/s", big)
	}
}

func TestCloseCancelsOptimisticFlushes(t *testing.T) {
	w, _, _, l := rig(t, Optimistic, fixedDisk(10*time.Millisecond))
	l.LogAndSend("dst", &blob{}, Entry{Key: "1", Data: []byte("x")}, nil)
	l.Close()
	w.RunFor(time.Second)
	if l.Len() != 0 {
		t.Fatal("flush fired after Close")
	}
}
