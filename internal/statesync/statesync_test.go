package statesync

import (
	"testing"
	"testing/quick"

	"rpcv/internal/proto"
)

func seqs(vals ...int) []proto.RPCSeq {
	out := make([]proto.RPCSeq, len(vals))
	for i, v := range vals {
		out[i] = proto.RPCSeq(v)
	}
	return out
}

func TestMissingSeqs(t *testing.T) {
	cases := []struct {
		max   proto.RPCSeq
		known []proto.RPCSeq
		want  []proto.RPCSeq
	}{
		{0, nil, nil},
		{3, nil, seqs(1, 2, 3)},
		{3, seqs(1, 2, 3), nil},
		{5, seqs(2, 4), seqs(1, 3, 5)},
		{2, seqs(1, 2, 7), nil},        // known beyond max is ignored
		{4, seqs(4, 4, 1), seqs(2, 3)}, // duplicates tolerated
	}
	for i, c := range cases {
		got := MissingSeqs(c.max, c.known)
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestMissingSeqsQuick(t *testing.T) {
	// Property: known ∪ missing ⊇ [1,max], and missing ∩ known = ∅.
	f := func(max uint8, knownRaw []uint8) bool {
		m := proto.RPCSeq(max % 64)
		known := make([]proto.RPCSeq, len(knownRaw))
		inKnown := make(map[proto.RPCSeq]bool)
		for i, k := range knownRaw {
			known[i] = proto.RPCSeq(k % 64)
			inKnown[known[i]] = true
		}
		missing := MissingSeqs(m, known)
		seen := make(map[proto.RPCSeq]bool)
		for _, s := range missing {
			if s < 1 || s > m || inKnown[s] || seen[s] {
				return false
			}
			seen[s] = true
		}
		for s := proto.RPCSeq(1); s <= m; s++ {
			if !inKnown[s] && !seen[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqSetDiff(t *testing.T) {
	got := SeqSetDiff(seqs(5, 1, 3), seqs(3))
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("diff = %v, want [1 5]", got)
	}
	if d := SeqSetDiff(nil, seqs(1)); len(d) != 0 {
		t.Fatalf("diff of empty = %v", d)
	}
}

func call(u string, s, q int) proto.CallID {
	return proto.CallID{User: proto.UserID(u), Session: proto.SessionID(s), Seq: proto.RPCSeq(q)}
}

func task(u string, s, q, inst int) proto.TaskID {
	return proto.TaskID{Call: call(u, s, q), Instance: uint32(inst)}
}

func TestTaskDiff(t *testing.T) {
	offered := []proto.TaskID{
		task("a", 1, 1, 1),
		task("a", 1, 2, 1),
		task("a", 1, 2, 2), // second instance of same call
		task("b", 1, 1, 1),
	}
	finished := map[proto.CallID]bool{call("b", 1, 1): true}
	resend, drop := TaskDiff(offered, func(c proto.CallID) bool { return !finished[c] })

	if len(resend) != 2 {
		t.Fatalf("resend = %v, want 2 entries", resend)
	}
	wantResend := map[proto.TaskID]bool{task("a", 1, 1, 1): true, task("a", 1, 2, 1): true}
	for _, r := range resend {
		if !wantResend[r] {
			t.Errorf("unexpected resend %v", r)
		}
	}
	// One duplicate instance and one already-finished call dropped.
	if len(drop) != 2 {
		t.Fatalf("drop = %v, want 2 entries", drop)
	}
}

func TestTaskDiffPartition(t *testing.T) {
	// Property: resend ∪ drop == offered (as multisets), disjoint.
	f := func(raw []uint8) bool {
		offered := make([]proto.TaskID, len(raw))
		for i, r := range raw {
			offered[i] = task("u", 1, int(r%8)+1, int(r/8)%4)
		}
		resend, drop := TaskDiff(offered, func(c proto.CallID) bool { return c.Seq%2 == 1 })
		if len(resend)+len(drop) != len(offered) {
			return false
		}
		// No call resent twice.
		seen := make(map[proto.CallID]bool)
		for _, r := range resend {
			if seen[r.Call] {
				return false
			}
			seen[r.Call] = true
			if r.Call.Seq%2 != 1 {
				return false // resent something the coordinator has
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeNodeLists(t *testing.T) {
	got := MergeNodeLists(
		[]proto.NodeID{"c", "a"},
		[]proto.NodeID{"b", "a"},
		nil,
	)
	want := []proto.NodeID{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestRemoveNode(t *testing.T) {
	got := RemoveNode([]proto.NodeID{"a", "b", "c"}, "b")
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("remove = %v", got)
	}
	if got := RemoveNode(nil, "x"); len(got) != 0 {
		t.Fatalf("remove from nil = %v", got)
	}
}

func TestSuccessorRing(t *testing.T) {
	members := []proto.NodeID{"a", "b", "c"}
	none := func(proto.NodeID) bool { return false }

	if s := Successor("a", members, none); s != "b" {
		t.Errorf("succ(a) = %s, want b", s)
	}
	if s := Successor("c", members, none); s != "a" {
		t.Errorf("succ(c) = %s, want a (wrap)", s)
	}
	// Skipping a suspected node.
	susp := func(id proto.NodeID) bool { return id == "b" }
	if s := Successor("a", members, susp); s != "c" {
		t.Errorf("succ(a) skipping b = %s, want c", s)
	}
	// Alone, or everyone else suspected: no successor.
	if s := Successor("a", []proto.NodeID{"a"}, none); s != "" {
		t.Errorf("succ alone = %s, want empty", s)
	}
	all := func(id proto.NodeID) bool { return id != "a" }
	if s := Successor("a", members, all); s != "" {
		t.Errorf("succ with all suspected = %s, want empty", s)
	}
}

func TestSuccessorSelfNotInList(t *testing.T) {
	// A coordinator not (yet) in the shared list still finds a stable
	// position.
	if s := Successor("b", []proto.NodeID{"a", "c"}, nil); s != "c" {
		t.Errorf("succ(b) in [a c] = %s, want c", s)
	}
}

func TestSuccessorRingIsPermutation(t *testing.T) {
	// Property: following successors from any member visits every other
	// member exactly once before returning (the ring is a single cycle).
	members := []proto.NodeID{"n1", "n2", "n3", "n4", "n5"}
	for _, start := range members {
		visited := map[proto.NodeID]bool{start: true}
		cur := start
		for i := 0; i < len(members)-1; i++ {
			cur = Successor(cur, members, nil)
			if cur == "" || visited[cur] {
				t.Fatalf("ring broken at %s after %s", cur, start)
			}
			visited[cur] = true
		}
		if next := Successor(cur, members, nil); next != start {
			t.Fatalf("ring from %s does not close: ends at %s", start, next)
		}
	}
}

// --- Edge cases exercised by the shard layer's rebalance path ---

func TestMissingSeqsEmptyLogs(t *testing.T) {
	// A pristine component on either side: nothing known, nothing to
	// resend.
	if got := MissingSeqs(0, nil); got != nil {
		t.Errorf("MissingSeqs(0, nil) = %v, want nil", got)
	}
	// The coordinator knows nothing: the whole contiguous prefix must
	// be resent.
	if got := MissingSeqs(3, nil); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("MissingSeqs(3, nil) = %v, want [1 2 3]", got)
	}
}

func TestMissingSeqsClientMaxBelowAllKnown(t *testing.T) {
	// The coordinator knows only seqs above the client's max (e.g. the
	// client rolled back to an old log): everything in [1, max] is
	// missing, and the higher known seqs must not leak into the answer.
	got := MissingSeqs(2, []proto.RPCSeq{5, 6, 7})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("MissingSeqs(2, [5 6 7]) = %v, want [1 2]", got)
	}
}

func TestSeqSetDiffDuplicateInputs(t *testing.T) {
	// Cross-shard advertisements can repeat a seq (the same record
	// dirtied twice across rounds); the diff must stay a set.
	got := SeqSetDiff([]proto.RPCSeq{3, 1, 3, 2, 1}, []proto.RPCSeq{2, 2})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("SeqSetDiff = %v, want the deduplicated sorted set [1 3]", got)
	}
}

func TestSeqSetDiffEmptySides(t *testing.T) {
	if got := SeqSetDiff(nil, []proto.RPCSeq{1, 2}); got != nil {
		t.Errorf("diff of empty a = %v, want nil", got)
	}
	got := SeqSetDiff([]proto.RPCSeq{2, 1}, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("diff against empty b = %v, want [1 2]", got)
	}
}
