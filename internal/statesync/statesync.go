// Package statesync implements the pure algorithms of RPC-V's state
// synchronization (paper §4.2, "Synchronization"): on every
// reconnection, components determine received and lost messages from
// their local logs, and lost ones are resent.
//
// The implementation depends on each component's local information:
//
//   - Client↔coordinator: client RPC submissions carry a per-session
//     counter; synchronization compares the client's maximum timestamp
//     with the coordinator's. The client's log is contiguous (1..max),
//     the coordinator's may have gaps (messages lost in transit or in a
//     crash), so the coordinator-side diff is a set difference.
//   - Coordinator↔coordinator: exchange of maximum timestamps for all
//     known clients.
//   - Server↔coordinator: servers hold non-contiguous timestamps for a
//     given client, so the synchronization is a peer-wise comparison of
//     logs (exact task-ID sets).
//
// The timing of synchronization (figure 6) comes from the message and
// disk models; this package only computes what must move.
package statesync

import (
	"sort"

	"rpcv/internal/proto"
)

// MissingSeqs returns the sequence numbers in [1, clientMax] absent
// from known, in increasing order. It is what a coordinator must ask a
// client to resend (the client log is contiguous by construction).
func MissingSeqs(clientMax proto.RPCSeq, known []proto.RPCSeq) []proto.RPCSeq {
	have := make(map[proto.RPCSeq]bool, len(known))
	for _, s := range known {
		if s <= clientMax {
			have[s] = true
		}
	}
	var missing []proto.RPCSeq
	for s := proto.RPCSeq(1); s <= clientMax; s++ {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing
}

// SeqSetDiff returns the elements of a not present in b, deduplicated
// and sorted — a true set difference: duplicates on either side (e.g.
// the same record advertised by two cross-shard rounds) change nothing.
// It is the generic building block for catch-up synchronization: a =
// what the peer knows, b = what the local component holds, result =
// what must move.
func SeqSetDiff(a, b []proto.RPCSeq) []proto.RPCSeq {
	inB := make(map[proto.RPCSeq]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	seen := make(map[proto.RPCSeq]bool, len(a))
	var out []proto.RPCSeq
	for _, s := range a {
		if !inB[s] && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TaskDiff computes the server↔coordinator peer-wise log comparison.
// offered is the set of task results the server still holds; wanted
// reports, for each offered task, whether the coordinator lacks a
// result for its call. The returned resend list is what the server
// must upload again; drop is what it may garbage-collect (the
// coordinator already has a finished result for the call, possibly from
// another instance or another server).
func TaskDiff(offered []proto.TaskID, wanted func(proto.CallID) bool) (resend, drop []proto.TaskID) {
	seen := make(map[proto.CallID]bool, len(offered))
	sorted := append([]proto.TaskID(nil), offered...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Call != sorted[j].Call {
			return sorted[i].Call.Less(sorted[j].Call)
		}
		return sorted[i].Instance < sorted[j].Instance
	})
	for _, t := range sorted {
		switch {
		case seen[t.Call]:
			// A second instance of the same call: one upload suffices.
			drop = append(drop, t)
		case wanted(t.Call):
			resend = append(resend, t)
			seen[t.Call] = true
		default:
			drop = append(drop, t)
		}
	}
	return resend, drop
}

// MergeNodeLists merges coordinator lists, removing duplicates and
// preserving a deterministic (sorted) order. The common order over the
// merged list is what every coordinator uses to compute its ring
// position and successor, so determinism here is what keeps the virtual
// ring consistent without any agreement protocol.
func MergeNodeLists(lists ...[]proto.NodeID) []proto.NodeID {
	set := make(map[proto.NodeID]bool)
	for _, l := range lists {
		for _, id := range l {
			set[id] = true
		}
	}
	out := make([]proto.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RemoveNode returns list without id (order preserved).
func RemoveNode(list []proto.NodeID, id proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(list))
	for _, n := range list {
		if n != id {
			out = append(out, n)
		}
	}
	return out
}

// Successor computes self's successor on the virtual ring defined by
// the common sorted order of members, skipping suspected nodes. It
// returns "" when no eligible successor exists (self alone, or all
// others suspected). Self is never its own successor.
func Successor(self proto.NodeID, members []proto.NodeID, suspected func(proto.NodeID) bool) proto.NodeID {
	ring := MergeNodeLists(members) // sorted, deduplicated common order
	idx := -1
	for i, id := range ring {
		if id == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Self not in the list: treat the list as the ring and pick the
		// first non-suspected member after self's sort position.
		ring = MergeNodeLists(append(ring, self))
		for i, id := range ring {
			if id == self {
				idx = i
				break
			}
		}
	}
	n := len(ring)
	for step := 1; step < n; step++ {
		cand := ring[(idx+step)%n]
		if cand == self {
			continue
		}
		if suspected == nil || !suspected(cand) {
			return cand
		}
	}
	return ""
}
