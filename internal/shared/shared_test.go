package shared

import (
	"testing"
	"time"
)

func TestParseDirectory(t *testing.T) {
	dir, ids, err := ParseDirectory("a=host1:7000, b=host2:7001 ,c=host3:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("ids = %v", ids)
	}
	if dir["b"] != "host2:7001" {
		t.Fatalf("dir = %v", dir)
	}
}

func TestParseDirectoryEmpty(t *testing.T) {
	dir, ids, err := ParseDirectory("   ")
	if err != nil || len(dir) != 0 || len(ids) != 0 {
		t.Fatalf("empty parse = %v %v %v", dir, ids, err)
	}
}

func TestParseDirectoryMalformed(t *testing.T) {
	for _, in := range []string{"justanid", "=addr", "id=", "a=1,=x"} {
		if _, _, err := ParseDirectory(in); err == nil {
			t.Errorf("ParseDirectory(%q) accepted malformed input", in)
		}
	}
}

func TestBuiltinServices(t *testing.T) {
	svcs := BuiltinServices()
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"echo", "abc", "abc"},
		{"upper", "aBc9", "ABC9"},
		{"reverse", "abc", "cba"},
		{"sum", "\x01\x02\x03", "6"},
	}
	for _, c := range cases {
		svc, ok := svcs[c.name]
		if !ok {
			t.Fatalf("service %q missing", c.name)
		}
		out, err := svc([]byte(c.in))
		if err != nil || string(out) != c.want {
			t.Errorf("%s(%q) = %q,%v; want %q", c.name, c.in, out, err, c.want)
		}
	}
}

func TestSleepService(t *testing.T) {
	svc := BuiltinServices()["sleep"]
	start := time.Now()
	out, err := svc([]byte("10ms"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("sleep = %q,%v", out, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("sleep returned early")
	}
	if _, err := svc([]byte("not a duration")); err == nil {
		t.Error("sleep accepted garbage")
	}
	if _, err := svc([]byte("24h")); err == nil {
		t.Error("sleep accepted an absurd duration")
	}
}

func TestEchoCopiesInput(t *testing.T) {
	svc := BuiltinServices()["echo"]
	in := []byte("abc")
	out, _ := svc(in)
	in[0] = 'X'
	if string(out) != "abc" {
		t.Error("echo aliased its input")
	}
}

func TestParseShardMap(t *testing.T) {
	m, err := ParseShardMap("coord-a,coord-b; coord-c,coord-d", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 2 || m.Version() != 3 {
		t.Fatalf("got %d shards version %d, want 2 shards version 3", m.Shards(), m.Version())
	}
	if m.RingOf("coord-a") != 0 || m.RingOf("coord-d") != 1 {
		t.Fatalf("ring assignment wrong: a=%d d=%d", m.RingOf("coord-a"), m.RingOf("coord-d"))
	}
}

func TestParseShardMapEmpty(t *testing.T) {
	m, err := ParseShardMap("  ", 1, 0)
	if err != nil || m != nil {
		t.Fatalf("blank spec: map=%v err=%v, want nil/nil", m, err)
	}
}

func TestParseShardMapRejectsDuplicates(t *testing.T) {
	if _, err := ParseShardMap("coord-a,coord-b;coord-a", 1, 0); err == nil {
		t.Fatal("duplicate member across rings accepted")
	}
	if _, err := ParseShardMap("coord-a,,coord-b", 1, 0); err == nil {
		t.Fatal("empty member accepted")
	}
}
