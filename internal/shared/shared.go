// Package shared holds small helpers used by the cmd/ daemons: static
// directory parsing and the built-in demo service registry.
package shared

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rpcv/internal/proto"
	"rpcv/internal/rt"
	"rpcv/internal/server"
	"rpcv/internal/shard"
)

// ParseDirectory parses "id=addr,id=addr" into a runtime directory and
// the ordered ID list. The empty string yields an empty directory.
func ParseDirectory(s string) (rt.Directory, []proto.NodeID, error) {
	dir := rt.Directory{}
	var ids []proto.NodeID
	if strings.TrimSpace(s) == "" {
		return dir, ids, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, nil, fmt.Errorf("malformed entry %q (want id=addr)", part)
		}
		nid := proto.NodeID(id)
		dir[nid] = addr
		ids = append(ids, nid)
	}
	return dir, ids, nil
}

// ParseShardMap parses the -shardmap flag syntax
// "coordA,coordB;coordC,coordD" — rings separated by ';', ring members
// by ',' — into a versioned consistent-hash shard map. The empty string
// yields nil (unsharded). A version tags the topology so redirects can
// repair stale client caches; vnodes <= 0 uses shard.DefaultVNodes.
func ParseShardMap(s string, version uint64, vnodes int) (*shard.Map, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var rings [][]proto.NodeID
	seen := make(map[proto.NodeID]bool)
	for _, ringSpec := range strings.Split(s, ";") {
		ringSpec = strings.TrimSpace(ringSpec)
		if ringSpec == "" {
			continue
		}
		var ring []proto.NodeID
		for _, member := range strings.Split(ringSpec, ",") {
			member = strings.TrimSpace(member)
			if member == "" {
				return nil, fmt.Errorf("shard map: empty member in ring %q", ringSpec)
			}
			id := proto.NodeID(member)
			if seen[id] {
				return nil, fmt.Errorf("shard map: %s appears twice", id)
			}
			seen[id] = true
			ring = append(ring, id)
		}
		rings = append(rings, ring)
	}
	if len(rings) == 0 {
		return nil, nil
	}
	return shard.New(version, rings, vnodes), nil
}

// BuiltinServices returns the demo service registry shipped with
// rpcv-server: enough to exercise the system end to end without
// writing code.
//
//	echo    — returns the parameters unchanged
//	upper   — ASCII upper-case
//	reverse — reverses the payload
//	sum     — sums the payload bytes, returns the decimal string
//	sleep   — parses the payload as a Go duration, sleeps, returns "ok"
//	          (stateless: repeating it is harmless, per RPC-V's
//	          at-least-once semantics)
func BuiltinServices() map[string]server.Service {
	return map[string]server.Service{
		"echo": func(p []byte) ([]byte, error) {
			return append([]byte(nil), p...), nil
		},
		"upper": func(p []byte) ([]byte, error) {
			out := make([]byte, len(p))
			for i, b := range p {
				if 'a' <= b && b <= 'z' {
					b -= 'a' - 'A'
				}
				out[i] = b
			}
			return out, nil
		},
		"reverse": func(p []byte) ([]byte, error) {
			out := make([]byte, len(p))
			for i, b := range p {
				out[len(p)-1-i] = b
			}
			return out, nil
		},
		"sum": func(p []byte) ([]byte, error) {
			var total uint64
			for _, b := range p {
				total += uint64(b)
			}
			return []byte(strconv.FormatUint(total, 10)), nil
		},
		"sleep": func(p []byte) ([]byte, error) {
			d, err := time.ParseDuration(strings.TrimSpace(string(p)))
			if err != nil {
				return nil, fmt.Errorf("sleep: %w", err)
			}
			if d > time.Hour {
				return nil, fmt.Errorf("sleep: %v exceeds the 1h cap", d)
			}
			time.Sleep(d)
			return []byte("ok"), nil
		},
	}
}
