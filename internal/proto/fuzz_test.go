package proto

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip throws arbitrary bytes at the binary decoders —
// storage blobs (message and job record) and the framed wire stream —
// and checks the two properties the hardening promises: garbage never
// panics (it errors), and anything that does decode re-encodes to a
// stable fixed point (decode(encode(decode(x))) is byte-identical to
// encode(decode(x)), so rewritten logs never churn). The seed corpus
// covers every message kind, a job record and a wire frame, so `go
// test` alone exercises every decode path through this harness.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, msg := range allMessages() {
		f.Add(CodecBinary.EncodeMessage(msg))
	}
	f.Add(EncodeJob(&JobRecord{
		Call: CallID{User: "user-01", Session: 7, Seq: 42}, Service: "svc",
		Params: []byte{1, 2}, State: TaskFinished, Output: []byte{3}, Server: "server-000",
	}))
	// A full wire frame (length prefix + kind + from + body) and a few
	// malformed openers steer the fuzzer toward both decoders.
	hbFrame, err := AppendFrame(nil, "node-a", &Heartbeat{From: "node-a", Role: RoleServer, Capacity: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hbFrame)
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, binVersion, kindSubmit})
	f.Add([]byte{0, 0, 0, 5, kindSubmit, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory; MaxFrame guards the real paths
		}
		var dec Decoder
		if msg, err := dec.DecodeMessage(withMagic(data)); err == nil {
			raw := CodecBinary.EncodeMessage(msg)
			again, err := dec.DecodeMessage(raw)
			if err != nil {
				t.Fatalf("re-decode of valid message failed: %v", err)
			}
			if !bytes.Equal(raw, CodecBinary.EncodeMessage(again)) {
				t.Fatalf("message encoding is not a fixed point")
			}
		}
		if rec, err := dec.DecodeJob(withJobMagic(data)); err == nil {
			raw := EncodeJob(rec)
			again, err := dec.DecodeJob(raw)
			if err != nil {
				t.Fatalf("re-decode of valid job failed: %v", err)
			}
			if !bytes.Equal(raw, EncodeJob(again)) {
				t.Fatalf("job encoding is not a fixed point")
			}
		}
		// The framed wire path: drain frames until error or EOF. The
		// decoder must terminate without panicking whatever the bytes.
		wd := NewWireDecoder(bytes.NewReader(data))
		for {
			from, msg, err := wd.Next()
			if err != nil {
				break
			}
			// A frame that decoded was under MaxFrame, so re-framing
			// it cannot exceed the cap.
			raw, err := AppendFrame(nil, from, msg)
			if err != nil {
				t.Fatalf("re-frame of valid frame refused: %v", err)
			}
			wd2 := NewWireDecoder(bytes.NewReader(raw))
			from2, msg2, err := wd2.Next()
			if err != nil {
				t.Fatalf("re-decode of valid frame failed: %v", err)
			}
			again, err := AppendFrame(nil, from2, msg2)
			if err != nil || !bytes.Equal(raw, again) {
				t.Fatalf("frame encoding is not a fixed point (err %v)", err)
			}
		}
	})
}

// withMagic steers fuzz data into the binary message decoder without
// ever reaching the gob fallback (gob is not under test here): data
// already carrying the magic passes through, anything else gets a
// valid blob header prepended.
func withMagic(data []byte) []byte {
	if len(data) >= 3 && data[0] == binMagic {
		return data
	}
	return append([]byte{binMagic, binVersion, kindSubmit}, data...)
}

// withJobMagic is withMagic for job-record blobs.
func withJobMagic(data []byte) []byte {
	if len(data) >= 3 && data[0] == binMagic {
		return data
	}
	return append([]byte{binMagic, binVersion, kindJobRecord}, data...)
}
