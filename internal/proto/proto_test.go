package proto

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCallIDOrdering(t *testing.T) {
	a := CallID{User: "a", Session: 1, Seq: 1}
	b := CallID{User: "a", Session: 1, Seq: 2}
	c := CallID{User: "a", Session: 2, Seq: 1}
	d := CallID{User: "b", Session: 1, Seq: 1}
	for _, pair := range [][2]CallID{{a, b}, {b, c}, {c, d}, {a, d}} {
		if !pair[0].Less(pair[1]) {
			t.Errorf("%v not < %v", pair[0], pair[1])
		}
		if pair[1].Less(pair[0]) {
			t.Errorf("%v < %v unexpectedly", pair[1], pair[0])
		}
	}
	if a.Less(a) {
		t.Error("CallID less than itself")
	}
}

func TestCallIDLessIsStrictOrderQuick(t *testing.T) {
	f := func(u1, u2 uint8, s1, s2 uint16, q1, q2 uint16) bool {
		a := CallID{User: UserID(rune('a' + u1%4)), Session: SessionID(s1 % 4), Seq: RPCSeq(q1 % 8)}
		b := CallID{User: UserID(rune('a' + u2%4)), Session: SessionID(s2 % 4), Seq: RPCSeq(q2 % 8)}
		// Exactly one of <, >, == holds.
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	c := CallID{User: "alice", Session: 7, Seq: 42}
	if got := c.String(); got != "alice/7/42" {
		t.Errorf("CallID.String() = %q", got)
	}
	tk := TaskID{Call: c, Instance: 3}
	if got := tk.String(); got != "alice/7/42#3" {
		t.Errorf("TaskID.String() = %q", got)
	}
	if RoleClient.String() != "client" || RoleCoordinator.String() != "coordinator" ||
		RoleServer.String() != "server" {
		t.Error("role names wrong")
	}
	if TaskPending.String() != "pending" || TaskOngoing.String() != "ongoing" ||
		TaskFinished.String() != "finished" {
		t.Error("task state names wrong")
	}
}

func TestJobRecordCodecRoundTrip(t *testing.T) {
	rec := &JobRecord{
		Call:       CallID{User: "u", Session: 2, Seq: 9},
		Service:    "alcatel",
		Params:     []byte{1, 2, 3},
		ExecTime:   90 * time.Second,
		ResultSize: 8192,
		State:      TaskFinished,
		Instance:   4,
		Output:     []byte("report"),
		ResultErr:  "",
		Server:     "server-003",
	}
	got, err := DecodeJob(EncodeJob(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Call != rec.Call || got.Service != rec.Service || got.State != rec.State ||
		got.Instance != rec.Instance || string(got.Output) != string(rec.Output) ||
		got.Server != rec.Server || got.ExecTime != rec.ExecTime {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestDecodeJobRejectsGarbage(t *testing.T) {
	if _, err := DecodeJob([]byte("not gob")); err == nil {
		t.Fatal("DecodeJob accepted garbage")
	}
	if _, err := DecodeJob(nil); err == nil {
		t.Fatal("DecodeJob accepted empty input")
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		&Submit{Call: CallID{User: "u", Session: 1, Seq: 1}, Service: "s", Params: []byte{9}},
		&SubmitAck{Call: CallID{User: "u", Session: 1, Seq: 1}, MaxSeq: 5},
		&Poll{User: "u", Session: 1, Have: []RPCSeq{1, 2}},
		&Results{User: "u", Session: 1, Results: []Result{{Output: []byte("r")}}},
		&SyncRequest{User: "u", Session: 1, MaxSeq: 3, HaveLog: true},
		&SyncReply{User: "u", Session: 1, MaxSeq: 3, Known: []RPCSeq{1}},
		&FetchResult{User: "u", Session: 1, Seq: 2},
		&FetchReply{Call: CallID{User: "u"}, Known: true, Finished: true},
		&Heartbeat{From: "server-001", Role: RoleServer, Capacity: 1, WantWork: true},
		&HeartbeatAck{From: "coord-00", Coordinators: []NodeID{"coord-00"}},
		&TaskResult{From: "server-001", Task: TaskID{Instance: 1}, Output: []byte("o")},
		&TaskResultAck{Task: TaskID{Instance: 1}},
		&ServerSync{From: "server-001", Tasks: []TaskID{{Instance: 1}}, Running: []TaskID{{Instance: 2}}},
		&ServerSyncReply{Resend: []TaskID{{Instance: 1}}},
		&ReplicaUpdate{From: "coord-00", Epoch: 3, Jobs: []JobRecord{{Service: "s"}}},
		&ReplicaAck{From: "coord-01", Epoch: 3},
	}
	for _, m := range msgs {
		raw := EncodeMessage(m)
		got, err := DecodeMessage(raw)
		if err != nil {
			t.Errorf("%s: decode: %v", m.Kind(), err)
			continue
		}
		if got.Kind() != m.Kind() {
			t.Errorf("round trip changed kind: %s -> %s", m.Kind(), got.Kind())
		}
	}
}

func TestDecodeMessageRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeMessage accepted garbage")
	}
}

func TestWireSizeScalesWithPayload(t *testing.T) {
	small := (&Submit{Params: make([]byte, 10)}).WireSize()
	big := (&Submit{Params: make([]byte, 10_000)}).WireSize()
	if big-small != 9990 {
		t.Fatalf("WireSize delta = %d, want 9990", big-small)
	}
	hb := (&Heartbeat{}).WireSize()
	if hb <= 0 || hb > 1024 {
		t.Fatalf("heartbeat size %d not small", hb)
	}
	// HeartbeatAck grows with assigned task payloads.
	ack0 := (&HeartbeatAck{}).WireSize()
	ack1 := (&HeartbeatAck{Tasks: []TaskAssignment{{Params: make([]byte, 1000)}}}).WireSize()
	if ack1-ack0 < 1000 {
		t.Fatalf("ack does not account for task payloads: %d vs %d", ack0, ack1)
	}
}

func TestJobRecordClone(t *testing.T) {
	rec := &JobRecord{
		Call:   CallID{User: "u"},
		Params: []byte{1, 2},
		Output: []byte{3},
	}
	c := rec.Clone()
	c.Params[0] = 99
	c.Output[0] = 99
	if rec.Params[0] != 1 || rec.Output[0] != 3 {
		t.Fatal("Clone aliases the original's slices")
	}
	// nil slices stay nil.
	c2 := (&JobRecord{}).Clone()
	if c2.Params != nil || c2.Output != nil {
		t.Fatal("Clone materialized nil slices")
	}
}
