package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestBinaryRoundTripEveryMessage pushes every message kind through
// the default binary storage encoding and requires a structurally
// identical value back — including the nil/empty slice distinction,
// which the +1 count scheme preserves.
func TestBinaryRoundTripEveryMessage(t *testing.T) {
	var dec Decoder // reused: the interning path must not corrupt values
	for _, msg := range allMessages() {
		raw := CodecBinary.EncodeMessage(msg)
		if !IsBinaryPreface(raw[0]) {
			t.Fatalf("%s: binary blob does not start with the magic byte", msg.Kind())
		}
		back, err := dec.DecodeMessage(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Errorf("%s: round trip mismatch:\n sent %#v\n got  %#v", msg.Kind(), msg, back)
		}
	}
}

// TestBinaryRoundTripNilVersusEmpty pins the +1 count scheme: a nil
// Params and an empty-but-allocated Params are different values and
// must both survive.
func TestBinaryRoundTripNilVersusEmpty(t *testing.T) {
	for _, params := range [][]byte{nil, {}} {
		m := &Submit{Call: CallID{User: "u", Session: 1, Seq: 2}, Params: params}
		back, err := DecodeMessage(CodecBinary.EncodeMessage(m))
		if err != nil {
			t.Fatal(err)
		}
		got := back.(*Submit).Params
		if (params == nil) != (got == nil) {
			t.Fatalf("params nil-ness flipped: sent %#v, got %#v", params, got)
		}
	}
}

// TestBinaryJobRecordRoundTrip covers JobRecord through EncodeJob,
// including a populated Deadline (instants survive; the location
// normalizes to UTC, which is all deadline ordering compares).
func TestBinaryJobRecordRoundTrip(t *testing.T) {
	rec := &JobRecord{
		Call:       CallID{User: "user-01", Session: 7, Seq: 42},
		Service:    "svc",
		Params:     []byte{1, 2, 3},
		ExecTime:   3 * time.Second,
		ResultSize: 128,
		Deadline:   time.Unix(1_000_000_600, 250).In(time.FixedZone("X", 3600)),
		State:      TaskOngoing,
		Instance:   5,
		Output:     []byte{9},
		ResultErr:  "boom",
		Server:     "server-000",
	}
	back, err := DecodeJob(EncodeJob(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Deadline.Equal(rec.Deadline) {
		t.Fatalf("deadline instant changed: %v -> %v", rec.Deadline, back.Deadline)
	}
	// Compare everything else with the deadline normalized.
	norm := *rec
	norm.Deadline = norm.Deadline.UTC()
	got := *back
	got.Deadline = got.Deadline.UTC()
	if !reflect.DeepEqual(&norm, &got) {
		t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", norm, got)
	}
	// Zero deadline stays the zero time (IsZero survives).
	zero := &JobRecord{Call: rec.Call}
	back, err = DecodeJob(EncodeJob(zero))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Deadline.IsZero() {
		t.Fatalf("zero deadline decoded as %v", back.Deadline)
	}
}

// TestBinaryEncodingStable pins second-generation stability: encoding
// the decoded value reproduces the exact bytes, so logs and WALs never
// churn when records are rewritten.
func TestBinaryEncodingStable(t *testing.T) {
	for _, msg := range allMessages() {
		raw := CodecBinary.EncodeMessage(msg)
		back, err := DecodeMessage(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", msg.Kind(), err)
		}
		if again := CodecBinary.EncodeMessage(back); !bytes.Equal(raw, again) {
			t.Errorf("%s: re-encode differs:\n first  %x\n second %x", msg.Kind(), raw, again)
		}
	}
}

// TestKindBytesStable pins every message's wire kind byte. These are
// protocol constants: renumbering breaks mixed clusters and stored
// logs, so a changed value must be a loud, deliberate event.
func TestKindBytesStable(t *testing.T) {
	want := map[string]uint8{
		"submit": 1, "submit-ack": 2, "poll": 3, "results": 4,
		"sync-request": 5, "sync-reply": 6, "fetch-result": 7, "fetch-reply": 8,
		"heartbeat": 9, "heartbeat-ack": 10, "task-result": 11, "task-result-ack": 12,
		"task-cancel": 13, "server-sync": 14, "server-sync-reply": 15,
		"replica-update": 16, "replica-ack": 17, "shard-map-request": 18,
		"shard-map-reply": 19, "shard-redirect": 20, "shard-sync": 21,
		"shard-sync-ack": 22, "steal-request": 23, "steal-grant": 24,
		"sim-fault": 26, "sim-verdict": 27,
	}
	for _, msg := range allMessages() {
		if got := kindOf(msg); got != want[msg.Kind()] {
			t.Errorf("%s: kind byte %d, want %d", msg.Kind(), got, want[msg.Kind()])
		}
	}
	if kindJobRecord != 25 {
		t.Errorf("job record kind byte %d, want 25", kindJobRecord)
	}
}

// wireSizeHints mirrors each WireSize formula: the number of
// headerSize-sized record hints it charges and the fixed per-element
// ID/seq hint bytes it adds beyond real payload bytes. The slack
// between WireSize and the true marshalled length can never exceed
// those hints (every hinted element encodes to at least one byte), so
// the bound below pins the hint against the codec from above — while
// "actual <= WireSize" pins it from below. Adding a message field
// without touching WireSize now fails this test instead of silently
// skewing the simulator's netmodel cost accounting.
func wireSizeHints(msg Message) (records int, hintBytes int) {
	mapHint := func(s ShardMapState) int {
		n := 16
		for _, ring := range s.Rings {
			n += 16 * len(ring)
		}
		return n
	}
	switch m := msg.(type) {
	case *Results:
		return 1 + len(m.Results), 0
	case *FetchReply:
		return 2, 0
	case *Poll:
		return 1, 8 * len(m.Have)
	case *SyncReply:
		return 1, 8 * len(m.Known)
	case *HeartbeatAck:
		return 1 + len(m.Tasks), 16 * len(m.Coordinators)
	case *ServerSync:
		return 1, 40 * (len(m.Tasks) + len(m.Running))
	case *ServerSyncReply:
		return 1, 40 * (len(m.Resend) + len(m.Drop))
	case *ReplicaUpdate:
		return 1 + len(m.Jobs), 24 * len(m.MaxSeqs)
	case *ShardMapReply:
		return 1, mapHint(m.Map)
	case *ShardRedirect:
		return 1, mapHint(m.Map)
	case *ShardSync:
		n := 0
		for i := range m.Sessions {
			n += 24 + 8*len(m.Sessions[i].Seqs)
		}
		return 1 + len(m.Jobs), n
	case *ShardSyncAck:
		return 1, 40 * len(m.Want)
	case *StealGrant:
		return 1 + len(m.Jobs), 0
	default:
		return 1, 0
	}
}

// TestWireSizeMatchesCodec checks, for every message kind, that the
// WireSize hint brackets the actual binary encoding: never smaller
// (the netmodel would undercharge, and encode buffers would regrow),
// and larger only by the structural slack the hint formulas knowingly
// include.
func TestWireSizeMatchesCodec(t *testing.T) {
	for _, msg := range allMessages() {
		actual := len(CodecBinary.EncodeMessage(msg)) - 3 // strip magic/version/kind
		ws := msg.WireSize()
		if actual > ws {
			t.Errorf("%s: marshalled length %d exceeds WireSize %d — a field was added without updating WireSize",
				msg.Kind(), actual, ws)
		}
		records, hintBytes := wireSizeHints(msg)
		if slack := ws - actual; slack > headerSize*records+hintBytes {
			t.Errorf("%s: WireSize %d overestimates marshalled length %d by %d (allowed %d)",
				msg.Kind(), ws, actual, slack, headerSize*records+hintBytes)
		}
	}
}

// TestWireSizeTracksPayload pins payload proportionality: growing a
// payload field by n bytes must grow both WireSize and the encoding by
// exactly n, so the netmodel's bandwidth charge follows real bytes.
func TestWireSizeTracksPayload(t *testing.T) {
	const n = 4096
	small := &Submit{Call: CallID{User: "u", Session: 1, Seq: 1}, Service: "svc"}
	big := &Submit{Call: small.Call, Service: "svc", Params: make([]byte, n)}
	if d := big.WireSize() - small.WireSize(); d != n {
		t.Errorf("WireSize delta %d for %d payload bytes", d, n)
	}
	encSmall := len(CodecBinary.EncodeMessage(small))
	encBig := len(CodecBinary.EncodeMessage(big))
	// The +1 count scheme and the length varint add a few bytes, never
	// proportional ones.
	if d := encBig - encSmall; d < n || d > n+4 {
		t.Errorf("encoding delta %d for %d payload bytes", d, n)
	}
}

// TestWireDecoderRoundTrip streams every message kind through the
// framed wire encoding — preface, then one frame per message on a
// single reused decoder — and requires identical values and sender
// IDs back.
func TestWireDecoderRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	stream.Write(FramePreface[:])
	msgs := allMessages()
	buf := GetBuffer()
	for _, m := range msgs {
		buf.B = mustFrame(t, buf.B, "node-a", m)
	}
	stream.Write(buf.B)
	PutBuffer(buf)

	br := bufio.NewReader(&stream)
	if err := ReadPreface(br); err != nil {
		t.Fatal(err)
	}
	dec := NewWireDecoder(br)
	for i, want := range msgs {
		from, got, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d (%s): %v", i, want.Kind(), err)
		}
		if from != "node-a" {
			t.Fatalf("frame %d: from = %q", i, from)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("frame %d (%s): mismatch:\n sent %#v\n got  %#v", i, want.Kind(), want, got)
		}
	}
	if _, _, err := dec.Next(); err != io.EOF {
		t.Fatalf("tail error = %v, want io.EOF", err)
	}
}

// TestWireDecoderRejectsTornFrames feeds the decoder every possible
// truncation of a valid frame stream: each must yield a non-EOF error
// (or a clean EOF exactly at a frame boundary) — never a panic, never
// a phantom message.
func TestWireDecoderRejectsTornFrames(t *testing.T) {
	frame := mustFrame(t, nil, "node-a", &Submit{
		Call: CallID{User: "user-01", Session: 7, Seq: 42}, Service: "svc", Params: []byte{1, 2, 3},
	})
	for cut := 0; cut < len(frame); cut++ {
		dec := NewWireDecoder(bytes.NewReader(frame[:cut]))
		_, msg, err := dec.Next()
		if msg != nil {
			t.Fatalf("cut %d: got a message from a torn frame", cut)
		}
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: err = %v, want io.EOF (clean boundary)", err)
			}
		} else if err == nil || err == io.EOF {
			t.Fatalf("cut %d: err = %v, want a torn-frame error", cut, err)
		}
	}
}

// TestWireDecoderRejectsGarbage pins the hardening: oversized or zero
// length prefixes, truncated bodies, non-canonical bools, unknown
// kinds and trailing bytes all error out without allocating the
// declared (potentially huge) sizes and without panicking.
func TestWireDecoderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"zero length":    {0, 0, 0, 0},
		"huge length":    {0xFF, 0xFF, 0xFF, 0xFF, 1},
		"unknown kind":   frameBytes(t, func(b []byte) []byte { b[4] = 200; return b }),
		"trailing bytes": frameBytes(t, func(b []byte) []byte { return growFrame(b, 3) }),
	}
	for name, raw := range cases {
		dec := NewWireDecoder(bytes.NewReader(raw))
		if _, msg, err := dec.Next(); err == nil || msg != nil {
			t.Errorf("%s: decoded msg=%v err=%v, want error", name, msg, err)
		}
	}
	// Storage blobs harden the same way.
	if _, err := DecodeMessage([]byte{binMagic, binVersion, 200, 1, 2}); err == nil {
		t.Error("DecodeMessage accepted an unknown kind")
	}
	if _, err := DecodeMessage([]byte{binMagic, 99, kindSubmit}); err == nil {
		t.Error("DecodeMessage accepted an unknown version")
	}
	// A blob torn inside the 3-byte header is still reported as
	// corrupt *binary*, never handed to the gob decoder whose error
	// would misdirect the triage.
	for _, torn := range [][]byte{{binMagic}, {binMagic, binVersion}} {
		if _, err := DecodeMessage(torn); !errors.Is(err, ErrCorrupt) {
			t.Errorf("torn binary header (%d bytes): err = %v, want ErrCorrupt", len(torn), err)
		}
		if _, err := DecodeJob(torn); !errors.Is(err, ErrCorrupt) {
			t.Errorf("torn binary job header (%d bytes): err = %v, want ErrCorrupt", len(torn), err)
		}
	}
	if _, err := DecodeJob([]byte{binMagic, binVersion, kindSubmit}); err == nil {
		t.Error("DecodeJob accepted a non-job kind")
	}
}

// mustFrame is AppendFrame for messages known to fit the frame cap.
func mustFrame(t *testing.T, dst []byte, from NodeID, msg Message) []byte {
	t.Helper()
	out, err := AppendFrame(dst, from, msg)
	if err != nil {
		t.Fatalf("AppendFrame(%s): %v", msg.Kind(), err)
	}
	return out
}

// frameBytes builds a valid one-frame stream and lets the caller
// corrupt it; the length prefix is patched to stay consistent.
func frameBytes(t *testing.T, corrupt func([]byte) []byte) []byte {
	t.Helper()
	b := mustFrame(t, nil, "n", &TaskCancel{Task: TaskID{Call: CallID{User: "u", Session: 1, Seq: 2}}})
	return corrupt(b)
}

// growFrame appends n garbage bytes inside the frame (the length
// prefix is updated, so the body carries trailing junk).
func growFrame(b []byte, n int) []byte {
	for i := 0; i < n; i++ {
		b = append(b, 0xAA)
	}
	ln := len(b) - 4
	b[0], b[1], b[2], b[3] = byte(ln>>24), byte(ln>>16), byte(ln>>8), byte(ln)
	return b
}

// TestAppendFrameRefusesOversized pins the send-side half of the
// MaxFrame contract: a message encoding over the cap is refused with
// dst rolled back, so one oversized message costs itself (best-effort
// loss) instead of poisoning the connection for the whole batch —
// every receiver would reject the length prefix and tear the stream
// down.
func TestAppendFrameRefusesOversized(t *testing.T) {
	big := &Submit{Call: CallID{User: "u", Session: 1, Seq: 2},
		Params: make([]byte, MaxFrame+1)}
	dst := []byte{0xAB, 0xCD}
	out, err := AppendFrame(dst, "n", big)
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if len(out) != len(dst) || out[0] != 0xAB || out[1] != 0xCD {
		t.Fatalf("dst not rolled back: len %d", len(out))
	}
	// The batch continues: a normal message still frames onto the
	// rolled-back buffer.
	out = mustFrame(t, out, "n", &SubmitAck{Call: big.Call})
	dec := NewWireDecoder(bytes.NewReader(out[2:]))
	if _, msg, err := dec.Next(); err != nil || msg.Kind() != "submit-ack" {
		t.Fatalf("frame after rollback: %v %v", msg, err)
	}
}

// TestDecodeAutoDetectsGobBlobs proves the storage compatibility
// guarantee the -wire flag rests on: blobs written by the gob codec —
// a WAL full of gob job records, a pre-binary message log — decode
// under the binary-default build, and vice versa.
func TestDecodeAutoDetectsGobBlobs(t *testing.T) {
	for _, msg := range allMessages() {
		for _, c := range []Codec{CodecGob, CodecBinary} {
			back, err := DecodeMessage(c.EncodeMessage(msg))
			if err != nil {
				t.Fatalf("%s/%s: %v", msg.Kind(), c, err)
			}
			if !reflect.DeepEqual(msg, back) {
				t.Errorf("%s/%s: round trip mismatch", msg.Kind(), c)
			}
		}
	}
	rec := &JobRecord{Call: CallID{User: "u", Session: 1, Seq: 2}, Service: "svc",
		Params: []byte{1}, State: TaskFinished, Output: []byte{2}, Server: "server-000"}
	for _, c := range []Codec{CodecGob, CodecBinary} {
		back, err := DecodeJob(c.EncodeJob(rec))
		if err != nil {
			t.Fatalf("job/%s: %v", c, err)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Errorf("job/%s: round trip mismatch:\n sent %#v\n got  %#v", c, rec, back)
		}
	}
}

// TestBinaryCodecAllocations is the perf contract behind the
// BenchmarkCodec acceptance numbers, enforced deterministically:
// encoding a small Submit allocates exactly the returned blob, and a
// warmed reusable decoder allocates exactly the message.
func TestBinaryCodecAllocations(t *testing.T) {
	sub := &Submit{Call: CallID{User: "u0", Session: 1, Seq: 42}, Service: "noop"}
	if n := testing.AllocsPerRun(200, func() { _ = CodecBinary.EncodeMessage(sub) }); n > 1 {
		t.Errorf("encode allocates %.1f times per op, want <= 1", n)
	}
	raw := CodecBinary.EncodeMessage(sub)
	var dec Decoder
	if _, err := dec.DecodeMessage(raw); err != nil { // warm the intern table
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := dec.DecodeMessage(raw); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("decode allocates %.1f times per op, want <= 1", n)
	}
}

// TestEncodeBufferPool pins the pool contract: a returned buffer comes
// back empty, and oversized buffers are dropped rather than retained.
func TestEncodeBufferPool(t *testing.T) {
	b := GetBuffer()
	b.B = append(b.B, make([]byte, 100)...)
	PutBuffer(b)
	c := GetBuffer()
	if len(c.B) != 0 {
		t.Fatalf("pooled buffer returned with %d stale bytes", len(c.B))
	}
	PutBuffer(c)
	huge := &EncodeBuffer{B: make([]byte, 0, 1<<21)}
	PutBuffer(huge) // must not panic; must not be pinned (unobservable, but covered)
}

// TestInternTableCaps bounds the string cache: entries beyond the cap
// and oversized strings fall back to plain allocation, and the interned
// copy is value-correct.
func TestInternTableCaps(t *testing.T) {
	var tab internTable
	long := strings.Repeat("x", maxInternLen+1)
	if got := tab.get([]byte(long)); got != long {
		t.Fatal("oversized string corrupted")
	}
	if len(tab.m) != 0 {
		t.Fatal("oversized string was interned")
	}
	if got := tab.get([]byte("abc")); got != "abc" {
		t.Fatal("interned string corrupted")
	}
	if got := tab.get([]byte("abc")); got != "abc" {
		t.Fatal("second lookup corrupted")
	}
	if len(tab.m) != 1 {
		t.Fatalf("intern table has %d entries, want 1", len(tab.m))
	}
}
