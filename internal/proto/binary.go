package proto

// The hand-written binary codec. Every registered message kind plus
// JobRecord gets an explicit, field-by-field encoding built from a
// handful of primitives: unsigned/zigzag varints, length-prefixed
// strings and byte slices (with a +1 count scheme that preserves the
// nil/empty distinction through a round trip), and a compact instant
// encoding for time.Time (locations normalize to UTC; only the instant
// is protocol-relevant). Unlike gob there is no reflection, no
// per-stream type descriptor and no per-encode allocation: encoders
// append into caller-supplied or pooled buffers sized by the WireSize
// hints, and the reader decodes frames in place — byte slices are
// copied out (the frame buffer is reused), strings are interned so the
// small, endlessly repeated identifiers (node IDs, users, service
// names) are allocated once per decoder, not once per message.
//
// Decoding is hardened for the fuzzer and for torn frames: every read
// is bounds-checked against the remaining input through a sticky
// error, declared lengths are validated against the bytes actually
// present before any allocation, and trailing garbage after a complete
// body is rejected. Garbage therefore produces an error, never a panic
// and never an oversized allocation.

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// binMagic opens every binary encoding: the version preface of a
// binary-framed connection, and the first byte of every binary storage
// blob. The value is chosen from the range a gob stream can never start
// with — gob's leading byte-count varint begins with 0x00..0x7F (small
// counts) or 0xF8..0xFF (multi-byte counts) — so one byte suffices to
// tell the two codecs apart on both the wire and the disk.
const (
	binMagic   = 0xBC
	binVersion = 0x01
)

// MaxFrame bounds a single wire frame (and with it the decode buffer a
// peer can make this node allocate). Larger messages should not exist:
// the biggest legitimate payloads are result archives, well under this.
const MaxFrame = 1 << 26 // 64 MiB

// ErrCorrupt reports a malformed binary encoding: a truncated field, a
// length exceeding the available bytes, a non-canonical bool, an
// unknown message kind or trailing garbage.
var ErrCorrupt = errors.New("proto: corrupt binary encoding")

// Message kind bytes. Wire-stable: append new kinds, never renumber.
const (
	kindInvalid uint8 = iota
	kindSubmit
	kindSubmitAck
	kindPoll
	kindResults
	kindSyncRequest
	kindSyncReply
	kindFetchResult
	kindFetchReply
	kindHeartbeat
	kindHeartbeatAck
	kindTaskResult
	kindTaskResultAck
	kindTaskCancel
	kindServerSync
	kindServerSyncReply
	kindReplicaUpdate
	kindReplicaAck
	kindShardMapRequest
	kindShardMapReply
	kindShardRedirect
	kindShardSync
	kindShardSyncAck
	kindStealRequest
	kindStealGrant
	kindJobRecord // storage blobs only; JobRecord is not a Message
	kindSimFault
	kindSimVerdict
)

// kindOf maps a message to its wire kind byte (0 when unregistered).
func kindOf(msg Message) uint8 {
	switch msg.(type) {
	case *Submit:
		return kindSubmit
	case *SubmitAck:
		return kindSubmitAck
	case *Poll:
		return kindPoll
	case *Results:
		return kindResults
	case *SyncRequest:
		return kindSyncRequest
	case *SyncReply:
		return kindSyncReply
	case *FetchResult:
		return kindFetchResult
	case *FetchReply:
		return kindFetchReply
	case *Heartbeat:
		return kindHeartbeat
	case *HeartbeatAck:
		return kindHeartbeatAck
	case *TaskResult:
		return kindTaskResult
	case *TaskResultAck:
		return kindTaskResultAck
	case *TaskCancel:
		return kindTaskCancel
	case *ServerSync:
		return kindServerSync
	case *ServerSyncReply:
		return kindServerSyncReply
	case *ReplicaUpdate:
		return kindReplicaUpdate
	case *ReplicaAck:
		return kindReplicaAck
	case *ShardMapRequest:
		return kindShardMapRequest
	case *ShardMapReply:
		return kindShardMapReply
	case *ShardRedirect:
		return kindShardRedirect
	case *ShardSync:
		return kindShardSync
	case *ShardSyncAck:
		return kindShardSyncAck
	case *StealRequest:
		return kindStealRequest
	case *StealGrant:
		return kindStealGrant
	case *SimFault:
		return kindSimFault
	case *SimVerdict:
		return kindSimVerdict
	default:
		return kindInvalid
	}
}

// ---------------------------------------------------------------------
// Pooled encode buffers
// ---------------------------------------------------------------------

// EncodeBuffer is a pooled scratch buffer for frame encoding. The
// transport borrows one per batch flush, appends frames into B and
// returns it; steady-state sends therefore allocate nothing.
type EncodeBuffer struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return &EncodeBuffer{B: make([]byte, 0, 4096)} }}

// GetBuffer borrows a pooled encode buffer (len 0).
func GetBuffer() *EncodeBuffer { return bufPool.Get().(*EncodeBuffer) }

// PutBuffer returns a buffer to the pool. Oversized buffers (a one-off
// giant batch) are dropped instead of pinning their memory forever.
func PutBuffer(b *EncodeBuffer) {
	if b == nil || cap(b.B) > 1<<20 {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// ---------------------------------------------------------------------
// Append primitives
// ---------------------------------------------------------------------

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBytes length-prefixes b with a +1 scheme: 0 encodes nil, n+1
// encodes a (possibly empty) slice of n bytes, so nil survives a round
// trip — handlers and tests distinguish "no payload" from "empty".
func appendBytes(dst []byte, b []byte) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendTime encodes an instant: marker 0 for the zero time, else
// marker 1 + unix seconds (zigzag) + nanoseconds. The location is not
// carried — decoding yields the same instant in UTC, which is all the
// protocol compares (deadline ordering).
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendVarint(dst, t.Unix())
	return binary.AppendUvarint(dst, uint64(t.Nanosecond()))
}

func appendCallID(dst []byte, c CallID) []byte {
	dst = appendString(dst, string(c.User))
	dst = binary.AppendUvarint(dst, uint64(c.Session))
	return binary.AppendUvarint(dst, uint64(c.Seq))
}

func appendTaskID(dst []byte, t TaskID) []byte {
	dst = appendCallID(dst, t.Call)
	return binary.AppendUvarint(dst, uint64(t.Instance))
}

// appendSlice encodes xs with the +1 nil-preserving count scheme.
func appendSlice[T any](dst []byte, xs []T, app func([]byte, T) []byte) []byte {
	if xs == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(xs))+1)
	for i := range xs {
		dst = app(dst, xs[i])
	}
	return dst
}

func appendSeq(dst []byte, s RPCSeq) []byte  { return binary.AppendUvarint(dst, uint64(s)) }
func appendNode(dst []byte, n NodeID) []byte { return appendString(dst, string(n)) }
func appendCall(dst []byte, c CallID) []byte { return appendCallID(dst, c) }
func appendTask(dst []byte, t TaskID) []byte { return appendTaskID(dst, t) }
func appendDur(dst []byte, d time.Duration) []byte {
	return binary.AppendVarint(dst, int64(d))
}

// ---------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------

// internTable deduplicates decoded strings. The protocol's strings are
// a tiny, hot set (node IDs, user IDs, service names) repeated in
// nearly every message; interning turns their per-decode allocation
// into a map probe, which Go performs without allocating for a
// []byte-keyed lookup. Both table size and entry length are capped so
// adversarial or high-cardinality inputs (error strings) degrade to
// plain allocation instead of growing the table without bound.
type internTable struct{ m map[string]string }

const (
	maxInternEntries = 4096
	maxInternLen     = 128
)

func (t *internTable) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if t == nil || len(b) > maxInternLen {
		return string(b)
	}
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if t.m == nil {
		t.m = make(map[string]string)
	}
	if len(t.m) < maxInternEntries {
		t.m[s] = s
	}
	return s
}

// binReader decodes one frame or blob in place. Errors are sticky:
// after the first malformed field every further read is a no-op
// returning zero values, and the caller checks err once at the end.
type binReader struct {
	buf    []byte
	pos    int
	err    error
	intern *internTable
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *binReader) remaining() int { return len(r.buf) - r.pos }

func (r *binReader) u8() byte {
	if r.err != nil || r.pos >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

// take returns n bytes of the frame without copying; the caller must
// copy before the frame buffer is reused. A length beyond the bytes
// actually present is corruption, detected before any allocation.
func (r *binReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *binReader) str() string {
	b := r.take(r.uvarint())
	if r.err != nil {
		return ""
	}
	return r.intern.get(b)
}

func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if n == 0 {
		return nil
	}
	b := r.take(n - 1)
	if r.err != nil {
		return nil
	}
	// make+copy, not append: append of zero elements onto nil would
	// turn an encoded empty slice back into nil.
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (r *binReader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

func (r *binReader) time() time.Time {
	switch r.u8() {
	case 0:
		return time.Time{}
	case 1:
		sec := r.varint()
		nsec := r.uvarint()
		if nsec >= uint64(time.Second) {
			r.fail()
			return time.Time{}
		}
		return time.Unix(sec, int64(nsec)).UTC()
	default:
		r.fail()
		return time.Time{}
	}
}

func (r *binReader) dur() time.Duration { return time.Duration(r.varint()) }
func (r *binReader) seq() RPCSeq        { return RPCSeq(r.uvarint()) }
func (r *binReader) node() NodeID       { return NodeID(r.str()) }

func (r *binReader) call() CallID {
	return CallID{User: UserID(r.str()), Session: SessionID(r.uvarint()), Seq: r.seq()}
}

func (r *binReader) task() TaskID {
	return TaskID{Call: r.call(), Instance: uint32(r.uvarint())}
}

// readSlice decodes a +1-counted slice. The declared element count is
// validated against the remaining bytes (every element encodes at
// least one byte) and the initial capacity is additionally capped:
// in-memory elements can be far larger than their encodings (a
// JobRecord is ~176 bytes, its minimal encoding ~14), so trusting a
// corrupt count with a full preallocation would let one frame force
// an allocation orders of magnitude beyond the input. Legitimate
// large slices just grow through append's amortized doubling.
func readSlice[T any](r *binReader, rd func(*binReader) T) []T {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(r.remaining()) {
		r.fail()
		return nil
	}
	capHint := n
	if capHint > 256 {
		capHint = 256
	}
	out := make([]T, 0, capHint)
	for i := uint64(0); i < n; i++ {
		out = append(out, rd(r))
		if r.err != nil {
			return nil
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Per-type bodies
// ---------------------------------------------------------------------

func appendResult(dst []byte, res Result) []byte {
	dst = appendCallID(dst, res.Call)
	dst = appendBytes(dst, res.Output)
	dst = appendString(dst, res.Err)
	return appendNode(dst, res.Server)
}

func readResult(r *binReader) Result {
	return Result{Call: r.call(), Output: r.bytes(), Err: r.str(), Server: r.node()}
}

func appendAssignment(dst []byte, t TaskAssignment) []byte {
	dst = appendTaskID(dst, t.Task)
	dst = appendString(dst, t.Service)
	dst = appendBytes(dst, t.Params)
	dst = appendDur(dst, t.ExecTime)
	return binary.AppendVarint(dst, int64(t.ResultSize))
}

func readAssignment(r *binReader) TaskAssignment {
	return TaskAssignment{Task: r.task(), Service: r.str(), Params: r.bytes(),
		ExecTime: r.dur(), ResultSize: int(r.varint())}
}

func appendSessionMax(dst []byte, m SessionMax) []byte {
	dst = appendString(dst, string(m.User))
	dst = binary.AppendUvarint(dst, uint64(m.Session))
	return appendSeq(dst, m.MaxSeq)
}

func readSessionMax(r *binReader) SessionMax {
	return SessionMax{User: UserID(r.str()), Session: SessionID(r.uvarint()), MaxSeq: r.seq()}
}

func appendSessionSeqs(dst []byte, s SessionSeqs) []byte {
	dst = appendString(dst, string(s.User))
	dst = binary.AppendUvarint(dst, uint64(s.Session))
	return appendSlice(dst, s.Seqs, appendSeq)
}

func readSessionSeqs(r *binReader) SessionSeqs {
	return SessionSeqs{User: UserID(r.str()), Session: SessionID(r.uvarint()),
		Seqs: readSlice(r, (*binReader).seq)}
}

func appendShardMapState(dst []byte, s ShardMapState) []byte {
	dst = binary.AppendUvarint(dst, s.Version)
	dst = binary.AppendVarint(dst, int64(s.VNodes))
	return appendSlice(dst, s.Rings, func(dst []byte, ring []NodeID) []byte {
		return appendSlice(dst, ring, appendNode)
	})
}

func readShardMapState(r *binReader) ShardMapState {
	return ShardMapState{Version: r.uvarint(), VNodes: int(r.varint()),
		Rings: readSlice(r, func(r *binReader) []NodeID {
			return readSlice(r, (*binReader).node)
		})}
}

// appendJob adapts appendJobBody to appendSlice's by-value element
// signature (the one place job records are encoded from a slice).
func appendJob(dst []byte, j JobRecord) []byte { return appendJobBody(dst, &j) }

func appendJobBody(dst []byte, j *JobRecord) []byte {
	dst = appendCallID(dst, j.Call)
	dst = appendString(dst, j.Service)
	dst = appendBytes(dst, j.Params)
	dst = appendDur(dst, j.ExecTime)
	dst = binary.AppendVarint(dst, int64(j.ResultSize))
	dst = appendTime(dst, j.Deadline)
	dst = append(dst, byte(j.State))
	dst = binary.AppendUvarint(dst, uint64(j.Instance))
	dst = appendBytes(dst, j.Output)
	dst = appendString(dst, j.ResultErr)
	return appendNode(dst, j.Server)
}

func readJobBody(r *binReader) JobRecord {
	return JobRecord{
		Call:       r.call(),
		Service:    r.str(),
		Params:     r.bytes(),
		ExecTime:   r.dur(),
		ResultSize: int(r.varint()),
		Deadline:   r.time(),
		State:      TaskState(r.u8()),
		Instance:   uint32(r.uvarint()),
		Output:     r.bytes(),
		ResultErr:  r.str(),
		Server:     r.node(),
	}
}

// appendMessageBody appends msg's binary body (no kind byte, no magic).
// It panics on an unregistered message type, exactly as the gob path
// panics on a type missing its gob.Register: a programming error.
func appendMessageBody(dst []byte, msg Message) []byte {
	switch m := msg.(type) {
	case *Submit:
		dst = appendCallID(dst, m.Call)
		dst = appendString(dst, m.Service)
		dst = appendBytes(dst, m.Params)
		dst = appendDur(dst, m.ExecTime)
		dst = binary.AppendVarint(dst, int64(m.ResultSize))
		return appendDur(dst, m.Deadline)
	case *SubmitAck:
		dst = appendCallID(dst, m.Call)
		return appendSeq(dst, m.MaxSeq)
	case *Poll:
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		return appendSlice(dst, m.Have, appendSeq)
	case *Results:
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		return appendSlice(dst, m.Results, appendResult)
	case *SyncRequest:
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		dst = appendSeq(dst, m.MaxSeq)
		return appendBool(dst, m.HaveLog)
	case *SyncReply:
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		dst = appendSeq(dst, m.MaxSeq)
		return appendSlice(dst, m.Known, appendSeq)
	case *FetchResult:
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		return appendSeq(dst, m.Seq)
	case *FetchReply:
		dst = appendCallID(dst, m.Call)
		dst = appendBool(dst, m.Known)
		dst = appendBool(dst, m.Finished)
		return appendResult(dst, m.Result)
	case *Heartbeat:
		dst = appendNode(dst, m.From)
		dst = append(dst, byte(m.Role))
		dst = binary.AppendVarint(dst, int64(m.Capacity))
		return appendBool(dst, m.WantWork)
	case *HeartbeatAck:
		dst = appendNode(dst, m.From)
		dst = appendSlice(dst, m.Tasks, appendAssignment)
		return appendSlice(dst, m.Coordinators, appendNode)
	case *TaskResult:
		dst = appendNode(dst, m.From)
		dst = appendTaskID(dst, m.Task)
		dst = appendBytes(dst, m.Output)
		dst = appendString(dst, m.Err)
		return appendDur(dst, m.Exec)
	case *TaskResultAck:
		return appendTaskID(dst, m.Task)
	case *TaskCancel:
		return appendTaskID(dst, m.Task)
	case *ServerSync:
		dst = appendNode(dst, m.From)
		dst = appendSlice(dst, m.Tasks, appendTask)
		return appendSlice(dst, m.Running, appendTask)
	case *ServerSyncReply:
		dst = appendSlice(dst, m.Resend, appendTask)
		return appendSlice(dst, m.Drop, appendTask)
	case *ReplicaUpdate:
		dst = appendNode(dst, m.From)
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Round)
		dst = appendSlice(dst, m.Jobs, appendJob)
		return appendSlice(dst, m.MaxSeqs, appendSessionMax)
	case *ReplicaAck:
		dst = appendNode(dst, m.From)
		dst = binary.AppendUvarint(dst, m.Epoch)
		return binary.AppendUvarint(dst, m.Round)
	case *ShardMapRequest:
		return appendNode(dst, m.From)
	case *ShardMapReply:
		return appendShardMapState(dst, m.Map)
	case *ShardRedirect:
		dst = appendNode(dst, m.From)
		dst = appendString(dst, string(m.User))
		dst = binary.AppendUvarint(dst, uint64(m.Session))
		dst = appendCallID(dst, m.Call)
		dst = binary.AppendVarint(dst, int64(m.Shard))
		return appendShardMapState(dst, m.Map)
	case *ShardSync:
		dst = appendNode(dst, m.From)
		dst = binary.AppendVarint(dst, int64(m.Shard))
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Round)
		dst = appendSlice(dst, m.Jobs, appendJob)
		return appendSlice(dst, m.Sessions, appendSessionSeqs)
	case *ShardSyncAck:
		dst = appendNode(dst, m.From)
		dst = binary.AppendVarint(dst, int64(m.Shard))
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Round)
		return appendSlice(dst, m.Want, appendCall)
	case *StealRequest:
		dst = appendNode(dst, m.From)
		dst = binary.AppendVarint(dst, int64(m.Shard))
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Round)
		return binary.AppendVarint(dst, int64(m.Capacity))
	case *StealGrant:
		dst = appendNode(dst, m.From)
		dst = binary.AppendVarint(dst, int64(m.Shard))
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Round)
		return appendSlice(dst, m.Jobs, appendJob)
	case *SimFault:
		dst = appendString(dst, m.Suite)
		dst = appendString(dst, m.Scenario)
		dst = appendString(dst, m.Cell)
		dst = appendString(dst, m.Fault)
		dst = appendNode(dst, m.Node)
		dst = appendNode(dst, m.Peer)
		dst = appendDur(dst, m.At)
		return appendString(dst, m.Detail)
	case *SimVerdict:
		dst = appendString(dst, m.Suite)
		dst = appendString(dst, m.Scenario)
		dst = appendString(dst, m.Cell)
		dst = appendString(dst, m.Verdict)
		dst = appendString(dst, m.Digest)
		dst = binary.AppendVarint(dst, int64(m.Delivered))
		dst = binary.AppendVarint(dst, int64(m.Expected))
		dst = binary.AppendVarint(dst, int64(m.Faults))
		return appendDur(dst, m.Elapsed)
	default:
		panic("proto: appendMessageBody: unregistered message type " + msg.Kind())
	}
}

// readMessageBody decodes the body for a kind byte. Unknown kinds set
// the reader's error (a peer speaking a newer protocol revision).
func readMessageBody(r *binReader, kind uint8) Message {
	switch kind {
	case kindSubmit:
		return &Submit{Call: r.call(), Service: r.str(), Params: r.bytes(),
			ExecTime: r.dur(), ResultSize: int(r.varint()), Deadline: r.dur()}
	case kindSubmitAck:
		return &SubmitAck{Call: r.call(), MaxSeq: r.seq()}
	case kindPoll:
		return &Poll{User: UserID(r.str()), Session: SessionID(r.uvarint()),
			Have: readSlice(r, (*binReader).seq)}
	case kindResults:
		return &Results{User: UserID(r.str()), Session: SessionID(r.uvarint()),
			Results: readSlice(r, readResult)}
	case kindSyncRequest:
		return &SyncRequest{User: UserID(r.str()), Session: SessionID(r.uvarint()),
			MaxSeq: r.seq(), HaveLog: r.bool()}
	case kindSyncReply:
		return &SyncReply{User: UserID(r.str()), Session: SessionID(r.uvarint()),
			MaxSeq: r.seq(), Known: readSlice(r, (*binReader).seq)}
	case kindFetchResult:
		return &FetchResult{User: UserID(r.str()), Session: SessionID(r.uvarint()), Seq: r.seq()}
	case kindFetchReply:
		return &FetchReply{Call: r.call(), Known: r.bool(), Finished: r.bool(),
			Result: readResult(r)}
	case kindHeartbeat:
		return &Heartbeat{From: r.node(), Role: Role(r.u8()),
			Capacity: int(r.varint()), WantWork: r.bool()}
	case kindHeartbeatAck:
		return &HeartbeatAck{From: r.node(), Tasks: readSlice(r, readAssignment),
			Coordinators: readSlice(r, (*binReader).node)}
	case kindTaskResult:
		return &TaskResult{From: r.node(), Task: r.task(), Output: r.bytes(),
			Err: r.str(), Exec: r.dur()}
	case kindTaskResultAck:
		return &TaskResultAck{Task: r.task()}
	case kindTaskCancel:
		return &TaskCancel{Task: r.task()}
	case kindServerSync:
		return &ServerSync{From: r.node(), Tasks: readSlice(r, (*binReader).task),
			Running: readSlice(r, (*binReader).task)}
	case kindServerSyncReply:
		return &ServerSyncReply{Resend: readSlice(r, (*binReader).task),
			Drop: readSlice(r, (*binReader).task)}
	case kindReplicaUpdate:
		return &ReplicaUpdate{From: r.node(), Epoch: r.uvarint(), Round: r.uvarint(),
			Jobs: readSlice(r, readJobBody), MaxSeqs: readSlice(r, readSessionMax)}
	case kindReplicaAck:
		return &ReplicaAck{From: r.node(), Epoch: r.uvarint(), Round: r.uvarint()}
	case kindShardMapRequest:
		return &ShardMapRequest{From: r.node()}
	case kindShardMapReply:
		return &ShardMapReply{Map: readShardMapState(r)}
	case kindShardRedirect:
		return &ShardRedirect{From: r.node(), User: UserID(r.str()),
			Session: SessionID(r.uvarint()), Call: r.call(),
			Shard: int(r.varint()), Map: readShardMapState(r)}
	case kindShardSync:
		return &ShardSync{From: r.node(), Shard: int(r.varint()),
			Epoch: r.uvarint(), Round: r.uvarint(),
			Jobs: readSlice(r, readJobBody), Sessions: readSlice(r, readSessionSeqs)}
	case kindShardSyncAck:
		return &ShardSyncAck{From: r.node(), Shard: int(r.varint()),
			Epoch: r.uvarint(), Round: r.uvarint(),
			Want: readSlice(r, (*binReader).call)}
	case kindStealRequest:
		return &StealRequest{From: r.node(), Shard: int(r.varint()),
			Epoch: r.uvarint(), Round: r.uvarint(), Capacity: int(r.varint())}
	case kindStealGrant:
		return &StealGrant{From: r.node(), Shard: int(r.varint()),
			Epoch: r.uvarint(), Round: r.uvarint(),
			Jobs: readSlice(r, readJobBody)}
	case kindSimFault:
		return &SimFault{Suite: r.str(), Scenario: r.str(), Cell: r.str(),
			Fault: r.str(), Node: r.node(), Peer: r.node(),
			At: r.dur(), Detail: r.str()}
	case kindSimVerdict:
		return &SimVerdict{Suite: r.str(), Scenario: r.str(), Cell: r.str(),
			Verdict: r.str(), Digest: r.str(), Delivered: int(r.varint()),
			Expected: int(r.varint()), Faults: int(r.varint()), Elapsed: r.dur()}
	default:
		r.fail()
		return nil
	}
}
