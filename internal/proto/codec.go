package proto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Wire framing of the real TCP transport.
//
// The default binary framing opens every connection with a two-byte
// preface — the magic byte 0xBC and a codec version — followed by
// length-prefixed frames: a big-endian uint32 frame length, then a
// kind byte, the sender's node ID and the message body in the
// hand-written binary encoding (binary.go). The legacy framing is a
// gob stream of envelopes decoded until EOF. A receiver tells the two
// apart from the first byte alone (a gob stream can never start with
// 0xBC, see binMagic), so nodes on either codec interoperate: the
// -wire flag only chooses what a node *sends*.
//
// Storage blobs (EncodeJob/EncodeMessage) use the same magic: binary
// blobs are [magic, version, kind, body]; anything else is decoded as
// gob, so logs and WALs written by pre-binary builds recover under the
// binary default.
//
// init registers every concrete message type so that gob can move them
// through the legacy transport's envelope (whose payload is a Message
// interface value) and through gob storage blobs.
func init() {
	gob.Register(&Submit{})
	gob.Register(&SubmitAck{})
	gob.Register(&Poll{})
	gob.Register(&Results{})
	gob.Register(&SyncRequest{})
	gob.Register(&SyncReply{})
	gob.Register(&FetchResult{})
	gob.Register(&FetchReply{})
	gob.Register(&Heartbeat{})
	gob.Register(&HeartbeatAck{})
	gob.Register(&TaskResult{})
	gob.Register(&TaskResultAck{})
	gob.Register(&TaskCancel{})
	gob.Register(&ServerSync{})
	gob.Register(&ServerSyncReply{})
	gob.Register(&ReplicaUpdate{})
	gob.Register(&ReplicaAck{})
	gob.Register(&ShardMapRequest{})
	gob.Register(&ShardMapReply{})
	gob.Register(&ShardRedirect{})
	gob.Register(&ShardSync{})
	gob.Register(&ShardSyncAck{})
	gob.Register(&StealRequest{})
	gob.Register(&StealGrant{})
	gob.Register(&SimFault{})
	gob.Register(&SimVerdict{})
}

// Wire codec names, shared by the -wire flags, rt.Config.Wire and
// gridrpc.Config.Wire.
const (
	// WireBinary is the default: length-prefixed hand-written binary
	// frames behind a magic version preface.
	WireBinary = "binary"
	// WireGob is the legacy gob stream — what every pre-binary build
	// speaks. Receivers understand both regardless of this setting.
	WireGob = "gob"
)

// ParseWire normalizes a -wire flag value ("" means the default).
func ParseWire(s string) (string, error) {
	switch s {
	case "", WireBinary:
		return WireBinary, nil
	case WireGob:
		return WireGob, nil
	}
	return "", fmt.Errorf("proto: unknown wire codec %q (want %s or %s)", s, WireBinary, WireGob)
}

// Codec selects a storage encoding for job records and logged
// messages. The zero value is the binary codec — the default
// everywhere; CodecGob remains for mixed deployments and comparisons.
// Decoding always auto-detects, whatever the Codec.
type Codec uint8

const (
	// CodecBinary is the hand-written binary encoding (the default).
	CodecBinary Codec = iota
	// CodecGob is the reflection-based legacy encoding.
	CodecGob
)

// CodecForWire maps a wire codec name to the matching storage codec,
// so one -wire flag keeps a daemon's connections and its durable blobs
// on the same encoding.
func CodecForWire(wire string) Codec {
	if wire == WireGob {
		return CodecGob
	}
	return CodecBinary
}

// String returns the codec name used in flags and experiment tables.
func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// EncodeJob serializes a job record for durable storage.
func (c Codec) EncodeJob(rec *JobRecord) []byte {
	if c == CodecGob {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			// A JobRecord contains only gob-encodable fields; failure
			// here is a programming error, not an I/O condition.
			panic(fmt.Sprintf("proto: encode job record: %v", err))
		}
		return buf.Bytes()
	}
	dst := make([]byte, 0, 3+rec.wireSize())
	dst = append(dst, binMagic, binVersion, kindJobRecord)
	return appendJobBody(dst, rec)
}

// EncodeMessage serializes any registered protocol message with a kind
// tag, for message logs and result logs.
func (c Codec) EncodeMessage(msg Message) []byte {
	if c == CodecGob {
		var buf bytes.Buffer
		env := wireEnvelope{Msg: msg}
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			panic(fmt.Sprintf("proto: encode %s: %v", msg.Kind(), err))
		}
		return buf.Bytes()
	}
	kind := kindOf(msg)
	if kind == kindInvalid {
		panic("proto: encode unregistered message type " + msg.Kind())
	}
	// WireSize over-estimates framing generously (headerSize per
	// record), so the single allocation below almost never regrows.
	dst := make([]byte, 0, 3+msg.WireSize())
	dst = append(dst, binMagic, binVersion, kind)
	return appendMessageBody(dst, msg)
}

// EncodeJob serializes a job record for durable storage with the
// default binary codec.
func EncodeJob(rec *JobRecord) []byte { return CodecBinary.EncodeJob(rec) }

// EncodeMessage serializes any registered protocol message with the
// default binary codec.
func EncodeMessage(msg Message) []byte { return CodecBinary.EncodeMessage(msg) }

// Decoder decodes storage blobs. The zero value is ready; a decoder
// that is reused across records interns repeated strings (node IDs,
// users, services) so steady-state decodes allocate only the message
// itself. Decoders are not safe for concurrent use.
type Decoder struct {
	intern internTable
	// rd is the per-call reader, embedded so decoding does not heap-
	// allocate it (passing a stack reader through the generic slice
	// readers makes it escape).
	rd binReader
}

// DecodeJob parses a job record previously produced by any codec's
// EncodeJob (binary blobs self-identify by magic; anything else is
// gob, so WALs written by pre-binary builds recover).
func (d *Decoder) DecodeJob(raw []byte) (*JobRecord, error) {
	if len(raw) > 0 && raw[0] == binMagic {
		if len(raw) < 3 {
			// Unambiguously a torn binary blob — do not fall through
			// to gob, whose error would misdirect the triage.
			return nil, fmt.Errorf("proto: decode job record: %w (truncated header)", ErrCorrupt)
		}
		if raw[1] != binVersion {
			return nil, fmt.Errorf("proto: decode job record: unknown codec version %d", raw[1])
		}
		if raw[2] != kindJobRecord {
			return nil, fmt.Errorf("proto: decode job record: kind %d is not a job record", raw[2])
		}
		d.rd = binReader{buf: raw[3:], intern: &d.intern}
		rec := readJobBody(&d.rd)
		if d.rd.err != nil {
			return nil, fmt.Errorf("proto: decode job record: %w", d.rd.err)
		}
		if d.rd.remaining() != 0 {
			return nil, fmt.Errorf("proto: decode job record: %w (trailing bytes)", ErrCorrupt)
		}
		return &rec, nil
	}
	var rec JobRecord
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("proto: decode job record: %w", err)
	}
	return &rec, nil
}

// DecodeMessage parses a message previously produced by any codec's
// EncodeMessage, auto-detecting the encoding like DecodeJob.
func (d *Decoder) DecodeMessage(raw []byte) (Message, error) {
	if len(raw) > 0 && raw[0] == binMagic {
		if len(raw) < 3 {
			// Unambiguously a torn binary blob — do not fall through
			// to gob, whose error would misdirect the triage.
			return nil, fmt.Errorf("proto: decode message: %w (truncated header)", ErrCorrupt)
		}
		if raw[1] != binVersion {
			return nil, fmt.Errorf("proto: decode message: unknown codec version %d", raw[1])
		}
		d.rd = binReader{buf: raw[3:], intern: &d.intern}
		msg := readMessageBody(&d.rd, raw[2])
		if d.rd.err != nil {
			return nil, fmt.Errorf("proto: decode message kind %d: %w", raw[2], d.rd.err)
		}
		if d.rd.remaining() != 0 {
			return nil, fmt.Errorf("proto: decode message: %w (trailing bytes)", ErrCorrupt)
		}
		return msg, nil
	}
	var env wireEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return nil, fmt.Errorf("proto: decode message: %w", err)
	}
	if env.Msg == nil {
		return nil, fmt.Errorf("proto: decode message: empty envelope")
	}
	return env.Msg, nil
}

// DecodeJob parses a job record with a one-shot decoder.
func DecodeJob(raw []byte) (*JobRecord, error) {
	var d Decoder
	return d.DecodeJob(raw)
}

// DecodeMessage parses a message with a one-shot decoder.
func DecodeMessage(raw []byte) (Message, error) {
	var d Decoder
	return d.DecodeMessage(raw)
}

// wireEnvelope is the gob storage envelope (legacy EncodeMessage).
type wireEnvelope struct {
	Msg Message
}

// ---------------------------------------------------------------------
// Binary wire framing
// ---------------------------------------------------------------------

// FramePreface is written once at the start of every binary-framed
// connection: magic + codec version. Receivers dispatch on the first
// byte (IsBinaryPreface) and verify the second (CheckPrefaceVersion).
var FramePreface = [2]byte{binMagic, binVersion}

// IsBinaryPreface reports whether a connection's first byte announces
// binary framing; any other value is the start of a legacy gob stream.
func IsBinaryPreface(b byte) bool { return b == binMagic }

// CheckPrefaceVersion validates a binary preface's version byte.
func CheckPrefaceVersion(v byte) error {
	if v != binVersion {
		return fmt.Errorf("proto: unknown wire codec version %d", v)
	}
	return nil
}

// AppendFrame appends one length-prefixed wire frame carrying (from,
// msg) to dst and returns the extended slice. Zero allocation when dst
// has capacity — the transport reuses pooled buffers across batches.
// A message whose encoding exceeds MaxFrame is refused: dst comes back
// truncated to its original length with a non-nil error, because every
// receiver would reject the oversized length prefix and tear down the
// connection — taking the rest of the batch with it. The sender drops
// just that message instead (ordinary best-effort loss).
func AppendFrame(dst []byte, from NodeID, msg Message) ([]byte, error) {
	kind := kindOf(msg)
	if kind == kindInvalid {
		panic("proto: frame unregistered message type " + msg.Kind())
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, kind)
	dst = appendString(dst, string(from))
	dst = appendMessageBody(dst, msg)
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("proto: %s encodes to %d bytes, over the %d frame cap", msg.Kind(), n, MaxFrame)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// WireDecoder reads binary frames from a connection (after the caller
// consumed and verified the two-byte preface). One frame buffer is
// reused for the life of the connection and strings are interned
// across frames, so a sustained stream decodes without per-frame
// buffer allocations or intermediate copies — bytes go from the socket
// into the frame buffer and are parsed in place.
type WireDecoder struct {
	r      io.Reader
	hdr    [4]byte
	buf    []byte
	intern internTable
	rd     binReader // reused per frame; see Decoder.rd
}

// NewWireDecoder creates a frame decoder over r.
func NewWireDecoder(r io.Reader) *WireDecoder { return &WireDecoder{r: r} }

// Next reads one frame. It returns io.EOF exactly at a clean frame
// boundary (connection closed between frames) and ErrUnexpectedEOF on
// a torn frame; any malformed length or body is an error, never a
// panic or an unbounded allocation.
func (d *WireDecoder) Next() (NodeID, Message, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return "", nil, err // io.EOF only at a clean boundary
	}
	n := binary.BigEndian.Uint32(d.hdr[:])
	if n == 0 || n > MaxFrame {
		return "", nil, fmt.Errorf("proto: frame length %d out of range", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", nil, err
	}
	d.rd = binReader{buf: buf, intern: &d.intern}
	kind := d.rd.u8()
	from := d.rd.node()
	msg := readMessageBody(&d.rd, kind)
	if d.rd.err != nil {
		return "", nil, fmt.Errorf("proto: decode frame kind %d: %w", kind, d.rd.err)
	}
	if d.rd.remaining() != 0 {
		return "", nil, fmt.Errorf("proto: decode frame: %w (trailing bytes)", ErrCorrupt)
	}
	return from, msg, nil
}

// ReadPreface consumes and verifies a binary connection preface from a
// buffered reader whose next byte is known (via Peek) to be the magic.
func ReadPreface(br *bufio.Reader) error {
	var pre [2]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return err
	}
	if !IsBinaryPreface(pre[0]) {
		return fmt.Errorf("proto: not a binary preface: 0x%02x", pre[0])
	}
	return CheckPrefaceVersion(pre[1])
}
