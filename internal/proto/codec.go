package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire framing of the real TCP transport: a connection carries a gob
// stream of envelopes (sender node ID + one registered Message each),
// and the receiver decodes envelopes until EOF — length-of-stream
// framing, no count or length prefix. The pooled transport keeps a
// connection open and appends envelopes (gob transmits each concrete
// type's descriptor once per stream); the legacy connection-per-message
// transport emits the shortest valid stream, exactly one envelope,
// then closes. Both framings are therefore read by one code path and
// no message kinds differ between them.
//
// init registers every concrete message type so that gob can move them
// through the real TCP transport's envelope (whose payload is a
// Message interface value).
func init() {
	gob.Register(&Submit{})
	gob.Register(&SubmitAck{})
	gob.Register(&Poll{})
	gob.Register(&Results{})
	gob.Register(&SyncRequest{})
	gob.Register(&SyncReply{})
	gob.Register(&FetchResult{})
	gob.Register(&FetchReply{})
	gob.Register(&Heartbeat{})
	gob.Register(&HeartbeatAck{})
	gob.Register(&TaskResult{})
	gob.Register(&TaskResultAck{})
	gob.Register(&TaskCancel{})
	gob.Register(&ServerSync{})
	gob.Register(&ServerSyncReply{})
	gob.Register(&ReplicaUpdate{})
	gob.Register(&ReplicaAck{})
	gob.Register(&ShardMapRequest{})
	gob.Register(&ShardMapReply{})
	gob.Register(&ShardRedirect{})
	gob.Register(&ShardSync{})
	gob.Register(&ShardSyncAck{})
	gob.Register(&StealRequest{})
	gob.Register(&StealGrant{})
}

// EncodeJob serializes a job record for durable storage.
func EncodeJob(rec *JobRecord) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		// A JobRecord contains only gob-encodable fields; failure here
		// is a programming error, not an I/O condition.
		panic(fmt.Sprintf("proto: encode job record: %v", err))
	}
	return buf.Bytes()
}

// DecodeJob parses a job record previously encoded with EncodeJob.
func DecodeJob(raw []byte) (*JobRecord, error) {
	var rec JobRecord
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("proto: decode job record: %w", err)
	}
	return &rec, nil
}

// EncodeMessage serializes any registered protocol message with a kind
// tag, for message logs and the real transport.
func EncodeMessage(msg Message) []byte {
	var buf bytes.Buffer
	env := wireEnvelope{Msg: msg}
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		panic(fmt.Sprintf("proto: encode %s: %v", msg.Kind(), err))
	}
	return buf.Bytes()
}

// DecodeMessage parses a message encoded with EncodeMessage.
func DecodeMessage(raw []byte) (Message, error) {
	var env wireEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return nil, fmt.Errorf("proto: decode message: %w", err)
	}
	if env.Msg == nil {
		return nil, fmt.Errorf("proto: decode message: empty envelope")
	}
	return env.Msg, nil
}

type wireEnvelope struct {
	Msg Message
}
