// Package proto defines the RPC-V wire protocol: component identifiers,
// message types exchanged between clients, coordinators and servers, and
// the job/task state machine maintained by coordinators.
//
// Any client RPC call execution in the system is identified by the triple
// (user unique ID, session unique ID, RPC unique ID), exactly as in the
// paper (section 4.2, "Managing Message Logs"). A session corresponds to
// one login of the user into the system; any instance of the client
// program may reconnect from a different address and retrieve results
// using these IDs alone.
package proto

import "fmt"

// NodeID identifies a component (client, coordinator or server) in the
// system. IDs are stable across crashes and restarts of the component:
// a restarting node keeps its NodeID, which is what allows log-based
// state synchronization after an intermittent crash.
type NodeID string

// Role classifies a component in the three-tier architecture.
type Role uint8

const (
	// RoleClient is the first tier: the application submitting RPCs.
	RoleClient Role = iota
	// RoleCoordinator is the middle tier: virtualization, scheduling,
	// forwarding, replication.
	RoleCoordinator
	// RoleServer is the third tier: the worker executing RPC services.
	RoleServer
)

// String returns the lower-case role name.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleCoordinator:
		return "coordinator"
	case RoleServer:
		return "server"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// UserID identifies a user of the grid.
type UserID string

// SessionID identifies one login session of a user. It is allocated by
// the client at session start and never reused.
type SessionID uint64

// RPCSeq is the per-session RPC submission counter. All client RPC
// submissions carry a unique, monotonically increasing counter value:
// this timestamp is the basis of the client/coordinator synchronization
// protocol.
type RPCSeq uint64

// CallID is the globally unique identifier of one client RPC call:
// the (user, session, rpc) triple from the paper.
type CallID struct {
	User    UserID
	Session SessionID
	Seq     RPCSeq
}

// String renders the call ID as user/session/seq.
func (c CallID) String() string {
	return fmt.Sprintf("%s/%d/%d", c.User, c.Session, c.Seq)
}

// Less orders call IDs lexicographically by (user, session, seq). The
// order is used only for deterministic iteration, never for agreement.
func (c CallID) Less(o CallID) bool {
	if c.User != o.User {
		return c.User < o.User
	}
	if c.Session != o.Session {
		return c.Session < o.Session
	}
	return c.Seq < o.Seq
}

// TaskID identifies one scheduled instance of a job on a server. The
// same CallID may map to several TaskIDs over time: on fault suspicion
// the coordinator schedules new instances of all RPC calls forwarded to
// the suspect ("on suspicion" replication strategy), and asynchrony can
// produce duplicated executions, which is why RPC-V guarantees
// at-least-once (not exactly-once) semantics.
type TaskID struct {
	Call     CallID
	Instance uint32
}

// String renders the task ID as call#instance.
func (t TaskID) String() string {
	return fmt.Sprintf("%s#%d", t.Call, t.Instance)
}
