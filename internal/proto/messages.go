package proto

import (
	"fmt"
	"time"
)

// Message is the interface implemented by every RPC-V protocol message.
//
// WireSize reports the serialized size of the message in bytes: the
// simulated network model charges size/bandwidth transfer time from
// it, and the binary codec sizes its encode buffers by it. Payload
// bytes (params, outputs, strings named in the formulas) are counted
// exactly; framing rides on headerSize per record and fixed
// per-element hints for embedded IDs (40 per TaskID, 16 per NodeID, 8
// per sequence number), which over-estimate the binary encoding for
// typical identifier lengths — a deployment whose user IDs alone run
// past ~32 bytes would tip ID-list messages the other way, costing an
// encode-buffer regrow and a netmodel undercharge, not correctness.
// TestWireSizeMatchesCodec pins the hint against the actual
// marshalled length over representative samples, so adding a field
// without updating WireSize fails loudly instead of silently skewing
// the accounting.
type Message interface {
	Kind() string
	WireSize() int
}

// headerSize is the approximate fixed framing cost of any message:
// identifiers, timestamps and the message tag.
const headerSize = 64

// ---------------------------------------------------------------------
// Client -> Coordinator
// ---------------------------------------------------------------------

// Submit carries one RPC call from a client to its preferred
// coordinator. Parameters are transmitted along with the call
// (synchronous data communication mode): either marshalled arguments or
// a compressed file archive, both represented by Params.
type Submit struct {
	Call     CallID
	Service  string        // function identifier on the server side
	Params   []byte        // serialized parameters or archive
	ExecTime time.Duration // hint for synthetic services; 0 for real ones
	// ResultSize is the synthetic result payload size produced by the
	// benchmark services; real services ignore it.
	ResultSize int
	// Deadline is a soft completion deadline, relative to the
	// coordinator's registration of the call. Coordinators running the
	// "deadline" scheduling policy order pending work
	// earliest-deadline-first; other policies and a zero value ignore
	// it. Soft: a missed deadline changes nothing about the at-least-
	// once execution guarantee.
	Deadline time.Duration
}

// Kind implements Message.
func (*Submit) Kind() string { return "submit" }

// WireSize implements Message.
func (m *Submit) WireSize() int { return headerSize + len(m.Service) + len(m.Params) }

// SubmitAck acknowledges the durable registration of a Submit on the
// coordinator. MaxSeq is the maximum RPC timestamp the coordinator knows
// for this (user, session); the client compares it with its own counter
// to detect lost submissions after a crash.
type SubmitAck struct {
	Call   CallID
	MaxSeq RPCSeq
}

// Kind implements Message.
func (*SubmitAck) Kind() string { return "submit-ack" }

// WireSize implements Message.
func (m *SubmitAck) WireSize() int { return headerSize }

// Poll asks the coordinator for any completed results for a session.
// The client collects RPC results by pulling the coordinator
// periodically; Have lists the sequence numbers whose results the client
// already holds, so the coordinator only returns new ones.
type Poll struct {
	User    UserID
	Session SessionID
	Have    []RPCSeq
}

// Kind implements Message.
func (*Poll) Kind() string { return "poll" }

// WireSize implements Message.
func (m *Poll) WireSize() int { return headerSize + 8*len(m.Have) }

// Results returns zero or more completed RPC results to the client.
type Results struct {
	User    UserID
	Session SessionID
	Results []Result
}

// Kind implements Message.
func (*Results) Kind() string { return "results" }

// WireSize implements Message.
func (m *Results) WireSize() int {
	n := headerSize
	for i := range m.Results {
		n += m.Results[i].wireSize()
	}
	return n
}

// Result is one completed RPC result.
type Result struct {
	Call   CallID
	Output []byte // serialized result or archive of new/modified files
	Err    string // non-empty if the service itself failed
	Server NodeID // worker that produced the result (informational)
}

func (r *Result) wireSize() int { return headerSize + len(r.Output) + len(r.Err) }

// SyncRequest opens a client/coordinator state synchronization. The
// client sends the maximum timestamp it has logged locally; the
// coordinator replies with a SyncReply carrying its own view, from which
// both determine received and lost messages, which are resent.
type SyncRequest struct {
	User    UserID
	Session SessionID
	MaxSeq  RPCSeq // highest sequence in the client's local log; 0 if none
	HaveLog bool   // whether the client still holds its local log
}

// Kind implements Message.
func (*SyncRequest) Kind() string { return "sync-request" }

// WireSize implements Message.
func (m *SyncRequest) WireSize() int { return headerSize }

// SyncReply answers a SyncRequest with the coordinator's known maximum
// timestamp and, when the client lost its log, the full list of logged
// sequence numbers so the client can rebuild its state.
type SyncReply struct {
	User    UserID
	Session SessionID
	MaxSeq  RPCSeq
	Known   []RPCSeq // present only when the client asked for the log list
}

// Kind implements Message.
func (*SyncReply) Kind() string { return "sync-reply" }

// WireSize implements Message.
func (m *SyncReply) WireSize() int { return headerSize + 8*len(m.Known) }

// FetchResult asks the coordinator for the stored state of one call:
// a targeted, connection-less recovery interaction used by tooling that
// wants a single result without pulling the whole session (bulk
// recovery after a log loss goes through SyncRequest + Poll instead).
type FetchResult struct {
	User    UserID
	Session SessionID
	Seq     RPCSeq
}

// Kind implements Message.
func (*FetchResult) Kind() string { return "fetch-result" }

// WireSize implements Message.
func (m *FetchResult) WireSize() int { return headerSize }

// FetchReply returns one call's stored state: whether it is known,
// whether it is finished, and the result payload when finished.
type FetchReply struct {
	Call     CallID
	Known    bool
	Finished bool
	Result   Result
}

// Kind implements Message.
func (*FetchReply) Kind() string { return "fetch-reply" }

// WireSize implements Message.
func (m *FetchReply) WireSize() int { return headerSize + m.Result.wireSize() }

// ---------------------------------------------------------------------
// Server <-> Coordinator
// ---------------------------------------------------------------------

// Heartbeat is the periodic "heart beat" signal. Servers send it to
// their preferred coordinator (which uses it for server fault
// suspicion); it also requests work: connection-less interactions mean
// the coordinator only ever replies to requests, never initiates.
type Heartbeat struct {
	From     NodeID
	Role     Role
	Capacity int  // number of additional tasks the sender can accept
	WantWork bool // true when the sender asks for tasks in the reply
}

// Kind implements Message.
func (*Heartbeat) Kind() string { return "heartbeat" }

// WireSize implements Message.
func (m *Heartbeat) WireSize() int { return headerSize }

// HeartbeatAck answers a Heartbeat, optionally assigning tasks and
// piggy-backing the coordinator list merge (section 4.2: lists are
// merged periodically at heartbeat receptions).
type HeartbeatAck struct {
	From         NodeID
	Tasks        []TaskAssignment
	Coordinators []NodeID
}

// Kind implements Message.
func (*HeartbeatAck) Kind() string { return "heartbeat-ack" }

// WireSize implements Message.
func (m *HeartbeatAck) WireSize() int {
	n := headerSize + 16*len(m.Coordinators)
	for i := range m.Tasks {
		n += m.Tasks[i].wireSize()
	}
	return n
}

// TaskAssignment carries one task description plus its parameter data to
// a server: command line / service name and the optional archive.
type TaskAssignment struct {
	Task       TaskID
	Service    string
	Params     []byte
	ExecTime   time.Duration
	ResultSize int
}

func (t *TaskAssignment) wireSize() int { return headerSize + len(t.Service) + len(t.Params) }

// TaskResult uploads a finished task's result archive from a server.
// The archive built as the result of the execution represents the
// server log, so the server-side logging protocol is necessarily
// pessimistic: the result is on the server's disk before this message.
type TaskResult struct {
	From   NodeID
	Task   TaskID
	Output []byte
	Err    string
	// Exec is the execution duration the server measured for this
	// instance (0 when unknown). The coordinator's speed estimator
	// prefers it over its own assignment-to-result clock, which crash
	// downtimes and upload retries inflate.
	Exec time.Duration
}

// Kind implements Message.
func (*TaskResult) Kind() string { return "task-result" }

// WireSize implements Message.
func (m *TaskResult) WireSize() int { return headerSize + len(m.Output) + len(m.Err) }

// TaskResultAck confirms durable receipt of a TaskResult, allowing the
// server to garbage-collect the corresponding log entry.
type TaskResultAck struct {
	Task TaskID
}

// Kind implements Message.
func (*TaskResultAck) Kind() string { return "task-result-ack" }

// WireSize implements Message.
func (m *TaskResultAck) WireSize() int { return headerSize }

// TaskCancel tells a server that a task instance it holds is no longer
// wanted: another instance's result was already stored (speculative
// execution lost the race, or the result arrived through replication).
// Cancellation is best-effort and idempotent — a server that already
// executed or never received the instance just discards the message;
// an uploaded loser result deduplicates on the coordinator anyway.
type TaskCancel struct {
	Task TaskID
}

// Kind implements Message.
func (*TaskCancel) Kind() string { return "task-cancel" }

// WireSize implements Message.
func (m *TaskCancel) WireSize() int { return headerSize }

// ServerSync performs the server/coordinator synchronization. Servers
// may hold non-contiguous timestamps for a given client, so the
// synchronization is a peer-wise comparison of logs: the server sends
// the exact set of task IDs whose results it still holds (Tasks) plus
// the tasks currently executing (Running). From the complement, the
// coordinator learns which of its "ongoing" assignments died with the
// server's previous incarnation (an intermittent crash shorter than the
// suspicion timeout) and re-schedules them.
type ServerSync struct {
	From    NodeID
	Tasks   []TaskID
	Running []TaskID
}

// Kind implements Message.
func (*ServerSync) Kind() string { return "server-sync" }

// WireSize implements Message.
func (m *ServerSync) WireSize() int { return headerSize + 40*(len(m.Tasks)+len(m.Running)) }

// ServerSyncReply lists which of the offered task results the
// coordinator wants resent (its copy was lost) and which the server may
// drop (already safely stored or obsolete).
type ServerSyncReply struct {
	Resend []TaskID
	Drop   []TaskID
}

// Kind implements Message.
func (*ServerSyncReply) Kind() string { return "server-sync-reply" }

// WireSize implements Message.
func (m *ServerSyncReply) WireSize() int { return headerSize + 40*(len(m.Resend)+len(m.Drop)) }

// ---------------------------------------------------------------------
// Coordinator <-> Coordinator (passive replication ring)
// ---------------------------------------------------------------------

// ReplicaUpdate propagates an abstract of a coordinator's state to its
// successor on the virtual ring. Tasks are replicated with their state
// (finished, ongoing, pending) one after the other; Jobs carries the
// job descriptions (database records), not the file archives, which the
// paper does not replicate.
type ReplicaUpdate struct {
	From  NodeID
	Epoch uint64 // sender's restart epoch, to discard stale updates
	// Round is the sender's monotonically increasing round counter;
	// the ack echoes it, so a late ack from an earlier round can never
	// be credited to a newer one (which would wrongly clear dirty
	// records whose own update was lost).
	Round   uint64
	Jobs    []JobRecord
	MaxSeqs []SessionMax // per-session maximum timestamps for sync
}

// Kind implements Message.
func (*ReplicaUpdate) Kind() string { return "replica-update" }

// WireSize implements Message.
func (m *ReplicaUpdate) WireSize() int {
	n := headerSize + 24*len(m.MaxSeqs)
	for i := range m.Jobs {
		n += m.Jobs[i].wireSize()
	}
	return n
}

// SessionMax carries the maximum known RPC timestamp of one session;
// coordinator-to-coordinator synchronization exchanges these.
type SessionMax struct {
	User    UserID
	Session SessionID
	MaxSeq  RPCSeq
}

// ReplicaAck acknowledges a ReplicaUpdate. A missing ack leads the
// sender to suspect its successor and re-route the ring.
type ReplicaAck struct {
	From  NodeID
	Epoch uint64
	Round uint64 // echoes ReplicaUpdate.Round
}

// Kind implements Message.
func (*ReplicaAck) Kind() string { return "replica-ack" }

// WireSize implements Message.
func (m *ReplicaAck) WireSize() int { return headerSize }

// ---------------------------------------------------------------------
// Job/task records shared by coordinator and replication
// ---------------------------------------------------------------------

// TaskState is the coordinator-side scheduling state of a job.
type TaskState uint8

const (
	// TaskPending means not yet assigned to any server.
	TaskPending TaskState = iota
	// TaskOngoing means assigned to a server, result not yet received.
	TaskOngoing
	// TaskFinished means a result is stored on the coordinator.
	TaskFinished
)

// String returns the lower-case state name.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskOngoing:
		return "ongoing"
	case TaskFinished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// JobRecord is the database record of one client RPC call on a
// coordinator, including its replication-relevant scheduling state.
// Replica coordinators apply the paper's rules: finished tasks are not
// rescheduled; ongoing tasks are not scheduled until the replica
// suspects its predecessor; pending tasks are scheduled.
type JobRecord struct {
	Call       CallID
	Service    string
	Params     []byte
	ExecTime   time.Duration
	ResultSize int
	// Deadline is the absolute soft completion deadline the accepting
	// coordinator computed from Submit.Deadline (zero: none). It
	// replicates with the record so a replica promoting the job keeps
	// the earliest-deadline-first order.
	Deadline  time.Time
	State     TaskState
	Instance  uint32 // highest task instance created so far
	Output    []byte // result payload when State == TaskFinished
	ResultErr string
	Server    NodeID // worker that produced the stored result
}

func (j *JobRecord) wireSize() int {
	// Replication ships the job description; result payloads move only
	// when present (finished tasks), file archives are never replicated.
	return headerSize + len(j.Service) + len(j.Params) + len(j.Output) + len(j.ResultErr)
}

// Clone returns a deep copy of the record, so that replicas never alias
// the primary's byte slices.
func (j *JobRecord) Clone() *JobRecord {
	c := *j
	if j.Params != nil {
		c.Params = append([]byte(nil), j.Params...)
	}
	if j.Output != nil {
		c.Output = append([]byte(nil), j.Output...)
	}
	return &c
}

// ---------------------------------------------------------------------
// Sharded coordination layer (internal/shard)
// ---------------------------------------------------------------------

// ShardMapState is the wire representation of the consistent-hash shard
// topology: a versioned list of coordinator rings. Components rebuild a
// shard.Map from it; the version lets a coordinator detect a client
// routing on a stale cached map.
type ShardMapState struct {
	Version uint64
	VNodes  int // virtual nodes per shard on the hash circle
	Rings   [][]NodeID
}

// wireSize approximates the serialized topology size.
func (s *ShardMapState) wireSize() int {
	n := 16
	for _, ring := range s.Rings {
		n += 16 * len(ring)
	}
	return n
}

// Empty reports whether the state describes no topology at all.
func (s *ShardMapState) Empty() bool { return len(s.Rings) == 0 }

// ShardMapRequest asks any coordinator for the current shard map (a
// client booting without a cached map, or refreshing after redirects).
type ShardMapRequest struct {
	From NodeID
}

// Kind implements Message.
func (*ShardMapRequest) Kind() string { return "shard-map-request" }

// WireSize implements Message.
func (m *ShardMapRequest) WireSize() int { return headerSize }

// ShardMapReply answers a ShardMapRequest with the coordinator's
// current shard map.
type ShardMapReply struct {
	Map ShardMapState
}

// Kind implements Message.
func (*ShardMapReply) Kind() string { return "shard-map-reply" }

// WireSize implements Message.
func (m *ShardMapReply) WireSize() int { return headerSize + m.Map.wireSize() }

// ShardRedirect tells a client its request reached a coordinator that
// does not own the session: the session hashes to shard Shard, and Map
// carries the coordinator's current topology so a stale cached map is
// repaired in one round trip. Call echoes the misrouted submission's ID
// when the redirect answers a Submit (zero otherwise), so the client
// can retransmit exactly that call to the right ring.
type ShardRedirect struct {
	From    NodeID
	User    UserID
	Session SessionID
	Call    CallID // zero unless redirecting a Submit
	Shard   int    // owner shard index under Map
	Map     ShardMapState
}

// Kind implements Message.
func (*ShardRedirect) Kind() string { return "shard-redirect" }

// WireSize implements Message.
func (m *ShardRedirect) WireSize() int { return headerSize + m.Map.wireSize() }

// SessionSeqs advertises the exact set of sequence numbers one
// coordinator stores for one session — the cross-shard analogue of
// SyncReply.Known. The receiver set-differences it against its own
// store (statesync.SeqSetDiff) and asks for the gap.
type SessionSeqs struct {
	User    UserID
	Session SessionID
	Seqs    []RPCSeq
}

// ShardSync cross-replicates a coordinator's dirty records to the
// successor shard so that a whole-ring loss cannot destroy completed
// results: the successor holds them passively (tasks are not scheduled
// there) until it suspects the entire source ring and adopts the
// sessions. Sessions advertises full per-session sequence sets so the
// receiver can request records it is missing beyond the dirty batch.
type ShardSync struct {
	From     NodeID
	Shard    int // sender's shard index
	Epoch    uint64
	Round    uint64
	Jobs     []JobRecord
	Sessions []SessionSeqs
}

// Kind implements Message.
func (*ShardSync) Kind() string { return "shard-sync" }

// WireSize implements Message.
func (m *ShardSync) WireSize() int {
	n := headerSize
	for i := range m.Jobs {
		n += m.Jobs[i].wireSize()
	}
	for i := range m.Sessions {
		n += 24 + 8*len(m.Sessions[i].Seqs)
	}
	return n
}

// ShardSyncAck acknowledges a ShardSync. Want lists calls the receiver
// lacks (computed by set difference from the advertised sessions); the
// sender marks them dirty so the next cross-shard round carries them —
// the same resend-what-the-log-comparison-found mechanism the paper
// uses between clients and coordinators, lifted to shard level.
type ShardSyncAck struct {
	From  NodeID
	Shard int // acknowledging shard's index
	Epoch uint64
	Round uint64 // echoes ShardSync.Round
	Want  []CallID
}

// Kind implements Message.
func (*ShardSyncAck) Kind() string { return "shard-sync-ack" }

// WireSize implements Message.
func (m *ShardSyncAck) WireSize() int { return headerSize + 40*len(m.Want) }

// ---------------------------------------------------------------------
// Cross-shard work stealing (internal/sched + sharded coordinators)
// ---------------------------------------------------------------------

// StealRequest advertises idle capacity: a coordinator whose pending
// queue is empty while its servers keep asking for work offers to
// execute up to Capacity tasks on behalf of its successor shard. The
// steal direction follows the shard successor relation on purpose —
// the thief's ShardSync already flows to its successor, so stolen
// results are routed home by the existing cross-replication path with
// no new machinery.
type StealRequest struct {
	From     NodeID
	Shard    int // thief's shard index
	Epoch    uint64
	Round    uint64 // thief's steal round; the grant echoes it
	Capacity int    // maximum number of tasks wanted
}

// Kind implements Message.
func (*StealRequest) Kind() string { return "steal-request" }

// WireSize implements Message.
func (m *StealRequest) WireSize() int { return headerSize }

// StealGrant moves up to the requested number of pending jobs to the
// thief shard. Unlike replication, a grant carries the full parameter
// payloads — the thief needs them to execute. The victim marks the
// granted jobs ongoing and reclaims (re-queues) any whose result has
// not come home within a timeout, so a dying thief cannot strand work;
// a late duplicate execution is ordinary at-least-once behaviour and
// deduplicates by CallID at the store.
type StealGrant struct {
	From  NodeID
	Shard int // victim's shard index
	Epoch uint64
	Round uint64 // echoes StealRequest.Round
	Jobs  []JobRecord
}

// Kind implements Message.
func (*StealGrant) Kind() string { return "steal-grant" }

// WireSize implements Message.
func (m *StealGrant) WireSize() int {
	n := headerSize
	for i := range m.Jobs {
		n += m.Jobs[i].wireSize()
	}
	return n
}

// SimFault records one fault injected by the conformance + chaos
// harness (cmd/rpcv-sim): what was broken, where, and when relative to
// scenario start. The harness encodes these into its post-mortem
// artifacts so a failing cell's fault timeline survives next to the
// flight-recorder bundle, in the same self-describing binary framing
// as every other stored record.
type SimFault struct {
	Suite    string
	Scenario string
	Cell     string // config-cell label, e.g. "wire=gob store=wal ..."
	Fault    string // taxonomy name: partition, disk, stall, skew, crash, restart, stale-map, heal
	Node     NodeID // primary affected node
	Peer     NodeID // far end, for link faults; empty otherwise
	At       time.Duration
	Detail   string
}

// Kind implements Message.
func (*SimFault) Kind() string { return "sim-fault" }

// WireSize implements Message.
func (m *SimFault) WireSize() int {
	return headerSize + len(m.Suite) + len(m.Scenario) + len(m.Cell) +
		len(m.Fault) + len(m.Detail)
}

// SimVerdict is one cell's outcome in the conformance matrix: whether
// the cell delivered the canonical result set ("pass"), delivered a
// different set ("divergent"), or lost completed results
// ("lost-results"). Digest is the canonical digest of the delivered
// (CallID -> result) set; cells agreeing on the digest agree on every
// result. Persisted alongside SimFault records in verdict artifacts
// and consumed by rpcv-bench's BENCH_sim.json emitter.
type SimVerdict struct {
	Suite     string
	Scenario  string
	Cell      string
	Verdict   string // "pass" | "divergent" | "lost-results" | "error"
	Digest    string
	Delivered int // results delivered to the client
	Expected  int // workload calls issued
	Faults    int // faults injected during the run
	Elapsed   time.Duration
}

// Kind implements Message.
func (*SimVerdict) Kind() string { return "sim-verdict" }

// WireSize implements Message.
func (m *SimVerdict) WireSize() int {
	return headerSize + len(m.Suite) + len(m.Scenario) + len(m.Cell) +
		len(m.Verdict) + len(m.Digest)
}
