package proto

import (
	"reflect"
	"testing"
	"time"
)

// allMessages returns one populated instance of every protocol message.
// Every type registered in codec.go must appear here (and vice versa):
// the round-trip below turns a forgotten gob.Register into a test
// failure instead of a runtime panic in the TCP transport.
func allMessages() []Message {
	call := CallID{User: "user-01", Session: 7, Seq: 42}
	task := TaskID{Call: call, Instance: 3}
	st := ShardMapState{
		Version: 9,
		VNodes:  64,
		Rings:   [][]NodeID{{"coord-00", "coord-01"}, {"coord-02", "coord-03"}},
	}
	deadline := time.Unix(1_000_000_600, 0).UTC()
	return []Message{
		&Submit{Call: call, Service: "svc", Params: []byte{1, 2}, ExecTime: time.Second, ResultSize: 8, Deadline: time.Minute},
		&SubmitAck{Call: call, MaxSeq: 42},
		&Poll{User: "user-01", Session: 7, Have: []RPCSeq{1, 2, 3}},
		&Results{User: "user-01", Session: 7, Results: []Result{{Call: call, Output: []byte{9}, Err: "e", Server: "server-000"}}},
		&SyncRequest{User: "user-01", Session: 7, MaxSeq: 42, HaveLog: true},
		&SyncReply{User: "user-01", Session: 7, MaxSeq: 42, Known: []RPCSeq{1, 2}},
		&FetchResult{User: "user-01", Session: 7, Seq: 42},
		&FetchReply{Call: call, Known: true, Finished: true, Result: Result{Call: call, Output: []byte{4}}},
		&Heartbeat{From: "server-000", Role: RoleServer, Capacity: 2, WantWork: true},
		&HeartbeatAck{From: "coord-00", Tasks: []TaskAssignment{{Task: task, Service: "svc", Params: []byte{5}}}, Coordinators: []NodeID{"coord-00"}},
		&TaskResult{From: "server-000", Task: task, Output: []byte{6}, Err: "x", Exec: time.Second},
		&TaskResultAck{Task: task},
		&TaskCancel{Task: task},
		&ServerSync{From: "server-000", Tasks: []TaskID{task}, Running: []TaskID{task}},
		&ServerSyncReply{Resend: []TaskID{task}, Drop: []TaskID{task}},
		&ReplicaUpdate{From: "coord-00", Epoch: 2, Round: 5, Jobs: []JobRecord{{Call: call, Service: "svc", State: TaskFinished, Output: []byte{7}}}, MaxSeqs: []SessionMax{{User: "user-01", Session: 7, MaxSeq: 42}}},
		&ReplicaAck{From: "coord-01", Epoch: 2, Round: 5},
		&ShardMapRequest{From: "client-00"},
		&ShardMapReply{Map: st},
		&ShardRedirect{From: "coord-00", User: "user-01", Session: 7, Call: call, Shard: 1, Map: st},
		&ShardSync{From: "coord-00", Shard: 0, Epoch: 2, Round: 5, Jobs: []JobRecord{{Call: call, State: TaskFinished}}, Sessions: []SessionSeqs{{User: "user-01", Session: 7, Seqs: []RPCSeq{1, 42}}}},
		&ShardSyncAck{From: "coord-02", Shard: 1, Epoch: 2, Round: 5, Want: []CallID{call}},
		&StealRequest{From: "coord-02", Shard: 1, Epoch: 2, Round: 3, Capacity: 4},
		&StealGrant{From: "coord-00", Shard: 0, Epoch: 2, Round: 3, Jobs: []JobRecord{
			{Call: call, Service: "svc", Params: []byte{8}, ExecTime: time.Second, Deadline: deadline, State: TaskOngoing, Instance: 2},
		}},
		&SimFault{Suite: "default", Scenario: "oneway", Cell: "wire=binary store=wal",
			Fault: "partition", Node: "coord-00", Peer: "server-000",
			At: 2 * time.Second, Detail: "block co-0 -> sv-0"},
		&SimVerdict{Suite: "default", Scenario: "oneway", Cell: "wire=binary store=wal",
			Verdict: "pass", Digest: "sha256:00ff", Delivered: 40, Expected: 40,
			Faults: 2, Elapsed: 3 * time.Second},
	}
}

// TestGobRoundTripEveryMessage encodes and decodes every message type
// through the legacy gob envelope and requires a structurally
// identical value back — the decode auto-detecting that the blob is
// gob, exactly as recovery of a pre-binary log does. CodecGob's
// EncodeMessage panics on an unregistered type, so this test fails
// fast when a new message misses its gob.Register.
func TestGobRoundTripEveryMessage(t *testing.T) {
	for _, msg := range allMessages() {
		raw := CodecGob.EncodeMessage(msg)
		back, err := DecodeMessage(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Errorf("%s: round trip mismatch:\n sent %#v\n got  %#v", msg.Kind(), msg, back)
		}
		if back.Kind() != msg.Kind() {
			t.Errorf("kind changed: %s -> %s", msg.Kind(), back.Kind())
		}
		if msg.WireSize() < headerSize {
			t.Errorf("%s: WireSize %d below header size", msg.Kind(), msg.WireSize())
		}
	}
}

// TestGobRoundTripCoversEveryMessageType walks the package's message
// set by reflection over the allMessages sample and asserts no two
// entries share a type, so a copy-paste duplicate cannot silently mask
// a missing type.
func TestGobRoundTripCoversEveryMessageType(t *testing.T) {
	seen := make(map[reflect.Type]bool)
	for _, msg := range allMessages() {
		typ := reflect.TypeOf(msg)
		if seen[typ] {
			t.Fatalf("duplicate sample for %v", typ)
		}
		seen[typ] = true
	}
	// One sample per concrete Message implementation in this package.
	const wantTypes = 26
	if len(seen) != wantTypes {
		t.Fatalf("allMessages covers %d types, want %d — update the sample list when adding messages", len(seen), wantTypes)
	}
}
