package shard

import (
	"fmt"
	"sort"

	"rpcv/internal/proto"
)

// LoopMap pins sessions to in-process event loops with the same
// consistent-hash construction Map uses to pin sessions to shards, one
// level down: every loop contributes DefaultVNodes virtual points on
// the hash circle, and a session lands on the loop owning the first
// point at or after its (user, session) hash. The map depends only on
// the loop count, so every component that knows a node's loop count
// computes the same placement without agreement — exactly the property
// hash64 gives the shard layer.
//
// A LoopMap is immutable after construction and safe for concurrent
// use.
type LoopMap struct {
	loops  int
	points []loopPoint
}

type loopPoint struct {
	hash uint64
	loop int
}

// NewLoopMap builds the placement circle for n event loops. n < 1 is
// treated as 1.
func NewLoopMap(n int) *LoopMap {
	if n < 1 {
		n = 1
	}
	m := &LoopMap{loops: n}
	if n == 1 {
		return m
	}
	m.points = make([]loopPoint, 0, n*DefaultVNodes)
	for l := 0; l < n; l++ {
		for v := 0; v < DefaultVNodes; v++ {
			m.points = append(m.points, loopPoint{
				hash: mix64(hash64(fmt.Sprintf("loop/%d/%d", l, v))),
				loop: l,
			})
		}
	}
	sort.Slice(m.points, func(i, j int) bool { return m.points[i].hash < m.points[j].hash })
	return m
}

// Loops returns the loop count the map was built for.
func (m *LoopMap) Loops() int { return m.loops }

// Owner returns the loop index owning a session. A single-loop map
// owns everything at index 0.
func (m *LoopMap) Owner(user proto.UserID, session proto.SessionID) int {
	if m.loops <= 1 {
		return 0
	}
	h := mix64(hash64(fmt.Sprintf("%s/%d", user, session)))
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].loop
}

// mix64 is the splitmix64 avalanche finalizer. FNV-1a alone is too
// weak for this circle: the keys hashed here ("loop/l/v", "user/sess")
// differ only in trailing digits, and FNV maps such near-identical
// strings to near-identical values — all of one user's sessions fall
// into a single gap, and one loop's virtual points huddle together
// instead of interleaving. Avalanching the FNV output restores the
// uniformity consistent hashing assumes while staying a pure,
// process-independent function of the key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OwnerOf returns the loop index owning a call (by its session).
func (m *LoopMap) OwnerOf(call proto.CallID) int {
	return m.Owner(call.User, call.Session)
}
