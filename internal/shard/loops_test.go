package shard

import (
	"fmt"
	"testing"

	"rpcv/internal/proto"
)

// TestLoopMapDeterministic: the placement is a pure function of the
// loop count — two maps built independently agree on every session, so
// a sender can predict a receiver's routing without agreement.
func TestLoopMapDeterministic(t *testing.T) {
	a, b := NewLoopMap(4), NewLoopMap(4)
	for s := 1; s <= 200; s++ {
		u := proto.UserID(fmt.Sprintf("user-%d", s%7))
		if a.Owner(u, proto.SessionID(s)) != b.Owner(u, proto.SessionID(s)) {
			t.Fatalf("maps disagree on %s/%d", u, s)
		}
	}
}

// TestLoopMapSingleLoopOwnsAll: a single-loop map pins everything to
// loop 0 without consulting the circle.
func TestLoopMapSingleLoopOwnsAll(t *testing.T) {
	m := NewLoopMap(1)
	for s := 1; s <= 50; s++ {
		if got := m.Owner("u", proto.SessionID(s)); got != 0 {
			t.Fatalf("Owner = %d, want 0", got)
		}
	}
}

// TestLoopMapBalance: sessions must spread over the loops — including
// the adversarial-but-typical case of one user with consecutive
// session IDs, where raw FNV-1a would park every session in the same
// gap of the circle (the regression mix64 exists for).
func TestLoopMapBalance(t *testing.T) {
	for _, loops := range []int{2, 4, 8} {
		m := NewLoopMap(loops)
		counts := make([]int, loops)
		const sessions = 1000
		for s := 1; s <= sessions; s++ {
			counts[m.Owner("u", proto.SessionID(s))]++
		}
		for l, c := range counts {
			// A perfectly uniform split gives sessions/loops per loop;
			// with 64 vnodes per loop, anything under a quarter of that
			// indicates clustering.
			if c < sessions/loops/4 {
				t.Errorf("loops=%d: loop %d owns %d of %d sessions (clustered circle)", loops, l, c, sessions)
			}
		}
	}
}
