// Package shard implements the sharded coordination layer: a
// consistent-hash map that partitions RPC-V's client sessions across
// multiple independent coordinator rings.
//
// The paper replicates a single coordinator set on one virtual ring, so
// every submission, poll and heartbeat funnels through that one group —
// figure 5 shows replication time bounded by per-task database cost,
// which makes the group the scalability ceiling. The shard map removes
// the ceiling without touching the per-ring protocol: each ring still
// runs the paper's passive replication, message logging and heartbeat
// fault detection internally, and the map only decides *which* ring a
// session belongs to.
//
// Routing is by (user, session): a whole session lands on one ring, so
// the per-session timestamp synchronization protocol (§4.2) is entirely
// intra-ring. Keys hash onto a 64-bit circle populated with virtual
// nodes (many per ring, for smoothness); the owner of a key is the ring
// of the first virtual node at or after the key's point. Ring
// membership changes move only the sessions between adjacent points —
// the classic consistent-hashing property.
//
// The map also defines a successor relation *between shards* (the ring
// owning the circle point just past a shard's first virtual node).
// Coordinators cross-replicate their dirty records to the successor
// shard and adopt a guarded shard's sessions when its whole ring is
// lost, so whole-ring failure degrades to the paper's ordinary
// failover, one level up.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rpcv/internal/proto"
	"rpcv/internal/statesync"
)

// DefaultVNodes is the number of virtual nodes placed on the circle per
// shard when a state does not specify one. More virtual nodes smooth
// the key distribution at the cost of a larger (static) table.
const DefaultVNodes = 64

// Map is an immutable shard topology: a versioned assignment of
// sessions to coordinator rings. Build one with New or FromState and
// share it freely — all methods are read-only.
type Map struct {
	version uint64
	vnodes  int
	rings   [][]proto.NodeID
	points  []point // sorted hash circle
	ringOf  map[proto.NodeID]int
}

// point is one virtual node on the circle.
type point struct {
	hash uint64
	ring int
}

// New builds a map from ring member lists. Each ring's member list is
// deduplicated and sorted (the same common order its coordinators use
// to compute intra-ring successors). vnodes <= 0 means DefaultVNodes.
// Version tags the topology so stale cached maps are detectable.
func New(version uint64, rings [][]proto.NodeID, vnodes int) *Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &Map{
		version: version,
		vnodes:  vnodes,
		rings:   make([][]proto.NodeID, len(rings)),
		ringOf:  make(map[proto.NodeID]int),
	}
	for i, members := range rings {
		m.rings[i] = statesync.MergeNodeLists(members)
		for _, id := range m.rings[i] {
			if _, dup := m.ringOf[id]; !dup {
				m.ringOf[id] = i
			}
		}
	}
	if len(m.rings) > 1 {
		m.points = make([]point, 0, len(m.rings)*vnodes)
		for i := range m.rings {
			for v := 0; v < vnodes; v++ {
				m.points = append(m.points, point{
					hash: hash64(fmt.Sprintf("shard-%d/vnode-%d", i, v)),
					ring: i,
				})
			}
		}
		sort.Slice(m.points, func(a, b int) bool {
			if m.points[a].hash != m.points[b].hash {
				return m.points[a].hash < m.points[b].hash
			}
			return m.points[a].ring < m.points[b].ring
		})
	}
	return m
}

// FromState rebuilds a map from its wire representation.
func FromState(st proto.ShardMapState) *Map {
	return New(st.Version, st.Rings, st.VNodes)
}

// State returns the wire representation carried by ShardRedirect and
// ShardMapReply messages.
func (m *Map) State() proto.ShardMapState {
	st := proto.ShardMapState{
		Version: m.version,
		VNodes:  m.vnodes,
		Rings:   make([][]proto.NodeID, len(m.rings)),
	}
	for i, r := range m.rings {
		st.Rings[i] = append([]proto.NodeID(nil), r...)
	}
	return st
}

// Version returns the topology version.
func (m *Map) Version() uint64 { return m.version }

// Shards returns the number of coordinator rings.
func (m *Map) Shards() int { return len(m.rings) }

// Ring returns shard i's coordinator members (shared slice: callers
// must not mutate).
func (m *Map) Ring(i int) []proto.NodeID {
	if i < 0 || i >= len(m.rings) {
		return nil
	}
	return m.rings[i]
}

// RingOf returns the shard index a coordinator belongs to, or -1 when
// the coordinator is not in the map.
func (m *Map) RingOf(id proto.NodeID) int {
	if r, ok := m.ringOf[id]; ok {
		return r
	}
	return -1
}

// Owner returns the shard index owning a session. A single-ring map
// owns everything at index 0.
func (m *Map) Owner(user proto.UserID, session proto.SessionID) int {
	if len(m.rings) <= 1 {
		return 0
	}
	return m.owner(hash64(fmt.Sprintf("%s/%d", user, session)))
}

// OwnerOf returns the shard index owning a call (by its session).
func (m *Map) OwnerOf(call proto.CallID) int {
	return m.Owner(call.User, call.Session)
}

// owner finds the ring of the first virtual node at or after h,
// wrapping around the circle.
func (m *Map) owner(h uint64) int {
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].ring
}

// SuccessorShard returns the shard that inherits shard i's sessions on
// whole-ring loss: the ring owning the circle point immediately after
// shard i's first virtual node (skipping shard i's own points). For a
// single- or two-ring map this degenerates to the other ring (or i
// itself when alone).
func (m *Map) SuccessorShard(i int) int {
	n := len(m.rings)
	if n <= 1 {
		return 0
	}
	if i < 0 || i >= n {
		return -1
	}
	// Locate shard i's first (lowest-hash) point on the circle.
	first := -1
	for p, pt := range m.points {
		if pt.ring == i {
			first = p
			break
		}
	}
	if first < 0 {
		return (i + 1) % n
	}
	for step := 1; step < len(m.points); step++ {
		pt := m.points[(first+step)%len(m.points)]
		if pt.ring != i {
			return pt.ring
		}
	}
	return (i + 1) % n
}

// RouteOrder returns every coordinator in failover order for a session:
// the owner ring first, then the successor-shard chain, then any rings
// the chain did not reach (short cycles are possible on the circle),
// in index order. Clients walk this order when suspecting coordinators,
// so the ring they land on after a whole-ring loss is exactly the ring
// that adopted the lost shard's state.
func (m *Map) RouteOrder(user proto.UserID, session proto.SessionID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(m.ringOf))
	visited := make([]bool, len(m.rings))
	appendRing := func(r int) {
		if r < 0 || r >= len(m.rings) || visited[r] {
			return
		}
		visited[r] = true
		out = append(out, m.rings[r]...)
	}
	s := m.Owner(user, session)
	for i := 0; i < len(m.rings); i++ {
		if visited[s] {
			break
		}
		appendRing(s)
		s = m.SuccessorShard(s)
	}
	for r := range m.rings {
		appendRing(r)
	}
	return out
}

// hash64 is FNV-1a: deterministic across processes and runs, which is
// what lets every component compute the same owner without agreement.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
