package shard

import (
	"fmt"
	"testing"

	"rpcv/internal/proto"
)

func ringIDs(shard, n int) []proto.NodeID {
	out := make([]proto.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = proto.NodeID(fmt.Sprintf("coord-%02d", shard*n+i))
	}
	return out
}

func testMap(shards, perRing int) *Map {
	rings := make([][]proto.NodeID, shards)
	for s := range rings {
		rings[s] = ringIDs(s, perRing)
	}
	return New(1, rings, 0)
}

func TestSingleRingOwnsEverything(t *testing.T) {
	m := testMap(1, 3)
	for i := 0; i < 50; i++ {
		user := proto.UserID(fmt.Sprintf("user-%02d", i))
		if got := m.Owner(user, 1); got != 0 {
			t.Fatalf("single-ring map: Owner(%s) = %d, want 0", user, got)
		}
	}
	if m.SuccessorShard(0) != 0 {
		t.Fatalf("single-ring successor = %d, want 0", m.SuccessorShard(0))
	}
}

func TestOwnerDeterministicAndInRange(t *testing.T) {
	m := testMap(4, 2)
	n := FromState(m.State())
	for i := 0; i < 200; i++ {
		user := proto.UserID(fmt.Sprintf("user-%03d", i))
		a := m.Owner(user, 1)
		b := n.Owner(user, 1)
		if a != b {
			t.Fatalf("owner differs across State round trip: %d vs %d", a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("owner %d out of range", a)
		}
	}
}

func TestOwnerSpreadsSessions(t *testing.T) {
	m := testMap(4, 2)
	counts := make([]int, 4)
	const sessions = 400
	for i := 0; i < sessions; i++ {
		counts[m.Owner(proto.UserID(fmt.Sprintf("user-%03d", i)), 1)]++
	}
	for s, c := range counts {
		// With 64 vnodes per shard the split is close to uniform; a
		// shard receiving under an eighth of its fair share would mean
		// the circle is badly broken.
		if c < sessions/(4*8) {
			t.Fatalf("shard %d owns only %d/%d sessions: %v", s, c, sessions, counts)
		}
	}
}

func TestDifferentSessionsOfSameUserCanLandApart(t *testing.T) {
	m := testMap(8, 1)
	seen := make(map[int]bool)
	for sess := proto.SessionID(1); sess <= 64; sess++ {
		seen[m.Owner("user", sess)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 sessions of one user all landed on the same shard")
	}
}

func TestRingOf(t *testing.T) {
	m := testMap(3, 2)
	for s := 0; s < 3; s++ {
		for _, id := range m.Ring(s) {
			if got := m.RingOf(id); got != s {
				t.Fatalf("RingOf(%s) = %d, want %d", id, got, s)
			}
		}
	}
	if got := m.RingOf("stranger"); got != -1 {
		t.Fatalf("RingOf(stranger) = %d, want -1", got)
	}
}

func TestSuccessorShardNeverSelf(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 7, 16} {
		m := testMap(shards, 2)
		for s := 0; s < shards; s++ {
			succ := m.SuccessorShard(s)
			if succ == s {
				t.Fatalf("%d shards: SuccessorShard(%d) = self", shards, s)
			}
			if succ < 0 || succ >= shards {
				t.Fatalf("%d shards: SuccessorShard(%d) = %d out of range", shards, s, succ)
			}
		}
	}
}

func TestRouteOrderCoversAllCoordinatorsOwnerFirst(t *testing.T) {
	m := testMap(4, 2)
	for i := 0; i < 20; i++ {
		user := proto.UserID(fmt.Sprintf("user-%02d", i))
		order := m.RouteOrder(user, 1)
		if len(order) != 8 {
			t.Fatalf("RouteOrder covers %d coordinators, want 8", len(order))
		}
		owner := m.Owner(user, 1)
		if m.RingOf(order[0]) != owner {
			t.Fatalf("RouteOrder starts on ring %d, owner is %d", m.RingOf(order[0]), owner)
		}
		if m.RingOf(order[len(m.Ring(owner))]) != m.SuccessorShard(owner) {
			t.Fatalf("RouteOrder second ring is %d, successor is %d",
				m.RingOf(order[len(m.Ring(owner))]), m.SuccessorShard(owner))
		}
		seen := make(map[proto.NodeID]bool)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("RouteOrder repeats %s", id)
			}
			seen[id] = true
		}
	}
}

func TestConsistentHashStability(t *testing.T) {
	// Growing 4 -> 5 shards must not move sessions between surviving
	// shards: a session either keeps its owner or moves to the new one.
	old := testMap(4, 2)
	rings := make([][]proto.NodeID, 5)
	for s := 0; s < 4; s++ {
		rings[s] = ringIDs(s, 2)
	}
	rings[4] = ringIDs(4, 2)
	grown := New(2, rings, 0)

	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		user := proto.UserID(fmt.Sprintf("user-%03d", i))
		was, is := old.Owner(user, 1), grown.Owner(user, 1)
		switch {
		case was == is:
			kept++
		case is == 4:
			moved++
		default:
			t.Fatalf("session %s moved between surviving shards: %d -> %d", user, was, is)
		}
	}
	if moved == 0 {
		t.Fatalf("no sessions moved to the new shard (kept=%d)", kept)
	}
}
