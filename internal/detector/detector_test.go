package detector

import (
	"testing"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

type host struct{ env node.Env }

func (h *host) Start(env node.Env)                      { h.env = env }
func (h *host) Receive(_ proto.NodeID, _ proto.Message) {}
func (h *host) Stop()                                   {}

func newEnv(t *testing.T) (*sim.World, node.Env) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 1})
	h := &host{}
	w.AddNode("n", h)
	w.Start("n")
	return w, h.env
}

func TestMonitorSuspectsSilentComponent(t *testing.T) {
	w, env := newEnv(t)
	var suspected []proto.NodeID
	m := NewMonitor(env, MonitorConfig{
		Timeout:   30 * time.Second,
		OnSuspect: func(id proto.NodeID) { suspected = append(suspected, id) },
	})
	m.Observe("peer")
	w.RunFor(29 * time.Second)
	if m.Suspected("peer") {
		t.Fatal("suspected before timeout")
	}
	w.RunFor(10 * time.Second)
	if !m.Suspected("peer") {
		t.Fatal("not suspected after timeout")
	}
	if len(suspected) != 1 || suspected[0] != "peer" {
		t.Fatalf("OnSuspect calls = %v, want [peer]", suspected)
	}
}

func TestMonitorHeartbeatsPreventSuspicion(t *testing.T) {
	w, env := newEnv(t)
	m := NewMonitor(env, MonitorConfig{Timeout: 30 * time.Second})
	m.Observe("peer")
	// Keep observing every 5 s for 2 minutes.
	for i := 0; i < 24; i++ {
		w.RunFor(5 * time.Second)
		m.Observe("peer")
	}
	if m.Suspected("peer") {
		t.Fatal("live component suspected")
	}
}

func TestMonitorRecoversOnReappearance(t *testing.T) {
	w, env := newEnv(t)
	count := 0
	m := NewMonitor(env, MonitorConfig{
		Timeout:   10 * time.Second,
		OnSuspect: func(proto.NodeID) { count++ },
	})
	m.Observe("peer")
	w.RunFor(time.Minute)
	if !m.Suspected("peer") {
		t.Fatal("not suspected")
	}
	m.Observe("peer") // intermittent crash ends: component reappears
	if m.Suspected("peer") {
		t.Fatal("still suspected after sign of life")
	}
	// Silence again: a second suspicion fires.
	w.RunFor(time.Minute)
	if count != 2 {
		t.Fatalf("OnSuspect fired %d times, want 2", count)
	}
}

func TestWatchStartsClockWithoutObservation(t *testing.T) {
	w, env := newEnv(t)
	m := NewMonitor(env, MonitorConfig{Timeout: 10 * time.Second})
	m.Watch("peer")
	w.RunFor(time.Minute)
	if !m.Suspected("peer") {
		t.Fatal("watched-but-silent component not suspected")
	}
	// Watch after Observe must not reset the clock.
	m.Observe("other")
	w.RunFor(5 * time.Second)
	m.Watch("other")
	w.RunFor(8 * time.Second)
	if !m.Suspected("other") {
		t.Fatal("Watch reset an existing observation clock")
	}
}

func TestForget(t *testing.T) {
	w, env := newEnv(t)
	m := NewMonitor(env, MonitorConfig{Timeout: 10 * time.Second})
	m.Observe("peer")
	m.Forget("peer")
	w.RunFor(time.Minute)
	if m.Suspected("peer") || m.Tracked() != 0 {
		t.Fatal("forgotten component still tracked")
	}
}

func TestSuspects(t *testing.T) {
	w, env := newEnv(t)
	m := NewMonitor(env, MonitorConfig{Timeout: 10 * time.Second})
	m.Observe("a")
	m.Observe("b")
	w.RunFor(time.Minute)
	if got := m.Suspects(); len(got) != 2 {
		t.Fatalf("suspects = %v, want 2", got)
	}
}

func TestCloseStopsSweeps(t *testing.T) {
	w, env := newEnv(t)
	fired := false
	m := NewMonitor(env, MonitorConfig{
		Timeout:   10 * time.Second,
		OnSuspect: func(proto.NodeID) { fired = true },
	})
	m.Observe("peer")
	m.Close()
	w.RunFor(time.Minute)
	if fired {
		t.Fatal("OnSuspect fired after Close")
	}
}

func TestBeaterFiresImmediatelyThenPeriodically(t *testing.T) {
	w, env := newEnv(t)
	var beats []time.Duration
	b := NewBeater(env, 5*time.Second, func() { beats = append(beats, w.Elapsed()) })
	w.RunFor(time.Minute)
	b.Close()
	if len(beats) == 0 || beats[0] != 0 {
		t.Fatalf("first beat at %v, want 0 (announce on boot)", beats)
	}
	// ~12 beats in a minute at 5 s ±10 % jitter.
	if len(beats) < 10 || len(beats) > 15 {
		t.Fatalf("%d beats in a minute, want ~12", len(beats))
	}
	// Jittered, not perfectly periodic.
	distinct := make(map[time.Duration]bool)
	for i := 1; i < len(beats); i++ {
		distinct[beats[i]-beats[i-1]] = true
	}
	if len(distinct) < 2 {
		t.Fatal("beats show no jitter")
	}
}

func TestBeaterCloseStops(t *testing.T) {
	w, env := newEnv(t)
	count := 0
	b := NewBeater(env, 5*time.Second, func() { count++ })
	w.RunFor(12 * time.Second)
	n := count
	b.Close()
	w.RunFor(time.Minute)
	if count != n {
		t.Fatalf("beats after Close: %d -> %d", n, count)
	}
}

func TestDefaultsApplied(t *testing.T) {
	w, env := newEnv(t)
	m := NewMonitor(env, MonitorConfig{})
	m.Observe("peer")
	w.RunFor(DefaultTimeout - time.Second)
	if m.Suspected("peer") {
		t.Fatal("suspected before default timeout")
	}
	w.RunFor(DefaultTimeout)
	if !m.Suspected("peer") {
		t.Fatal("not suspected after default timeout")
	}
}
