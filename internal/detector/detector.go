// Package detector implements RPC-V's unreliable fault detector.
//
// Because the Internet is asynchronous, fault detection can only ever
// be fault *suspicion*: a component is suspected when no "heart beat"
// signal has been received from it for a timeout, whatever the reason —
// crash, network failure or intermittent congestion. Wrong suspicions
// are a normal event the protocol must tolerate, not an error.
//
// In the paper's implementation the heartbeat period is 5 seconds and a
// fault is suspected after 30 seconds of silence (§5.1); both are
// configurable here, and the heartbeat-period/suspicion-timeout
// trade-off is explored by the ablation benchmarks.
//
// The package provides two halves:
//
//   - Monitor: the receiving side. Feed it Observe(id) on every sign of
//     life; it reports Suspects and invokes a callback on new
//     suspicion. Driven by an Env timer wheel.
//   - Beater: the sending side helper that emits a heartbeat callback
//     every period (the actual message construction is the caller's,
//     since heartbeats piggy-back work requests and list merges).
package detector

import (
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// DefaultPeriod is the paper's heartbeat period.
const DefaultPeriod = 5 * time.Second

// DefaultTimeout is the paper's suspicion timeout.
const DefaultTimeout = 30 * time.Second

// Monitor tracks last-seen times for a set of components and suspects
// those silent for longer than the timeout.
type Monitor struct {
	env      node.Env
	timeout  time.Duration
	interval time.Duration
	onSusp   func(id proto.NodeID)

	lastSeen  map[proto.NodeID]time.Time
	suspected map[proto.NodeID]bool
	timer     node.Timer
	closed    bool
}

// MonitorConfig parameterizes a Monitor.
type MonitorConfig struct {
	// Timeout is the silence duration after which a component is
	// suspected. Default DefaultTimeout.
	Timeout time.Duration
	// CheckInterval is how often silence is evaluated. Default
	// Timeout/6 (i.e. the heartbeat period when using defaults).
	CheckInterval time.Duration
	// OnSuspect is invoked (on the node's event loop) once per
	// transition from trusted to suspected.
	OnSuspect func(id proto.NodeID)
}

// NewMonitor creates and starts a monitor.
func NewMonitor(env node.Env, cfg MonitorConfig) *Monitor {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = cfg.Timeout / 6
	}
	m := &Monitor{
		env:       env,
		timeout:   cfg.Timeout,
		interval:  cfg.CheckInterval,
		onSusp:    cfg.OnSuspect,
		lastSeen:  make(map[proto.NodeID]time.Time),
		suspected: make(map[proto.NodeID]bool),
	}
	m.schedule()
	return m
}

func (m *Monitor) schedule() {
	m.timer = m.env.After(m.interval, func() {
		m.sweep()
		if !m.closed {
			m.schedule()
		}
	})
}

func (m *Monitor) sweep() {
	now := m.env.Now()
	for id, seen := range m.lastSeen {
		if m.suspected[id] {
			continue
		}
		if now.Sub(seen) >= m.timeout {
			m.suspected[id] = true
			if m.onSusp != nil {
				m.onSusp(id)
			}
		}
	}
}

// Observe records a sign of life from id (heartbeat or any message).
// A suspected component that reappears is trusted again — intermittent
// crashes and reconnections are normal events.
func (m *Monitor) Observe(id proto.NodeID) {
	m.lastSeen[id] = m.env.Now()
	if m.suspected[id] {
		delete(m.suspected, id)
	}
}

// Watch registers id without a sign of life yet: the suspicion clock
// starts now. Used when the coordinator assigns a task to a server and
// must detect the server's death even if it never speaks again.
func (m *Monitor) Watch(id proto.NodeID) {
	if _, ok := m.lastSeen[id]; !ok {
		m.lastSeen[id] = m.env.Now()
	}
}

// ObservedWithin reports whether id produced a sign of life within the
// last d. A component that is late on a task yet still heartbeating is
// slow, not crashed — the distinction the scheduling estimator needs.
func (m *Monitor) ObservedWithin(id proto.NodeID, d time.Duration) bool {
	seen, ok := m.lastSeen[id]
	return ok && m.env.Now().Sub(seen) <= d
}

// Forget stops tracking id entirely.
func (m *Monitor) Forget(id proto.NodeID) {
	delete(m.lastSeen, id)
	delete(m.suspected, id)
}

// Suspected reports whether id is currently suspected.
func (m *Monitor) Suspected(id proto.NodeID) bool { return m.suspected[id] }

// Suspects returns the currently suspected components.
func (m *Monitor) Suspects() []proto.NodeID {
	var out []proto.NodeID
	for id := range m.suspected {
		out = append(out, id)
	}
	return out
}

// Tracked returns the number of components being watched.
func (m *Monitor) Tracked() int { return len(m.lastSeen) }

// Close stops the sweep timer.
func (m *Monitor) Close() {
	m.closed = true
	if m.timer != nil {
		m.timer.Stop()
	}
}

// Beater invokes a callback every period, with ±10 % deterministic
// jitter to avoid system-wide heartbeat synchronization. The callback
// typically sends a proto.Heartbeat to the preferred coordinator.
type Beater struct {
	env    node.Env
	period time.Duration
	beat   func()
	timer  node.Timer
	closed bool
}

// NewBeater creates and starts a beater; the first beat fires
// immediately (a node announces itself on boot).
func NewBeater(env node.Env, period time.Duration, beat func()) *Beater {
	if period <= 0 {
		period = DefaultPeriod
	}
	b := &Beater{env: env, period: period, beat: beat}
	b.timer = env.After(0, b.tick)
	return b
}

func (b *Beater) tick() {
	if b.closed {
		return
	}
	b.beat()
	jitter := time.Duration(b.env.Rand().Int63n(int64(b.period)/5)) - b.period/10
	b.timer = b.env.After(b.period+jitter, b.tick)
}

// Close stops the beater.
func (b *Beater) Close() {
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
}
