package client

import (
	"testing"
	"time"

	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/sim"
)

// fakeCoord is a scripted coordinator stand-in.
type fakeCoord struct {
	env     node.Env
	jobs    map[proto.RPCSeq]*proto.Submit
	results map[proto.RPCSeq]proto.Result
	silent  bool
	submits int
	fetches int
}

func newFakeCoord() *fakeCoord {
	return &fakeCoord{
		jobs:    make(map[proto.RPCSeq]*proto.Submit),
		results: make(map[proto.RPCSeq]proto.Result),
	}
}

func (f *fakeCoord) Start(env node.Env) { f.env = env }
func (f *fakeCoord) Stop()              {}
func (f *fakeCoord) Receive(from proto.NodeID, msg proto.Message) {
	if f.silent {
		return
	}
	switch m := msg.(type) {
	case *proto.Submit:
		f.submits++
		f.jobs[m.Call.Seq] = m
		f.env.Send(from, &proto.SubmitAck{Call: m.Call, MaxSeq: f.maxSeq()})
	case *proto.Poll:
		have := make(map[proto.RPCSeq]bool)
		for _, s := range m.Have {
			have[s] = true
		}
		out := &proto.Results{User: m.User, Session: m.Session}
		for seq, res := range f.results {
			if !have[seq] {
				out.Results = append(out.Results, res)
			}
		}
		f.env.Send(from, out)
	case *proto.SyncRequest:
		rep := &proto.SyncReply{User: m.User, Session: m.Session, MaxSeq: f.maxSeq()}
		if !m.HaveLog {
			for seq := range f.jobs {
				rep.Known = append(rep.Known, seq)
			}
		}
		f.env.Send(from, rep)
	case *proto.FetchResult:
		f.fetches++
		rep := &proto.FetchReply{Call: proto.CallID{User: m.User, Session: m.Session, Seq: m.Seq}}
		if _, ok := f.jobs[m.Seq]; ok {
			rep.Known = true
		}
		if res, ok := f.results[m.Seq]; ok {
			rep.Finished = true
			rep.Result = res
		}
		f.env.Send(from, rep)
	}
}

func (f *fakeCoord) maxSeq() proto.RPCSeq {
	var max proto.RPCSeq
	for s := range f.jobs {
		if s > max {
			max = s
		}
	}
	return max
}

func (f *fakeCoord) finish(seq proto.RPCSeq, output string) {
	call := proto.CallID{User: "u", Session: 1, Seq: seq}
	f.results[seq] = proto.Result{Call: call, Output: []byte(output), Server: "srv"}
}

func rig(t *testing.T, cfg Config) (*sim.World, *Client, *fakeCoord) {
	t.Helper()
	if cfg.User == "" {
		cfg.User = "u"
	}
	if cfg.Session == 0 {
		cfg.Session = 1
	}
	if len(cfg.Coordinators) == 0 {
		cfg.Coordinators = []proto.NodeID{"co"}
	}
	if cfg.Disk == nil {
		cfg.Disk = msglog.InstantDisk()
	}
	w := sim.NewWorld(sim.Config{Seed: 21})
	cli := New(cfg)
	fc := newFakeCoord()
	w.AddNode("co", fc)
	w.AddNode("cli", cli)
	w.Start("co")
	w.Start("cli")
	return w, cli, fc
}

func TestSubmitAndCollect(t *testing.T) {
	var got []proto.Result
	w, cli, fc := rig(t, Config{
		PollPeriod: time.Second,
		OnResult:   func(res proto.Result, _ time.Time) { got = append(got, res) },
	})

	w.Schedule(0, func() { cli.Submit("svc", []byte("p"), time.Second, 4) })
	w.RunFor(time.Second)
	if fc.submits != 1 {
		t.Fatal("submit never arrived")
	}
	fc.finish(1, "out")
	w.RunFor(3 * time.Second)
	if len(got) != 1 || string(got[0].Output) != "out" {
		t.Fatalf("results = %+v", got)
	}
	if cli.ResultCount() != 1 {
		t.Fatal("result count wrong")
	}
	// Duplicate deliveries don't double-fire.
	w.RunFor(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("duplicate result callback: %d", len(got))
	}
}

func TestSequencesMonotonic(t *testing.T) {
	w, cli, _ := rig(t, Config{})
	var seqs []proto.RPCSeq
	w.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			seqs = append(seqs, cli.Submit("svc", nil, time.Second, 1))
		}
	})
	w.RunFor(time.Second)
	for i, s := range seqs {
		if s != proto.RPCSeq(i+1) {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestSubmitCompletionRequiresAck(t *testing.T) {
	completed := 0
	w, cli, fc := rig(t, Config{
		OnSubmitComplete: func(proto.RPCSeq, time.Time, time.Time) { completed++ },
	})
	fc.silent = true
	w.Schedule(0, func() { cli.Submit("svc", nil, time.Second, 1) })
	w.RunFor(10 * time.Second)
	if completed != 0 {
		t.Fatal("submission completed without coordinator ack")
	}
	fc.silent = false
	// The client re-syncs only on suspicion; resend via sync.
	w.Schedule(0, cli.SyncNow)
	w.RunFor(10 * time.Second)
	if completed != 1 {
		t.Fatalf("completed = %d after ack, want 1", completed)
	}
}

func TestRestartRecoversLogAndResumesSeq(t *testing.T) {
	w, cli, fc := rig(t, Config{Logging: msglog.BlockingPessimistic})
	w.Schedule(0, func() {
		cli.Submit("svc", []byte("a"), time.Second, 1)
		cli.Submit("svc", []byte("b"), time.Second, 1)
	})
	w.RunFor(time.Second)
	w.Restart("cli")
	w.RunFor(time.Second)
	var seq proto.RPCSeq
	w.Schedule(0, func() { seq = cli.Submit("svc", nil, time.Second, 1) })
	w.RunFor(time.Second)
	if seq != 3 {
		t.Fatalf("post-restart seq = %d, want 3", seq)
	}
	_ = fc
}

func TestRestartWithLostLogRebuildsFromCoordinator(t *testing.T) {
	w, cli, fc := rig(t, Config{Logging: msglog.BlockingPessimistic, PollPeriod: time.Hour})
	w.Schedule(0, func() {
		cli.Submit("svc", []byte("a"), time.Second, 4)
		cli.Submit("svc", []byte("b"), time.Second, 4)
	})
	w.RunFor(time.Second)
	fc.finish(1, "r1")
	fc.finish(2, "r2")

	w.Crash("cli")
	w.WipeDisk("cli")
	w.Start("cli")
	w.Schedule(0, cli.SyncNow)
	w.RunFor(time.Minute)
	if cli.ResultCount() != 2 {
		t.Fatalf("rebuilt results = %d, want 2", cli.ResultCount())
	}
	// Sequence counter resumes past the recovered calls.
	var seq proto.RPCSeq
	w.Schedule(0, func() { seq = cli.Submit("svc", nil, time.Second, 1) })
	w.RunFor(time.Second)
	if seq != 3 {
		t.Fatalf("post-rebuild seq = %d, want 3", seq)
	}
}

func TestSyncResendsMissingSubmissions(t *testing.T) {
	w, cli, fc := rig(t, Config{Logging: msglog.BlockingPessimistic})
	w.Schedule(0, func() {
		cli.Submit("svc", []byte("a"), time.Second, 1)
		cli.Submit("svc", []byte("b"), time.Second, 1)
	})
	w.RunFor(time.Second)
	// The coordinator loses everything.
	fc.jobs = make(map[proto.RPCSeq]*proto.Submit)
	w.Schedule(0, cli.SyncNow)
	w.RunFor(time.Second)
	if len(fc.jobs) != 2 {
		t.Fatalf("coordinator rebuilt %d jobs, want 2", len(fc.jobs))
	}
}

func TestFailoverOnSilence(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 23})
	cli := New(Config{
		User: "u", Session: 1,
		Coordinators:     []proto.NodeID{"co1", "co2"},
		SuspicionTimeout: 15 * time.Second,
		PollPeriod:       2 * time.Second,
		Disk:             msglog.InstantDisk(),
	})
	c1, c2 := newFakeCoord(), newFakeCoord()
	w.AddNode("co1", c1)
	w.AddNode("co2", c2)
	w.AddNode("cli", cli)
	w.Start("co1")
	w.Start("co2")
	w.Start("cli")
	w.Schedule(0, func() { cli.Submit("svc", nil, time.Second, 1) })
	w.RunFor(5 * time.Second)
	if cli.Preferred() != "co1" {
		t.Fatalf("preferred = %s", cli.Preferred())
	}
	c1.silent = true
	w.RunFor(time.Minute)
	if cli.Preferred() != "co2" {
		t.Fatalf("no failover: preferred = %s", cli.Preferred())
	}
	if cli.StatsNow().Failovers == 0 {
		t.Fatal("failover not counted")
	}
	// The resynchronization pushed the logged submission to co2.
	if len(c2.jobs) != 1 {
		t.Fatalf("co2 jobs = %d, want 1 after failover sync", len(c2.jobs))
	}
}

func TestForcePreferred(t *testing.T) {
	w, cli, _ := rig(t, Config{})
	w.Schedule(0, func() { cli.ForcePreferred("elsewhere") })
	w.RunFor(time.Millisecond)
	if cli.Preferred() != "elsewhere" {
		t.Fatal("ForcePreferred ignored")
	}
}

func TestFetchCall(t *testing.T) {
	w, cli, fc := rig(t, Config{PollPeriod: time.Hour})
	w.Schedule(0, func() { cli.Submit("svc", []byte("a"), time.Second, 4) })
	w.RunFor(time.Second)
	fc.finish(1, "r1")
	w.Schedule(0, func() { cli.FetchCall(1) })
	w.RunFor(time.Second)
	if cli.ResultCount() != 1 {
		t.Fatal("targeted fetch did not deliver the result")
	}
	if fc.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", fc.fetches)
	}
}

func TestAdoptsResultForUnknownCall(t *testing.T) {
	// A result for a call the client lost (optimistic log crash): adopt.
	w, cli, fc := rig(t, Config{PollPeriod: time.Second})
	fc.finish(7, "ghost")
	w.RunFor(3 * time.Second)
	if cli.ResultCount() != 1 {
		t.Fatal("ghost result not adopted")
	}
	var seq proto.RPCSeq
	w.Schedule(0, func() { seq = cli.Submit("svc", nil, time.Second, 1) })
	w.RunFor(time.Millisecond)
	if seq != 8 {
		t.Fatalf("seq after adoption = %d, want 8 (no ID reuse)", seq)
	}
}

func TestGCNowDropsDeliveredOnly(t *testing.T) {
	w, cli, fc := rig(t, Config{Logging: msglog.BlockingPessimistic, PollPeriod: time.Second})
	w.Schedule(0, func() {
		cli.Submit("svc", []byte("a"), time.Second, 1)
		cli.Submit("svc", []byte("b"), time.Second, 1)
		cli.Submit("svc", []byte("c"), time.Second, 1)
	})
	w.RunFor(time.Second)
	fc.finish(1, "r1")
	fc.finish(3, "r3")
	w.RunFor(3 * time.Second)
	if cli.ResultCount() != 2 {
		t.Fatalf("setup: results = %d", cli.ResultCount())
	}
	var removed int
	w.Schedule(0, func() { removed = cli.GCNow() })
	w.RunFor(time.Millisecond)
	if removed != 2 {
		t.Fatalf("GC removed %d entries, want 2", removed)
	}
	if n := cli.StatsNow().LoggedSeqs; n != 1 {
		t.Fatalf("log holds %d entries after GC, want 1 (the undelivered call)", n)
	}
	// The undelivered call can still be resent from the surviving log.
	fc.jobs = make(map[proto.RPCSeq]*proto.Submit)
	w.Schedule(0, cli.SyncNow)
	w.RunFor(time.Second)
	if _, ok := fc.jobs[2]; !ok {
		t.Fatal("undelivered call 2 not resendable after GC")
	}
}
