// Package client implements the RPC-V first tier: the application-side
// component that submits RPC calls and collects results.
//
// The client never contacts servers: all calls go to its preferred
// coordinator, which virtualizes the execution (three-tier
// architecture). Submissions are non-blocking and tagged with a
// per-session counter; every outgoing submission is recorded in the
// sender-based message log using one of the three strategies of
// figure 4. Results are collected by periodically pulling the
// coordinator; submission and collection run concurrently.
//
// On coordinator silence the client suspects it, selects another from
// its list and synchronizes states from the local log (timestamp
// comparison). On restart after a crash, the client reloads its log,
// resynchronizes, and resumes exactly after the last RPC call
// registered on the Coordinator.
package client

import (
	"fmt"
	"sort"
	"time"

	"rpcv/internal/detector"
	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/shard"
	"rpcv/internal/statesync"
)

// Config parameterizes a client.
type Config struct {
	// User and Session identify this client instance's call IDs.
	User    proto.UserID
	Session proto.SessionID

	// Coordinators is the initial coordinator list.
	Coordinators []proto.NodeID

	// PollPeriod is the result-pull period. Default 1 s (the confined
	// platform pulls aggressively; real deployments may stretch this).
	PollPeriod time.Duration

	// SuspicionTimeout is the silence duration after which the
	// preferred coordinator is suspected. Default detector.DefaultTimeout.
	SuspicionTimeout time.Duration

	// Logging selects the message-logging strategy (figure 4).
	Logging msglog.Strategy

	// Disk models log-write latency; nil means msglog.IDEDisk(). On
	// the real runtime the store's batch commit owns the timing and
	// the model is ignored (see msglog's node.BatchDisk routing).
	Disk msglog.DiskModel

	// OnResult, when non-nil, is invoked once per completed call when
	// its result first reaches the client.
	OnResult func(res proto.Result, at time.Time)

	// OnSubmitComplete, when non-nil, is invoked when a submission
	// operation completes per the logging strategy's definition of
	// completion — the quantity figure 4 measures.
	OnSubmitComplete func(seq proto.RPCSeq, issued, completed time.Time)

	// AckResyncTimeout bounds how long a submission may stay
	// unacknowledged before the client triggers a synchronization to
	// resend it (a Submit lost on the best-effort network leaves no
	// other trace). Zero means 2x SuspicionTimeout; negative disables
	// the check (benchmarks measuring raw submission cost).
	AckResyncTimeout time.Duration

	// Shard is the cached consistent-hash shard map. When it describes
	// more than one ring, the client routes to its session's owner ring
	// first and walks the successor-shard chain on suspicion; a
	// ShardRedirect carrying a newer map replaces the cache. Nil means
	// unsharded routing over Coordinators.
	Shard *shard.Map

	// OnSyncReply, when non-nil, receives the round-trip time of each
	// completed client/coordinator synchronization (experiment hook:
	// the shard-scaling experiment reports sync latency per shard
	// count).
	OnSyncReply func(rtt time.Duration)

	// Codec selects the encoding of durably logged submissions. The
	// zero value is the binary codec; recovery auto-detects, so a log
	// written under either codec replays under either.
	Codec proto.Codec

	// Obs, when non-nil, receives labeled metrics (submissions,
	// completions, failovers, syncs, redirects, pending calls,
	// submit-to-result latency) and per-call lifecycle trace spans
	// (submit, logged-durable, ack). Nil disables instrumentation at
	// zero cost.
	Obs *obs.Observer
}

func (c *Config) applyDefaults() {
	if c.PollPeriod <= 0 {
		c.PollPeriod = time.Second
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = detector.DefaultTimeout
	}
	if c.User == "" {
		c.User = "user"
	}
	if c.AckResyncTimeout == 0 {
		c.AckResyncTimeout = 2 * c.SuspicionTimeout
	}
}

// call tracks one submitted RPC on the client.
//
// A submission operation is *complete* — the quantity figure 4 measures
// — when (a) the coordinator acknowledged the registration (the call
// and its parameters crossed the network and entered the database) and
// (b) the logging strategy's gate cleared: immediately for optimistic,
// after the durable write for the pessimistic protocols. For blocking
// pessimistic the write precedes the send, so (b) always precedes (a).
type call struct {
	submit     *proto.Submit
	issued     time.Time
	lastResent time.Time // last (re)transmission, for the ack check
	logDone    bool      // the strategy's logging gate has cleared
	acked      bool      // coordinator acknowledged registration
	completed  bool      // both conditions met; callback fired
	result     *proto.Result
}

// Client is the application-side node handler. Its fields are
// loop-private: every access must come from handler code or be
// marshalled through rt.Do/DoAsync.
//
//rpcv:loop-owned
type Client struct {
	cfg Config
	env node.Env

	log     *msglog.Log
	coords  []proto.NodeID
	pref    proto.NodeID
	monitor *detector.Monitor
	smap    *shard.Map

	syncSentAt time.Time // pending sync round trip, for OnSyncReply

	nextSeq proto.RPCSeq
	calls   map[proto.RPCSeq]*call

	pollTimer node.Timer
	ackTimer  node.Timer
	stopped   bool

	// fetchQueue holds the sequence numbers still to pull one-by-one
	// after a lost-log synchronization; fetchRetry re-asks for the head
	// if the reply is lost, with exponential backoff so that a slow
	// (large) reply in transit is not re-requested forever.
	fetchQueue    []proto.RPCSeq
	fetchRetry    node.Timer
	fetchAttempts int

	submitted int
	completed int
	failovers int
	syncs     int
	redirects int

	cm clientMetrics
}

// clientMetrics holds the client's registered obs instruments. All
// fields no-op when nil (Config.Obs unset).
type clientMetrics struct {
	submitted, completed, results, failovers, syncs, redirects *obs.Counter
	pending                                                    *obs.Gauge
	callLatency                                                *obs.Histogram
}

// New creates a client handler.
func New(cfg Config) *Client {
	cfg.applyDefaults()
	return &Client{cfg: cfg}
}

var _ node.Handler = (*Client)(nil)

// Start implements node.Handler. A restarting client replays its
// durable submission log: the application rolls back to the point
// exactly following the last registered call.
//
//rpcv:loop-only
func (c *Client) Start(env node.Env) {
	c.env = env
	c.stopped = false
	c.calls = make(map[proto.RPCSeq]*call)
	c.coords = statesync.MergeNodeLists(c.cfg.Coordinators)
	c.smap = c.cfg.Shard
	c.syncSentAt = time.Time{}
	c.log = msglog.New(env, msglog.Config{
		Prefix:   "client/submit/",
		Strategy: c.cfg.Logging,
		Disk:     c.cfg.Disk,
	})
	if reg := c.cfg.Obs.Registry(); reg != nil {
		n := obs.L("node", string(env.Self()))
		c.cm = clientMetrics{
			submitted:   reg.Counter("rpcv_client_submitted_total", n),
			completed:   reg.Counter("rpcv_client_submit_completed_total", n),
			results:     reg.Counter("rpcv_client_results_total", n),
			failovers:   reg.Counter("rpcv_client_failovers_total", n),
			syncs:       reg.Counter("rpcv_client_syncs_total", n),
			redirects:   reg.Counter("rpcv_client_redirects_total", n),
			pending:     reg.Gauge("rpcv_client_pending_calls", n),
			callLatency: reg.Histogram("rpcv_client_call_latency_ns", n),
		}
	}
	c.nextSeq = 0
	c.recoverFromLog()

	c.monitor = detector.NewMonitor(env, detector.MonitorConfig{
		Timeout:   c.cfg.SuspicionTimeout,
		OnSuspect: c.onCoordinatorSuspected,
	})
	c.pickPreferred()
	// Synchronize with the coordinator only when there is state to
	// reconcile (a restart with recovered calls); a pristine client has
	// nothing to exchange, and an initial sync would race its first
	// submissions, duplicating them.
	if c.pref != "" && len(c.calls) > 0 {
		c.sendSync()
	}
	c.schedulePoll()
	c.scheduleAckCheck()
	c.notePending()
}

// trace records one lifecycle span for a call on this node's tracer.
func (c *Client) trace(call proto.CallID, stage obs.Stage, detail string) {
	c.cfg.Obs.Tracer().EventAt(c.env.Now(), call, stage, detail)
}

// notePending refreshes the pending-calls gauge. Event-loop only.
func (c *Client) notePending() {
	if c.cm.pending == nil {
		return
	}
	n := 0
	for _, cl := range c.calls {
		if cl.result == nil {
			n++
		}
	}
	c.cm.pending.SetInt(n)
}

// scheduleAckCheck periodically verifies that every submission was
// acknowledged; a long-unacked call means the Submit (or its ack) was
// lost, and a synchronization will resend it. This is the paper's
// "components synchronize their local state from these logs on each
// communication", run proactively.
func (c *Client) scheduleAckCheck() {
	if c.cfg.AckResyncTimeout < 0 {
		return
	}
	c.ackTimer = c.env.After(c.cfg.AckResyncTimeout/2, func() {
		now := c.env.Now()
		for _, cl := range c.calls {
			if cl.submit != nil && !cl.acked &&
				now.Sub(cl.lastResent) >= c.cfg.AckResyncTimeout {
				c.sendSync()
				break
			}
		}
		if !c.stopped {
			c.scheduleAckCheck()
		}
	})
}

// Stop implements node.Handler.
//
//rpcv:loop-only
func (c *Client) Stop() {
	c.stopped = true
	if c.monitor != nil {
		c.monitor.Close()
	}
	if c.pollTimer != nil {
		c.pollTimer.Stop()
	}
	if c.ackTimer != nil {
		c.ackTimer.Stop()
	}
	if c.log != nil {
		c.log.Close()
	}
}

func (c *Client) recoverFromLog() {
	var dec proto.Decoder // one decoder: recovery interns repeated IDs
	for _, key := range c.log.Keys() {
		raw, ok := c.log.Get(key)
		if !ok {
			continue
		}
		msg, err := dec.DecodeMessage(raw)
		if err != nil {
			c.env.Logf("client: corrupt log entry %s: %v", key, err)
			continue
		}
		sub, ok := msg.(*proto.Submit)
		if !ok {
			continue
		}
		c.calls[sub.Call.Seq] = &call{
			submit: sub, issued: c.env.Now(),
			logDone: true, acked: true, completed: true,
		}
		if sub.Call.Seq > c.nextSeq {
			c.nextSeq = sub.Call.Seq
		}
	}
	if len(c.calls) > 0 {
		c.env.Logf("client: recovered %d calls from log, resuming at seq %d", len(c.calls), c.nextSeq+1)
	}
}

func (c *Client) pickPreferred() {
	order := c.routeOrder()
	for _, id := range order {
		if !c.monitor.Suspected(id) {
			if c.pref != id {
				c.pref = id
				c.monitor.Watch(id)
			}
			return
		}
	}
	if len(order) > 0 {
		c.pref = order[0]
	}
}

// routeOrder returns the coordinators in failover preference order.
// Unsharded: the merged list's common sorted order. Sharded: the
// session's owner ring first, then the successor-shard chain — so a
// whole-ring loss steers the client to exactly the ring that adopted
// its sessions — plus any coordinators learned outside the map, last.
func (c *Client) routeOrder() []proto.NodeID {
	if c.smap == nil || c.smap.Shards() <= 1 {
		return c.coords
	}
	order := c.smap.RouteOrder(c.cfg.User, c.cfg.Session)
	seen := make(map[proto.NodeID]bool, len(order))
	for _, id := range order {
		seen[id] = true
	}
	for _, id := range c.coords {
		if !seen[id] {
			order = append(order, id)
		}
	}
	return order
}

func (c *Client) onCoordinatorSuspected(id proto.NodeID) {
	if id != c.pref {
		return
	}
	c.env.Logf("client: suspect coordinator %s, failing over", id)
	c.failovers++
	c.cm.failovers.Inc()
	c.pickPreferred()
	c.sendSync()
}

// ForcePreferred overrides coordinator selection (figure 11 forces the
// client to submit to a specific coordinator).
func (c *Client) ForcePreferred(id proto.NodeID) {
	c.pref = id
	c.monitor.Watch(id)
}

// ---------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------

// Submit issues one non-blocking RPC call and returns its sequence
// number. Event-loop only (experiments schedule it onto the loop).
func (c *Client) Submit(service string, params []byte, execTime time.Duration, resultSize int) proto.RPCSeq {
	return c.SubmitWithDeadline(service, params, execTime, resultSize, 0)
}

// SubmitWithDeadline issues one non-blocking RPC call carrying a soft
// completion deadline (relative to the coordinator's registration of
// the call). Coordinators running the "deadline" scheduling policy
// serve pending work earliest-deadline-first; zero means no deadline
// and other policies ignore it entirely. Event-loop only.
func (c *Client) SubmitWithDeadline(service string, params []byte, execTime time.Duration, resultSize int, deadline time.Duration) proto.RPCSeq {
	c.nextSeq++
	seq := c.nextSeq
	sub := &proto.Submit{
		Call:       proto.CallID{User: c.cfg.User, Session: c.cfg.Session, Seq: seq},
		Service:    service,
		Params:     params,
		ExecTime:   execTime,
		ResultSize: resultSize,
		Deadline:   deadline,
	}
	cl := &call{submit: sub, issued: c.env.Now(), lastResent: c.env.Now()}
	c.calls[seq] = cl
	c.submitted++
	c.cm.submitted.Inc()
	c.trace(sub.Call, obs.StageSubmit, service)
	c.notePending()
	c.sendSubmit(cl)
	return seq
}

func (c *Client) sendSubmit(cl *call) {
	seq := cl.submit.Call.Seq
	entry := msglog.Entry{
		Key:  fmt.Sprintf("%020d", seq),
		Data: c.cfg.Codec.EncodeMessage(cl.submit),
	}
	c.log.LogAndSend(c.pref, cl.submit, entry, func() {
		cl.logDone = true
		c.trace(cl.submit.Call, obs.StageDurable, "submit log")
		c.maybeComplete(cl)
	})
}

// maybeComplete fires the submission-complete callback once both the
// log gate and the coordinator ack are in.
func (c *Client) maybeComplete(cl *call) {
	if cl.completed || !cl.logDone || !cl.acked {
		return
	}
	cl.completed = true
	c.completed++
	c.cm.completed.Inc()
	if c.cfg.OnSubmitComplete != nil {
		c.cfg.OnSubmitComplete(cl.submit.Call.Seq, cl.issued, c.env.Now())
	}
}

// resendSubmit retransmits a logged submission (synchronization found
// it missing on the coordinator). No completion callback: the original
// operation already completed from the application's point of view.
func (c *Client) resendSubmit(seq proto.RPCSeq) {
	cl, ok := c.calls[seq]
	if !ok || cl.submit == nil {
		return
	}
	cl.lastResent = c.env.Now()
	c.env.Send(c.pref, cl.submit)
}

// ---------------------------------------------------------------------
// Result collection
// ---------------------------------------------------------------------

func (c *Client) schedulePoll() {
	c.pollTimer = c.env.After(c.cfg.PollPeriod, func() {
		c.pollNow()
		if !c.stopped {
			c.schedulePoll()
		}
	})
}

func (c *Client) pollNow() {
	if c.pref == "" {
		return
	}
	var have []proto.RPCSeq
	for seq, cl := range c.calls {
		if cl.result != nil {
			have = append(have, seq)
		}
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	c.env.Send(c.pref, &proto.Poll{User: c.cfg.User, Session: c.cfg.Session, Have: have})
}

// Receive implements node.Handler.
//
//rpcv:loop-only
func (c *Client) Receive(from proto.NodeID, msg proto.Message) {
	if c.stopped {
		return
	}
	switch m := msg.(type) {
	case *proto.SubmitAck:
		c.handleSubmitAck(from, m)
	case *proto.Results:
		c.handleResults(from, m)
	case *proto.SyncReply:
		c.handleSyncReply(from, m)
	case *proto.FetchReply:
		c.handleFetchReply(from, m)
	case *proto.ShardRedirect:
		c.handleShardRedirect(from, m)
	case *proto.ShardMapReply:
		c.handleShardMapReply(from, m)
	default:
		c.env.Logf("client: unexpected %s from %s", msg.Kind(), from)
	}
}

// handleShardRedirect processes a "wrong ring" answer: adopt the newer
// map if the coordinator sent one, re-route, and retransmit the bounced
// submission. When the map is already current the redirect means our
// suspicion-driven failover outran the owner ring's adoption by its
// successor; the preferred pick stands and the periodic poll/ack-resync
// machinery retries until the successor starts accepting.
func (c *Client) handleShardRedirect(from proto.NodeID, m *proto.ShardRedirect) {
	c.monitor.Observe(from)
	if m.User != c.cfg.User || m.Session != c.cfg.Session {
		return
	}
	c.redirects++
	c.cm.redirects.Inc()
	updated := false
	if !m.Map.Empty() && (c.smap == nil || m.Map.Version > c.smap.Version()) {
		c.smap = shard.FromState(m.Map)
		updated = true
		c.env.Logf("client: shard map updated to version %d (%d shards)", c.smap.Version(), c.smap.Shards())
	}
	prev := c.pref
	c.pickPreferred()
	moved := c.pref != prev
	// Resend the bounced call only when the routing actually changed;
	// an unconditional resend to an unchanged preferred would bounce
	// straight back, a redirect/resend loop paced only by the network.
	if m.Call.Seq != 0 && (updated || moved) {
		c.resendSubmit(m.Call.Seq)
	}
	if moved {
		c.sendSync()
	}
}

// handleShardMapReply caches a newer topology from an explicit
// ShardMapRequest.
func (c *Client) handleShardMapReply(from proto.NodeID, m *proto.ShardMapReply) {
	c.monitor.Observe(from)
	if m.Map.Empty() {
		return
	}
	if c.smap == nil || m.Map.Version > c.smap.Version() {
		c.smap = shard.FromState(m.Map)
		c.pickPreferred()
	}
}

// RequestShardMap asks the preferred coordinator for the current shard
// topology (a client booting without a cached map).
func (c *Client) RequestShardMap() {
	if c.pref == "" {
		return
	}
	c.env.Send(c.pref, &proto.ShardMapRequest{From: c.env.Self()})
}

func (c *Client) handleSubmitAck(from proto.NodeID, m *proto.SubmitAck) {
	c.monitor.Observe(from)
	if cl, ok := c.calls[m.Call.Seq]; ok {
		cl.acked = true
		if cl.submit != nil {
			c.maybeComplete(cl)
		}
	}
}

func (c *Client) handleResults(from proto.NodeID, m *proto.Results) {
	c.monitor.Observe(from)
	if m.User != c.cfg.User || m.Session != c.cfg.Session {
		return
	}
	for i := range m.Results {
		res := m.Results[i]
		cl, ok := c.calls[res.Call.Seq]
		if !ok {
			// Result for a call from a lost log suffix (optimistic
			// logging crash): adopt it — the computation is not wasted.
			cl = &call{issued: c.env.Now(), completed: true}
			c.calls[res.Call.Seq] = cl
			if res.Call.Seq > c.nextSeq {
				c.nextSeq = res.Call.Seq
			}
		}
		if cl.result != nil {
			continue // duplicate delivery
		}
		cl.result = &res
		c.noteResult(cl, res.Call)
		if c.cfg.OnResult != nil {
			c.cfg.OnResult(res, c.env.Now())
		}
	}
	c.notePending()
}

// noteResult records the metrics and the terminal trace span for one
// newly delivered result.
func (c *Client) noteResult(cl *call, id proto.CallID) {
	c.cm.results.Inc()
	if c.cm.callLatency != nil && !cl.issued.IsZero() {
		c.cm.callLatency.Observe(int64(c.env.Now().Sub(cl.issued)))
	}
	c.trace(id, obs.StageAck, "result delivered")
}

// ---------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------

// sendSync opens the client/coordinator synchronization: exchange of
// maximum timestamps, then resend of whatever the coordinator lacks.
func (c *Client) sendSync() {
	if c.pref == "" {
		return
	}
	c.syncs++
	c.cm.syncs.Inc()
	c.syncSentAt = c.env.Now()
	c.env.Send(c.pref, &proto.SyncRequest{
		User:    c.cfg.User,
		Session: c.cfg.Session,
		MaxSeq:  c.maxLoggedSeq(),
		HaveLog: c.log.Len() > 0,
	})
}

// SyncNow triggers a synchronization round (experiment hook, fig. 6).
func (c *Client) SyncNow() { c.sendSync() }

func (c *Client) maxLoggedSeq() proto.RPCSeq {
	var max proto.RPCSeq
	for seq, cl := range c.calls {
		if cl.submit != nil && seq > max {
			max = seq
		}
	}
	return max
}

func (c *Client) handleSyncReply(from proto.NodeID, m *proto.SyncReply) {
	c.monitor.Observe(from)
	if m.User != c.cfg.User || m.Session != c.cfg.Session {
		return
	}
	if c.cfg.OnSyncReply != nil && !c.syncSentAt.IsZero() {
		c.cfg.OnSyncReply(c.env.Now().Sub(c.syncSentAt))
	}
	c.syncSentAt = time.Time{}
	// Resend calls the coordinator does not know. Known lists only
	// arrive when we lost our log; with a log we conservatively resend
	// everything past the coordinator's max plus any unacked below it.
	if len(m.Known) > 0 {
		// Slow direction (coordinator logs only): adopt the
		// coordinator's view for the calls we lost. Retrieving this
		// list is the "additional overhead, before the actual logs
		// exchange begins" of figure 6; the result payloads then flow
		// back through the bulk pull below.
		for _, seq := range m.Known {
			if _, ok := c.calls[seq]; !ok {
				c.calls[seq] = &call{
					issued:  c.env.Now(),
					logDone: true, acked: true, completed: true,
				}
				if seq > c.nextSeq {
					c.nextSeq = seq
				}
			}
		}
	}
	// Resend every locally logged call the coordinator does not know —
	// including holes below its maximum timestamp (submissions lost on
	// the wire).
	for _, seq := range statesync.MissingSeqs(c.maxLoggedSeq(), m.Known) {
		c.resendSubmit(seq)
	}
	// Pull results we may have missed while away — unless a fetch chain
	// is rebuilding them one by one already (pulling everything again
	// in one bulk reply would double every transfer).
	if len(c.fetchQueue) == 0 {
		c.pollNow()
	}
}

// FetchCall pulls one specific call's stored state from the preferred
// coordinator (a targeted, connection-less recovery interaction). The
// bulk poll covers normal recovery; FetchCall serves tooling that wants
// a single result without transferring the whole session.
func (c *Client) FetchCall(seq proto.RPCSeq) {
	c.fetchQueue = append(c.fetchQueue, seq)
	if len(c.fetchQueue) == 1 {
		c.fetchNext()
	}
}

// fetchNext pulls the head of the fetch queue, with a backoff retry
// timer in case the request or reply is lost. Large replies may take
// longer than the base retry to cross the network, so the delay doubles
// per attempt (capped), avoiding cascades of duplicate transfers.
func (c *Client) fetchNext() {
	if c.fetchRetry != nil {
		c.fetchRetry.Stop()
		c.fetchRetry = nil
	}
	if len(c.fetchQueue) == 0 || c.pref == "" {
		c.fetchAttempts = 0
		return
	}
	seq := c.fetchQueue[0]
	c.env.Send(c.pref, &proto.FetchResult{
		User:    c.cfg.User,
		Session: c.cfg.Session,
		Seq:     seq,
	})
	delay := 15 * time.Second << c.fetchAttempts
	if delay > 10*time.Minute {
		delay = 10 * time.Minute
	}
	c.fetchAttempts++
	c.fetchRetry = c.env.After(delay, c.fetchNext)
}

func (c *Client) handleFetchReply(from proto.NodeID, m *proto.FetchReply) {
	c.monitor.Observe(from)
	if m.Call.User != c.cfg.User || m.Call.Session != c.cfg.Session {
		return
	}
	if len(c.fetchQueue) > 0 && c.fetchQueue[0] == m.Call.Seq {
		c.fetchQueue = c.fetchQueue[1:]
		c.fetchAttempts = 0 // the head advanced: fresh backoff
	}
	if m.Finished {
		if cl, ok := c.calls[m.Call.Seq]; ok && cl.result == nil {
			res := m.Result
			cl.result = &res
			c.noteResult(cl, res.Call)
			c.notePending()
			if c.cfg.OnResult != nil {
				c.cfg.OnResult(res, c.env.Now())
			}
		}
	}
	c.fetchNext()
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

// Stats is a snapshot of client counters.
type Stats struct {
	Submitted  int
	Completed  int // submission ops completed (strategy-dependent)
	Acked      int
	Results    int
	Failovers  int
	Syncs      int
	Redirects  int
	Preferred  proto.NodeID
	LoggedSeqs int
}

// StatsNow returns current counters. Event-loop only.
func (c *Client) StatsNow() Stats {
	st := Stats{
		Submitted:  c.submitted,
		Completed:  c.completed,
		Failovers:  c.failovers,
		Syncs:      c.syncs,
		Redirects:  c.redirects,
		Preferred:  c.pref,
		LoggedSeqs: c.log.Len(),
	}
	for _, cl := range c.calls {
		if cl.acked {
			st.Acked++
		}
		if cl.result != nil {
			st.Results++
		}
	}
	return st
}

// ResultCount returns the number of distinct completed calls.
func (c *Client) ResultCount() int {
	n := 0
	for _, cl := range c.calls {
		if cl.result != nil {
			n++
		}
	}
	return n
}

// Result returns the stored result for seq, if any.
func (c *Client) Result(seq proto.RPCSeq) (*proto.Result, bool) {
	cl, ok := c.calls[seq]
	if !ok || cl.result == nil {
		return nil, false
	}
	return cl.result, true
}

// Preferred returns the current preferred coordinator.
func (c *Client) Preferred() proto.NodeID { return c.pref }

// ShardMap returns the currently cached shard map (nil when unsharded).
func (c *Client) ShardMap() *shard.Map { return c.smap }

// GCNow garbage-collects the message log: entries whose calls have a
// delivered result are flushed (their information is safely stored
// locally and on the coordinator). Logging capacities are bounded, so
// the paper distributes garbage collection among all components,
// triggered locally by conditions or explicitly by the user — this is
// the explicit trigger. It returns the number of entries removed.
func (c *Client) GCNow() int {
	return c.log.GC(func(key string) bool {
		var seq proto.RPCSeq
		if _, err := fmt.Sscanf(key, "%d", &seq); err != nil {
			return false // foreign key: leave it alone
		}
		cl, ok := c.calls[seq]
		return ok && cl.result != nil
	})
}
