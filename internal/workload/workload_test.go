package workload

import (
	"testing"
	"time"
)

func TestSynthetic(t *testing.T) {
	calls := Synthetic(16, 10*time.Second, 300, 64)
	if len(calls) != 16 {
		t.Fatalf("len = %d, want 16", len(calls))
	}
	for _, c := range calls {
		if c.ExecTime != 10*time.Second || c.ParamSize != 300 || c.ResultSize != 64 {
			t.Fatalf("unexpected call %+v", c)
		}
		if c.Service != "synthetic" {
			t.Fatalf("service = %q", c.Service)
		}
	}
}

func TestAlcatelDeterministic(t *testing.T) {
	a := Alcatel(AlcatelConfig{Tasks: 100, Seed: 5})
	b := Alcatel(AlcatelConfig{Tasks: 100, Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Alcatel(AlcatelConfig{Tasks: 100, Seed: 6})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestAlcatelDefaults(t *testing.T) {
	calls := Alcatel(AlcatelConfig{})
	if len(calls) != 1000 {
		t.Fatalf("default task count = %d, want 1000", len(calls))
	}
	for _, c := range calls {
		if c.ExecTime < 5*time.Second {
			t.Fatalf("task below minimum duration: %v", c.ExecTime)
		}
		if c.ParamSize != 2<<10 || c.ResultSize != 8<<10 {
			t.Fatalf("default sizes wrong: %+v", c)
		}
	}
}

func TestAlcatelWideRange(t *testing.T) {
	// The paper: "the tasks duration varies in a wide range". Expect a
	// long-tailed distribution: max >> median, p90 > 2x median.
	st := Summarize(Alcatel(AlcatelConfig{Tasks: 1000, Seed: 2004}))
	if st.Max < 5*st.Median {
		t.Errorf("max %v not >> median %v", st.Max, st.Median)
	}
	if st.P90 < 2*st.Median {
		t.Errorf("p90 %v not heavy-tailed vs median %v", st.P90, st.Median)
	}
	if st.Mean <= st.Median {
		t.Errorf("mean %v <= median %v: not right-skewed", st.Mean, st.Median)
	}
}

func TestDurationHistogram(t *testing.T) {
	calls := []Call{
		{ExecTime: 10 * time.Second},
		{ExecTime: 40 * time.Second},
		{ExecTime: 45 * time.Second},
		{ExecTime: 10 * time.Minute}, // overflow bucket
	}
	bounds, counts := DurationHistogram(calls, 30*time.Second, 4)
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatal("bucket count wrong")
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(calls) {
		t.Fatalf("histogram total %d != %d calls", total, len(calls))
	}
}

func TestSummarize(t *testing.T) {
	calls := []Call{
		{ExecTime: 1 * time.Second},
		{ExecTime: 2 * time.Second},
		{ExecTime: 3 * time.Second},
		{ExecTime: 10 * time.Second},
	}
	st := Summarize(calls)
	if st.Count != 4 || st.Min != time.Second || st.Max != 10*time.Second {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 4*time.Second || st.Total != 16*time.Second {
		t.Fatalf("mean/total = %v/%v", st.Mean, st.Total)
	}
	if st.Median != 3*time.Second { // index 2 of sorted [1 2 3 10]
		t.Fatalf("median = %v", st.Median)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summarize not zero")
	}
}
