// Package workload generates the two workloads of the paper's
// evaluation:
//
//   - the synthetic benchmark of the confined experiments: a set of
//     non-blocking RPC calls with configurable execution time,
//     parameter size and result size (§5.1); and
//   - the real-life Alcatel application: a commutation-network
//     validation tool split into 1000 parallel tasks whose durations
//     vary "in a wide range" (figure 8 shows the distribution).
//
// The Alcatel binary is proprietary; we substitute a deterministic
// sampler whose histogram reproduces figure 8's shape: a dominant mass
// of short tasks with a long right tail of multi-minute ones, modelled
// as a mixture of a log-normal body and a heavy tail.
package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Call describes one RPC to submit.
type Call struct {
	Service    string
	ParamSize  int
	ExecTime   time.Duration
	ResultSize int
}

// Synthetic returns n identical benchmark calls, matching the confined
// experiments' configuration knobs.
func Synthetic(n int, execTime time.Duration, paramSize, resultSize int) []Call {
	calls := make([]Call, n)
	for i := range calls {
		calls[i] = Call{
			Service:    "synthetic",
			ParamSize:  paramSize,
			ExecTime:   execTime,
			ResultSize: resultSize,
		}
	}
	return calls
}

// AlcatelConfig parameterizes the Alcatel-like task mix.
type AlcatelConfig struct {
	// Tasks is the number of parallel tasks (the paper runs 1000).
	Tasks int
	// Seed drives the deterministic sampler.
	Seed int64
	// Median is the median duration of the log-normal body.
	// Default 90 s.
	Median time.Duration
	// Sigma is the log-normal shape parameter. Default 0.55.
	Sigma float64
	// TailFraction is the share of heavy-tail tasks. Default 0.08.
	TailFraction float64
	// TailScale stretches tail tasks relative to the body. Default 4.
	TailScale float64
	// ParamSize and ResultSize are the per-task payload sizes
	// (network-configuration description in, signal-loss/bandwidth
	// report out). Defaults 2 KiB / 8 KiB.
	ParamSize  int
	ResultSize int
}

func (c *AlcatelConfig) applyDefaults() {
	if c.Tasks <= 0 {
		c.Tasks = 1000
	}
	if c.Seed == 0 {
		c.Seed = 2004
	}
	if c.Median <= 0 {
		c.Median = 90 * time.Second
	}
	if c.Sigma == 0 {
		c.Sigma = 0.55
	}
	if c.TailFraction == 0 {
		c.TailFraction = 0.08
	}
	if c.TailScale == 0 {
		c.TailScale = 4
	}
	if c.ParamSize == 0 {
		c.ParamSize = 2 << 10
	}
	if c.ResultSize == 0 {
		c.ResultSize = 8 << 10
	}
}

// Alcatel samples the task mix. The same config always yields the same
// call list.
func Alcatel(cfg AlcatelConfig) []Call {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mu := math.Log(cfg.Median.Seconds())
	calls := make([]Call, cfg.Tasks)
	for i := range calls {
		d := math.Exp(mu + cfg.Sigma*rng.NormFloat64())
		if rng.Float64() < cfg.TailFraction {
			// Heavy tail: long validation scenarios.
			d *= cfg.TailScale * (1 + rng.Float64())
		}
		if d < 5 {
			d = 5 // even trivial configurations take a few seconds
		}
		calls[i] = Call{
			Service:    "alcatel",
			ParamSize:  cfg.ParamSize,
			ExecTime:   time.Duration(d * float64(time.Second)),
			ResultSize: cfg.ResultSize,
		}
	}
	return calls
}

// DurationHistogram bins call durations into fixed-width buckets,
// returning bucket upper bounds and counts — figure 8's histogram.
func DurationHistogram(calls []Call, width time.Duration, buckets int) (bounds []time.Duration, counts []int) {
	bounds = make([]time.Duration, buckets)
	counts = make([]int, buckets)
	for i := range bounds {
		bounds[i] = time.Duration(i+1) * width
	}
	for _, c := range calls {
		idx := int(c.ExecTime / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	return bounds, counts
}

// Stats summarizes a call list's durations.
type Stats struct {
	Count          int
	Min, Max, Mean time.Duration
	Median         time.Duration
	Total          time.Duration
	P90            time.Duration
}

// Summarize computes duration statistics for a call list.
func Summarize(calls []Call) Stats {
	if len(calls) == 0 {
		return Stats{}
	}
	ds := make([]time.Duration, len(calls))
	var total time.Duration
	min, max := calls[0].ExecTime, calls[0].ExecTime
	for i, c := range calls {
		ds[i] = c.ExecTime
		total += c.ExecTime
		if c.ExecTime < min {
			min = c.ExecTime
		}
		if c.ExecTime > max {
			max = c.ExecTime
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return Stats{
		Count:  len(calls),
		Min:    min,
		Max:    max,
		Mean:   total / time.Duration(len(calls)),
		Median: ds[len(ds)/2],
		P90:    ds[(len(ds)*9)/10],
		Total:  total,
	}
}
