package rt

import (
	"errors"
	"testing"
	"time"

	"rpcv/internal/proto"
	"rpcv/internal/store"
)

// WrapStore must interpose after the engine opens (directory-refusal
// already run) and the injected faults must surface to loop code.
func TestWrapStoreInjectsFaults(t *testing.T) {
	plan := &store.FaultPlan{}
	a := &echo{}
	ra, err := Start(Config{
		ID: "a", Handler: a, DiskDir: t.TempDir(), Store: "wal",
		Logf:      quietLogf,
		WrapStore: func(s store.Store) store.Store { return store.WithFaults(s, plan) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	var preErr, faultErr error
	ra.Do(func() { preErr = a.env.Disk().Write("k1", []byte("v1")) })
	plan.FailCommits(1)
	ra.Do(func() { faultErr = a.env.Disk().Write("k2", []byte("v2")) })
	if preErr != nil {
		t.Fatalf("pre-fault write: %v", preErr)
	}
	if !errors.Is(faultErr, store.ErrInjected) {
		t.Fatalf("faulted write: got %v, want ErrInjected", faultErr)
	}
	var v []byte
	var ok bool
	ra.Do(func() { v, ok = a.env.Disk().Read("k1") })
	if !ok || string(v) != "v1" {
		t.Fatalf("pre-fault value lost: %q, %v", v, ok)
	}
}

// A runtime opening a wal directory through WrapStore must still refuse
// the files engine: the wrapper attaches after the refusal check.
func TestWrapStorePreservesEngineRefusal(t *testing.T) {
	dir := t.TempDir()
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("k", []byte("v")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()

	_, err = Start(Config{
		ID: "a2", Handler: &echo{}, DiskDir: dir, Store: "files", Logf: quietLogf,
		WrapStore: func(s store.Store) store.Store { return store.WithFaults(s, &store.FaultPlan{}) },
	})
	if err == nil {
		t.Fatal("files engine over a wal dir must refuse even with WrapStore set")
	}
}

func TestSetClockOffsetSkewsEnvNow(t *testing.T) {
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	const skew = 45 * time.Minute
	ra.SetClockOffset(skew)
	if got := ra.ClockOffset(); got != skew {
		t.Fatalf("ClockOffset = %v, want %v", got, skew)
	}
	var now time.Time
	ra.Do(func() { now = a.env.Now() })
	if d := time.Until(now); d < skew-time.Minute || d > skew+time.Minute {
		t.Fatalf("env.Now skew = %v, want ~%v", d, skew)
	}
	ra.SetClockOffset(0)
	ra.Do(func() { now = a.env.Now() })
	if d := time.Until(now); d > time.Minute || d < -time.Minute {
		t.Fatalf("env.Now after reset off by %v", d)
	}
}

// StallLoop freezes the loop (posted work waits out the stall) while
// the process and its listener stay up — stalled, not dead.
func TestStallLoopDelaysWorkButNotTCP(t *testing.T) {
	a := &echo{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	const stall = 300 * time.Millisecond
	start := time.Now()
	ra.StallLoops(stall)
	if err := ra.Ping(5 * time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if took := time.Since(start); took < stall {
		t.Fatalf("work ran after %v, want >= %v (loop not stalled)", took, stall)
	}

	// The listener kept accepting during the stall window: a peer's
	// pooled connection would have stayed up, only silence on top.
	b := &echo{}
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	ra.StallLoops(stall)
	rb.SetPeer("a", ra.Addr())
	rb.Do(func() { b.env.Send("a", &proto.Heartbeat{From: "b", Role: proto.RoleServer}) })
	deadline := time.Now().Add(5 * time.Second)
	for a.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if a.count() == 0 {
		t.Fatal("message sent during stall never delivered after stall elapsed")
	}
}
