package rt

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/server"
)

// echo is a trivial handler replying to every message with the same
// message.
type echo struct {
	env  node.Env
	mu   sync.Mutex
	seen []proto.Message
}

func (e *echo) Start(env node.Env) { e.env = env }
func (e *echo) Stop()              {}
func (e *echo) Receive(from proto.NodeID, m proto.Message) {
	e.mu.Lock()
	e.seen = append(e.seen, m)
	e.mu.Unlock()
	if _, isHB := m.(*proto.Heartbeat); isHB {
		e.env.Send(from, &proto.HeartbeatAck{From: e.env.Self()})
	}
}

func (e *echo) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.seen)
}

func quietLogf(string, ...any) {}

func TestMessageExchangeOverTCP(t *testing.T) {
	a := &echo{}
	b := &echo{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	ra.SetPeer("b", rb.Addr())
	rb.SetPeer("a", ra.Addr())

	ra.Do(func() { a.env.Send("b", &proto.Heartbeat{From: "a", Role: proto.RoleServer}) })
	deadline := time.Now().Add(5 * time.Second)
	for b.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if b.count() == 0 {
		t.Fatal("message never arrived over TCP")
	}
	// The reply (HeartbeatAck) flows back.
	for a.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if a.count() == 0 {
		t.Fatal("reply never arrived")
	}
}

func TestSendToUnknownPeerDropped(t *testing.T) {
	a := &echo{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	// Must not panic or block.
	ra.Do(func() { a.env.Send("ghost", &proto.Heartbeat{From: "a"}) })
}

func TestTimers(t *testing.T) {
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	fired := make(chan struct{})
	var cancelled bool
	ra.Do(func() {
		a.env.After(20*time.Millisecond, func() { close(fired) })
		tm := a.env.After(20*time.Millisecond, func() { cancelled = true })
		tm.Stop()
	})
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	time.Sleep(100 * time.Millisecond)
	ra.Do(func() {})
	if cancelled {
		t.Fatal("stopped timer fired")
	}
}

func TestFileDiskPersistsAcrossRuntimes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "disk")
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("msglog/00001", []byte("payload")); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := a.env.Disk().Write("other/x", []byte("y")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()

	// A new incarnation sees the data (crash-restart persistence).
	b := &echo{}
	rb, err := Start(Config{ID: "a", Handler: b, DiskDir: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	rb.Do(func() {
		v, ok := b.env.Disk().Read("msglog/00001")
		if !ok || string(v) != "payload" {
			t.Errorf("read = %q,%v", v, ok)
		}
		keys := b.env.Disk().Keys("msglog/")
		if len(keys) != 1 || keys[0] != "msglog/00001" {
			t.Errorf("keys = %v", keys)
		}
		if err := b.env.Disk().Delete("msglog/00001"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, ok := b.env.Disk().Read("msglog/00001"); ok {
			t.Error("delete ineffective")
		}
	})
}

// TestEndToEndGridOverTCP runs a real miniature grid on loopback:
// one coordinator, two servers, one client, millisecond timescales.
func TestEndToEndGridOverTCP(t *testing.T) {
	const (
		beat    = 50 * time.Millisecond
		suspect = 500 * time.Millisecond
	)
	dirOf := func(name string) string { return filepath.Join(t.TempDir(), name) }

	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatTimeout: suspect,
		HeartbeatPeriod:  beat,
		DBCost:           db.CostModel{PerOp: 100 * time.Microsecond},
	})
	rco, err := Start(Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: co,
		DiskDir: dirOf("co"), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rco.Close()
	dir := Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"upper": func(params []byte) ([]byte, error) {
			out := make([]byte, len(params))
			for i, b := range params {
				if 'a' <= b && b <= 'z' {
					b -= 'a' - 'A'
				}
				out[i] = b
			}
			return out, nil
		},
	}
	for i := 0; i < 2; i++ {
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
		})
		id := proto.NodeID(fmt.Sprintf("sv%d", i))
		rsv, err := Start(Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
			Directory: dir, DiskDir: dirOf(string(id)), Logf: quietLogf})
		if err != nil {
			t.Fatal(err)
		}
		defer rsv.Close()
		rco.SetPeer(id, rsv.Addr())
	}

	gotResult := make(chan proto.Result, 1)
	cli := client.New(client.Config{
		User: "u", Session: 1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		OnResult: func(res proto.Result, _ time.Time) {
			select {
			case gotResult <- res:
			default:
			}
		},
	})
	rcli, err := Start(Config{ID: "cli", ListenAddr: "127.0.0.1:0", Handler: cli,
		Directory: dir, DiskDir: dirOf("cli"), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())

	rcli.Do(func() { cli.Submit("upper", []byte("hello grid"), 0, 0) })

	select {
	case res := <-gotResult:
		if string(res.Output) != "HELLO GRID" {
			t.Fatalf("result = %q", res.Output)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("RPC never completed over the real runtime")
	}
}
