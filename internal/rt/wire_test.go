package rt

// Mixed-cluster interoperability tests for the binary wire codec: a
// node sends with the codec its -wire flag picked, and every receiver
// auto-detects per connection — so binary and gob nodes must exchange
// every message kind losslessly in both directions, and a WAL written
// by a gob build must recover under the binary default.

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/server"
	"rpcv/internal/store"
)

// wireSampleMessages returns one populated instance of every protocol
// message kind (the rt-level mirror of proto's round-trip sample set).
func wireSampleMessages() []proto.Message {
	call := proto.CallID{User: "user-01", Session: 7, Seq: 42}
	task := proto.TaskID{Call: call, Instance: 3}
	st := proto.ShardMapState{Version: 9, VNodes: 64,
		Rings: [][]proto.NodeID{{"coord-00", "coord-01"}, {"coord-02"}}}
	deadline := time.Unix(1_000_000_600, 0).UTC()
	return []proto.Message{
		&proto.Submit{Call: call, Service: "svc", Params: []byte{1, 2}, ExecTime: time.Second, ResultSize: 8, Deadline: time.Minute},
		&proto.SubmitAck{Call: call, MaxSeq: 42},
		&proto.Poll{User: "user-01", Session: 7, Have: []proto.RPCSeq{1, 2, 3}},
		&proto.Results{User: "user-01", Session: 7, Results: []proto.Result{{Call: call, Output: []byte{9}, Err: "e", Server: "server-000"}}},
		&proto.SyncRequest{User: "user-01", Session: 7, MaxSeq: 42, HaveLog: true},
		&proto.SyncReply{User: "user-01", Session: 7, MaxSeq: 42, Known: []proto.RPCSeq{1, 2}},
		&proto.FetchResult{User: "user-01", Session: 7, Seq: 42},
		&proto.FetchReply{Call: call, Known: true, Finished: true, Result: proto.Result{Call: call, Output: []byte{4}}},
		&proto.Heartbeat{From: "server-000", Role: proto.RoleServer, Capacity: 2, WantWork: true},
		&proto.HeartbeatAck{From: "coord-00", Tasks: []proto.TaskAssignment{{Task: task, Service: "svc", Params: []byte{5}}}, Coordinators: []proto.NodeID{"coord-00"}},
		&proto.TaskResult{From: "server-000", Task: task, Output: []byte{6}, Err: "x", Exec: time.Second},
		&proto.TaskResultAck{Task: task},
		&proto.TaskCancel{Task: task},
		&proto.ServerSync{From: "server-000", Tasks: []proto.TaskID{task}, Running: []proto.TaskID{task}},
		&proto.ServerSyncReply{Resend: []proto.TaskID{task}, Drop: []proto.TaskID{task}},
		&proto.ReplicaUpdate{From: "coord-00", Epoch: 2, Round: 5, Jobs: []proto.JobRecord{{Call: call, Service: "svc", State: proto.TaskFinished, Output: []byte{7}}}, MaxSeqs: []proto.SessionMax{{User: "user-01", Session: 7, MaxSeq: 42}}},
		&proto.ReplicaAck{From: "coord-01", Epoch: 2, Round: 5},
		&proto.ShardMapRequest{From: "client-00"},
		&proto.ShardMapReply{Map: st},
		&proto.ShardRedirect{From: "coord-00", User: "user-01", Session: 7, Call: call, Shard: 1, Map: st},
		&proto.ShardSync{From: "coord-00", Shard: 0, Epoch: 2, Round: 5, Jobs: []proto.JobRecord{{Call: call, State: proto.TaskFinished}}, Sessions: []proto.SessionSeqs{{User: "user-01", Session: 7, Seqs: []proto.RPCSeq{1, 42}}}},
		&proto.ShardSyncAck{From: "coord-02", Shard: 1, Epoch: 2, Round: 5, Want: []proto.CallID{call}},
		&proto.StealRequest{From: "coord-02", Shard: 1, Epoch: 2, Round: 3, Capacity: 4},
		&proto.StealGrant{From: "coord-00", Shard: 0, Epoch: 2, Round: 3, Jobs: []proto.JobRecord{
			{Call: call, Service: "svc", Params: []byte{8}, ExecTime: time.Second, Deadline: deadline, State: proto.TaskOngoing, Instance: 2},
		}},
	}
}

// recorder is a handler that only records what it receives (unlike
// echo it never replies, keeping the received sequence exactly the
// sent sequence).
type recorder struct {
	env  node.Env
	mu   sync.Mutex
	from []proto.NodeID
	seen []proto.Message
}

func (r *recorder) Start(env node.Env) { r.env = env }
func (r *recorder) Stop()              {}
func (r *recorder) Receive(from proto.NodeID, m proto.Message) {
	r.mu.Lock()
	r.from = append(r.from, from)
	r.seen = append(r.seen, m)
	r.mu.Unlock()
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}

// TestMixedWireEveryMessageKindLossless runs a binary-codec node
// against a gob-codec node and streams every message kind in both
// directions over real TCP: each side must receive structurally
// identical values, whatever codec the sender picked.
func TestMixedWireEveryMessageKindLossless(t *testing.T) {
	bin := &recorder{}
	rbin, err := Start(Config{ID: "bin", ListenAddr: "127.0.0.1:0", Handler: bin,
		Logf: quietLogf, Wire: proto.WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer rbin.Close()
	gb := &recorder{}
	rgob, err := Start(Config{ID: "gob", ListenAddr: "127.0.0.1:0", Handler: gb,
		Logf: quietLogf, Wire: proto.WireGob})
	if err != nil {
		t.Fatal(err)
	}
	defer rgob.Close()
	rbin.SetPeer("gob", rgob.Addr())
	rgob.SetPeer("bin", rbin.Addr())

	msgs := wireSampleMessages()
	rbin.Do(func() {
		for _, m := range msgs {
			bin.env.Send("gob", m)
		}
	})
	rgob.Do(func() {
		for _, m := range msgs {
			gb.env.Send("bin", m)
		}
	})

	check := func(name string, rec *recorder, wantFrom proto.NodeID) {
		if !waitFor(t, 10*time.Second, func() bool { return rec.count() == len(msgs) }) {
			t.Fatalf("%s received %d/%d messages", name, rec.count(), len(msgs))
		}
		rec.mu.Lock()
		defer rec.mu.Unlock()
		for i, want := range msgs {
			if rec.from[i] != wantFrom {
				t.Errorf("%s message %d: from = %s, want %s", name, i, rec.from[i], wantFrom)
			}
			if !reflect.DeepEqual(want, rec.seen[i]) {
				t.Errorf("%s message %d (%s): mismatch:\n sent %#v\n got  %#v",
					name, i, want.Kind(), want, rec.seen[i])
			}
		}
	}
	check("gob node", gb, "bin")     // binary sender -> gob-configured receiver
	check("binary node", bin, "gob") // gob sender -> binary-configured receiver
}

// TestMixedWireGridCompletes is the cluster-level interop proof: a
// binary-codec coordinator drives a gob-codec server and a gob-codec
// client (the exact upgrade scenario: coordinator first) and every
// call completes — delivery, scheduling and result upload all cross
// the codec boundary.
func TestMixedWireGridCompletes(t *testing.T) {
	const (
		total   = 20
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	co := coordinator.New(coordinator.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		HeartbeatTimeout: suspect,
		DBCost:           db.CostModel{PerOp: 10 * time.Microsecond},
	})
	rco, err := Start(Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: co,
		Logf: quietLogf, Wire: proto.WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer rco.Close()
	dir := Directory{"co": rco.Addr()}

	sv := server.New(server.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		SuspicionTimeout: suspect,
		Services: map[string]server.Service{
			"noop": func([]byte) ([]byte, error) { return []byte("ok"), nil },
		},
		Codec: proto.CodecGob,
	})
	rsv, err := Start(Config{ID: "sv0", ListenAddr: "127.0.0.1:0", Handler: sv,
		Directory: dir, Logf: quietLogf, Wire: proto.WireGob})
	if err != nil {
		t.Fatal(err)
	}
	defer rsv.Close()
	rco.SetPeer("sv0", rsv.Addr())

	var (
		mu      sync.Mutex
		results int
	)
	cli := client.New(client.Config{
		User:             "u",
		Session:          1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		Codec:            proto.CodecGob,
		OnResult: func(proto.Result, time.Time) {
			mu.Lock()
			results++
			mu.Unlock()
		},
	})
	rcli, err := Start(Config{ID: "cli", ListenAddr: "127.0.0.1:0", Handler: cli,
		Directory: dir, Logf: quietLogf, Wire: proto.WireGob})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())

	rcli.Do(func() {
		for i := 0; i < total; i++ {
			cli.Submit("noop", nil, 0, 0)
		}
	})
	if !waitFor(t, 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return results >= total
	}) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("mixed grid completed %d/%d calls", results, total)
	}
}

// TestWALGobRecordsRecoverUnderBinary is the storage half of the
// interop matrix: a coordinator on the gob codec fills a wal store
// with gob-encoded job records and crashes mid-load; the binary-
// default build restarts over the same directory, recovers every
// record, finishes the run, and re-persists going forward in binary —
// the upgrade path for durable state.
func TestWALGobRecordsRecoverUnderBinary(t *testing.T) {
	const (
		total   = 40
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	coordDir := t.TempDir()
	newCoord := func(codec proto.Codec) *coordinator.Coordinator {
		return coordinator.New(coordinator.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			HeartbeatTimeout: suspect,
			DBCost:           db.CostModel{PerOp: 10 * time.Microsecond},
			Codec:            codec,
		})
	}
	coordCfg := func(h *coordinator.Coordinator, wire string) Config {
		return Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: h,
			DiskDir: coordDir, Store: "wal", Logf: quietLogf, Wire: wire}
	}
	rco, err := Start(coordCfg(newCoord(proto.CodecGob), proto.WireGob))
	if err != nil {
		t.Fatal(err)
	}
	dir := Directory{"co": rco.Addr()}

	sv := server.New(server.Config{
		Coordinators:     []proto.NodeID{"co"},
		HeartbeatPeriod:  beat,
		SuspicionTimeout: suspect,
		Services: map[string]server.Service{
			"noop": func([]byte) ([]byte, error) { return []byte("ok"), nil },
		},
	})
	rsv, err := Start(Config{ID: "sv0", ListenAddr: "127.0.0.1:0", Handler: sv,
		Directory: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rsv.Close()
	rco.SetPeer("sv0", rsv.Addr())

	var (
		mu      sync.Mutex
		results = map[proto.RPCSeq]bool{}
	)
	cli := client.New(client.Config{
		User:             "u",
		Session:          1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		OnResult: func(res proto.Result, _ time.Time) {
			mu.Lock()
			results[res.Call.Seq] = true
			mu.Unlock()
		},
	})
	rcli, err := Start(Config{ID: "cli", ListenAddr: "127.0.0.1:0", Handler: cli,
		Directory: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())

	rcli.Do(func() {
		for i := 0; i < total; i++ {
			cli.Submit("noop", nil, 0, 0)
		}
	})
	resultCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(results)
	}
	// Let the gob incarnation persist part of the load, then crash it.
	if !waitFor(t, 20*time.Second, func() bool { return resultCount() >= total/4 }) {
		t.Fatalf("gob incarnation never warmed up: %d results", resultCount())
	}
	rco.Close()

	// Binary-default incarnation over the same WAL.
	rco2, err := Start(coordCfg(newCoord(proto.CodecBinary), proto.WireBinary))
	if err != nil {
		t.Fatalf("binary restart over gob WAL: %v", err)
	}
	rco2.SetPeer("cli", rcli.Addr())
	rco2.SetPeer("sv0", rsv.Addr())
	rsv.SetPeer("co", rco2.Addr())
	rcli.SetPeer("co", rco2.Addr())

	if !waitFor(t, 60*time.Second, func() bool { return resultCount() >= total }) {
		t.Fatalf("after binary restart: %d/%d results — gob-encoded records were lost",
			resultCount(), total)
	}
	rco2.Close()

	// Every record in the reopened store — whichever codec wrote it —
	// must decode, and all calls must be finished.
	st, err := store.OpenWAL(coordDir, store.WALOptions{})
	if err != nil {
		t.Fatalf("reopen coordinator store: %v", err)
	}
	defer func() { _ = st.Close() }() // read-only reopen; nothing to flush
	finished := 0
	var dec proto.Decoder
	for _, key := range st.Keys("coord/job/") {
		raw, ok := st.Read(key)
		if !ok {
			continue
		}
		rec, err := dec.DecodeJob(raw)
		if err != nil {
			t.Fatalf("corrupt job record %s after mixed-codec recovery: %v", key, err)
		}
		if rec.State == proto.TaskFinished {
			finished++
		}
	}
	if finished != total {
		t.Fatalf("store holds %d finished records, want %d", finished, total)
	}
}
